package sonar

import "testing"

// The public facade: everything a downstream user touches, exercised
// end to end at a small budget.
func TestPublicAPI(t *testing.T) {
	s := NewBoomLite()
	rep := s.Identify()
	if rep.TracedPoints == 0 || rep.MonitoredPoints == 0 {
		t.Fatalf("identification empty: %+v", rep)
	}
	stats := s.Fuzz(SonarOptions(10))
	if len(stats.PerIteration) != 10 {
		t.Fatalf("iterations = %d", len(stats.PerIteration))
	}
	if stats.PerIteration[9].CumPoints == 0 {
		t.Error("nothing triggered through the facade")
	}
	if len(BoomPoCs()) != 9 || len(NutshellPoCs()) != 2 {
		t.Errorf("PoC counts = %d/%d, want 9/2", len(BoomPoCs()), len(NutshellPoCs()))
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	s := NewNutshellLite()
	st := RunSpecDoctor(s, 5, 1)
	if len(st.PerIteration) != 5 {
		t.Fatal("SpecDoctor baseline did not run")
	}
	rnd := s.Fuzz(RandomOptions(5))
	if rnd.CorpusSize != 0 {
		t.Error("random baseline retained seeds")
	}
}

func TestPublicAPIExploit(t *testing.T) {
	key := [KeyBytes]byte{0x42, 0x99}
	res := Exploit(BoomPoCs()[3:4], key, 1, 3, 7) // S4 only, cheap
	if len(res) != 1 || res[0].ID != "S4" {
		t.Fatalf("results = %+v", res)
	}
	if res[0].BitAccuracy < 0.99 {
		t.Errorf("S4 accuracy %.3f through facade", res[0].BitAccuracy)
	}
}
