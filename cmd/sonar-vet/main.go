// Command sonar-vet is the repository's static-analysis gate: a vet tool
// bundling the three Sonar analyzers (docs/STATIC_ANALYSIS.md):
//
//   - sonardeterminism: no wall-clock reads, global-source randomness, or
//     unordered map iteration in packages feeding canonical output;
//   - sonarallocfree: no heap-allocating constructs in functions annotated
//     //sonar:alloc-free (the DUT.Execute arena path);
//   - sonarexporteddoc: package comments everywhere, plus the
//     exported-identifier documentation floor of internal packages.
//
// Usage:
//
//	sonar-vet ./...                                   # standalone, offline
//	go vet -vettool=$(go env GOPATH)/bin/sonar-vet ./...   # cmd/go driver
//
// Both modes print file:line:col diagnostics to stderr and exit non-zero
// when findings exist. The standalone mode type-checks the module from
// source and needs no module cache; the vet-tool mode speaks cmd/go's unit
// checking protocol and caches per-package results in the build cache.
package main

import (
	"sonar/internal/lint/allocfree"
	"sonar/internal/lint/determinism"
	"sonar/internal/lint/exporteddoc"
	"sonar/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(
		determinism.Analyzer,
		allocfree.Analyzer,
		exporteddoc.Analyzer,
	)
}
