// Command sonar-bench regenerates every table and figure of the paper's
// evaluation (§8) and prints them in order. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
//
// Usage:
//
//	sonar-bench                    # all experiments at default scale
//	sonar-bench -iters 3000        # paper-scale campaigns (slower)
//	sonar-bench -only fig8,table3  # a subset
//	sonar-bench -only parallel -workers 8  # cross-core scaling of the sharded engine
//	sonar-bench -only fig8 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The parallel experiment measures the sharded coordinator's scaling
// across cores; it composes with the orthogonal per-core bit-parallel
// lane evaluator (cmd/sonar -lanes, docs/SIMULATOR.md) — the two
// multipliers and their CI gates are covered in docs/PERFORMANCE.md.
//
// The -metrics/-events/-progress flags attach the observability layer of
// docs/OBSERVABILITY.md to every campaign the experiments run: metrics
// aggregate across campaigns, the JSONL event stream concatenates them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sonar/internal/experiments"
	"sonar/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-bench: ")
	var (
		iters   = flag.Int("iters", 400, "campaign iterations for Figures 8/10/11 (paper: 3000)")
		trials  = flag.Int("trials", 7, "PoC trials per key bit for Table 3 / exploitation")
		workers = flag.Int("workers", 4, "shard count for the parallel-engine scaling experiment (cross-core; per-core lane batching is cmd/sonar -lanes)")
		only    = flag.String("only", "", "comma-separated subset: table1,fig6,fig7,table2,fig8,fig9,fig10,fig11,table3,exploit,mitigations,parallel,durability")

		metrics     = flag.String("metrics", "", "write Prometheus exposition text here after the run (- = stdout)")
		events      = flag.String("events", "", "stream campaign events to this JSONL file")
		progress    = flag.Int("progress", 0, "print a live progress line to stderr every N iterations (0 = off)")
		iterTimeout = flag.Duration("iter-timeout", 0, "per-iteration deadline for parallel experiment campaigns (0 = off)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	observer, finish, err := obs.CLIObserver(*metrics, *events, "", os.Stderr, *progress)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SetObserver(observer)
	experiments.SetIterTimeout(*iterTimeout)
	defer func() {
		if err := finish(); err != nil {
			log.Fatal(err)
		}
	}()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string, f func()) {
		if len(want) > 0 && !want[key] {
			return
		}
		start := time.Now()
		f()
		fmt.Printf("  [%s in %v]\n\n", key, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() { fmt.Print(experiments.Table1()) })
	run("fig6", func() { fmt.Print(experiments.RenderFigure6(experiments.Figure6())) })
	run("fig7", func() { fmt.Print(experiments.RenderFigure7(experiments.Figure7())) })
	run("table2", func() { fmt.Print(experiments.RenderTable2(experiments.Table2(0))) })
	run("fig8", func() { fmt.Print(experiments.RenderFigure8(experiments.Figure8(*iters))) })
	run("fig9", func() { fmt.Print(experiments.RenderFigure9(experiments.Figure9())) })
	run("fig10", func() { fmt.Print(experiments.RenderFigure10(experiments.Figure10(*iters))) })
	run("fig11", func() { fmt.Print(experiments.RenderFigure11(experiments.Figure11(*iters))) })
	run("table3", func() { fmt.Print(experiments.RenderTable3(experiments.Table3(*trials))) })
	run("exploit", func() { fmt.Print(experiments.RenderExploitation(experiments.Exploitation(1, *trials+2))) })
	run("mitigations", func() { fmt.Print(experiments.RenderMitigations(experiments.Mitigations(*trials))) })
	run("parallel", func() { fmt.Print(experiments.RenderParallel(experiments.Parallel(*iters, *workers))) })
	run("durability", func() { fmt.Print(experiments.RenderDurability(experiments.Durability(*iters, *workers))) })
}
