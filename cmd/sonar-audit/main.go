// Command sonar-audit runs the static information-flow audit
// (internal/hdl/flow) over a design: CellIFT-style taint propagation from
// designated secret/attacker sources, contention-surface extraction, a
// cross-check against the dynamic pipeline's contention-point
// identification, and a ranked monitor-placement report.
//
// Usage:
//
//	sonar-audit [-secret PAT] [-attacker PAT] [-format text|json|dot] DESIGN
//
// DESIGN is one of:
//
//	boom | nutshell    a bundled DUT netlist
//	gen:<seed>         a generated design (internal/hdl/gen)
//	firrtl:<path>      a FIRRTL-subset circuit file
//
// -secret and -attacker designate taint sources by full hierarchical signal
// name ('*' wildcards allowed; repeatable). With neither given, the
// heuristic designation is used: externally driven multi-bit signals seed
// secret taint, externally driven 1-bit signals seed attacker taint.
//
// The exit status is 0 when the audit has no Error-severity findings, 1
// otherwise — CI runs sonar-audit as a static gate on bundled designs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sonar/internal/boom"
	"sonar/internal/firrtl"
	"sonar/internal/hdl"
	"sonar/internal/hdl/flow"
	"sonar/internal/hdl/gen"
	"sonar/internal/nutshell"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// run executes the CLI against args (without the program name), writing the
// report to out and diagnostics to errOut, and returns the exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("sonar-audit", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		secret   multiFlag
		attacker multiFlag
		format   = fs.String("format", "text", "report format: text, json, or dot")
	)
	fs.Var(&secret, "secret", "secret taint source pattern (repeatable, '*' wildcards)")
	fs.Var(&attacker, "attacker", "attacker taint source pattern (repeatable, '*' wildcards)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errOut, "usage: sonar-audit [-secret PAT] [-attacker PAT] [-format text|json|dot] boom|nutshell|gen:<seed>|firrtl:<path>")
		return 2
	}

	net, err := elaborate(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(errOut, "sonar-audit: %v\n", err)
		return 2
	}
	au := flow.Analyze(net, nil, flow.Spec{Secret: secret, Attacker: attacker})

	switch *format {
	case "text":
		fmt.Fprint(out, au.Text())
	case "json":
		b, err := au.JSON()
		if err != nil {
			fmt.Fprintf(errOut, "sonar-audit: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "%s\n", b)
	case "dot":
		fmt.Fprint(out, au.DOT())
	default:
		fmt.Fprintf(errOut, "sonar-audit: unknown format %q\n", *format)
		return 2
	}
	if !au.OK() {
		return 1
	}
	return 0
}

// elaborate resolves a DESIGN argument to a netlist.
func elaborate(design string) (*hdl.Netlist, error) {
	switch {
	case design == "boom":
		return boom.New().Net, nil
	case design == "nutshell":
		return nutshell.New().Net, nil
	case strings.HasPrefix(design, "gen:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(design, "gen:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen seed: %v", err)
		}
		return gen.New(gen.Config{Seed: seed})
	case strings.HasPrefix(design, "firrtl:"):
		src, err := os.ReadFile(strings.TrimPrefix(design, "firrtl:"))
		if err != nil {
			return nil, err
		}
		return firrtl.ParseChecked(string(src))
	}
	return nil, fmt.Errorf("unknown design %q (want boom, nutshell, gen:<seed>, or firrtl:<path>)", design)
}

// main dispatches to run over the real process streams.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
