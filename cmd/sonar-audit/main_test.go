package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOnce captures one CLI invocation.
func runOnce(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestAuditDeterministicOutput pins the acceptance criterion: for a fixed
// (design, spec), repeated invocations produce byte-identical output in
// every format. CI runs the package under -race, extending the guarantee.
func TestAuditDeterministicOutput(t *testing.T) {
	for _, format := range []string{"text", "json", "dot"} {
		t.Run(format, func(t *testing.T) {
			code1, out1, _ := runOnce(t, "-format", format, "gen:1")
			code2, out2, _ := runOnce(t, "-format", format, "gen:1")
			if code1 != 0 || code2 != 0 {
				t.Fatalf("exit codes %d, %d; want 0", code1, code2)
			}
			if out1 != out2 {
				t.Errorf("%s output differs between identical runs", format)
			}
			if len(out1) == 0 {
				t.Error("empty report")
			}
		})
	}
}

// TestAuditExplicitSpecDeterministic extends the byte-identity pin to an
// explicit secret/attacker designation on a bundled DUT.
func TestAuditExplicitSpecDeterministic(t *testing.T) {
	args := []string{"-secret", "*_bits_data", "-attacker", "*_valid", "nutshell"}
	code1, out1, _ := runOnce(t, args...)
	code2, out2, _ := runOnce(t, args...)
	if code1 != code2 {
		t.Fatalf("exit codes differ: %d vs %d", code1, code2)
	}
	if out1 != out2 {
		t.Error("output differs between identical runs")
	}
}

// TestAuditBundledDUTsClean mirrors the CI smoke gate: boom, nutshell, and
// gen:1 must be free of Error-severity findings.
func TestAuditBundledDUTsClean(t *testing.T) {
	for _, design := range []string{"boom", "nutshell", "gen:1"} {
		code, out, errOut := runOnce(t, design)
		if code != 0 {
			t.Errorf("%s: exit %d\nstdout:\n%s\nstderr:\n%s", design, code, out, errOut)
		}
		if !strings.Contains(out, "netlist") || !strings.Contains(out, "rank") {
			t.Errorf("%s: report incomplete:\n%s", design, out)
		}
	}
}

// TestAuditUnmatchedPatternFails pins the nonzero exit on Error findings.
func TestAuditUnmatchedPatternFails(t *testing.T) {
	code, out, _ := runOnce(t, "-secret", "no.such.signal", "gen:1")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "unmatched-pattern") {
		t.Errorf("report lacks the finding:\n%s", out)
	}
}

// TestAuditFIRRTLFile exercises the firrtl:<path> design source.
func TestAuditFIRRTLFile(t *testing.T) {
	src := `
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input io_fwd_valid : UInt<1>
    input io_fwd_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    input sel_stq : UInt<1>
    output ldq_stq_idx : UInt<5>
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, mux(sel_stq, io_stq_bits_idx, io_fwd_bits_idx))
`
	path := filepath.Join(t.TempDir(), "lsu.fir")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runOnce(t, "firrtl:"+path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "Lsu") {
		t.Errorf("report lacks the design name:\n%s", out)
	}

	if code, _, _ := runOnce(t, "firrtl:"+filepath.Join(t.TempDir(), "missing.fir")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code, _, _ := runOnce(t, "widget"); code != 2 {
		t.Errorf("unknown design: exit %d, want 2", code)
	}
}
