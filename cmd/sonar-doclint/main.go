// Command sonar-doclint enforces the repository's documentation floor,
// used as a CI gate (.github/workflows/ci.yml):
//
//   - every package under internal/ must carry a godoc package comment
//     starting with "Package <name>";
//   - every main package under cmd/ and examples/ must carry a package
//     comment (the command/example synopsis).
//
// It parses package clauses only, so it is fast and needs no build.
//
// Usage:
//
//	sonar-doclint [repo-root]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, dir := range []string{"internal", "cmd", "examples"} {
		p, err := lintTree(filepath.Join(root, dir), dir == "internal")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonar-doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "sonar-doclint: %d package(s) lack documentation\n", len(problems))
		os.Exit(1)
	}
}

// lintTree walks every directory under root containing Go files and checks
// that the package has a doc comment; strict additionally requires the
// canonical "Package <name>" opening.
func lintTree(root string, strict bool) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(dir string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		doc, name, ok, err := packageDoc(dir)
		if err != nil {
			return err
		}
		if !ok { // no non-test Go files
			return nil
		}
		switch {
		case doc == "":
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		case strict && !strings.HasPrefix(doc, "Package "+name):
			problems = append(problems, fmt.Sprintf("%s: package comment must start with %q", dir, "Package "+name))
		}
		return nil
	})
	return problems, err
}

// packageDoc returns the longest package doc comment among dir's non-test
// Go files (godoc accepts the comment on any file; convention puts it on
// one) and the package name. ok reports whether dir holds any Go files.
func packageDoc(dir string) (doc, name string, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return "", "", false, err
		}
		ok = true
		name = f.Name.Name
		if f.Doc != nil {
			if t := strings.TrimSpace(f.Doc.Text()); len(t) > len(doc) {
				doc = t
			}
		}
	}
	return doc, name, ok, nil
}
