// Command sonar-doclint enforces the repository's documentation floor,
// used as a CI gate (.github/workflows/ci.yml):
//
//   - every package under internal/ must carry a godoc package comment
//     starting with "Package <name>";
//   - every main package under cmd/ and examples/ must carry a package
//     comment (the command/example synopsis);
//   - within the engine's operations surface (internal/fuzz and
//     internal/obs, subpackages included), every exported identifier —
//     functions, methods on exported types, types, consts, vars, and
//     struct fields — must carry a doc comment.
//
// The package-comment pass parses package clauses only; the
// exported-identifier pass parses the full files of the trees it covers.
//
// Usage:
//
//	sonar-doclint [repo-root]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// exportedLintTrees are the packages held to the exported-identifier
// documentation floor — the operator-facing surface of docs/CAMPAIGNS.md
// and docs/OBSERVABILITY.md.
var exportedLintTrees = []string{
	filepath.Join("internal", "fuzz"),
	filepath.Join("internal", "obs"),
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, dir := range []string{"internal", "cmd", "examples"} {
		p, err := lintTree(filepath.Join(root, dir), dir == "internal")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonar-doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	for _, dir := range exportedLintTrees {
		p, err := lintExportedTree(filepath.Join(root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonar-doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "sonar-doclint: %d documentation problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintTree walks every directory under root containing Go files and checks
// that the package has a doc comment; strict additionally requires the
// canonical "Package <name>" opening.
func lintTree(root string, strict bool) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(dir string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		doc, name, ok, err := packageDoc(dir)
		if err != nil {
			return err
		}
		if !ok { // no non-test Go files
			return nil
		}
		switch {
		case doc == "":
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		case strict && !strings.HasPrefix(doc, "Package "+name):
			problems = append(problems, fmt.Sprintf("%s: package comment must start with %q", dir, "Package "+name))
		}
		return nil
	})
	return problems, err
}

// lintExportedTree walks a package tree and reports every exported
// identifier without a doc comment. Methods are linted only on exported
// receiver types (unexported types' exported methods are usually interface
// plumbing); const/var specs accept the declaration group's comment or a
// trailing line comment.
func lintExportedTree(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		report := func(pos token.Pos, what, name string) {
			p := fset.Position(pos)
			problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil {
					recv, exported := receiverName(d.Recv)
					if !exported {
						continue
					}
					report(d.Pos(), "method", recv+"."+d.Name.Name)
				} else {
					report(d.Pos(), "function", d.Name.Name)
				}
			case *ast.GenDecl:
				lintGenDecl(d, report)
			}
		}
		return nil
	})
	return problems, err
}

// lintGenDecl checks the exported types, consts, vars, and struct fields of
// one declaration group.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				for _, field := range st.Fields.List {
					if field.Doc != nil || field.Comment != nil {
						continue
					}
					for _, n := range field.Names {
						if n.IsExported() {
							report(field.Pos(), "field", s.Name.Name+"."+n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(s.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's type name and whether it is
// exported.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, id.IsExported()
}

// packageDoc returns the longest package doc comment among dir's non-test
// Go files (godoc accepts the comment on any file; convention puts it on
// one) and the package name. ok reports whether dir holds any Go files.
func packageDoc(dir string) (doc, name string, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return "", "", false, err
		}
		ok = true
		name = f.Name.Name
		if f.Doc != nil {
			if t := strings.TrimSpace(f.Doc.Text()); len(t) > len(doc) {
				doc = t
			}
		}
	}
	return doc, name, ok, nil
}
