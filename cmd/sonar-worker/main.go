// Command sonar-worker executes shard leases against a sonar-server: it
// polls the campaign service for work, elaborates the granted DUT (sharing
// the contention-point analysis across leases), runs each leased batch
// through the fuzzing engine, and reports results back. Any number of
// workers may serve one server; results are deterministic regardless of
// worker count, death, or restart (docs/SERVICE.md).
//
// Usage:
//
//	sonar-worker -server URL [-id NAME] [-poll 500ms] [-max-leases N] [-lanes N]
//
// Examples:
//
//	sonar-worker -server http://localhost:8714                # run until killed
//	sonar-worker -server http://localhost:8714 -max-leases 10 # bounded stint
//	sonar-worker -server http://localhost:8714 -lanes 64      # force widest evaluator
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"sonar/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-worker: ")
	var (
		server    = flag.String("server", "", "campaign server base URL (required), e.g. http://localhost:8714")
		id        = flag.String("id", "", "worker identifier recorded on its leases (default host-pid)")
		poll      = flag.Duration("poll", 0, "sleep between acquire attempts when the server has no work (default 500ms)")
		maxLeases = flag.Int("max-leases", 0, "exit after executing this many leases (0 = run until killed)")
		lanes     = flag.Int("lanes", 0, "evaluator batch width override, 1..64 (0 = use the server's suggestion; results are identical at every width)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments %v", flag.Args())
	}
	if *server == "" {
		log.Fatal("-server is required (e.g. -server http://localhost:8714)")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("worker %s serving %s", *id, *server)
	n, err := fleet.RunWorker(ctx, fleet.NewClient(*server), fleet.WorkerOptions{
		ID:        *id,
		Poll:      *poll,
		MaxLeases: *maxLeases,
		Lanes:     *lanes,
	})
	if err != nil {
		log.Fatalf("after %d leases: %v", n, err)
	}
	log.Printf("done: %d leases executed", n)
}
