// Command sonar-benchguard is the CI perf-regression gate: it compares a
// BENCH_campaign.json produced by the campaign benchmarks (go test
// -bench=Campaign) against the committed BENCH_baseline.json and fails on
// gross regressions.
//
// The committed baseline is deliberately conservative — roughly a quarter of
// the throughput measured on a development machine — and the comparison adds
// a further -factor (default 2x) margin on top, so the gate only trips on
// order-of-magnitude regressions (an accidentally quadratic hot path, a
// reintroduced per-iteration allocation storm), never on runner jitter.
// Throughput must not fall below baseline/factor; allocations per iteration
// must not exceed baseline*factor.
//
// Usage:
//
//	go test -run '^$' -bench Campaign -benchtime 1x .
//	go run ./cmd/sonar-benchguard -current BENCH_campaign.json
//
// See docs/PERFORMANCE.md for the file format and how the numbers are
// measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// row mirrors the campaignResult schema bench_test.go emits; fields absent
// from the baseline (zero) are not checked.
type row struct {
	ItersPerSec   float64 `json:"iters_per_sec"`
	NsPerIter     float64 `json:"ns_per_iter"`
	AllocsPerIter float64 `json:"allocs_per_iter"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
}

func load(path string) map[string]row {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var m map[string]row
	if err := json.Unmarshal(data, &m); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-benchguard: ")
	var (
		current  = flag.String("current", "BENCH_campaign.json", "benchmark results to check")
		baseline = flag.String("baseline", "BENCH_baseline.json", "committed baseline to check against")
		factor   = flag.Float64("factor", 2, "allowed regression factor on top of the baseline margin")
	)
	flag.Parse()
	f := *factor
	cur, base := load(*current), load(*baseline)

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("FAIL %-20s missing from %s\n", name, *current)
			failed = true
			continue
		}
		status := "ok  "
		switch {
		case b.ItersPerSec > 0 && c.ItersPerSec < b.ItersPerSec/f:
			status = "FAIL"
			failed = true
		case b.AllocsPerIter > 0 && c.AllocsPerIter > b.AllocsPerIter*f:
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-20s %9.0f iters/sec (floor %.0f)  %7.1f allocs/iter (ceil %.0f)\n",
			status, name, c.ItersPerSec, b.ItersPerSec/f, c.AllocsPerIter, b.AllocsPerIter*f)
	}
	if failed {
		log.Fatal("performance regression detected (see docs/PERFORMANCE.md)")
	}
	fmt.Println("all campaign benchmarks within budget")
}
