// Command sonar-benchguard is the CI perf-regression gate: it compares a
// BENCH_campaign.json produced by the campaign benchmarks (go test
// -bench=Campaign) against the committed BENCH_baseline.json and fails on
// gross regressions.
//
// The committed baseline is deliberately conservative — well below the
// throughput measured on a development machine — and the comparison adds a
// further -factor (default 2x) margin on top, so the gate only trips on
// order-of-magnitude regressions (an accidentally quadratic hot path, a
// reintroduced per-iteration allocation storm), never on runner jitter.
// Throughput must not fall below baseline/factor; allocations per iteration
// must not exceed baseline*factor.
//
// The gate also enforces parallel-scaling efficiency: every
// CampaignParallelN entry in the current file records its throughput ratio
// over CampaignParallel1 (scaling_vs_parallel1) and the runner's effective
// core count (cores). N-worker throughput must reach at least
// -scaling-efficiency × min(N, cores) × the 1-worker throughput, so a
// regression back to flat scaling — the coordinator merge barrier
// serializing the whole campaign — fails CI even when absolute throughput
// stays above the floor. Entries measured on a single-core runner (or
// files from before cores was recorded) skip the check: there is no
// parallelism to lose.
//
// A second run-property gate covers the bit-parallel evaluator: the
// CampaignLanes64 entry records its cycle throughput over CampaignLanes1
// from the same run (lanes_speedup), and the gate requires at least
// -lane-speedup (default 4x) — the 64-testcases-per-word evaluator must
// actually outrun 64 scalar replays of the same workload, or the lane
// engine has regressed to scalar spill. The CampaignNetlistLanes pair is
// gated the same way at -campaign-lane-speedup (default 8x): a full
// netlist-backed fuzzing campaign at Lanes=64 must outrun the same
// campaign at Lanes=1, so the evaluator win survives end-to-end campaign
// overhead. Files without lane entries skip the checks — unless the
// baseline entry records lanes_speedup, in which case a current entry
// missing the metric fails (metric parity: a silently dropped recording
// must not pass the gate).
//
// Usage:
//
//	go test -run '^$' -bench Campaign -benchtime 1x .
//	go run ./cmd/sonar-benchguard -current BENCH_campaign.json
//
// See docs/PERFORMANCE.md for the file format and how the numbers are
// measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// row is one decoded benchmark entry: metric name → value. Decoding into a
// plain map rather than a struct keeps "metric absent from the file"
// distinguishable from "metric measured as zero" — a current file that
// silently dropped allocs_per_iter must fail the gate, not sail through a
// 0 <= ceiling comparison. Metrics the baseline itself omits are not
// checked.
type row map[string]float64

// checkedMetrics are the metrics the gate enforces, with their direction:
// floor metrics must not fall below baseline/factor, ceiling metrics must
// not exceed baseline*factor.
var checkedMetrics = []struct {
	name  string
	floor bool
}{
	{"iters_per_sec", true},
	{"allocs_per_iter", false},
}

// load reads one sonar-bench -json output file into its metric rows.
func load(path string) map[string]row {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var m map[string]row
	if err := json.Unmarshal(data, &m); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

// parallelWorkers extracts N from a CampaignParallelN entry name, or 0.
func parallelWorkers(name string) int {
	s, ok := strings.CutPrefix(name, "CampaignParallel")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// checkScaling enforces the parallel-scaling efficiency floor on the
// current results (the baseline has no say: scaling is a property of the
// run and its runner). It returns false on a violation.
func checkScaling(cur map[string]row, efficiency float64) bool {
	base, ok := cur["CampaignParallel1"]
	if !ok || base["iters_per_sec"] == 0 {
		fmt.Println("skip scaling: no CampaignParallel1 entry to scale against")
		return true
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		if parallelWorkers(name) > 1 {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	ok = true
	for _, name := range names {
		c := cur[name]
		workers := parallelWorkers(name)
		cores := int(c["cores"])
		expected := workers
		if cores < expected {
			expected = cores
		}
		if expected <= 1 {
			fmt.Printf("skip %-20s scaling unmeasurable on this runner (%d core(s))\n", name, cores)
			continue
		}
		ratio := c["scaling_vs_parallel1"]
		if ratio == 0 {
			ratio = c["iters_per_sec"] / base["iters_per_sec"]
		}
		floor := efficiency * float64(expected)
		status := "ok  "
		if ratio < floor {
			status = "FAIL"
			ok = false
		}
		fmt.Printf("%s %-20s %5.2fx vs Parallel1 (floor %.2fx = %.0f%% of min(%d workers, %d cores))\n",
			status, name, ratio, floor, 100*efficiency, workers, cores)
	}
	return ok
}

// checkLanes enforces one lane-speedup floor on the current results: wide's
// lanes_speedup — its cycles_per_sec over the same run's scalar entry,
// re-derived from those entries when neither file records the field — must
// reach minSpeedup. The ratio itself is a property of the run, not the
// baseline; the baseline's only say is metric parity: a baseline entry that
// records lanes_speedup pins the metric's presence, so a current file whose
// entry silently dropped it fails instead of sailing through on a
// re-derivation (the recording pipeline broke, which is itself a
// regression). It returns false on a violation.
func checkLanes(cur, base map[string]row, scalar, wide string, minSpeedup float64) bool {
	c, ok := cur[wide]
	if !ok {
		fmt.Printf("skip lanes: no %s entry to check\n", wide)
		return true
	}
	if b, inBase := base[wide]; inBase {
		if _, ok := b["lanes_speedup"]; ok {
			if _, ok := c["lanes_speedup"]; !ok {
				fmt.Printf("FAIL %-22s lanes_speedup present in baseline but missing from current results\n", wide)
				return false
			}
		}
	}
	ratio := c["lanes_speedup"]
	if ratio == 0 {
		if s, ok := cur[scalar]; ok && s["cycles_per_sec"] > 0 {
			ratio = c["cycles_per_sec"] / s["cycles_per_sec"]
		}
	}
	if ratio == 0 {
		fmt.Printf("FAIL %-22s no lanes_speedup recorded and no %s to derive it from\n", wide, scalar)
		return false
	}
	status := "ok  "
	if ratio < minSpeedup {
		status = "FAIL"
	}
	fmt.Printf("%s %-22s %5.2fx cycles/sec vs %s (floor %.2fx)\n",
		status, wide, ratio, scalar, minSpeedup)
	return ratio >= minSpeedup
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-benchguard: ")
	var (
		current  = flag.String("current", "BENCH_campaign.json", "benchmark results to check")
		baseline = flag.String("baseline", "BENCH_baseline.json", "committed baseline to check against")
		factor   = flag.Float64("factor", 2, "allowed regression factor on top of the baseline margin")
		scaleff  = flag.Float64("scaling-efficiency", 0.75, "required CampaignParallelN/CampaignParallel1 throughput ratio, as a fraction of min(N, cores)")
		lanespd  = flag.Float64("lane-speedup", 4, "required CampaignLanes64/CampaignLanes1 cycle-throughput ratio")
		clanespd = flag.Float64("campaign-lane-speedup", 8, "required CampaignNetlistLanes64/CampaignNetlistLanes1 cycle-throughput ratio")
	)
	flag.Parse()
	f := *factor
	cur, base := load(*current), load(*baseline)

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("FAIL %-20s missing from %s\n", name, *current)
			failed = true
			continue
		}
		var missing []string
		for _, m := range checkedMetrics {
			if _, inBase := b[m.name]; !inBase {
				continue
			}
			if _, inCur := c[m.name]; !inCur {
				missing = append(missing, m.name)
			}
		}
		if len(missing) > 0 {
			fmt.Printf("FAIL %-20s %s present in baseline but missing from %s\n",
				name, strings.Join(missing, ", "), *current)
			failed = true
			continue
		}
		status := "ok  "
		for _, m := range checkedMetrics {
			bv := b[m.name]
			if bv == 0 {
				continue
			}
			if m.floor && c[m.name] < bv/f || !m.floor && c[m.name] > bv*f {
				status = "FAIL"
				failed = true
			}
		}
		fmt.Printf("%s %-20s %9.0f iters/sec (floor %.0f)  %7.1f allocs/iter (ceil %.0f)\n",
			status, name, c["iters_per_sec"], b["iters_per_sec"]/f, c["allocs_per_iter"], b["allocs_per_iter"]*f)
	}
	if !checkScaling(cur, *scaleff) {
		failed = true
	}
	if !checkLanes(cur, base, "CampaignLanes1", "CampaignLanes64", *lanespd) {
		failed = true
	}
	if !checkLanes(cur, base, "CampaignNetlistLanes1", "CampaignNetlistLanes64", *clanespd) {
		failed = true
	}
	if failed {
		log.Fatal("performance regression detected (see docs/PERFORMANCE.md)")
	}
	fmt.Println("all campaign benchmarks within budget")
}
