// Command sonar-benchguard is the CI perf-regression gate: it compares a
// BENCH_campaign.json produced by the campaign benchmarks (go test
// -bench=Campaign) against the committed BENCH_baseline.json and fails on
// gross regressions.
//
// The committed baseline is deliberately conservative — roughly a quarter of
// the throughput measured on a development machine — and the comparison adds
// a further -factor (default 2x) margin on top, so the gate only trips on
// order-of-magnitude regressions (an accidentally quadratic hot path, a
// reintroduced per-iteration allocation storm), never on runner jitter.
// Throughput must not fall below baseline/factor; allocations per iteration
// must not exceed baseline*factor.
//
// Usage:
//
//	go test -run '^$' -bench Campaign -benchtime 1x .
//	go run ./cmd/sonar-benchguard -current BENCH_campaign.json
//
// See docs/PERFORMANCE.md for the file format and how the numbers are
// measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
)

// row is one decoded benchmark entry: metric name → value. Decoding into a
// plain map rather than a struct keeps "metric absent from the file"
// distinguishable from "metric measured as zero" — a current file that
// silently dropped allocs_per_iter must fail the gate, not sail through a
// 0 <= ceiling comparison. Metrics the baseline itself omits are not
// checked.
type row map[string]float64

// checkedMetrics are the metrics the gate enforces, with their direction:
// floor metrics must not fall below baseline/factor, ceiling metrics must
// not exceed baseline*factor.
var checkedMetrics = []struct {
	name  string
	floor bool
}{
	{"iters_per_sec", true},
	{"allocs_per_iter", false},
}

func load(path string) map[string]row {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var m map[string]row
	if err := json.Unmarshal(data, &m); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return m
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-benchguard: ")
	var (
		current  = flag.String("current", "BENCH_campaign.json", "benchmark results to check")
		baseline = flag.String("baseline", "BENCH_baseline.json", "committed baseline to check against")
		factor   = flag.Float64("factor", 2, "allowed regression factor on top of the baseline margin")
	)
	flag.Parse()
	f := *factor
	cur, base := load(*current), load(*baseline)

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("FAIL %-20s missing from %s\n", name, *current)
			failed = true
			continue
		}
		var missing []string
		for _, m := range checkedMetrics {
			if _, inBase := b[m.name]; !inBase {
				continue
			}
			if _, inCur := c[m.name]; !inCur {
				missing = append(missing, m.name)
			}
		}
		if len(missing) > 0 {
			fmt.Printf("FAIL %-20s %s present in baseline but missing from %s\n",
				name, strings.Join(missing, ", "), *current)
			failed = true
			continue
		}
		status := "ok  "
		for _, m := range checkedMetrics {
			bv := b[m.name]
			if bv == 0 {
				continue
			}
			if m.floor && c[m.name] < bv/f || !m.floor && c[m.name] > bv*f {
				status = "FAIL"
				failed = true
			}
		}
		fmt.Printf("%s %-20s %9.0f iters/sec (floor %.0f)  %7.1f allocs/iter (ceil %.0f)\n",
			status, name, c["iters_per_sec"], b["iters_per_sec"]/f, c["allocs_per_iter"], b["allocs_per_iter"]*f)
	}
	if failed {
		log.Fatal("performance regression detected (see docs/PERFORMANCE.md)")
	}
	fmt.Println("all campaign benchmarks within budget")
}
