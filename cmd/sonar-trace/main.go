// Command sonar-trace runs Sonar's static contention-point analysis (paper
// §5) over a FIRRTL-subset circuit file: bottom-up MUX tracing, request
// validity determination, and risk filtering.
//
// Usage:
//
//	sonar-trace [-requests] [-dot ID] file.fir
//	sonar-trace -dut boom|nutshell   # analyze a bundled DUT netlist instead
//
// -requests lists every contention point with its requests and validity
// conjunctions; -dot emits the Graphviz DOT tree of one point and exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"sonar/internal/boom"
	"sonar/internal/firrtl"
	"sonar/internal/hdl"
	"sonar/internal/nutshell"
	"sonar/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-trace: ")
	var (
		dut      = flag.String("dut", "", "analyze a bundled DUT netlist (boom or nutshell) instead of a file")
		requests = flag.Bool("requests", false, "list every contention point with its requests and valids")
		dot      = flag.Int("dot", -1, "emit the Graphviz DOT tree of the given contention point ID and exit")
	)
	flag.Parse()

	var net *hdl.Netlist
	switch {
	case *dut == "boom":
		net = boom.New().Net
	case *dut == "nutshell":
		net = nutshell.New().Net
	case *dut != "":
		log.Fatalf("unknown DUT %q", *dut)
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		net, err = firrtl.ParseChecked(string(src))
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("usage: sonar-trace [-requests] [-dot ID] file.fir | sonar-trace -dut boom|nutshell")
	}

	a := trace.Analyze(net)
	if *dot >= 0 {
		if *dot >= len(a.Points) {
			log.Fatalf("point %d out of range (%d points)", *dot, len(a.Points))
		}
		fmt.Print(a.Points[*dot].DOT())
		return
	}
	fmt.Printf("circuit %s: %d signals, %d 2:1 MUXes\n", net.Name(), net.NumSignals(), net.NumMuxes())
	fmt.Printf("bottom-up tracing: %d contention points (%.1f%% below naive 2:1 counting)\n",
		len(a.Points), 100*(1-float64(len(a.Points))/float64(a.NaiveMuxCount)))
	mon := a.Monitored()
	fmt.Printf("risk filter: %d monitorable points (%.1f%% filtered out)\n",
		len(mon), 100*(1-float64(len(mon))/float64(len(a.Points))))
	fmt.Println("distribution:")
	byComp := a.ByComponent()
	comps := make([]string, 0, len(byComp))
	for comp := range byComp {
		comps = append(comps, comp)
	}
	sort.Strings(comps)
	for _, comp := range comps {
		n := byComp[comp]
		fmt.Printf("  %-14s %6d traced %6d monitored\n", comp, n[0], n[1])
	}
	if !*requests {
		return
	}
	for _, p := range a.Points {
		status := "monitored"
		if !p.Monitorable() {
			status = "filtered"
		}
		fmt.Printf("\npoint %d: %s (%d:1, %s)\n", p.ID, p.Out.Name(), p.Fanin(), status)
		for i := range p.Requests {
			r := &p.Requests[i]
			switch {
			case r.Data.IsConst():
				fmt.Printf("  req %d: %s = const %d\n", i, r.Data.Name(), r.Data.Value())
			case !r.HasValid():
				fmt.Printf("  req %d: %s (constantly valid)\n", i, r.Data.Name())
			default:
				fmt.Printf("  req %d: %s valid:", i, r.Data.Name())
				for _, v := range r.Valids {
					fmt.Printf(" %s", v.Name())
				}
				if r.Derived() {
					fmt.Print(" (derived)")
				}
				fmt.Println()
			}
		}
	}
}
