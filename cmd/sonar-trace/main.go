// Command sonar-trace runs Sonar's static contention-point analysis (paper
// §5) over a FIRRTL-subset circuit file: bottom-up MUX tracing, request
// validity determination, and risk filtering.
//
// Usage:
//
//	sonar-trace [-requests] [-audit] [-dot ID] file.fir
//	sonar-trace -dut boom|nutshell   # analyze a bundled DUT netlist instead
//
// -requests lists every contention point with its requests and validity
// conjunctions; -audit runs the information-flow audit (internal/hdl/flow)
// and adds rank and taint columns to the per-point listing; -dot emits the
// Graphviz DOT tree of one point and exits (-dot -1 with -audit emits the
// audit's surface graph instead).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sonar/internal/boom"
	"sonar/internal/firrtl"
	"sonar/internal/hdl"
	"sonar/internal/hdl/flow"
	"sonar/internal/nutshell"
	"sonar/internal/trace"
)

// run executes the CLI against args (without the program name), writing to
// out and errOut, and returns the exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("sonar-trace", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		dut      = fs.String("dut", "", "analyze a bundled DUT netlist (boom or nutshell) instead of a file")
		requests = fs.Bool("requests", false, "list every contention point with its requests and valids")
		audit    = fs.Bool("audit", false, "run the information-flow audit and show rank + taint columns")
		dot      = fs.Int("dot", -1, "emit the Graphviz DOT tree of the given contention point ID and exit")
		dotAll   = fs.Bool("dot-surface", false, "with -audit, emit the audit's whole-surface DOT graph and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var net *hdl.Netlist
	switch {
	case *dut == "boom":
		net = boom.New().Net
	case *dut == "nutshell":
		net = nutshell.New().Net
	case *dut != "":
		fmt.Fprintf(errOut, "sonar-trace: unknown DUT %q\n", *dut)
		return 2
	case fs.NArg() == 1:
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(errOut, "sonar-trace: %v\n", err)
			return 2
		}
		net, err = firrtl.ParseChecked(string(src))
		if err != nil {
			fmt.Fprintf(errOut, "sonar-trace: %v\n", err)
			return 2
		}
	default:
		fmt.Fprintln(errOut, "usage: sonar-trace [-requests] [-audit] [-dot ID] file.fir | sonar-trace -dut boom|nutshell")
		return 2
	}

	a := trace.Analyze(net)
	var au *flow.Audit
	if *audit {
		au = flow.Analyze(net, a, flow.Spec{})
	}
	if *dotAll {
		if au == nil {
			fmt.Fprintln(errOut, "sonar-trace: -dot-surface requires -audit")
			return 2
		}
		fmt.Fprint(out, au.DOT())
		return 0
	}
	if *dot >= 0 {
		if *dot >= len(a.Points) {
			fmt.Fprintf(errOut, "sonar-trace: point %d out of range (%d points)\n", *dot, len(a.Points))
			return 2
		}
		fmt.Fprint(out, a.Points[*dot].DOT())
		return 0
	}
	fmt.Fprintf(out, "circuit %s: %d signals, %d 2:1 MUXes\n", net.Name(), net.NumSignals(), net.NumMuxes())
	fmt.Fprintf(out, "bottom-up tracing: %d contention points (%.1f%% below naive 2:1 counting)\n",
		len(a.Points), 100*(1-float64(len(a.Points))/float64(a.NaiveMuxCount)))
	mon := a.Monitored()
	fmt.Fprintf(out, "risk filter: %d monitorable points (%.1f%% filtered out)\n",
		len(mon), 100*(1-float64(len(mon))/float64(len(a.Points))))
	fmt.Fprintln(out, "distribution:")
	byComp := a.ByComponent()
	comps := make([]string, 0, len(byComp))
	for comp := range byComp {
		comps = append(comps, comp)
	}
	sort.Strings(comps)
	for _, comp := range comps {
		n := byComp[comp]
		fmt.Fprintf(out, "  %-14s %6d traced %6d monitored\n", comp, n[0], n[1])
	}
	if au != nil {
		printAudit(out, au)
	}
	if !*requests {
		return 0
	}
	for _, p := range a.Points {
		status := "monitored"
		if !p.Monitorable() {
			status = "filtered"
		}
		fmt.Fprintf(out, "\npoint %d: %s (%d:1, %s)", p.ID, p.Out.Name(), p.Fanin(), status)
		if au != nil {
			if pa := auditOf(au, p.ID); pa != nil {
				fmt.Fprintf(out, " rank %d taint %s", pa.Rank, pa.ConeTaint)
			}
		}
		fmt.Fprintln(out)
		for i := range p.Requests {
			r := &p.Requests[i]
			switch {
			case r.Data.IsConst():
				fmt.Fprintf(out, "  req %d: %s = const %d\n", i, r.Data.Name(), r.Data.Value())
			case !r.HasValid():
				fmt.Fprintf(out, "  req %d: %s (constantly valid)\n", i, r.Data.Name())
			default:
				fmt.Fprintf(out, "  req %d: %s valid:", i, r.Data.Name())
				for _, v := range r.Valids {
					fmt.Fprintf(out, " %s", v.Name())
				}
				if r.Derived() {
					fmt.Fprint(out, " (derived)")
				}
				fmt.Fprintln(out)
			}
		}
	}
	return 0
}

// printAudit appends the information-flow audit's ranked table to the
// component report: one row per point, highest placement rank first, with
// the taint, shared-fanin, and cone-depth columns the scoring sorts by.
func printAudit(out io.Writer, au *flow.Audit) {
	fmt.Fprintf(out, "flow audit: %d surface cascades, %d/%d points tainted, %d taint-pairs\n",
		len(au.Surface), au.TaintedPoints(), len(au.Points), au.TaintPairPoints())
	fmt.Fprintf(out, "  %4s %5s %5s %6s %6s  %s\n", "rank", "point", "taint", "shared", "depth", "output")
	for _, pa := range au.Points {
		fmt.Fprintf(out, "  %4d %5d %5s %6d %6d  %s\n",
			pa.Rank, pa.Point.ID, pa.ConeTaint, pa.SharedFanin, pa.ConeDepth, pa.Point.Out.Name())
	}
	for _, f := range au.Findings {
		fmt.Fprintf(out, "  finding: %s\n", f)
	}
}

// auditOf returns the audited verdict for a point id.
func auditOf(au *flow.Audit, id int) *flow.PointAudit {
	for _, pa := range au.Points {
		if pa.Point.ID == id {
			return pa
		}
	}
	return nil
}

// main dispatches to run over the real process streams.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
