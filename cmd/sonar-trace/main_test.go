package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fig3 is the paper's Figure 3 LSU arbiter, the repo-wide reference circuit.
const fig3 = `
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input io_fwd_valid : UInt<1>
    input io_fwd_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    input sel_stq : UInt<1>
    output ldq_stq_idx : UInt<5>
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, mux(sel_stq, io_stq_bits_idx, io_fwd_bits_idx))
`

// runOnce captures one CLI invocation.
func runOnce(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// fig3File writes the reference circuit to a temp file.
func fig3File(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lsu.fir")
	if err := os.WriteFile(path, []byte(fig3), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenAuditReport pins the exact -audit -requests report for the
// Figure 3 circuit: the component table, the flow audit's rank/taint table,
// and the per-point rank + taint annotations.
func TestGoldenAuditReport(t *testing.T) {
	code, out, errOut := runOnce(t, "-audit", "-requests", fig3File(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	const golden = `circuit Lsu: 10 signals, 2 2:1 MUXes
bottom-up tracing: 1 contention points (50.0% below naive 2:1 counting)
risk filter: 1 monitorable points (0.0% filtered out)
distribution:
  Lsu                 1 traced      1 monitored
flow audit: 1 surface cascades, 1/1 points tainted, 1 taint-pairs
  rank point taint shared  depth  output
     0     0    SA      0      0  Lsu.ldq_stq_idx

point 0: Lsu.ldq_stq_idx (3:1, monitored) rank 0 taint SA
  req 0: Lsu.io_ldq_bits_idx valid: Lsu.io_ldq_valid
  req 1: Lsu.io_stq_bits_idx valid: Lsu.io_stq_valid
  req 2: Lsu.io_fwd_bits_idx valid: Lsu.io_fwd_valid
`
	if out != golden {
		t.Errorf("report drifted from golden output:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
}

// TestAuditColumnsOnDUT checks the -audit table renders on a bundled DUT and
// is byte-identical across runs.
func TestAuditColumnsOnDUT(t *testing.T) {
	code1, out1, _ := runOnce(t, "-dut", "nutshell", "-audit")
	code2, out2, _ := runOnce(t, "-dut", "nutshell", "-audit")
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes %d, %d; want 0", code1, code2)
	}
	if out1 != out2 {
		t.Error("audit report differs between identical runs")
	}
	if !strings.Contains(out1, "flow audit:") || !strings.Contains(out1, "rank point taint") {
		t.Errorf("report lacks the audit table:\n%s", out1)
	}
}

// TestDotSurface exercises the audit's whole-surface DOT export and its
// -audit requirement.
func TestDotSurface(t *testing.T) {
	path := fig3File(t)
	code, out, _ := runOnce(t, "-audit", "-dot-surface", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "digraph audit_") {
		t.Errorf("not an audit DOT graph:\n%s", out)
	}
	if code, _, errOut := runOnce(t, "-dot-surface", path); code != 2 || !strings.Contains(errOut, "-audit") {
		t.Errorf("-dot-surface without -audit: exit %d, stderr %q; want 2 + hint", code, errOut)
	}
}

// TestPointDot pins the single-point DOT path and its range check.
func TestPointDot(t *testing.T) {
	path := fig3File(t)
	code, out, _ := runOnce(t, "-dot", "0", path)
	if code != 0 || !strings.HasPrefix(out, "digraph") {
		t.Errorf("-dot 0: exit %d, output:\n%s", code, out)
	}
	if code, _, _ := runOnce(t, "-dot", "99", path); code != 2 {
		t.Errorf("-dot out of range: exit %d, want 2", code)
	}
}

// TestUsageErrors pins the exit-2 diagnostics.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := runOnce(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code, _, _ := runOnce(t, "-dut", "widget"); code != 2 {
		t.Errorf("unknown DUT: exit %d, want 2", code)
	}
	if code, _, _ := runOnce(t, filepath.Join(t.TempDir(), "missing.fir")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
