package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sonar/internal/boom"
	"sonar/internal/core"
	"sonar/internal/fuzz"
	"sonar/internal/obs"
)

// The acceptance criterion for -metrics/-events: a campaign run through the
// CLI's observer plumbing writes valid Prometheus exposition text and a JSONL
// event stream that round-trips exactly through obs.Event.
func TestMetricsAndEventsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	eventsPath := filepath.Join(dir, "events.jsonl")

	observer, finish, err := obs.CLIObserver(metricsPath, eventsPath, "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 25
	s := core.New(boom.NewLite)
	opt := fuzz.SonarOptions(iters)
	opt.Workers = 2
	opt.BatchSize = 5
	opt.Observer = observer
	st := s.Fuzz(opt)
	if err := finish(); err != nil {
		t.Fatal(err)
	}

	// Metrics: the file must parse as exposition text and agree with Stats.
	text, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	series, err := obs.ParseExposition(string(text))
	if err != nil {
		t.Fatalf("invalid exposition text: %v", err)
	}
	last := st.PerIteration[len(st.PerIteration)-1]
	for name, want := range map[string]float64{
		obs.MetricIterations:      iters,
		obs.MetricTriggeredPoints: float64(last.CumPoints),
		obs.MetricCorpusSize:      float64(st.CorpusSize),
	} {
		if series[name] != want {
			t.Errorf("%s = %v, want %v", name, series[name], want)
		}
	}
	// The identification gauges ride along via core.Sonar.
	if series[obs.MetricMonitoredPoints] <= 0 {
		t.Errorf("%s = %v, want > 0", obs.MetricMonitoredPoints, series[obs.MetricMonitoredPoints])
	}

	// Events: every JSONL line must round-trip byte-identically, and the
	// stream must start and end a campaign.
	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) < iters+2 {
		t.Fatalf("%d event lines, want at least %d", len(lines), iters+2)
	}
	var iterDone int
	var lastEvent obs.Event
	for i, line := range lines {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		again, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, again) {
			t.Fatalf("line %d does not round-trip:\n  file: %s\n  re-marshaled: %s", i+1, line, again)
		}
		if e.Kind == obs.IterationDone {
			iterDone++
		}
		lastEvent = e
	}
	var first obs.Event
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != obs.CampaignStart || first.Workers != 2 || first.Iterations != iters {
		t.Errorf("first event = %+v, want CampaignStart with workers=2 iterations=%d", first, iters)
	}
	if iterDone != iters {
		t.Errorf("%d IterationDone events, want %d", iterDone, iters)
	}
	if lastEvent.Kind != obs.CampaignEnd || lastEvent.CumPoints != last.CumPoints {
		t.Errorf("last event = %+v, want CampaignEnd with CumPoints=%d", lastEvent, last.CumPoints)
	}
}

// With every observability flag disabled the CLI plumbing must stay out of
// the way: nil Observer, no files.
func TestCLIObserverDisabled(t *testing.T) {
	observer, finish, err := obs.CLIObserver("", "", "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if observer != nil {
		t.Error("disabled CLIObserver returned a non-nil Observer")
	}
	if err := finish(); err != nil {
		t.Errorf("noop finish: %v", err)
	}
}
