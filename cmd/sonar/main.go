// Command sonar runs the full Sonar pipeline against one of the bundled
// DUTs: contention-point identification and filtering, reqsIntvl-guided
// fuzzing, and dual-differential side-channel detection.
//
// Usage:
//
//	sonar [-dut boom|nutshell|gen:<seed>|firrtl:<path>] [-iters N] [-seed N] [-workers N] [-lanes N] [-dual] [-random] [-v]
//
// Examples:
//
//	sonar -dut boom -iters 500          # guided campaign on BOOM
//	sonar -dut nutshell -random         # random-testing baseline
//	sonar -dut boom -dual -iters 200    # dual-core template (Figure 4b)
//	sonar -iters 3000 -workers 8        # sharded parallel campaign
//	sonar -dut gen:7 -lanes 64          # lane-parallel campaign on a generated netlist
//	sonar -dut firrtl:design.fir        # same, over a check-validated FIRRTL ingest
//
// Observability (see docs/OBSERVABILITY.md):
//
//	sonar -metrics metrics.prom -events events.jsonl  # file outputs
//	sonar -metrics - -progress 50                     # exposition on stdout, live line
//	sonar -metrics-addr :9090                         # live /metrics endpoint
//
// Durable campaigns (see docs/CAMPAIGNS.md):
//
//	sonar -iters 10000 -checkpoint run.ckpt           # periodic snapshots
//	sonar -resume run.ckpt                            # continue after a crash/kill
//	sonar -checkpoint run.ckpt -max-rounds 20         # time-sliced campaign
//	sonar -workers 8 -iter-timeout 30s                # abort+retry wedged iterations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sonar/internal/boom"
	"sonar/internal/core"
	"sonar/internal/detect"
	"sonar/internal/firrtl"
	"sonar/internal/fuzz"
	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
	"sonar/internal/nutshell"
	"sonar/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar: ")
	var (
		dut     = flag.String("dut", "boom", "device under test: boom, nutshell, gen:<seed> (generated netlist), or firrtl:<path> (FIRRTL ingest)")
		iters   = flag.Int("iters", 300, "fuzzing iterations")
		seed    = flag.Int64("seed", 1, "campaign RNG seed")
		workers = flag.Int("workers", 1, "parallel campaign shards (1 = legacy serial engine)")
		lanes   = flag.Int("lanes", 1, "evaluator batch width, 1..64 testcases per plane word (docs/SIMULATOR.md); campaign results are identical at every width")
		dual    = flag.Bool("dual", false, "dual-core scenario (boom only)")
		random  = flag.Bool("random", false, "disable all guidance (random-testing baseline)")
		verbose = flag.Bool("v", false, "print every finding")
		perf    = flag.Bool("perf", false, "print pipeline performance counters of the last execution")
		save    = flag.String("save", "", "directory to export finding testcases into (Testcase.Marshal format)")
		replay  = flag.String("replay", "", "replay one exported testcase file instead of fuzzing")

		metrics     = flag.String("metrics", "", "write Prometheus exposition text here after the campaign (- = stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metrics on this address during the campaign")
		events      = flag.String("events", "", "stream campaign events to this JSONL file")
		progress    = flag.Int("progress", 0, "print a live progress line to stderr every N iterations (0 = off)")

		checkpoint  = flag.String("checkpoint", "", "write periodic campaign checkpoints to this file (docs/CAMPAIGNS.md)")
		ckptEvery   = flag.Int("checkpoint-every", 500, "iterations between periodic checkpoints")
		resume      = flag.String("resume", "", "resume the campaign from this checkpoint file")
		iterTimeout = flag.Duration("iter-timeout", 0, "per-iteration deadline; wedged batches are retried on a replacement worker (0 = off)")
		maxRounds   = flag.Int("max-rounds", 0, "pause after N merge rounds, writing a checkpoint to resume from (0 = run to completion)")
	)
	flag.Parse()

	// A checkpoint pins the campaign shape, including the dual-core
	// template choice — load it before elaborating the DUT.
	var cp *fuzz.Checkpoint
	if *resume != "" {
		var err error
		if cp, err = fuzz.LoadCheckpoint(*resume); err != nil {
			log.Fatal(err)
		}
		*dual = cp.Shape.DualCore
	}

	if strings.Contains(*dut, ":") {
		netlistCampaign(*dut, cp, netlistFlags{
			iters: *iters, seed: *seed, workers: *workers, lanes: *lanes,
			random: *random, checkpoint: *checkpoint, ckptEvery: *ckptEvery,
			resume: *resume, iterTimeout: *iterTimeout, maxRounds: *maxRounds,
			metrics: *metrics, events: *events, metricsAddr: *metricsAddr,
			progress: *progress,
		})
		return
	}

	var s *core.Sonar
	switch {
	case *dut == "boom" && *dual:
		s = core.New(boom.NewDual)
	case *dut == "boom":
		s = core.New(boom.New)
	case *dut == "nutshell" && *dual:
		log.Fatal("the NutShell model is single-core")
	case *dut == "nutshell":
		s = core.New(nutshell.New)
	default:
		log.Fatalf("unknown DUT %q (want boom or nutshell)", *dut)
	}

	fmt.Print(s.Identify())

	if *replay != "" {
		src, err := os.ReadFile(*replay)
		if err != nil {
			log.Fatal(err)
		}
		tc, err := fuzz.Unmarshal(string(src))
		if err != nil {
			log.Fatal(err)
		}
		exA := s.DUT.Execute(tc, 0)
		exB := s.DUT.Execute(tc, 1)
		fmt.Printf("replayed %s: %d/%d cycles under secret 0/1\n", *replay, exA.Cycles, exB.Cycles)
		if f := detect.Analyze(exA.Log, exB.Log, exA.Snap, exB.Snap); f != nil {
			fmt.Printf("side channel reproduced:\n%s", f)
		} else {
			fmt.Println("no secret-dependent timing difference on replay")
		}
		return
	}

	opt := fuzz.SonarOptions(*iters)
	if *random {
		opt = fuzz.RandomOptions(*iters)
	}
	opt.Seed = *seed
	opt.DualCore = *dual
	opt.KeepFindings = 32
	opt.Workers = *workers
	opt.Lanes = *lanes
	if cp != nil {
		// The checkpoint's shape overrides the shape flags: resuming a
		// campaign under a different seed or strategy would break the
		// bit-identity contract, so the flags above are ignored.
		opt = cp.CampaignOptions()
		if got := s.DUT.Analysis.Netlist.Name(); got != cp.DUT {
			log.Fatalf("checkpoint %s was taken on DUT %q, -dut selects %q", *resume, cp.DUT, got)
		}
		if *checkpoint == "" {
			*checkpoint = *resume // keep checkpointing to the same file
		}
	}
	opt.Checkpoint = *checkpoint
	opt.CheckpointEvery = *ckptEvery
	opt.IterTimeout = *iterTimeout
	opt.MaxRounds = *maxRounds

	observer, finish, err := obs.CLIObserver(*metrics, *events, *metricsAddr, os.Stderr, *progress)
	if err != nil {
		log.Fatal(err)
	}
	opt.Observer = observer

	var st *fuzz.Stats
	if cp != nil {
		fmt.Printf("resuming %s: %d/%d iterations done (round %d, %d corpus seeds)...\n",
			*resume, cp.Done, cp.Shape.Iterations, cp.Round, len(cp.Corpus.Seeds))
		if st, err = s.Resume(opt, cp); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("fuzzing %d iterations (retention=%v selection=%v directed=%v dual=%v workers=%d)...\n",
			opt.Iterations, opt.Retention || opt.Selection || opt.DirectedMutation,
			opt.Selection || opt.DirectedMutation, opt.DirectedMutation, opt.DualCore, *workers)
		st = s.Fuzz(opt)
	}
	if err := finish(); err != nil {
		log.Fatal(err)
	}
	if done := len(st.PerIteration); *maxRounds > 0 && done < opt.Iterations && *checkpoint != "" {
		fmt.Printf("paused after %d merge rounds at iteration %d/%d; resume with -resume %s\n",
			*maxRounds, done, opt.Iterations, *checkpoint)
	}
	last := st.PerIteration[len(st.PerIteration)-1]
	fmt.Printf("triggered %d contention points, %d testcases exposed secret-dependent timing differences\n",
		last.CumPoints, last.CumTimingDiffs)
	fmt.Printf("corpus %d seeds, %d simulated cycles\n", st.CorpusSize, st.ExecutedCycles)

	if *perf {
		if *workers > 1 {
			fmt.Println("\npipeline counters unavailable: parallel workers run on private DUTs")
		} else {
			fmt.Printf("\npipeline counters (last execution, core 0):\n%s", s.DUT.SoC.Cores[0].Perf())
		}
	}

	if len(st.Findings) == 0 {
		fmt.Println("no side channels detected")
		os.Exit(0)
	}
	fmt.Printf("\nimplicated channel families (§7.2 justification):\n%s",
		detect.RenderClasses(detect.Classify(st.Findings)))
	if *save != "" {
		if err := os.MkdirAll(*save, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, tc := range st.FindingSeeds {
			name := filepath.Join(*save, fmt.Sprintf("finding-%03d.s", i+1))
			if err := os.WriteFile(name, []byte(tc.Marshal()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("exported %d finding testcases to %s\n", len(st.FindingSeeds), *save)
	}

	fmt.Printf("\n%d retained findings (dual-differential verified):\n", len(st.Findings))
	for i, f := range st.Findings {
		if !*verbose && i >= 3 {
			fmt.Printf("... %d more (use -v)\n", len(st.Findings)-i)
			break
		}
		fmt.Printf("--- finding %d ---\n%s", i+1, f)
	}
}

// netlistFlags carries the campaign flags the netlist path honors. The
// behavioral-only flags (-dual, -replay, -save, -perf, -v) do not apply:
// netlist campaigns exercise contention coverage and intervals, not
// commit-log findings.
type netlistFlags struct {
	iters       int
	seed        int64
	workers     int
	lanes       int
	random      bool
	checkpoint  string
	ckptEvery   int
	resume      string
	iterTimeout time.Duration
	maxRounds   int
	metrics     string
	events      string
	metricsAddr string
	progress    int
}

// netlistElab parses -dut specs of the form gen:<seed> (a generated design,
// internal/hdl/gen) or firrtl:<path> (a check-validated FIRRTL ingest) into
// a deterministic elaborator.
func netlistElab(spec string) (func() (*hdl.Netlist, error), error) {
	switch {
	case strings.HasPrefix(spec, "gen:"):
		seed, err := strconv.ParseInt(strings.TrimPrefix(spec, "gen:"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed in -dut %q: %v", spec, err)
		}
		// A campaign-shaped design: arbiters give the contention-point
		// analysis something to monitor (gen's zero config has none).
		cfg := gen.Config{Seed: seed, Nodes: 96, Regs: 8, Arbiters: 4}
		return func() (*hdl.Netlist, error) { return gen.New(cfg) }, nil
	case strings.HasPrefix(spec, "firrtl:"):
		src, err := os.ReadFile(strings.TrimPrefix(spec, "firrtl:"))
		if err != nil {
			return nil, err
		}
		return func() (*hdl.Netlist, error) { return firrtl.ParseChecked(string(src)) }, nil
	}
	return nil, fmt.Errorf("unknown netlist DUT spec %q (want gen:<seed> or firrtl:<path>)", spec)
}

// netlistCampaign runs a lane-parallel fuzzing campaign over a netlist DUT:
// the design is compiled through sim's optimizing pipeline and whole lane
// groups of testcase pairs execute bit-parallel (docs/CAMPAIGNS.md).
func netlistCampaign(spec string, cp *fuzz.Checkpoint, f netlistFlags) {
	elab, err := netlistElab(spec)
	if err != nil {
		log.Fatal(err)
	}
	factory, err := fuzz.LaneDUTFactory(elab, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	probe := factory().(*fuzz.LaneDUT)
	an := probe.ContentionAnalysis()
	cs := probe.CompileStats()
	fmt.Printf("%s: %d contention points monitored; optimizer kept %d nodes (%d eliminated, %d fused, %d collapsed, %d on the spill path)\n",
		an.Netlist.Name(), len(an.Monitored()), cs.Nodes, cs.Eliminated, cs.Fused, cs.Collapsed, cs.Spilled)

	opt := fuzz.SonarOptions(f.iters)
	if f.random {
		opt = fuzz.RandomOptions(f.iters)
	}
	opt.Seed = f.seed
	opt.Workers = f.workers
	opt.Lanes = f.lanes
	if cp != nil {
		opt = cp.CampaignOptions()
		if got := an.Netlist.Name(); got != cp.DUT {
			log.Fatalf("checkpoint %s was taken on DUT %q, -dut selects %q", f.resume, cp.DUT, got)
		}
		if f.checkpoint == "" {
			f.checkpoint = f.resume // keep checkpointing to the same file
		}
	}
	opt.Checkpoint = f.checkpoint
	opt.CheckpointEvery = f.ckptEvery
	opt.IterTimeout = f.iterTimeout
	opt.MaxRounds = f.maxRounds

	observer, finish, err := obs.CLIObserver(f.metrics, f.events, f.metricsAddr, os.Stderr, f.progress)
	if err != nil {
		log.Fatal(err)
	}
	opt.Observer = observer

	var st *fuzz.Stats
	if cp != nil {
		fmt.Printf("resuming %s: %d/%d iterations done (round %d, %d corpus seeds)...\n",
			f.resume, cp.Done, cp.Shape.Iterations, cp.Round, len(cp.Corpus.Seeds))
		if st, err = fuzz.ResumeExec(factory, opt, cp); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("fuzzing %d iterations over the netlist (%d-pair lane groups, workers=%d, lanes=%d)...\n",
			opt.Iterations, probe.GroupWidth(), opt.Workers, opt.Lanes)
		st = fuzz.RunParallelExec(factory, opt)
	}
	if err := finish(); err != nil {
		log.Fatal(err)
	}
	if done := len(st.PerIteration); f.maxRounds > 0 && done < opt.Iterations && f.checkpoint != "" {
		fmt.Printf("paused after %d merge rounds at iteration %d/%d; resume with -resume %s\n",
			f.maxRounds, done, opt.Iterations, f.checkpoint)
		return
	}
	if len(st.PerIteration) == 0 {
		fmt.Println("no iterations executed")
		return
	}
	last := st.PerIteration[len(st.PerIteration)-1]
	fmt.Printf("triggered %d contention points, %d testcases exposed secret-dependent timing differences\n",
		last.CumPoints, last.CumTimingDiffs)
	fmt.Printf("corpus %d seeds, %d simulated cycles\n", st.CorpusSize, st.ExecutedCycles)
}
