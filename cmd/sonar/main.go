// Command sonar runs the full Sonar pipeline against one of the bundled
// DUTs: contention-point identification and filtering, reqsIntvl-guided
// fuzzing, and dual-differential side-channel detection.
//
// Usage:
//
//	sonar [-dut boom|nutshell] [-iters N] [-seed N] [-workers N] [-lanes N] [-dual] [-random] [-v]
//
// Examples:
//
//	sonar -dut boom -iters 500          # guided campaign on BOOM
//	sonar -dut nutshell -random         # random-testing baseline
//	sonar -dut boom -dual -iters 200    # dual-core template (Figure 4b)
//	sonar -iters 3000 -workers 8        # sharded parallel campaign
//
// Observability (see docs/OBSERVABILITY.md):
//
//	sonar -metrics metrics.prom -events events.jsonl  # file outputs
//	sonar -metrics - -progress 50                     # exposition on stdout, live line
//	sonar -metrics-addr :9090                         # live /metrics endpoint
//
// Durable campaigns (see docs/CAMPAIGNS.md):
//
//	sonar -iters 10000 -checkpoint run.ckpt           # periodic snapshots
//	sonar -resume run.ckpt                            # continue after a crash/kill
//	sonar -checkpoint run.ckpt -max-rounds 20         # time-sliced campaign
//	sonar -workers 8 -iter-timeout 30s                # abort+retry wedged iterations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sonar/internal/boom"
	"sonar/internal/core"
	"sonar/internal/detect"
	"sonar/internal/fuzz"
	"sonar/internal/nutshell"
	"sonar/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar: ")
	var (
		dut     = flag.String("dut", "boom", "device under test: boom or nutshell")
		iters   = flag.Int("iters", 300, "fuzzing iterations")
		seed    = flag.Int64("seed", 1, "campaign RNG seed")
		workers = flag.Int("workers", 1, "parallel campaign shards (1 = legacy serial engine)")
		lanes   = flag.Int("lanes", 1, "evaluator batch width, 1..64 testcases per plane word (docs/SIMULATOR.md); campaign results are identical at every width")
		dual    = flag.Bool("dual", false, "dual-core scenario (boom only)")
		random  = flag.Bool("random", false, "disable all guidance (random-testing baseline)")
		verbose = flag.Bool("v", false, "print every finding")
		perf    = flag.Bool("perf", false, "print pipeline performance counters of the last execution")
		save    = flag.String("save", "", "directory to export finding testcases into (Testcase.Marshal format)")
		replay  = flag.String("replay", "", "replay one exported testcase file instead of fuzzing")

		metrics     = flag.String("metrics", "", "write Prometheus exposition text here after the campaign (- = stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metrics on this address during the campaign")
		events      = flag.String("events", "", "stream campaign events to this JSONL file")
		progress    = flag.Int("progress", 0, "print a live progress line to stderr every N iterations (0 = off)")

		checkpoint  = flag.String("checkpoint", "", "write periodic campaign checkpoints to this file (docs/CAMPAIGNS.md)")
		ckptEvery   = flag.Int("checkpoint-every", 500, "iterations between periodic checkpoints")
		resume      = flag.String("resume", "", "resume the campaign from this checkpoint file")
		iterTimeout = flag.Duration("iter-timeout", 0, "per-iteration deadline; wedged batches are retried on a replacement worker (0 = off)")
		maxRounds   = flag.Int("max-rounds", 0, "pause after N merge rounds, writing a checkpoint to resume from (0 = run to completion)")
	)
	flag.Parse()

	// A checkpoint pins the campaign shape, including the dual-core
	// template choice — load it before elaborating the DUT.
	var cp *fuzz.Checkpoint
	if *resume != "" {
		var err error
		if cp, err = fuzz.LoadCheckpoint(*resume); err != nil {
			log.Fatal(err)
		}
		*dual = cp.Shape.DualCore
	}

	var s *core.Sonar
	switch {
	case *dut == "boom" && *dual:
		s = core.New(boom.NewDual)
	case *dut == "boom":
		s = core.New(boom.New)
	case *dut == "nutshell" && *dual:
		log.Fatal("the NutShell model is single-core")
	case *dut == "nutshell":
		s = core.New(nutshell.New)
	default:
		log.Fatalf("unknown DUT %q (want boom or nutshell)", *dut)
	}

	fmt.Print(s.Identify())

	if *replay != "" {
		src, err := os.ReadFile(*replay)
		if err != nil {
			log.Fatal(err)
		}
		tc, err := fuzz.Unmarshal(string(src))
		if err != nil {
			log.Fatal(err)
		}
		exA := s.DUT.Execute(tc, 0)
		exB := s.DUT.Execute(tc, 1)
		fmt.Printf("replayed %s: %d/%d cycles under secret 0/1\n", *replay, exA.Cycles, exB.Cycles)
		if f := detect.Analyze(exA.Log, exB.Log, exA.Snap, exB.Snap); f != nil {
			fmt.Printf("side channel reproduced:\n%s", f)
		} else {
			fmt.Println("no secret-dependent timing difference on replay")
		}
		return
	}

	opt := fuzz.SonarOptions(*iters)
	if *random {
		opt = fuzz.RandomOptions(*iters)
	}
	opt.Seed = *seed
	opt.DualCore = *dual
	opt.KeepFindings = 32
	opt.Workers = *workers
	opt.Lanes = *lanes
	if cp != nil {
		// The checkpoint's shape overrides the shape flags: resuming a
		// campaign under a different seed or strategy would break the
		// bit-identity contract, so the flags above are ignored.
		opt = cp.CampaignOptions()
		if got := s.DUT.Analysis.Netlist.Name(); got != cp.DUT {
			log.Fatalf("checkpoint %s was taken on DUT %q, -dut selects %q", *resume, cp.DUT, got)
		}
		if *checkpoint == "" {
			*checkpoint = *resume // keep checkpointing to the same file
		}
	}
	opt.Checkpoint = *checkpoint
	opt.CheckpointEvery = *ckptEvery
	opt.IterTimeout = *iterTimeout
	opt.MaxRounds = *maxRounds

	observer, finish, err := obs.CLIObserver(*metrics, *events, *metricsAddr, os.Stderr, *progress)
	if err != nil {
		log.Fatal(err)
	}
	opt.Observer = observer

	var st *fuzz.Stats
	if cp != nil {
		fmt.Printf("resuming %s: %d/%d iterations done (round %d, %d corpus seeds)...\n",
			*resume, cp.Done, cp.Shape.Iterations, cp.Round, len(cp.Corpus.Seeds))
		if st, err = s.Resume(opt, cp); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("fuzzing %d iterations (retention=%v selection=%v directed=%v dual=%v workers=%d)...\n",
			opt.Iterations, opt.Retention || opt.Selection || opt.DirectedMutation,
			opt.Selection || opt.DirectedMutation, opt.DirectedMutation, opt.DualCore, *workers)
		st = s.Fuzz(opt)
	}
	if err := finish(); err != nil {
		log.Fatal(err)
	}
	if done := len(st.PerIteration); *maxRounds > 0 && done < opt.Iterations && *checkpoint != "" {
		fmt.Printf("paused after %d merge rounds at iteration %d/%d; resume with -resume %s\n",
			*maxRounds, done, opt.Iterations, *checkpoint)
	}
	last := st.PerIteration[len(st.PerIteration)-1]
	fmt.Printf("triggered %d contention points, %d testcases exposed secret-dependent timing differences\n",
		last.CumPoints, last.CumTimingDiffs)
	fmt.Printf("corpus %d seeds, %d simulated cycles\n", st.CorpusSize, st.ExecutedCycles)

	if *perf {
		if *workers > 1 {
			fmt.Println("\npipeline counters unavailable: parallel workers run on private DUTs")
		} else {
			fmt.Printf("\npipeline counters (last execution, core 0):\n%s", s.DUT.SoC.Cores[0].Perf())
		}
	}

	if len(st.Findings) == 0 {
		fmt.Println("no side channels detected")
		os.Exit(0)
	}
	fmt.Printf("\nimplicated channel families (§7.2 justification):\n%s",
		detect.RenderClasses(detect.Classify(st.Findings)))
	if *save != "" {
		if err := os.MkdirAll(*save, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, tc := range st.FindingSeeds {
			name := filepath.Join(*save, fmt.Sprintf("finding-%03d.s", i+1))
			if err := os.WriteFile(name, []byte(tc.Marshal()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("exported %d finding testcases to %s\n", len(st.FindingSeeds), *save)
	}

	fmt.Printf("\n%d retained findings (dual-differential verified):\n", len(st.Findings))
	for i, f := range st.Findings {
		if !*verbose && i >= 3 {
			fmt.Printf("... %d more (use -v)\n", len(st.Findings)-i)
			break
		}
		fmt.Printf("--- finding %d ---\n%s", i+1, f)
	}
}
