// Command sonar-server hosts the distributed campaign service: an HTTP+JSON
// API that accepts campaign specs (a named built-in DUT or FIRRTL text),
// splits fuzzing campaigns into shard leases for sonar-worker processes,
// folds reported results in canonical order, and serves per-campaign
// events, stats, checkpoints, and Prometheus metrics.
//
// The full API reference and operator runbook are in docs/SERVICE.md.
//
// Usage:
//
//	sonar-server [-addr :8714] [-lease-ttl 30s] [-max-retries N]
//
// Examples:
//
//	sonar-server                                  # defaults, all built-in DUTs
//	sonar-server -addr 127.0.0.1:8714             # loopback only
//	sonar-server -lease-ttl 2m -max-retries 5     # slow workers, patient retries
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"sonar/internal/fleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sonar-server: ")
	var (
		addr       = flag.String("addr", ":8714", "listen address for the HTTP API")
		leaseTTL   = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "shard lease time-to-live; workers renew at a third of it, so it must comfortably exceed one batch's execution time (docs/SERVICE.md)")
		maxRetries = flag.Int("max-retries", 0, "expired-lease re-offers per shard per round before the shard is abandoned (0 = engine default of 2, negative = none)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments %v", flag.Args())
	}

	ct := fleet.NewController(fleet.Config{
		LeaseTTL:   *leaseTTL,
		MaxRetries: *maxRetries,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.NewServer(ct),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("serving campaign API on %s (lease TTL %v)", *addr, *leaseTTL)
	log.Fatal(srv.ListenAndServe())
}
