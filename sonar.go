// Package sonar is a from-scratch Go implementation of Sonar, the hardware
// fuzzing framework for uncovering contention side channels in processors
// (MICRO 2025). It bundles:
//
//   - a structural netlist IR and FIRRTL-style frontend (the analysis
//     substrate);
//   - MUX-based bottom-up tracing that identifies contention points,
//     request-validity determination, and risk filtering (paper §5);
//   - runtime instrumentation collecting contention-critical states —
//     requests, selects, outputs, and inter-request intervals — within a
//     secret-dependent monitoring window (§5.1, §6.1);
//   - reqsIntvl-guided fuzzing with seed retention, rank-weighted
//     selection, and adaptive directed mutation (§6.2);
//   - dual-differential side-channel detection: commit-cycle-difference
//     filtering plus contention-state comparison (§7);
//   - Meltdown-style exploitability analysis (§7.3, §8.5);
//   - cycle-accurate models of the two evaluation DUTs, a BOOM-like and a
//     NutShell-like out-of-order RISC-V core (Table 1), containing the
//     fourteen side channels of Table 3.
//
// Quick start:
//
//	s := sonar.NewBoom()
//	fmt.Print(s.Identify())                    // Figures 6 & 7
//	stats := s.Fuzz(sonar.SonarOptions(100))   // guided campaign
//	for _, f := range stats.Findings { fmt.Print(f) }
//
// See the examples directory for runnable scenarios and DESIGN.md for the
// system inventory and experiment index.
package sonar

import (
	"io"

	"sonar/internal/attack"
	"sonar/internal/baseline"
	"sonar/internal/boom"
	"sonar/internal/core"
	"sonar/internal/fuzz"
	"sonar/internal/nutshell"
	"sonar/internal/obs"
	"sonar/internal/uarch"
)

// Re-exported types forming the public API surface.
type (
	// Sonar is the end-to-end pipeline over one DUT.
	Sonar = core.Sonar
	// IdentificationReport summarizes contention-point identification.
	IdentificationReport = core.IdentificationReport
	// Options configures a fuzzing campaign.
	Options = fuzz.Options
	// Stats is a campaign result.
	Stats = fuzz.Stats
	// Testcase is a template-shaped fuzzing input.
	Testcase = fuzz.Testcase
	// Checkpoint is a resumable snapshot of a campaign at a merge barrier
	// (docs/CAMPAIGNS.md).
	Checkpoint = fuzz.Checkpoint
	// CheckpointShape is the campaign-defining option subset a checkpoint
	// stores and Resume validates.
	CheckpointShape = fuzz.Shape
	// FaultHook intercepts worker iterations; the fuzz/faultinject package
	// implements it for deterministic fault-injection tests.
	FaultHook = fuzz.FaultHook
	// PoC is a Meltdown-style exploit template.
	PoC = attack.PoC
	// AttackResult is a PoC evaluation outcome.
	AttackResult = attack.Result
	// SoC is an elaborated system model.
	SoC = uarch.SoC
	// Observer collects campaign metrics and streams campaign events;
	// attach one via Options.Observer (see docs/OBSERVABILITY.md).
	Observer = obs.Observer
	// Event is one structured campaign event.
	Event = obs.Event
	// EventKind discriminates campaign events.
	EventKind = obs.Kind
	// Sink receives campaign events in emit order.
	Sink = obs.Sink
	// MemorySink buffers events in memory (tests, programmatic consumers).
	MemorySink = obs.MemorySink
)

// KeyBytes is the privileged key size used by exploitability analysis.
const KeyBytes = attack.KeyBytes

// Campaign event kinds (docs/OBSERVABILITY.md).
const (
	CampaignStart   = obs.CampaignStart
	IterationDone   = obs.IterationDone
	PointTriggered  = obs.PointTriggered
	FindingDetected = obs.FindingDetected
	BatchMerged     = obs.BatchMerged
	CampaignEnd     = obs.CampaignEnd
	WorkerFailed    = obs.WorkerFailed
	BatchRetried    = obs.BatchRetried
)

// LoadCheckpoint reads and validates a campaign checkpoint file; resume it
// with (*Sonar).Resume (docs/CAMPAIGNS.md).
func LoadCheckpoint(path string) (*Checkpoint, error) { return fuzz.LoadCheckpoint(path) }

// NewBoom builds the Sonar pipeline over the single-core BOOM-like DUT
// with its full structural netlist.
func NewBoom() *Sonar { return core.New(boom.New) }

// NewBoomDual builds the pipeline over the dual-core BOOM-like DUT
// (template Figure 4b).
func NewBoomDual() *Sonar { return core.New(boom.NewDual) }

// NewBoomLite builds the pipeline over the BOOM-like DUT without bulk
// structural arrays: same timing behaviour, much faster to elaborate.
func NewBoomLite() *Sonar { return core.New(boom.NewLite) }

// NewNutshell builds the pipeline over the NutShell-like DUT with its full
// structural netlist.
func NewNutshell() *Sonar { return core.New(nutshell.New) }

// NewNutshellLite builds the pipeline over the NutShell-like DUT without
// bulk structural arrays.
func NewNutshellLite() *Sonar { return core.New(nutshell.NewLite) }

// NewObserver builds a campaign Observer fanning events out to the sinks.
func NewObserver(sinks ...Sink) *Observer { return obs.New(sinks...) }

// NewJSONLSink streams events to w as JSON Lines.
func NewJSONLSink(w io.Writer) Sink { return obs.NewJSONLSink(w) }

// NewMemorySink buffers events in memory.
func NewMemorySink() *MemorySink { return obs.NewMemorySink() }

// NewProgressSink renders a live progress line to w every `every`
// iterations.
func NewProgressSink(w io.Writer, every int) Sink { return obs.NewProgressSink(w, every) }

// SonarOptions returns the full guided-fuzzing strategy set (§6.2).
func SonarOptions(iterations int) Options { return fuzz.SonarOptions(iterations) }

// RandomOptions returns the unguided random-testing baseline (Figure 8).
func RandomOptions(iterations int) Options { return fuzz.RandomOptions(iterations) }

// RunSpecDoctor runs the SpecDoctor-style coverage-guided baseline
// (Figure 11) on a pipeline's DUT.
func RunSpecDoctor(s *Sonar, iterations int, seed int64) *Stats {
	return baseline.RunSpecDoctor(s.DUT, iterations, seed)
}

// BoomPoCs returns the Meltdown-style PoCs for the BOOM side channels
// (S1-S7, S11, S12).
func BoomPoCs() []PoC {
	return attack.BoomPoCs(func() *uarch.SoC { return boom.NewLite() })
}

// NutshellPoCs returns the PoCs for the NutShell side channels (S13, S14).
func NutshellPoCs() []PoC {
	return attack.NutshellPoCs(func() *uarch.SoC { return nutshell.NewLite() })
}

// Exploit evaluates PoCs against a privileged key (§8.5).
func Exploit(pocs []PoC, key [KeyBytes]byte, attempts, trialsPerBit int, seed int64) []AttackResult {
	return core.Exploit(pocs, key, attempts, trialsPerBit, seed)
}

// ExploitCrossCore runs the dual-core TileLink attack (Table 3 footnote †):
// an attacker core recovers the victim core's key from its own load timing
// over the shared D-channel.
func ExploitCrossCore(key [KeyBytes]byte, attempts, trialsPerBit int, seed int64) AttackResult {
	return attack.RunCrossCore(func() *uarch.SoC { return boom.NewDualLite() },
		key, attempts, trialsPerBit, seed)
}
