// Meltdown: exploitability analysis of the discovered side channels
// (paper §7.3 and §8.5).
//
// Every PoC follows Listing 1: a computation block delays an older
// contending instruction, a privileged load faults but forwards its data
// transiently, and the secret bit decides whether the transient dependents
// contend with the older instruction. The attacker reads the cycle counter
// in the exception handler and recovers a 128-bit kernel key bit by bit.
//
// On the BOOM-like core (lazy, commit-time exception handling) the key is
// recovered; on the NutShell-like core, early in-pipeline exception
// detection collapses the transient window and the attacks fail — exactly
// the paper's finding.
//
//	go run ./examples/meltdown
package main

import (
	"fmt"

	"sonar"
)

func main() {
	key := [sonar.KeyBytes]byte{
		0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67,
		0x89, 0xAB, 0xCD, 0xEF, 0x5A, 0xA5, 0x3C, 0xC3,
	}
	fmt.Printf("planting %d-bit key in privileged memory: %x\n\n", sonar.KeyBytes*8, key)

	fmt.Println("BOOM (lazy exception handling -> transient window):")
	for _, r := range sonar.Exploit(sonar.BoomPoCs(), key, 1, 7, 42) {
		report(r)
	}
	fmt.Println("\nNutShell (early exception detection -> window collapses):")
	for _, r := range sonar.Exploit(sonar.NutshellPoCs(), key, 1, 7, 42) {
		report(r)
	}

	fmt.Println("\nDual-core TileLink attack (no fault, no transient execution):")
	report(sonar.ExploitCrossCore(key, 1, 7, 42))
}

func report(r sonar.AttackResult) {
	verdict := "key NOT recovered"
	if r.KeyAccuracy >= 1 {
		verdict = "key recovered exactly"
	}
	fmt.Printf("  %-4s signal %4.0f cycles   bit accuracy %6.1f%%   %s\n",
		r.ID, r.Signal, 100*r.BitAccuracy, verdict)
}
