// Dualcore: the paper's Figure 4b scenario — a victim core executes
// secret-dependent instructions while an attacker core hammers the shared
// TileLink D-channel; the secret modulates the contention the attacker's
// own loads experience, so the attacker's commit timing leaks the secret.
//
//	go run ./examples/dualcore
package main

import (
	"fmt"

	"sonar"
)

func main() {
	// Two BOOM-like cores share the L2 and the TileLink D-channel.
	s := sonar.NewBoomDual()

	opt := sonar.SonarOptions(120)
	opt.DualCore = true
	opt.KeepFindings = 4
	stats := s.Fuzz(opt)

	last := stats.PerIteration[len(stats.PerIteration)-1]
	fmt.Printf("dual-core campaign: %d testcases, %d contention points triggered, %d timing differences\n",
		last.Iteration, last.CumPoints, last.CumTimingDiffs)

	if len(stats.Findings) == 0 {
		fmt.Println("no cross-core side channels surfaced at this budget — raise the iteration count")
		return
	}
	fmt.Println("\ncross-core findings (attacker- or victim-side CCD differences + contention-state diffs):")
	for i, f := range stats.Findings {
		fmt.Printf("--- finding %d ---\n%s", i+1, f)
		for _, comp := range f.Components() {
			if comp == "tilelink" {
				fmt.Println("    ^ the shared TileLink D-channel is implicated: the S1-S4 family")
			}
		}
	}
}
