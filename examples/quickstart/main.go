// Quickstart: the whole Sonar pipeline in one page.
//
// It builds the BOOM-like DUT, identifies and filters contention points
// (paper §5), runs a short interval-guided fuzzing campaign (§6), and
// prints the side channels the dual-differential comparison confirms (§7).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"sonar"
)

func main() {
	// 1. Elaborate the DUT and run the static analysis: bottom-up MUX
	// tracing locates the contention points; the risk filter drops the
	// ones that cannot leak.
	s := sonar.NewBoom()
	fmt.Print(s.Identify())

	// 2. Fuzz with the full guidance stack: seeds that reduce the minimum
	// inter-request interval at any contention point are retained, points
	// closest to triggering are targeted, and the adaptive directed
	// mutation walks the dependency-chain length toward simultaneity.
	opt := sonar.SonarOptions(120)
	opt.KeepFindings = 5
	stats := s.Fuzz(opt)

	last := stats.PerIteration[len(stats.PerIteration)-1]
	fmt.Printf("\nafter %d testcases: %d contention points triggered, %d secret-dependent timing differences\n",
		last.Iteration, last.CumPoints, last.CumTimingDiffs)

	// 3. Each finding pairs CCD-filtered affected instructions with the
	// contention points whose states diverged under the two secrets — the
	// dual-differential report that makes root-causing fast (§8.3.5).
	for i, f := range stats.Findings {
		fmt.Printf("\nfinding %d:\n%s", i+1, f)
	}
}
