// Waveform: dump a simulated circuit's signals as a VCD file.
//
// The Figure 3 contention point is simulated with two request valids
// colliding, and every signal is streamed to waves.vcd — open it in GTKWave
// to see the simultaneous arrival the monitor reports as a triggered
// volatile contention.
//
//	go run ./examples/waveform && gtkwave waves.vcd
package main

import (
	"fmt"
	"log"
	"os"

	"sonar/internal/firrtl"
	"sonar/internal/sim"
)

const circuit = `
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    output ldq_stq_idx : UInt<5>
    reg count : UInt<8>
    node next = add(count, UInt<8>(1))
    count <= next
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, io_stq_bits_idx)
`

func main() {
	net, err := firrtl.Parse(circuit)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("waves.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	vcd := sim.NewVCD(f, net, nil)
	s, err := sim.New(net)
	if err != nil {
		log.Fatal(err)
	}
	poke := func(name string, v uint64) {
		if err := s.Poke(name, v); err != nil {
			log.Fatal(err)
		}
	}
	poke("Lsu.io_ldq_bits_idx", 7)
	poke("Lsu.io_stq_bits_idx", 9)
	s.Run(3)
	poke("Lsu.io_ldq_valid", 1)
	poke("Lsu.io_stq_valid", 1) // simultaneous arrival
	s.Run(2)
	poke("Lsu.sel_ldq", 1) // grant the load queue
	s.Run(3)
	if err := vcd.Close(net.Cycle()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote waves.vcd — 8 cycles of the Figure 3 contention point")
}
