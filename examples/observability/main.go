// Observability: attach the campaign observability layer to a parallel
// fuzzing campaign — a JSONL event stream on disk, an in-memory sink for
// programmatic consumption, and a Prometheus-style metrics dump at the end
// (docs/OBSERVABILITY.md documents every metric and event).
//
// The event stream is part of the determinism contract: for a fixed
// (Seed, Workers, BatchSize) the merged stream is byte-identical across
// runs, so diffing two events.jsonl files is a campaign-reproducibility
// check.
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"

	"sonar"
)

func main() {
	f, err := os.Create("events.jsonl")
	if err != nil {
		log.Fatal(err)
	}

	// One Observer fans events out to any number of sinks; metrics
	// accumulate on the Observer itself.
	mem := sonar.NewMemorySink()
	o := sonar.NewObserver(sonar.NewJSONLSink(f), mem)

	s := sonar.NewBoomLite()
	opt := sonar.SonarOptions(200)
	opt.Workers = 4
	opt.BatchSize = 16
	opt.Observer = o
	stats := s.Fuzz(opt)
	if err := o.Close(); err != nil {
		log.Fatal(err)
	}

	// The in-memory sink holds the same stream the file received.
	var triggered int
	for _, e := range mem.Events() {
		if e.Kind == sonar.PointTriggered {
			triggered++
		}
	}
	last := stats.PerIteration[len(stats.PerIteration)-1]
	fmt.Printf("campaign: %d iterations, %d PointTriggered events (= %d cumulative points)\n",
		opt.Iterations, triggered, last.CumPoints)
	fmt.Printf("wrote %d events to events.jsonl\n", len(mem.Events()))

	// Metrics render as Prometheus exposition text, ready to write to a
	// file or serve over HTTP via o.Metrics.Handler().
	fmt.Println("\nmetrics:")
	fmt.Print(o.Metrics.ExpositionText())
}
