// Tracing: the paper's Figure 3 worked example.
//
// A FIRRTL snippet containing the cascaded MUXes behind BOOM's
// ldq_stq_idx selection is parsed, bottom-up tracing reconstructs the n:1
// contention point, and Algorithm 1 resolves each request's validity. The
// circuit is then simulated so the instrumentation records a simultaneous
// arrival (reqsIntvl = 0): a triggered volatile contention.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"

	"sonar/internal/firrtl"
	"sonar/internal/monitor"
	"sonar/internal/sim"
	"sonar/internal/trace"
)

const lsuCircuit = `
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input io_fwd_valid : UInt<1>
    input io_fwd_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    input sel_stq : UInt<1>
    output ldq_stq_idx : UInt<5>
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, mux(sel_stq, io_stq_bits_idx, io_fwd_bits_idx))
`

func main() {
	net, err := firrtl.Parse(lsuCircuit)
	if err != nil {
		log.Fatal(err)
	}

	// Bottom-up tracing: the two cascaded 2:1 MUXes collapse into one 3:1
	// contention point at ldq_stq_idx.
	analysis := trace.Analyze(net)
	fmt.Printf("%d 2:1 MUXes -> %d contention point(s)\n", analysis.NaiveMuxCount, len(analysis.Points))
	p := analysis.Points[0]
	fmt.Printf("contention point: %s (%d:1)\n", p.Out.Name(), p.Fanin())
	for i := range p.Requests {
		r := &p.Requests[i]
		fmt.Printf("  request %d: %-24s valid: %s\n", i, r.Data.Local(), r.Valids[0].Local())
	}

	// Instrument and simulate: the load-queue and store-queue requests
	// assert their valids in the same cycle — reqsIntvl reaches zero.
	mon := monitor.New(analysis, monitor.Config{})
	mon.SetWindow(true)
	s, err := sim.New(net)
	if err != nil {
		log.Fatal(err)
	}
	poke := func(name string, v uint64) {
		if err := s.Poke(name, v); err != nil {
			log.Fatal(err)
		}
	}
	poke("Lsu.io_ldq_bits_idx", 7)
	poke("Lsu.io_stq_bits_idx", 9)
	poke("Lsu.io_ldq_valid", 1)
	poke("Lsu.io_stq_valid", 1) // same cycle: simultaneous arrival
	s.Tick()

	snap := mon.Snapshot()
	ps := snap.Points[0]
	fmt.Printf("\nafter simulation: reqsIntvl = %d, volatile contention triggered: %v\n",
		ps.MinIntvlDistinct, ps.VolatileContention)
	for _, e := range ps.Events {
		fmt.Printf("  cycle %d: request %d arrived with data %d\n", e.Cycle, e.Req, e.Data)
	}
}
