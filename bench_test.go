// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8). Each benchmark wraps the corresponding internal/experiments
// generator; run them all with
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline numbers (counts,
// reductions, gains) so a benchmark run doubles as a results summary; see
// EXPERIMENTS.md for paper-vs-measured values.
package sonar

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"sonar/internal/boom"
	"sonar/internal/experiments"
	"sonar/internal/fuzz"
)

// benchIters is the campaign length used by the campaign benchmarks. The
// paper runs 3000 iterations; benchmarks use a shorter budget so the full
// suite stays in CI range. cmd/sonar-bench -iters 3000 reproduces the
// paper-scale run.
const benchIters = 500

func BenchmarkTable1_DUTConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure6_ContentionPointIdentification(b *testing.B) {
	var rs []experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		rs = experiments.Figure6()
	}
	b.ReportMetric(float64(rs[0].TracedPoints), "boom-points")
	b.ReportMetric(100*rs[0].Reduction(), "boom-reduction-%")
	b.ReportMetric(float64(rs[1].TracedPoints), "nutshell-points")
	b.ReportMetric(100*rs[1].Reduction(), "nutshell-reduction-%")
}

func BenchmarkFigure7_DistributionAndFiltering(b *testing.B) {
	var rs []experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		rs = experiments.Figure7()
	}
	b.ReportMetric(100*rs[0].FilterReduction(), "boom-filtered-%")
	b.ReportMetric(100*rs[1].FilterReduction(), "nutshell-filtered-%")
}

func BenchmarkTable2_InstrumentationOverhead(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(10)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.SimSlowdown(), r.DUT+"-sim-slowdown-%")
		b.ReportMetric(100*r.CompileOverhead(), r.DUT+"-compile-overhead-%")
	}
}

func BenchmarkFigure8_SonarVsRandom(b *testing.B) {
	var rs []experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		rs = experiments.Figure8(benchIters)
	}
	for _, r := range rs {
		b.ReportMetric(100*r.ContentionGain(), r.DUT+"-contention-gain-%")
		b.ReportMetric(100*r.TimingDiffGain(), r.DUT+"-timingdiff-gain-%")
	}
}

func BenchmarkFigure9_SingleValidDominance(b *testing.B) {
	var r experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure9()
	}
	b.ReportMetric(100*r.DominanceShare(), "single-valid-share-%")
}

func BenchmarkFigure10_StrategyBreakdown(b *testing.B) {
	var r experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(benchIters)
	}
	for _, s := range r.Series {
		name := strings.ReplaceAll(s.Name, " ", "-")
		b.ReportMetric(float64(s.Final().CumPoints), name+"-points")
	}
}

func BenchmarkFigure11_SonarVsSpecDoctor(b *testing.B) {
	var r experiments.Figure11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure11(benchIters)
	}
	b.ReportMetric(r.NewContentionRatio(), "sonar/specdoctor-ratio")
	last := r.Complexity[len(r.Complexity)-1]
	b.ReportMetric(float64(last.SpecDoctorNs)/float64(last.SonarNs), "instr-cost-ratio-at-16k")
}

func BenchmarkTable3_SideChannels(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(3)
	}
	detected := 0
	for _, r := range rows {
		if r.TimeDiff > 0 {
			detected++
		}
	}
	b.ReportMetric(float64(detected), "channels-with-timing-diff")
	b.ReportMetric(float64(len(rows)), "channels-total")
}

func BenchmarkExploitation_PoCAccuracy(b *testing.B) {
	var rs []AttackResult
	for i := 0; i < b.N; i++ {
		rs = experiments.Exploitation(1, 5)
	}
	recovered := 0
	for _, r := range rs {
		if r.KeyAccuracy >= 1 {
			recovered++
		}
	}
	b.ReportMetric(float64(recovered), "keys-recovered")
	b.ReportMetric(float64(len(rs)), "pocs-total")
}

// campaignResult is one row of BENCH_campaign.json — the machine-readable
// throughput record the CI perf gate (cmd/sonar-benchguard) compares against
// the committed baseline. TestMain writes the file after the campaign
// benchmarks run; plain test runs produce no records and no file.
type campaignResult struct {
	// ItersPerSec is fuzzing iterations (testcase x two secrets) per second.
	ItersPerSec float64 `json:"iters_per_sec"`
	// NsPerIter is wall-clock nanoseconds per fuzzing iteration.
	NsPerIter float64 `json:"ns_per_iter"`
	// AllocsPerIter is heap allocations per fuzzing iteration, measured
	// over the whole campaign (includes DUT construction amortized over
	// the run, so it is small but nonzero even with an alloc-free Execute).
	AllocsPerIter float64 `json:"allocs_per_iter"`
	// CyclesPerSec is simulated DUT cycles per wall-clock second.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Cores is the effective parallelism of the measuring process
	// (GOMAXPROCS), recorded so the benchguard scaling gate can cap its
	// expectations at what the runner can physically deliver.
	Cores int `json:"cores"`
	// ScalingVsParallel1 is this entry's iters_per_sec over the same run's
	// CampaignParallel1 — the parallel-scaling ratio the benchguard
	// efficiency floor checks. Zero when CampaignParallel1 was not measured
	// in the same run.
	ScalingVsParallel1 float64 `json:"scaling_vs_parallel1"`
	// LanesSpeedup is a wide lane entry's cycles_per_sec over the same run's
	// scalar entry of the same workload: CampaignLanes64 over CampaignLanes1
	// (the bit-parallel evaluator vs 64 scalar replays) and
	// CampaignNetlistLanes64 over CampaignNetlistLanes1 (a full lane-group
	// campaign vs the same campaign at Lanes=1). Enforced by the benchguard
	// lane floors (-lane-speedup, -campaign-lane-speedup). Recorded only on
	// the wide entries.
	LanesSpeedup float64 `json:"lanes_speedup,omitempty"`
}

var (
	campaignResultsMu sync.Mutex
	campaignResults   = map[string]campaignResult{}
)

// benchJSONPath returns where the campaign benchmarks write their results;
// override with SONAR_BENCH_JSON.
func benchJSONPath() string {
	if p := os.Getenv("SONAR_BENCH_JSON"); p != "" {
		return p
	}
	return "BENCH_campaign.json"
}

// TestMain flushes the campaign benchmark records to BENCH_campaign.json.
// See docs/PERFORMANCE.md for the file format and the CI regression gate.
func TestMain(m *testing.M) {
	code := m.Run()
	campaignResultsMu.Lock()
	defer campaignResultsMu.Unlock()
	// Parallel-scaling ratios: each CampaignParallelN entry records its
	// throughput relative to CampaignParallel1 from the same run.
	if base, ok := campaignResults["CampaignParallel1"]; ok && base.ItersPerSec > 0 {
		for name, r := range campaignResults {
			if strings.HasPrefix(name, "CampaignParallel") {
				r.ScalingVsParallel1 = r.ItersPerSec / base.ItersPerSec
				campaignResults[name] = r
			}
		}
	}
	// Lane speedups: each wide entry's cycle throughput relative to the
	// scalar entry of the same workload from the same run — the evaluator
	// ratio for the CampaignLanes micro pair, the end-to-end campaign ratio
	// for the CampaignNetlistLanes pair (see lane_bench_test.go).
	for _, pair := range [][2]string{
		{"CampaignLanes1", "CampaignLanes64"},
		{"CampaignNetlistLanes1", "CampaignNetlistLanes64"},
	} {
		if l1, ok := campaignResults[pair[0]]; ok && l1.CyclesPerSec > 0 {
			if lw, ok := campaignResults[pair[1]]; ok {
				lw.LanesSpeedup = lw.CyclesPerSec / l1.CyclesPerSec
				campaignResults[pair[1]] = lw
			}
		}
	}
	if len(campaignResults) > 0 {
		data, err := json.MarshalIndent(campaignResults, "", "  ")
		if err == nil {
			err = os.WriteFile(benchJSONPath(), append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench json:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// recordCampaign runs one campaign benchmark body under alloc/cycle
// accounting and files the result for the BENCH_campaign.json emitter.
// run executes one full campaign and returns its simulated cycle count.
func recordCampaign(b *testing.B, name string, run func() int64) {
	recordThroughput(b, name, benchIters, run)
}

// recordThroughput is the shared benchmark recorder: run is executed b.N
// times under alloc/cycle accounting, with each execution counting as
// itersPerRun iterations (fuzzing iterations for the campaign benchmarks,
// testcases for the lane benchmarks).
func recordThroughput(b *testing.B, name string, itersPerRun int, run func() int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocs0 := ms.Mallocs
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles += run()
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	secs := b.Elapsed().Seconds()
	iters := float64(itersPerRun) * float64(b.N)
	r := campaignResult{
		ItersPerSec:   iters / secs,
		NsPerIter:     b.Elapsed().Seconds() * 1e9 / iters,
		AllocsPerIter: float64(ms.Mallocs-allocs0) / iters,
		CyclesPerSec:  float64(cycles) / secs,
		Cores:         runtime.GOMAXPROCS(0),
	}
	b.ReportMetric(r.ItersPerSec, "iters/sec")
	b.ReportMetric(r.CyclesPerSec, "cycles/sec")
	campaignResultsMu.Lock()
	campaignResults[name] = r
	campaignResultsMu.Unlock()
}

// Campaign-engine throughput: the serial engine vs the sharded parallel
// engine at increasing worker counts. The metric is fuzzing iterations per
// second; the parallel entries should scale with physical cores
// (Workers=1 retraces the serial campaign exactly, see TestParallelWorkers1MatchesSerial).
// Workers share one contention-point analysis (fuzz.SharedAnalysisFactory),
// as the production engines do via core.Sonar.
func benchmarkCampaign(b *testing.B, workers int) {
	opt := fuzz.SonarOptions(benchIters)
	opt.Workers = workers
	recordCampaign(b, fmt.Sprintf("CampaignParallel%d", workers), func() int64 {
		st := fuzz.RunParallel(fuzz.SharedAnalysisFactory(boom.NewLite), opt)
		if len(st.PerIteration) != benchIters {
			b.Fatal("campaign incomplete")
		}
		return st.ExecutedCycles
	})
}

func BenchmarkCampaignSerial(b *testing.B) {
	mkDUT := fuzz.SharedAnalysisFactory(boom.NewLite)
	recordCampaign(b, "CampaignSerial", func() int64 {
		st := fuzz.Run(mkDUT(), fuzz.SonarOptions(benchIters))
		if len(st.PerIteration) != benchIters {
			b.Fatal("campaign incomplete")
		}
		return st.ExecutedCycles
	})
}

// Single-iteration hot path: one testcase executed under one secret on a
// warm DUT. This is the unit the campaign engines repeat ~2N times per
// N-iteration campaign; steady state performs zero heap allocations
// (TestExecuteSteadyStateAllocFree pins that).
func BenchmarkExecute(b *testing.B) {
	d := fuzz.NewDUT(boom.NewLite())
	tc := fuzz.Generate(rand.New(rand.NewSource(1)), false)
	d.Execute(tc, 0) // warm the arenas
	d.Execute(tc, ^uint64(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Execute(tc, uint64(i)&1)
	}
}

func BenchmarkCampaignParallel1(b *testing.B) { benchmarkCampaign(b, 1) }
func BenchmarkCampaignParallel2(b *testing.B) { benchmarkCampaign(b, 2) }
func BenchmarkCampaignParallel4(b *testing.B) { benchmarkCampaign(b, 4) }
func BenchmarkCampaignParallel8(b *testing.B) { benchmarkCampaign(b, 8) }

// Ablation benches for the design choices DESIGN.md calls out.

// Risk filtering off: every traced point is instrumented; the metric is
// the extra monitors carried.
func BenchmarkAblation_NoRiskFilter(b *testing.B) {
	r := experiments.AblationNoFilter()
	for i := 1; i < b.N; i++ {
		r = experiments.AblationNoFilter()
	}
	b.ReportMetric(float64(r.MonitorsFiltered), "monitors-with-filter")
	b.ReportMetric(float64(r.MonitorsUnfiltered), "monitors-without-filter")
}

// Monitoring window off: states are collected over the whole run; the
// metric is the state-diff noise per finding.
func BenchmarkAblation_NoMonitoringWindow(b *testing.B) {
	r := experiments.AblationWindow(60)
	for i := 1; i < b.N; i++ {
		r = experiments.AblationWindow(60)
	}
	b.ReportMetric(r.StateDiffsWindowed, "statediffs/finding-windowed")
	b.ReportMetric(r.StateDiffsAlways, "statediffs/finding-whole-run")
}

// CCD vs raw commit-time comparison: the metric is how many flagged
// instructions the CCD metric filters out as in-order-commit artifacts.
func BenchmarkAblation_CCDvsRawCommitTimes(b *testing.B) {
	r := experiments.AblationCCD(60)
	for i := 1; i < b.N; i++ {
		r = experiments.AblationCCD(60)
	}
	b.ReportMetric(r.RawFlagged, "raw-flagged/testcase")
	b.ReportMetric(r.CCDFlagged, "ccd-flagged/testcase")
}

// Directed mutation vs random mutation at equal budget (the Figure 10
// delta, isolated).
func BenchmarkAblation_DirectedVsRandomMutation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(benchIters)
		directed := r.Series[3].Final().CumPoints
		random := r.Series[1].Final().CumPoints
		gain = float64(directed) / float64(random)
	}
	b.ReportMetric(gain, "directed/random-ratio")
}

// The adaptive direction memory of the directed mutation (§6.2.1) vs
// random directions at equal budget.
func BenchmarkAblation_AdaptiveDirection(b *testing.B) {
	var r experiments.AblationDirectionResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationDirection(benchIters)
	}
	b.ReportMetric(float64(r.AdaptivePoints), "adaptive-points")
	b.ReportMetric(float64(r.RandomDirPoints), "randomdir-points")
	b.ReportMetric(float64(r.AdaptiveTimingDiffs), "adaptive-timingdiffs")
	b.ReportMetric(float64(r.RandomDirTimingDiffs), "randomdir-timingdiffs")
}

// Mitigation extension (§8.6): coarse timers and bus partitioning versus
// the strongest PoCs.
func BenchmarkMitigations(b *testing.B) {
	var rows []experiments.MitigationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Mitigations(5)
	}
	for _, r := range rows {
		if r.Mitigation == "baseline" {
			b.ReportMetric(100*r.BitAccuracy, r.PoC+"-baseline-acc-%")
		}
	}
}

var _ = fuzz.SonarOptions // keep the import for documentation links
