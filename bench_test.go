// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8). Each benchmark wraps the corresponding internal/experiments
// generator; run them all with
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline numbers (counts,
// reductions, gains) so a benchmark run doubles as a results summary; see
// EXPERIMENTS.md for paper-vs-measured values.
package sonar

import (
	"strings"
	"testing"

	"sonar/internal/boom"
	"sonar/internal/experiments"
	"sonar/internal/fuzz"
)

// benchIters is the campaign length used by the campaign benchmarks. The
// paper runs 3000 iterations; benchmarks use a shorter budget so the full
// suite stays in CI range. cmd/sonar-bench -iters 3000 reproduces the
// paper-scale run.
const benchIters = 500

func BenchmarkTable1_DUTConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure6_ContentionPointIdentification(b *testing.B) {
	var rs []experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		rs = experiments.Figure6()
	}
	b.ReportMetric(float64(rs[0].TracedPoints), "boom-points")
	b.ReportMetric(100*rs[0].Reduction(), "boom-reduction-%")
	b.ReportMetric(float64(rs[1].TracedPoints), "nutshell-points")
	b.ReportMetric(100*rs[1].Reduction(), "nutshell-reduction-%")
}

func BenchmarkFigure7_DistributionAndFiltering(b *testing.B) {
	var rs []experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		rs = experiments.Figure7()
	}
	b.ReportMetric(100*rs[0].FilterReduction(), "boom-filtered-%")
	b.ReportMetric(100*rs[1].FilterReduction(), "nutshell-filtered-%")
}

func BenchmarkTable2_InstrumentationOverhead(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(10)
	}
	for _, r := range rows {
		b.ReportMetric(100*r.SimSlowdown(), r.DUT+"-sim-slowdown-%")
		b.ReportMetric(100*r.CompileOverhead(), r.DUT+"-compile-overhead-%")
	}
}

func BenchmarkFigure8_SonarVsRandom(b *testing.B) {
	var rs []experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		rs = experiments.Figure8(benchIters)
	}
	for _, r := range rs {
		b.ReportMetric(100*r.ContentionGain(), r.DUT+"-contention-gain-%")
		b.ReportMetric(100*r.TimingDiffGain(), r.DUT+"-timingdiff-gain-%")
	}
}

func BenchmarkFigure9_SingleValidDominance(b *testing.B) {
	var r experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure9()
	}
	b.ReportMetric(100*r.DominanceShare(), "single-valid-share-%")
}

func BenchmarkFigure10_StrategyBreakdown(b *testing.B) {
	var r experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(benchIters)
	}
	for _, s := range r.Series {
		name := strings.ReplaceAll(s.Name, " ", "-")
		b.ReportMetric(float64(s.Final().CumPoints), name+"-points")
	}
}

func BenchmarkFigure11_SonarVsSpecDoctor(b *testing.B) {
	var r experiments.Figure11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure11(benchIters)
	}
	b.ReportMetric(r.NewContentionRatio(), "sonar/specdoctor-ratio")
	last := r.Complexity[len(r.Complexity)-1]
	b.ReportMetric(float64(last.SpecDoctorNs)/float64(last.SonarNs), "instr-cost-ratio-at-16k")
}

func BenchmarkTable3_SideChannels(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(3)
	}
	detected := 0
	for _, r := range rows {
		if r.TimeDiff > 0 {
			detected++
		}
	}
	b.ReportMetric(float64(detected), "channels-with-timing-diff")
	b.ReportMetric(float64(len(rows)), "channels-total")
}

func BenchmarkExploitation_PoCAccuracy(b *testing.B) {
	var rs []AttackResult
	for i := 0; i < b.N; i++ {
		rs = experiments.Exploitation(1, 5)
	}
	recovered := 0
	for _, r := range rs {
		if r.KeyAccuracy >= 1 {
			recovered++
		}
	}
	b.ReportMetric(float64(recovered), "keys-recovered")
	b.ReportMetric(float64(len(rs)), "pocs-total")
}

// Campaign-engine throughput: the serial engine vs the sharded parallel
// engine at increasing worker counts. The metric is fuzzing iterations per
// second; the parallel entries should scale with physical cores
// (Workers=1 retraces the serial campaign exactly, see TestParallelWorkers1MatchesSerial).
func benchmarkCampaign(b *testing.B, workers int) {
	opt := fuzz.SonarOptions(benchIters)
	opt.Workers = workers
	for i := 0; i < b.N; i++ {
		st := fuzz.RunParallel(func() *fuzz.DUT { return fuzz.NewDUT(boom.NewLite()) }, opt)
		if len(st.PerIteration) != benchIters {
			b.Fatal("campaign incomplete")
		}
	}
	b.ReportMetric(float64(benchIters)*float64(b.N)/b.Elapsed().Seconds(), "iters/sec")
}

func BenchmarkCampaignSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := fuzz.Run(fuzz.NewDUT(boom.NewLite()), fuzz.SonarOptions(benchIters))
		if len(st.PerIteration) != benchIters {
			b.Fatal("campaign incomplete")
		}
	}
	b.ReportMetric(float64(benchIters)*float64(b.N)/b.Elapsed().Seconds(), "iters/sec")
}

func BenchmarkCampaignParallel1(b *testing.B) { benchmarkCampaign(b, 1) }
func BenchmarkCampaignParallel2(b *testing.B) { benchmarkCampaign(b, 2) }
func BenchmarkCampaignParallel4(b *testing.B) { benchmarkCampaign(b, 4) }
func BenchmarkCampaignParallel8(b *testing.B) { benchmarkCampaign(b, 8) }

// Ablation benches for the design choices DESIGN.md calls out.

// Risk filtering off: every traced point is instrumented; the metric is
// the extra monitors carried.
func BenchmarkAblation_NoRiskFilter(b *testing.B) {
	r := experiments.AblationNoFilter()
	for i := 1; i < b.N; i++ {
		r = experiments.AblationNoFilter()
	}
	b.ReportMetric(float64(r.MonitorsFiltered), "monitors-with-filter")
	b.ReportMetric(float64(r.MonitorsUnfiltered), "monitors-without-filter")
}

// Monitoring window off: states are collected over the whole run; the
// metric is the state-diff noise per finding.
func BenchmarkAblation_NoMonitoringWindow(b *testing.B) {
	r := experiments.AblationWindow(60)
	for i := 1; i < b.N; i++ {
		r = experiments.AblationWindow(60)
	}
	b.ReportMetric(r.StateDiffsWindowed, "statediffs/finding-windowed")
	b.ReportMetric(r.StateDiffsAlways, "statediffs/finding-whole-run")
}

// CCD vs raw commit-time comparison: the metric is how many flagged
// instructions the CCD metric filters out as in-order-commit artifacts.
func BenchmarkAblation_CCDvsRawCommitTimes(b *testing.B) {
	r := experiments.AblationCCD(60)
	for i := 1; i < b.N; i++ {
		r = experiments.AblationCCD(60)
	}
	b.ReportMetric(r.RawFlagged, "raw-flagged/testcase")
	b.ReportMetric(r.CCDFlagged, "ccd-flagged/testcase")
}

// Directed mutation vs random mutation at equal budget (the Figure 10
// delta, isolated).
func BenchmarkAblation_DirectedVsRandomMutation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(benchIters)
		directed := r.Series[3].Final().CumPoints
		random := r.Series[1].Final().CumPoints
		gain = float64(directed) / float64(random)
	}
	b.ReportMetric(gain, "directed/random-ratio")
}

// The adaptive direction memory of the directed mutation (§6.2.1) vs
// random directions at equal budget.
func BenchmarkAblation_AdaptiveDirection(b *testing.B) {
	var r experiments.AblationDirectionResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationDirection(benchIters)
	}
	b.ReportMetric(float64(r.AdaptivePoints), "adaptive-points")
	b.ReportMetric(float64(r.RandomDirPoints), "randomdir-points")
	b.ReportMetric(float64(r.AdaptiveTimingDiffs), "adaptive-timingdiffs")
	b.ReportMetric(float64(r.RandomDirTimingDiffs), "randomdir-timingdiffs")
}

// Mitigation extension (§8.6): coarse timers and bus partitioning versus
// the strongest PoCs.
func BenchmarkMitigations(b *testing.B) {
	var rows []experiments.MitigationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Mitigations(5)
	}
	for _, r := range rows {
		if r.Mitigation == "baseline" {
			b.ReportMetric(100*r.BitAccuracy, r.PoC+"-baseline-acc-%")
		}
	}
}

var _ = fuzz.SonarOptions // keep the import for documentation links
