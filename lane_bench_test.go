// Lane-evaluator throughput: the same 64-testcase workload pushed through
// the scalar simulator one testcase at a time (CampaignLanes1) versus one
// bit-parallel pass of sim.LaneSimulator with a monitor.LaneBank attached
// (CampaignLanes64). Both run an identical generated mux-cascade netlist
// with per-lane stimulus and full contention-point monitoring; the headline
// metric is lane-cycles per second, and TestMain records the ratio as
// lanes_speedup in BENCH_campaign.json, where the benchguard lane floor
// (cmd/sonar-benchguard -lane-speedup) enforces it. See docs/SIMULATOR.md
// for the evaluation model and docs/PERFORMANCE.md for measured numbers.
package sonar

import (
	"fmt"
	"testing"

	"sonar/internal/fuzz"
	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
	"sonar/internal/monitor"
	"sonar/internal/sim"
	"sonar/internal/trace"
)

// laneBenchCycles is the per-testcase cycle budget of the lane benchmarks —
// long enough that per-run setup (monitor reset, window open) is noise.
const laneBenchCycles = 1024

// laneBenchCfg is the benchmark workload: a mux/buffer cascade with arbiter
// blocks, the shape the bit-parallel evaluator targets — narrow
// control-style signals (MaxWidth 4, like the valid/grant logic contention
// points live in) and no prims (PrimShare < 0 pins the share to zero, so no
// node spills to the scalar path; spill-heavy netlists degrade toward
// scalar throughput, see docs/SIMULATOR.md).
var laneBenchCfg = gen.Config{
	Seed: 11, Nodes: 384, Regs: 16, Arbiters: 4, MaxWidth: 4, PrimShare: -1,
}

// laneBenchHold is how many cycles each input vector is held before the
// next poke. Campaign testcases hold operands over multi-cycle flights; a
// hold > 1 keeps the benchmark's monitor-event rate in that regime instead
// of toggling every valid every cycle, so the measurement weights the
// evaluator rather than per-event bookkeeping (which is identical scalar
// work on both sides).
const laneBenchHold = 8

// laneBenchStim is the per-lane input stimulus, an arbitrary mixing hash so
// every lane drives a distinct testcase through the netlist.
func laneBenchStim(cycle, lane, input int) uint64 {
	x := uint64(cycle)<<32 ^ uint64(lane)<<16 ^ uint64(input) ^ 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// genInputs returns n's input signals in creation order.
func genInputs(n *hdl.Netlist) []*hdl.Signal {
	var ins []*hdl.Signal
	for _, s := range n.Signals() {
		if s.Kind() == hdl.Input {
			ins = append(ins, s)
		}
	}
	return ins
}

// BenchmarkCampaignLanes1 is the scalar reference: hdl.Lanes independent
// testcases, each replayed on its own compiled scalar Simulator with a
// scalar Monitor attached — the work a campaign does without lane batching.
func BenchmarkCampaignLanes1(b *testing.B) {
	var sims [hdl.Lanes]*sim.Simulator
	var mons [hdl.Lanes]*monitor.Monitor
	var inputs [hdl.Lanes][]*hdl.Signal
	for lane := range sims {
		n, err := gen.New(laneBenchCfg)
		if err != nil {
			b.Fatal(err)
		}
		s, err := sim.New(n)
		if err != nil {
			b.Fatal(err)
		}
		sims[lane] = s
		mons[lane] = monitor.New(trace.Analyze(n), monitor.Config{})
		inputs[lane] = genInputs(n)
	}
	recordThroughput(b, "CampaignLanes1", hdl.Lanes, func() int64 {
		for lane := 0; lane < hdl.Lanes; lane++ {
			mons[lane].Reset()
			mons[lane].SetWindow(true)
			for c := 0; c < laneBenchCycles; c++ {
				if c%laneBenchHold == 0 {
					for ii, in := range inputs[lane] {
						in.Set(laneBenchStim(c, lane, ii))
					}
				}
				sims[lane].Tick()
			}
		}
		return hdl.Lanes * laneBenchCycles
	})
}

// netBenchIters is the campaign length of the netlist campaign benchmarks —
// short enough for CI, long enough that DUT construction amortizes out.
const netBenchIters = 128

// netCampaignCfg is the netlist campaign benchmark design: the lane bench
// cascade shape, but arbiter-dense so the monitored cones cover most of the
// netlist. The campaign compile pipeline keeps only the monitored cone
// (plus kept outputs); on a sparse design that elimination speeds the
// scalar side far more than the already memory-bound lane side, and the
// pair would measure the dead-logic fraction instead of the lane engine.
var netCampaignCfg = gen.Config{
	Seed: 11, Nodes: 384, Regs: 16, Arbiters: 32, MaxWidth: 4, PrimShare: -1,
}

// benchmarkCampaignNetlist runs a full single-worker fuzzing campaign
// (mutation, selection, monitoring, corpus feedback — everything) over a
// fuzz.LaneDUT on the lane benchmark netlist, at the given Options.Lanes.
// Unlike the evaluator-only CampaignLanes pair above, this measures what the
// lane engine delivers end to end: the per-iteration scalar work (feedback,
// snapshots, bookkeeping) is identical at every width, so the
// CampaignNetlistLanes64/CampaignNetlistLanes1 ratio is the campaign-level
// lane speedup the benchguard floor (-campaign-lane-speedup, default 8x)
// enforces.
func benchmarkCampaignNetlist(b *testing.B, lanes int) {
	factory, err := fuzz.LaneDUTFactory(func() (*hdl.Netlist, error) {
		return gen.New(netCampaignCfg)
	}, laneBenchCycles, laneBenchHold)
	if err != nil {
		b.Fatal(err)
	}
	opt := fuzz.SonarOptions(netBenchIters)
	opt.Workers = 1
	opt.Lanes = lanes
	recordThroughput(b, fmt.Sprintf("CampaignNetlistLanes%d", lanes), netBenchIters, func() int64 {
		st := fuzz.RunParallelExec(factory, opt)
		if len(st.PerIteration) != netBenchIters {
			b.Fatal("campaign incomplete")
		}
		return st.ExecutedCycles
	})
}

func BenchmarkCampaignNetlistLanes1(b *testing.B)  { benchmarkCampaignNetlist(b, 1) }
func BenchmarkCampaignNetlistLanes64(b *testing.B) { benchmarkCampaignNetlist(b, 64) }

// BenchmarkCampaignLanes64 is the bit-parallel side: the same hdl.Lanes
// testcases evaluated in one LaneSimulator pass with a LaneBank monitoring
// every lane. Cycle accounting counts lane-cycles (lanes × ticks), so the
// cycles_per_sec ratio against CampaignLanes1 is the evaluator speedup.
func BenchmarkCampaignLanes64(b *testing.B) {
	n, err := gen.New(laneBenchCfg)
	if err != nil {
		b.Fatal(err)
	}
	ls, err := sim.NewLanes(n)
	if err != nil {
		b.Fatal(err)
	}
	bank := monitor.NewLaneBank(trace.Analyze(n), monitor.Config{}, ls)
	if bank.NumPoints() == 0 {
		b.Fatal("benchmark netlist has no monitorable points")
	}
	inputs := genInputs(n)
	recordThroughput(b, "CampaignLanes64", hdl.Lanes, func() int64 {
		bank.Reset()
		bank.SetWindowAll(true)
		for c := 0; c < laneBenchCycles; c++ {
			if c%laneBenchHold == 0 {
				for lane := 0; lane < hdl.Lanes; lane++ {
					for ii, in := range inputs {
						ls.Plane().Set(in, lane, laneBenchStim(c, lane, ii))
					}
				}
			}
			ls.Tick()
		}
		return hdl.Lanes * laneBenchCycles
	})
}
