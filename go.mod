module sonar

go 1.22
