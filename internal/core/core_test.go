package core

import (
	"strings"
	"testing"

	"sonar/internal/fuzz"
	"sonar/internal/obs"
	"sonar/internal/uarch"
)

func TestIdentifyReport(t *testing.T) {
	s := New(func() *uarch.SoC {
		return uarch.NewSoC(uarch.BoomConfig(), 1, []uarch.ArraySpec{
			{Component: "rob", Name: "entries", Entries: 4, Fanin: 2, Width: 8, Role: uarch.RoleROB},
		}, []uarch.FilterSpec{
			{Component: "rob", Const: 3, NoValid: 2, Fanin: 2},
		})
	})
	r := s.Identify()
	if r.TracedPoints == 0 || r.MonitoredPoints == 0 {
		t.Fatalf("report empty: %+v", r)
	}
	if r.MonitoredPoints >= r.TracedPoints {
		t.Errorf("filter removed nothing: %d of %d", r.MonitoredPoints, r.TracedPoints)
	}
	if r.TracedPoints >= r.NaiveMuxes {
		t.Errorf("tracing reduced nothing: %d of %d", r.TracedPoints, r.NaiveMuxes)
	}
	if r.TracingReduction() <= 0 || r.FilterReduction() <= 0 {
		t.Error("reductions must be positive")
	}
	text := r.String()
	if !strings.Contains(text, "monitored") || !strings.Contains(text, "rob") {
		t.Errorf("report text incomplete:\n%s", text)
	}
}

func TestFuzzThroughFacade(t *testing.T) {
	s := New(func() *uarch.SoC { return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil) })
	st := s.Fuzz(fuzz.SonarOptions(5))
	if len(st.PerIteration) != 5 {
		t.Fatalf("iterations = %d", len(st.PerIteration))
	}
	if p := s.Point(0); p == nil {
		t.Error("Point(0) nil")
	}
}

// Fuzz with Workers > 1 must dispatch to the sharded engine and produce a
// complete, reproducible campaign through the facade.
func TestFuzzParallelThroughFacade(t *testing.T) {
	mk := func() *uarch.SoC { return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil) }
	opt := fuzz.SonarOptions(12)
	opt.Workers = 3
	opt.BatchSize = 2
	a := New(mk).Fuzz(opt)
	b := New(mk).FuzzParallel(opt)
	if len(a.PerIteration) != 12 || len(b.PerIteration) != 12 {
		t.Fatalf("iterations = %d / %d", len(a.PerIteration), len(b.PerIteration))
	}
	for i := range a.PerIteration {
		if a.PerIteration[i] != b.PerIteration[i] {
			t.Fatalf("facade dispatch diverged at iteration %d", i)
		}
	}
}

// A campaign with an attached Observer must publish the information-flow
// audit gauges (sonar_flow_*) alongside the identification gauges, and the
// cached audit must be clean on the bundled DUT.
func TestFlowGaugesPublished(t *testing.T) {
	s := New(func() *uarch.SoC { return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil) })
	opt := fuzz.SonarOptions(3)
	opt.Observer = obs.New()
	s.Fuzz(opt)

	au := s.Audit()
	if !au.OK() {
		t.Fatalf("audit not clean: %v", au.Err())
	}
	if s.Audit() != au {
		t.Error("Audit() not cached")
	}
	series, err := obs.ParseExposition(opt.Observer.Metrics.ExpositionText())
	if err != nil {
		t.Fatal(err)
	}
	if got := series[obs.MetricFlowSurface]; got != float64(len(au.Surface)) {
		t.Errorf("%s = %v, want %d", obs.MetricFlowSurface, got, len(au.Surface))
	}
	if got := series[obs.MetricFlowTainted]; got != float64(au.TaintedPoints()) {
		t.Errorf("%s = %v, want %d", obs.MetricFlowTainted, got, au.TaintedPoints())
	}
	if got := series[obs.MetricFlowTaintPairs]; got != float64(au.TaintPairPoints()) {
		t.Errorf("%s = %v, want %d", obs.MetricFlowTaintPairs, got, au.TaintPairPoints())
	}
	if _, ok := series[obs.MetricFlowFindings+`{severity="error"}`]; !ok {
		t.Errorf("%s{severity=\"error\"} absent from exposition", obs.MetricFlowFindings)
	}
}
