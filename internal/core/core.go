// Package core is Sonar's end-to-end pipeline: contention-point
// identification and filtering, instrumentation, state-guided fuzzing,
// dual-differential side-channel detection, and exploitability analysis —
// the composition of the paper's three components (Figure 2) over a DUT.
package core

import (
	"fmt"
	"sort"
	"strings"

	"sonar/internal/attack"
	"sonar/internal/fuzz"
	"sonar/internal/hdl/flow"
	"sonar/internal/obs"
	"sonar/internal/trace"
	"sonar/internal/uarch"
)

// Sonar drives the full framework against one DUT.
type Sonar struct {
	// DUT is the analyzed, instrumented device under test.
	DUT *fuzz.DUT
	// mk rebuilds the SoC, so parallel campaigns can elaborate one private
	// DUT per worker.
	mk func() *uarch.SoC
	// audit caches the static information-flow audit of the DUT, computed
	// on first use (Audit) and published as sonar_flow_* gauges alongside
	// the identification gauges.
	audit *flow.Audit
}

// New analyzes and instruments a SoC built by mk, returning a ready-to-fuzz
// pipeline. The constructor is retained: FuzzParallel elaborates additional
// DUTs from it, one per worker.
func New(mk func() *uarch.SoC) *Sonar {
	return &Sonar{DUT: fuzz.NewDUT(mk()), mk: mk}
}

// IdentificationReport summarizes §5's static analysis results: contention
// point counts before/after bottom-up tracing and risk filtering, and their
// distribution over components (Figures 6 and 7).
type IdentificationReport struct {
	// Design is the DUT name.
	Design string
	// NaiveMuxes is what counting every 2:1 MUX would report.
	NaiveMuxes int
	// TracedPoints is the number of contention points after bottom-up
	// cascade tracing.
	TracedPoints int
	// MonitoredPoints is the number surviving the §5.2 risk filter.
	MonitoredPoints int
	// ByComponent maps component -> [traced, monitored].
	ByComponent map[string][2]int
}

// TracingReduction is the fraction of naive MUX count eliminated by
// bottom-up tracing (the paper reports 71.5% for BOOM, 80.4% for NutShell).
func (r *IdentificationReport) TracingReduction() float64 {
	if r.NaiveMuxes == 0 {
		return 0
	}
	return 1 - float64(r.TracedPoints)/float64(r.NaiveMuxes)
}

// FilterReduction is the fraction of traced points dropped by the risk
// filter (26.2% for BOOM, 35.7% for NutShell in the paper).
func (r *IdentificationReport) FilterReduction() float64 {
	if r.TracedPoints == 0 {
		return 0
	}
	return 1 - float64(r.MonitoredPoints)/float64(r.TracedPoints)
}

// String renders the report.
func (r *IdentificationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d 2:1 MUXes -> %d contention points (%.1f%% reduction) -> %d monitored (%.1f%% filtered)\n",
		r.Design, r.NaiveMuxes, r.TracedPoints, 100*r.TracingReduction(), r.MonitoredPoints, 100*r.FilterReduction())
	comps := make([]string, 0, len(r.ByComponent))
	for c := range r.ByComponent { //sonar:nondeterministic-ok keys collected then sorted
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		n := r.ByComponent[c]
		fmt.Fprintf(&b, "  %-12s %5d traced, %5d monitored\n", c, n[0], n[1])
	}
	return b.String()
}

// Identify runs the static analysis report for the DUT.
func (s *Sonar) Identify() *IdentificationReport {
	a := s.DUT.Analysis
	return &IdentificationReport{
		Design:          a.Netlist.Name(),
		NaiveMuxes:      a.NaiveMuxCount,
		TracedPoints:    len(a.Points),
		MonitoredPoints: len(a.Monitored()),
		ByComponent:     a.ByComponent(),
	}
}

// Fuzz runs a state-guided fuzzing campaign (§6) with dual-differential
// detection (§7). Campaigns with Options.Workers > 1 — or using the
// durability surface (checkpointing, MaxRounds pausing, fault tolerance),
// which lives in the parallel engine — are dispatched to FuzzParallel;
// Workers <= 1 there still reproduces the serial campaign exactly.
// Options.Lanes never affects dispatch: the lane width is an evaluator
// batching knob both engines honor with byte-identical results
// (docs/SIMULATOR.md), so it needs no routing of its own. An attached
// Options.Observer additionally receives the DUT's identification gauges,
// so one metrics scrape relates campaign coverage to the point population.
func (s *Sonar) Fuzz(opt fuzz.Options) *fuzz.Stats {
	if opt.Workers > 1 || opt.Checkpoint != "" || opt.MaxRounds > 0 ||
		opt.IterTimeout > 0 || opt.FaultHook != nil {
		return s.FuzzParallel(opt)
	}
	s.observeIdentification(opt.Observer)
	return fuzz.Run(s.DUT, opt)
}

// Resume continues a checkpointed campaign (fuzz.Resume) on DUTs elaborated
// from the retained SoC constructor. opt is typically
// cp.CampaignOptions() plus operational overrides; see fuzz.Resume for the
// shape-matching and bit-identity contract.
func (s *Sonar) Resume(opt fuzz.Options, cp *fuzz.Checkpoint) (*fuzz.Stats, error) {
	s.observeIdentification(opt.Observer)
	return fuzz.Resume(s.newDUT, opt, cp)
}

// FuzzParallel runs a sharded campaign: Options.Workers workers, each on a
// private DUT elaborated from the retained SoC constructor, merging
// feedback after every batch. Workers <= 1 reproduces Fuzz's serial
// campaign exactly; a fixed worker count is reproducible across runs.
func (s *Sonar) FuzzParallel(opt fuzz.Options) *fuzz.Stats {
	s.observeIdentification(opt.Observer)
	return fuzz.RunParallel(s.newDUT, opt)
}

// newDUT elaborates a private worker DUT, reusing the primary DUT's
// contention-point analysis by dense-id rebinding instead of re-running
// trace.Analyze per worker (or per fault-recovery replacement worker).
func (s *Sonar) newDUT() *fuzz.DUT {
	return fuzz.NewDUTWithAnalysis(s.mk(), s.DUT.Analysis)
}

// Audit returns the static information-flow audit of the DUT
// (internal/hdl/flow) under the heuristic source designation, computed once
// and cached.
func (s *Sonar) Audit() *flow.Audit {
	if s.audit == nil {
		s.audit = flow.Analyze(s.DUT.Analysis.Netlist, s.DUT.Analysis, flow.Spec{})
	}
	return s.audit
}

// observeIdentification publishes the §5 static-analysis results and the
// information-flow audit as gauges on the campaign Observer (idempotent;
// no-op for a nil Observer).
func (s *Sonar) observeIdentification(o *obs.Observer) {
	if o == nil {
		return
	}
	r := s.Identify()
	o.DUTInfo(r.Design, r.NaiveMuxes, r.TracedPoints, r.MonitoredPoints)
	au := s.Audit()
	info, errs := 0, 0
	for _, f := range au.Findings {
		if f.Severity == flow.Error {
			errs++
		} else {
			info++
		}
	}
	o.FlowInfo(len(au.Surface), au.TaintedPoints(), au.TaintPairPoints(), info, errs)
}

// Point returns the contention point with the given ID.
func (s *Sonar) Point(id int) *trace.Point {
	return s.DUT.Analysis.Points[id]
}

// Exploit evaluates Meltdown-style PoCs (§7.3/§8.5) against a fresh key.
func Exploit(pocs []attack.PoC, key [attack.KeyBytes]byte, attempts, trialsPerBit int, seed int64) []attack.Result {
	out := make([]attack.Result, 0, len(pocs))
	for _, p := range pocs {
		out = append(out, attack.Run(p, key, attempts, trialsPerBit, seed))
	}
	return out
}
