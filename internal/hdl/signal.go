package hdl

import "fmt"

// Kind classifies a signal within a netlist.
type Kind uint8

const (
	// Wire is a combinationally driven signal.
	Wire Kind = iota
	// Reg is a clocked register.
	Reg
	// Const is a literal whose value never changes.
	Const
	// Input is a module input port.
	Input
	// Output is a module output port.
	Output
)

// String returns the FIRRTL-ish keyword for the kind.
func (k Kind) String() string {
	switch k {
	case Wire:
		return "wire"
	case Reg:
		return "reg"
	case Const:
		return "const"
	case Input:
		return "input"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// WatchFunc observes a value change on a signal. It is invoked synchronously
// from Signal.Set with the cycle at which the change occurred.
type WatchFunc func(s *Signal, old, new uint64, cycle int64)

// Signal is a named, width-annotated value holder in a netlist.
//
// Signals are created through Netlist/Module builder methods and are unique
// by hierarchical name. The zero value is not usable.
type Signal struct {
	net      *Netlist
	id       int
	name     string // full hierarchical name, "." separated
	width    int    // 1..64 bits
	kind     Kind
	val      uint64
	sources  []*Signal // declared fan-in, used by validity tracing
	watchers []WatchFunc
}

// Name returns the full hierarchical name of the signal.
func (s *Signal) Name() string { return s.name }

// Local returns the last path segment of the signal name (its name within
// the owning module).
func (s *Signal) Local() string {
	for i := len(s.name) - 1; i >= 0; i-- {
		if s.name[i] == '.' {
			return s.name[i+1:]
		}
	}
	return s.name
}

// ModulePath returns the hierarchical path of the owning module ("" for
// top-level signals).
func (s *Signal) ModulePath() string {
	for i := len(s.name) - 1; i >= 0; i-- {
		if s.name[i] == '.' {
			return s.name[:i]
		}
	}
	return ""
}

// Width returns the bit width of the signal.
func (s *Signal) Width() int { return s.width }

// Kind returns the signal kind.
func (s *Signal) Kind() Kind { return s.kind }

// IsConst reports whether the signal is a literal constant.
func (s *Signal) IsConst() bool { return s.kind == Const }

// Value returns the current value of the signal.
func (s *Signal) Value() uint64 { return s.val }

// Mask returns the width mask of the signal (all valid bits set).
func (s *Signal) Mask() uint64 {
	if s.width >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(s.width)) - 1
}

// Set updates the signal value, masking it to the signal width, and notifies
// watchers if the value changed. Setting a Const signal panics: constants are
// structural facts the analyses rely on.
func (s *Signal) Set(v uint64) {
	if s.kind == Const {
		panic(fmt.Sprintf("hdl: Set on constant signal %s", s.name))
	}
	v &= s.Mask()
	if v == s.val {
		return
	}
	old := s.val
	s.val = v
	if len(s.watchers) != 0 {
		cyc := s.net.cycle
		for _, w := range s.watchers {
			w(s, old, v, cyc)
		}
	}
}

// SetBool sets the signal to 1 or 0.
func (s *Signal) SetBool(b bool) {
	if b {
		s.Set(1)
	} else {
		s.Set(0)
	}
}

// Bool reports whether the signal value is non-zero.
func (s *Signal) Bool() bool { return s.val != 0 }

// Watch registers fn to be called whenever the signal value changes.
func (s *Signal) Watch(fn WatchFunc) {
	s.watchers = append(s.watchers, fn)
}

// ClearWatchers removes all watch hooks from the signal.
func (s *Signal) ClearWatchers() { s.watchers = nil }

// Sources returns the declared fan-in of the signal.
func (s *Signal) Sources() []*Signal { return s.sources }

// AddSource declares src as fan-in of s. It is used by validity tracing when
// no same-prefix valid signal exists (paper Algorithm 1, lines 4-7).
func (s *Signal) AddSource(src *Signal) {
	for _, e := range s.sources {
		if e == src {
			return
		}
	}
	s.sources = append(s.sources, src)
}

// String implements fmt.Stringer.
func (s *Signal) String() string {
	return fmt.Sprintf("%s %s : UInt<%d>", s.kind, s.name, s.width)
}
