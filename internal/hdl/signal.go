package hdl

import "fmt"

// Kind classifies a signal within a netlist.
type Kind uint8

const (
	// Wire is a combinationally driven signal.
	Wire Kind = iota
	// Reg is a clocked register.
	Reg
	// Const is a literal whose value never changes.
	Const
	// Input is a module input port.
	Input
	// Output is a module output port.
	Output
)

// String returns the FIRRTL-ish keyword for the kind.
func (k Kind) String() string {
	switch k {
	case Wire:
		return "wire"
	case Reg:
		return "reg"
	case Const:
		return "const"
	case Input:
		return "input"
	case Output:
		return "output"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// WatchFunc observes a value change on a signal. It is invoked synchronously
// from Signal.Set with the cycle at which the change occurred.
type WatchFunc func(s *Signal, old, new uint64, cycle int64)

// Signal is a named, width-annotated value holder in a netlist.
//
// Signals are created through Netlist/Module builder methods and are unique
// by hierarchical name. The value itself lives in the owning netlist's dense
// value plane (Netlist.vals), indexed by the signal id; the Signal struct is
// the structural handle. The zero value is not usable.
type Signal struct {
	net     *Netlist
	id      int
	name    string // full hierarchical name, "." separated
	width   int    // 1..64 bits
	mask    uint64 // precomputed width mask
	kind    Kind
	sources []*Signal // declared fan-in, used by validity tracing
	// srcSet shadows sources for O(1) dedup once the fan-in grows past
	// srcDedupThreshold (wide reduction buffers fan in hundreds of signals).
	srcSet map[*Signal]struct{}
}

// srcDedupThreshold is the fan-in size above which AddSource switches from a
// linear duplicate scan to a map. Small fan-ins stay map-free: the common
// case is a handful of sources and the linear scan is cheaper there.
const srcDedupThreshold = 8

// Name returns the full hierarchical name of the signal.
func (s *Signal) Name() string { return s.name }

// ID returns the dense, elaboration-order id of the signal within its
// netlist: Netlist.Signals()[s.ID()] == s. Elaboration is deterministic, so
// ids are stable across independently elaborated instances of the same
// design and can be used to rebind per-netlist data (see trace.Analysis).
func (s *Signal) ID() int { return s.id }

// Local returns the last path segment of the signal name (its name within
// the owning module).
func (s *Signal) Local() string {
	for i := len(s.name) - 1; i >= 0; i-- {
		if s.name[i] == '.' {
			return s.name[i+1:]
		}
	}
	return s.name
}

// ModulePath returns the hierarchical path of the owning module ("" for
// top-level signals).
func (s *Signal) ModulePath() string {
	for i := len(s.name) - 1; i >= 0; i-- {
		if s.name[i] == '.' {
			return s.name[:i]
		}
	}
	return ""
}

// Width returns the bit width of the signal.
func (s *Signal) Width() int { return s.width }

// Kind returns the signal kind.
func (s *Signal) Kind() Kind { return s.kind }

// IsConst reports whether the signal is a literal constant.
func (s *Signal) IsConst() bool { return s.kind == Const }

// Value returns the current value of the signal.
func (s *Signal) Value() uint64 { return s.net.vals[s.id] }

// Mask returns the width mask of the signal (all valid bits set).
func (s *Signal) Mask() uint64 { return s.mask }

// Set updates the signal value, masking it to the signal width, and notifies
// watchers if the value changed. Setting a Const signal panics: constants are
// structural facts the analyses rely on.
//
// The watcher check is a single bit test in the netlist's watchBits bitset,
// so unwatched signals (the overwhelming majority) pay no indirection past
// the dense value plane.
//
//sonar:alloc-free
func (s *Signal) Set(v uint64) {
	if s.kind == Const {
		panic(fmt.Sprintf("hdl: Set on constant signal %s", s.name))
	}
	n := s.net
	v &= s.mask
	old := n.vals[s.id]
	if v == old {
		return
	}
	n.vals[s.id] = v
	if n.watchBits[uint(s.id)>>6]&(1<<(uint(s.id)&63)) != 0 {
		cyc := n.cycle
		for _, w := range n.watchers[s.id] {
			w(s, old, v, cyc)
		}
	}
}

// SetBool sets the signal to 1 or 0.
func (s *Signal) SetBool(b bool) {
	if b {
		s.Set(1)
	} else {
		s.Set(0)
	}
}

// Bool reports whether the signal value is non-zero.
func (s *Signal) Bool() bool { return s.net.vals[s.id] != 0 }

// Watch registers fn to be called whenever the signal value changes.
func (s *Signal) Watch(fn WatchFunc) {
	n := s.net
	n.watchers[s.id] = append(n.watchers[s.id], fn)
	n.watchBits[uint(s.id)>>6] |= 1 << (uint(s.id) & 63)
}

// ClearWatchers removes all watch hooks from the signal.
func (s *Signal) ClearWatchers() {
	n := s.net
	n.watchers[s.id] = nil
	n.watchBits[uint(s.id)>>6] &^= 1 << (uint(s.id) & 63)
}

// Sources returns the declared fan-in of the signal.
func (s *Signal) Sources() []*Signal { return s.sources }

// AddSource declares src as fan-in of s. It is used by validity tracing when
// no same-prefix valid signal exists (paper Algorithm 1, lines 4-7).
//
// Duplicates are dropped. Above srcDedupThreshold a shadow set takes over
// from the linear scan: wide reduction buffers (e.g. 64-bank dcache valids)
// would otherwise pay a quadratic elaboration cost.
func (s *Signal) AddSource(src *Signal) {
	if s.srcSet != nil {
		if _, dup := s.srcSet[src]; dup {
			return
		}
		s.srcSet[src] = struct{}{}
		s.sources = append(s.sources, src)
		return
	}
	for _, e := range s.sources {
		if e == src {
			return
		}
	}
	s.sources = append(s.sources, src)
	if len(s.sources) > srcDedupThreshold {
		s.srcSet = make(map[*Signal]struct{}, 2*len(s.sources))
		for _, e := range s.sources {
			s.srcSet[e] = struct{}{}
		}
	}
}

// String implements fmt.Stringer.
func (s *Signal) String() string {
	return fmt.Sprintf("%s %s : UInt<%d>", s.kind, s.name, s.width)
}
