package hdl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSignalMasking(t *testing.T) {
	n := NewNetlist("t")
	s := n.Wire("w", 4)
	s.Set(0xff)
	if got := s.Value(); got != 0xf {
		t.Errorf("Set(0xff) on 4-bit wire = %#x, want 0xf", got)
	}
	if s.Mask() != 0xf {
		t.Errorf("Mask() = %#x, want 0xf", s.Mask())
	}
	w64 := n.Wire("w64", 64)
	w64.Set(^uint64(0))
	if w64.Value() != ^uint64(0) {
		t.Errorf("64-bit signal truncated: %#x", w64.Value())
	}
}

func TestSignalBoolHelpers(t *testing.T) {
	n := NewNetlist("t")
	s := n.Wire("b", 1)
	s.SetBool(true)
	if !s.Bool() {
		t.Error("SetBool(true) not observed")
	}
	s.SetBool(false)
	if s.Bool() {
		t.Error("SetBool(false) not observed")
	}
}

func TestConstSetPanics(t *testing.T) {
	n := NewNetlist("t")
	c := n.Const("c", 8, 42)
	if c.Value() != 42 {
		t.Fatalf("const value = %d, want 42", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("Set on const did not panic")
		}
	}()
	c.Set(1)
}

func TestWatcherFiresOnChangeOnly(t *testing.T) {
	n := NewNetlist("t")
	s := n.Wire("w", 8)
	var events []uint64
	var cycles []int64
	s.Watch(func(_ *Signal, old, new uint64, cycle int64) {
		events = append(events, new)
		cycles = append(cycles, cycle)
	})
	s.Set(1) // cycle 0
	s.Set(1) // no change, no event
	n.Step()
	s.Set(2) // cycle 1
	if len(events) != 2 || events[0] != 1 || events[1] != 2 {
		t.Fatalf("events = %v, want [1 2]", events)
	}
	if cycles[0] != 0 || cycles[1] != 1 {
		t.Errorf("cycles = %v, want [0 1]", cycles)
	}
	s.ClearWatchers()
	s.Set(3)
	if len(events) != 2 {
		t.Error("watcher fired after ClearWatchers")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	n := NewNetlist("t")
	n.Wire("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	n.Wire("x", 2)
}

func TestBadWidthPanics(t *testing.T) {
	n := NewNetlist("t")
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d did not panic", w)
				}
			}()
			n.Wire("bad", w)
		}()
	}
}

func TestModuleScoping(t *testing.T) {
	n := NewNetlist("t")
	lsu := n.Module("lsu")
	s := lsu.Wire("ldq_idx", 5)
	if s.Name() != "lsu.ldq_idx" {
		t.Errorf("Name() = %q, want lsu.ldq_idx", s.Name())
	}
	if s.Local() != "ldq_idx" {
		t.Errorf("Local() = %q, want ldq_idx", s.Local())
	}
	if s.ModulePath() != "lsu" {
		t.Errorf("ModulePath() = %q, want lsu", s.ModulePath())
	}
	sub := lsu.Child("stq")
	s2 := sub.Reg("head", 3)
	if s2.Name() != "lsu.stq.head" {
		t.Errorf("nested Name() = %q", s2.Name())
	}
	if got, ok := n.Signal("lsu.stq.head"); !ok || got != s2 {
		t.Error("Signal lookup by full name failed")
	}
}

func TestMuxEval(t *testing.T) {
	n := NewNetlist("t")
	m := n.Module("top")
	sel := m.Wire("sel", 1)
	a := m.Wire("a", 8)
	b := m.Wire("b", 8)
	mx := m.Mux("out", sel, a, b)
	a.Set(7)
	b.Set(9)
	mx.Eval()
	if mx.Out.Value() != 9 {
		t.Errorf("sel=0: out = %d, want 9 (fval)", mx.Out.Value())
	}
	sel.Set(1)
	mx.Eval()
	if mx.Out.Value() != 7 {
		t.Errorf("sel=1: out = %d, want 7 (tval)", mx.Out.Value())
	}
}

func TestMuxDriverBookkeeping(t *testing.T) {
	n := NewNetlist("t")
	m := n.Module("top")
	sel := m.Wire("sel", 1)
	a := m.Wire("a", 8)
	b := m.Wire("b", 8)
	mx := m.Mux("out", sel, a, b)
	if d, ok := n.Driver(mx.Out); !ok || d != mx {
		t.Error("Driver(out) not recorded")
	}
	if !n.IsMuxDataInput(a) || !n.IsMuxDataInput(b) {
		t.Error("tval/fval not marked as mux data inputs")
	}
	if n.IsMuxDataInput(sel) {
		t.Error("sel wrongly marked as mux data input")
	}
	if n.IsMuxDataInput(mx.Out) {
		t.Error("root out wrongly marked as mux data input")
	}
}

func TestDoubleDrivePanics(t *testing.T) {
	n := NewNetlist("t")
	m := n.Module("top")
	sel := m.Wire("sel", 1)
	a := m.Wire("a", 8)
	b := m.Wire("b", 8)
	mx := m.Mux("out", sel, a, b)
	defer func() {
		if recover() == nil {
			t.Error("double drive did not panic")
		}
	}()
	n.Mux(mx.Out, sel, a, b)
}

func TestMuxTreeCascade(t *testing.T) {
	n := NewNetlist("t")
	m := n.Module("arb")
	ins := make([]*Signal, 4)
	sels := make([]*Signal, 3)
	for i := range ins {
		ins[i] = m.Wire(strings.Repeat("i", i+1), 8)
	}
	for i := range sels {
		sels[i] = m.Wire(string(rune('p'+i)), 1)
	}
	root := m.MuxTree("grant", sels, ins)
	if root.Out.Name() != "arb.grant" {
		t.Errorf("root out = %q, want arb.grant", root.Out.Name())
	}
	// A 4:1 tree is three cascaded 2:1 muxes.
	if n.NumMuxes() != 3 {
		t.Fatalf("NumMuxes = %d, want 3", n.NumMuxes())
	}
	// The root's FVal must be the output of another mux (the cascade).
	if _, ok := n.Driver(root.FVal); !ok {
		t.Error("root FVal not driven by a cascaded mux")
	}
	// Priority semantics: evaluate leaves-first (creation order is
	// tail-first, so evaluate in reverse creation order... simply fix by
	// evaluating all muxes until stable).
	for i, v := range []uint64{10, 20, 30, 40} {
		ins[i].Set(v)
	}
	evalStable(n)
	if root.Out.Value() != 40 {
		t.Errorf("no select asserted: out = %d, want 40 (last input)", root.Out.Value())
	}
	sels[1].Set(1)
	evalStable(n)
	if root.Out.Value() != 20 {
		t.Errorf("sel[1]: out = %d, want 20", root.Out.Value())
	}
	sels[0].Set(1)
	evalStable(n)
	if root.Out.Value() != 10 {
		t.Errorf("sel[0] has priority: out = %d, want 10", root.Out.Value())
	}
}

func TestMuxTreeArgValidation(t *testing.T) {
	n := NewNetlist("t")
	m := n.Module("arb")
	a := m.Wire("a", 8)
	defer func() {
		if recover() == nil {
			t.Error("MuxTree with 1 input did not panic")
		}
	}()
	m.MuxTree("g", nil, []*Signal{a})
}

func evalStable(n *Netlist) {
	for i := 0; i < len(n.Muxes())+1; i++ {
		for _, m := range n.Muxes() {
			m.Eval()
		}
	}
}

func TestModulePaths(t *testing.T) {
	n := NewNetlist("t")
	for _, path := range []string{"rob", "lsu", "frontend"} {
		m := n.Module(path)
		sel := m.Wire("sel", 1)
		a := m.Const("a", 8, 1)
		b := m.Const("b", 8, 2)
		m.Mux("out", sel, a, b)
	}
	paths := n.ModulePaths()
	want := []string{"frontend", "lsu", "rob"}
	if len(paths) != len(want) {
		t.Fatalf("ModulePaths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("ModulePaths[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestAddSourceDeduplicates(t *testing.T) {
	n := NewNetlist("t")
	a := n.Wire("a", 8)
	b := n.Wire("b", 8)
	a.AddSource(b)
	a.AddSource(b)
	if len(a.Sources()) != 1 {
		t.Errorf("Sources() has %d entries, want 1", len(a.Sources()))
	}
}

// Property: Set always masks to width, for arbitrary widths and values.
func TestQuickSetMasks(t *testing.T) {
	i := 0
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		n := NewNetlist("q")
		s := n.Wire("w", width)
		s.Set(v)
		i++
		return s.Value() == v&s.Mask()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a mux always outputs exactly one of its two inputs.
func TestQuickMuxSelectsOneInput(t *testing.T) {
	f := func(sel bool, tv, fv uint64) bool {
		n := NewNetlist("q")
		m := n.Module("m")
		s := m.Wire("sel", 1)
		a := m.Wire("a", 64)
		b := m.Wire("b", 64)
		mx := m.Mux("o", s, a, b)
		a.Set(tv)
		b.Set(fv)
		s.SetBool(sel)
		mx.Eval()
		if sel {
			return mx.Out.Value() == tv
		}
		return mx.Out.Value() == fv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
