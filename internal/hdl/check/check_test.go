package check_test

import (
	"strings"
	"testing"

	"sonar/internal/boom"
	"sonar/internal/firrtl"
	"sonar/internal/hdl"
	"sonar/internal/hdl/check"
	"sonar/internal/nutshell"
	"sonar/internal/trace"
)

// codes flattens a report's finding codes in order, for compact table
// comparisons.
func codes(r *check.Report) []check.Code {
	out := make([]check.Code, len(r.Findings))
	for i, f := range r.Findings {
		out[i] = f.Code
	}
	return out
}

func count(r *check.Report, c check.Code) int { return len(r.ByCode(c)) }

func TestCombinationalCycle(t *testing.T) {
	n := hdl.NewNetlist("cyclic")
	mod := n.Module("top")
	a := mod.Wire("a", 8)
	b := mod.Wire("b", 8)
	a.AddSource(b)
	b.AddSource(a)

	r := check.Check(n, check.Options{})
	if got := count(r, check.CodeCycle); got != 2 {
		t.Fatalf("cycle findings = %d, want 2 (one per stuck node); findings: %v", got, codes(r))
	}
	if r.OK() {
		t.Fatal("OK() = true for a cyclic netlist")
	}
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "combinational cycle") {
		t.Fatalf("Err() = %v, want combinational cycle diagnostic", err)
	}
}

func TestRegisterBreaksCycle(t *testing.T) {
	// The same loop, but one hop goes through a register: the levelized
	// simulator can order this (the reg edge carries last cycle's value),
	// so check must accept it.
	n := hdl.NewNetlist("reg-loop")
	mod := n.Module("top")
	w := mod.Wire("w", 8)
	r := mod.Reg("r", 8)
	w.AddSource(r)
	r.AddSource(w)

	rep := check.Check(n, check.Options{})
	if got := count(rep, check.CodeCycle); got != 0 {
		t.Fatalf("cycle findings = %d for a register-broken loop, want 0; findings: %v", got, codes(rep))
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestUndrivenConsumedWire(t *testing.T) {
	n := hdl.NewNetlist("undriven")
	mod := n.Module("top")
	sel := mod.Input("sel", 1)
	d := mod.Wire("d", 8) // consumed as mux data, never driven
	e := mod.Input("e", 8)
	mod.Mux("out", sel, d, e)
	mod.Wire("dead", 8) // unconsumed: dead, not broken — must stay silent

	r := check.Check(n, check.Options{})
	und := r.ByCode(check.CodeUndriven)
	if len(und) != 1 {
		t.Fatalf("undriven findings = %d, want 1; findings: %v", len(und), codes(r))
	}
	f := und[0]
	if f.Signal != d {
		t.Fatalf("undriven finding names %s, want %s", f.Signal.Name(), d.Name())
	}
	if f.Severity != check.Error {
		t.Fatalf("strict profile severity = %s, want error", f.Severity)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("Err() = %v, want undriven diagnostic", err)
	}

	// The externally-driven profile (boom/nutshell style, wires poked from
	// Go) demotes the same finding to Info.
	r = check.Check(n, check.Options{ExternallyDriven: true})
	und = r.ByCode(check.CodeUndriven)
	if len(und) != 1 || und[0].Severity != check.Info {
		t.Fatalf("externally-driven undriven findings = %v, want one Info", und)
	}
	if !r.OK() {
		t.Fatalf("OK() = false under ExternallyDriven; Err() = %v", r.Err())
	}
}

func TestMultiDriven(t *testing.T) {
	n := hdl.NewNetlist("multi")
	mod := n.Module("top")
	sel := mod.Input("sel", 1)
	a := mod.Input("a", 8)
	b := mod.Input("b", 8)
	out := mod.Wire("out", 8)
	mod.MuxInto(out, sel, a, b)
	n.Prim(out, "or", []*hdl.Signal{a, b}, nil)

	r := check.Check(n, check.Options{ExternallyDriven: true})
	md := r.ByCode(check.CodeMultiDriven)
	if len(md) != 1 || md[0].Signal != out {
		t.Fatalf("multi-driven findings = %v, want exactly one on %s", md, out.Name())
	}
	if r.OK() {
		t.Fatal("OK() = true; multi-driven must stay an error even under ExternallyDriven")
	}
}

func TestDanglingSelect(t *testing.T) {
	n := hdl.NewNetlist("dangling")
	mod := n.Module("top")
	sel := mod.Wire("sel", 1) // declared but never driven
	a := mod.Input("a", 8)
	b := mod.Input("b", 8)
	m := mod.Mux("out", sel, a, b)

	r := check.Check(n, check.Options{})
	ds := r.ByCode(check.CodeDanglingSelect)
	if len(ds) != 1 || ds[0].Mux != m || ds[0].Signal != sel {
		t.Fatalf("dangling-select findings = %v, want exactly one on mux %s", ds, m.Out.Name())
	}
	if ds[0].Severity != check.Error {
		t.Fatalf("strict dangling-select severity = %s, want error", ds[0].Severity)
	}
	if check.Check(n, check.Options{ExternallyDriven: true}).OK() != true {
		t.Fatal("ExternallyDriven must demote dangling-select to Info")
	}
}

func TestConstSelectCrossChecksTrace(t *testing.T) {
	// A two-level cascade whose inner mux selects through a literal
	// constant. check flags it as a const-select finding; trace.Analyze
	// records the very same mux in the point's ConstSelects. The two layers
	// must agree mux-for-mux.
	n := hdl.NewNetlist("constsel")
	mod := n.Module("top")
	c0 := mod.Const("c0", 1, 1)
	rootSel := mod.Input("root_sel", 1)
	a := mod.Input("a", 8)
	b := mod.Input("b", 8)
	c := mod.Input("c", 8)
	inner := mod.Mux("inner", c0, a, b)
	mod.Mux("root", rootSel, inner.Out, c)

	r := check.Check(n, check.Options{ExternallyDriven: true})
	cs := r.ConstSelects()
	if len(cs) != 1 || cs[0] != inner {
		t.Fatalf("check ConstSelects() = %v, want [%v]", cs, inner)
	}
	if !r.OK() {
		t.Fatalf("const-select must be Info-only; Err() = %v", r.Err())
	}

	a2 := trace.Analyze(n)
	if len(a2.Points) != 1 {
		t.Fatalf("trace found %d points, want 1", len(a2.Points))
	}
	traced := a2.Points[0].ConstSelects
	if len(traced) != len(cs) {
		t.Fatalf("trace ConstSelects = %d muxes, check = %d; the layers disagree", len(traced), len(cs))
	}
	for i := range traced {
		if traced[i].ID() != cs[i].ID() {
			t.Fatalf("trace ConstSelects[%d] = mux %d, check = mux %d", i, traced[i].ID(), cs[i].ID())
		}
	}
}

func TestBoomNetlistPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full BOOM elaboration in -short mode")
	}
	if err := boom.Check(); err != nil {
		t.Fatalf("boom.Check() = %v", err)
	}
}

func TestNutshellNetlistPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full NutShell elaboration in -short mode")
	}
	if err := nutshell.Check(); err != nil {
		t.Fatalf("nutshell.Check() = %v", err)
	}
}

func TestParseCheckedGatesFirrtl(t *testing.T) {
	good := `circuit Top :
  module Top :
    input sel : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<8>
    o <= mux(sel, a, b)
`
	if _, err := firrtl.ParseChecked(good); err != nil {
		t.Fatalf("ParseChecked(good) = %v", err)
	}

	// w is consumed by the mux but never connected: parses fine, fails the
	// structural gate under the strict (closed-design) profile.
	bad := `circuit Top :
  module Top :
    input sel : UInt<1>
    input b : UInt<8>
    output o : UInt<8>
    wire w : UInt<8>
    o <= mux(sel, w, b)
`
	if _, err := firrtl.Parse(bad); err != nil {
		t.Fatalf("Parse(bad) = %v, want plain parse to succeed", err)
	}
	_, err := firrtl.ParseChecked(bad)
	if err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("ParseChecked(bad) = %v, want undriven-wire error", err)
	}
}
