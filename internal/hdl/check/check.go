// Package check verifies the structural sanity of an elaborated netlist
// before the analysis and simulation layers consume it.
//
// The trace and sim layers assume properties the hdl builders cannot fully
// enforce at construction time: combinational logic is acyclic modulo
// registers, every consumed wire has some driver, no signal is driven from
// two directions at once, and dense ids stay compact (trace.Analysis.Rebind
// maps state across netlists by id). Check validates all of them in one
// linear pass and returns structured findings rather than a flat error, so
// callers can route individual classes — the constant-select findings line
// up one-to-one with the requests trace.Analyze later discards as constant.
//
// Two elaboration styles need different strictness. FIRRTL-parsed netlists
// are closed designs: every wire must be driven by a node, mux, or primop,
// and an undriven wire is a parse or design bug (Error). Model-driven
// netlists (boom, nutshell) elaborate contention points whose wires are
// poked from Go code each cycle — structurally undriven by design — so
// Options.ExternallyDriven demotes the driver-coverage findings to Info
// while keeping cycles, double drivers, and id compactness as errors.
package check

import (
	"fmt"
	"strings"

	"sonar/internal/hdl"
)

// Code classifies a structural finding.
type Code string

// Finding codes, one per verified property.
const (
	// CodeCycle marks a combinational cycle that does not pass through a
	// register; the levelized simulator cannot order it.
	CodeCycle Code = "cycle"
	// CodeUndriven marks a consumed wire with no mux, prim, or source
	// driving it.
	CodeUndriven Code = "undriven"
	// CodeMultiDriven marks a signal driven by both a mux and a prim.
	CodeMultiDriven Code = "multi-driven"
	// CodeDanglingSelect marks a mux select that nothing drives: the
	// selection can never switch structurally.
	CodeDanglingSelect Code = "dangling-select"
	// CodeConstSelect marks a mux whose select is a literal constant — the
	// structural fact behind trace's constant-request filtering.
	CodeConstSelect Code = "const-select"
	// CodeSparseID marks a dense-id compactness violation: signal or mux
	// ids must equal their creation-order index for Rebind to be valid.
	CodeSparseID Code = "sparse-id"
)

// Severity grades a finding.
type Severity uint8

// Severities: Info findings describe structure without condemning it;
// Error findings make Report.Err non-nil.
const (
	Info Severity = iota
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "info"
}

// Finding is one structural diagnostic tied to a signal or mux.
type Finding struct {
	// Code is the finding class.
	Code Code
	// Severity grades the finding; only Error findings fail Err.
	Severity Severity
	// Signal is the subject signal, if the finding concerns one.
	Signal *hdl.Signal
	// Mux is the subject mux for select-related findings.
	Mux *hdl.Mux
	// Msg is the human-readable description.
	Msg string
}

// String renders the finding as "severity code: msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Severity, f.Code, f.Msg)
}

// Options selects the strictness profile of a check.
type Options struct {
	// ExternallyDriven declares that wires may legitimately have no
	// structural driver because Go model code pokes them cycle by cycle
	// (the boom/nutshell elaboration style). Undriven and dangling-select
	// findings are demoted from Error to Info.
	ExternallyDriven bool
}

// Report is the outcome of one Check run.
type Report struct {
	// Findings holds every finding in deterministic elaboration order.
	Findings []Finding
	name     string
}

// ByCode returns the findings of one class, in order.
func (r *Report) ByCode(c Code) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Code == c {
			out = append(out, f)
		}
	}
	return out
}

// ConstSelects returns the muxes flagged with CodeConstSelect — the set the
// trace layer's constant filter must agree with.
func (r *Report) ConstSelects() []*hdl.Mux {
	var out []*hdl.Mux
	for _, f := range r.Findings {
		if f.Code == CodeConstSelect {
			out = append(out, f.Mux)
		}
	}
	return out
}

// OK reports whether no Error-severity findings exist.
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if f.Severity == Error {
			return false
		}
	}
	return true
}

// Err returns nil when the report is clean of errors, otherwise an error
// summarizing the first few Error findings.
func (r *Report) Err() error {
	var errs []string
	n := 0
	for _, f := range r.Findings {
		if f.Severity != Error {
			continue
		}
		n++
		if len(errs) < 3 {
			errs = append(errs, f.String())
		}
	}
	if n == 0 {
		return nil
	}
	suffix := ""
	if n > len(errs) {
		suffix = fmt.Sprintf(" (and %d more)", n-len(errs))
	}
	return fmt.Errorf("check: netlist %s: %s%s", r.name, strings.Join(errs, "; "), suffix)
}

// Check runs every structural verification over the netlist and returns the
// collected findings. It never mutates the netlist; cost is linear in
// signals + muxes + prims.
func Check(n *hdl.Netlist, opt Options) *Report {
	r := &Report{name: n.Name()}
	driverSeverity := Severity(Error)
	if opt.ExternallyDriven {
		driverSeverity = Info
	}
	checkIDs(n, r)
	checkDrivers(n, r, driverSeverity)
	checkSelects(n, r, driverSeverity)
	checkCycles(n, r)
	return r
}

// checkIDs verifies dense-id compactness of signals and muxes.
func checkIDs(n *hdl.Netlist, r *Report) {
	for i, s := range n.Signals() {
		if s.ID() != i {
			r.Findings = append(r.Findings, Finding{
				Code: CodeSparseID, Severity: Error, Signal: s,
				Msg: fmt.Sprintf("signal %s has id %d at index %d; Rebind requires dense ids", s.Name(), s.ID(), i),
			})
		}
	}
	for i, m := range n.Muxes() {
		if m.ID() != i {
			r.Findings = append(r.Findings, Finding{
				Code: CodeSparseID, Severity: Error, Mux: m,
				Msg: fmt.Sprintf("mux %s has id %d at index %d; Rebind requires dense ids", m.Out.Name(), m.ID(), i),
			})
		}
	}
}

// checkDrivers flags signals driven from two directions and consumed wires
// with no driver at all.
func checkDrivers(n *hdl.Netlist, r *Report, undrivenSev Severity) {
	consumed := consumedSignals(n)
	for _, s := range n.Signals() {
		_, byMux := n.Driver(s)
		_, byPrim := n.PrimDriver(s)
		if byMux && byPrim {
			r.Findings = append(r.Findings, Finding{
				Code: CodeMultiDriven, Severity: Error, Signal: s,
				Msg: fmt.Sprintf("signal %s is driven by both a mux and a prim", s.Name()),
			})
		}
		if byMux || byPrim || len(s.Sources()) > 0 {
			continue
		}
		switch s.Kind() {
		case hdl.Const, hdl.Input, hdl.Reg:
			continue // externally fixed, externally poked, or stateful
		}
		if !consumed[s] {
			continue // a wire nothing reads is dead, not broken
		}
		r.Findings = append(r.Findings, Finding{
			Code: CodeUndriven, Severity: undrivenSev, Signal: s,
			Msg: fmt.Sprintf("%s %s is consumed but has no driver", s.Kind(), s.Name()),
		})
	}
}

// checkSelects flags constant and dangling mux selects.
func checkSelects(n *hdl.Netlist, r *Report, danglingSev Severity) {
	for _, m := range n.Muxes() {
		sel := m.Sel
		if sel.IsConst() {
			r.Findings = append(r.Findings, Finding{
				Code: CodeConstSelect, Severity: Info, Signal: sel, Mux: m,
				Msg: fmt.Sprintf("mux %s selects through constant %s; the selection never switches", m.Out.Name(), sel.Name()),
			})
			continue
		}
		if sel.Kind() != hdl.Wire {
			continue // inputs and registers change from outside the comb fabric
		}
		_, byMux := n.Driver(sel)
		_, byPrim := n.PrimDriver(sel)
		if byMux || byPrim || len(sel.Sources()) > 0 {
			continue
		}
		r.Findings = append(r.Findings, Finding{
			Code: CodeDanglingSelect, Severity: danglingSev, Signal: sel, Mux: m,
			Msg: fmt.Sprintf("mux %s selects through %s, which nothing drives", m.Out.Name(), sel.Name()),
		})
	}
}

// consumedSignals returns the set of signals read by some mux, prim, or
// declared fan-in edge.
func consumedSignals(n *hdl.Netlist) map[*hdl.Signal]bool {
	consumed := make(map[*hdl.Signal]bool)
	for _, m := range n.Muxes() {
		consumed[m.Sel] = true
		consumed[m.TVal] = true
		consumed[m.FVal] = true
	}
	for _, p := range n.Prims() {
		for _, a := range p.Args {
			consumed[a] = true
		}
	}
	for _, s := range n.Signals() {
		for _, src := range s.Sources() {
			consumed[src] = true
		}
	}
	return consumed
}

// checkCycles runs the same Kahn levelization the simulator compiles with
// (sim.New): nodes are muxes, prims, and source-driven buffer wires; edges
// run producer-to-consumer and break at registers. Nodes left with positive
// in-degree sit on a combinational cycle.
func checkCycles(n *hdl.Netlist, r *Report) {
	type node struct {
		out    *hdl.Signal
		inputs []*hdl.Signal
	}
	var nodes []node
	producer := make(map[*hdl.Signal]int)
	for _, m := range n.Muxes() {
		producer[m.Out] = len(nodes)
		nodes = append(nodes, node{out: m.Out, inputs: []*hdl.Signal{m.Sel, m.TVal, m.FVal}})
	}
	for _, p := range n.Prims() {
		producer[p.Out] = len(nodes)
		nodes = append(nodes, node{out: p.Out, inputs: p.Args})
	}
	for _, s := range n.Signals() {
		if _, ok := n.Driver(s); ok {
			continue
		}
		if _, ok := n.PrimDriver(s); ok {
			continue
		}
		if len(s.Sources()) == 0 || s.IsConst() {
			continue
		}
		producer[s] = len(nodes)
		nodes = append(nodes, node{out: s, inputs: s.Sources()})
	}

	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	for i, nd := range nodes {
		for _, in := range nd.inputs {
			if in.Kind() == hdl.Reg {
				continue
			}
			if p, ok := producer[in]; ok {
				succ[p] = append(succ[p], i)
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	settled := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		settled++
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if settled == len(nodes) {
		return
	}
	for i, d := range indeg {
		if d > 0 {
			r.Findings = append(r.Findings, Finding{
				Code: CodeCycle, Severity: Error, Signal: nodes[i].out,
				Msg: fmt.Sprintf("combinational cycle through %s", nodes[i].out.Name()),
			})
		}
	}
}
