package hdl

import "fmt"

// Mux is a 2:1 multiplexer node: Out = Sel ? TVal : FVal.
//
// n:1 selections are expressed as cascades of 2:1 MUXes, mirroring how
// FIRRTL lowers wide selects. Package trace reconstructs the n:1 trees with
// bottom-up tracing (paper §5.1).
type Mux struct {
	id   int
	net  *Netlist
	Out  *Signal // driven output
	Sel  *Signal // select: 1 routes TVal, 0 routes FVal
	TVal *Signal // true-branch input
	FVal *Signal // false-branch input
}

// ID returns the netlist-unique identifier of the mux.
func (m *Mux) ID() int { return m.id }

// ModulePath returns the hierarchical module path owning the mux output.
func (m *Mux) ModulePath() string { return m.Out.ModulePath() }

// Eval computes the selected input value and drives it onto Out. Processor
// models may instead drive Out directly; Eval is used by the levelized
// netlist simulator (package sim).
func (m *Mux) Eval() {
	if m.Sel.Bool() {
		m.Out.Set(m.TVal.Value())
	} else {
		m.Out.Set(m.FVal.Value())
	}
}

// String implements fmt.Stringer.
func (m *Mux) String() string {
	return fmt.Sprintf("%s = mux(%s, %s, %s)", m.Out.Name(), m.Sel.Name(), m.TVal.Name(), m.FVal.Name())
}
