package hdl

import "fmt"

// Lanes is the lane count of a bit-sliced value plane: one lane per bit of a
// uint64 word, so 64 independent testcases evaluate per word operation.
const Lanes = 64

// LaneWatchFunc observes a per-lane value change during lane-parallel
// evaluation. It is the lane analog of WatchFunc: lane identifies which of
// the Lanes testcases changed, old and new are that lane's values, and cycle
// is the lane simulation cycle at which the change occurred. For a signal
// changing in several lanes on the same evaluation, hooks fire in ascending
// lane order.
type LaneWatchFunc func(s *Signal, lane int, old, new uint64, cycle int64)

// LanePlane is a bit-sliced, Lanes-wide value plane over a netlist: where the
// scalar plane (Netlist.Values) stores one value per signal, a LanePlane
// stores Lanes independent values per signal, transposed so that word b of a
// signal's storage holds bit b of all lanes (bit L of that word is lane L's
// bit b). In this layout a 2:1 mux evaluates for all lanes at once as
// (sel & tval) | (^sel & fval) per bit word, which is what makes
// sim.LaneSimulator profitable.
//
// A signal of width w occupies w consecutive words starting at Offset(s).
// Stored values are always masked to the signal width, mirroring Signal.Set.
// The plane is a passive container: it fires no watch hooks; demuxing a lane
// back through the scalar plane's hooks is StoreLane's job.
type LanePlane struct {
	net *Netlist
	// off[id] is the word offset of signal id's bit 0; off[len] is the total
	// word count, so signal id spans off[id]..off[id+1].
	off   []int32
	words []uint64
}

// NewLanePlane allocates a lane plane over the netlist and broadcasts every
// signal's current scalar value into all lanes (so constants — and any state
// already established through Signal.Set — are correct in every lane).
func NewLanePlane(n *Netlist) *LanePlane {
	sigs := n.Signals()
	off := make([]int32, len(sigs)+1)
	total := int32(0)
	for i, s := range sigs {
		off[i] = total
		total += int32(s.Width())
	}
	off[len(sigs)] = total
	p := &LanePlane{net: n, off: off, words: make([]uint64, total)}
	p.LoadScalar()
	return p
}

// Netlist returns the netlist the plane was built over.
func (p *LanePlane) Netlist() *Netlist { return p.net }

// Offset returns the word index of the signal's bit 0 within Words. Bit b of
// the signal lives at Words()[Offset(s)+b].
func (p *LanePlane) Offset(s *Signal) int { return int(p.off[s.id]) }

// Words returns the raw bit-sliced storage. It is live and intended for hot
// evaluation loops; all other callers should prefer the typed accessors.
func (p *LanePlane) Words() []uint64 { return p.words }

// Word returns the lane word holding bit b of the signal: bit L of the
// result is lane L's value of signal bit b.
func (p *LanePlane) Word(s *Signal, b int) uint64 {
	return p.words[int(p.off[s.id])+b]
}

// SetWord stores the lane word holding bit b of the signal.
func (p *LanePlane) SetWord(s *Signal, b int, w uint64) {
	p.words[int(p.off[s.id])+b] = w
}

// Get gathers the value of the signal in the given lane.
func (p *LanePlane) Get(s *Signal, lane int) uint64 {
	base := int(p.off[s.id])
	var v uint64
	for b := 0; b < s.width; b++ {
		v |= (p.words[base+b] >> uint(lane) & 1) << uint(b)
	}
	return v
}

// Set scatters a value into the given lane of the signal, masking it to the
// signal width. Like Signal.Set it panics on constants.
func (p *LanePlane) Set(s *Signal, lane int, v uint64) {
	if s.kind == Const {
		panic(fmt.Sprintf("hdl: lane Set on constant signal %s", s.name))
	}
	v &= s.mask
	base := int(p.off[s.id])
	bit := uint64(1) << uint(lane)
	for b := 0; b < s.width; b++ {
		if v>>uint(b)&1 != 0 {
			p.words[base+b] |= bit
		} else {
			p.words[base+b] &^= bit
		}
	}
}

// Broadcast stores the same value (masked to the signal width) into every
// lane of the signal.
func (p *LanePlane) Broadcast(s *Signal, v uint64) {
	v &= s.mask
	base := int(p.off[s.id])
	for b := 0; b < s.width; b++ {
		if v>>uint(b)&1 != 0 {
			p.words[base+b] = ^uint64(0)
		} else {
			p.words[base+b] = 0
		}
	}
}

// LoadScalar broadcasts every signal's current scalar value into all lanes,
// re-synchronizing the plane with the netlist.
func (p *LanePlane) LoadScalar() {
	for _, s := range p.net.order {
		p.Broadcast(s, p.net.vals[s.id])
	}
}

// StoreLane demuxes one lane back into the scalar plane through Signal.Set,
// so scalar watch hooks observe the lane's values at the netlist's current
// cycle. Constants are skipped (their lanes never diverge from the scalar
// plane). The order is signal creation order, matching elaboration.
func (p *LanePlane) StoreLane(lane int) {
	for _, s := range p.net.order {
		if s.kind == Const {
			continue
		}
		s.Set(p.Get(s, lane))
	}
}

// NonzeroMask returns, as a lane bitmask, which lanes hold a non-zero value
// of the signal: the lane-wise OR of all bit words. Bit L set means lane L's
// value is non-zero — the lane analog of Signal.Bool.
func (p *LanePlane) NonzeroMask(s *Signal) uint64 {
	base := int(p.off[s.id])
	var m uint64
	for b := 0; b < s.width; b++ {
		m |= p.words[base+b]
	}
	return m
}
