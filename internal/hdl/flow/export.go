// This file renders an Audit for humans and machines: a fixed-width text
// report, a stable JSON document, and a Graphviz DOT graph of the contention
// surface. Every exporter is deterministic — iteration is over the audit's
// already-ordered slices, never over maps — so repeated runs are
// byte-identical for a fixed (netlist, Spec).

package flow

import (
	"encoding/json"
	"fmt"
	"strings"

	"sonar/internal/trace"
)

// Text renders the audit as a fixed-width report: the seed summary, the
// ranked point table, and the findings.
func (au *Audit) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netlist %s: %d signals, %d muxes, %d contention points (%d monitorable), surface %d cascades\n",
		au.Netlist.Name(), au.Netlist.NumSignals(), au.Netlist.NumMuxes(),
		len(au.Points), len(au.Analysis.Monitored()), len(au.Surface))
	fmt.Fprintf(&b, "taint: %d secret seeds, %d attacker seeds, %d passes to fixpoint; %d/%d points tainted, %d taint-pairs\n",
		len(au.SecretSeeds), len(au.AttackerSeeds), au.Passes,
		au.TaintedPoints(), len(au.Points), au.TaintPairPoints())
	b.WriteString("\n")
	fmt.Fprintf(&b, "%4s %5s %4s %5s %6s %6s %5s  %s\n",
		"rank", "point", "mon", "taint", "shared", "depth", "fanin", "output")
	for _, pa := range au.Points {
		mon := "-"
		if pa.Monitorable {
			mon = "yes"
		}
		fmt.Fprintf(&b, "%4d %5d %4s %5s %6d %6d %5d  %s\n",
			pa.Rank, pa.Point.ID, mon, pa.ConeTaint, pa.SharedFanin,
			pa.ConeDepth, pa.Point.Fanin(), pa.Point.Out.Name())
	}
	if len(au.Findings) > 0 {
		b.WriteString("\nfindings:\n")
		for _, f := range au.Findings {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	return b.String()
}

// jsonAudit is the stable JSON shape of an audit.
type jsonAudit struct {
	Netlist       string        `json:"netlist"`
	Signals       int           `json:"signals"`
	Muxes         int           `json:"muxes"`
	SecretSeeds   int           `json:"secret_seeds"`
	AttackerSeeds int           `json:"attacker_seeds"`
	Passes        int           `json:"passes"`
	Surface       int           `json:"surface_cascades"`
	Points        []jsonPoint   `json:"points"`
	Findings      []jsonFinding `json:"findings"`
}

// jsonPoint is the stable JSON shape of one ranked point verdict.
type jsonPoint struct {
	Rank        int    `json:"rank"`
	Point       int    `json:"point"`
	Output      string `json:"output"`
	Component   string `json:"component"`
	Monitorable bool   `json:"monitorable"`
	Taint       string `json:"taint"`
	TaintPair   bool   `json:"taint_pair"`
	SharedFanin int    `json:"shared_fanin"`
	ConeDepth   int    `json:"cone_depth"`
	Fanin       int    `json:"fanin"`
}

// jsonFinding is the stable JSON shape of one finding.
type jsonFinding struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	PointID  int    `json:"point_id"`
	Msg      string `json:"msg"`
}

// JSON renders the audit as an indented, stable JSON document.
func (au *Audit) JSON() ([]byte, error) {
	doc := jsonAudit{
		Netlist:       au.Netlist.Name(),
		Signals:       au.Netlist.NumSignals(),
		Muxes:         au.Netlist.NumMuxes(),
		SecretSeeds:   len(au.SecretSeeds),
		AttackerSeeds: len(au.AttackerSeeds),
		Passes:        au.Passes,
		Surface:       len(au.Surface),
		Points:        []jsonPoint{},
		Findings:      []jsonFinding{},
	}
	for _, pa := range au.Points {
		doc.Points = append(doc.Points, jsonPoint{
			Rank:        pa.Rank,
			Point:       pa.Point.ID,
			Output:      pa.Point.Out.Name(),
			Component:   pa.Point.Component,
			Monitorable: pa.Monitorable,
			Taint:       pa.ConeTaint.String(),
			TaintPair:   pa.TaintPair,
			SharedFanin: pa.SharedFanin,
			ConeDepth:   pa.ConeDepth,
			Fanin:       pa.Point.Fanin(),
		})
	}
	for _, f := range au.Findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			Code:     string(f.Code),
			Severity: f.Severity.String(),
			PointID:  f.PointID,
			Msg:      f.Msg,
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// DOT renders the contention surface as one Graphviz digraph: a node per
// ranked point (doubleoctagon, labeled with rank, taint, and output name)
// and a box per requestor leaf. Labels are escaped through the same helper
// trace.Point.DOT uses (trace.EscapeLabel), so bracketed, dotted, and
// quoted signal names render safely.
func (au *Audit) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph audit_%s {\n", sanitizeID(au.Netlist.Name()))
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontname=monospace fontsize=10];\n")
	for _, pa := range au.Points {
		label := fmt.Sprintf("#%d %s\ntaint: %s shared: %d depth: %d",
			pa.Rank, pa.Point.Out.Name(), pa.ConeTaint, pa.SharedFanin, pa.ConeDepth)
		shape := "doubleoctagon"
		if !pa.Monitorable {
			shape = "octagon"
		}
		fmt.Fprintf(&b, "  p%d [label=\"%s\" shape=%s];\n", pa.Point.ID, trace.EscapeLabel(label), shape)
		if pa.Surface == nil {
			continue
		}
		for li, leaf := range pa.Surface.Leaves {
			label := leaf.Name()
			if leaf.IsConst() {
				label = fmt.Sprintf("const %d", leaf.Value())
			}
			label += "\ntaint: " + au.TaintOf(leaf).String()
			fmt.Fprintf(&b, "  p%dr%d [label=\"%s\" shape=box];\n", pa.Point.ID, li, trace.EscapeLabel(label))
			fmt.Fprintf(&b, "  p%dr%d -> p%d;\n", pa.Point.ID, li, pa.Point.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// sanitizeID rewrites a netlist name into a bare DOT identifier.
func sanitizeID(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
