// This file holds the taint plane: seeding from the Spec and CellIFT-style
// propagation of per-signal taint bitsets through the netlist's
// combinational fabric in the simulator's levelized order, with a whole-pass
// fixpoint over register feedback.

package flow

import (
	"fmt"
	"strings"

	"sonar/internal/hdl"
)

// seed matches the spec patterns against every signal and initializes the
// taint plane. explicit marks a caller-provided spec: only then do
// unmatched patterns become Error findings (the heuristic legitimately
// finds nothing on source-free designs).
func (au *Audit) seed(explicit bool) {
	n := au.Netlist
	au.taint = make([]Taint, n.NumSignals())
	match := func(patterns []string, label Taint) ([]*hdl.Signal, []string) {
		var hits []*hdl.Signal
		var misses []string
		add := func(s *hdl.Signal) {
			if !au.taint[s.ID()].Has(label) {
				au.taint[s.ID()] |= label
				hits = append(hits, s)
			}
		}
		for _, pat := range patterns {
			// Exact names (the common case, and everything DefaultSpec
			// emits) resolve by direct lookup; only genuine globs pay the
			// full netlist scan.
			if !strings.ContainsRune(pat, '*') {
				if s, ok := n.Signal(pat); ok {
					add(s)
				} else {
					misses = append(misses, pat)
				}
				continue
			}
			found := false
			for _, s := range n.Signals() {
				if matchGlob(pat, s.Name()) {
					found = true
					add(s)
				}
			}
			if !found {
				misses = append(misses, pat)
			}
		}
		return hits, misses
	}
	var misses []string
	var m []string
	au.SecretSeeds, m = match(au.Spec.Secret, TaintSecret)
	misses = append(misses, m...)
	au.AttackerSeeds, m = match(au.Spec.Attacker, TaintAttacker)
	misses = append(misses, m...)
	if explicit {
		for _, pat := range misses {
			au.Findings = append(au.Findings, Finding{
				Code: CodeUnmatchedPattern, Severity: Error, PointID: -1,
				Msg: fmt.Sprintf("pattern %q matched no signal", pat),
			})
		}
	}
	if len(au.SecretSeeds) == 0 && len(au.AttackerSeeds) == 0 {
		au.Findings = append(au.Findings, Finding{
			Code: CodeNoSeeds, Severity: Info, PointID: -1,
			Msg: "no taint sources designated or inferred; taint columns are vacuous",
		})
	}
}

// flowNode is one combinational producer in the propagation schedule: the
// taint of out becomes the union over the taints of inputs.
type flowNode struct {
	out    *hdl.Signal
	inputs []*hdl.Signal
}

// propagate runs the taint transfer function to fixpoint. The schedule is
// the exact node set and Kahn levelization the simulator compiles with
// (sim.New, mirrored by check.checkCycles): nodes are muxes, prims, and
// source-driven buffer wires; edges run producer-to-consumer and break at
// registers. One levelized pass settles all purely combinational flow; the
// outer loop re-runs passes until register feedback stops adding labels.
// The transfer function is monotone over a finite lattice, so the fixpoint
// terminates in at most (register feedback depth + 1) passes.
//
// The MUX transfer is taint(out) = taint(sel) | taint(tval) | taint(fval):
// like CellIFT's cell-level rule, a tainted select taints the output even
// when both data inputs are clean, because the select decides *which* value
// appears — precisely the influence arbitration grants an attacker.
func (au *Audit) propagate() {
	n := au.Netlist
	var nodes []flowNode
	producer := make(map[*hdl.Signal]int)
	for _, m := range n.Muxes() {
		producer[m.Out] = len(nodes)
		nodes = append(nodes, flowNode{out: m.Out, inputs: []*hdl.Signal{m.Sel, m.TVal, m.FVal}})
	}
	for _, p := range n.Prims() {
		producer[p.Out] = len(nodes)
		nodes = append(nodes, flowNode{out: p.Out, inputs: p.Args})
	}
	for _, s := range n.Signals() {
		if _, ok := n.Driver(s); ok {
			continue
		}
		if _, ok := n.PrimDriver(s); ok {
			continue
		}
		if len(s.Sources()) == 0 || s.IsConst() {
			continue
		}
		producer[s] = len(nodes)
		nodes = append(nodes, flowNode{out: s, inputs: s.Sources()})
	}

	// Kahn levelization, identical to the simulator's compile order.
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	for i, nd := range nodes {
		for _, in := range nd.inputs {
			if in.Kind() == hdl.Reg {
				continue
			}
			if p, ok := producer[in]; ok {
				succ[p] = append(succ[p], i)
				indeg[i]++
			}
		}
	}
	order := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			order = append(order, i)
		}
	}
	for head := 0; head < len(order); head++ {
		for _, j := range succ[order[head]] {
			indeg[j]--
			if indeg[j] == 0 {
				order = append(order, j)
			}
		}
	}
	// Combinational cycles (hdl/check's CodeCycle territory) leave nodes
	// unscheduled; append them in index order so the fixpoint still covers
	// them — extra passes replace levelization there.
	if len(order) < len(nodes) {
		for i, d := range indeg {
			if d > 0 {
				order = append(order, i)
			}
		}
	}

	for {
		au.Passes++
		changed := false
		for _, i := range order {
			nd := &nodes[i]
			t := au.taint[nd.out.ID()]
			for _, in := range nd.inputs {
				t |= au.taint[in.ID()]
			}
			if t != au.taint[nd.out.ID()] {
				au.taint[nd.out.ID()] = t
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}
