// Package flow implements Sonar's static information-flow audit over an
// elaborated netlist: a deterministic, CellIFT-style taint propagation from
// designated secret and attacker input ports, an independent extraction of
// the design's contention surface (every arbitration MUX cascade and the
// requestor cones converging on it), and a ranked audit report that
// cross-checks the dynamic pipeline's contention-point identification
// (trace.Analyze) against the surface.
//
// The audit answers, before a single cycle is simulated, the questions a
// campaign needs triaged: where can contention exist at all (the surface),
// which of those points can an attacker actually steer (attacker taint
// reaching a select), which can the secret actually reach (secret taint
// reaching the cone), and in what order should the monitors be placed so
// the highest-risk points come first. Placement rank never changes campaign
// bytes — it only orders the already-deterministic monitored point list —
// which is what lets the fuzzing engines adopt it by default.
//
// Like internal/hdl/check, the audit reports structured findings instead of
// a flat error: cross-check discrepancies between the surface and
// trace.Analyze are Error findings (one layer is wrong about the design),
// while dead arbitration and unreachable taint are Info findings (the
// design is consistent but some monitors would be wasted).
//
// Everything is deterministic: seeds are collected in elaboration order,
// propagation runs in the simulator's levelized order (docs/SIMULATOR.md)
// with a fixpoint over register feedback, and every report is byte-identical
// across runs for a fixed (netlist, Spec).
package flow

import (
	"fmt"
	"strings"

	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// Taint is a bitset of information-flow labels carried by one signal.
type Taint uint8

// Taint labels: the two parties of a contention side channel.
const (
	// TaintSecret marks data reachable from a secret (victim) source.
	TaintSecret Taint = 1 << iota
	// TaintAttacker marks data reachable from an attacker-steerable source.
	TaintAttacker
)

// Has reports whether every label in q is present in t.
func (t Taint) Has(q Taint) bool { return t&q == q }

// Pair reports whether both the secret and the attacker label are present —
// the reachability precondition of a contention side channel.
func (t Taint) Pair() bool { return t.Has(TaintSecret | TaintAttacker) }

// String renders the taint as a compact column value: "-", "S", "A", "SA".
func (t Taint) String() string {
	switch {
	case t.Pair():
		return "SA"
	case t.Has(TaintSecret):
		return "S"
	case t.Has(TaintAttacker):
		return "A"
	}
	return "-"
}

// Spec designates the taint sources of an audit. Patterns are matched
// against full hierarchical signal names; the only metacharacter is '*',
// which matches any (possibly empty) run of characters. An empty Spec
// selects the default heuristic (DefaultSpec).
type Spec struct {
	// Secret are the patterns naming secret (victim-data) source signals.
	Secret []string
	// Attacker are the patterns naming attacker-steerable source signals.
	Attacker []string
}

// empty reports whether the spec designates no sources at all.
func (s Spec) empty() bool { return len(s.Secret) == 0 && len(s.Attacker) == 0 }

// DefaultSpec returns the heuristic taint-source designation for a netlist:
// every externally driven signal — an input port or a wire/register with no
// structural driver of any kind, the signals Go model code or the testbench
// pokes — seeds taint. Multi-bit sources carry data and seed the secret
// label; single-bit sources are valids, selects, and steering bits and seed
// the attacker label. The heuristic matches the elaboration style of the
// bundled DUTs (boom, nutshell), whose contention-point wires are poked
// from Go code each cycle, and of gen/FIRRTL designs, whose inputs are the
// only free signals.
func DefaultSpec(n *hdl.Netlist) Spec {
	spec := Spec{}
	for _, s := range n.Signals() {
		if !externallyDriven(n, s) {
			continue
		}
		if s.Width() > 1 {
			spec.Secret = append(spec.Secret, s.Name())
		} else {
			spec.Attacker = append(spec.Attacker, s.Name())
		}
	}
	return spec
}

// externallyDriven reports whether nothing inside the netlist drives s: no
// mux, no prim, no declared fan-in. Such signals change only from outside
// the combinational fabric and are the audit's taint entry points.
func externallyDriven(n *hdl.Netlist, s *hdl.Signal) bool {
	if s.IsConst() || s.Kind() == hdl.Output {
		return false
	}
	if s.Kind() == hdl.Input {
		return true
	}
	if _, ok := n.Driver(s); ok {
		return false
	}
	if _, ok := n.PrimDriver(s); ok {
		return false
	}
	return len(s.Sources()) == 0
}

// matchGlob matches name against a pattern whose only metacharacter is '*'
// (any run of characters, including empty). Bracketed and dotted signal
// names are matched literally — no character-class surprises.
func matchGlob(pattern, name string) bool {
	// Fast paths.
	if !strings.ContainsRune(pattern, '*') {
		return pattern == name
	}
	parts := strings.Split(pattern, "*")
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(name, parts[i])
		if idx < 0 {
			return false
		}
		name = name[idx+len(parts[i]):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

// Code classifies an audit finding.
type Code string

// Finding codes, one per audited property.
const (
	// CodeEmptySurface marks a design whose contention surface is empty:
	// no MUX cascades exist, so no contention side channel can exist and a
	// campaign has nothing to monitor. The fleet submit API rejects such
	// designs.
	CodeEmptySurface Code = "empty-surface"
	// CodeSurfaceMissing marks a monitorable trace.Analyze point whose MUX
	// cascade does not appear in the independently extracted surface — the
	// two static layers disagree about the design.
	CodeSurfaceMissing Code = "surface-missing-point"
	// CodeSurfaceExtra marks a surface cascade root that trace.Analyze did
	// not report as a contention point.
	CodeSurfaceExtra Code = "surface-extra-point"
	// CodeLeafMismatch marks a point whose surface cascade resolved a
	// different requestor leaf set than trace.Analyze.
	CodeLeafMismatch Code = "surface-leaf-mismatch"
	// CodeConstArbiter marks a point whose every select is a literal
	// constant: the arbitration is structurally dead and can never switch.
	CodeConstArbiter Code = "const-arbiter"
	// CodeUntainted marks a monitorable point that no taint label reaches:
	// its monitor can never observe secret- or attacker-dependent traffic
	// under the audited source designation.
	CodeUntainted Code = "untainted-point"
	// CodeUnmatchedPattern marks an explicit Spec pattern that matched no
	// signal — almost always a typo in a port name.
	CodeUnmatchedPattern Code = "unmatched-pattern"
	// CodeNoSeeds marks an audit whose source designation (explicit or
	// heuristic) produced no taint seeds at all; taint columns are vacuous.
	CodeNoSeeds Code = "no-taint-seeds"
)

// Severity grades a finding, mirroring internal/hdl/check.
type Severity uint8

// Severities: Info findings describe the design without condemning it;
// Error findings make Audit.Err non-nil (and fail the CI audit smoke).
const (
	// Info describes structure worth knowing without condemning it.
	Info Severity = iota
	// Error marks a cross-check discrepancy or an unusable designation.
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "info"
}

// Finding is one audit diagnostic.
type Finding struct {
	// Code is the finding class.
	Code Code
	// Severity grades the finding; only Error findings fail Err.
	Severity Severity
	// PointID is the trace point concerned, -1 when not point-scoped.
	PointID int
	// Msg is the human-readable description.
	Msg string
}

// String renders the finding as "severity code: msg".
func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Severity, f.Code, f.Msg)
}

// SurfacePoint is one element of the contention surface: a MUX cascade
// reconstructed independently of trace.Analyze, with the requestor leaf
// signals whose cones converge on it.
type SurfacePoint struct {
	// Root is the topmost 2:1 MUX of the cascade.
	Root *hdl.Mux
	// Out is the cascade output signal.
	Out *hdl.Signal
	// Muxes are the cascade's MUXes in walk order (TVal before FVal).
	Muxes []*hdl.Mux
	// Selects are the select signals of the cascade's MUXes, in walk order.
	Selects []*hdl.Signal
	// Leaves are the requestor data signals, in select-priority order.
	Leaves []*hdl.Signal
}

// PointAudit is the audit's verdict on one contention point, pairing the
// trace.Analyze point with its surface cascade, taint reachability, and
// placement rank.
type PointAudit struct {
	// Point is the trace.Analyze contention point.
	Point *trace.Point
	// Surface is the matching surface cascade (nil on a cross-check miss).
	Surface *SurfacePoint
	// Rank is the point's position in the audit's placement order (0 =
	// highest risk).
	Rank int
	// Monitorable mirrors the §5.2 risk filter verdict.
	Monitorable bool
	// SelectTaint is the union of taint over the cascade's selects — the
	// labels that can steer the arbitration.
	SelectTaint Taint
	// RequestTaint is the union of taint over the requestor data leaves.
	RequestTaint Taint
	// ConeTaint is the union of SelectTaint and RequestTaint: every label
	// reaching the point at all.
	ConeTaint Taint
	// TaintPair reports that both a secret-tainted and an attacker-tainted
	// cone reach the point — the static precondition of a contention side
	// channel.
	TaintPair bool
	// SharedFanin counts the signals appearing in at least two distinct
	// requestor cones: the amount of logic the requests genuinely share.
	SharedFanin int
	// ConeDepth is the deepest requestor cone, in combinational steps.
	ConeDepth int
}

// Audit is the result of one information-flow audit: the taint plane, the
// contention surface, the ranked per-point verdicts, and the cross-check
// findings. Build one with Analyze.
type Audit struct {
	// Netlist is the audited design.
	Netlist *hdl.Netlist
	// Analysis is the trace.Analyze result the audit cross-checked.
	Analysis *trace.Analysis
	// Spec is the effective source designation (the heuristic's result when
	// the caller passed an empty Spec).
	Spec Spec
	// SecretSeeds are the matched secret source signals, elaboration order.
	SecretSeeds []*hdl.Signal
	// AttackerSeeds are the matched attacker source signals.
	AttackerSeeds []*hdl.Signal
	// Surface is the contention surface in root-mux creation order.
	Surface []*SurfacePoint
	// Points are the per-point verdicts in placement-rank order.
	Points []*PointAudit
	// Findings are the audit diagnostics in deterministic order.
	Findings []Finding
	// Passes is the number of levelized propagation passes the taint
	// fixpoint needed (register feedback depth + 1).
	Passes int

	taint []Taint // by dense signal id
}

// TaintOf returns the propagated taint of a signal.
func (au *Audit) TaintOf(s *hdl.Signal) Taint { return au.taint[s.ID()] }

// ByCode returns the findings of one class, in order.
func (au *Audit) ByCode(c Code) []Finding {
	var out []Finding
	for _, f := range au.Findings {
		if f.Code == c {
			out = append(out, f)
		}
	}
	return out
}

// OK reports whether no Error-severity findings exist.
func (au *Audit) OK() bool {
	for _, f := range au.Findings {
		if f.Severity == Error {
			return false
		}
	}
	return true
}

// Err returns nil when the audit is clean of errors, otherwise an error
// summarizing the first few Error findings.
func (au *Audit) Err() error {
	var errs []string
	n := 0
	for _, f := range au.Findings {
		if f.Severity != Error {
			continue
		}
		n++
		if len(errs) < 3 {
			errs = append(errs, f.String())
		}
	}
	if n == 0 {
		return nil
	}
	suffix := ""
	if n > len(errs) {
		suffix = fmt.Sprintf(" (and %d more)", n-len(errs))
	}
	return fmt.Errorf("flow: netlist %s: %s%s", au.Netlist.Name(), strings.Join(errs, "; "), suffix)
}

// TaintPairPoints counts the points whose TaintPair verdict holds.
func (au *Audit) TaintPairPoints() int {
	n := 0
	for _, p := range au.Points {
		if p.TaintPair {
			n++
		}
	}
	return n
}

// TaintedPoints counts the points reached by any taint label.
func (au *Audit) TaintedPoints() int {
	n := 0
	for _, p := range au.Points {
		if p.ConeTaint != 0 {
			n++
		}
	}
	return n
}

// MonitorRankIDs returns the IDs of the monitorable points in placement
// rank order — the ordering the fuzzing engines hand to monitor placement.
// Point IDs are stable across independently elaborated instances of the
// same design (trace.Analysis.Rebind), so the slice can be computed once
// and applied to every worker's rebound analysis.
func (au *Audit) MonitorRankIDs() []int {
	var ids []int
	for _, p := range au.Points {
		if p.Monitorable {
			ids = append(ids, p.Point.ID)
		}
	}
	return ids
}

// Analyze runs the full information-flow audit: taint seeding and
// propagation, surface extraction, the trace cross-check, per-point scoring,
// and placement ranking. a may be nil (the analysis is computed here) or an
// analysis of the same design; an analysis bound to a different netlist
// instance is rebound by dense id. spec may be empty to select the
// DefaultSpec heuristic.
func Analyze(n *hdl.Netlist, a *trace.Analysis, spec Spec) *Audit {
	if a == nil {
		a = trace.Analyze(n)
	} else if a.Netlist != n {
		a = a.Rebind(n)
	}
	au := &Audit{Netlist: n, Analysis: a}

	explicit := !spec.empty()
	if explicit {
		au.Spec = spec
	} else {
		au.Spec = DefaultSpec(n)
	}
	au.seed(explicit)
	au.propagate()
	au.extractSurface()
	au.crossCheck()
	au.score()
	au.rank()
	return au
}
