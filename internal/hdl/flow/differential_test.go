package flow

// Differential coverage of the two static layers — the structural verifier
// (internal/hdl/check) and the information-flow audit — over generated
// netlists: on clean designs both layers must accept, every signal the
// audit's surface references must be one check accepted, and injected
// defects must be flagged by exactly the layer that owns the property
// (undriven select → check; dead constant arbitration → flow).

import (
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/hdl/check"
	"sonar/internal/hdl/gen"
)

// TestDifferentialCheckVsFlow sweeps ≥32 generated seeds: check accepts,
// flow's cross-check agrees with trace, and every signal a flow surface
// point references is a signal of the checked netlist (dense-id
// round-trip), i.e. the audit never invents structure check did not see.
func TestDifferentialCheckVsFlow(t *testing.T) {
	for seed := int64(1); seed <= 36; seed++ {
		n, err := gen.New(gen.Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := check.Check(n, check.Options{})
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: check rejects a generated design: %v", seed, err)
		}
		au := Analyze(n, nil, Spec{})
		if err := au.Err(); err != nil {
			t.Errorf("seed %d: flow cross-check failed: %v", seed, err)
		}
		for _, sp := range au.Surface {
			for _, s := range append(append([]*hdl.Signal{sp.Out}, sp.Selects...), sp.Leaves...) {
				if n.SignalByID(s.ID()) != s {
					t.Fatalf("seed %d: surface references signal %s not in the checked netlist", seed, s.Name())
				}
			}
		}
	}
}

// TestInjectedUndrivenSelectFlaggedByCheck injects a mux whose select is a
// consumed-but-undriven wire into a clean generated design: the structural
// layer must reject it (dangling-select Error) while the flow audit stays
// error-clean — a driverless select is an information-flow source, not a
// cross-check discrepancy.
func TestInjectedUndrivenSelectFlaggedByCheck(t *testing.T) {
	n, err := gen.New(gen.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Module("gen")
	sel := m.Wire("inj_dangling_sel", 1)
	a := m.Input("inj_a", 8)
	b := m.Input("inj_b", 8)
	m.Mux("inj_grant", sel, a, b)

	rep := check.Check(n, check.Options{})
	if rep.Err() == nil {
		t.Fatal("check accepted an undriven select")
	}
	if got := rep.ByCode(check.CodeDanglingSelect); len(got) != 1 {
		t.Fatalf("dangling-select findings = %v", got)
	}
	au := Analyze(n, nil, Spec{})
	if err := au.Err(); err != nil {
		t.Errorf("flow flagged the undriven select as its own error: %v", err)
	}
	if got := au.ByCode(CodeConstArbiter); len(got) != 0 {
		t.Errorf("flow misclassified the undriven select as a const arbiter: %v", got)
	}
}

// TestInjectedConstArbiterFlaggedByFlow injects a cascade arbitrated
// entirely by a literal constant: the flow audit must call the arbitration
// dead (const-arbiter) while check keeps the design error-clean (a const
// select is legal structure, Info only).
func TestInjectedConstArbiterFlaggedByFlow(t *testing.T) {
	n, err := gen.New(gen.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Module("gen")
	sel := m.Const("inj_const_sel", 1, 1)
	a := m.Input("inj_a", 8)
	b := m.Input("inj_b", 8)
	root := m.Mux("inj_grant", sel, a, b)

	rep := check.Check(n, check.Options{})
	if err := rep.Err(); err != nil {
		t.Fatalf("check rejected a const arbiter outright: %v", err)
	}
	au := Analyze(n, nil, Spec{})
	if err := au.Err(); err != nil {
		t.Fatalf("flow cross-check failed on the injected design: %v", err)
	}
	found := false
	for _, f := range au.ByCode(CodeConstArbiter) {
		pa := findPoint(au, f.PointID)
		if pa != nil && pa.Point.Root == root {
			found = true
		}
	}
	if !found {
		t.Errorf("flow did not flag the injected const arbiter; findings: %v", au.Findings)
	}
}

// findPoint returns the audited point with the given trace id.
func findPoint(au *Audit, id int) *PointAudit {
	for _, pa := range au.Points {
		if pa.Point.ID == id {
			return pa
		}
	}
	return nil
}
