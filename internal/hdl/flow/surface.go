// This file extracts the contention surface — every arbitration MUX cascade
// and the requestor cones converging on it — independently of
// trace.Analyze, then cross-checks the two layers and ranks the points for
// monitor placement.

package flow

import (
	"fmt"
	"sort"

	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// extractSurface reconstructs every MUX cascade from the raw mux list alone:
// it builds its own data-input and driver indexes from n.Muxes() rather than
// reusing the netlist's (or trace.Analyze's) bookkeeping, so agreement
// between the surface and the trace is a genuine cross-check of two
// implementations, not one algorithm reading its own notes twice.
func (au *Audit) extractSurface() {
	n := au.Netlist
	muxes := n.Muxes()
	dataUse := make(map[*hdl.Signal]bool, 2*len(muxes))
	driver := make(map[*hdl.Signal]*hdl.Mux, len(muxes))
	for _, m := range muxes {
		dataUse[m.TVal] = true
		dataUse[m.FVal] = true
		driver[m.Out] = m
	}
	for _, m := range muxes {
		if dataUse[m.Out] {
			continue // interior node of some cascade
		}
		sp := &SurfacePoint{Root: m, Out: m.Out}
		au.walk(m, sp, driver)
		au.Surface = append(au.Surface, sp)
	}
	if len(au.Surface) == 0 {
		au.Findings = append(au.Findings, Finding{
			Code: CodeEmptySurface, Severity: Error, PointID: -1,
			Msg: "design has no arbitration MUX cascades; no contention side channel can exist and no monitor can be placed",
		})
	}
}

// walk descends one cascade, TVal before FVal, so Leaves come out in
// select-priority order — the same visit order trace.Analyze uses, which is
// what makes leaf lists directly comparable in the cross-check.
func (au *Audit) walk(m *hdl.Mux, sp *SurfacePoint, driver map[*hdl.Signal]*hdl.Mux) {
	sp.Muxes = append(sp.Muxes, m)
	sp.Selects = append(sp.Selects, m.Sel)
	for _, in := range []*hdl.Signal{m.TVal, m.FVal} {
		if child, ok := driver[in]; ok {
			au.walk(child, sp, driver)
			continue
		}
		sp.Leaves = append(sp.Leaves, in)
	}
}

// crossCheck verifies the surface and trace.Analyze agree on the design:
// every trace point's root cascade must exist in the surface with the same
// requestor leaves, and every surface cascade must be a trace point. Any
// discrepancy means one static layer is wrong about the netlist, which is
// an Error exactly as a malformed netlist is in hdl/check.
func (au *Audit) crossCheck() {
	byRoot := make(map[*hdl.Mux]*SurfacePoint, len(au.Surface))
	for _, sp := range au.Surface {
		byRoot[sp.Root] = sp
	}
	claimed := make(map[*hdl.Mux]bool, len(au.Surface))
	for _, p := range au.Analysis.Points {
		pa := &PointAudit{Point: p, Monitorable: p.Monitorable()}
		au.Points = append(au.Points, pa)
		sp, ok := byRoot[p.Root]
		if !ok {
			au.Findings = append(au.Findings, Finding{
				Code: CodeSurfaceMissing, Severity: Error, PointID: p.ID,
				Msg: fmt.Sprintf("trace point %d (root %s) has no cascade in the contention surface", p.ID, p.Out.Name()),
			})
			continue
		}
		claimed[p.Root] = true
		pa.Surface = sp
		if !sameLeaves(sp, p.Requests) {
			au.Findings = append(au.Findings, Finding{
				Code: CodeLeafMismatch, Severity: Error, PointID: p.ID,
				Msg: fmt.Sprintf("trace point %d resolved %d requestor leaves, surface resolved %d or in a different order", p.ID, len(p.Requests), len(sp.Leaves)),
			})
		}
	}
	for _, sp := range au.Surface {
		if !claimed[sp.Root] {
			au.Findings = append(au.Findings, Finding{
				Code: CodeSurfaceExtra, Severity: Error, PointID: -1,
				Msg: fmt.Sprintf("surface cascade rooted at %s is not a trace.Analyze contention point", sp.Out.Name()),
			})
		}
	}
}

// sameLeaves reports whether the surface's leaves match the trace point's
// request data signals, in order.
func sameLeaves(sp *SurfacePoint, reqs []trace.Request) bool {
	if len(sp.Leaves) != len(reqs) {
		return false
	}
	for i, l := range sp.Leaves {
		if reqs[i].Data != l {
			return false
		}
	}
	return true
}

// coneWalker computes requestor backward cones with epoch-stamped scratch
// slices: no per-point allocation, no map iteration, fully deterministic.
type coneWalker struct {
	n *hdl.Netlist
	// lastEpoch[id] is the walk epoch that last visited the signal.
	lastEpoch []int64
	epoch     int64
	// cones[id] counts how many of the current point's request cones the
	// signal appears in; touched lists the ids to reset between points.
	cones   []uint8
	touched []int
	queue   []int
	depth   []int32
}

func newConeWalker(n *hdl.Netlist) *coneWalker {
	return &coneWalker{
		n:         n,
		lastEpoch: make([]int64, n.NumSignals()),
		epoch:     0,
		cones:     make([]uint8, n.NumSignals()),
		depth:     make([]int32, n.NumSignals()),
	}
}

// walk BFS-walks the backward combinational cone of one requestor leaf,
// folding each reached signal into the current point's cone counts and
// returning the cone's depth. Registers and constants are included in the
// cone but not traversed: a register output is shared state in its own
// right, but what feeds it belongs to a different cycle.
func (w *coneWalker) walk(leaf *hdl.Signal) int {
	w.epoch++
	w.queue = w.queue[:0]
	maxDepth := 0
	visit := func(s *hdl.Signal, d int32) {
		id := s.ID()
		if w.lastEpoch[id] == w.epoch {
			return
		}
		w.lastEpoch[id] = w.epoch
		if w.cones[id] == 0 {
			w.touched = append(w.touched, id)
		}
		if w.cones[id] < 255 {
			w.cones[id]++
		}
		w.depth[id] = d
		if int(d) > maxDepth {
			maxDepth = int(d)
		}
		w.queue = append(w.queue, id)
	}
	visit(leaf, 0)
	for head := 0; head < len(w.queue); head++ {
		id := w.queue[head]
		s := w.n.SignalByID(id)
		if s.Kind() == hdl.Reg || s.IsConst() {
			continue // in the cone, not through it
		}
		d := w.depth[id] + 1
		if m, ok := w.n.Driver(s); ok {
			visit(m.Sel, d)
			visit(m.TVal, d)
			visit(m.FVal, d)
			continue
		}
		if p, ok := w.n.PrimDriver(s); ok {
			for _, a := range p.Args {
				visit(a, d)
			}
			continue
		}
		for _, src := range s.Sources() {
			visit(src, d)
		}
	}
	return maxDepth
}

// shared counts the signals that appeared in at least two of the cones
// walked since the last reset, then clears the counts.
func (w *coneWalker) shared() int {
	n := 0
	for _, id := range w.touched {
		if w.cones[id] >= 2 {
			n++
		}
		w.cones[id] = 0
	}
	w.touched = w.touched[:0]
	return n
}

// score computes every point's taint reachability, shared fan-in, and cone
// depth, plus the per-point Info findings (dead arbitration, unreachable
// taint).
func (au *Audit) score() {
	w := newConeWalker(au.Netlist)
	for _, pa := range au.Points {
		p := pa.Point
		for _, sel := range p.Selects {
			pa.SelectTaint |= au.TaintOf(sel)
		}
		allConstSel := true
		for _, sel := range p.Selects {
			if !sel.IsConst() {
				allConstSel = false
				break
			}
		}
		for ri := range p.Requests {
			req := &p.Requests[ri]
			pa.RequestTaint |= au.TaintOf(req.Data)
			if d := w.walk(req.Data); d > pa.ConeDepth {
				pa.ConeDepth = d
			}
		}
		pa.SharedFanin = w.shared()
		pa.ConeTaint = pa.SelectTaint | pa.RequestTaint
		pa.TaintPair = pa.ConeTaint.Pair()
		if allConstSel && len(p.Selects) > 0 {
			au.Findings = append(au.Findings, Finding{
				Code: CodeConstArbiter, Severity: Info, PointID: p.ID,
				Msg: fmt.Sprintf("point %d (%s): every select is a literal constant; the arbitration can never switch", p.ID, p.Out.Name()),
			})
		}
		if pa.Monitorable && pa.ConeTaint == 0 {
			au.Findings = append(au.Findings, Finding{
				Code: CodeUntainted, Severity: Info, PointID: p.ID,
				Msg: fmt.Sprintf("point %d (%s): no designated taint source reaches the point", p.ID, p.Out.Name()),
			})
		}
	}
}

// rank orders the points for monitor placement and stamps Rank. The key is
// lexicographic: monitorable before filtered (an unmonitorable point can
// never be watched, whatever its score), then taint-pair reachability,
// shared fan-in, cone depth, and finally the stable point id.
func (au *Audit) rank() {
	sort.SliceStable(au.Points, func(i, j int) bool {
		a, b := au.Points[i], au.Points[j]
		if a.Monitorable != b.Monitorable {
			return a.Monitorable
		}
		if a.TaintPair != b.TaintPair {
			return a.TaintPair
		}
		if a.SharedFanin != b.SharedFanin {
			return a.SharedFanin > b.SharedFanin
		}
		if a.ConeDepth != b.ConeDepth {
			return a.ConeDepth > b.ConeDepth
		}
		return a.Point.ID < b.Point.ID
	})
	for i, pa := range au.Points {
		pa.Rank = i
	}
}
