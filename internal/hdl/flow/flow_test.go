package flow

import (
	"bytes"
	"strings"
	"testing"

	"sonar/internal/boom"
	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
	"sonar/internal/nutshell"
	"sonar/internal/trace"
)

// arbNet builds a small two-requestor arbiter: an attacker-steerable 1-bit
// select choosing between a secret-carrying data port and a public one,
// with valid signals so the point is monitorable.
func arbNet(t *testing.T) *hdl.Netlist {
	t.Helper()
	n := hdl.NewNetlist("arb")
	m := n.Module("arb")
	sel := m.Input("attacker_sel", 1)
	secret := m.Input("secret_data", 8)
	pub := m.Input("public_data", 8)
	v0 := m.Input("req0_valid", 1)
	v1 := m.Input("req1_valid", 1)
	_ = v0
	_ = v1
	root := m.Mux("grant", sel, secret, pub)
	out := m.Output("out", 8)
	out.AddSource(root.Out)
	return n
}

func TestTaintReachesArbiter(t *testing.T) {
	n := arbNet(t)
	au := Analyze(n, nil, Spec{
		Secret:   []string{"arb.secret_data"},
		Attacker: []string{"arb.attacker_sel"},
	})
	if !au.OK() {
		t.Fatalf("unexpected error findings: %v", au.Findings)
	}
	if len(au.Points) != 1 {
		t.Fatalf("want 1 point, got %d", len(au.Points))
	}
	pa := au.Points[0]
	if !pa.SelectTaint.Has(TaintAttacker) {
		t.Errorf("select taint = %s, want attacker", pa.SelectTaint)
	}
	if !pa.RequestTaint.Has(TaintSecret) {
		t.Errorf("request taint = %s, want secret", pa.RequestTaint)
	}
	if !pa.TaintPair {
		t.Error("taint pair not detected")
	}
	grant := n.MustSignal("arb.grant")
	if got := au.TaintOf(grant); !got.Pair() {
		t.Errorf("grant taint = %s, want SA", got)
	}
	if got := au.TaintOf(n.MustSignal("arb.public_data")); got != 0 {
		t.Errorf("public_data taint = %s, want none", got)
	}
}

func TestTaintCrossesRegisterFeedback(t *testing.T) {
	// secret -> wire -> reg -> prim -> (feeds the same wire's cone via a
	// second consumer): the register edge forces a second fixpoint pass.
	n := hdl.NewNetlist("regloop")
	m := n.Module("m")
	secret := m.Input("secret", 8)
	r := m.Reg("state", 8)
	next := m.Wire("next", 8)
	next.AddSource(secret)
	next.AddSource(r)
	r.AddSource(next)
	obs := m.Wire("obs", 8)
	obs.AddSource(r)
	au := Analyze(n, nil, Spec{Secret: []string{"m.secret"}})
	if got := au.TaintOf(obs); !got.Has(TaintSecret) {
		t.Errorf("obs taint = %s, want secret (through register)", got)
	}
	if au.Passes < 2 {
		t.Errorf("passes = %d, want >= 2 (register feedback)", au.Passes)
	}
}

func TestUnmatchedPatternIsError(t *testing.T) {
	n := arbNet(t)
	au := Analyze(n, nil, Spec{Secret: []string{"arb.no_such_port"}})
	if au.OK() {
		t.Fatal("want error findings for unmatched pattern")
	}
	if got := au.ByCode(CodeUnmatchedPattern); len(got) != 1 {
		t.Fatalf("unmatched-pattern findings = %v", got)
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"a.b", "a.b", true},
		{"a.b", "a.bc", false},
		{"*", "anything", true},
		{"io_w*_bits_data", "io_w0_bits_data", true},
		{"io_w*_bits_data", "io_w0_bits_valid", false},
		{"*valid", "req0_valid", true},
		{"arb.req[*]", "arb.req[3]", true},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "aXcYb", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pat, c.name); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pat, c.name, got, c.want)
		}
	}
}

func TestDefaultSpecSeedsUndrivenSignals(t *testing.T) {
	n := arbNet(t)
	au := Analyze(n, nil, Spec{})
	if len(au.SecretSeeds) == 0 {
		t.Error("heuristic found no secret seeds (multi-bit inputs)")
	}
	if len(au.AttackerSeeds) == 0 {
		t.Error("heuristic found no attacker seeds (1-bit inputs)")
	}
	for _, s := range au.SecretSeeds {
		if s.Width() <= 1 {
			t.Errorf("secret seed %s has width %d", s.Name(), s.Width())
		}
	}
}

// TestAuditTopRankCoversMonitorable pins the acceptance criterion: on boom
// and nutshell, the audit's top-ranked points are exactly the points
// trace.Analyze marks Monitorable.
func TestAuditTopRankCoversMonitorable(t *testing.T) {
	duts := []struct {
		name string
		net  *hdl.Netlist
	}{
		{"boom", boom.New().Net},
		{"nutshell", nutshell.New().Net},
	}
	for _, d := range duts {
		t.Run(d.name, func(t *testing.T) {
			a := trace.Analyze(d.net)
			au := Analyze(d.net, a, Spec{})
			if !au.OK() {
				t.Fatalf("audit not clean: %v", au.Err())
			}
			mon := a.Monitored()
			if len(au.Points) != len(a.Points) {
				t.Fatalf("audited %d points, trace found %d", len(au.Points), len(a.Points))
			}
			want := make(map[int]bool, len(mon))
			for _, p := range mon {
				want[p.ID] = true
			}
			for i := 0; i < len(mon); i++ {
				if !au.Points[i].Monitorable {
					t.Fatalf("rank %d is not monitorable but %d monitorable points exist", i, len(mon))
				}
				if !want[au.Points[i].Point.ID] {
					t.Errorf("rank %d holds unexpected point %d", i, au.Points[i].Point.ID)
				}
			}
			ids := au.MonitorRankIDs()
			if len(ids) != len(mon) {
				t.Fatalf("MonitorRankIDs has %d entries, want %d", len(ids), len(mon))
			}
			if au.TaintedPoints() == 0 {
				t.Error("heuristic taint reached no point at all")
			}
		})
	}
}

// TestAuditDeterminism pins byte-identical exports across two independent
// elaborations and audits of the same design.
func TestAuditDeterminism(t *testing.T) {
	build := func() (*hdl.Netlist, *Audit) {
		net := nutshell.New().Net
		return net, Analyze(net, nil, Spec{})
	}
	_, au1 := build()
	_, au2 := build()
	if au1.Text() != au2.Text() {
		t.Error("Text() differs between runs")
	}
	j1, err := au1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := au2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON() differs between runs")
	}
	if au1.DOT() != au2.DOT() {
		t.Error("DOT() differs between runs")
	}
}

// TestGenAuditClean runs the audit over a spread of generated designs: the
// cross-check must agree with trace.Analyze on every one.
func TestGenAuditClean(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n, err := gen.New(gen.Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		au := Analyze(n, nil, Spec{})
		if err := au.Err(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if len(au.Surface) == 0 {
			t.Errorf("seed %d: empty surface", seed)
		}
	}
}

// TestDOTEscaping pins the shared escaping helper on a netlist with
// bracketed/indexed and quote-bearing signal names, for both the trace DOT
// exporter and the audit DOT exporter.
func TestDOTEscaping(t *testing.T) {
	n := hdl.NewNetlist("esc")
	m := n.Module("top")
	sel := m.Input(`sel[0]`, 1)
	a := m.Input(`req[0].bits"x"`, 8)
	b := m.Input(`req[1].bits`, 8)
	v0 := m.Input(`req[0].valid`, 1)
	_ = v0
	root := m.Mux("grant", sel, a, b)
	out := m.Output("out", 8)
	out.AddSource(root.Out)

	an := trace.Analyze(n)
	if len(an.Points) != 1 {
		t.Fatalf("want 1 point, got %d", len(an.Points))
	}
	dot := an.Points[0].DOT()
	if !strings.Contains(dot, `\"x\"`) {
		t.Errorf("trace DOT does not escape quotes:\n%s", dot)
	}
	if strings.Contains(dot, "\nsel: ") {
		t.Errorf("trace DOT leaks a raw newline into a label:\n%s", dot)
	}

	au := Analyze(n, nil, Spec{})
	adot := au.DOT()
	if !strings.Contains(adot, `\"x\"`) {
		t.Errorf("audit DOT does not escape quotes:\n%s", adot)
	}
	if !strings.Contains(adot, `req[1].bits`) {
		t.Errorf("audit DOT lost bracketed names:\n%s", adot)
	}
	for _, line := range strings.Split(adot, "\n") {
		if strings.Count(line, `"`)-strings.Count(line, `\"`)*2 > 2 && strings.Contains(line, "label=") {
			t.Errorf("unescaped quote inside a label: %s", line)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{"a\nb", `a\nb`},
		{`q"q`, `q\"q`},
		{`back\slash`, `back\\slash`},
		{`idx[3]`, `idx[3]`},
	}
	for _, c := range cases {
		if got := trace.EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
