package hdl

import (
	"fmt"
	"sort"
)

// Netlist is the flat structural registry of a design: every signal and
// every 2:1 MUX, indexed by hierarchical name.
type Netlist struct {
	name    string
	signals map[string]*Signal
	order   []*Signal
	muxes   []*Mux
	prims   []*Prim
	// vals is the dense value plane: vals[s.id] holds the current value of
	// signal s. Keeping all signal state in one flat slice makes the
	// simulator's read path cache-friendly and index-addressable.
	vals []uint64
	// watchers[id] holds the watch hooks of signal id; watchBits is a bitset
	// over ids with at least one watcher, so the hot Set path answers "any
	// watcher?" with a single bit test.
	watchers  [][]WatchFunc
	watchBits []uint64
	// driver maps a signal to the mux driving it, if any.
	driver map[*Signal]*Mux
	// primDriver maps a signal to the prim driving it, if any.
	primDriver map[*Signal]*Prim
	// muxDataUse marks signals consumed as a TVal/FVal of some mux: such a
	// signal cannot be the root of an n:1 cascade tree.
	muxDataUse map[*Signal]bool
	cycle      int64
}

// NewNetlist creates an empty netlist for a design with the given name.
func NewNetlist(name string) *Netlist {
	return &Netlist{
		name:       name,
		signals:    make(map[string]*Signal),
		driver:     make(map[*Signal]*Mux),
		primDriver: make(map[*Signal]*Prim),
		muxDataUse: make(map[*Signal]bool),
	}
}

// Name returns the design name.
func (n *Netlist) Name() string { return n.name }

// Cycle returns the current simulation cycle of the netlist clock.
func (n *Netlist) Cycle() int64 { return n.cycle }

// Step advances the netlist clock by one cycle.
func (n *Netlist) Step() { n.cycle++ }

// SetCycle forces the clock, used when a netlist is re-run from zero.
func (n *Netlist) SetCycle(c int64) { n.cycle = c }

// NumSignals returns the number of signals in the netlist.
func (n *Netlist) NumSignals() int { return len(n.order) }

// NumMuxes returns the number of 2:1 MUX nodes in the netlist.
func (n *Netlist) NumMuxes() int { return len(n.muxes) }

// Signals returns all signals in creation order.
func (n *Netlist) Signals() []*Signal { return n.order }

// Muxes returns all 2:1 MUX nodes in creation order.
func (n *Netlist) Muxes() []*Mux { return n.muxes }

// SignalByID returns the signal with the given dense id (see Signal.ID).
func (n *Netlist) SignalByID(id int) *Signal { return n.order[id] }

// MuxByID returns the mux with the given dense id (see Mux.ID).
func (n *Netlist) MuxByID(id int) *Mux { return n.muxes[id] }

// Values returns the dense value plane of the netlist: Values()[s.ID()] is
// the current value of signal s. The slice is live — it reflects (and may be
// used alongside) Signal.Value, but writes must go through Signal.Set so
// masking and watcher dispatch still happen.
func (n *Netlist) Values() []uint64 { return n.vals }

// Signal looks a signal up by full hierarchical name.
func (n *Netlist) Signal(name string) (*Signal, bool) {
	s, ok := n.signals[name]
	return s, ok
}

// MustSignal looks a signal up by name and panics if it does not exist.
func (n *Netlist) MustSignal(name string) *Signal {
	s, ok := n.signals[name]
	if !ok {
		panic(fmt.Sprintf("hdl: no signal named %q in %s", name, n.name))
	}
	return s
}

// Driver returns the mux driving the given signal, if any.
func (n *Netlist) Driver(s *Signal) (*Mux, bool) {
	m, ok := n.driver[s]
	return m, ok
}

// IsMuxDataInput reports whether the signal is consumed as the TVal or FVal
// of any mux in the netlist.
func (n *Netlist) IsMuxDataInput(s *Signal) bool { return n.muxDataUse[s] }

// newSignal registers a signal, enforcing unique names and sane widths.
func (n *Netlist) newSignal(name string, width int, kind Kind, val uint64) *Signal {
	if name == "" {
		panic("hdl: empty signal name")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("hdl: signal %s has unsupported width %d", name, width))
	}
	if _, dup := n.signals[name]; dup {
		panic(fmt.Sprintf("hdl: duplicate signal name %q", name))
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (1 << uint(width)) - 1
	}
	s := &Signal{net: n, id: len(n.order), name: name, width: width, mask: mask, kind: kind}
	n.signals[name] = s
	n.order = append(n.order, s)
	n.vals = append(n.vals, val&mask)
	n.watchers = append(n.watchers, nil)
	if need := (len(n.order) + 63) / 64; need > len(n.watchBits) {
		n.watchBits = append(n.watchBits, 0)
	}
	return s
}

// Wire creates a top-level wire signal.
func (n *Netlist) Wire(name string, width int) *Signal {
	return n.newSignal(name, width, Wire, 0)
}

// Reg creates a top-level register signal.
func (n *Netlist) Reg(name string, width int) *Signal {
	return n.newSignal(name, width, Reg, 0)
}

// Const creates a top-level constant signal with a fixed value.
func (n *Netlist) Const(name string, width int, val uint64) *Signal {
	return n.newSignal(name, width, Const, val)
}

// Input creates a top-level input port signal.
func (n *Netlist) Input(name string, width int) *Signal {
	return n.newSignal(name, width, Input, 0)
}

// Output creates a top-level output port signal.
func (n *Netlist) Output(name string, width int) *Signal {
	return n.newSignal(name, width, Output, 0)
}

// Mux creates a 2:1 mux driving out. A signal may be driven by at most one
// mux; out must not be a constant.
func (n *Netlist) Mux(out, sel, tval, fval *Signal) *Mux {
	if out.IsConst() {
		panic(fmt.Sprintf("hdl: mux driving constant %s", out.Name()))
	}
	if _, dup := n.driver[out]; dup {
		panic(fmt.Sprintf("hdl: signal %s driven by two muxes", out.Name()))
	}
	m := &Mux{id: len(n.muxes), net: n, Out: out, Sel: sel, TVal: tval, FVal: fval}
	n.muxes = append(n.muxes, m)
	n.driver[out] = m
	n.muxDataUse[tval] = true
	n.muxDataUse[fval] = true
	return m
}

// ModulePaths returns the sorted set of module paths that own at least one
// mux, useful for distribution reports (paper Figure 7).
func (n *Netlist) ModulePaths() []string {
	set := make(map[string]bool)
	for _, m := range n.muxes {
		set[m.ModulePath()] = true
	}
	paths := make([]string, 0, len(set))
	for p := range set { //sonar:nondeterministic-ok keys collected then sorted
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Module returns a builder scoped to the given hierarchical path. Nested
// paths are joined with ".".
func (n *Netlist) Module(path string) *Module {
	return &Module{net: n, path: path}
}

// Module is a name-scoped builder over a netlist. All signals created
// through it are prefixed with the module path.
type Module struct {
	net  *Netlist
	path string
}

// Path returns the hierarchical path of the module.
func (m *Module) Path() string { return m.path }

// Netlist returns the underlying netlist.
func (m *Module) Netlist() *Netlist { return m.net }

// Child returns a builder for a submodule of this module.
func (m *Module) Child(name string) *Module {
	return &Module{net: m.net, path: m.join(name)}
}

func (m *Module) join(name string) string {
	if m.path == "" {
		return name
	}
	return m.path + "." + name
}

// Wire creates a wire in this module.
func (m *Module) Wire(name string, width int) *Signal {
	return m.net.newSignal(m.join(name), width, Wire, 0)
}

// Reg creates a register in this module.
func (m *Module) Reg(name string, width int) *Signal {
	return m.net.newSignal(m.join(name), width, Reg, 0)
}

// Const creates a constant in this module.
func (m *Module) Const(name string, width int, val uint64) *Signal {
	return m.net.newSignal(m.join(name), width, Const, val)
}

// Input creates an input port in this module.
func (m *Module) Input(name string, width int) *Signal {
	return m.net.newSignal(m.join(name), width, Input, 0)
}

// Output creates an output port in this module.
func (m *Module) Output(name string, width int) *Signal {
	return m.net.newSignal(m.join(name), width, Output, 0)
}

// Mux creates a 2:1 mux in this module driving a freshly created wire named
// name.
func (m *Module) Mux(name string, sel, tval, fval *Signal) *Mux {
	out := m.Wire(name, maxWidth(tval, fval))
	return m.net.Mux(out, sel, tval, fval)
}

// MuxInto creates a 2:1 mux driving an existing signal.
func (m *Module) MuxInto(out *Signal, sel, tval, fval *Signal) *Mux {
	return m.net.Mux(out, sel, tval, fval)
}

// MuxTree builds a cascaded n:1 selection over inputs using one select
// signal per level (priority encoding: sels[i] picks inputs[i], the final
// else branch is the last input). It returns the root mux whose Out carries
// the selected value, named name. len(sels) must be len(inputs)-1 and
// len(inputs) >= 2.
func (m *Module) MuxTree(name string, sels []*Signal, inputs []*Signal) *Mux {
	if len(inputs) < 2 || len(sels) != len(inputs)-1 {
		panic(fmt.Sprintf("hdl: MuxTree %s: %d inputs, %d selects", name, len(inputs), len(sels)))
	}
	// Build from the tail: acc = mux(sels[k], inputs[k], acc).
	acc := inputs[len(inputs)-1]
	var root *Mux
	for k := len(inputs) - 2; k >= 0; k-- {
		var out *Signal
		if k == 0 {
			out = m.Wire(name, maxWidth(inputs[k], acc))
		} else {
			out = m.Wire(fmt.Sprintf("%s_lvl%d", name, k), maxWidth(inputs[k], acc))
		}
		root = m.net.Mux(out, sels[k], inputs[k], acc)
		acc = out
	}
	return root
}

func maxWidth(a, b *Signal) int {
	if a.Width() > b.Width() {
		return a.Width()
	}
	return b.Width()
}
