package hdl

import "testing"

func primRig(t *testing.T, op string, widths []int, intParams []int64) (*Netlist, []*Signal, *Prim) {
	t.Helper()
	n := NewNetlist("p")
	m := n.Module("m")
	args := make([]*Signal, len(widths))
	for i, w := range widths {
		args[i] = m.Wire("a"+string(rune('0'+i)), w)
	}
	out := m.Wire("out", PrimResultWidth(op, args, intParams))
	p := n.Prim(out, op, args, intParams)
	return n, args, p
}

func TestPrimArithmeticAndLogic(t *testing.T) {
	cases := []struct {
		op   string
		a, b uint64
		want uint64
	}{
		{"and", 0b1100, 0b1010, 0b1000},
		{"or", 0b1100, 0b1010, 0b1110},
		{"xor", 0b1100, 0b1010, 0b0110},
		{"add", 200, 100, 300},
		{"sub", 200, 100, 100},
		{"mul", 20, 10, 200},
		{"div", 201, 10, 20},
		{"rem", 201, 10, 1},
		{"div", 201, 0, 0}, // division by zero guards
		{"rem", 201, 0, 0},
		{"eq", 7, 7, 1},
		{"eq", 7, 8, 0},
		{"neq", 7, 8, 1},
		{"lt", 3, 9, 1},
		{"leq", 9, 9, 1},
		{"gt", 9, 3, 1},
		{"geq", 3, 9, 0},
		{"dshl", 1, 4, 16},
		{"dshr", 16, 4, 1},
	}
	for _, c := range cases {
		_, args, p := primRig(t, c.op, []int{16, 16}, nil)
		args[0].Set(c.a)
		args[1].Set(c.b)
		if got := p.Compute(); got != c.want {
			t.Errorf("%s(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestPrimUnaryAndParams(t *testing.T) {
	_, args, p := primRig(t, "not", []int{4}, nil)
	args[0].Set(0b0101)
	if got := p.Compute(); got != 0b1010 {
		t.Errorf("not = %#b", got)
	}
	_, args, p = primRig(t, "bits", []int{16}, []int64{7, 4})
	args[0].Set(0xABCD)
	if got := p.Compute(); got != 0xC {
		t.Errorf("bits(0xABCD, 7, 4) = %#x, want 0xc", got)
	}
	_, args, p = primRig(t, "shl", []int{8}, []int64{3})
	args[0].Set(0b101)
	if got := p.Compute(); got != 0b101000 {
		t.Errorf("shl = %#b", got)
	}
	_, args, p = primRig(t, "cat", []int{4, 4}, nil)
	args[0].Set(0xA)
	args[1].Set(0x5)
	if got := p.Compute(); got != 0xA5 {
		t.Errorf("cat = %#x", got)
	}
	_, args, p = primRig(t, "orr", []int{8}, nil)
	args[0].Set(0)
	if p.Compute() != 0 {
		t.Error("orr(0) != 0")
	}
	args[0].Set(0x40)
	if p.Compute() != 1 {
		t.Error("orr(0x40) != 1")
	}
	_, args, p = primRig(t, "andr", []int{4}, nil)
	args[0].Set(0xF)
	if p.Compute() != 1 {
		t.Error("andr(0xF) != 1")
	}
	_, args, p = primRig(t, "xorr", []int{8}, nil)
	args[0].Set(0b1011)
	if p.Compute() != 1 {
		t.Error("xorr(0b1011) != 1 (odd parity)")
	}
}

func TestPrimResultWidths(t *testing.T) {
	n := NewNetlist("w")
	m := n.Module("m")
	a8 := m.Wire("a", 8)
	b8 := m.Wire("b", 8)
	cases := []struct {
		op   string
		args []*Signal
		ips  []int64
		want int
	}{
		{"eq", []*Signal{a8, b8}, nil, 1},
		{"add", []*Signal{a8, b8}, nil, 9},
		{"mul", []*Signal{a8, b8}, nil, 16},
		{"cat", []*Signal{a8, b8}, nil, 16},
		{"bits", []*Signal{a8}, []int64{5, 2}, 4},
		{"shl", []*Signal{a8}, []int64{4}, 12},
		{"tail", []*Signal{a8}, []int64{3}, 5},
		{"pad", []*Signal{a8}, []int64{12}, 12},
		{"and", []*Signal{a8, b8}, nil, 8},
	}
	for _, c := range cases {
		if got := PrimResultWidth(c.op, c.args, c.ips); got != c.want {
			t.Errorf("width(%s) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestPrimRecordsFanin(t *testing.T) {
	n, args, p := primRig(t, "add", []int{8, 8}, nil)
	if len(p.Out.Sources()) != 2 {
		t.Errorf("fan-in = %d, want 2", len(p.Out.Sources()))
	}
	if d, ok := n.PrimDriver(p.Out); !ok || d != p {
		t.Error("PrimDriver not recorded")
	}
	_ = args
}

func TestPrimUnknownOpIsORReduction(t *testing.T) {
	_, args, p := primRig(t, "frobnicate", []int{8, 8}, nil)
	args[0].Set(0b01)
	args[1].Set(0b10)
	if got := p.Compute(); got != 0b11 {
		t.Errorf("unknown op = %d, want OR reduction 3", got)
	}
}

func TestPrimDoubleDrivePanics(t *testing.T) {
	n, _, p := primRig(t, "and", []int{4, 4}, nil)
	defer func() {
		if recover() == nil {
			t.Error("double prim drive did not panic")
		}
	}()
	n.Prim(p.Out, "or", p.Args, nil)
}
