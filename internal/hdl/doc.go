// Package hdl provides a structural netlist intermediate representation for
// hardware designs, playing the role FIRRTL plays in the Sonar paper.
//
// A Netlist is a flat registry of named, width-annotated signals (wires,
// registers, constants, ports) plus the set of 2:1 multiplexers connecting
// them. The IR deliberately carries only the structural facts Sonar's
// analyses need:
//
//   - MUX connectivity, so cascaded 2:1 MUXes can be traced bottom-up into
//     n:1 contention points (paper §5.1);
//   - signal names, so request validity can be determined by prefix pattern
//     matching (paper Algorithm 1);
//   - declared fan-in ("sources"), so validity can be derived from source
//     signals when no same-prefix valid signal exists;
//   - constant-ness, so contention states without side-channel risk can be
//     filtered out statically (paper §5.2).
//
// Netlists are either parsed from a FIRRTL-style text form (package firrtl)
// or elaborated programmatically by the processor models (packages boom and
// nutshell), whose cycle-accurate simulators drive the declared signals every
// clock cycle. Runtime observation is done through per-signal watch hooks,
// which package monitor uses to collect contention-critical states.
package hdl
