// Package gen deterministically generates random — but structurally valid —
// netlists for differential testing and benchmarking of the evaluators in
// internal/sim.
//
// Generated designs are acyclic by construction: combinational nodes only
// consume signals created before them, and register feedback paths are wired
// last, after all combinational logic exists (register outputs break
// combinational dependency edges, so back-edges through them are legal).
// Every netlist returned by New has passed the structural verifier
// (internal/hdl/check) with default closed-design options — no undriven
// wires, no multi-driven signals, no combinational cycles.
//
// Optional arbiter blocks follow the naming convention the validity tracer
// recognizes (reqK / reqK_valid, paper Algorithm 1), so generated designs
// expose monitorable contention points to trace.Analyze and can carry a full
// monitor workload in benchmarks.
package gen

import (
	"fmt"
	"math/rand"

	"sonar/internal/hdl"
	"sonar/internal/hdl/check"
)

// Config parameterizes one generated netlist. The zero value generates a
// small default design; every field only tightens or widens that shape.
type Config struct {
	// Seed selects the design. Equal configs generate identical netlists.
	Seed int64
	// Inputs is the number of input ports (default 4). The first input is
	// always 1 bit wide so selects have a natural driver.
	Inputs int
	// Nodes is the number of random combinational nodes — muxes, prims, and
	// buffer wires (default 32).
	Nodes int
	// Regs is the number of registers (default 4). Each receives a
	// combinational driver after all logic is built.
	Regs int
	// Arbiters is the number of arbiter blocks with reqK/reqK_valid naming,
	// each a Fanin:1 MuxTree the contention-point analysis can monitor
	// (default 0).
	Arbiters int
	// Fanin is the request count per arbiter (default 4, minimum 2).
	Fanin int
	// MaxWidth caps signal widths, 1..64 (default 8).
	MaxWidth int
	// PrimShare is the fraction of combinational nodes that are primitive
	// operations rather than muxes or buffers (default 0.25). Prims force
	// the lane evaluator onto its scalar spill path, so differential tests
	// want some and lane benchmarks may want none (set to a negative value
	// for exactly zero prims).
	PrimShare float64
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Inputs == 0 {
		c.Inputs = 4
	}
	if c.Nodes == 0 {
		c.Nodes = 32
	}
	if c.Regs == 0 {
		c.Regs = 4
	}
	if c.Fanin < 2 {
		c.Fanin = 4
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = 8
	}
	if c.MaxWidth < 1 {
		c.MaxWidth = 1
	}
	if c.MaxWidth > 64 {
		c.MaxWidth = 64
	}
	if c.PrimShare == 0 {
		c.PrimShare = 0.25
	}
	if c.PrimShare < 0 {
		c.PrimShare = 0
	}
	return c
}

// primOps are the primitive operations the generator emits: the subset of
// hdl.Prim ops with total semantics over arbitrary operands (no division,
// no parameterized bit surgery), split by arity.
var (
	primOps1 = []string{"not", "andr", "orr", "xorr"}
	primOps2 = []string{"and", "or", "xor", "add", "sub", "eq", "neq", "lt", "gt", "cat"}
)

// New generates a random netlist from the config and verifies it with
// internal/hdl/check before returning. The error is non-nil only if the
// generated design fails structural verification — which would be a
// generator bug, but callers (fuzz-style differential tests) must not
// silently simulate a broken design.
func New(cfg Config) (*hdl.Netlist, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := hdl.NewNetlist(fmt.Sprintf("gen%d", cfg.Seed))
	m := n.Module("gen")

	width := func() int { return 1 + rng.Intn(cfg.MaxWidth) }

	// Operand pool: everything a later node may consume. Constants are
	// tracked separately so select picks can avoid them (a const select is
	// legal but dead logic — the checker flags it as an Info finding and the
	// generator aims for live designs).
	var pool, selPool []*hdl.Signal
	add := func(s *hdl.Signal) {
		pool = append(pool, s)
		if !s.IsConst() {
			selPool = append(selPool, s)
		}
	}

	add(m.Const("c0", 1, 0))
	add(m.Const("c1", 1, 1))
	add(m.Const("cw", cfg.MaxWidth, rng.Uint64()))

	for i := 0; i < cfg.Inputs; i++ {
		w := width()
		if i == 0 {
			w = 1
		}
		add(m.Input(fmt.Sprintf("in%d", i), w))
	}

	var regs []*hdl.Signal
	for i := 0; i < cfg.Regs; i++ {
		r := m.Reg(fmt.Sprintf("r%d", i), width())
		regs = append(regs, r)
		add(r)
	}

	pick := func() *hdl.Signal { return pool[rng.Intn(len(pool))] }
	pickSel := func() *hdl.Signal { return selPool[rng.Intn(len(selPool))] }

	// Combinational fabric: each node consumes only already-created signals,
	// so the combinational graph is acyclic by construction.
	for i := 0; i < cfg.Nodes; i++ {
		r := rng.Float64()
		switch {
		case r < cfg.PrimShare:
			var op string
			var args []*hdl.Signal
			if rng.Intn(4) == 0 {
				op = primOps1[rng.Intn(len(primOps1))]
				args = []*hdl.Signal{pick()}
			} else {
				op = primOps2[rng.Intn(len(primOps2))]
				args = []*hdl.Signal{pick(), pick()}
			}
			out := m.Wire(fmt.Sprintf("p%d", i), hdl.PrimResultWidth(op, args, nil))
			n.Prim(out, op, args, nil)
			add(out)
		case r < cfg.PrimShare+0.2:
			srcs := 2 + rng.Intn(3)
			w := 1
			picked := make([]*hdl.Signal, srcs)
			for k := range picked {
				picked[k] = pick()
				if picked[k].Width() > w {
					w = picked[k].Width()
				}
			}
			out := m.Wire(fmt.Sprintf("b%d", i), w)
			for _, src := range picked {
				out.AddSource(src)
			}
			add(out)
		default:
			mx := m.Mux(fmt.Sprintf("m%d", i), pickSel(), pick(), pick())
			add(mx.Out)
		}
	}

	// Arbiter blocks: Fanin requests with the reqK/reqK_valid naming the
	// validity tracer pattern-matches, selected priority-style by the valid
	// bits themselves. The grant feeds a sink buffer so the tree root stays
	// a cascade root (nothing consumes it as mux data).
	for a := 0; a < cfg.Arbiters; a++ {
		am := m.Child(fmt.Sprintf("arb%d", a))
		datas := make([]*hdl.Signal, cfg.Fanin)
		valids := make([]*hdl.Signal, cfg.Fanin)
		for k := 0; k < cfg.Fanin; k++ {
			data := am.Wire(fmt.Sprintf("req%d", k), width())
			data.AddSource(pick())
			valid := am.Wire(fmt.Sprintf("req%d_valid", k), 1)
			valid.AddSource(pickSel())
			datas[k], valids[k] = data, valid
			add(data)
			add(valid)
		}
		root := am.MuxTree("grant", valids[:cfg.Fanin-1], datas)
		sink := am.Wire("sink", root.Out.Width())
		sink.AddSource(root.Out)
		add(sink)
	}

	// Register feedback, wired last so drivers can reach any signal in the
	// design. Register outputs break combinational dependency edges, so
	// these back-references cannot create evaluation cycles. They DO appear
	// in the mux-driver graph that contention-point tracing walks, though —
	// trace.collect recurses through mux drivers without stopping at
	// registers — so a mux driving a register draws its data inputs from
	// mux-free signals only (buffers, prims, inputs, constants), keeping the
	// driver graph a forest.
	var muxFree []*hdl.Signal
	for _, s := range pool {
		if _, driven := n.Driver(s); !driven && s.Kind() != hdl.Reg {
			muxFree = append(muxFree, s)
		}
	}
	pickMuxFree := func() *hdl.Signal { return muxFree[rng.Intn(len(muxFree))] }
	for _, r := range regs {
		if rng.Intn(2) == 0 {
			m.MuxInto(r, pickSel(), pickMuxFree(), pickMuxFree())
		} else {
			r.AddSource(pick())
			r.AddSource(pick())
		}
	}

	if err := check.Check(n, check.Options{}).Err(); err != nil {
		return nil, fmt.Errorf("gen: seed %d produced an invalid design: %w", cfg.Seed, err)
	}
	return n, nil
}
