package gen

import (
	"testing"

	"sonar/internal/trace"
)

// TestGenValidAcrossSeeds exercises the generator over many seeds and shapes;
// New itself runs the structural verifier, so any returned error is a
// generator bug.
func TestGenValidAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := Config{
			Seed:     seed,
			Nodes:    int(10 + seed*7%120),
			Regs:     int(1 + seed%7),
			Arbiters: int(seed % 4),
		}
		if _, err := New(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestGenDeterministic pins that equal configs elaborate identical designs:
// same signal count, same names, same dense ids.
func TestGenDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Arbiters: 2}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Signals(), b.Signals()
	if len(as) != len(bs) {
		t.Fatalf("signal counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].Name() != bs[i].Name() || as[i].Width() != bs[i].Width() {
			t.Fatalf("signal %d differs: %s/%d vs %s/%d",
				i, as[i].Name(), as[i].Width(), bs[i].Name(), bs[i].Width())
		}
	}
}

// TestGenArbitersMonitorable pins that arbiter blocks expose monitorable
// contention points: the reqK/reqK_valid naming must survive validity
// tracing end to end.
func TestGenArbitersMonitorable(t *testing.T) {
	n, err := New(Config{Seed: 7, Arbiters: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(n)
	monitored := a.Monitored()
	if len(monitored) < 3 {
		t.Fatalf("want >= 3 monitorable points from 3 arbiters, got %d (of %d points)",
			len(monitored), len(a.Points))
	}
	for _, p := range monitored {
		if p.Fanin() < 2 {
			t.Errorf("point %s has fanin %d", p.Out.Name(), p.Fanin())
		}
	}
}
