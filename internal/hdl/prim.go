package hdl

import (
	"fmt"
	"strings"
)

// Prim is a combinational primitive operation node (FIRRTL primop): the
// non-MUX combinational logic of a design. Contention-point analysis does
// not traverse Prims (contention lives in MUXes), but the levelized
// simulator evaluates them, so standalone circuits with real logic can be
// simulated, and validity tracing sees their fan-in through the output
// signal's sources.
type Prim struct {
	id int
	// Op is the operation name ("and", "add", "eq", "bits", ...).
	Op string
	// Out is the driven signal.
	Out *Signal
	// Args are the signal operands in order.
	Args []*Signal
	// IntParams carries integer parameters (e.g. bits' hi/lo, shift
	// amounts for shl/shr).
	IntParams []int64
}

// ID returns the netlist-unique identifier of the prim.
func (p *Prim) ID() int { return p.id }

// String implements fmt.Stringer.
func (p *Prim) String() string {
	args := make([]string, 0, len(p.Args)+len(p.IntParams))
	for _, a := range p.Args {
		args = append(args, a.Name())
	}
	for _, ip := range p.IntParams {
		args = append(args, fmt.Sprint(ip))
	}
	return fmt.Sprintf("%s = %s(%s)", p.Out.Name(), p.Op, strings.Join(args, ", "))
}

// Eval computes the primitive's result and drives it onto Out. Unknown
// operations evaluate as the OR of their operands (the conservative
// validity-style reduction the simulator documents).
func (p *Prim) Eval() {
	p.Out.Set(p.Compute())
}

// Compute returns the primitive's result value without driving it.
func (p *Prim) Compute() uint64 {
	arg := func(i int) uint64 {
		if i < len(p.Args) {
			return p.Args[i].Value()
		}
		return 0
	}
	ip := func(i int) int64 {
		if i < len(p.IntParams) {
			return p.IntParams[i]
		}
		return 0
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch p.Op {
	case "and":
		return arg(0) & arg(1)
	case "or":
		return arg(0) | arg(1)
	case "xor":
		return arg(0) ^ arg(1)
	case "not":
		return ^arg(0) & p.Args[0].Mask()
	case "add":
		return arg(0) + arg(1)
	case "sub":
		return arg(0) - arg(1)
	case "mul":
		return arg(0) * arg(1)
	case "div":
		if arg(1) == 0 {
			return 0
		}
		return arg(0) / arg(1)
	case "rem":
		if arg(1) == 0 {
			return 0
		}
		return arg(0) % arg(1)
	case "eq":
		return b2u(arg(0) == arg(1))
	case "neq":
		return b2u(arg(0) != arg(1))
	case "lt":
		return b2u(arg(0) < arg(1))
	case "leq":
		return b2u(arg(0) <= arg(1))
	case "gt":
		return b2u(arg(0) > arg(1))
	case "geq":
		return b2u(arg(0) >= arg(1))
	case "shl":
		sh := uint(ip(0))
		if sh >= 64 {
			return 0
		}
		return arg(0) << sh
	case "shr":
		sh := uint(ip(0))
		if sh >= 64 {
			return 0
		}
		return arg(0) >> sh
	case "dshl":
		sh := arg(1)
		if sh >= 64 {
			return 0
		}
		return arg(0) << sh
	case "dshr":
		sh := arg(1)
		if sh >= 64 {
			return 0
		}
		return arg(0) >> sh
	case "cat":
		w1 := 0
		if len(p.Args) > 1 {
			w1 = p.Args[1].Width()
		}
		return arg(0)<<uint(w1) | arg(1)
	case "bits":
		hi, lo := uint(ip(0)), uint(ip(1))
		if hi >= 64 {
			hi = 63
		}
		width := hi - lo + 1
		mask := ^uint64(0)
		if width < 64 {
			mask = (1 << width) - 1
		}
		return (arg(0) >> lo) & mask
	case "head":
		w := p.Args[0].Width()
		n := int(ip(0))
		if n <= 0 || n > w {
			return arg(0)
		}
		return arg(0) >> uint(w-n)
	case "tail":
		w := p.Args[0].Width()
		n := int(ip(0))
		if n <= 0 || n >= w {
			return arg(0)
		}
		return arg(0) & ((1 << uint(w-n)) - 1)
	case "pad", "asUInt", "asSInt", "cvt":
		return arg(0)
	case "andr":
		return b2u(arg(0) == p.Args[0].Mask())
	case "orr":
		return b2u(arg(0) != 0)
	case "xorr":
		v := arg(0)
		var ones uint
		for ; v != 0; v >>= 1 {
			ones += uint(v & 1)
		}
		return uint64(ones & 1)
	case "mux": // lowered elsewhere; defensive
		if arg(0) != 0 {
			return arg(1)
		}
		return arg(2)
	}
	// Unknown op: conservative OR reduction.
	var v uint64
	for i := range p.Args {
		v |= arg(i)
	}
	return v
}

// PrimResultWidth infers the output width of an operation over the given
// operands (capped at 64 bits).
func PrimResultWidth(op string, args []*Signal, intParams []int64) int {
	maxW := 1
	for _, a := range args {
		if a.Width() > maxW {
			maxW = a.Width()
		}
	}
	clamp := func(w int) int {
		if w > 64 {
			return 64
		}
		if w < 1 {
			return 1
		}
		return w
	}
	switch op {
	case "eq", "neq", "lt", "leq", "gt", "geq", "andr", "orr", "xorr":
		return 1
	case "add", "sub":
		return clamp(maxW + 1)
	case "mul":
		w := 0
		for _, a := range args {
			w += a.Width()
		}
		return clamp(w)
	case "cat":
		w := 0
		for _, a := range args {
			w += a.Width()
		}
		return clamp(w)
	case "bits":
		if len(intParams) >= 2 {
			return clamp(int(intParams[0]-intParams[1]) + 1)
		}
	case "shl":
		if len(intParams) >= 1 {
			return clamp(maxW + int(intParams[0]))
		}
	case "head", "tail":
		if len(intParams) >= 1 {
			if op == "head" {
				return clamp(int(intParams[0]))
			}
			return clamp(maxW - int(intParams[0]))
		}
	case "pad":
		if len(intParams) >= 1 && int(intParams[0]) > maxW {
			return clamp(int(intParams[0]))
		}
	}
	return maxW
}

// Prim registers a primitive operation driving out.
func (n *Netlist) Prim(out *Signal, op string, args []*Signal, intParams []int64) *Prim {
	if out.IsConst() {
		panic(fmt.Sprintf("hdl: prim driving constant %s", out.Name()))
	}
	if _, dup := n.primDriver[out]; dup {
		panic(fmt.Sprintf("hdl: signal %s driven by two prims", out.Name()))
	}
	p := &Prim{id: len(n.prims), Op: op, Out: out, Args: args, IntParams: intParams}
	n.prims = append(n.prims, p)
	n.primDriver[out] = p
	// Record fan-in for validity tracing.
	for _, a := range args {
		if !a.IsConst() {
			out.AddSource(a)
		}
	}
	return p
}

// Prims returns all primitive nodes in creation order.
func (n *Netlist) Prims() []*Prim { return n.prims }

// PrimDriver returns the prim driving the given signal, if any.
func (n *Netlist) PrimDriver(s *Signal) (*Prim, bool) {
	p, ok := n.primDriver[s]
	return p, ok
}
