package detect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sonar/internal/uarch"
)

// randomLog builds a commit log with strictly increasing cycles.
func randomLog(rng *rand.Rand, n int) []uarch.CommitRecord {
	log := make([]uarch.CommitRecord, n)
	cyc := int64(1)
	for i := range log {
		cyc += int64(rng.Intn(5))
		log[i] = uarch.CommitRecord{Idx: i, Cycle: cyc}
	}
	return log
}

// Property: a run compared against itself never yields affected
// instructions, for arbitrary logs.
func TestQuickCCDSelfComparisonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		log := randomLog(rng, 1+rng.Intn(30))
		if got := CCDCompare(log, log); len(got) != 0 {
			t.Fatalf("self comparison flagged %v", got)
		}
		if TimingDiff(log, log) {
			t.Fatal("self comparison reported a timing difference")
		}
	}
}

// Property: delaying exactly one commit by d>0 and shifting everything
// after it (in-order commit) flags at most two instructions: the delayed
// one and the first instruction where the queueing effect ends.
func TestQuickCCDSingleDelayLocalized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(20)
		logA := randomLog(rng, n)
		pos := 1 + rng.Intn(n-1)
		d := int64(1 + rng.Intn(9))
		logB := make([]uarch.CommitRecord, n)
		copy(logB, logA)
		// The delayed instruction and all younger ones shift by d.
		for i := pos; i < n; i++ {
			logB[i].Cycle += d
		}
		affected := CCDCompare(logA, logB)
		if len(affected) != 1 {
			t.Fatalf("trial %d: affected = %v, want exactly the delayed instruction", trial, affected)
		}
		if affected[0].Idx != pos {
			t.Fatalf("trial %d: flagged %d, want %d", trial, affected[0].Idx, pos)
		}
		if affected[0].Delta() != d {
			t.Fatalf("trial %d: delta %d, want %d", trial, affected[0].Delta(), d)
		}
	}
}

// Property: CCDCompare is symmetric in the count of affected instructions.
func TestQuickCCDSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a := randomLog(rng, 2+rng.Intn(15))
		b := randomLog(rng, len(a))
		fa := CCDCompare(a, b)
		fb := CCDCompare(b, a)
		if len(fa) != len(fb) {
			t.Fatalf("asymmetric: %d vs %d", len(fa), len(fb))
		}
	}
}

// Property: Affected.Delta is non-negative.
func TestQuickDeltaNonNegative(t *testing.T) {
	f := func(a, b int64) bool {
		return Affected{CCDA: a % 100000, CCDB: b % 100000}.Delta() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
