package detect

import (
	"strings"
	"testing"
)

func finding(delta int64, diffs ...StateDiff) *Finding {
	return &Finding{
		Affected:   []Affected{{Idx: 1, CCDA: 0, CCDB: delta}},
		StateDiffs: diffs,
	}
}

func TestClassifyFamilies(t *testing.T) {
	fs := []*Finding{
		finding(40,
			StateDiff{PointID: 1, Name: "tilelink.d_channel_data", Volatile: true},
			StateDiff{PointID: 2, Name: "lsu.dcache.mshr_req", Volatile: true},
		),
		finding(9,
			StateDiff{PointID: 3, Name: "lsu.dcache.rlb.io_refill_data", Persistent: true},
			StateDiff{PointID: 1, Name: "tilelink.d_channel_data", Volatile: true},
		),
	}
	cs := Classify(fs)
	got := map[string]ChannelClass{}
	for _, c := range cs {
		got[c.Family] = c
	}
	tl, ok := got["TileLink D-Channel"]
	if !ok {
		t.Fatal("TileLink family missing")
	}
	if tl.Points != 1 {
		t.Errorf("TileLink points = %d, want 1 (deduplicated)", tl.Points)
	}
	if tl.MaxDelta != 40 {
		t.Errorf("TileLink max delta = %d, want 40", tl.MaxDelta)
	}
	if tl.Paper != "S1-S4" || tl.Kind != "volatile" {
		t.Errorf("TileLink metadata = %+v", tl)
	}
	if got["MSHR"].Points != 1 {
		t.Error("MSHR family missing")
	}
	rlb, ok := got["Read LineBuffer"]
	if !ok || rlb.Kind != "persistent" {
		t.Errorf("Read LineBuffer = %+v", rlb)
	}
}

func TestClassifyRulePrecedence(t *testing.T) {
	// "lsu.dcache.mshr_req" must classify as MSHR, not generic DCache.
	if i := classify("lsu.dcache.mshr_req"); rules[i].family != "MSHR" {
		t.Errorf("classified as %s", rules[i].family)
	}
	// Generic dcache points fall to the DCache family.
	if i := classify("lsu.dcache.bank3.rdata"); rules[i].family != "DCache" {
		t.Errorf("classified as %s", rules[i].family)
	}
	if i := classify("exe.wb.resp_data"); rules[i].family != "EXE writeback port" {
		t.Errorf("classified as %s", rules[i].family)
	}
	if classify("unrelated.signal") != -1 {
		t.Error("unknown names must not classify")
	}
}

func TestClassifyMixedKind(t *testing.T) {
	fs := []*Finding{
		finding(5, StateDiff{PointID: 9, Name: "exe.div.req_in", Volatile: true}),
		finding(7, StateDiff{PointID: 9, Name: "exe.div.req_in", Persistent: true}),
	}
	cs := Classify(fs)
	if len(cs) != 1 || cs[0].Kind != "mixed" {
		t.Errorf("classes = %+v, want one mixed div family", cs)
	}
}

func TestRenderClasses(t *testing.T) {
	if s := RenderClasses(nil); !strings.Contains(s, "no channel families") {
		t.Error("empty render wrong")
	}
	cs := Classify([]*Finding{finding(3, StateDiff{PointID: 1, Name: "tilelink.io_req_icache_rd_valid", Volatile: true})})
	s := RenderClasses(cs)
	if !strings.Contains(s, "TileLink") || !strings.Contains(s, "S1-S4") {
		t.Errorf("render incomplete:\n%s", s)
	}
}
