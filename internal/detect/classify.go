package detect

import (
	"fmt"
	"sort"
	"strings"
)

// ChannelClass is a family of contention side channels, following the
// paper's Table 3 grouping by shared resource.
type ChannelClass struct {
	// Family is the resource family label ("TileLink", "MSHR", ...).
	Family string
	// Paper lists the Table 3 channel IDs the family covers.
	Paper string
	// Kind is "volatile", "persistent", or "mixed".
	Kind string
	// Points counts the implicated contention points.
	Points int
	// MaxDelta is the largest CCD change attributed to the family.
	MaxDelta int64
}

// classifierRule maps contention-point names to a resource family.
type classifierRule struct {
	family   string
	paper    string
	contains []string
}

// rules are ordered most-specific first.
var rules = []classifierRule{
	{"TileLink D-Channel", "S1-S4", []string{"tilelink.io_req", "tilelink.d_channel"}},
	{"MSHR", "S5", []string{"mshr"}},
	{"Read LineBuffer", "S6", []string{"rlb"}},
	{"Write LineBuffer", "S7", []string{"wlb"}},
	{"EXE writeback port", "S8", []string{"exe.wb"}},
	{"Div unit", "S9", []string{"exe.div"}},
	{"MDU", "S13", []string{"mdu"}},
	{"ICache", "S2, S14", []string{"icache"}},
	{"DCache", "S10-S12", []string{"dcache"}},
	{"Frontend structures", "-", []string{"frontend"}},
	{"ROB structures", "-", []string{"rob."}},
	{"Issue/regfile structures", "-", []string{"exe."}},
	{"LSU structures", "-", []string{"lsu."}},
	{"Bus structures", "-", []string{"tilelink."}},
}

// classify maps a contention-point name to its family rule index, or -1.
func classify(name string) int {
	for i, r := range rules {
		for _, sub := range r.contains {
			if strings.Contains(name, sub) {
				return i
			}
		}
	}
	return -1
}

// Classify aggregates a set of findings into channel families: which shared
// resources the dual-differential comparison implicates, how many points,
// and the largest timing impact. This is the "justification" step of §7.2
// turned into a report.
func Classify(findings []*Finding) []ChannelClass {
	type agg struct {
		points     map[int]bool
		volatile   bool
		persistent bool
		maxDelta   int64
	}
	byRule := make(map[int]*agg)
	for _, f := range findings {
		delta := f.MaxDelta()
		for _, sd := range f.StateDiffs {
			ri := classify(sd.Name)
			if ri < 0 {
				continue
			}
			a := byRule[ri]
			if a == nil {
				a = &agg{points: make(map[int]bool)}
				byRule[ri] = a
			}
			a.points[sd.PointID] = true
			a.volatile = a.volatile || sd.Volatile
			a.persistent = a.persistent || sd.Persistent
			if delta > a.maxDelta {
				a.maxDelta = delta
			}
		}
	}
	idxs := make([]int, 0, len(byRule))
	for i := range byRule { //sonar:nondeterministic-ok keys collected then sorted
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]ChannelClass, 0, len(idxs))
	for _, i := range idxs {
		a := byRule[i]
		kind := "volatile"
		switch {
		case a.volatile && a.persistent:
			kind = "mixed"
		case a.persistent:
			kind = "persistent"
		}
		out = append(out, ChannelClass{
			Family:   rules[i].family,
			Paper:    rules[i].paper,
			Kind:     kind,
			Points:   len(a.points),
			MaxDelta: a.maxDelta,
		})
	}
	return out
}

// RenderClasses formats a channel-family summary.
func RenderClasses(cs []ChannelClass) string {
	if len(cs) == 0 {
		return "no channel families implicated\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-10s %-10s %7s %9s\n", "shared resource", "paper", "kind", "points", "max Δ")
	for _, c := range cs {
		fmt.Fprintf(&b, "%-26s %-10s %-10s %7d %8dc\n", c.Family, c.Paper, c.Kind, c.Points, c.MaxDelta)
	}
	return b.String()
}
