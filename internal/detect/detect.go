// Package detect implements Sonar's dual-differential side-channel
// detection (paper §7): the commit-cycle-difference (CCD) comparison that
// pinpoints instructions genuinely affected by a side channel, and the
// contention-state comparison that attributes the timing difference to
// specific contention points.
package detect

import (
	"fmt"
	"sort"
	"strings"

	"sonar/internal/monitor"
	"sonar/internal/uarch"
)

// Affected is one instruction whose commit-cycle difference changes with
// the secret — a genuine side-channel effect, not an artifact of in-order
// commit (paper §7.1, Figure 5 top).
type Affected struct {
	// Idx is the static program index of the instruction.
	Idx int
	// Pos is the position in the matched commit sequence.
	Pos int
	// CCDA and CCDB are the commit cycle differences (relative to the
	// previous commit) under the two secret values.
	CCDA, CCDB int64
}

// Delta returns the magnitude of the CCD change.
func (a Affected) Delta() int64 {
	d := a.CCDB - a.CCDA
	if d < 0 {
		return -d
	}
	return d
}

// CCDCompare matches the two commit logs positionally over their common
// control-flow prefix and returns the instructions whose CCD differs.
//
// Raw commit-time comparison misreports instructions that are merely
// queued behind a delayed one (the mul behind the div in Figure 5); the CCD
// metric cancels the in-order commit effect, so only genuinely affected
// instructions survive.
func CCDCompare(a, b []uarch.CommitRecord) []Affected {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var out []Affected
	var prevA, prevB int64
	if n > 0 {
		prevA, prevB = a[0].Cycle, b[0].Cycle
	}
	for i := 1; i < n; i++ {
		if a[i].Idx != b[i].Idx {
			break // control flow diverged; later commits are incomparable
		}
		ccdA := a[i].Cycle - prevA
		ccdB := b[i].Cycle - prevB
		prevA, prevB = a[i].Cycle, b[i].Cycle
		if ccdA != ccdB {
			out = append(out, Affected{Idx: a[i].Idx, Pos: i, CCDA: ccdA, CCDB: ccdB})
		}
	}
	return out
}

// TimingDiff reports whether the two commit logs expose any observable
// timing difference at all (before CCD filtering).
func TimingDiff(a, b []uarch.CommitRecord) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(a) != len(b) {
		return true
	}
	for i := 1; i < n; i++ {
		if a[i].Idx != b[i].Idx {
			return true
		}
		if a[i].Cycle-a[0].Cycle != b[i].Cycle-b[0].Cycle {
			return true
		}
	}
	return false
}

// StateDiff is one contention point whose contention-critical states
// diverge under the two secret values (paper §7.2, Figure 5 bottom).
type StateDiff struct {
	// PointID identifies the contention point.
	PointID int
	// Name is the contention point output signal name.
	Name string
	// Component is the owning top-level component.
	Component string
	// Reason summarizes which state diverged.
	Reason string
	// IntvlA and IntvlB are the minimum distinct-request intervals under
	// the two secrets (monitor.NoInterval when unobserved).
	IntvlA, IntvlB int64
	// Volatile marks a simultaneous-arrival (interval 0) contention in
	// either run; Persistent marks a same-path revisit.
	Volatile   bool
	Persistent bool // same-path revisit contention in either run
}

// StateCompare performs the contention-state differential between two
// instrumented executions, returning the points whose states deviate,
// sorted by point ID so the result is invariant under monitor placement
// order (both snapshots must share one placement).
func StateCompare(a, b *monitor.Snapshot) []StateDiff {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	var out []StateDiff
	for i := 0; i < n; i++ {
		pa, pb := &a.Points[i], &b.Points[i]
		var reasons []string
		if pa.Digest != pb.Digest {
			reasons = append(reasons, "request stream")
		}
		if pa.EventCount != pb.EventCount {
			reasons = append(reasons, fmt.Sprintf("event count %d vs %d", pa.EventCount, pb.EventCount))
		}
		if pa.MinIntvlDistinct != pb.MinIntvlDistinct {
			reasons = append(reasons, "reqsIntvl")
		}
		if pa.PersistentCandidate != pb.PersistentCandidate {
			reasons = append(reasons, "same-path revisit")
		}
		if len(reasons) == 0 {
			continue
		}
		out = append(out, StateDiff{
			PointID:    pa.Point.ID,
			Name:       pa.Point.Out.Name(),
			Component:  pa.Point.Component,
			Reason:     strings.Join(reasons, ", "),
			IntvlA:     pa.MinIntvlDistinct,
			IntvlB:     pb.MinIntvlDistinct,
			Volatile:   pa.VolatileContention || pb.VolatileContention,
			Persistent: pa.PersistentCandidate || pb.PersistentCandidate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PointID < out[j].PointID })
	return out
}

// Finding is a detected contention side channel: instructions genuinely
// affected by secret-dependent timing plus the contention points whose
// state differences explain them. Together the two reports "enable rapid
// identification and justification of contention side channels" (§7.2).
type Finding struct {
	// Affected are the CCD-filtered instructions.
	Affected []Affected
	// StateDiffs are the candidate root-cause contention points.
	StateDiffs []StateDiff
}

// MaxDelta returns the largest CCD change across affected instructions —
// the "Time Difference" column of paper Table 3.
func (f *Finding) MaxDelta() int64 {
	var max int64
	for _, a := range f.Affected {
		if d := a.Delta(); d > max {
			max = d
		}
	}
	return max
}

// Components returns the distinct components implicated by state diffs.
func (f *Finding) Components() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range f.StateDiffs {
		if !seen[s.Component] {
			seen[s.Component] = true
			out = append(out, s.Component)
		}
	}
	return out
}

// Analyze runs the full dual-differential comparison on two executions'
// commit logs and snapshots. It returns nil when no side channel is
// exposed: either no timing difference, or timing differences whose CCD
// analysis shows no genuinely affected instruction.
func Analyze(logA, logB []uarch.CommitRecord, snapA, snapB *monitor.Snapshot) *Finding {
	affected := CCDCompare(logA, logB)
	if len(affected) == 0 {
		return nil
	}
	f := &Finding{Affected: affected}
	if snapA != nil && snapB != nil {
		f.StateDiffs = StateCompare(snapA, snapB)
	}
	return f
}

// String renders a short human-readable report.
func (f *Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "side channel: %d instruction(s) affected, max CCD delta %d cycles\n",
		len(f.Affected), f.MaxDelta())
	for _, a := range f.Affected {
		fmt.Fprintf(&b, "  instr %d: CCD %d -> %d\n", a.Idx, a.CCDA, a.CCDB)
	}
	for _, s := range f.StateDiffs {
		fmt.Fprintf(&b, "  point %d (%s): %s\n", s.PointID, s.Name, s.Reason)
	}
	return b.String()
}
