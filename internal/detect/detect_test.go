package detect

import (
	"testing"

	"sonar/internal/isa"
	"sonar/internal/uarch"
)

func rec(idx int, cycle int64) uarch.CommitRecord {
	return uarch.CommitRecord{Idx: idx, Cycle: cycle, Instr: isa.NOP()}
}

// Figure 5 of the paper: the div is genuinely delayed by one cycle under
// secret 1; the mul commits later too, but only because of in-order commit.
// CCD must flag the div and filter out the mul.
func TestCCDFigure5(t *testing.T) {
	logA := []uarch.CommitRecord{rec(0, 10), rec(1, 20), rec(2, 21)} // secret 0
	logB := []uarch.CommitRecord{rec(0, 10), rec(1, 21), rec(2, 22)} // secret 1: div +1
	affected := CCDCompare(logA, logB)
	if len(affected) != 1 {
		t.Fatalf("affected = %v, want exactly the div", affected)
	}
	if affected[0].Idx != 1 {
		t.Errorf("affected idx = %d, want 1 (the div)", affected[0].Idx)
	}
	if affected[0].CCDA != 10 || affected[0].CCDB != 11 {
		t.Errorf("CCD = %d -> %d, want 10 -> 11", affected[0].CCDA, affected[0].CCDB)
	}
	if affected[0].Delta() != 1 {
		t.Errorf("Delta = %d, want 1", affected[0].Delta())
	}
	if !TimingDiff(logA, logB) {
		t.Error("TimingDiff must hold")
	}
}

func TestCCDIdenticalRuns(t *testing.T) {
	log := []uarch.CommitRecord{rec(0, 5), rec(1, 9), rec(2, 30)}
	if got := CCDCompare(log, log); len(got) != 0 {
		t.Errorf("identical runs affected = %v", got)
	}
	if TimingDiff(log, log) {
		t.Error("identical runs must not report a timing difference")
	}
}

// A uniform shift of all commit times (e.g. different start alignment)
// changes no CCD except at the shift point.
func TestCCDUniformShiftOnlyFlagsOrigin(t *testing.T) {
	logA := []uarch.CommitRecord{rec(0, 10), rec(1, 12), rec(2, 14)}
	logB := []uarch.CommitRecord{rec(0, 10), rec(1, 17), rec(2, 19)}
	affected := CCDCompare(logA, logB)
	if len(affected) != 1 || affected[0].Idx != 1 {
		t.Errorf("affected = %v, want only instruction 1", affected)
	}
}

func TestCCDStopsAtControlFlowDivergence(t *testing.T) {
	logA := []uarch.CommitRecord{rec(0, 1), rec(1, 2), rec(5, 3), rec(6, 9)}
	logB := []uarch.CommitRecord{rec(0, 1), rec(1, 2), rec(2, 3), rec(6, 4)}
	affected := CCDCompare(logA, logB)
	for _, a := range affected {
		if a.Pos >= 2 {
			t.Errorf("comparison continued past divergence: %v", a)
		}
	}
	if !TimingDiff(logA, logB) {
		t.Error("diverged control flow is a timing difference")
	}
}

func TestCCDDifferentLengths(t *testing.T) {
	logA := []uarch.CommitRecord{rec(0, 1), rec(1, 2)}
	logB := []uarch.CommitRecord{rec(0, 1), rec(1, 2), rec(2, 3)}
	if got := CCDCompare(logA, logB); len(got) != 0 {
		t.Errorf("prefix-equal logs affected = %v", got)
	}
	if !TimingDiff(logA, logB) {
		t.Error("different lengths must count as a timing difference")
	}
}

func TestAnalyzeNilWhenClean(t *testing.T) {
	log := []uarch.CommitRecord{rec(0, 5), rec(1, 9)}
	if f := Analyze(log, log, nil, nil); f != nil {
		t.Errorf("Analyze of identical runs = %v, want nil", f)
	}
}

func TestFindingMaxDeltaAndString(t *testing.T) {
	f := &Finding{Affected: []Affected{
		{Idx: 3, CCDA: 10, CCDB: 14},
		{Idx: 5, CCDA: 7, CCDB: 5},
	}}
	if f.MaxDelta() != 4 {
		t.Errorf("MaxDelta = %d, want 4", f.MaxDelta())
	}
	if s := f.String(); len(s) == 0 {
		t.Error("empty report")
	}
	f.StateDiffs = []StateDiff{{Component: "lsu"}, {Component: "lsu"}, {Component: "exe"}}
	comps := f.Components()
	if len(comps) != 2 {
		t.Errorf("Components = %v", comps)
	}
}
