package monitor

import (
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// rig is a two-request contention point with direct prefix valids.
type rig struct {
	net            *hdl.Netlist
	aValid, bValid *hdl.Signal
	aData, bData   *hdl.Signal
	mon            *Monitor
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	n := hdl.NewNetlist("R")
	m := n.Module("dut")
	r := &rig{net: n}
	r.aValid = m.Wire("io_a_valid", 1)
	r.aData = m.Wire("io_a_bits", 32)
	r.bValid = m.Wire("io_b_valid", 1)
	r.bData = m.Wire("io_b_bits", 32)
	sel := m.Wire("sel", 1)
	m.Mux("out", sel, r.aData, r.bData)
	a := trace.Analyze(n)
	if len(a.Monitored()) != 1 {
		t.Fatalf("monitored points = %d, want 1", len(a.Monitored()))
	}
	r.mon = New(a, cfg)
	return r
}

// pulse raises and lowers a valid within the current cycle.
func pulse(v *hdl.Signal) { v.Set(1); v.Set(0) }

func TestReqsIntvlDistinct(t *testing.T) {
	r := newRig(t, Config{})
	r.mon.SetWindow(true)
	r.aData.Set(100)
	pulse(r.aValid) // cycle 0
	r.net.Step()
	r.net.Step()
	r.net.Step()
	r.bData.Set(200)
	pulse(r.bValid) // cycle 3
	s := r.mon.Snapshot()
	p := s.Points[0]
	if p.MinIntvlDistinct != 3 {
		t.Errorf("MinIntvlDistinct = %d, want 3", p.MinIntvlDistinct)
	}
	if p.VolatileContention {
		t.Error("interval 3 must not count as volatile contention")
	}
	if p.EventCount != 2 {
		t.Errorf("EventCount = %d, want 2", p.EventCount)
	}
}

func TestVolatileContentionAtZeroInterval(t *testing.T) {
	r := newRig(t, Config{})
	r.mon.SetWindow(true)
	pulse(r.aValid)
	pulse(r.bValid) // same cycle
	s := r.mon.Snapshot()
	p := s.Points[0]
	if p.MinIntvlDistinct != 0 {
		t.Errorf("MinIntvlDistinct = %d, want 0", p.MinIntvlDistinct)
	}
	if !p.VolatileContention {
		t.Error("simultaneous arrival must report volatile contention")
	}
	if got := s.Triggered(); len(got) != 1 {
		t.Errorf("Triggered = %v, want one point", got)
	}
}

func TestRisingEdgeOnly(t *testing.T) {
	r := newRig(t, Config{})
	r.mon.SetWindow(true)
	r.aValid.Set(1) // rise: one event
	r.net.Step()
	r.aValid.Set(1) // no change
	r.net.Step()
	r.aValid.Set(0) // fall: no event
	r.net.Step()
	s := r.mon.Snapshot()
	if s.Points[0].EventCount != 1 {
		t.Errorf("EventCount = %d, want 1 (rising edges only)", s.Points[0].EventCount)
	}
}

func TestWindowGatesEvents(t *testing.T) {
	r := newRig(t, Config{})
	pulse(r.aValid) // window closed: dropped
	r.net.Step()
	r.mon.SetWindow(true)
	pulse(r.bValid) // recorded
	r.net.Step()
	r.mon.SetWindow(false)
	pulse(r.aValid) // dropped
	s := r.mon.Snapshot()
	p := s.Points[0]
	if p.EventCount != 1 {
		t.Errorf("EventCount = %d, want 1 (window-gated)", p.EventCount)
	}
	if p.MinIntvlDistinct != NoInterval {
		t.Errorf("MinIntvlDistinct = %d, want NoInterval", p.MinIntvlDistinct)
	}
}

func TestSamePathIntervalAndSimilarity(t *testing.T) {
	r := newRig(t, Config{SimilarityMask: ^uint64(63)}) // cacheline granularity
	r.mon.SetWindow(true)
	r.aData.Set(0x1000)
	pulse(r.aValid) // cycle 0
	for i := 0; i < 5; i++ {
		r.net.Step()
	}
	r.aData.Set(0x1020) // same 64-byte line
	pulse(r.aValid)     // cycle 5
	s := r.mon.Snapshot()
	p := s.Points[0]
	if p.MinIntvlSame != 5 {
		t.Errorf("MinIntvlSame = %d, want 5", p.MinIntvlSame)
	}
	if !p.PersistentCandidate {
		t.Error("same-line revisit must set PersistentCandidate")
	}
	if p.MinIntvlDistinct != NoInterval {
		t.Errorf("MinIntvlDistinct = %d, want NoInterval (single path)", p.MinIntvlDistinct)
	}
}

func TestDissimilarDataIsNotPersistentCandidate(t *testing.T) {
	r := newRig(t, Config{SimilarityMask: ^uint64(63)})
	r.mon.SetWindow(true)
	r.aData.Set(0x1000)
	pulse(r.aValid)
	r.net.Step()
	r.aData.Set(0x2000) // different line
	pulse(r.aValid)
	s := r.mon.Snapshot()
	if s.Points[0].PersistentCandidate {
		t.Error("different-line revisit must not set PersistentCandidate")
	}
}

func TestDigestDiffersWithData(t *testing.T) {
	run := func(data uint64) uint64 {
		r := newRig(t, Config{})
		r.mon.SetWindow(true)
		r.aData.Set(data)
		pulse(r.aValid)
		return r.mon.Snapshot().Points[0].Digest
	}
	if run(1) == run(2) {
		t.Error("digests equal for different request data")
	}
	if run(7) != run(7) {
		t.Error("digests differ for identical behaviour")
	}
}

func TestResetClearsState(t *testing.T) {
	r := newRig(t, Config{})
	r.mon.SetWindow(true)
	pulse(r.aValid)
	pulse(r.bValid)
	r.mon.Reset()
	if r.mon.WindowOpen() {
		t.Error("Reset must close the window")
	}
	s := r.mon.Snapshot()
	p := s.Points[0]
	if p.EventCount != 0 || p.MinIntvlDistinct != NoInterval {
		t.Errorf("state survived Reset: count=%d intvl=%d", p.EventCount, p.MinIntvlDistinct)
	}
	// Instrumentation must still be live after Reset.
	r.mon.SetWindow(true)
	pulse(r.aValid)
	if got := r.mon.Snapshot().Points[0].EventCount; got != 1 {
		t.Errorf("EventCount after Reset+event = %d, want 1", got)
	}
}

func TestMinIntervalsFeedbackMap(t *testing.T) {
	r := newRig(t, Config{})
	r.mon.SetWindow(true)
	pulse(r.aValid)
	r.net.Step()
	r.net.Step()
	pulse(r.bValid)
	mi := r.mon.Snapshot().MinIntervals()
	if len(mi) != 1 {
		t.Fatalf("MinIntervals has %d entries, want 1", len(mi))
	}
	for _, v := range mi {
		if v != 2 {
			t.Errorf("feedback interval = %d, want 2", v)
		}
	}
}

func TestDerivedValidityConjunction(t *testing.T) {
	// Request whose validity is the AND of two source valids: an event
	// fires only when both are high.
	n := hdl.NewNetlist("R")
	m := n.Module("dut")
	av := m.Wire("io_a_valid", 1)
	ad := m.Wire("io_a_bits", 8)
	bv := m.Wire("io_b_valid", 1)
	bd := m.Wire("io_b_bits", 8)
	sum := m.Wire("sum", 8)
	sum.AddSource(ad)
	sum.AddSource(bd)
	other := m.Wire("io_c_bits", 8)
	m.Wire("io_c_valid", 1)
	sel := m.Wire("sel", 1)
	m.Mux("out", sel, sum, other)

	a := trace.Analyze(n)
	mon := New(a, Config{})
	mon.SetWindow(true)
	av.Set(1) // only one of two: no event
	n.Step()
	if mon.Snapshot().Points[0].EventCount != 0 {
		t.Fatal("event fired with partial conjunction")
	}
	bv.Set(1) // both high: rising edge of the conjunction
	if mon.Snapshot().Points[0].EventCount != 1 {
		t.Error("conjunction rise did not fire an event")
	}
	av.Set(0)
	bv.Set(0)
	n.Step()
	av.Set(1)
	bv.Set(1) // second conjunction rise
	if got := mon.Snapshot().Points[0].EventCount; got != 2 {
		t.Errorf("EventCount = %d, want 2", got)
	}
}

func TestEventLogCapBounded(t *testing.T) {
	r := newRig(t, Config{})
	r.mon.SetWindow(true)
	for i := 0; i < maxEventsPerPoint*3; i++ {
		pulse(r.aValid)
		r.net.Step()
	}
	p := r.mon.Snapshot().Points[0]
	if len(p.Events) != maxEventsPerPoint {
		t.Errorf("len(Events) = %d, want cap %d", len(p.Events), maxEventsPerPoint)
	}
	if p.EventCount != maxEventsPerPoint*3 {
		t.Errorf("EventCount = %d, want %d", p.EventCount, maxEventsPerPoint*3)
	}
}

func TestStatementsAccounting(t *testing.T) {
	r := newRig(t, Config{})
	// 2 watched valids + (2 + 2 requests) fixed statements.
	if got := r.mon.Statements(); got != 6 {
		t.Errorf("Statements = %d, want 6", got)
	}
	if r.mon.NumPoints() != 1 {
		t.Errorf("NumPoints = %d, want 1", r.mon.NumPoints())
	}
}
