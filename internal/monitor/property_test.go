package monitor

import (
	"math/rand"
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// randomEventRig builds a 3-request point and replays a random valid-pulse
// schedule, returning the snapshot plus the raw schedule for reference
// checking.
type schedule struct {
	// events[i] = (cycle, reqIdx)
	cycles []int64
	reqs   []int
}

func replay(t *testing.T, sched schedule, data []uint64) *Snapshot {
	t.Helper()
	n := hdl.NewNetlist("R")
	m := n.Module("dut")
	valids := make([]*hdl.Signal, 3)
	datas := make([]*hdl.Signal, 3)
	for i := 0; i < 3; i++ {
		valids[i] = m.Wire(portName(i)+"_valid", 1)
		datas[i] = m.Wire(portName(i)+"_bits", 32)
	}
	sels := []*hdl.Signal{m.Wire("s0", 1), m.Wire("s1", 1)}
	m.MuxTree("out", sels, datas)
	a := trace.Analyze(n)
	mon := New(a, Config{})
	mon.SetWindow(true)
	cur := int64(0)
	for i := range sched.cycles {
		for cur < sched.cycles[i] {
			n.Step()
			cur++
		}
		datas[sched.reqs[i]].Set(data[i%len(data)])
		valids[sched.reqs[i]].Set(1)
		valids[sched.reqs[i]].Set(0)
	}
	return mon.Snapshot()
}

func portName(i int) string {
	return "io_req_" + string(rune('0'+i))
}

// referenceMinDistinct recomputes the minimum distinct-request interval by
// brute force over all event pairs.
func referenceMinDistinct(sched schedule) int64 {
	best := NoInterval
	for i := range sched.cycles {
		for j := range sched.cycles {
			if i == j || sched.reqs[i] == sched.reqs[j] {
				continue
			}
			d := sched.cycles[i] - sched.cycles[j]
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
		}
	}
	return best
}

// Property: the monitor's incrementally tracked minimum distinct-request
// interval equals the brute-force minimum over all pairs, for random
// schedules.
func TestQuickMinIntervalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		nEvents := 1 + rng.Intn(10)
		sched := schedule{}
		cur := int64(0)
		lastPerReq := map[int]int64{}
		for i := 0; i < nEvents; i++ {
			cur += int64(rng.Intn(4))
			req := rng.Intn(3)
			// A valid signal can only rise once per cycle per request.
			if last, ok := lastPerReq[req]; ok && last == cur {
				cur++
			}
			lastPerReq[req] = cur
			sched.cycles = append(sched.cycles, cur)
			sched.reqs = append(sched.reqs, req)
		}
		snap := replay(t, sched, []uint64{1, 2, 3})
		got := snap.Points[0].MinIntvlDistinct
		want := referenceMinDistinct(sched)
		if got != want {
			t.Fatalf("trial %d: monitor %d != reference %d (sched %+v)", trial, got, want, sched)
		}
		if (got == 0) != snap.Points[0].VolatileContention {
			t.Fatalf("trial %d: VolatileContention inconsistent with interval %d", trial, got)
		}
		if snap.Points[0].EventCount != nEvents {
			t.Fatalf("trial %d: events %d != %d", trial, snap.Points[0].EventCount, nEvents)
		}
	}
}

// Property: digests are order- and value-sensitive but deterministic.
func TestQuickDigestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		sched := schedule{}
		var cur int64
		for i := 0; i < 5; i++ {
			cur += 1 + int64(rng.Intn(3))
			sched.cycles = append(sched.cycles, cur)
			sched.reqs = append(sched.reqs, rng.Intn(3))
		}
		d1 := replay(t, sched, []uint64{4, 5}).Points[0].Digest
		d2 := replay(t, sched, []uint64{4, 5}).Points[0].Digest
		if d1 != d2 {
			t.Fatalf("trial %d: digest not deterministic", trial)
		}
		d3 := replay(t, sched, []uint64{4, 6}).Points[0].Digest
		if d1 == d3 {
			t.Fatalf("trial %d: digest ignored data change", trial)
		}
	}
}
