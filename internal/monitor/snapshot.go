package monitor

import (
	"math"
	"sort"

	"sonar/internal/trace"
)

// PointSnapshot is the immutable per-point record of one testcase execution.
type PointSnapshot struct {
	// Point is the contention point this snapshot describes.
	Point *trace.Point
	// MinIntvlDistinct is the smallest observed cycle interval between
	// valid events of two distinct requests; NoInterval if fewer than two
	// distinct requests arrived.
	MinIntvlDistinct int64
	// MinIntvlSame is the smallest interval between consecutive valid
	// events of the same request; NoInterval if no request arrived twice.
	MinIntvlSame int64
	// Events is the (capped) event log inside the monitoring window.
	Events []Event
	// EventCount is the total number of events, including beyond the cap.
	EventCount int
	// Digest summarizes the full ordered event stream (request indices and
	// data values); differing digests under differing secrets indicate the
	// contention states diverged (paper §7.2).
	Digest uint64
	// VolatileContention reports simultaneous distinct-request arrival
	// (reqsIntvl of zero).
	VolatileContention bool
	// PersistentCandidate reports a same-path revisit with similar data —
	// the persistent-contention precondition (paper §6.2.2).
	PersistentCandidate bool
}

// NoInterval is the MinIntvl value when no qualifying pair was observed.
const NoInterval int64 = math.MaxInt64

// Snapshot is the full record of one instrumented execution.
type Snapshot struct {
	Points []PointSnapshot // per-point state, indexed by monitor order
}

// Snapshot captures the current collected state of all points. The result
// is freshly allocated and safe to retain; hot paths that recycle snapshots
// should use SnapshotInto instead.
func (m *Monitor) Snapshot() *Snapshot {
	s := new(Snapshot)
	m.SnapshotInto(s)
	return s
}

// SnapshotInto captures the current collected state of all points into s,
// reusing s.Points and the per-point Events buffers. After the first call on
// a given arena the capture allocates nothing, which is what keeps the
// steady-state Execute path heap-quiet. The previous contents of s are
// overwritten; callers own the aliasing (a recycled snapshot must no longer
// be read by anyone else).
//
//sonar:alloc-free
func (m *Monitor) SnapshotInto(s *Snapshot) {
	snapshotInto(s, m.states)
}

// snapshotInto captures the state of one ordered point-state list into s,
// reusing its buffers; it backs both Monitor.SnapshotInto and the per-lane
// captures of LaneBank.
//
//sonar:alloc-free
func snapshotInto(s *Snapshot, states []*pointState) {
	if cap(s.Points) < len(states) {
		s.Points = make([]PointSnapshot, len(states))
		// One contiguous event slab for the arena: source logs are capped at
		// maxEventsPerPoint, so the copy below never outgrows its buffer and
		// the arena allocates nothing after this first sizing — per-group
		// event-count jitter otherwise regrows buffers for the whole campaign.
		slab := make([]Event, len(states)*maxEventsPerPoint)
		for i := range s.Points {
			s.Points[i].Events = slab[i*maxEventsPerPoint : i*maxEventsPerPoint : (i+1)*maxEventsPerPoint]
		}
	}
	s.Points = s.Points[:len(states)]
	for i, st := range states {
		events := append(s.Points[i].Events[:0], st.events...)
		s.Points[i] = PointSnapshot{
			Point:               st.point,
			MinIntvlDistinct:    st.minIntvlDistinct,
			MinIntvlSame:        st.minIntvlSame,
			Events:              events,
			EventCount:          st.eventCount,
			Digest:              st.hash,
			VolatileContention:  st.minIntvlDistinct == 0,
			PersistentCandidate: st.samePathHit,
		}
	}
}

// Triggered returns the IDs of points where any contention was triggered:
// a volatile simultaneous arrival or a persistent same-path revisit. The
// IDs are sorted ascending regardless of monitor placement order, so the
// result (and every event stream built from it) is invariant under
// audit-ranked placement permutations.
func (s *Snapshot) Triggered() []int {
	var ids []int
	for i := range s.Points {
		p := &s.Points[i]
		if p.VolatileContention || p.PersistentCandidate {
			ids = append(ids, p.Point.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

// MinIntervals returns the distinct-request reqsIntvl per point ID — the
// fuzzer's feedback signal (paper §6.2.1).
func (s *Snapshot) MinIntervals() map[int]int64 {
	m := make(map[int]int64, len(s.Points))
	for i := range s.Points {
		p := &s.Points[i]
		if p.MinIntvlDistinct != NoInterval {
			m[p.Point.ID] = p.MinIntvlDistinct
		}
	}
	return m
}

// MergeMinIntervals takes the per-point minimum distinct-request interval
// across two snapshots — the merged reqsIntvl feedback of one
// dual-execution (the same testcase run under both secrets). Both the
// fuzzer's corpus retention rule and the observability layer's per-point
// best-interval metrics consume this view.
func MergeMinIntervals(a, b *Snapshot) map[int]int64 {
	m := a.MinIntervals()
	for id, v := range b.MinIntervals() { //sonar:nondeterministic-ok min-fold is order-insensitive
		if old, ok := m[id]; !ok || v < old {
			m[id] = v
		}
	}
	return m
}

// SameIntervals returns the consecutive same-path reqsIntvl per point ID —
// the persistent-contention approach metric (paper §6.2.2). A point appears
// only if some request path was observed at least twice; triggering is
// reached when the data fields also match (PersistentCandidate).
func (s *Snapshot) SameIntervals() map[int]int64 {
	m := make(map[int]int64)
	for i := range s.Points {
		p := &s.Points[i]
		if p.MinIntvlSame == NoInterval {
			continue
		}
		v := p.MinIntvlSame
		if p.PersistentCandidate {
			v = 0 // same storage unit revisited: persistent contention
		}
		m[p.Point.ID] = v
	}
	return m
}
