// Package monitor implements Sonar's runtime instrumentation: collection of
// contention-critical microarchitectural states at monitorable contention
// points (paper §5.1 and §6.1).
//
// For every contention point that survives the §5.2 risk filter, the monitor
// watches each request's validity conjunction. On a rising edge inside the
// monitoring window it records a request event and updates the two
// reqsIntvl statistics the fuzzer feeds on:
//
//   - the minimum cycle interval between valid events of two *distinct*
//     requests (0 means simultaneous arrival — a volatile contention);
//   - the minimum interval between two *consecutive* valid events of the
//     same request path (a persistent-contention precondition when the data
//     fields map to the same storage unit).
//
// The monitoring window corresponds to the clock period during which
// secret-dependent instructions are in flight (first one entering the ROB to
// last one committing); only events inside it can belong to secret-dependent
// contention (§6.1).
package monitor

import (
	"math"

	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// maxEventsPerPoint caps the per-point event log so long runs stay bounded;
// the full event stream still contributes to the state digest hash.
const maxEventsPerPoint = 64

// Event is one valid-request arrival at a contention point.
type Event struct {
	// Cycle is the absolute cycle of the rising valid edge.
	Cycle int64
	// Req is the request index within the point (select-priority order).
	Req int
	// Data is the request data field value at arrival.
	Data uint64
}

// pointState is the mutable per-point instrumentation state.
type pointState struct {
	point *trace.Point
	// constPeer marks a point with at least one constantly-valid request
	// (no validity indication): any valid arrival coincides with it, so the
	// distinct-request interval is 0 the moment any request fires. This is
	// the paper's §8.3.2 observation ① — contentions dominated by a single
	// valid signal trigger at the outset of testing.
	constPeer bool
	// trueCnt counts the currently-true valid signals per request; the
	// conjunction holds exactly when trueCnt[ri] == need[ri]. Watch hooks
	// maintain the count incrementally from old/new transitions, so a value
	// change costs O(1) instead of re-reading every valid in the conjunction.
	trueCnt []int32
	// need is the conjunction size per request (0 for requests without
	// validity indication).
	need []int32
	// lastCycle is the last valid-arrival cycle per request (-1 = never).
	lastCycle []int64
	// lastData is the data value at the last arrival per request.
	lastData []uint64
	// lastAnyCycle/lastAnyReq track the most recent arrival of any request.
	lastAnyCycle int64
	lastAnyReq   int

	minIntvlDistinct int64
	minIntvlSame     int64
	events           []Event
	eventCount       int
	hash             uint64
	samePathHit      bool // same request twice with similar data
}

// Config tunes the monitor.
type Config struct {
	// SimilarityMask is ANDed over data fields when deciding whether two
	// consecutive same-path requests target the same storage unit (e.g. a
	// cacheline mask). Zero means exact match.
	SimilarityMask uint64
	// IgnoreFilter instruments every traced point, including the ones the
	// §5.2 risk filter would drop — the no-filter ablation. Points without
	// any valid-carrying request still never produce events (there is
	// nothing to watch), but their monitors are carried.
	IgnoreFilter bool
	// Placement, when non-nil, is the exact ordered point list to
	// instrument, overriding the default Monitored()/IgnoreFilter
	// selection. The fuzzing engines pass the flow audit's rank order here;
	// placement only reorders monitor-internal state, never the
	// ID-keyed campaign outputs (Snapshot.Triggered and the interval maps
	// are placement-invariant).
	Placement []*trace.Point
}

// placementPoints resolves the ordered point list a monitor instruments
// under this config.
func (cfg *Config) placementPoints(a *trace.Analysis) []*trace.Point {
	if cfg.Placement != nil {
		return cfg.Placement
	}
	if cfg.IgnoreFilter {
		return a.Points
	}
	return a.Monitored()
}

// Monitor instruments a set of contention points over a netlist.
type Monitor struct {
	net    *hdl.Netlist
	cfg    Config
	states []*pointState
	window bool
	// statements approximates the amount of monitoring logic inserted, the
	// paper's "#New verilog" column in Table 2.
	statements int
}

// New attaches instrumentation for every monitorable point in the analysis.
// Watch hooks are installed on the request validity signals; they are cheap
// when values do not change.
func New(a *trace.Analysis, cfg Config) *Monitor {
	if cfg.SimilarityMask == 0 {
		cfg.SimilarityMask = ^uint64(0)
	}
	m := &Monitor{net: a.Netlist, cfg: cfg}
	points := cfg.placementPoints(a)
	m.states = newPointStates(points)
	for pi, p := range points {
		st := m.states[pi]
		for ri := range p.Requests {
			req := &p.Requests[ri]
			if !req.HasValid() {
				continue
			}
			ri := ri
			hook := func(_ *hdl.Signal, old, new uint64, cycle int64) {
				m.onValidDelta(st, ri, old, new, cycle)
			}
			for _, v := range req.Valids {
				v.Watch(hook)
				m.statements++ // one sampling statement per watched signal
			}
		}
		st.recount()
		// Interval registers and comparators per point: the fixed part of
		// the inserted monitoring logic.
		m.statements += 2 + len(p.Requests)
	}
	return m
}

// newPointStates builds the instrumentation states for an ordered point
// list, reset and ready for hooks (the true-valid recount is the caller's
// job: scalar and lane monitors read values from different planes). All
// per-point bookkeeping — the states themselves, the per-request counters,
// and the capped event logs — is carved from a handful of contiguous slabs,
// so construction costs O(1) allocations instead of O(points): a LaneBank
// builds hdl.Lanes independent copies of every state, and per-point
// allocation there dominated whole-campaign allocation counts. record never
// outgrows its event slice (maxEventsPerPoint cap), so the slab also keeps
// the monitoring hot path allocation-free from the first execution.
func newPointStates(points []*trace.Point) []*pointState {
	reqs := 0
	for _, p := range points {
		reqs += len(p.Requests)
	}
	var (
		structs = make([]pointState, len(points))
		states  = make([]*pointState, len(points))
		i32     = make([]int32, 2*reqs)
		cycles  = make([]int64, reqs)
		data    = make([]uint64, reqs)
		events  = make([]Event, len(points)*maxEventsPerPoint)
	)
	off := 0
	for i, p := range points {
		n := len(p.Requests)
		st := &structs[i]
		st.point = p
		st.trueCnt = i32[off : off+n : off+n]
		st.need = i32[reqs+off : reqs+off+n : reqs+off+n]
		st.lastCycle = cycles[off : off+n : off+n]
		st.lastData = data[off : off+n : off+n]
		st.events = events[i*maxEventsPerPoint : i*maxEventsPerPoint : (i+1)*maxEventsPerPoint]
		for ri := range p.Requests {
			req := &p.Requests[ri]
			if !req.HasValid() && !req.Data.IsConst() {
				st.constPeer = true
			}
			if req.HasValid() {
				st.need[ri] = int32(len(req.Valids))
			}
		}
		st.reset()
		states[i] = st
		off += n
	}
	return states
}

// recount re-derives the per-request true-valid counts from the current
// signal values, re-anchoring the incremental bookkeeping. Called once per
// Reset; steady-state updates flow through onValidDelta.
func (st *pointState) recount() {
	for ri := range st.point.Requests {
		req := &st.point.Requests[ri]
		if !req.HasValid() {
			continue
		}
		cnt := int32(0)
		for _, v := range req.Valids {
			if v.Bool() {
				cnt++
			}
		}
		st.trueCnt[ri] = cnt
	}
}

func (st *pointState) reset() {
	for i := range st.lastCycle {
		st.lastCycle[i] = -1
		st.lastData[i] = 0
	}
	st.lastAnyCycle = -1
	st.lastAnyReq = -1
	st.minIntvlDistinct = math.MaxInt64
	st.minIntvlSame = math.MaxInt64
	st.events = st.events[:0]
	st.eventCount = 0
	st.hash = 1469598103934665603 // FNV-1a offset basis
	st.samePathHit = false
}

// NumPoints returns the number of instrumented contention points.
func (m *Monitor) NumPoints() int { return len(m.states) }

// Statements returns the approximate number of inserted monitoring
// statements (Table 2's generated-code proxy).
func (m *Monitor) Statements() int { return m.statements }

// SetWindow opens or closes the monitoring window. Events arriving while
// the window is closed are ignored (paper §6.1).
func (m *Monitor) SetWindow(open bool) { m.window = open }

// WindowOpen reports whether the monitoring window is currently open.
func (m *Monitor) WindowOpen() bool { return m.window }

// Reset clears all collected state, keeping the instrumentation attached.
// Call it between testcase executions.
func (m *Monitor) Reset() {
	m.window = false
	for _, st := range m.states {
		st.reset()
		st.recount()
	}
}

// onValidDelta folds one valid-signal value change into the request's
// true-valid count, recording an event on a completed conjunction inside the
// window.
func (m *Monitor) onValidDelta(st *pointState, ri int, old, new uint64, cycle int64) {
	if !st.applyValidDelta(ri, old, new) {
		return
	}
	if !m.window {
		return
	}
	st.record(&m.cfg, ri, cycle, st.point.Requests[ri].Data.Value())
}

// applyValidDelta folds one valid-signal value change into the request's
// true-valid count and reports whether the validity conjunction just
// completed. The conjunction rises exactly when the count reaches the
// conjunction size via an increment: a nonzero→nonzero change leaves the
// truth (and the count) untouched, so this reproduces re-evaluating the full
// conjunction at O(1) cost. Both the scalar Monitor and the LaneBank fold
// their deltas through here.
func (st *pointState) applyValidDelta(ri int, old, new uint64) bool {
	wasTrue, isTrue := old != 0, new != 0
	if wasTrue == isTrue {
		return false // value changed but truth did not
	}
	if !isTrue {
		st.trueCnt[ri]--
		return false
	}
	st.trueCnt[ri]++
	return st.trueCnt[ri] == st.need[ri]
}

// record folds one in-window valid arrival of request ri with the given
// data-field value into the point's reqsIntvl statistics and event log. The
// event append stays within the log's preallocated cap (maxEventsPerPoint).
//
//sonar:alloc-free
func (st *pointState) record(cfg *Config, ri int, cycle int64, data uint64) {
	// A constantly-valid co-request arrives every cycle: any event is a
	// simultaneous distinct-request arrival.
	if st.constPeer {
		st.minIntvlDistinct = 0
	}
	// Distinct-request interval: against the most recent arrival of any
	// other request.
	if st.lastAnyCycle >= 0 && st.lastAnyReq != ri {
		if d := cycle - st.lastAnyCycle; d < st.minIntvlDistinct {
			st.minIntvlDistinct = d
		}
	}
	// Same-cycle arrivals of two distinct requests: the other request may
	// have been recorded this very cycle.
	for rj := range st.lastCycle {
		if rj != ri && st.lastCycle[rj] == cycle {
			st.minIntvlDistinct = 0
		}
	}
	// Same-path interval and data similarity.
	if st.lastCycle[ri] >= 0 {
		if d := cycle - st.lastCycle[ri]; d < st.minIntvlSame {
			st.minIntvlSame = d
		}
		if data&cfg.SimilarityMask == st.lastData[ri]&cfg.SimilarityMask {
			st.samePathHit = true
		}
	}
	st.lastCycle[ri] = cycle
	st.lastData[ri] = data
	st.lastAnyCycle = cycle
	st.lastAnyReq = ri

	if len(st.events) < maxEventsPerPoint {
		st.events = append(st.events, Event{Cycle: cycle, Req: ri, Data: data})
	}
	st.eventCount++
	// FNV-1a over (req, data); cycle is folded in relative form by the
	// snapshot, so identical behaviour at a different start cycle hashes
	// identically there, while the running hash captures order and values.
	st.hash = fnv1a(st.hash, uint64(ri))
	st.hash = fnv1a(st.hash, data)
}

func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
