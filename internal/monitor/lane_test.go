package monitor

import (
	"fmt"
	"reflect"
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
	"sonar/internal/sim"
	"sonar/internal/trace"
)

// laneStim derives deterministic per-lane input stimulus (same scheme as the
// sim package's differential harness).
func laneStim(seed int64, cycle, lane, input int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(cycle)<<32 ^ uint64(lane)<<16 ^ uint64(input)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// TestLaneBankVsScalarMonitor is the monitor-level differential: a LaneBank
// over one 64-lane simulation must produce, per lane, exactly the snapshot a
// scalar Monitor produces over that lane's scalar replay — intervals, event
// logs, digests, trigger bits, all of it.
func TestLaneBankVsScalarMonitor(t *testing.T) {
	const cycles = 32
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := gen.Config{Seed: seed, Nodes: 30, Regs: 4, Arbiters: 3, PrimShare: 0.2}
			laneNet, err := gen.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ls, err := sim.NewLanes(laneNet)
			if err != nil {
				t.Fatal(err)
			}
			bank := NewLaneBank(trace.Analyze(laneNet), Config{}, ls)
			if bank.NumPoints() == 0 {
				t.Fatal("no monitorable points generated")
			}
			bank.Reset()
			bank.SetWindowAll(true)

			var inputs []*hdl.Signal
			for _, s := range laneNet.Signals() {
				if s.Kind() == hdl.Input {
					inputs = append(inputs, s)
				}
			}

			var scalars [hdl.Lanes]*sim.Simulator
			var mons [hdl.Lanes]*Monitor
			for lane := range scalars {
				net, err := gen.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				scalars[lane], err = sim.New(net)
				if err != nil {
					t.Fatal(err)
				}
				mons[lane] = New(trace.Analyze(net), Config{})
				mons[lane].Reset()
				mons[lane].SetWindow(true)
			}

			for c := 0; c < cycles; c++ {
				for lane := 0; lane < hdl.Lanes; lane++ {
					ref := scalars[lane].Netlist()
					for ii, in := range inputs {
						v := laneStim(seed, c, lane, ii)
						ls.Plane().Set(in, lane, v)
						ref.SignalByID(in.ID()).Set(v)
					}
				}
				ls.Tick()
				for lane := range scalars {
					scalars[lane].Tick()
				}
			}

			total := 0
			for lane := 0; lane < hdl.Lanes; lane++ {
				got := bank.SnapshotLane(lane)
				want := mons[lane].Snapshot()
				if len(got.Points) != len(want.Points) {
					t.Fatalf("lane %d: %d points vs %d", lane, len(got.Points), len(want.Points))
				}
				for i := range got.Points {
					g, w := got.Points[i], want.Points[i]
					// Point pointers belong to different analyses; compare by id.
					if g.Point.ID != w.Point.ID {
						t.Fatalf("lane %d point %d: id %d vs %d", lane, i, g.Point.ID, w.Point.ID)
					}
					g.Point, w.Point = nil, nil
					if len(g.Events) == 0 && len(w.Events) == 0 {
						g.Events, w.Events = nil, nil
					}
					if !reflect.DeepEqual(g, w) {
						t.Fatalf("lane %d point %d:\n lane   %+v\n scalar %+v", lane, i, g, w)
					}
					total += g.EventCount
				}
			}
			if total == 0 {
				t.Fatal("no events observed in any lane; stimulus too weak")
			}
		})
	}
}

// TestLaneBankWindowIsolation pins that the monitoring window is per-lane:
// closing one lane's window suppresses its events without touching others.
func TestLaneBankWindowIsolation(t *testing.T) {
	cfg := gen.Config{Seed: 3, Arbiters: 2}
	laneNet, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLanes(laneNet)
	if err != nil {
		t.Fatal(err)
	}
	bank := NewLaneBank(trace.Analyze(laneNet), Config{}, ls)
	bank.Reset()
	bank.SetWindowAll(true)
	bank.SetWindow(5, false)

	var inputs []*hdl.Signal
	for _, s := range laneNet.Signals() {
		if s.Kind() == hdl.Input {
			inputs = append(inputs, s)
		}
	}
	for c := 0; c < 32; c++ {
		for lane := 0; lane < hdl.Lanes; lane++ {
			for ii, in := range inputs {
				ls.Plane().Set(in, lane, laneStim(99, c, lane, ii))
			}
		}
		ls.Tick()
	}
	closed := bank.SnapshotLane(5)
	for i := range closed.Points {
		if closed.Points[i].EventCount != 0 {
			t.Fatalf("closed lane recorded %d events at point %d",
				closed.Points[i].EventCount, i)
		}
	}
	open := 0
	for lane := 0; lane < hdl.Lanes; lane++ {
		if lane == 5 {
			continue
		}
		s := bank.SnapshotLane(lane)
		for i := range s.Points {
			open += s.Points[i].EventCount
		}
	}
	if open == 0 {
		t.Fatal("open lanes recorded no events")
	}
}
