// This file holds the lane-indexed monitor: the reqsIntvl instrumentation
// of Monitor, banked per lane for the bit-parallel evaluator
// (sim.LaneSimulator). One LaneBank carries hdl.Lanes independent copies of
// every point's state, so 64 testcases can be monitored through a single
// lane-parallel simulation and demuxed into ordinary per-testcase snapshots.

package monitor

import (
	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// LaneHost is the evaluation backend a LaneBank attaches to: it must deliver
// per-lane value-change hooks and expose the bit-sliced plane the monitored
// values live in. sim.LaneSimulator implements it.
type LaneHost interface {
	// WatchLanes registers a hook fired on per-lane value changes of s.
	WatchLanes(s *hdl.Signal, fn hdl.LaneWatchFunc)
	// Plane returns the bit-sliced value plane being evaluated.
	Plane() *hdl.LanePlane
}

// LaneBank instruments a set of contention points across all lanes of a
// lane-parallel simulation. It is the lane analog of Monitor: the same
// incremental validity-conjunction tracking and reqsIntvl statistics,
// maintained independently per (point, lane). The monitoring window is
// per-lane, since each lane is an independent testcase with its own
// secret-dependent flight window.
type LaneBank struct {
	cfg   Config
	plane *hdl.LanePlane
	// states[lane][pi] is point pi's instrumentation state in that lane;
	// the per-lane slice is ordered exactly like Monitor.states, so lane
	// snapshots are directly comparable with scalar ones.
	states [hdl.Lanes][]*pointState
	window [hdl.Lanes]bool
	// statements counts inserted monitoring logic once, not per lane: in
	// hardware terms the lanes share one instrumentation harness.
	statements int
}

// NewLaneBank attaches lane instrumentation for every monitorable point in
// the analysis to the host's lane watch hooks. The analysis must be over the
// host's netlist.
func NewLaneBank(a *trace.Analysis, cfg Config, host LaneHost) *LaneBank {
	if cfg.SimilarityMask == 0 {
		cfg.SimilarityMask = ^uint64(0)
	}
	b := &LaneBank{cfg: cfg, plane: host.Plane()}
	points := cfg.placementPoints(a)
	for lane := 0; lane < hdl.Lanes; lane++ {
		b.states[lane] = newPointStates(points)
	}
	for pi, p := range points {
		for ri := range p.Requests {
			req := &p.Requests[ri]
			if !req.HasValid() {
				continue
			}
			pi, ri := pi, ri
			hook := func(_ *hdl.Signal, lane int, old, new uint64, cycle int64) {
				b.onValidDelta(pi, ri, lane, old, new, cycle)
			}
			for _, v := range req.Valids {
				host.WatchLanes(v, hook)
				b.statements++
			}
		}
		b.statements += 2 + len(p.Requests)
	}
	for lane := 0; lane < hdl.Lanes; lane++ {
		for _, st := range b.states[lane] {
			b.recount(st, lane)
		}
	}
	return b
}

// recount re-derives one lane's per-request true-valid counts from the lane
// plane, the lane analog of pointState.recount.
func (b *LaneBank) recount(st *pointState, lane int) {
	for ri := range st.point.Requests {
		req := &st.point.Requests[ri]
		if !req.HasValid() {
			continue
		}
		cnt := int32(0)
		for _, v := range req.Valids {
			if b.plane.NonzeroMask(v)>>uint(lane)&1 != 0 {
				cnt++
			}
		}
		st.trueCnt[ri] = cnt
	}
}

// onValidDelta folds one lane's valid-signal change into that lane's point
// state, recording an event on a completed conjunction inside the lane's
// window. The data field is gathered from the lane plane at hook time,
// mirroring the scalar monitor's read of Signal.Value.
//
//sonar:alloc-free
func (b *LaneBank) onValidDelta(pi, ri, lane int, old, new uint64, cycle int64) {
	st := b.states[lane][pi]
	if !st.applyValidDelta(ri, old, new) {
		return
	}
	if !b.window[lane] {
		return
	}
	st.record(&b.cfg, ri, cycle, b.plane.Get(st.point.Requests[ri].Data, lane))
}

// NumPoints returns the number of instrumented contention points (per lane).
func (b *LaneBank) NumPoints() int { return len(b.states[0]) }

// Statements returns the approximate number of inserted monitoring
// statements; lanes share one harness, so this matches the scalar Monitor.
func (b *LaneBank) Statements() int { return b.statements }

// SetWindow opens or closes one lane's monitoring window.
func (b *LaneBank) SetWindow(lane int, open bool) { b.window[lane] = open }

// SetWindowAll opens or closes every lane's monitoring window.
func (b *LaneBank) SetWindowAll(open bool) {
	for lane := range b.window {
		b.window[lane] = open
	}
}

// WindowOpen reports whether the given lane's window is open.
func (b *LaneBank) WindowOpen(lane int) bool { return b.window[lane] }

// Reset clears all collected state in every lane and re-anchors the
// true-valid counts from the lane plane, keeping hooks attached. Call it
// between lane-batch executions.
func (b *LaneBank) Reset() {
	for lane := range b.states {
		b.window[lane] = false
		for _, st := range b.states[lane] {
			st.reset()
			b.recount(st, lane)
		}
	}
}

// SnapshotLane captures one lane's collected state as a freshly allocated
// snapshot, directly comparable with a scalar Monitor.Snapshot of the same
// testcase.
func (b *LaneBank) SnapshotLane(lane int) *Snapshot {
	s := new(Snapshot)
	b.SnapshotLaneInto(lane, s)
	return s
}

// SnapshotLaneInto captures one lane's collected state into s, reusing its
// buffers (see Monitor.SnapshotInto for the aliasing contract).
//
//sonar:alloc-free
func (b *LaneBank) SnapshotLaneInto(lane int, s *Snapshot) {
	snapshotInto(s, b.states[lane])
}
