package experiments

import (
	"fmt"
	"strings"
	"time"

	"sonar/internal/boom"
	"sonar/internal/fuzz"
)

// ParallelResult compares the serial campaign engine against the sharded
// parallel engine at an equal iteration budget (the scaling experiment the
// paper's 80-core campaign host implies). It measures cross-core scaling
// only: the per-core bit-parallel lane evaluator (Options.Lanes) is an
// orthogonal multiplier, gated separately by the CampaignLanes benchmarks
// (docs/PERFORMANCE.md).
type ParallelResult struct {
	Iterations int // iteration budget of both campaigns
	Workers    int // shard count of the parallel campaign
	// SerialNs and ParallelNs are the wall-clock campaign times.
	SerialNs, ParallelNs int64
	// SerialPoints and ParallelPoints are the final triggered-contention
	// counts of the two campaigns.
	SerialPoints, ParallelPoints int
	// EquivalentAtOne reports whether a Workers=1 parallel campaign
	// reproduced the serial engine's CumPoints trajectory exactly — the
	// determinism contract.
	EquivalentAtOne bool
}

// Speedup is the serial/parallel wall-clock ratio.
func (r ParallelResult) Speedup() float64 {
	if r.ParallelNs == 0 {
		return 0
	}
	return float64(r.SerialNs) / float64(r.ParallelNs)
}

// Parallel times a serial and a sharded campaign of the given length on the
// BOOM-like DUT (lite elaboration, so per-worker setup stays small against
// execution time) and verifies the Workers=1 equivalence contract at a
// reduced budget.
func Parallel(iterations, workers int) ParallelResult {
	mkDUT := fuzz.SharedAnalysisFactory(boom.NewLite)

	opt := fuzz.SonarOptions(iterations)
	start := time.Now()
	serial := fuzz.Run(mkDUT(), observed(opt))
	serialNs := time.Since(start).Nanoseconds()

	popt := opt
	popt.Workers = workers
	start = time.Now()
	parallel := fuzz.RunParallel(mkDUT, observed(popt))
	parallelNs := time.Since(start).Nanoseconds()

	// Contract check: Workers=1 must retrace the serial campaign.
	check := iterations
	if check > 100 {
		check = 100
	}
	copt := fuzz.SonarOptions(check)
	a := fuzz.Run(mkDUT(), copt)
	copt.Workers = 1
	b := fuzz.RunParallel(mkDUT, copt)
	equivalent := len(a.PerIteration) == len(b.PerIteration)
	for i := 0; equivalent && i < len(a.PerIteration); i++ {
		equivalent = a.PerIteration[i] == b.PerIteration[i]
	}

	return ParallelResult{
		Iterations:      iterations,
		Workers:         workers,
		SerialNs:        serialNs,
		ParallelNs:      parallelNs,
		SerialPoints:    serial.PerIteration[len(serial.PerIteration)-1].CumPoints,
		ParallelPoints:  parallel.PerIteration[len(parallel.PerIteration)-1].CumPoints,
		EquivalentAtOne: equivalent,
	}
}

// RenderParallel formats the scaling comparison.
func RenderParallel(r ParallelResult) string {
	var b strings.Builder
	b.WriteString("Parallel campaign engine: serial vs sharded at equal budget\n")
	fmt.Fprintf(&b, "  serial:   %d iterations in %8.1fms, %d points\n",
		r.Iterations, float64(r.SerialNs)/1e6, r.SerialPoints)
	fmt.Fprintf(&b, "  workers=%d: %d iterations in %8.1fms, %d points  (%.2fx speedup)\n",
		r.Workers, r.Iterations, float64(r.ParallelNs)/1e6, r.ParallelPoints, r.Speedup())
	fmt.Fprintf(&b, "  workers=1 reproduces serial trajectory: %v\n", r.EquivalentAtOne)
	return b.String()
}
