package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sonar/internal/boom"
	"sonar/internal/fuzz"
	"sonar/internal/fuzz/faultinject"
)

// DurabilityResult demonstrates the durable-campaign contracts of
// docs/CAMPAIGNS.md on a live DUT: a campaign paused at a checkpoint and
// resumed matches the uninterrupted run, and a campaign with an injected
// worker panic recovers to the fault-free result.
type DurabilityResult struct {
	// Iterations and Workers describe the campaigns compared.
	Iterations int
	Workers    int // worker count of the compared campaigns
	// PausedAt is the campaign position (iterations) of the pause
	// checkpoint.
	PausedAt int
	// CheckpointBytes is the size of the pause checkpoint file.
	CheckpointBytes int
	// ResumeIdentical reports whether pause+resume reproduced the
	// uninterrupted campaign's per-iteration trajectory exactly.
	ResumeIdentical bool
	// FaultsInjected is the number of worker faults fired by the injection
	// schedule.
	FaultsInjected int
	// FaultRecovered reports whether the faulted campaign's trajectory
	// matched the fault-free run after batch retry.
	FaultRecovered bool
}

// Durability runs the checkpoint/resume and fault-recovery demonstrations
// on the BOOM-like DUT. The campaign budget is capped: the contracts are
// scale-independent and the experiment runs four campaigns.
func Durability(iterations, workers int) DurabilityResult {
	if iterations > 200 {
		iterations = 200
	}
	if workers < 2 {
		workers = 2
	}
	mkDUT := fuzz.SharedAnalysisFactory(boom.NewLite)

	opt := fuzz.SonarOptions(iterations)
	opt.Workers = workers
	opt.BatchSize = 16

	baseline := fuzz.RunParallel(mkDUT, observed(opt))

	r := DurabilityResult{Iterations: iterations, Workers: opt.Workers}

	// Pause after two merge rounds, then resume from the checkpoint and
	// compare against the uninterrupted run.
	dir, err := os.MkdirTemp("", "sonar-durability-*")
	if err == nil {
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "campaign.ckpt")
		popt := opt
		popt.Checkpoint = path
		popt.MaxRounds = 2
		fuzz.RunParallel(mkDUT, popt)
		if cp, err := fuzz.LoadCheckpoint(path); err == nil {
			r.PausedAt = cp.Done
			if fi, err := os.Stat(path); err == nil {
				r.CheckpointBytes = int(fi.Size())
			}
			ropt := cp.CampaignOptions()
			ropt.Checkpoint = path
			if resumed, err := fuzz.Resume(mkDUT, ropt, cp); err == nil {
				r.ResumeIdentical = sameTrajectory(baseline, resumed)
			}
		}
	}

	// Inject a worker panic in the first round and verify the retried
	// campaign matches the fault-free baseline.
	sched := faultinject.NewSchedule(
		faultinject.Fault{Worker: 0, Round: 1, Iter: 0, Mode: faultinject.ModePanic},
	)
	fopt := opt
	fopt.FaultHook = sched
	faulted := fuzz.RunParallel(mkDUT, fopt)
	r.FaultsInjected = sched.Fired()
	r.FaultRecovered = sameTrajectory(baseline, faulted)
	return r
}

// sameTrajectory compares two campaigns' per-iteration progress series.
func sameTrajectory(a, b *fuzz.Stats) bool {
	if len(a.PerIteration) != len(b.PerIteration) {
		return false
	}
	for i := range a.PerIteration {
		if a.PerIteration[i] != b.PerIteration[i] {
			return false
		}
	}
	return true
}

// RenderDurability formats the durability demonstration.
func RenderDurability(r DurabilityResult) string {
	var b strings.Builder
	b.WriteString("Durable campaigns: checkpoint/resume and fault recovery\n")
	fmt.Fprintf(&b, "  campaign: %d iterations, %d workers\n", r.Iterations, r.Workers)
	fmt.Fprintf(&b, "  paused at iteration %d (checkpoint %d bytes); resume reproduces uninterrupted run: %v\n",
		r.PausedAt, r.CheckpointBytes, r.ResumeIdentical)
	fmt.Fprintf(&b, "  injected %d worker panic(s); recovered campaign matches fault-free run: %v\n",
		r.FaultsInjected, r.FaultRecovered)
	return b.String()
}
