package experiments

import (
	"math/rand"

	"sonar/internal/boom"
	"sonar/internal/detect"
	"sonar/internal/fuzz"
	"sonar/internal/monitor"
	"sonar/internal/trace"
	"sonar/internal/uarch"
)

// AblationNoFilterResult quantifies the §5.2 risk filter's instrumentation
// saving.
type AblationNoFilterResult struct {
	// MonitorsFiltered/MonitorsUnfiltered are instrumented point counts
	// with and without the filter.
	MonitorsFiltered, MonitorsUnfiltered int
	// StatementsFiltered/StatementsUnfiltered are the generated monitoring
	// statement counts.
	StatementsFiltered, StatementsUnfiltered int
}

// AblationNoFilter instruments BOOM with and without the risk filter.
func AblationNoFilter() AblationNoFilterResult {
	soc := boom.New()
	a := trace.Analyze(soc.Net)
	with := monitor.New(a, monitor.Config{})
	soc2 := boom.New()
	a2 := trace.Analyze(soc2.Net)
	without := monitor.New(a2, monitor.Config{IgnoreFilter: true})
	return AblationNoFilterResult{
		MonitorsFiltered:     with.NumPoints(),
		MonitorsUnfiltered:   without.NumPoints(),
		StatementsFiltered:   with.Statements(),
		StatementsUnfiltered: without.Statements(),
	}
}

// AblationWindowResult quantifies the monitoring-window restriction (§6.1):
// without it, secret-independent contention states flood the
// dual-differential comparison, inflating the root-cause candidate list.
type AblationWindowResult struct {
	// FindingsWindowed/FindingsAlways count detected side channels.
	FindingsWindowed, FindingsAlways int
	// StateDiffsWindowed/StateDiffsAlways are the average contention-state
	// diffs attached per finding — the §7.2 debugging effort proxy.
	StateDiffsWindowed, StateDiffsAlways float64
}

// AblationWindow runs equal campaigns with the ROB-scoped monitoring window
// and with whole-run state collection.
func AblationWindow(iterations int) AblationWindowResult {
	run := func(always bool) (int, float64) {
		d := fuzz.NewDUT(boom.New())
		d.WindowAlwaysOpen = always
		opt := fuzz.SonarOptions(iterations)
		opt.KeepFindings = 0
		st := fuzz.Run(d, opt)
		total := 0
		for _, f := range st.Findings {
			total += len(f.StateDiffs)
		}
		if len(st.Findings) == 0 {
			return 0, 0
		}
		return len(st.Findings), float64(total) / float64(len(st.Findings))
	}
	var r AblationWindowResult
	r.FindingsWindowed, r.StateDiffsWindowed = run(false)
	r.FindingsAlways, r.StateDiffsAlways = run(true)
	return r
}

// AblationDirectionResult compares the adaptive mutation-direction policy
// against random directions at equal budget.
type AblationDirectionResult struct {
	AdaptivePoints, RandomDirPoints           int // triggered contention points per policy
	AdaptiveTimingDiffs, RandomDirTimingDiffs int // secret-dependent timing differences per policy
}

// AblationDirection runs two equal campaigns differing only in the
// direction policy of the directed mutation.
func AblationDirection(iterations int) AblationDirectionResult {
	d := fuzz.NewDUT(boom.New())
	adaptive := fuzz.Run(d, fuzz.SonarOptions(iterations))
	opt := fuzz.SonarOptions(iterations)
	opt.RandomDirection = true
	random := fuzz.Run(d, opt)
	la := adaptive.PerIteration[len(adaptive.PerIteration)-1]
	lr := random.PerIteration[len(random.PerIteration)-1]
	return AblationDirectionResult{
		AdaptivePoints: la.CumPoints, RandomDirPoints: lr.CumPoints,
		AdaptiveTimingDiffs: la.CumTimingDiffs, RandomDirTimingDiffs: lr.CumTimingDiffs,
	}
}

// AblationCCDResult quantifies the commit-cycle-difference metric (§7.1):
// raw commit-time comparison flags every instruction queued behind a
// delayed one; CCD keeps only the genuinely affected ones.
type AblationCCDResult struct {
	// Testcases is the number of timing-difference-exposing testcases
	// evaluated.
	Testcases int
	// RawFlagged/CCDFlagged are instructions flagged per such testcase by
	// raw commit-time comparison vs the CCD metric.
	RawFlagged, CCDFlagged float64
}

// AblationCCD executes random testcases under both secrets and compares
// the two detection metrics.
func AblationCCD(testcases int) AblationCCDResult {
	d := fuzz.NewDUT(boom.NewLite())
	rng := rand.New(rand.NewSource(7))
	var res AblationCCDResult
	var raw, ccd int
	for i := 0; i < testcases; i++ {
		tc := fuzz.Generate(rng, false)
		exA := d.Execute(tc, 0)
		exB := d.Execute(tc, 1)
		if !detect.TimingDiff(exA.Log, exB.Log) {
			continue
		}
		res.Testcases++
		raw += rawFlagged(exA.Log, exB.Log)
		ccd += len(detect.CCDCompare(exA.Log, exB.Log))
	}
	if res.Testcases > 0 {
		res.RawFlagged = float64(raw) / float64(res.Testcases)
		res.CCDFlagged = float64(ccd) / float64(res.Testcases)
	}
	return res
}

// rawFlagged counts instructions whose absolute commit times differ — the
// naive metric that misattributes in-order commit queueing (Figure 5 top).
func rawFlagged(a, b []uarch.CommitRecord) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	count := 0
	for i := 0; i < n; i++ {
		if a[i].Idx != b[i].Idx {
			break
		}
		if a[i].Cycle != b[i].Cycle {
			count++
		}
	}
	return count
}
