package experiments

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	if r.Boom.ROBEntries != 96 || r.Nutshell.ROBEntries != 32 {
		t.Error("ROB entries drifted from Table 1")
	}
	text := r.String()
	for _, want := range []string{"BOOM", "NutShell", "Fetch Width", "MSHR"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 text missing %q", want)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	rs := Figure6()
	if len(rs) != 2 {
		t.Fatalf("DUTs = %d", len(rs))
	}
	boom, nut := rs[0], rs[1]
	// Paper: 71.5% reduction on BOOM, 80.4% on NutShell. The shape
	// requirements: both strongly reduced, NutShell more than BOOM.
	if boom.Reduction() < 0.6 || boom.Reduction() > 0.85 {
		t.Errorf("BOOM reduction = %.1f%%, want ~71.5%%", 100*boom.Reduction())
	}
	if nut.Reduction() < 0.7 || nut.Reduction() > 0.9 {
		t.Errorf("NutShell reduction = %.1f%%, want ~80.4%%", 100*nut.Reduction())
	}
	if nut.Reduction() <= boom.Reduction() {
		t.Error("NutShell must reduce more than BOOM (Figure 6)")
	}
	// Scale: thousands of points, tens of thousands of naive MUXes.
	if boom.NaiveMuxes < 20000 || boom.TracedPoints < 5000 {
		t.Errorf("BOOM scale off: %d naive, %d traced", boom.NaiveMuxes, boom.TracedPoints)
	}
	if text := RenderFigure6(rs); !strings.Contains(text, "reduction") {
		t.Error("render incomplete")
	}
}

func TestFigure7Shape(t *testing.T) {
	rs := Figure7()
	boom, nut := rs[0], rs[1]
	// Paper: 26.2% filtered on BOOM, 35.7% on NutShell.
	if boom.FilterReduction() < 0.15 || boom.FilterReduction() > 0.4 {
		t.Errorf("BOOM filtered = %.1f%%, want ~26%%", 100*boom.FilterReduction())
	}
	if nut.FilterReduction() < 0.25 || nut.FilterReduction() > 0.5 {
		t.Errorf("NutShell filtered = %.1f%%, want ~36%%", 100*nut.FilterReduction())
	}
	if nut.FilterReduction() <= boom.FilterReduction() {
		t.Error("NutShell must filter a larger share than BOOM (Figure 7)")
	}
	// Distribution: the paper finds concentration in frontend, ROB, LSU,
	// and the bus; all five components must be populated.
	for _, comp := range []string{"frontend", "rob", "lsu", "exe", "tilelink"} {
		if boom.ByComponent[comp][0] == 0 {
			t.Errorf("BOOM component %s empty", comp)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(5)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wall-clock columns are load-sensitive; the test only checks sanity.
	// cmd/sonar-bench on an idle machine reproduces the paper's shape
	// (positive compile overhead and simulation slowdown, NutShell faster
	// than BOOM) — see EXPERIMENTS.md.
	for _, r := range rows {
		if r.CompileInstMs <= 0 || r.SimInstHz <= 0 {
			t.Errorf("%s: missing timing measurements: %+v", r.DUT, r)
		}
		if r.Statements == 0 || r.FuzzPerHour == 0 {
			t.Errorf("%s: missing statements/fuzz speed", r.DUT)
		}
		if r.MonitoredPoints == 0 || r.MonitoredPoints >= r.ContentionPoints {
			t.Errorf("%s: monitor counts wrong: %d of %d", r.DUT, r.MonitoredPoints, r.ContentionPoints)
		}
	}
	if rows[0].DUT != "nutshell" || rows[1].DUT != "boom" {
		t.Fatal("row order drifted")
	}
	// The deterministic columns keep the paper's ordering: BOOM carries
	// more contention points and monitoring statements than NutShell.
	if rows[1].ContentionPoints <= rows[0].ContentionPoints ||
		rows[1].Statements <= rows[0].Statements {
		t.Error("BOOM must carry more instrumentation than NutShell")
	}
}

func TestFigure8SonarBeatsRandom(t *testing.T) {
	// The guided advantage accrues with iterations (the paper's curves are
	// at 3000); 400 is the smallest budget where it is stable across
	// seeds. A small tolerance absorbs campaign-level randomness.
	rs := Figure8(400)
	for _, r := range rs {
		if r.Sonar.Final().CumPoints <= 0 {
			t.Fatalf("%s: Sonar triggered nothing", r.DUT)
		}
		if r.ContentionGain() <= -0.05 {
			t.Errorf("%s: Sonar contention gain %+.0f%%, must not lose to random (paper: +117%%)",
				r.DUT, 100*r.ContentionGain())
		}
		if r.TimingDiffGain() <= 0.10 {
			t.Errorf("%s: Sonar timing-diff gain %+.0f%%, must clearly beat random (paper: >+210%%)",
				r.DUT, 100*r.TimingDiffGain())
		}
		// Cumulative curves are monotone.
		prev := 0
		for _, p := range r.Sonar.Points {
			if p.CumPoints < prev {
				t.Fatal("non-monotone cumulative curve")
			}
			prev = p.CumPoints
		}
	}
}

func TestFigure9EarlyClusterDominance(t *testing.T) {
	r := Figure9()
	if len(r.PerTestcase) != 20 {
		t.Fatalf("testcases recorded = %d, want 20", len(r.PerTestcase))
	}
	// Paper: the early cluster is dominated by single-valid contentions.
	if r.DominanceShare() < 0.7 {
		t.Errorf("single-valid share = %.0f%%, want dominant (>70%%)", 100*r.DominanceShare())
	}
	// A large number of contentions trigger in the very first testcases
	// (§8.3.2 observation ①).
	if r.PerTestcase[0][0]+r.PerTestcase[0][1] < 20 {
		t.Errorf("first testcase triggered only %d contentions", r.PerTestcase[0][0]+r.PerTestcase[0][1])
	}
}

func TestFigure10StrategyOrdering(t *testing.T) {
	r := Figure10(400)
	if len(r.Series) != 4 {
		t.Fatalf("series = %d", len(r.Series))
	}
	random := r.Series[0].Final()
	directed := r.Series[3].Final()
	// The full strategy stack must beat plain random testing by the end
	// (the paper: "benefits become evident as testing progresses") — on
	// triggered contentions or, at minimum, on exposed timing differences.
	if directed.CumPoints <= random.CumPoints && directed.CumTimingDiffs <= random.CumTimingDiffs {
		t.Errorf("directed mutation (%d pts / %d diffs) did not beat random (%d / %d)",
			directed.CumPoints, directed.CumTimingDiffs, random.CumPoints, random.CumTimingDiffs)
	}
}

func TestFigure11SonarBeatsSpecDoctor(t *testing.T) {
	r := Figure11(400)
	if r.NewContentionRatio() <= 0.95 {
		t.Errorf("Sonar/SpecDoctor ratio = %.2f, want > 1 at scale (paper: 2.13x)", r.NewContentionRatio())
	}
	// Complexity: the SpecDoctor-style pass must grow faster than Sonar's
	// linear identification; compare growth between the first and last
	// sizes.
	first, last := r.Complexity[0], r.Complexity[len(r.Complexity)-1]
	sonarGrowth := float64(last.SonarNs) / float64(first.SonarNs+1)
	specGrowth := float64(last.SpecDoctorNs) / float64(first.SpecDoctorNs+1)
	if specGrowth <= sonarGrowth {
		t.Errorf("SpecDoctor growth %.1fx vs Sonar %.1fx: quadratic blowup not visible",
			specGrowth, sonarGrowth)
	}
}

func TestTable3AllChannelsMeasurable(t *testing.T) {
	rows := Table3(5)
	if len(rows) != 14 {
		t.Fatalf("channels = %d, want 14", len(rows))
	}
	newCount := 0
	for _, r := range rows {
		if r.TimeDiff <= 0 {
			t.Errorf("%s: no measured timing difference", r.ID)
		}
		if r.New {
			newCount++
		}
		if r.Description == "" || r.Resource == "" {
			t.Errorf("%s: metadata missing", r.ID)
		}
	}
	if newCount != 11 {
		t.Errorf("new channels = %d, want 11 (paper)", newCount)
	}
	// The order must be S1..S14.
	if rows[0].ID != "S1" || rows[13].ID != "S14" {
		t.Errorf("ordering wrong: %s..%s", rows[0].ID, rows[13].ID)
	}
	// NutShell exploitation fails (<2% key accuracy -> near-chance bits).
	for _, r := range rows {
		if r.DUT == "nutshell" && r.Accuracy > 0.8 {
			t.Errorf("%s: accuracy %.2f too high for NutShell", r.ID, r.Accuracy)
		}
	}
}

func TestExploitationMatchesPaper(t *testing.T) {
	rs := Exploitation(1, 7)
	if len(rs) != 12 { // 11 Meltdown-style PoCs + the cross-core attack
		t.Fatalf("PoCs = %d, want 12", len(rs))
	}
	if rs[len(rs)-1].ID != "XC" {
		t.Errorf("last result = %s, want the cross-core attack", rs[len(rs)-1].ID)
	}
	boomRecovered := 0
	for _, r := range rs {
		switch r.ID {
		case "S13", "S14":
			if r.KeyAccuracy >= 0.02 {
				t.Errorf("%s: key accuracy %.2f, paper reports <2%%", r.ID, r.KeyAccuracy)
			}
		default:
			if r.BitAccuracy > 0.9 {
				boomRecovered++
			}
		}
	}
	// Paper: all nine BOOM PoCs work (S7/S12 slightly below 99%).
	if boomRecovered < 7 {
		t.Errorf("only %d/9 BOOM PoCs reach >90%% bit accuracy", boomRecovered)
	}
}

func TestAblationNoFilterSavesMonitors(t *testing.T) {
	r := AblationNoFilter()
	if r.MonitorsUnfiltered <= r.MonitorsFiltered {
		t.Error("filter saved no monitors")
	}
	if r.StatementsUnfiltered <= r.StatementsFiltered {
		t.Error("filter saved no statements")
	}
	saved := 1 - float64(r.MonitorsFiltered)/float64(r.MonitorsUnfiltered)
	if saved < 0.15 {
		t.Errorf("filter saved %.0f%%, want >15%% (paper: ~26-36%%)", 100*saved)
	}
}

func TestAblationCCDFiltersArtifacts(t *testing.T) {
	r := AblationCCD(40)
	if r.Testcases == 0 {
		t.Fatal("no timing-difference testcases observed")
	}
	if r.CCDFlagged >= r.RawFlagged {
		t.Errorf("CCD flagged %.1f vs raw %.1f: no in-order-commit artifacts filtered",
			r.CCDFlagged, r.RawFlagged)
	}
}

func TestMitigationsTable(t *testing.T) {
	rows := Mitigations(5)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 4 PoCs x 3 configs", len(rows))
	}
	base := map[string]float64{}
	for _, r := range rows {
		if r.Mitigation == "baseline" {
			base[r.PoC] = r.BitAccuracy
		}
	}
	for id, acc := range base {
		if acc < 0.9 {
			t.Errorf("baseline %s accuracy %.2f too low for a mitigation comparison", id, acc)
		}
	}
	// At least one mitigation must break at least one PoC.
	broken := 0
	for _, r := range rows {
		if r.Mitigation != "baseline" && r.BitAccuracy < 0.7 {
			broken++
		}
	}
	if broken == 0 {
		t.Error("no mitigation degraded any PoC")
	}
	if text := RenderMitigations(rows); !strings.Contains(text, "baseline") {
		t.Error("render incomplete")
	}
}

func TestScenarioDeltasNonzero(t *testing.T) {
	if d := scenarioS8(); d <= 0 {
		t.Errorf("S8 scenario delta = %d", d)
	}
	if d := scenarioS10(); d <= 0 {
		t.Errorf("S10 scenario delta = %d", d)
	}
	if d := scenarioS14(); d <= 0 {
		t.Errorf("S14 scenario delta = %d", d)
	}
}

func TestParallelExperiment(t *testing.T) {
	r := Parallel(40, 2)
	if r.SerialPoints == 0 || r.ParallelPoints == 0 {
		t.Fatalf("campaigns triggered nothing: %+v", r)
	}
	if !r.EquivalentAtOne {
		t.Error("Workers=1 did not reproduce the serial trajectory")
	}
	if text := RenderParallel(r); !strings.Contains(text, "speedup") {
		t.Error("render incomplete")
	}
}
