// Package experiments regenerates every table and figure of the paper's
// evaluation (§8). Each generator returns a data structure with a String()
// rendering; cmd/sonar-bench prints them and the repository benchmarks time
// them. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sonar/internal/boom"
	"sonar/internal/core"
	"sonar/internal/nutshell"
	"sonar/internal/uarch"
)

// Table1Result reproduces the DUT configuration table.
type Table1Result struct {
	Boom, Nutshell uarch.Config // the two DUT configurations compared
}

// Table1 returns the key parameters of both DUTs.
func Table1() *Table1Result {
	return &Table1Result{Boom: uarch.BoomConfig(), Nutshell: uarch.NutshellConfig()}
}

// String renders the table in the paper's row layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: Key parameters of BOOM and NutShell\n")
	row := func(name string, bv, nv interface{}) {
		fmt.Fprintf(&b, "  %-22s %-14v %v\n", name, bv, nv)
	}
	row("Feature", "BOOM", "NutShell")
	row("Fetch Width", r.Boom.FetchWidth, r.Nutshell.FetchWidth)
	row("Fetch Buffer", r.Boom.FetchBufEntries, r.Nutshell.FetchBufEntries)
	row("ROB Entry", r.Boom.ROBEntries, r.Nutshell.ROBEntries)
	row("Ld/St Queue", fmt.Sprintf("%d/%d", r.Boom.LDQEntries, r.Boom.STQEntries),
		fmt.Sprintf("%d/%d", r.Nutshell.LDQEntries, r.Nutshell.STQEntries))
	row("Int ALUs", r.Boom.NumALUs, r.Nutshell.NumALUs)
	row("Mul structure", mulDesc(r.Boom), mulDesc(r.Nutshell))
	row("L1 I/DCache sets", fmt.Sprintf("%d/%d", r.Boom.ICacheSets, r.Boom.DCacheSets),
		fmt.Sprintf("%d/%d", r.Nutshell.ICacheSets, r.Nutshell.DCacheSets))
	row("L1 MSHR", r.Boom.NumMSHRs, r.Nutshell.NumMSHRs)
	row("Line buffers", r.Boom.LineBuffers, r.Nutshell.LineBuffers)
	row("ICache single port", r.Boom.ICacheSinglePort, r.Nutshell.ICacheSinglePort)
	row("Early exception det.", r.Boom.EarlyExceptionDetect, r.Nutshell.EarlyExceptionDetect)
	return b.String()
}

func mulDesc(c uarch.Config) string {
	if c.PipelinedMul {
		return "pipelined IMUL"
	}
	return "shared MDU"
}

// Figure6Result is one DUT's contention-point identification comparison.
type Figure6Result struct {
	DUT          string // DUT name ("boom" or "nutshell")
	NaiveMuxes   int    // every mux counted as a candidate point
	TracedPoints int    // points surviving bottom-up tracing
}

// Reduction is the fraction eliminated by bottom-up tracing (paper: 71.5%
// on BOOM, 80.4% on NutShell).
func (r Figure6Result) Reduction() float64 {
	return 1 - float64(r.TracedPoints)/float64(r.NaiveMuxes)
}

// Figure6 identifies contention points on both DUTs with the naive 2:1-MUX
// strategy vs MUX-based bottom-up tracing.
func Figure6() []Figure6Result {
	var out []Figure6Result
	for _, mk := range []func() *core.Sonar{
		func() *core.Sonar { return core.New(boom.New) },
		func() *core.Sonar { return core.New(nutshell.New) },
	} {
		rep := mk().Identify()
		out = append(out, Figure6Result{
			DUT:          rep.Design,
			NaiveMuxes:   rep.NaiveMuxes,
			TracedPoints: rep.TracedPoints,
		})
	}
	return out
}

// RenderFigure6 formats the comparison.
func RenderFigure6(rs []Figure6Result) string {
	var b strings.Builder
	b.WriteString("Figure 6: identified contention points, 2:1-MUX counting vs bottom-up tracing\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-10s %6d -> %5d  (%.1f%% reduction)\n",
			r.DUT, r.NaiveMuxes, r.TracedPoints, 100*r.Reduction())
	}
	return b.String()
}

// Figure7Result is one DUT's distribution and filtering outcome.
type Figure7Result struct {
	DUT         string            // DUT name ("boom" or "nutshell")
	Traced      int               // points found by tracing
	Monitored   int               // points kept after the risk filter
	ByComponent map[string][2]int // component -> [traced, monitored]
}

// FilterReduction is the fraction dropped by the §5.2 risk filter
// (paper: 26.2% on BOOM, 35.7% on NutShell).
func (r Figure7Result) FilterReduction() float64 {
	return 1 - float64(r.Monitored)/float64(r.Traced)
}

// Figure7 computes the contention-point distribution before/after risk
// filtering on both DUTs.
func Figure7() []Figure7Result {
	var out []Figure7Result
	for _, mk := range []func() *core.Sonar{
		func() *core.Sonar { return core.New(boom.New) },
		func() *core.Sonar { return core.New(nutshell.New) },
	} {
		rep := mk().Identify()
		out = append(out, Figure7Result{
			DUT:         rep.Design,
			Traced:      rep.TracedPoints,
			Monitored:   rep.MonitoredPoints,
			ByComponent: rep.ByComponent,
		})
	}
	return out
}

// RenderFigure7 formats the distributions.
func RenderFigure7(rs []Figure7Result) string {
	var b strings.Builder
	b.WriteString("Figure 7: contention point distribution, before vs after risk filtering\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-10s %5d traced -> %5d monitored (%.1f%% filtered)\n",
			r.DUT, r.Traced, r.Monitored, 100*r.FilterReduction())
		comps := make([]string, 0, len(r.ByComponent))
		for c := range r.ByComponent {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		for _, c := range comps {
			n := r.ByComponent[c]
			fmt.Fprintf(&b, "    %-12s %5d -> %5d\n", c, n[0], n[1])
		}
	}
	return b.String()
}
