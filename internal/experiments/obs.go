package experiments

import (
	"time"

	"sonar/internal/fuzz"
	"sonar/internal/obs"
)

// campaignObserver is the Observer attached to every campaign the
// experiments run; see SetObserver.
var campaignObserver *obs.Observer

// SetObserver attaches o to every subsequent experiment campaign (Figures
// 8-11 and the parallel scaling run). The experiments run campaigns
// back-to-back, so the metrics aggregate across campaigns while the event
// stream concatenates them, delimited by CampaignStart/CampaignEnd pairs.
// Pass nil to detach. Not safe to call while an experiment is running.
func SetObserver(o *obs.Observer) { campaignObserver = o }

// campaignIterTimeout is the per-iteration deadline applied to every
// observed experiment campaign; see SetIterTimeout.
var campaignIterTimeout time.Duration

// SetIterTimeout applies a per-iteration deadline (fuzz.Options.IterTimeout)
// to every subsequent experiment campaign that runs on the parallel engine;
// serial campaigns ignore it. Zero disables the deadline. Not safe to call
// while an experiment is running.
func SetIterTimeout(d time.Duration) { campaignIterTimeout = d }

// observed returns opt with the package Observer (and the configured
// iteration deadline) attached.
func observed(opt fuzz.Options) fuzz.Options {
	opt.Observer = campaignObserver
	opt.IterTimeout = campaignIterTimeout
	return opt
}
