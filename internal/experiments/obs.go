package experiments

import (
	"sonar/internal/fuzz"
	"sonar/internal/obs"
)

// campaignObserver is the Observer attached to every campaign the
// experiments run; see SetObserver.
var campaignObserver *obs.Observer

// SetObserver attaches o to every subsequent experiment campaign (Figures
// 8-11 and the parallel scaling run). The experiments run campaigns
// back-to-back, so the metrics aggregate across campaigns while the event
// stream concatenates them, delimited by CampaignStart/CampaignEnd pairs.
// Pass nil to detach. Not safe to call while an experiment is running.
func SetObserver(o *obs.Observer) { campaignObserver = o }

// observed returns opt with the package Observer attached.
func observed(opt fuzz.Options) fuzz.Options {
	opt.Observer = campaignObserver
	return opt
}
