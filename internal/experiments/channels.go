package experiments

import (
	"fmt"
	"strings"

	"sonar/internal/attack"
	"sonar/internal/boom"
	"sonar/internal/isa"
	"sonar/internal/nutshell"
	"sonar/internal/uarch"
)

// Table3Row is one side channel of paper Table 3.
type Table3Row struct {
	ID          string // channel identifier (S1..S14)
	DUT         string // DUT the channel was found on
	Resource    string // contended hardware resource
	Description string // one-line channel description
	New         bool   // newly discovered by Sonar (not previously known)
	// TimeDiff is the measured secret-dependent timing difference in
	// cycles (PoC calibration signal, or direct scenario delta for the
	// previously known channels).
	TimeDiff int64
	// Accuracy is the Meltdown-style PoC key accuracy (bit-level); -1 when
	// exploitation was not evaluated (previously known channels).
	Accuracy float64
}

// scenarioDelta runs two program variants on fresh cores of one SoC and
// returns the difference in total runtime (last commit cycle).
func scenarioDelta(soc *uarch.SoC, a, b []isa.Instr) int64 {
	run := func(code []isa.Instr) int64 {
		prog := isa.NewProgram(0x1_0000, append(append([]isa.Instr{}, code...), isa.Instr{Op: isa.ECALL})...)
		log := soc.RunProgram(prog)
		if len(log) == 0 {
			return 0
		}
		return log[len(log)-1].Cycle
	}
	da := run(a)
	db := run(b)
	d := da - db
	if d < 0 {
		d = -d
	}
	return d
}

// scenarioS8 measures the shared execution-unit response port contention on
// BOOM: a multiply's writeback collides with the port-sharing ALU's.
func scenarioS8() int64 {
	soc := boom.NewLite()
	common := []isa.Instr{
		isa.I(isa.ADDI, 1, 0, 7),
	}
	withMul := append(append([]isa.Instr{}, common...),
		isa.R(isa.MUL, 5, 1, 1), // done T+3 via the shared port
		isa.I(isa.ADDI, 2, 1, 1),
		isa.R(isa.ADD, 6, 2, 2), // the three adds issue together at T+2;
		isa.R(isa.ADD, 7, 2, 2), // the third ALU shares the response port
		isa.R(isa.ADD, 8, 2, 2), // and collides with the mul at T+3
	)
	without := append(append([]isa.Instr{}, common...),
		isa.I(isa.ADDI, 5, 1, 1), // no multiplier traffic
		isa.I(isa.ADDI, 2, 1, 1),
		isa.R(isa.ADD, 6, 2, 2),
		isa.R(isa.ADD, 7, 2, 2),
		isa.R(isa.ADD, 8, 2, 2),
	)
	return scenarioDelta(soc, withMul, without)
}

// divOccupancyScenario measures non-pipelined divider/MDU occupancy: a
// younger operation whose operands resolve just before the older divide's
// enters the unit first and blocks it (S9 on BOOM with a younger divide,
// S13 on NutShell with a younger multiply). The younger chain length is
// scanned so the occupancy windows overlap regardless of frontend timing.
func divOccupancyScenario(soc *uarch.SoC, youngerOp isa.Op) int64 {
	build := func(withYounger bool, youngerChain int) []isa.Instr {
		code := []isa.Instr{
			isa.I(isa.ADDI, 1, 0, 1),
			isa.I(isa.ADDI, 3, 0, 5),
			isa.I(isa.ADDI, 8, 0, 58),
			isa.R(isa.SLL, 3, 3, 8), // huge operand (long divide occupancy)
		}
		code = append(code, isa.DepChain(1, 40)...)
		code = append(code, isa.DepChain(3, youngerChain)...)
		code = append(code, isa.R(isa.DIV, 2, 1, 1)) // older div, late operands
		if withYounger {
			code = append(code, isa.R(youngerOp, 4, 3, 3))
		} else {
			code = append(code, isa.R(isa.ADD, 4, 3, 3))
		}
		return code
	}
	var best int64
	for yc := 0; yc <= 40; yc += 4 {
		if d := scenarioDelta(soc, build(true, yc), build(false, yc)); d > best {
			best = d
		}
	}
	return best
}

// scenarioS10 measures the store-conditional dirty-marking channel: the SC
// dirties its line regardless of success, so a later eviction pays a
// writeback that a load-only variant avoids.
func scenarioS10() int64 {
	soc := boom.NewLite()
	const setStride = 64 * 64
	// Four lines of set 0 are touched by store-conditionals (variant A) or
	// plain loads (variant B); the set is then overfilled so all four are
	// evicted, and one is reloaded. Variant A pays four writebacks on the
	// D-channel plus write line-buffer traffic.
	build := func(sc bool) []isa.Instr {
		code := []isa.Instr{{Op: isa.LUI, Rd: 28, Imm: 0x40}}
		// Precompute every set-0 line address (x10..x22) so the access
		// phase can saturate the memory pipeline back to back.
		for k := 0; k < 13; k++ {
			rd := uint8(10 + k)
			code = append(code,
				isa.Instr{Op: isa.LUI, Rd: rd, Imm: int64(k * setStride >> 12)},
				isa.R(isa.ADD, rd, rd, 28),
			)
		}
		for k := 0; k < 4; k++ {
			code = append(code, isa.Load(isa.LRD, 2, uint8(10+k), 0)) // reserve
			if sc {
				code = append(code, isa.Store(isa.SCD, 3, uint8(10+k), 0)) // dirties
			} else {
				code = append(code, isa.Load(isa.LD, 3, uint8(10+k), 0)) // clean
			}
		}
		// Overfill the set back to back: the four lines above become LRU
		// and are evicted (dirty -> writeback in variant A).
		for k := 4; k < 13; k++ {
			code = append(code, isa.Load(isa.LD, 4, uint8(10+k), 0))
		}
		// Reload the first line: it queues behind the writeback traffic.
		code = append(code, isa.Load(isa.LD, 5, 10, 0))
		return code
	}
	return scenarioDelta(soc, build(true), build(false))
}

// scenarioS14 measures the NutShell single-ported ICache: the same program
// runs on a single-ported and a dual-ported configuration; the delta is the
// fetch/refill port contention.
func scenarioS14() int64 {
	code := []isa.Instr{isa.I(isa.ADDI, 1, 0, 1)}
	for i := 0; i < 64; i++ {
		code = append(code, isa.I(isa.ADDI, 1, 1, 1))
	}
	run := func(single bool) int64 {
		cfg := uarch.NutshellConfig()
		cfg.ICacheSinglePort = single
		soc := uarch.NewSoC(cfg, 1, nil, nil)
		prog := isa.NewProgram(0x1_0000, append(code, isa.Instr{Op: isa.ECALL})...)
		log := soc.RunProgram(prog)
		return log[len(log)-1].Cycle
	}
	d := run(true) - run(false)
	if d < 0 {
		d = -d
	}
	return d
}

// Table3 reproduces the side-channel list. trialsPerBit controls the PoC
// accuracy evaluation effort for the newly discovered channels.
func Table3(trialsPerBit int) []Table3Row {
	if trialsPerBit <= 0 {
		trialsPerBit = 7
	}
	key := [attack.KeyBytes]byte{
		0xA5, 0x3C, 0xF0, 0x0F, 0x55, 0xAA, 0x12, 0x34,
		0x9B, 0xDE, 0x01, 0xFE, 0x77, 0x88, 0xC3, 0x3C,
	}
	resources := map[string]string{
		"S1": "TileLink", "S2": "TileLink", "S3": "TileLink", "S4": "TileLink",
		"S5": "MSHR", "S6": "LineBuffer", "S7": "LineBuffer",
		"S8": "EXE Unit", "S9": "Div Unit", "S10": "L1 DCache",
		"S11": "L1 DCache", "S12": "L1 DCache",
		"S13": "MDU", "S14": "L1 ICache",
	}
	var rows []Table3Row
	// Newly discovered channels: PoC-backed measurements.
	for _, p := range attack.AllPoCs() {
		res := attack.Run(p, key, 1, trialsPerBit, 42)
		rows = append(rows, Table3Row{
			ID: p.ID, DUT: p.DUT, Resource: resources[p.ID],
			Description: p.Description, New: true,
			TimeDiff: int64(res.Signal), Accuracy: res.BitAccuracy,
		})
	}
	// Previously known channels: direct scenario measurements.
	known := []Table3Row{
		{ID: "S8", DUT: "boom", Resource: resources["S8"], New: false, Accuracy: -1,
			Description: "alu/imul/div contend for the shared execution-unit response port",
			TimeDiff:    scenarioS8()},
		{ID: "S9", DUT: "boom", Resource: resources["S9"], New: false, Accuracy: -1,
			Description: "younger division blocks the older one in the non-pipelined divider",
			TimeDiff:    divOccupancyScenario(boom.NewLite(), isa.DIV)},
		{ID: "S10", DUT: "boom", Resource: resources["S10"], New: false, Accuracy: -1,
			Description: "store-conditional dirties its cacheline regardless of success",
			TimeDiff:    scenarioS10()},
	}
	rows = append(rows, known...)
	// NutShell channels: the direct contention is real even though the
	// Meltdown-style PoC fails; override the time difference with the
	// scenario measurements.
	for i := range rows {
		switch rows[i].ID {
		case "S13":
			rows[i].TimeDiff = divOccupancyScenario(nutshell.NewLite(), isa.MUL)
		case "S14":
			rows[i].TimeDiff = scenarioS14()
		}
	}
	order := []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "S13", "S14"}
	sorted := make([]Table3Row, 0, len(rows))
	for _, id := range order {
		for _, r := range rows {
			if r.ID == id {
				sorted = append(sorted, r)
			}
		}
	}
	return sorted
}

// RenderTable3 formats the side-channel table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: contention side channels found by Sonar\n")
	fmt.Fprintf(&b, "  %-4s %-9s %-11s %-4s %10s %9s  %s\n",
		"ID", "DUT", "resource", "new", "Δcycles", "accuracy", "description")
	for _, r := range rows {
		acc := "-"
		if r.Accuracy >= 0 {
			acc = fmt.Sprintf("%5.1f%%", 100*r.Accuracy)
		}
		newMark := " "
		if r.New {
			newMark = "*"
		}
		fmt.Fprintf(&b, "  %-4s %-9s %-11s %-4s %10d %9s  %s\n",
			r.ID, r.DUT, r.Resource, newMark, r.TimeDiff, acc, r.Description)
	}
	return b.String()
}

// Exploitation evaluates every PoC (paper §8.5).
func Exploitation(attempts, trialsPerBit int) []attack.Result {
	if attempts <= 0 {
		attempts = 1
	}
	if trialsPerBit <= 0 {
		trialsPerBit = 9
	}
	key := [attack.KeyBytes]byte{
		0xA5, 0x3C, 0xF0, 0x0F, 0x55, 0xAA, 0x12, 0x34,
		0x9B, 0xDE, 0x01, 0xFE, 0x77, 0x88, 0xC3, 0x3C,
	}
	var out []attack.Result
	for _, p := range attack.AllPoCs() {
		out = append(out, attack.Run(p, key, attempts, trialsPerBit, 42))
	}
	// The dual-core TileLink attack (Table 3 footnote †).
	out = append(out, attack.RunCrossCore(func() *uarch.SoC {
		return uarch.NewSoC(uarch.BoomConfig(), 2, nil, nil)
	}, key, attempts, trialsPerBit, 42))
	return out
}

// RenderExploitation formats the PoC accuracy table.
func RenderExploitation(rs []attack.Result) string {
	var b strings.Builder
	b.WriteString("Exploitation (§8.5): Meltdown-style PoC accuracy for a 128-bit privileged key\n")
	fmt.Fprintf(&b, "  %-4s %10s %12s %12s\n", "ID", "signal", "bit acc", "key acc")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %-4s %8.0f c %11.1f%% %11.1f%%\n",
			r.ID, r.Signal, 100*r.BitAccuracy, 100*r.KeyAccuracy)
	}
	return b.String()
}
