package experiments

import (
	"fmt"
	"strings"

	"sonar/internal/baseline"
	"sonar/internal/boom"
	"sonar/internal/fuzz"
	"sonar/internal/nutshell"
)

// Series is one cumulative campaign curve.
type Series struct {
	Name   string           // legend label
	Points []fuzz.IterStats // cumulative per-iteration samples
}

// Final returns the last point of the series.
func (s Series) Final() fuzz.IterStats {
	if len(s.Points) == 0 {
		return fuzz.IterStats{}
	}
	return s.Points[len(s.Points)-1]
}

// sample renders every len/10th point of a series.
func (s Series) sample(b *strings.Builder) {
	step := len(s.Points) / 10
	if step == 0 {
		step = 1
	}
	fmt.Fprintf(b, "    %-22s", s.Name)
	for i := step - 1; i < len(s.Points); i += step {
		fmt.Fprintf(b, " %5d", s.Points[i].CumPoints)
	}
	fmt.Fprintf(b, "  | timing diffs: %d\n", s.Final().CumTimingDiffs)
}

// Figure8Result compares Sonar against random testing on one DUT.
type Figure8Result struct {
	DUT    string // DUT name ("boom" or "nutshell")
	Sonar  Series // Sonar's guided campaign
	Random Series // random-testing baseline at equal budget
}

// ContentionGain is Sonar's relative increase in triggered contention
// points over random testing (paper: +117% on average).
func (r Figure8Result) ContentionGain() float64 {
	rnd := r.Random.Final().CumPoints
	if rnd == 0 {
		return 0
	}
	return float64(r.Sonar.Final().CumPoints)/float64(rnd) - 1
}

// TimingDiffGain is Sonar's relative increase in observed timing
// differences (paper: over +210%).
func (r Figure8Result) TimingDiffGain() float64 {
	rnd := r.Random.Final().CumTimingDiffs
	if rnd == 0 {
		return 0
	}
	return float64(r.Sonar.Final().CumTimingDiffs)/float64(rnd) - 1
}

// Figure8 runs Sonar and random-testing campaigns of the given length on
// both DUTs (paper uses 3000 iterations).
func Figure8(iterations int) []Figure8Result {
	var out []Figure8Result
	for _, bld := range []struct {
		name string
		mk   func() *fuzz.DUT
	}{
		{"boom", func() *fuzz.DUT { return fuzz.NewDUT(boom.New()) }},
		{"nutshell", func() *fuzz.DUT { return fuzz.NewDUT(nutshell.New()) }},
	} {
		d := bld.mk()
		sonarStats := fuzz.Run(d, observed(fuzz.SonarOptions(iterations)))
		randomStats := fuzz.Run(d, observed(fuzz.RandomOptions(iterations)))
		out = append(out, Figure8Result{
			DUT:    bld.name,
			Sonar:  Series{Name: "Sonar", Points: sonarStats.PerIteration},
			Random: Series{Name: "random", Points: randomStats.PerIteration},
		})
	}
	return out
}

// RenderFigure8 formats the comparison curves.
func RenderFigure8(rs []Figure8Result) string {
	var b strings.Builder
	b.WriteString("Figure 8: cumulative triggered contentions and timing differences, Sonar vs random\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "  %s (%d iterations):\n", r.DUT, len(r.Sonar.Points))
		r.Sonar.sample(&b)
		r.Random.sample(&b)
		fmt.Fprintf(&b, "    contention gain: %+.0f%%   timing-diff gain: %+.0f%%\n",
			100*r.ContentionGain(), 100*r.TimingDiffGain())
	}
	return b.String()
}

// Figure9Result is the single-valid dominance breakdown of the first 20
// testcases' newly triggered contentions.
type Figure9Result struct {
	DUT string // DUT name ("boom" or "nutshell")
	// PerTestcase holds [singleValidDominated, other] per testcase.
	PerTestcase [][2]int
}

// DominanceShare is the overall single-valid fraction (the paper observes
// these dominate the early cluster).
func (r Figure9Result) DominanceShare() float64 {
	var sv, tot int
	for _, e := range r.PerTestcase {
		sv += e[0]
		tot += e[0] + e[1]
	}
	if tot == 0 {
		return 0
	}
	return float64(sv) / float64(tot)
}

// Figure9 runs the first 20 testcases on BOOM and classifies the triggered
// contentions.
func Figure9() Figure9Result {
	d := fuzz.NewDUT(boom.New())
	st := fuzz.Run(d, observed(fuzz.SonarOptions(20)))
	return Figure9Result{DUT: "boom", PerTestcase: st.EarlyBreakdown}
}

// RenderFigure9 formats the dominance bars.
func RenderFigure9(r Figure9Result) string {
	var b strings.Builder
	b.WriteString("Figure 9: single-valid-signal dominance in contentions of the first 20 testcases\n")
	for i, e := range r.PerTestcase {
		fmt.Fprintf(&b, "  testcase %2d: %4d single-valid, %3d other\n", i+1, e[0], e[1])
	}
	fmt.Fprintf(&b, "  overall single-valid share: %.0f%%\n", 100*r.DominanceShare())
	return b.String()
}

// Figure10Result is the strategy breakdown on BOOM.
type Figure10Result struct {
	Series []Series // random, +retention, +selection, +mutation
}

// Figure10 runs the breakdown campaigns (paper Figure 10): each strategy
// subsumes the previous one.
func Figure10(iterations int) Figure10Result {
	d := fuzz.NewDUT(boom.New())
	mk := func(name string, o fuzz.Options) Series {
		st := fuzz.Run(d, observed(o))
		return Series{Name: name, Points: st.PerIteration}
	}
	base := fuzz.RandomOptions(iterations)
	ret := base
	ret.Retention = true
	sel := ret
	sel.Selection = true
	mut := sel
	mut.DirectedMutation = true
	return Figure10Result{Series: []Series{
		mk("random", base),
		mk("+retention", ret),
		mk("+selection", sel),
		mk("+directed mutation", mut),
	}}
}

// RenderFigure10 formats the breakdown.
func RenderFigure10(r Figure10Result) string {
	var b strings.Builder
	b.WriteString("Figure 10: strategy breakdown on BOOM (cumulative triggered contentions)\n")
	for _, s := range r.Series {
		s.sample(&b)
	}
	return b.String()
}

// Figure11Result compares Sonar with the SpecDoctor-style baseline.
type Figure11Result struct {
	Sonar      Series // Sonar's guided campaign
	SpecDoctor Series // SpecDoctor-style exhaustive baseline
	// Complexity holds the per-module-size instrumentation cost
	// measurements (O(n) vs O(n^2), §8.3.4).
	Complexity []baseline.ComplexityPoint
}

// NewContentionRatio is Sonar's multiple of SpecDoctor's triggered points
// (paper: 2.13x).
func (r Figure11Result) NewContentionRatio() float64 {
	sd := r.SpecDoctor.Final().CumPoints
	if sd == 0 {
		return 0
	}
	return float64(r.Sonar.Final().CumPoints) / float64(sd)
}

// Figure11 runs equal-iteration campaigns for Sonar and the
// SpecDoctor-style fuzzer on BOOM, plus the instrumentation complexity
// sweep.
func Figure11(iterations int) Figure11Result {
	d := fuzz.NewDUT(boom.New())
	sonarStats := fuzz.Run(d, observed(fuzz.SonarOptions(iterations)))
	sdStats := baseline.RunSpecDoctor(d, iterations, 1)
	return Figure11Result{
		Sonar:      Series{Name: "Sonar", Points: sonarStats.PerIteration},
		SpecDoctor: Series{Name: "SpecDoctor-style", Points: sdStats.PerIteration},
		Complexity: baseline.MeasureComplexity([]int{1000, 2000, 4000, 8000, 16000}),
	}
}

// RenderFigure11 formats the comparison.
func RenderFigure11(r Figure11Result) string {
	var b strings.Builder
	b.WriteString("Figure 11: Sonar vs SpecDoctor-style baseline on BOOM\n")
	r.Sonar.sample(&b)
	r.SpecDoctor.sample(&b)
	fmt.Fprintf(&b, "    new-contention ratio: %.2fx\n", r.NewContentionRatio())
	b.WriteString("  instrumentation cost (statements: Sonar O(n) vs SpecDoctor O(n^2)):\n")
	for _, c := range r.Complexity {
		fmt.Fprintf(&b, "    n=%5d  sonar=%8dns  specdoctor=%10dns\n",
			c.Statements, c.SonarNs, c.SpecDoctorNs)
	}
	return b.String()
}
