package experiments

import (
	"fmt"
	"strings"

	"sonar/internal/attack"
	"sonar/internal/uarch"
)

// MitigationRow is one PoC evaluated under one mitigation configuration.
type MitigationRow struct {
	PoC        string // proof-of-concept channel evaluated
	Mitigation string // mitigation configuration applied
	// BitAccuracy under the mitigation (baseline column repeats the
	// unmitigated accuracy).
	BitAccuracy float64
	// Signal is the residual calibration separation in cycles.
	Signal float64
}

// Mitigations evaluates the paper's §8.6 defences against the strongest
// BOOM PoCs:
//
//   - baseline: the unmodified core;
//   - coarse timer: rdcycle quantized to 64-cycle steps (Timewarp-style
//     "restrict access to clock registers");
//   - partitioned bus: per-requester TileLink D-channel lanes
//     (SecSMT-style resource partitioning) — it removes cross-requester
//     channels (S1/S3) while same-requester contention (S4) survives,
//     showing partitioning alone is not a complete defence.
func Mitigations(trialsPerBit int) []MitigationRow {
	if trialsPerBit <= 0 {
		trialsPerBit = 7
	}
	key := [attack.KeyBytes]byte{
		0xA5, 0x3C, 0xF0, 0x0F, 0x55, 0xAA, 0x12, 0x34,
		0x9B, 0xDE, 0x01, 0xFE, 0x77, 0x88, 0xC3, 0x3C,
	}
	configs := []struct {
		name string
		mk   func() *uarch.SoC
	}{
		{"baseline", func() *uarch.SoC {
			return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil)
		}},
		{"coarse timer (64)", func() *uarch.SoC {
			cfg := uarch.BoomConfig()
			cfg.TimerGranularity = 64
			return uarch.NewSoC(cfg, 1, nil, nil)
		}},
		{"partitioned bus", func() *uarch.SoC {
			cfg := uarch.BoomConfig()
			cfg.PartitionedDChannel = true
			return uarch.NewSoC(cfg, 1, nil, nil)
		}},
	}
	wanted := map[string]bool{"S1": true, "S3": true, "S4": true, "S5": true}
	var rows []MitigationRow
	for _, cfg := range configs {
		for _, p := range attack.BoomPoCs(cfg.mk) {
			if !wanted[p.ID] {
				continue
			}
			res := attack.Run(p, key, 1, trialsPerBit, 42)
			rows = append(rows, MitigationRow{
				PoC: p.ID, Mitigation: cfg.name,
				BitAccuracy: res.BitAccuracy, Signal: res.Signal,
			})
		}
	}
	return rows
}

// RenderMitigations formats the mitigation table.
func RenderMitigations(rows []MitigationRow) string {
	var b strings.Builder
	b.WriteString("Mitigations (§8.6): PoC bit accuracy under defences\n")
	fmt.Fprintf(&b, "  %-18s %-5s %9s %8s\n", "mitigation", "PoC", "accuracy", "signal")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %-5s %8.1f%% %7.0fc\n", r.Mitigation, r.PoC, 100*r.BitAccuracy, r.Signal)
	}
	return b.String()
}
