package experiments

import (
	"fmt"
	"strings"
	"time"

	"sonar/internal/boom"
	"sonar/internal/fuzz"
	"sonar/internal/isa"
	"sonar/internal/monitor"
	"sonar/internal/nutshell"
	"sonar/internal/trace"
	"sonar/internal/uarch"
)

// Table2Row is one DUT's instrumentation overhead measurement.
type Table2Row struct {
	DUT string // DUT name ("boom" or "nutshell")
	// ContentionPoints is the number of traced points.
	ContentionPoints int
	// MonitoredPoints is the instrumented subset.
	MonitoredPoints int
	// CompileBareMs / CompileInstMs are elaboration(+analysis+
	// instrumentation) times, the paper's compile-time columns.
	CompileBareMs, CompileInstMs float64
	// Statements approximates the generated monitoring code volume
	// (the paper's "#New verilog" column).
	Statements int
	// SimBareHz / SimInstHz are simulation speeds (cycles per wall second)
	// on a fixed workload without and with instrumentation.
	SimBareHz, SimInstHz float64
	// FuzzPerHour extrapolates the instrumented fuzzing throughput.
	FuzzPerHour float64
}

// CompileOverhead is the relative compile-time increase (paper: 43-45%).
func (r Table2Row) CompileOverhead() float64 {
	if r.CompileBareMs == 0 {
		return 0
	}
	return r.CompileInstMs/r.CompileBareMs - 1
}

// SimSlowdown is the relative simulation slowdown (paper: 26-38%).
func (r Table2Row) SimSlowdown() float64 {
	if r.SimBareHz == 0 {
		return 0
	}
	return 1 - r.SimInstHz/r.SimBareHz
}

// alwaysOpen pins the monitoring window open during simulation-speed
// measurement (worst-case sampling load), ignoring the cores' transitions.
type alwaysOpen struct{ m *monitor.Monitor }

// SetWindow implements uarch.WindowObserver.
func (a alwaysOpen) SetWindow(bool) { a.m.SetWindow(true) }

// workload is the fixed program used for simulation-speed measurement.
func workload() *isa.Program {
	code := []isa.Instr{
		{Op: isa.LUI, Rd: 28, Imm: 0x40},
		isa.I(isa.ADDI, 1, 0, 1),
	}
	for i := 0; i < 40; i++ {
		code = append(code,
			isa.I(isa.ADDI, 1, 1, 1),
			isa.R(isa.MUL, 2, 1, 1),
			isa.Load(isa.LD, 3, 28, int64(i%32)*64),
			isa.R(isa.XOR, 4, 2, 3),
			isa.Store(isa.SD, 4, 28, int64(i%16)*64),
		)
	}
	code = append(code, isa.R(isa.DIV, 5, 2, 1), isa.Instr{Op: isa.ECALL})
	return isa.NewProgram(0x1_0000, code...)
}

// measureSimHzPair measures bare and instrumented simulation speeds with
// interleaved repetitions (after one warmup each), so allocator and cache
// warmup effects hit both sides equally.
func measureSimHzPair(bare, inst *uarch.SoC, reps int) (bareHz, instHz float64) {
	prog := workload()
	bare.RunProgram(prog) // warmup
	inst.RunProgram(prog)
	var bareCycles, instCycles int64
	var bareSec, instSec float64
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		bare.RunProgram(prog)
		bareSec += time.Since(t0).Seconds()
		bareCycles += bare.Cycle()
		t1 := time.Now()
		inst.RunProgram(prog)
		instSec += time.Since(t1).Seconds()
		instCycles += inst.Cycle()
	}
	if bareSec == 0 || instSec == 0 {
		return 0, 0
	}
	return float64(bareCycles) / bareSec, float64(instCycles) / instSec
}

// Table2 measures instrumentation overhead on both DUTs (paper Table 2).
func Table2(reps int) []Table2Row {
	if reps <= 0 {
		reps = 20
	}
	var out []Table2Row
	builders := []struct {
		name string
		mk   func() *uarch.SoC
	}{
		{"nutshell", nutshell.New},
		{"boom", boom.New},
	}
	for _, bld := range builders {
		row := Table2Row{DUT: bld.name}

		// Bare compile: elaboration only.
		t0 := time.Now()
		bare := bld.mk()
		row.CompileBareMs = float64(time.Since(t0).Microseconds()) / 1000

		// Instrumented compile: elaboration + analysis + instrumentation.
		t1 := time.Now()
		soc := bld.mk()
		analysis := trace.Analyze(soc.Net)
		mon := monitor.New(analysis, monitor.Config{SimilarityMask: ^uint64(uarch.LineBytes - 1)})
		row.CompileInstMs = float64(time.Since(t1).Microseconds()) / 1000
		row.ContentionPoints = len(analysis.Points)
		row.MonitoredPoints = mon.NumPoints()
		row.Statements = mon.Statements()

		// Simulation speed, bare vs instrumented. The instrumented run
		// opens the monitoring window for the whole program, the
		// worst-case sampling load.
		for _, c := range soc.Cores {
			c.SetWindowObserver(alwaysOpen{mon})
		}
		mon.SetWindow(true)
		row.SimBareHz, row.SimInstHz = measureSimHzPair(bare, soc, reps)

		// Fuzzing speed: a short campaign extrapolated to an hour.
		d := &fuzz.DUT{SoC: soc, Analysis: analysis, Mon: mon}
		for _, c := range soc.Cores {
			c.SetWindowObserver(mon)
		}
		iters := 30
		tf := time.Now()
		fuzz.Run(d, fuzz.SonarOptions(iters))
		row.FuzzPerHour = float64(iters) / time.Since(tf).Hours()
		out = append(out, row)
	}
	return out
}

// RenderTable2 formats the overhead table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: instrumentation overhead\n")
	fmt.Fprintf(&b, "  %-9s %8s %9s %12s %10s %14s %12s\n",
		"DUT", "points", "monitors", "compile(ms)", "stmts", "sim speed(Hz)", "fuzz(/hour)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-9s %8d %9d %6.0f(%+3.0f%%) %10d %7.0f(%+3.0f%%) %12.0f\n",
			r.DUT, r.ContentionPoints, r.MonitoredPoints,
			r.CompileInstMs, 100*r.CompileOverhead(),
			r.Statements,
			r.SimInstHz, -100*r.SimSlowdown(),
			r.FuzzPerHour)
	}
	return b.String()
}
