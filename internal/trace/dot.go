package trace

import (
	"fmt"
	"strings"

	"sonar/internal/hdl"
)

// EscapeLabel escapes a string for use inside a double-quoted Graphviz DOT
// label: backslashes and double quotes are backslash-escaped and literal
// newlines become the DOT line-break escape \n. Signal names with brackets,
// dots, or quotes pass through safely. Both Point.DOT and the audit DOT
// exporter (internal/hdl/flow) build labels with real newlines and quote
// them through this one helper.
func EscapeLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// DOT renders a contention point's MUX cascade tree in Graphviz DOT form:
// the tree root, interior 2:1 MUXes, select signals, and leaf requests with
// their validity. Useful when debugging a reported side channel — the
// picture shows exactly which requests can collide at the point.
func (p *Point) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph point%d {\n", p.ID)
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [fontname=monospace fontsize=10];\n")
	fmt.Fprintf(&b, "  out [label=\"%s\" shape=doubleoctagon];\n", EscapeLabel(p.Out.Name()))

	muxID := make(map[*hdl.Mux]int, len(p.Muxes))
	for i, m := range p.Muxes {
		muxID[m] = i
		fmt.Fprintf(&b, "  m%d [label=\"%s\" shape=invtrapezium];\n", i, EscapeLabel("mux\nsel: "+m.Sel.Local()))
	}
	fmt.Fprintf(&b, "  m0 -> out;\n")

	byOut := make(map[*hdl.Signal]*hdl.Mux, len(p.Muxes))
	for _, m := range p.Muxes {
		byOut[m.Out] = m
	}

	// Walk the tree exactly like the analysis (TVal before FVal), so leaf
	// order matches p.Requests.
	leaf := 0
	var walk func(m *hdl.Mux)
	walk = func(m *hdl.Mux) {
		for _, in := range []struct {
			sig  *hdl.Signal
			port string
		}{{m.TVal, "t"}, {m.FVal, "f"}} {
			if child, ok := byOut[in.sig]; ok && muxID[child] > muxID[m] {
				fmt.Fprintf(&b, "  m%d -> m%d [label=%q];\n", muxID[child], muxID[m], in.port)
				walk(child)
				continue
			}
			r := p.Requests[leaf]
			label := r.Data.Name()
			shape := "box"
			switch {
			case r.Data.IsConst():
				label = fmt.Sprintf("const %d", r.Data.Value())
				shape = "plaintext"
			case !r.HasValid():
				label += "\n(constantly valid)"
				shape = "box3d"
			default:
				valids := make([]string, len(r.Valids))
				for k, v := range r.Valids {
					valids[k] = v.Local()
				}
				label += "\nvalid: " + strings.Join(valids, " & ")
			}
			fmt.Fprintf(&b, "  r%d [label=\"%s\" shape=%s];\n", leaf, EscapeLabel(label), shape)
			fmt.Fprintf(&b, "  r%d -> m%d [label=%q];\n", leaf, muxID[m], in.port)
			leaf++
		}
	}
	walk(p.Root)
	b.WriteString("}\n")
	return b.String()
}
