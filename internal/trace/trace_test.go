package trace

import (
	"strings"
	"testing"

	"sonar/internal/firrtl"
	"sonar/internal/hdl"
)

// Figure 3 of the paper: bottom-up tracing over the ldq_stq_idx cascade
// identifies all requests, select signals, and the output.
func TestAnalyzeFigure3(t *testing.T) {
	n, err := firrtl.Parse(`
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input io_fwd_valid : UInt<1>
    input io_fwd_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    input sel_stq : UInt<1>
    output ldq_stq_idx : UInt<5>
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, mux(sel_stq, io_stq_bits_idx, io_fwd_bits_idx))
`)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(n)
	if a.NaiveMuxCount != 2 {
		t.Errorf("NaiveMuxCount = %d, want 2", a.NaiveMuxCount)
	}
	if len(a.Points) != 1 {
		t.Fatalf("points = %d, want 1 (one cascade, not two)", len(a.Points))
	}
	p := a.Points[0]
	if p.Out.Local() != "ldq_stq_idx" {
		t.Errorf("Out = %q, want ldq_stq_idx", p.Out.Local())
	}
	if p.Fanin() != 3 {
		t.Fatalf("Fanin = %d, want 3", p.Fanin())
	}
	wantReqs := []string{"io_ldq_bits_idx", "io_stq_bits_idx", "io_fwd_bits_idx"}
	wantValids := []string{"io_ldq_valid", "io_stq_valid", "io_fwd_valid"}
	for i, r := range p.Requests {
		if r.Data.Local() != wantReqs[i] {
			t.Errorf("request[%d] = %q, want %q", i, r.Data.Local(), wantReqs[i])
		}
		if len(r.Valids) != 1 || r.Valids[0].Local() != wantValids[i] {
			t.Errorf("request[%d] valids = %v, want [%s]", i, r.Valids, wantValids[i])
		}
		if r.Derived() {
			t.Errorf("request[%d] should be direct prefix match, not derived", i)
		}
	}
	if len(p.Selects) != 2 {
		t.Errorf("selects = %d, want 2", len(p.Selects))
	}
	if p.Selects[0].Local() != "sel_ldq" || p.Selects[1].Local() != "sel_stq" {
		t.Errorf("selects = [%s %s], want [sel_ldq sel_stq]", p.Selects[0].Local(), p.Selects[1].Local())
	}
	if len(p.Muxes) != 2 {
		t.Errorf("tree muxes = %d, want 2", len(p.Muxes))
	}
	if !p.Monitorable() {
		t.Error("point with valid requests must be monitorable")
	}
}

// The naive 2:1-MUX strategy overcounts cascades; tracing collapses them
// (paper Figure 6).
func TestTracingReducesPointCount(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("arb")
	const fanin = 8
	ins := make([]*hdl.Signal, fanin)
	sels := make([]*hdl.Signal, fanin-1)
	for i := range ins {
		ins[i] = m.Wire(sig("req", i, "bits"), 8)
		m.Wire(sig("req", i, "valid"), 1)
	}
	for i := range sels {
		sels[i] = m.Wire(sig("gnt", i, ""), 1)
	}
	m.MuxTree("out", sels, ins)
	a := Analyze(n)
	if a.NaiveMuxCount != fanin-1 {
		t.Errorf("NaiveMuxCount = %d, want %d", a.NaiveMuxCount, fanin-1)
	}
	if len(a.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(a.Points))
	}
	if a.Points[0].Fanin() != fanin {
		t.Errorf("fanin = %d, want %d", a.Points[0].Fanin(), fanin)
	}
	for i, r := range a.Points[0].Requests {
		if len(r.Valids) != 1 {
			t.Errorf("request %d (%s): no prefix valid found", i, r.Data.Name())
		}
	}
}

func sig(base string, i int, field string) string {
	name := base + "_" + string(rune('0'+i))
	if field != "" {
		name += "_" + field
	}
	return name
}

func TestSelfValidRequests(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("rob")
	sel := m.Wire("sel", 1)
	a := m.Wire("io_enq_valid", 1)
	b := m.Wire("io_deq_valid", 1)
	m.Mux("busy", sel, a, b)
	an := Analyze(n)
	if len(an.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(an.Points))
	}
	for i, r := range an.Points[0].Requests {
		if !r.SelfValid {
			t.Errorf("request %d not detected as self-valid", i)
		}
		if len(r.Valids) != 1 || r.Valids[0] != r.Data {
			t.Errorf("request %d: valid should be the request itself", i)
		}
	}
}

func TestDerivedValidityViaSources(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("lsu")
	aValid := m.Wire("io_a_valid", 1)
	aData := m.Wire("io_a_bits", 8)
	bValid := m.Wire("io_b_valid", 1)
	bData := m.Wire("io_b_bits", 8)
	// sum has no same-prefix valid, but its sources do: validity is the
	// AND of io_a_valid and io_b_valid (Algorithm 1 lines 4-7).
	sum := m.Wire("sum", 8)
	sum.AddSource(aData)
	sum.AddSource(bData)
	other := m.Wire("io_c_bits", 8)
	m.Wire("io_c_valid", 1)
	sel := m.Wire("sel", 1)
	m.Mux("out", sel, sum, other)

	a := Analyze(n)
	p := a.Points[0]
	r0 := p.Requests[0]
	if !r0.Derived() {
		t.Fatalf("sum validity should be derived, got valids=%v", r0.Valids)
	}
	got := map[string]bool{}
	for _, v := range r0.Valids {
		got[v.Local()] = true
	}
	if !got["io_a_valid"] || !got["io_b_valid"] || len(r0.Valids) != 2 {
		t.Errorf("derived valids = %v, want {io_a_valid, io_b_valid}", got)
	}
	_ = aValid
	_ = bValid
}

func TestUndeterminableSourceMakesConstantValid(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("x")
	aData := m.Wire("io_a_bits", 8)
	m.Wire("io_a_valid", 1)
	orphan := m.Wire("orphan", 8) // no valid, no sources
	mix := m.Wire("mix", 8)
	mix.AddSource(aData)
	mix.AddSource(orphan)
	sel := m.Wire("sel", 1)
	c := m.Const("k", 8, 0)
	m.Mux("out", sel, mix, c)
	a := Analyze(n)
	r := a.Points[0].Requests[0]
	if r.HasValid() {
		t.Errorf("mix should be constantly valid (orphan source), got %v", r.Valids)
	}
}

// §5.2: a 2:1 MUX selecting between two constants has no side-channel risk.
func TestConstantPointFiltered(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("cfg")
	sel := m.Wire("sel", 1)
	k1 := m.Const("k1", 8, 1)
	k2 := m.Const("k2", 8, 2)
	m.Mux("out", sel, k1, k2)
	a := Analyze(n)
	if len(a.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(a.Points))
	}
	p := a.Points[0]
	if !p.AllConstRequests() {
		t.Error("AllConstRequests = false, want true")
	}
	if p.Monitorable() {
		t.Error("constant point must be filtered out")
	}
	if len(a.Monitored()) != 0 {
		t.Error("Monitored() should be empty")
	}
}

// §5.2: if no request has a valid signal, reqsIntvl is constantly 0 and
// monitoring is meaningless.
func TestNoValidPointFiltered(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("dp")
	sel := m.Wire("sel", 1)
	a1 := m.Wire("alpha", 8) // no _valid anywhere, no sources
	a2 := m.Wire("beta", 8)
	m.Mux("out", sel, a1, a2)
	a := Analyze(n)
	p := a.Points[0]
	if p.AllConstRequests() {
		t.Error("requests are wires, not constants")
	}
	if p.AnyValid() {
		t.Error("no request should have a valid")
	}
	if p.Monitorable() {
		t.Error("point without valids must be filtered out")
	}
}

func TestByComponent(t *testing.T) {
	n := hdl.NewNetlist("D")
	build := func(mod string, withValid bool) {
		m := n.Module(mod)
		sel := m.Wire("sel", 1)
		a := m.Wire("io_a_bits", 8)
		b := m.Wire("io_b_bits", 8)
		if withValid {
			m.Wire("io_a_valid", 1)
			m.Wire("io_b_valid", 1)
		}
		m.Mux("out", sel, a, b)
	}
	build("lsu.ldq", true)
	build("lsu.stq", false)
	build("rob", true)
	a := Analyze(n)
	dist := a.ByComponent()
	if c := dist["lsu"]; c[0] != 2 || c[1] != 1 {
		t.Errorf("lsu = %v, want [2 1]", c)
	}
	if c := dist["rob"]; c[0] != 1 || c[1] != 1 {
		t.Errorf("rob = %v, want [1 1]", c)
	}
}

func TestSourceCycleDoesNotHang(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("x")
	a := m.Wire("a_bits", 8)
	b := m.Wire("b_bits", 8)
	a.AddSource(b)
	b.AddSource(a)
	sel := m.Wire("sel", 1)
	k := m.Const("k", 8, 0)
	m.Mux("out", sel, a, k)
	an := Analyze(n) // must terminate
	if len(an.Points) != 1 {
		t.Fatalf("points = %d", len(an.Points))
	}
}

func TestSharedSubtreeAppearsInBothPoints(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("x")
	sel := m.Wire("sel", 1)
	a := m.Wire("io_a_bits", 8)
	m.Wire("io_a_valid", 1)
	b := m.Wire("io_b_bits", 8)
	m.Wire("io_b_valid", 1)
	inner := m.Mux("inner", sel, a, b)
	c := m.Wire("io_c_bits", 8)
	m.Wire("io_c_valid", 1)
	d := m.Wire("io_d_bits", 8)
	m.Wire("io_d_valid", 1)
	s2 := m.Wire("sel2", 1)
	s3 := m.Wire("sel3", 1)
	m.Mux("out1", s2, inner.Out, c)
	m.Mux("out2", s3, inner.Out, d)
	an := Analyze(n)
	if len(an.Points) != 2 {
		t.Fatalf("points = %d, want 2 roots", len(an.Points))
	}
	for _, p := range an.Points {
		if p.Fanin() != 3 {
			t.Errorf("point %s fanin = %d, want 3 (shared subtree included)", p.Out.Name(), p.Fanin())
		}
	}
}

func TestComponentOfTopLevelSignals(t *testing.T) {
	n := hdl.NewNetlist("D")
	sel := n.Wire("sel", 1)
	a := n.Wire("a", 8)
	b := n.Wire("b", 8)
	out := n.Wire("out", 8)
	n.Mux(out, sel, a, b)
	an := Analyze(n)
	if an.Points[0].Component != "(top)" {
		t.Errorf("component = %q, want (top)", an.Points[0].Component)
	}
}

func TestDOTExport(t *testing.T) {
	n := hdl.NewNetlist("D")
	m := n.Module("arb")
	ins := make([]*hdl.Signal, 4)
	sels := make([]*hdl.Signal, 3)
	for i := range ins {
		ins[i] = m.Wire(sig("io_req", i, "bits"), 8)
		m.Wire(sig("io_req", i, "valid"), 1)
	}
	for i := range sels {
		sels[i] = m.Wire(sig("gnt", i, ""), 1)
	}
	m.MuxTree("out", sels, ins)
	a := Analyze(n)
	p := a.Points[0]
	dot := p.DOT()
	for _, want := range []string{
		"digraph point0", "doubleoctagon", "arb.out",
		"io_req_0_bits", "io_req_3_bits", "io_req_0_valid",
		"m0 -> out",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Leaf order must match the request order: request 0 (priority) first.
	if strings.Index(dot, "io_req_0_bits") > strings.Index(dot, "io_req_3_bits") {
		t.Error("leaf emission order does not match request priority order")
	}
	// Constants and constantly-valid leaves render specially.
	n2 := hdl.NewNetlist("K")
	m2 := n2.Module("cfg")
	s2 := m2.Wire("sel", 1)
	cv := m2.Wire("io_a_bits", 8)
	m2.Wire("io_a_valid", 1)
	k := m2.Const("tie", 8, 42)
	m2.Mux("o", s2, cv, k)
	dot2 := Analyze(n2).Points[0].DOT()
	if !strings.Contains(dot2, "const 42") {
		t.Errorf("constant leaf not rendered:\n%s", dot2)
	}
}
