package trace

import (
	"strings"

	"sonar/internal/hdl"
)

// validity implements the request validity determination logic of paper
// Algorithm 1. Results are memoized per data signal.
type validity struct {
	net  *hdl.Netlist
	memo map[*hdl.Signal][]*hdl.Signal
	// walking guards against cycles in declared fan-in.
	walking map[*hdl.Signal]bool
}

func newValidity(n *hdl.Netlist) *validity {
	return &validity{
		net:     n,
		memo:    make(map[*hdl.Signal][]*hdl.Signal, n.NumMuxes()),
		walking: make(map[*hdl.Signal]bool, 16),
	}
}

// request builds the Request descriptor for a leaf data signal.
func (v *validity) request(data *hdl.Signal) Request {
	r := Request{Data: data}
	if data.IsConst() {
		// The validity field of a constant is always considered valid
		// (paper §5.2) — no valid signal.
		return r
	}
	if isSelfValid(data) {
		r.SelfValid = true
		r.Valids = []*hdl.Signal{data}
		return r
	}
	r.Valids = v.valids(data)
	return r
}

// valids returns the set of signals whose AND indicates validity of data,
// or nil if the request must be considered constantly valid.
func (v *validity) valids(data *hdl.Signal) []*hdl.Signal {
	if got, ok := v.memo[data]; ok {
		return got
	}
	if v.walking[data] {
		return nil
	}
	v.walking[data] = true
	defer delete(v.walking, data)

	// Step 1 (Algorithm 1, line 3): pattern-match a valid signal sharing a
	// name prefix with the data field. io_commit_uops_inst tries
	// io_commit_uops_inst_valid, io_commit_uops_valid, io_commit_valid,
	// io_valid.
	if s := v.prefixValid(data); s != nil {
		v.memo[data] = []*hdl.Signal{s}
		return v.memo[data]
	}

	// Step 2 (lines 4-7): trace back to the data field's source signals;
	// if validity fields are found for all non-constant sources, the
	// request's validity is the bitwise AND of all source validities.
	srcs := data.Sources()
	if len(srcs) == 0 {
		v.memo[data] = nil
		return nil
	}
	var acc []*hdl.Signal
	seen := make(map[*hdl.Signal]bool)
	for _, src := range srcs {
		if src.IsConst() {
			continue // constants are always valid; contribute nothing
		}
		var sv []*hdl.Signal
		if isSelfValid(src) {
			sv = []*hdl.Signal{src}
		} else {
			sv = v.valids(src)
		}
		if sv == nil {
			// A source with undeterminable validity makes the whole
			// conjunction undeterminable: fall through to constantly-valid.
			v.memo[data] = nil
			return nil
		}
		for _, s := range sv {
			if !seen[s] {
				seen[s] = true
				acc = append(acc, s)
			}
		}
	}
	v.memo[data] = acc
	return acc
}

// prefixValid searches for a 1-bit signal named <prefix>_valid where prefix
// is a progressively shortened prefix of the data signal name. Matching is
// done on the full hierarchical name, so the valid signal must live in the
// same module as the data field — the paper's "same prefix" convention.
func (v *validity) prefixValid(data *hdl.Signal) *hdl.Signal {
	name := data.Name()
	for prefix := name; ; {
		if s, ok := v.net.Signal(prefix + "_valid"); ok && s.Width() == 1 && s != data {
			return s
		}
		i := strings.LastIndexByte(prefix, '_')
		// Do not strip past the module path ("lsu.ldq" stays intact).
		if i < 0 || i < strings.LastIndexByte(prefix, '.') {
			return nil
		}
		prefix = prefix[:i]
	}
}

// isSelfValid reports whether a signal is itself a validity-style bit: a
// 1-bit signal whose local name is "valid" or ends in "_valid". The paper
// observes (Figure 9) that many early-triggered contention points have
// requests that are exactly such signals.
func isSelfValid(s *hdl.Signal) bool {
	if s.Width() != 1 {
		return false
	}
	local := s.Local()
	return local == "valid" || strings.HasSuffix(local, "_valid")
}
