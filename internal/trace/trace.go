// Package trace implements Sonar's contention-critical state identification
// (paper §5): locating contention points via bottom-up MUX tracing,
// determining request validity (Algorithm 1), and filtering out states
// without side-channel risk (§5.2).
package trace

import (
	"fmt"
	"strings"
	"sync/atomic"

	"sonar/internal/hdl"
)

// Request is one leaf of an n:1 MUX cascade tree — a request arriving at a
// contention point.
type Request struct {
	// Data is the request's data field (the MUX leaf signal).
	Data *hdl.Signal
	// Valids are the signals whose conjunction indicates the request is
	// valid. Empty means no validity could be determined: the request is
	// considered constantly valid (paper Algorithm 1, final fallback).
	// A single entry is a directly matched valid signal; multiple entries
	// are source-derived (their bitwise AND is the validity).
	Valids []*hdl.Signal
	// SelfValid reports that the request data signal is itself a 1-bit
	// valid-style signal (the "single valid signal dominance" case the
	// paper observes in Figure 9).
	SelfValid bool
}

// HasValid reports whether the request carries any validity indication.
func (r *Request) HasValid() bool { return len(r.Valids) > 0 }

// Derived reports whether validity was derived by tracing data sources
// rather than matched directly by prefix.
func (r *Request) Derived() bool { return len(r.Valids) > 1 }

// Point is a contention point: an n:1 selection reconstructed from a
// cascade of 2:1 MUXes via bottom-up tracing (paper §5.1, Figure 3).
type Point struct {
	// ID is the index of the point within its analysis.
	ID int
	// Root is the topmost 2:1 MUX; Out is its output signal.
	Root *hdl.Mux
	// Out is the contention point output.
	Out *hdl.Signal
	// Muxes are all 2:1 MUXes in the cascade tree.
	Muxes []*hdl.Mux
	// Requests are the tree leaves in select-priority order.
	Requests []Request
	// Selects are the select signals of all MUXes in the tree.
	Selects []*hdl.Signal
	// ConstSelects are the tree's MUXes whose select is a literal constant:
	// those selections never switch, so the sub-tree behind the dead branch
	// can never contend. The structural netlist verifier (hdl/check) reports
	// the same muxes as const-select findings.
	ConstSelects []*hdl.Mux
	// Component is the top-level module segment owning the point, used for
	// distribution reports (paper Figure 7).
	Component string
}

// AllConstRequests reports whether every request at the point is a literal
// constant (paper §5.2: such points never expose timing differences).
func (p *Point) AllConstRequests() bool {
	for i := range p.Requests {
		if !p.Requests[i].Data.IsConst() {
			return false
		}
	}
	return true
}

// AnyValid reports whether at least one request carries a validity
// indication. If none does, all requests are considered valid on every
// cycle and reqsIntvl is the constant 0 — dynamic monitoring is meaningless
// (paper §5.2).
func (p *Point) AnyValid() bool {
	for i := range p.Requests {
		if p.Requests[i].HasValid() {
			return true
		}
	}
	return false
}

// Monitorable reports whether the point survives the §5.2 risk filter and
// should receive reqsIntvl instrumentation.
func (p *Point) Monitorable() bool {
	return !p.AllConstRequests() && p.AnyValid()
}

// Fanin returns the number of requests (the n of the n:1 selection).
func (p *Point) Fanin() int { return len(p.Requests) }

// Analysis is the result of contention-point identification on a netlist.
type Analysis struct {
	// Netlist is the analyzed design.
	Netlist *hdl.Netlist
	// Points are the identified contention points (MUX cascade roots).
	Points []*Point
	// NaiveMuxCount is the total number of 2:1 MUXes — what the "2:1
	// MUX-based" strategy the paper compares against would report
	// (Figure 6).
	NaiveMuxCount int
}

// Monitored returns the points that survive the §5.2 filter.
func (a *Analysis) Monitored() []*Point {
	var out []*Point
	for _, p := range a.Points {
		if p.Monitorable() {
			out = append(out, p)
		}
	}
	return out
}

// ByComponent returns contention-point counts per top-level component,
// before and after filtering (paper Figure 7).
func (a *Analysis) ByComponent() map[string][2]int {
	m := make(map[string][2]int)
	for _, p := range a.Points {
		c := m[p.Component]
		c[0]++
		if p.Monitorable() {
			c[1]++
		}
		m[p.Component] = c
	}
	return m
}

// Analyze identifies all contention points in a netlist by bottom-up MUX
// tracing and determines request validity for every leaf. Its cost is
// linear in the number of MUXes (each MUX belongs to a bounded number of
// cascade trees), the property the paper contrasts with SpecDoctor's O(n²)
// instrumentation (§8.3.4).
func Analyze(n *hdl.Netlist) *Analysis {
	analyzeCalls.Add(1)
	a := &Analysis{Netlist: n, NaiveMuxCount: n.NumMuxes()}
	a.Points = make([]*Point, 0, n.NumMuxes()/2)
	v := newValidity(n)
	for _, m := range n.Muxes() {
		if n.IsMuxDataInput(m.Out) {
			continue // interior node of some cascade, not a root
		}
		p := &Point{
			ID:        len(a.Points),
			Root:      m,
			Out:       m.Out,
			Component: component(m.ModulePath()),
		}
		collect(n, m, p, v)
		a.Points = append(a.Points, p)
	}
	return a
}

// collect walks a cascade tree from mux m, appending interior muxes,
// selects, and leaf requests to p. Leaves are visited TVal before FVal so
// Requests end up in select-priority order.
func collect(n *hdl.Netlist, m *hdl.Mux, p *Point, v *validity) {
	p.Muxes = append(p.Muxes, m)
	p.Selects = append(p.Selects, m.Sel)
	if m.Sel.IsConst() {
		p.ConstSelects = append(p.ConstSelects, m)
	}
	for _, in := range []*hdl.Signal{m.TVal, m.FVal} {
		if child, ok := n.Driver(in); ok {
			collect(n, child, p, v)
			continue
		}
		p.Requests = append(p.Requests, v.request(in))
	}
}

// analyzeCalls counts Analyze invocations process-wide. Sharing one analysis
// across parallel workers (Analysis.Rebind) is cheap only if full analyses
// actually stop happening; the counter lets tests assert that.
var analyzeCalls atomic.Int64

// AnalyzeCalls returns the number of times Analyze has run in this process.
func AnalyzeCalls() int64 { return analyzeCalls.Load() }

// Rebind returns a copy of the analysis with every signal and mux reference
// remapped onto n, an independently elaborated instance of the same design.
// Elaboration is deterministic, so dense ids line up one-to-one between
// instances (see Signal.ID); remapping is a flat table walk, orders of
// magnitude cheaper than re-running Analyze with its validity tracing.
// Rebind panics if n is a different design (name or element counts differ).
func (a *Analysis) Rebind(n *hdl.Netlist) *Analysis {
	src := a.Netlist
	if n.Name() != src.Name() || n.NumSignals() != src.NumSignals() || n.NumMuxes() != src.NumMuxes() {
		panic(fmt.Sprintf("trace: Rebind onto incompatible netlist %q (%d signals, %d muxes) from %q (%d signals, %d muxes)",
			n.Name(), n.NumSignals(), n.NumMuxes(), src.Name(), src.NumSignals(), src.NumMuxes()))
	}
	sig := func(s *hdl.Signal) *hdl.Signal {
		if s == nil {
			return nil
		}
		return n.SignalByID(s.ID())
	}
	out := &Analysis{Netlist: n, NaiveMuxCount: a.NaiveMuxCount}
	out.Points = make([]*Point, len(a.Points))
	for i, p := range a.Points {
		q := &Point{
			ID:        p.ID,
			Root:      n.MuxByID(p.Root.ID()),
			Out:       sig(p.Out),
			Component: p.Component,
			Muxes:     make([]*hdl.Mux, len(p.Muxes)),
			Selects:   make([]*hdl.Signal, len(p.Selects)),
			Requests:  make([]Request, len(p.Requests)),
		}
		for j, m := range p.Muxes {
			q.Muxes[j] = n.MuxByID(m.ID())
		}
		if len(p.ConstSelects) > 0 {
			q.ConstSelects = make([]*hdl.Mux, len(p.ConstSelects))
			for j, m := range p.ConstSelects {
				q.ConstSelects[j] = n.MuxByID(m.ID())
			}
		}
		for j, s := range p.Selects {
			q.Selects[j] = sig(s)
		}
		for j := range p.Requests {
			r := &p.Requests[j]
			valids := make([]*hdl.Signal, len(r.Valids))
			for k, v := range r.Valids {
				valids[k] = sig(v)
			}
			q.Requests[j] = Request{Data: sig(r.Data), Valids: valids, SelfValid: r.SelfValid}
		}
		out.Points[i] = q
	}
	return out
}

// component extracts the top-level module segment from a module path.
func component(path string) string {
	if path == "" {
		return "(top)"
	}
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}
