// Package trace implements Sonar's contention-critical state identification
// (paper §5): locating contention points via bottom-up MUX tracing,
// determining request validity (Algorithm 1), and filtering out states
// without side-channel risk (§5.2).
package trace

import (
	"strings"

	"sonar/internal/hdl"
)

// Request is one leaf of an n:1 MUX cascade tree — a request arriving at a
// contention point.
type Request struct {
	// Data is the request's data field (the MUX leaf signal).
	Data *hdl.Signal
	// Valids are the signals whose conjunction indicates the request is
	// valid. Empty means no validity could be determined: the request is
	// considered constantly valid (paper Algorithm 1, final fallback).
	// A single entry is a directly matched valid signal; multiple entries
	// are source-derived (their bitwise AND is the validity).
	Valids []*hdl.Signal
	// SelfValid reports that the request data signal is itself a 1-bit
	// valid-style signal (the "single valid signal dominance" case the
	// paper observes in Figure 9).
	SelfValid bool
}

// HasValid reports whether the request carries any validity indication.
func (r *Request) HasValid() bool { return len(r.Valids) > 0 }

// Derived reports whether validity was derived by tracing data sources
// rather than matched directly by prefix.
func (r *Request) Derived() bool { return len(r.Valids) > 1 }

// Point is a contention point: an n:1 selection reconstructed from a
// cascade of 2:1 MUXes via bottom-up tracing (paper §5.1, Figure 3).
type Point struct {
	// ID is the index of the point within its analysis.
	ID int
	// Root is the topmost 2:1 MUX; Out is its output signal.
	Root *hdl.Mux
	// Out is the contention point output.
	Out *hdl.Signal
	// Muxes are all 2:1 MUXes in the cascade tree.
	Muxes []*hdl.Mux
	// Requests are the tree leaves in select-priority order.
	Requests []Request
	// Selects are the select signals of all MUXes in the tree.
	Selects []*hdl.Signal
	// Component is the top-level module segment owning the point, used for
	// distribution reports (paper Figure 7).
	Component string
}

// AllConstRequests reports whether every request at the point is a literal
// constant (paper §5.2: such points never expose timing differences).
func (p *Point) AllConstRequests() bool {
	for i := range p.Requests {
		if !p.Requests[i].Data.IsConst() {
			return false
		}
	}
	return true
}

// AnyValid reports whether at least one request carries a validity
// indication. If none does, all requests are considered valid on every
// cycle and reqsIntvl is the constant 0 — dynamic monitoring is meaningless
// (paper §5.2).
func (p *Point) AnyValid() bool {
	for i := range p.Requests {
		if p.Requests[i].HasValid() {
			return true
		}
	}
	return false
}

// Monitorable reports whether the point survives the §5.2 risk filter and
// should receive reqsIntvl instrumentation.
func (p *Point) Monitorable() bool {
	return !p.AllConstRequests() && p.AnyValid()
}

// Fanin returns the number of requests (the n of the n:1 selection).
func (p *Point) Fanin() int { return len(p.Requests) }

// Analysis is the result of contention-point identification on a netlist.
type Analysis struct {
	// Netlist is the analyzed design.
	Netlist *hdl.Netlist
	// Points are the identified contention points (MUX cascade roots).
	Points []*Point
	// NaiveMuxCount is the total number of 2:1 MUXes — what the "2:1
	// MUX-based" strategy the paper compares against would report
	// (Figure 6).
	NaiveMuxCount int
}

// Monitored returns the points that survive the §5.2 filter.
func (a *Analysis) Monitored() []*Point {
	var out []*Point
	for _, p := range a.Points {
		if p.Monitorable() {
			out = append(out, p)
		}
	}
	return out
}

// ByComponent returns contention-point counts per top-level component,
// before and after filtering (paper Figure 7).
func (a *Analysis) ByComponent() map[string][2]int {
	m := make(map[string][2]int)
	for _, p := range a.Points {
		c := m[p.Component]
		c[0]++
		if p.Monitorable() {
			c[1]++
		}
		m[p.Component] = c
	}
	return m
}

// Analyze identifies all contention points in a netlist by bottom-up MUX
// tracing and determines request validity for every leaf. Its cost is
// linear in the number of MUXes (each MUX belongs to a bounded number of
// cascade trees), the property the paper contrasts with SpecDoctor's O(n²)
// instrumentation (§8.3.4).
func Analyze(n *hdl.Netlist) *Analysis {
	a := &Analysis{Netlist: n, NaiveMuxCount: n.NumMuxes()}
	a.Points = make([]*Point, 0, n.NumMuxes()/2)
	v := newValidity(n)
	for _, m := range n.Muxes() {
		if n.IsMuxDataInput(m.Out) {
			continue // interior node of some cascade, not a root
		}
		p := &Point{
			ID:        len(a.Points),
			Root:      m,
			Out:       m.Out,
			Component: component(m.ModulePath()),
		}
		collect(n, m, p, v)
		a.Points = append(a.Points, p)
	}
	return a
}

// collect walks a cascade tree from mux m, appending interior muxes,
// selects, and leaf requests to p. Leaves are visited TVal before FVal so
// Requests end up in select-priority order.
func collect(n *hdl.Netlist, m *hdl.Mux, p *Point, v *validity) {
	p.Muxes = append(p.Muxes, m)
	p.Selects = append(p.Selects, m.Sel)
	for _, in := range []*hdl.Signal{m.TVal, m.FVal} {
		if child, ok := n.Driver(in); ok {
			collect(n, child, p, v)
			continue
		}
		p.Requests = append(p.Requests, v.request(in))
	}
}

// component extracts the top-level module segment from a module path.
func component(path string) string {
	if path == "" {
		return "(top)"
	}
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}
