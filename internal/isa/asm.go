package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses one line of assembler syntax (the format produced by
// Instr.String) into an instruction.
func Assemble(line string) (Instr, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t'
	})
	if len(fields) == 0 {
		return Instr{}, fmt.Errorf("isa: empty line")
	}
	mn := strings.ToLower(fields[0])
	op, ok := opByName(mn)
	if !ok {
		return Instr{}, fmt.Errorf("isa: unknown mnemonic %q", mn)
	}
	args := fields[1:]
	argN := func(i int) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("isa: %s: missing operand %d", mn, i+1)
		}
		return args[i], nil
	}
	switch {
	case op == FENCE || op == ECALL:
		return Instr{Op: op}, nil
	case op == RDCYCLE:
		a, err := argN(0)
		if err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(a)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: RDCYCLE, Rd: rd}, nil
	case op == LUI || op == JAL:
		a0, err := argN(0)
		if err != nil {
			return Instr{}, err
		}
		a1, err := argN(1)
		if err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(a0)
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(a1)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Rd: rd, Imm: imm}, nil
	case op.IsBranch():
		if len(args) != 3 {
			return Instr{}, fmt.Errorf("isa: %s expects 3 operands", mn)
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Branch(op, rs1, rs2, imm), nil
	case op.IsLoad():
		a0, err := argN(0)
		if err != nil {
			return Instr{}, err
		}
		a1, err := argN(1)
		if err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(a0)
		if err != nil {
			return Instr{}, err
		}
		imm, rs1, err := parseMemOperand(a1)
		if err != nil {
			return Instr{}, err
		}
		return Load(op, rd, rs1, imm), nil
	case op == SCD:
		a0, err := argN(0)
		if err != nil {
			return Instr{}, err
		}
		a1, err := argN(1)
		if err != nil {
			return Instr{}, err
		}
		a2, err := argN(2)
		if err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(a0)
		if err != nil {
			return Instr{}, err
		}
		rs2, err := parseReg(a1)
		if err != nil {
			return Instr{}, err
		}
		_, rs1, err := parseMemOperand(a2)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: SCD, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case op.IsStore():
		a0, err := argN(0)
		if err != nil {
			return Instr{}, err
		}
		a1, err := argN(1)
		if err != nil {
			return Instr{}, err
		}
		rs2, err := parseReg(a0)
		if err != nil {
			return Instr{}, err
		}
		imm, rs1, err := parseMemOperand(a1)
		if err != nil {
			return Instr{}, err
		}
		return Store(op, rs2, rs1, imm), nil
	case op.HasRs2():
		if len(args) != 3 {
			return Instr{}, fmt.Errorf("isa: %s expects 3 operands", mn)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return Instr{}, err
		}
		return R(op, rd, rs1, rs2), nil
	}
	// Register-register or register-immediate three-operand forms.
	if len(args) != 3 {
		return Instr{}, fmt.Errorf("isa: %s expects 3 operands", mn)
	}
	rd, err := parseReg(args[0])
	if err != nil {
		return Instr{}, err
	}
	rs1, err := parseReg(args[1])
	if err != nil {
		return Instr{}, err
	}
	imm, err := parseImm(args[2])
	if err != nil {
		return Instr{}, err
	}
	return I(op, rd, rs1, imm), nil
}

func opByName(name string) (Op, bool) {
	for op := Op(0); op < numOps; op++ {
		if opNames[op] == name {
			return op, true
		}
	}
	return 0, false
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'x' {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("isa: bad immediate %q", s)
	}
	return v, nil
}

// parseMemOperand parses "imm(xN)".
func parseMemOperand(s string) (int64, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("isa: bad memory operand %q", s)
	}
	var imm int64
	var err error
	if open > 0 {
		imm, err = parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	reg, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

// AssembleProgram parses a newline-separated listing. Blank lines and
// comment-only lines are skipped.
func AssembleProgram(src string) ([]Instr, error) {
	var out []Instr
	for ln, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if i := strings.IndexByte(trimmed, '#'); i >= 0 {
			trimmed = strings.TrimSpace(trimmed[:i])
		}
		if trimmed == "" {
			continue
		}
		ins, err := Assemble(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, ins)
	}
	return out, nil
}
