package isa

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Program is an instruction sequence placed at a base address.
type Program struct {
	Base uint64  // load address of the first instruction
	Code []Instr // the instruction sequence
}

// NewProgram creates a program at the given base address.
func NewProgram(base uint64, code ...Instr) *Program {
	return &Program{Base: base, Code: code}
}

// Append adds instructions to the end of the program.
func (p *Program) Append(code ...Instr) { p.Code = append(p.Code, code...) }

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// End returns the first address past the program.
func (p *Program) End() uint64 { return p.Base + uint64(4*len(p.Code)) }

// AddrOf returns the address of instruction index i.
func (p *Program) AddrOf(i int) uint64 { return p.Base + uint64(4*i) }

// IndexOf returns the instruction index of an address, or -1 if the address
// is outside the program or misaligned.
func (p *Program) IndexOf(addr uint64) int {
	if addr < p.Base || addr >= p.End() || (addr-p.Base)%4 != 0 {
		return -1
	}
	return int(addr-p.Base) / 4
}

// Image renders the program as a little-endian binary image.
func (p *Program) Image() []byte {
	return p.AppendImage(nil)
}

// AppendImage appends the little-endian binary image of the program to dst
// and returns the extended slice. Passing a recycled buffer makes repeated
// image rendering allocation-free.
//
//sonar:alloc-free
func (p *Program) AppendImage(dst []byte) []byte {
	off := len(dst)
	if need := off + 4*len(p.Code); cap(dst) < need {
		grown := make([]byte, need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}
	for i, ins := range p.Code {
		binary.LittleEndian.PutUint32(dst[off+4*i:], ins.Encode())
	}
	return dst
}

// LoadImage decodes a little-endian binary image into a program.
func LoadImage(base uint64, img []byte) (*Program, error) {
	if len(img)%4 != 0 {
		return nil, fmt.Errorf("isa: image length %d not word-aligned", len(img))
	}
	p := &Program{Base: base, Code: make([]Instr, len(img)/4)}
	for i := range p.Code {
		ins, err := Decode(binary.LittleEndian.Uint32(img[4*i:]))
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i, err)
		}
		p.Code[i] = ins
	}
	return p, nil
}

// Listing renders the program as an assembler listing with addresses.
func (p *Program) Listing() string {
	var b strings.Builder
	for i, ins := range p.Code {
		fmt.Fprintf(&b, "%08x: %s\n", p.AddrOf(i), ins)
	}
	return b.String()
}

// DepChain builds a length-n dependency chain on register reg: each addi
// depends on the previous one, so operand parsing time grows with n. The
// fuzzer's directed mutation inserts or removes instructions at the head of
// such chains to shift request timing (paper §6.2.1).
func DepChain(reg uint8, n int) []Instr {
	chain := make([]Instr, n)
	for i := range chain {
		chain[i] = I(ADDI, reg, reg, 1)
	}
	return chain
}
