// Package isa implements the RISC-V subset Sonar's testcases are written
// in: RV64I integer arithmetic, loads/stores, branches, the M extension
// (the paper's DUTs are RV64GC and RV64IMAC), LR/SC atomics (side channel
// S10 needs store-conditional), and the cycle CSR read used by timing
// measurements. Instructions carry full RV64 binary encodings so programs
// can round-trip through memory images.
package isa

import "fmt"

// Op identifies an instruction operation.
type Op uint8

// Operations in the supported subset.
const (
	ADD Op = iota
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	SLLI
	SRLI
	SRAI
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	LUI
	MUL
	DIV
	REM
	LD
	LW
	SD
	SW
	LRD // lr.d
	SCD // sc.d
	BEQ
	BNE
	JAL
	RDCYCLE
	FENCE
	ECALL
	numOps
)

var opNames = [numOps]string{
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	SLLI: "slli", SRLI: "srli", SRAI: "srai",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
	LUI: "lui",
	MUL: "mul", DIV: "div", REM: "rem",
	LD: "ld", LW: "lw", SD: "sd", SW: "sw",
	LRD: "lr.d", SCD: "sc.d",
	BEQ: "beq", BNE: "bne", JAL: "jal",
	RDCYCLE: "rdcycle", FENCE: "fence", ECALL: "ecall",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsALU reports whether the op executes on an integer ALU.
func (o Op) IsALU() bool {
	switch o {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
		SLLI, SRLI, SRAI, ADDI, ANDI, ORI, XORI, SLTI, LUI:
		return true
	}
	return false
}

// IsMul reports whether the op uses the multiplier.
func (o Op) IsMul() bool { return o == MUL }

// IsDiv reports whether the op uses the divider.
func (o Op) IsDiv() bool { return o == DIV || o == REM }

// IsLoad reports whether the op reads data memory.
func (o Op) IsLoad() bool { return o == LD || o == LW || o == LRD }

// IsStore reports whether the op writes data memory.
func (o Op) IsStore() bool { return o == SD || o == SW || o == SCD }

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports whether the op is a conditional branch.
func (o Op) IsBranch() bool { return o == BEQ || o == BNE }

// IsJump reports whether the op is an unconditional jump.
func (o Op) IsJump() bool { return o == JAL }

// HasRd reports whether the op writes a destination register.
func (o Op) HasRd() bool {
	switch o {
	case SD, SW, BEQ, BNE, FENCE, ECALL:
		return false
	}
	return o < numOps
}

// HasRs1 reports whether the op reads rs1.
func (o Op) HasRs1() bool {
	switch o {
	case LUI, JAL, RDCYCLE, FENCE, ECALL:
		return false
	}
	return o < numOps
}

// HasRs2 reports whether the op reads rs2.
func (o Op) HasRs2() bool {
	switch o {
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU, MUL, DIV, REM, SD, SW, SCD, BEQ, BNE:
		return true
	}
	return false
}

// MemBytes returns the access width in bytes for memory ops, 0 otherwise.
func (o Op) MemBytes() int {
	switch o {
	case LD, SD, LRD, SCD:
		return 8
	case LW, SW:
		return 4
	}
	return 0
}
