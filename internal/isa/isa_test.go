package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeGolden(t *testing.T) {
	cases := []struct {
		ins  Instr
		want uint32
	}{
		{R(ADD, 3, 1, 2), 0x002081b3},
		{R(SUB, 3, 1, 2), 0x402081b3},
		{R(MUL, 5, 6, 7), 0x027302b3},
		{R(DIV, 5, 6, 7), 0x027342b3},
		{I(ADDI, 1, 0, 42), 0x02a00093},
		{I(ADDI, 1, 1, -1), 0xfff08093},
		{Load(LD, 2, 1, 8), 0x0080b103},
		{Store(SD, 2, 1, 8), 0x0020b423},
		{Branch(BEQ, 1, 2, 8), 0x00208463},
		{Instr{Op: JAL, Rd: 1, Imm: 16}, 0x010000ef},
		{Instr{Op: ECALL}, 0x00000073},
		{Instr{Op: RDCYCLE, Rd: 10}, 0xc0002573},
	}
	for _, c := range cases {
		got := c.ins.Encode()
		if got != c.want {
			t.Errorf("Encode(%s) = %#08x, want %#08x", c.ins, got, c.want)
		}
		back, err := Decode(got)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", got, err)
			continue
		}
		if back != c.ins {
			t.Errorf("Decode(Encode(%s)) = %s", c.ins, back)
		}
	}
}

// randomInstr generates a valid instruction in the subset with in-range
// operands.
func randomInstr(r *rand.Rand) Instr {
	op := Op(r.Intn(int(numOps)))
	ins := Instr{Op: op}
	if op.HasRd() {
		ins.Rd = uint8(r.Intn(32))
	}
	if op.HasRs1() {
		ins.Rs1 = uint8(r.Intn(32))
	}
	if op.HasRs2() {
		ins.Rs2 = uint8(r.Intn(32))
	}
	switch {
	case op == LUI:
		ins.Imm = int64(r.Intn(1 << 20))
	case op == JAL:
		ins.Imm = int64(r.Intn(1<<19))*2 - (1 << 19) // even, ±2^19
	case op.IsBranch():
		ins.Imm = int64(r.Intn(1<<11))*2 - (1 << 11) // even, ±2^11
	case op == SLLI || op == SRLI || op == SRAI:
		ins.Imm = int64(r.Intn(64)) // 6-bit shift amount
	case op == LRD:
		ins.Rs2 = 0
		ins.Imm = 0
	case op == SCD:
		ins.Imm = 0
	case op.IsMem() || op.IsALU():
		if op != LUI {
			ins.Imm = int64(r.Intn(1<<12)) - (1 << 11) // ±2^11
		}
	}
	if op == RDCYCLE || op == FENCE || op == ECALL {
		ins.Imm = 0
		ins.Rs1, ins.Rs2 = 0, 0
		if op != RDCYCLE {
			ins.Rd = 0
		}
	}
	if op.IsALU() && op.HasRs2() {
		ins.Imm = 0 // R-type carries no immediate
	}
	return ins
}

// Property: Decode(Encode(i)) == i over the whole subset.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		ins := randomInstr(r)
		back, err := Decode(ins.Encode())
		if err != nil {
			t.Fatalf("Decode(Encode(%s)) error: %v", ins, err)
		}
		if back != ins {
			t.Fatalf("round trip: %s -> %#08x -> %s", ins, ins.Encode(), back)
		}
	}
}

// Property: Assemble(String(i)) == i.
func TestQuickAsmRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		ins := randomInstr(r)
		back, err := Assemble(ins.String())
		if err != nil {
			t.Fatalf("Assemble(%q): %v", ins.String(), err)
		}
		if back != ins {
			t.Fatalf("asm round trip: %s -> %s", ins, back)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// 0x7f is an unused opcode; 0xffffffff hits opcOp with bogus funct7.
	for _, w := range []uint32{0xffffffff, 0x00000001, 0x0000007f} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded, want error", w)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"", "bogus x1, x2, x3", "add x1, x2", "add x99, x2, x3",
		"ld x1, 8(y2)", "ld x1, zz(x2)", "addi x1, x2, banana",
		"beq x1, x2", "# only a comment",
	}
	for _, line := range bad {
		if _, err := Assemble(line); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", line)
		}
	}
}

func TestAssembleProgram(t *testing.T) {
	src := `
# a tiny kernel
addi x1, x0, 5
addi x2, x0, 3    # comment
mul x3, x1, x2
sd x3, 0(x4)
`
	code, err := AssembleProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 4 {
		t.Fatalf("len = %d, want 4", len(code))
	}
	if code[2].Op != MUL || code[2].Rd != 3 {
		t.Errorf("instr 2 = %s", code[2])
	}
	if _, err := AssembleProgram("addi x1, x0, 1\nbroken"); err == nil {
		t.Error("AssembleProgram with bad line succeeded")
	}
}

func TestReadsWrites(t *testing.T) {
	cases := []struct {
		ins    Instr
		reads  []uint8
		writes uint8
	}{
		{R(ADD, 3, 1, 2), []uint8{1, 2}, 3},
		{I(ADDI, 3, 1, 5), []uint8{1}, 3},
		{Load(LD, 3, 1, 0), []uint8{1}, 3},
		{Store(SD, 2, 1, 0), []uint8{1, 2}, 0},
		{Branch(BEQ, 1, 2, 8), []uint8{1, 2}, 0},
		{I(ADDI, 0, 0, 0), nil, 0}, // NOP: x0 never read/written
		{Instr{Op: RDCYCLE, Rd: 7}, nil, 7},
		{Instr{Op: LUI, Rd: 4, Imm: 1}, nil, 4},
	}
	for _, c := range cases {
		got := c.ins.Reads()
		if len(got) != len(c.reads) {
			t.Errorf("%s: Reads = %v, want %v", c.ins, got, c.reads)
			continue
		}
		for i := range got {
			if got[i] != c.reads[i] {
				t.Errorf("%s: Reads = %v, want %v", c.ins, got, c.reads)
			}
		}
		if w := c.ins.Writes(); w != c.writes {
			t.Errorf("%s: Writes = %d, want %d", c.ins, w, c.writes)
		}
	}
}

func TestProgramImageRoundTrip(t *testing.T) {
	p := NewProgram(0x8000_0000,
		I(ADDI, 1, 0, 7),
		R(MUL, 2, 1, 1),
		Load(LD, 3, 2, 16),
		Branch(BNE, 3, 0, -8),
	)
	img := p.Image()
	if len(img) != 16 {
		t.Fatalf("image length = %d, want 16", len(img))
	}
	back, err := LoadImage(p.Base, img)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != p.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), p.Len())
	}
	for i := range p.Code {
		if back.Code[i] != p.Code[i] {
			t.Errorf("instr %d: %s != %s", i, back.Code[i], p.Code[i])
		}
	}
	if _, err := LoadImage(0, []byte{1, 2, 3}); err == nil {
		t.Error("LoadImage of misaligned image succeeded")
	}
}

func TestProgramAddressing(t *testing.T) {
	p := NewProgram(0x1000, NOP(), NOP(), NOP())
	if p.AddrOf(2) != 0x1008 {
		t.Errorf("AddrOf(2) = %#x", p.AddrOf(2))
	}
	if p.End() != 0x100c {
		t.Errorf("End = %#x", p.End())
	}
	if p.IndexOf(0x1004) != 1 {
		t.Errorf("IndexOf(0x1004) = %d", p.IndexOf(0x1004))
	}
	for _, addr := range []uint64{0xfff, 0x100c, 0x1002} {
		if p.IndexOf(addr) != -1 {
			t.Errorf("IndexOf(%#x) = %d, want -1", addr, p.IndexOf(addr))
		}
	}
}

func TestDepChain(t *testing.T) {
	chain := DepChain(5, 4)
	if len(chain) != 4 {
		t.Fatalf("len = %d", len(chain))
	}
	for i, ins := range chain {
		if ins.Op != ADDI || ins.Rd != 5 || ins.Rs1 != 5 {
			t.Errorf("chain[%d] = %s, want addi x5, x5, 1", i, ins)
		}
	}
}

// Property: sign extension of immediates survives encode/decode for loads.
func TestQuickLoadImmediates(t *testing.T) {
	f := func(raw int16) bool {
		imm := int64(raw % 2048)
		ins := Load(LD, 1, 2, imm)
		back, err := Decode(ins.Encode())
		return err == nil && back.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftAndCompareExtensions(t *testing.T) {
	cases := []struct {
		ins  Instr
		want uint32
	}{
		{R(SLTU, 3, 1, 2), 0x0020b1b3},
		{R(SRA, 3, 1, 2), 0x4020d1b3},
		{I(SLLI, 3, 1, 5), 0x00509193},
		{I(SRLI, 3, 1, 5), 0x0050d193},
		{I(SRAI, 3, 1, 5), 0x4050d193},
		{I(SRAI, 3, 1, 63), 0x43f0d193}, // RV64: 6-bit shamt
	}
	for _, c := range cases {
		if got := c.ins.Encode(); got != c.want {
			t.Errorf("Encode(%s) = %#08x, want %#08x", c.ins, got, c.want)
		}
		back, err := Decode(c.ins.Encode())
		if err != nil || back != c.ins {
			t.Errorf("round trip %s -> %v (%v)", c.ins, back, err)
		}
	}
	// Reserved shift encodings must not decode.
	if _, err := Decode(0x8050d193); err == nil { // funct6=0x20 (invalid)
		t.Error("invalid shift funct6 decoded")
	}
}
