package isa

import "fmt"

// RV64 opcode constants.
const (
	opcOpImm  = 0x13
	opcOp     = 0x33
	opcLoad   = 0x03
	opcStore  = 0x23
	opcBranch = 0x63
	opcJAL    = 0x6F
	opcLUI    = 0x37
	opcAMO    = 0x2F
	opcSystem = 0x73
	opcFence  = 0x0F
)

const csrCycle = 0xC00

type encSpec struct {
	opcode uint32
	funct3 uint32
	funct7 uint32 // or funct5<<2 for AMO
}

var encTable = map[Op]encSpec{
	ADD:  {opcOp, 0, 0x00},
	SUB:  {opcOp, 0, 0x20},
	SLL:  {opcOp, 1, 0x00},
	SLT:  {opcOp, 2, 0x00},
	SLTU: {opcOp, 3, 0x00},
	XOR:  {opcOp, 4, 0x00},
	SRL:  {opcOp, 5, 0x00},
	SRA:  {opcOp, 5, 0x20},
	OR:   {opcOp, 6, 0x00},
	AND:  {opcOp, 7, 0x00},
	MUL:  {opcOp, 0, 0x01},
	DIV:  {opcOp, 4, 0x01},
	REM:  {opcOp, 6, 0x01},
	ADDI: {opcOpImm, 0, 0},
	SLTI: {opcOpImm, 2, 0},
	XORI: {opcOpImm, 4, 0},
	ORI:  {opcOpImm, 6, 0},
	ANDI: {opcOpImm, 7, 0},
	LW:   {opcLoad, 2, 0},
	LD:   {opcLoad, 3, 0},
	SW:   {opcStore, 2, 0},
	SD:   {opcStore, 3, 0},
	LRD:  {opcAMO, 3, 0x02 << 2}, // funct5=00010
	SCD:  {opcAMO, 3, 0x03 << 2}, // funct5=00011
	BEQ:  {opcBranch, 0, 0},
	BNE:  {opcBranch, 1, 0},
}

// Decode lookup tables derived from encTable: opcOp keys on
// funct7<<3|funct3, opcOpImm on funct3 alone (shift-immediates are special-
// cased in Decode). Entries hold Op+1 so zero means "no such instruction".
// Flat arrays keep the per-fetch decode O(1); iterating encTable per decoded
// word dominated simulation profiles.
var (
	decOp    [1024]uint16
	decOpImm [8]uint16
)

func init() {
	for op, e := range encTable { //sonar:nondeterministic-ok writes to disjoint fixed indices; order-insensitive
		switch e.opcode {
		case opcOp:
			decOp[e.funct7<<3|e.funct3] = uint16(op) + 1
		case opcOpImm:
			decOpImm[e.funct3] = uint16(op) + 1
		}
	}
}

// Encode produces the 32-bit RV64 machine word for the instruction.
func (i Instr) Encode() uint32 {
	rd := uint32(i.Rd) & 31
	rs1 := uint32(i.Rs1) & 31
	rs2 := uint32(i.Rs2) & 31
	imm := uint32(i.Imm)
	switch i.Op {
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND, MUL, DIV, REM:
		e := encTable[i.Op]
		return e.funct7<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode
	case SLLI:
		return (imm&0x3f)<<20 | rs1<<15 | 1<<12 | rd<<7 | opcOpImm
	case SRLI:
		return (imm&0x3f)<<20 | rs1<<15 | 5<<12 | rd<<7 | opcOpImm
	case SRAI:
		return 0x10<<26 | (imm&0x3f)<<20 | rs1<<15 | 5<<12 | rd<<7 | opcOpImm
	case ADDI, SLTI, XORI, ORI, ANDI:
		e := encTable[i.Op]
		return (imm&0xfff)<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode
	case LW, LD:
		e := encTable[i.Op]
		return (imm&0xfff)<<20 | rs1<<15 | e.funct3<<12 | rd<<7 | e.opcode
	case SW, SD:
		e := encTable[i.Op]
		return (imm>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | e.funct3<<12 | (imm&0x1f)<<7 | e.opcode
	case LRD:
		return (0x02 << 27) | rs1<<15 | 3<<12 | rd<<7 | opcAMO
	case SCD:
		return (0x03 << 27) | rs2<<20 | rs1<<15 | 3<<12 | rd<<7 | opcAMO
	case BEQ, BNE:
		e := encTable[i.Op]
		return (imm>>12&1)<<31 | (imm>>5&0x3f)<<25 | rs2<<20 | rs1<<15 |
			e.funct3<<12 | (imm>>1&0xf)<<8 | (imm>>11&1)<<7 | e.opcode
	case JAL:
		return (imm>>20&1)<<31 | (imm>>1&0x3ff)<<21 | (imm>>11&1)<<20 |
			(imm>>12&0xff)<<12 | rd<<7 | opcJAL
	case LUI:
		return (imm&0xfffff)<<12 | rd<<7 | opcLUI
	case RDCYCLE:
		return uint32(csrCycle)<<20 | 0<<15 | 2<<12 | rd<<7 | opcSystem // csrrs rd, cycle, x0
	case FENCE:
		return opcFence
	case ECALL:
		return opcSystem
	}
	panic(fmt.Sprintf("isa: Encode of unknown op %v", i.Op))
}

// Decode reconstructs an instruction from its machine word. It returns an
// error for words outside the supported subset.
func Decode(w uint32) (Instr, error) {
	if ins, ok := DecodeWord(w); ok {
		return ins, nil
	}
	return Instr{}, fmt.Errorf("isa: cannot decode %#08x", w)
}

// DecodeWord is Decode without the error construction: ok is false for words
// outside the supported subset. The per-cycle fetch path uses it so that
// running into undecodable memory (the normal way programs halt) does not
// allocate an error object per fetched word.
//
//sonar:alloc-free
func DecodeWord(w uint32) (Instr, bool) {
	opcode := w & 0x7f
	rd := uint8(w >> 7 & 31)
	funct3 := w >> 12 & 7
	rs1 := uint8(w >> 15 & 31)
	rs2 := uint8(w >> 20 & 31)
	funct7 := w >> 25 & 0x7f
	switch opcode {
	case opcOp:
		if v := decOp[funct7<<3|funct3]; v != 0 {
			return R(Op(v-1), rd, rs1, rs2), true
		}
	case opcOpImm:
		imm := signExtend(uint64(w>>20&0xfff), 12)
		switch funct3 {
		case 1:
			if w>>26 == 0 {
				return I(SLLI, rd, rs1, int64(w>>20&0x3f)), true
			}
			return Instr{}, false
		case 5:
			switch w >> 26 {
			case 0:
				return I(SRLI, rd, rs1, int64(w>>20&0x3f)), true
			case 0x10:
				return I(SRAI, rd, rs1, int64(w>>20&0x3f)), true
			}
			return Instr{}, false
		}
		if v := decOpImm[funct3]; v != 0 {
			return I(Op(v-1), rd, rs1, imm), true
		}
	case opcLoad:
		imm := signExtend(uint64(w>>20&0xfff), 12)
		switch funct3 {
		case 2:
			return Load(LW, rd, rs1, imm), true
		case 3:
			return Load(LD, rd, rs1, imm), true
		}
	case opcStore:
		imm := signExtend(uint64(w>>25&0x7f)<<5|uint64(w>>7&0x1f), 12)
		switch funct3 {
		case 2:
			return Store(SW, rs2, rs1, imm), true
		case 3:
			return Store(SD, rs2, rs1, imm), true
		}
	case opcAMO:
		if funct3 == 3 {
			switch w >> 27 & 0x1f {
			case 0x02:
				return Instr{Op: LRD, Rd: rd, Rs1: rs1}, true
			case 0x03:
				return Instr{Op: SCD, Rd: rd, Rs1: rs1, Rs2: rs2}, true
			}
		}
	case opcBranch:
		imm := signExtend(
			uint64(w>>31&1)<<12|uint64(w>>7&1)<<11|
				uint64(w>>25&0x3f)<<5|uint64(w>>8&0xf)<<1, 13)
		switch funct3 {
		case 0:
			return Branch(BEQ, rs1, rs2, imm), true
		case 1:
			return Branch(BNE, rs1, rs2, imm), true
		}
	case opcJAL:
		imm := signExtend(
			uint64(w>>31&1)<<20|uint64(w>>12&0xff)<<12|
				uint64(w>>20&1)<<11|uint64(w>>21&0x3ff)<<1, 21)
		return Instr{Op: JAL, Rd: rd, Imm: imm}, true
	case opcLUI:
		return Instr{Op: LUI, Rd: rd, Imm: int64(w >> 12 & 0xfffff)}, true
	case opcSystem:
		if w == opcSystem {
			return Instr{Op: ECALL}, true
		}
		if funct3 == 2 && w>>20 == csrCycle && rs1 == 0 {
			return Instr{Op: RDCYCLE, Rd: rd}, true
		}
	case opcFence:
		return Instr{Op: FENCE}, true
	}
	return Instr{}, false
}

func signExtend(v uint64, bits int) int64 {
	shift := 64 - uint(bits)
	return int64(v<<shift) >> shift
}
