package isa

import "fmt"

// MemoryBus is the memory interface the architectural interpreter executes
// against; *uarch.Memory satisfies it.
type MemoryBus interface {
	// Read returns n little-endian bytes at addr as a uint64.
	Read(addr uint64, n int) uint64
	// Write stores the low n bytes of v at addr.
	Write(addr uint64, v uint64, n int)
}

// Interp is a simple architectural interpreter (instruction-set simulator):
// the golden reference model the cycle-accurate cores are differentially
// tested against, in the tradition of co-simulation-based processor fuzzers.
// It is purely functional — no pipeline, no caches, no timing.
type Interp struct {
	// Regs is the architectural register file (x0 hardwired to zero).
	Regs [32]uint64
	// PC is the current program counter.
	PC uint64
	// Cycle feeds rdcycle; the interpreter has no real clock, so it
	// increments once per retired instruction.
	Cycle uint64
	// Halted is set when an ecall retires.
	Halted bool

	mem MemoryBus
}

// NewInterp creates an interpreter over a memory bus, starting at entry.
func NewInterp(mem MemoryBus, entry uint64) *Interp {
	return &Interp{mem: mem, PC: entry}
}

func (it *Interp) reg(r uint8) uint64 { return it.Regs[r&31] }

func (it *Interp) setReg(r uint8, v uint64) {
	if r&31 != 0 {
		it.Regs[r&31] = v
	}
}

// Step fetches, decodes, and retires one instruction. It returns an error
// for undecodable words.
func (it *Interp) Step() error {
	if it.Halted {
		return nil
	}
	word := uint32(it.mem.Read(it.PC, 4))
	ins, err := Decode(word)
	if err != nil {
		return fmt.Errorf("interp: pc %#x: %w", it.PC, err)
	}
	next := it.PC + 4
	rs1, rs2 := it.reg(ins.Rs1), it.reg(ins.Rs2)
	switch {
	case ins.Op.IsALU() || ins.Op.IsMul() || ins.Op.IsDiv():
		it.setReg(ins.Rd, Compute(ins, rs1, rs2))
	case ins.Op.IsLoad():
		it.setReg(ins.Rd, it.mem.Read(rs1+uint64(ins.Imm), ins.Op.MemBytes()))
	case ins.Op == SCD:
		it.mem.Write(rs1+uint64(ins.Imm), rs2, ins.Op.MemBytes())
		it.setReg(ins.Rd, 0) // always succeeds, matching the core model
	case ins.Op.IsStore():
		it.mem.Write(rs1+uint64(ins.Imm), rs2, ins.Op.MemBytes())
	case ins.Op.IsBranch():
		taken := (ins.Op == BEQ && rs1 == rs2) || (ins.Op == BNE && rs1 != rs2)
		if taken {
			next = it.PC + uint64(ins.Imm)
		}
	case ins.Op.IsJump():
		it.setReg(ins.Rd, it.PC+4)
		next = it.PC + uint64(ins.Imm)
	case ins.Op == RDCYCLE:
		it.setReg(ins.Rd, it.Cycle)
	case ins.Op == ECALL:
		it.Halted = true
	case ins.Op == FENCE:
		// no-op
	}
	it.PC = next
	it.Cycle++
	return nil
}

// Run steps until ecall or the instruction budget is exhausted. It returns
// the number of retired instructions.
func (it *Interp) Run(maxInstrs int) (int, error) {
	for i := 0; i < maxInstrs; i++ {
		if it.Halted {
			return i, nil
		}
		if err := it.Step(); err != nil {
			return i, err
		}
	}
	return maxInstrs, nil
}

// Compute evaluates an ALU/MUL/DIV operation's result value.
func Compute(ins Instr, rs1, rs2 uint64) uint64 {
	imm := uint64(ins.Imm)
	switch ins.Op {
	case ADD:
		return rs1 + rs2
	case SUB:
		return rs1 - rs2
	case AND:
		return rs1 & rs2
	case OR:
		return rs1 | rs2
	case XOR:
		return rs1 ^ rs2
	case SLL:
		return rs1 << (rs2 & 63)
	case SRL:
		return rs1 >> (rs2 & 63)
	case SRA:
		return uint64(int64(rs1) >> (rs2 & 63))
	case SLTU:
		if rs1 < rs2 {
			return 1
		}
		return 0
	case SLLI:
		return rs1 << (uint(ins.Imm) & 63)
	case SRLI:
		return rs1 >> (uint(ins.Imm) & 63)
	case SRAI:
		return uint64(int64(rs1) >> (uint(ins.Imm) & 63))
	case SLT:
		if int64(rs1) < int64(rs2) {
			return 1
		}
		return 0
	case ADDI:
		return rs1 + imm
	case ANDI:
		return rs1 & imm
	case ORI:
		return rs1 | imm
	case XORI:
		return rs1 ^ imm
	case SLTI:
		if int64(rs1) < ins.Imm {
			return 1
		}
		return 0
	case LUI:
		return imm << 12
	case MUL:
		return rs1 * rs2
	case DIV:
		if rs2 == 0 {
			return ^uint64(0)
		}
		return uint64(int64(rs1) / int64(rs2))
	case REM:
		if rs2 == 0 {
			return rs1
		}
		return uint64(int64(rs1) % int64(rs2))
	}
	return 0
}
