package isa

import "fmt"

// Instr is one decoded instruction.
type Instr struct {
	Op  Op    // operation code
	Rd  uint8 // destination register x0..x31
	Rs1 uint8 // first source register
	Rs2 uint8 // second source register
	Imm int64 // sign-extended immediate (branch/jump offsets in bytes)
}

// NOP returns the canonical no-op (addi x0, x0, 0).
func NOP() Instr { return Instr{Op: ADDI} }

// R builds an R-type instruction.
func R(op Op, rd, rs1, rs2 uint8) Instr { return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2} }

// I builds an I-type (register-immediate) instruction.
func I(op Op, rd, rs1 uint8, imm int64) Instr { return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm} }

// Load builds a load: rd <- mem[rs1+imm].
func Load(op Op, rd, rs1 uint8, imm int64) Instr { return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm} }

// Store builds a store: mem[rs1+imm] <- rs2.
func Store(op Op, rs2, rs1 uint8, imm int64) Instr {
	return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm}
}

// Branch builds a conditional branch with a byte offset.
func Branch(op Op, rs1, rs2 uint8, offset int64) Instr {
	return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: offset}
}

// Reads returns the architectural source registers of the instruction,
// excluding x0.
func (i Instr) Reads() []uint8 {
	var rs []uint8
	if i.Op.HasRs1() && i.Rs1 != 0 {
		rs = append(rs, i.Rs1)
	}
	if i.Op.HasRs2() && i.Rs2 != 0 {
		rs = append(rs, i.Rs2)
	}
	return rs
}

// Writes returns the architectural destination register, or 0 if none
// (writes to x0 are discarded and reported as no destination).
func (i Instr) Writes() uint8 {
	if i.Op.HasRd() {
		return i.Rd
	}
	return 0
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch {
	case i.Op == RDCYCLE:
		return fmt.Sprintf("rdcycle x%d", i.Rd)
	case i.Op == FENCE || i.Op == ECALL:
		return i.Op.String()
	case i.Op == LUI:
		return fmt.Sprintf("lui x%d, %d", i.Rd, i.Imm)
	case i.Op == JAL:
		return fmt.Sprintf("jal x%d, %d", i.Rd, i.Imm)
	case i.Op.IsBranch():
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op.IsLoad():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op == SCD:
		return fmt.Sprintf("%s x%d, x%d, 0(x%d)", i.Op, i.Rd, i.Rs2, i.Rs1)
	case i.Op.IsStore():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op.HasRs2():
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	default:
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	}
}
