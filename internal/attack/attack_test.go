package attack

import (
	"testing"

	"sonar/internal/fuzz"
	"sonar/internal/isa"
	"sonar/internal/uarch"
)

var testKey = [KeyBytes]byte{
	0xA5, 0x3C, 0xF0, 0x0F, 0x55, 0xAA, 0x12, 0x34,
	0x9B, 0xDE, 0x01, 0xFE, 0x77, 0x88, 0xC3, 0x3C,
}

func pocByID(t *testing.T, id string) PoC {
	t.Helper()
	for _, p := range AllPoCs() {
		if p.ID == id {
			return p
		}
	}
	t.Fatalf("no PoC %s", id)
	return PoC{}
}

func TestAllPoCsPresent(t *testing.T) {
	want := []string{"S1", "S2", "S3", "S4", "S5", "S6", "S7", "S11", "S12", "S13", "S14"}
	pocs := AllPoCs()
	if len(pocs) != len(want) {
		t.Fatalf("got %d PoCs, want %d", len(pocs), len(want))
	}
	for i, id := range want {
		if pocs[i].ID != id {
			t.Errorf("PoC[%d] = %s, want %s", i, pocs[i].ID, id)
		}
	}
	for _, p := range pocs {
		if p.Description == "" || p.DUT == "" {
			t.Errorf("%s: missing metadata", p.ID)
		}
	}
}

// The strong BOOM channels must recover the full 128-bit privileged key
// (paper §8.5: accuracy for a consecutive 128-bit key exceeds 99%).
func TestBoomPoCsRecoverKey(t *testing.T) {
	for _, id := range []string{"S4", "S5", "S11"} {
		p := pocByID(t, id)
		res := Run(p, testKey, 1, 5, 42)
		if res.BitAccuracy < 0.99 {
			t.Errorf("%s: BitAccuracy = %.3f, want >= 0.99 (signal %.1f)", id, res.BitAccuracy, res.Signal)
		}
		if res.KeyAccuracy != 1 {
			t.Errorf("%s: KeyAccuracy = %.2f, want 1", id, res.KeyAccuracy)
		}
		if res.Signal <= 0 {
			t.Errorf("%s: no timing signal", id)
		}
	}
	// S12 depends on eviction state and is the paper's own flakiest BOOM
	// channel (">94%", §8.5: "the random nature of cache eviction leads to
	// a low probability for triggering the contention scenario").
	res := Run(pocByID(t, "S12"), testKey, 1, 7, 42)
	if res.BitAccuracy < 0.9 {
		t.Errorf("S12: BitAccuracy = %.3f, want >= 0.9 (paper: >94%%)", res.BitAccuracy)
	}
}

// NutShell detects exceptions early in the pipeline, collapsing the
// transient window: the PoCs must fail to recover the key (paper: <2%).
func TestNutshellPoCsFail(t *testing.T) {
	for _, id := range []string{"S13", "S14"} {
		p := pocByID(t, id)
		res := Run(p, testKey, 1, 5, 42)
		if res.KeyAccuracy >= 0.02 {
			t.Errorf("%s: KeyAccuracy = %.2f, want < 0.02 on NutShell", id, res.KeyAccuracy)
		}
		if res.BitAccuracy > 0.8 {
			t.Errorf("%s: BitAccuracy = %.3f suspiciously high for a flushed window", id, res.BitAccuracy)
		}
	}
}

func TestTemplateProgramsAreWellFormed(t *testing.T) {
	for _, p := range AllPoCs() {
		prog := p.Template(5, 2, 10)
		// Every instruction must encode and decode (the core fetches the
		// binary image).
		for i, ins := range prog.Code {
			back, err := isa.Decode(ins.Encode())
			if err != nil {
				t.Fatalf("%s instr %d (%s): %v", p.ID, i, ins, err)
			}
			if back != ins {
				t.Fatalf("%s instr %d: %s != %s", p.ID, i, ins, back)
			}
		}
		// The privileged access must be present.
		foundFault := false
		for _, ins := range prog.Code {
			if ins.Op == isa.LD && ins.Rs1 == regPriv {
				foundFault = true
			}
		}
		if !foundFault {
			t.Errorf("%s: no privileged load in template", p.ID)
		}
	}
}

func TestBranchIslandPatched(t *testing.T) {
	p := pocByID(t, "S1")
	prog := p.Template(0, 0, 10)
	var br *isa.Instr
	var brIdx int
	for i := range prog.Code {
		if prog.Code[i].Op == isa.BNE && prog.Code[i].Rs1 == regSecret {
			br = &prog.Code[i]
			brIdx = i
		}
	}
	if br == nil {
		t.Fatal("no island branch found")
	}
	if br.Imm <= 0 || br.Imm%4 != 0 {
		t.Fatalf("island offset %d invalid", br.Imm)
	}
	target := brIdx + int(br.Imm)/4
	if target >= prog.Len() {
		t.Fatalf("island target %d beyond program (%d)", target, prog.Len())
	}
	if target-brIdx < islandPadding {
		t.Errorf("island only %d instrs away; must exceed fetch-ahead (%d)", target-brIdx, islandPadding)
	}
}

func TestTrialMeasuresHandlerEntry(t *testing.T) {
	p := pocByID(t, "S4")
	r := newRunner(p, testKey, 1)
	d := r.trial(p, 0, 20)
	if d <= 0 {
		t.Fatalf("delta = %d; handler did not run", d)
	}
	if d > 2000 {
		t.Fatalf("delta = %d implausibly large", d)
	}
}

func TestClassifierMultimodal(t *testing.T) {
	// Baseline 161 common to both; signatures 186 (bit 0) and 191 (bit 1).
	c := newClassifier(
		[]int64{161, 186, 161, 186, 161},
		[]int64{161, 191, 161, 191, 161},
	)
	if !c.ok {
		t.Fatal("classifier not ok")
	}
	if got := c.classify(186); got != 0 {
		t.Errorf("classify(186) = %d, want 0", got)
	}
	if got := c.classify(191); got != 1 {
		t.Errorf("classify(191) = %d, want 1", got)
	}
	if got := c.classify(161); got != -1 {
		t.Errorf("classify(161) = %d, want abstain", got)
	}
	// Unseen values resolve by nearest neighbour.
	if got := c.classify(187); got != 0 {
		t.Errorf("classify(187) = %d, want 0", got)
	}
	if got := c.classify(193); got != 1 {
		t.Errorf("classify(193) = %d, want 1", got)
	}
	if c.signal() != 5 {
		t.Errorf("signal = %d, want 5", c.signal())
	}
}

func TestClassifierIndistinguishable(t *testing.T) {
	c := newClassifier([]int64{100, 101}, []int64{100, 101})
	if c.signal() != 0 {
		t.Errorf("identical distributions: signal = %d, want 0", c.signal())
	}
	if c.separation() != 0 {
		t.Errorf("identical distributions: separation = %d, want 0", c.separation())
	}
}

func TestClassifierEmpty(t *testing.T) {
	c := newClassifier(nil, []int64{-1})
	if c.ok {
		t.Error("empty calibration must not be ok")
	}
	if c.classify(5) != -1 {
		t.Error("classify on !ok must abstain")
	}
}

func TestAddrInto(t *testing.T) {
	// addrInto must reach arbitrary offsets despite the 12-bit ld/sd
	// immediate, including ones whose low bits exceed 2047.
	soc := pocByID(t, "S4").NewSoC()
	core := soc.Cores[0]
	for _, off := range []int64{0, 0x7000, 0x1000 + 8*setStride, 0xFFF, 0x1800} {
		code := []isa.Instr{{Op: isa.LUI, Rd: regData, Imm: int64(fuzz.DataBase >> 12)}}
		code = append(code, addrInto(regAddr, regData, off)...)
		code = append(code, isa.Instr{Op: isa.ECALL})
		soc.Reset()
		core.LoadProgram(isa.NewProgram(fuzz.CodeBase, code...))
		soc.Run()
		want := fuzz.DataBase + uint64(off)
		if got := core.Reg(regAddr); got != want {
			t.Errorf("addrInto(%#x) = %#x, want %#x", off, got, want)
		}
	}
}

// The dual-core TileLink channel (Table 3 footnote †): the attacker core
// recovers the victim's key purely from its own load timing over the
// shared D-channel — no fault, no transient execution.
func TestCrossCoreRecoversKey(t *testing.T) {
	mk := func() *uarch.SoC { return uarch.NewSoC(uarch.BoomConfig(), 2, nil, nil) }
	res := RunCrossCore(mk, testKey, 1, 5, 42)
	if res.Signal < 10 {
		t.Fatalf("cross-core signal = %.0f cycles, want a clear channel", res.Signal)
	}
	if res.BitAccuracy < 0.99 || res.KeyAccuracy != 1 {
		t.Errorf("accuracy = %.3f/%.2f, want full recovery", res.BitAccuracy, res.KeyAccuracy)
	}
}

// Partitioning the D-channel into per-requester lanes severs the
// cross-core path (each core's dcache read lane is private).
func TestCrossCoreBlockedByPartitioning(t *testing.T) {
	mk := func() *uarch.SoC {
		cfg := uarch.BoomConfig()
		cfg.PartitionedDChannel = true
		return uarch.NewSoC(cfg, 2, nil, nil)
	}
	res := RunCrossCore(mk, testKey, 1, 5, 42)
	if res.BitAccuracy > 0.95 && res.KeyAccuracy == 1 {
		t.Errorf("partitioned bus still leaks: %.3f/%.2f (signal %.0f)",
			res.BitAccuracy, res.KeyAccuracy, res.Signal)
	}
}
