package attack

import (
	"sonar/internal/fuzz"
	"sonar/internal/isa"
	"sonar/internal/uarch"
)

// setStride is the address distance between two lines mapping to the same
// L1 set (64 sets x 64-byte lines).
const setStride = 64 * 64

// addrInto emits dst = base + off for arbitrary 32-bit offsets (ld/sd
// immediates only span 12 bits).
func addrInto(dst, base uint8, off int64) []isa.Instr {
	hi := (off + 0x800) >> 12 // round so the low part stays in [-2048,2047]
	lo := off - hi<<12
	return []isa.Instr{
		{Op: isa.LUI, Rd: dst, Imm: hi},
		isa.I(isa.ADDI, dst, dst, lo),
		isa.R(isa.ADD, dst, dst, base),
	}
}

// coldLoad emits a load from DataBase+off through regTmpA.
func coldLoad(rd uint8, off int64) []isa.Instr {
	code := addrInto(regTmpA, regData, off)
	return append(code, isa.Load(isa.LD, rd, regTmpA, 0))
}

// coldStore emits a store to DataBase+off (dirtying the line).
func coldStore(off int64) []isa.Instr {
	code := addrInto(regTmpA, regData, off)
	return append(code, isa.Store(isa.SD, regTmpA, regTmpA, 0))
}

// divTimedLoad emits a load from DataBase+off whose issue time is set by an
// iterative divide of tunable latency (dividend = 3<<knob, so the latency
// tracks the knob cycle-for-cycle). Unlike a dependency chain, it keeps the
// program length constant, so the victim's timing moves independently of
// instruction-fetch alignment.
func divTimedLoad(rd uint8, off int64, knob int) []isa.Instr {
	if knob > 61 {
		knob = 61
	}
	code := addrInto(regAddr, regData, off)
	return append(code,
		isa.I(isa.ADDI, regTmpA, 0, 3),
		isa.I(isa.ADDI, regShift, 0, int64(knob)),
		isa.R(isa.SLL, regTmpA, regTmpA, regShift),
		isa.R(isa.DIV, regTmpA, regTmpA, regTmpA), // latency ~= 10+knob; result 1
		isa.I(isa.ADDI, regTmpA, regTmpA, -1),     // 0, div-timed
		isa.R(isa.ADD, regAddr, regAddr, regTmpA),
		isa.Load(isa.LD, rd, regAddr, 0),
	)
}

// timedLoad emits a load from DataBase+off whose issue time tracks the
// head dependency chain (xor x9,x9 resolves to zero when the chain does).
func timedLoad(rd uint8, off int64) []isa.Instr {
	code := addrInto(regAddr, regData, off)
	code = append(code,
		isa.R(isa.XOR, regTmpA, 9, 9),
		isa.R(isa.ADD, regAddr, regAddr, regTmpA),
		isa.Load(isa.LD, rd, regAddr, 0),
	)
	return code
}

// bitLoad emits a transient load whose line depends on the secret bit:
// address = DataBase + off + bit<<shift.
func bitLoad(off int64, shift int64) []isa.Instr {
	code := addrInto(regTrans, regData, off)
	return append(code,
		isa.I(isa.ADDI, regShift, 0, shift),
		isa.R(isa.SLL, regTmpA, regSecret, regShift),
		isa.R(isa.ADD, regTrans, regTrans, regTmpA),
		isa.Load(isa.LD, regTrans, regTrans, 0),
	)
}

// template describes one attack program shape; build assembles it.
type template struct {
	prime    []isa.Instr
	chainLen int
	// chainMid is inserted in the middle of the dependency chain (used to
	// start a refill whose window the chain-timed line5 lands in).
	chainMid []isa.Instr
	line5    []isa.Instr
	// line5Div, when non-nil, builds line5 as a div-timed victim using the
	// scanned knob for its latency (the head chain stays at chainLen, so
	// program length and fetch alignment are knob-independent).
	line5Div func(knob int) []isa.Instr
	// contender is emitted after the fault load and bit extraction; the
	// secret bit sits in regSecret.
	contender []isa.Instr
	// branchIsland emits a transient `bne regSecret, x0, island` whose
	// target is a cold code line far past the program (ICache-read
	// contenders, S1/S2/S14).
	branchIsland bool
	// extender emits a chain-timed cold load after line5: an older slow
	// instruction that keeps the faulting access away from the commit
	// head, holding the transient window open (Listing 1's computation
	// block serves the same purpose in the paper).
	extender bool
	// contenderDelay inserts a short transient dependency chain between
	// the bit extraction and the contender, shifting the contender's
	// request later into the victim's window.
	contenderDelay int
	// delayIsKnob routes the tuner's scanned length into contenderDelay
	// instead of the head chain — used by templates without a chain-timed
	// victim, where the contender's arrival is the only alignment degree
	// of freedom.
	delayIsKnob bool
}

// islandPadding keeps the branch island beyond the frontend's fetch-ahead
// reach so its ICache line stays cold until the transient branch redirects
// there.
const islandPadding = 320

func build(t template, bitOff, jitter, chainLen int) *isa.Program {
	delay := t.contenderDelay
	knob := chainLen
	if t.delayIsKnob && chainLen > 0 {
		delay = chainLen / 2
		chainLen = t.chainLen
	}
	if t.line5Div != nil {
		chainLen = t.chainLen // the knob drives line5's latency instead
	}
	if chainLen <= 0 {
		chainLen = t.chainLen
	}
	code := []isa.Instr{
		{Op: isa.LUI, Rd: regData, Imm: int64(fuzz.DataBase >> 12)},
		{Op: isa.LUI, Rd: regPriv, Imm: int64(fuzz.PrivBase >> 12)},
	}
	code = append(code, t.prime...)
	for j := 0; j < jitter; j++ {
		code = append(code, isa.NOP())
	}
	code = append(code, isa.Instr{Op: isa.RDCYCLE, Rd: regT0})
	code = append(code, isa.I(isa.ADDI, 9, 0, 1))
	half := chainLen / 2
	code = append(code, isa.DepChain(9, half)...)
	code = append(code, t.chainMid...)
	code = append(code, isa.DepChain(9, chainLen-half)...)
	code = append(code, t.line5...)
	if t.line5Div != nil {
		code = append(code, t.line5Div(knob)...)
	}
	if t.extender {
		code = append(code, timedLoad(regPrime, 0xA000)...)
	}
	// Listing 1 line 6: the privileged access plus transient bit extract.
	dword := int64(bitOff/64) * 8
	sh := int64(bitOff % 64)
	code = append(code,
		isa.Load(isa.LD, regSecret, regPriv, dword),
		isa.I(isa.ADDI, regShift, 0, sh),
		isa.R(isa.SRL, regSecret, regSecret, regShift),
		isa.I(isa.ANDI, regSecret, regSecret, 1),
	)
	for d := 0; d < delay; d++ {
		code = append(code, isa.I(isa.ADDI, regSecret, regSecret, 0))
	}
	branchPos := -1
	if t.branchIsland {
		branchPos = len(code)
		code = append(code, isa.Branch(isa.BNE, regSecret, 0, 0)) // patched below
	}
	code = append(code, t.contender...)
	code = append(code, isa.Instr{Op: isa.ECALL})
	if t.branchIsland {
		for len(code)%16 != 0 || len(code) < branchPos+islandPadding {
			code = append(code, isa.NOP())
		}
		island := len(code)
		code = append(code, isa.NOP(), isa.NOP(), isa.NOP(), isa.Instr{Op: isa.ECALL})
		code[branchPos].Imm = int64(4 * (island - branchPos))
	}
	return isa.NewProgram(fuzz.CodeBase, code...)
}

// poc wraps a template into a PoC.
func poc(id, desc, dut string, newSoC func() *uarch.SoC, t template) PoC {
	return PoC{
		ID: id, Description: desc, DUT: dut, NewSoC: newSoC,
		Template: func(bitOff, jitter, chainLen int) *isa.Program {
			return build(t, bitOff, jitter, chainLen)
		},
	}
}

// BoomPoCs returns the Meltdown-style PoCs for the newly discovered BOOM
// side channels (paper §8.5: S1-S7, S11, S12).
func BoomPoCs(newSoC func() *uarch.SoC) []PoC {
	var pocs []PoC

	// S1: transient ICache read (branch to a cold code line) blocks the
	// older DCache read on the TileLink D-Channel.
	pocs = append(pocs, poc("S1",
		"younger ICache read blocks older DCache read/writeback (TileLink D-Channel)",
		"boom", newSoC, template{
			chainLen:       2,
			line5Div:       func(knob int) []isa.Instr { return divTimedLoad(regLine5, 0x7000, knob) },
			branchIsland:   true,
			contenderDelay: 3,
		}))

	// S2: transient ICache read blocks the handler's ICache read.
	pocs = append(pocs, poc("S2",
		"younger ICache read blocks older ICache read/writeback (TileLink D-Channel)",
		"boom", newSoC, template{
			chainLen:     6,
			branchIsland: true,
			extender:     true,
			delayIsKnob:  true,
		}))

	// S3: transient DCache read blocks the handler's ICache read.
	pocs = append(pocs, poc("S3",
		"younger DCache read blocks older ICache read/writeback (TileLink D-Channel)",
		"boom", newSoC, template{
			prime:     coldLoad(regPrime, 0x5000), // bit=0 target, primed
			chainLen:  6,
			contender: bitLoad(0x5000, 12), // bit=1: +4096, cold
			extender:  true,
		}))

	// S4: transient DCache read blocks the older DCache read.
	pocs = append(pocs, poc("S4",
		"younger DCache read blocks older DCache read/writeback (TileLink D-Channel)",
		"boom", newSoC, template{
			prime:     coldLoad(regPrime, 0x5000),
			chainLen:  22,
			line5:     timedLoad(regLine5, 0x7000),
			contender: bitLoad(0x5000, 12),
		}))

	// S5: MSHR false sharing path blocking — the transient miss occupies
	// an MSHR for the same set index with a different tag, blocking the
	// older miss even though MSHRs are free.
	// line5 targets offset 0x2040 (set 1, cold). The contender computes
	// base + bit*(setStride+64): bit=0 -> 0x2000 (set 0, primed, hit);
	// bit=1 -> 0x2040+setStride (set 1, different tag -> false sharing).
	s5contender := addrInto(regTrans, regData, 0x2000)
	s5contender = append(s5contender,
		isa.I(isa.ADDI, regShift, 0, 12),
		isa.R(isa.SLL, regTmpA, regSecret, regShift), // bit*setStride
		isa.R(isa.ADD, regTrans, regTrans, regTmpA),
		isa.I(isa.ADDI, regShift, 0, 6),
		isa.R(isa.SLL, regTmpA, regSecret, regShift), // bit*64
		isa.R(isa.ADD, regTrans, regTrans, regTmpA),
		isa.Load(isa.LD, regTrans, regTrans, 0),
	)
	pocs = append(pocs, poc("S5",
		"MSHR false sharing: same set index, different tag blocks older miss",
		"boom", newSoC, template{
			prime:     coldLoad(regPrime, 0x2000),
			chainLen:  24,
			line5:     timedLoad(regLine5, 0x2040),
			contender: s5contender,
		}))

	// S6: read line buffer — the chain-timed older load reads in-flight
	// refill data through the single-ported read line buffer while the
	// transient refill writes it.
	pocs = append(pocs, poc("S6",
		"simultaneous read line buffer access delays the older load",
		"boom", newSoC, template{
			prime:     coldLoad(regPrime, 0x8000),
			chainLen:  26,
			chainMid:  coldLoad(regPrime, 0x6000),  // refill in flight
			line5:     timedLoad(regLine5, 0x6000), // hit-under-fill
			contender: bitLoad(0x8000, 12),         // bit=1: 0x9000, cold
			extender:  true,
		}))

	// S7: write line buffer — both the older and the transient miss evict
	// dirty lines, contending for the single-ported write line buffer and
	// the writeback path.
	pocs = append(pocs, poc("S7",
		"simultaneous write line buffer access delays the older store path",
		"boom", newSoC, template{
			prime:    dirtySet(0x1000, 8, 0x3000, 8),
			chainLen: 2,
			line5Div: func(knob int) []isa.Instr {
				return divTimedLoad(regLine5, 0x1000+8*setStride, knob)
			},
			contender: bitLoad(0x3000+7*setStride, 12), // bit=1: tag 8 of set B
			extender:  true,
		}))

	// S11: the transient load warms the very line the older load needs;
	// under bit=1 the older load hits (faster) — inverted polarity.
	pocs = append(pocs, poc("S11",
		"younger same-line access makes the older load hit (single-thread Flush+Reload analogue)",
		"boom", newSoC, template{
			chainLen:  26,
			line5:     timedLoad(regLine5, 0x4000+4096),
			contender: bitLoad(0x4000, 12), // bit=1 -> 0x4000+4096: line5's line
		}))

	// S12: the transient load evicts the line the older load needs.
	pocs = append(pocs, poc("S12",
		"younger load evicts the older load's line (single-thread Prime+Probe analogue)",
		"boom", newSoC, template{
			prime:     primeSet(0x1000, 8),
			chainLen:  30,
			line5:     timedLoad(regLine5, 0x1000),     // W: primed first, LRU
			contender: bitLoad(0x1000+7*setStride, 12), // bit=1: tag 8 evicts W
		}))
	return pocs
}

// NutshellPoCs returns the PoCs for the NutShell side channels. NutShell's
// early exception detection flushes the pipeline before the transient
// contenders issue, so these achieve near-zero accuracy (paper §8.5).
func NutshellPoCs(newSoC func() *uarch.SoC) []PoC {
	return []PoC{
		poc("S13",
			"non-pipelined MDU shared by mul/div: younger mul blocks older div",
			"nutshell", newSoC, template{
				chainLen: 18,
				line5: []isa.Instr{
					isa.R(isa.XOR, regTmpA, 9, 9),
					isa.I(isa.ADDI, regAddr, 0, 255),
					isa.R(isa.ADD, regTmpA, regTmpA, regAddr),
					isa.R(isa.DIV, regLine5, regTmpA, regAddr),
				},
				contender: []isa.Instr{
					isa.I(isa.ADDI, regShift, 0, 58),
					isa.R(isa.SLL, regTrans, regSecret, regShift),
					isa.R(isa.MUL, regTrans, regTrans, regTrans),
					isa.R(isa.DIV, regTrans, regTrans, regAddr),
				},
			}),
		poc("S14",
			"L1 ICache shared read/write port: refill write delays fetch",
			"nutshell", newSoC, template{
				chainLen:     10,
				branchIsland: true,
				delayIsKnob:  true,
			}),
	}
}

// primeSet loads `ways` lines of one set (offsets base + k*setStride).
func primeSet(base int64, ways int) []isa.Instr {
	var code []isa.Instr
	for k := 0; k < ways; k++ {
		code = append(code, coldLoad(regPrime, base+int64(k)*setStride)...)
	}
	return code
}

// dirtySet dirties `waysA` lines of set A and `waysB` lines of set B.
func dirtySet(baseA int64, waysA int, baseB int64, waysB int) []isa.Instr {
	var code []isa.Instr
	for k := 0; k < waysA; k++ {
		code = append(code, coldStore(baseA+int64(k)*setStride)...)
	}
	for k := 0; k < waysB; k++ {
		code = append(code, coldStore(baseB+int64(k)*setStride)...)
	}
	return code
}

// AllPoCs returns every PoC with its default DUT constructor.
func AllPoCs() []PoC {
	boomLite := func() *uarch.SoC { return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil) }
	nutLite := func() *uarch.SoC { return uarch.NewSoC(uarch.NutshellConfig(), 1, nil, nil) }
	return append(BoomPoCs(boomLite), NutshellPoCs(nutLite)...)
}
