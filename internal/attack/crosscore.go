package attack

import (
	"math/rand"

	"sonar/internal/fuzz"
	"sonar/internal/isa"
	"sonar/internal/uarch"
)

// Cross-core attack (paper Table 3, footnote †: "side channels due to
// contention on TileLink can also be observed in the dual-core scenario",
// template Figure 4b). A victim core executes secret-dependent loads; an
// attacker core times its own loads over the shared TileLink D-channel.
// When the secret bit is 1 the victim's extra cacheline reads occupy the
// channel and the attacker's refills queue behind them. No fault, no
// transient execution — pure cross-core contention.

// victimProgram reads the victim's secret dword and issues a burst of
// loads whose cachelines depend on the extracted bit: bit=0 reuses one
// line (a single refill, then hits); bit=1 touches distinct cold lines
// (one D-channel read each).
func victimProgram(bitOff, jitter int) *isa.Program {
	code := []isa.Instr{
		{Op: isa.LUI, Rd: regData, Imm: int64(fuzz.DataBase >> 12)},
		{Op: isa.LUI, Rd: regPriv, Imm: int64(fuzz.SecretAddr >> 12)},
	}
	for j := 0; j < jitter; j++ {
		code = append(code, isa.NOP())
	}
	dword := int64(bitOff/64) * 8
	sh := int64(bitOff % 64)
	code = append(code,
		isa.Load(isa.LD, regSecret, regPriv, dword),
		isa.I(isa.ADDI, regShift, 0, sh),
		isa.R(isa.SRL, regSecret, regSecret, regShift),
		isa.I(isa.ANDI, regSecret, regSecret, 1),
	)
	// addr_k = DataBase + bit*(0x4000 + k*8192): bit=0 collapses every
	// access onto DataBase (one line); bit=1 spreads across cold lines.
	for k := 0; k < 6; k++ {
		code = append(code, addrInto(regTmpA, 0, 0x4000+int64(k)*8192)...)
		// Multiply the offset by the bit without branches: tmp &= -bit.
		code = append(code,
			isa.R(isa.SUB, regPrime, 0, regSecret), // -bit (all ones if 1)
			isa.R(isa.AND, regTmpA, regTmpA, regPrime),
			isa.R(isa.ADD, regTmpA, regTmpA, regData),
			isa.Load(isa.LD, regLine5, regTmpA, 0),
		)
	}
	code = append(code, isa.Instr{Op: isa.ECALL})
	return isa.NewProgram(fuzz.CodeBase, code...)
}

// attackerProgram times a fixed burst of cold loads through the shared
// D-channel.
func attackerProgram(jitter int) *isa.Program {
	code := []isa.Instr{
		{Op: isa.LUI, Rd: regData, Imm: int64(fuzz.AttackerDataBase >> 12)},
	}
	for j := 0; j < jitter; j++ {
		code = append(code, isa.NOP())
	}
	code = append(code, isa.Instr{Op: isa.RDCYCLE, Rd: regT0})
	// Pointer-chase: each load's address depends on the previous load's
	// (zero) result, so the misses serialize and the measurement window
	// spans the victim's whole burst.
	code = append(code, isa.I(isa.ADDI, regLine5, 0, 0))
	for k := 0; k < 8; k++ {
		code = append(code, addrInto(regTmpA, regData, int64(k)*8192)...)
		code = append(code,
			isa.R(isa.ADD, regTmpA, regTmpA, regLine5),
			isa.Load(isa.LD, regLine5, regTmpA, 0),
		)
	}
	// rdcycle has no operands, so it would issue out of order; a
	// chase-dependent always-taken branch redirects fetch, forcing the
	// closing timestamp to execute after the last load resolves.
	code = append(code,
		isa.R(isa.XOR, regTmpA, regLine5, regLine5), // 0, chase-dependent
		isa.Branch(isa.BEQ, regTmpA, 0, 8),          // taken: skip the nop
		isa.NOP(),
		isa.Instr{Op: isa.RDCYCLE, Rd: regT1},
		isa.Instr{Op: isa.ECALL},
	)
	return isa.NewProgram(fuzz.AttackerCodeBase, code...)
}

// crossRunner drives trials on one dual-core SoC.
type crossRunner struct {
	soc *uarch.SoC
	rng *rand.Rand
	key [KeyBytes]byte
}

// trial runs victim+attacker and returns the attacker's measured delta.
func (r *crossRunner) trial(bitOff int) int64 {
	r.soc.Reset()
	for i, b := range r.key {
		r.soc.Mem.StoreByte(fuzz.SecretAddr+uint64(i), b)
	}
	r.soc.Mem.StoreByte(fuzz.SecretAddr+calZeroOff, 0x00)
	r.soc.Mem.StoreByte(fuzz.SecretAddr+calOneOff, 0xff)
	r.soc.Cores[0].LoadProgram(victimProgram(bitOff, r.rng.Intn(4)))
	r.soc.Cores[1].LoadProgram(attackerProgram(r.rng.Intn(3)))
	r.soc.Run()
	att := r.soc.Cores[1]
	t0, t1 := att.Reg(regT0), att.Reg(regT1)
	if t1 <= t0 {
		return -1
	}
	return int64(t1 - t0)
}

func (r *crossRunner) deltas(bitOff, k int) []int64 {
	out := make([]int64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, r.trial(bitOff))
	}
	return out
}

// RunCrossCore extracts the victim's key from the attacker core's timing
// alone. mkSoC must build a two-core system sharing the D-channel.
func RunCrossCore(mkSoC func() *uarch.SoC, key [KeyBytes]byte, attempts, trialsPerBit int, seed int64) Result {
	soc := mkSoC()
	if len(soc.Cores) < 2 {
		return Result{ID: "XC"}
	}
	r := &crossRunner{soc: soc, rng: rand.New(rand.NewSource(seed)), key: key}
	res := Result{ID: "XC"}

	cls := newClassifier(
		r.deltas(calZeroOff*8, trialsPerBit+4),
		r.deltas(calOneOff*8, trialsPerBit+4),
	)
	if !cls.ok {
		return res
	}
	res.Delta0 = float64(cls.char0)
	res.Delta1 = float64(cls.char1)
	res.Signal = float64(cls.signal())

	bitsCorrect, keysCorrect := 0, 0
	for a := 0; a < attempts; a++ {
		exact := true
		for bit := 0; bit < KeyBytes*8; bit++ {
			votes := [2]int{}
			informative := 0
			for t := 0; t < trialsPerBit*4 && informative < trialsPerBit; t++ {
				v := cls.classify(r.trial(bit))
				if v < 0 {
					continue
				}
				votes[v]++
				informative++
			}
			guess := byte(0)
			if votes[1] > votes[0] {
				guess = 1
			}
			truth := (r.key[bit/8] >> uint(bit%8)) & 1
			if guess == truth {
				bitsCorrect++
			} else {
				exact = false
			}
		}
		if exact {
			keysCorrect++
		}
	}
	total := attempts * KeyBytes * 8
	res.BitAccuracy = float64(bitsCorrect) / float64(total)
	res.KeyAccuracy = float64(keysCorrect) / float64(attempts)
	return res
}
