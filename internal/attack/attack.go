// Package attack implements Sonar's exploitability analysis (paper §7.3 and
// §8.5): Meltdown-style attack templates (Listing 1) for the newly
// discovered contention side channels, bit-by-bit extraction of a 128-bit
// privileged key, and accuracy measurement over repeated jittered trials.
//
// The template follows Listing 1: a computation block delays the operand
// resolution of the older contending instruction; a privileged access
// faults but — under lazy exception handling — its dependents execute
// transiently and, depending on the secret bit, contend with the older
// instruction. The handler reads the cycle counter, and the attacker infers
// the bit from the elapsed time.
package attack

import (
	"math/rand"
	"sort"

	"sonar/internal/fuzz"
	"sonar/internal/isa"
	"sonar/internal/uarch"
)

// Attack-template registers (disjoint from chain register x9).
const (
	regT0     = 20 // rdcycle before the contention window
	regT1     = 21 // rdcycle in the exception handler
	regLine5  = 22
	regPrime  = 23
	regTmpA   = 24
	regAddr   = 25
	regShift  = 26
	regData   = 28 // fuzz.RegDataBase
	regPriv   = 29
	regSecret = 30
	regTrans  = 31
)

// KeyBytes is the extracted key size (128 bits, §8.5).
const KeyBytes = 16

// calibration byte offsets within the privileged page.
const (
	calZeroOff = 24 // planted 0x00
	calOneOff  = 25 // planted 0xff
)

// PoC is one Meltdown-style proof of concept for a specific side channel.
type PoC struct {
	// ID is the paper's side-channel label (e.g. "S5").
	ID string
	// Description summarizes the contended resource.
	Description string
	// DUT names the core the channel exists on ("boom" or "nutshell").
	DUT string
	// NewSoC builds the target system (behavioural configuration).
	NewSoC func() *uarch.SoC
	// Template assembles the attack program for one key bit. bitOff is the
	// absolute bit index within the privileged page; jitter adds 0..3
	// alignment nops (measurement noise); chainLen sets the length of the
	// Listing-1 computation block (0 = the template's default).
	Template func(bitOff, jitter, chainLen int) *isa.Program
}

// Result is the outcome of running a PoC against a key.
type Result struct {
	// ID echoes the PoC label.
	ID string
	// BitAccuracy is the fraction of key bits recovered correctly,
	// averaged over attempts.
	BitAccuracy float64
	// KeyAccuracy is the fraction of attempts recovering the whole
	// 128-bit key exactly — the paper's "inferred accuracy for a
	// consecutive 128-bit key".
	KeyAccuracy float64
	// Delta0 and Delta1 are the calibration timing means for bit 0 and 1.
	Delta0, Delta1 float64
	// Signal is the calibration separation |Delta1 - Delta0| in cycles,
	// comparable to Table 3's "Time Difference".
	Signal float64
}

// runner executes attack programs on one SoC instance.
type runner struct {
	soc *uarch.SoC
	rng *rand.Rand
	key [KeyBytes]byte
}

func newRunner(p PoC, key [KeyBytes]byte, seed int64) *runner {
	soc := p.NewSoC()
	soc.Mem.SetPrivRange(fuzz.PrivBase, fuzz.PrivLimit)
	return &runner{soc: soc, rng: rand.New(rand.NewSource(seed)), key: key}
}

// handlerProgram is fetched after the fault commits: it reads the cycle
// counter and halts.
func handlerProgram() *isa.Program {
	return isa.NewProgram(fuzz.HandlerBase,
		isa.Instr{Op: isa.RDCYCLE, Rd: regT1},
		isa.Instr{Op: isa.ECALL},
	)
}

// trial runs the template once for an absolute privileged bit offset and
// returns the measured delta (handler entry time minus t0), or -1 if the
// handler never ran.
func (r *runner) trial(p PoC, bitOff, chainLen int) int64 {
	r.soc.Reset()
	for i, b := range r.key {
		r.soc.Mem.StoreByte(fuzz.PrivBase+uint64(i), b)
	}
	r.soc.Mem.StoreByte(fuzz.PrivBase+calZeroOff, 0x00)
	r.soc.Mem.StoreByte(fuzz.PrivBase+calOneOff, 0xff)

	prog := p.Template(bitOff, r.rng.Intn(4), chainLen)
	core := r.soc.Cores[0]
	core.LoadProgram(prog)
	r.soc.Mem.WriteBytes(fuzz.HandlerBase, handlerProgram().Image())
	core.SetHandler(fuzz.HandlerBase)
	r.soc.Run()
	t0, t1 := core.Reg(regT0), core.Reg(regT1)
	if t1 <= t0 {
		return -1
	}
	return int64(t1 - t0)
}

// deltas collects k raw calibration deltas for a bit offset.
func (r *runner) deltas(p PoC, bitOff, chainLen, k int) []int64 {
	out := make([]int64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, r.trial(p, bitOff, chainLen))
	}
	return out
}

// tune scans Listing-1 computation-block lengths against the calibration
// bits and returns the classifier with the strongest timing signal — the
// same operand-timing search Sonar's interval-guided mutation performs
// during fuzzing, reused at exploitation time.
func (r *runner) tune(p PoC, k int) (chainLen int, cls classifier) {
	type cand struct {
		l   int
		sep int64
	}
	var cands []cand
	for l := 2; l <= 60; l += 2 {
		c := newClassifier(r.deltas(p, calZeroOff*8, l, k), r.deltas(p, calOneOff*8, l, k))
		if !c.ok {
			continue
		}
		cands = append(cands, cand{l, c.separation()})
	}
	if len(cands) == 0 {
		return 0, classifier{}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].sep > cands[j].sep })
	// Verify the top candidates with fresh trials: a small sample can show
	// spurious jitter-driven separation that does not reproduce.
	var best int64 = -1
	for i := 0; i < len(cands) && i < 4; i++ {
		l := cands[i].l
		c := newClassifier(r.deltas(p, calZeroOff*8, l, k+3), r.deltas(p, calOneOff*8, l, k+3))
		if !c.ok {
			continue
		}
		if sep := c.separation(); sep > best {
			best, chainLen, cls = sep, l, c
		}
	}
	return chainLen, cls
}

// Run executes the PoC: chain-length tuning and calibration against known
// planted bytes, then bit-by-bit key extraction with majority voting,
// repeated for the given number of attempts.
func Run(p PoC, key [KeyBytes]byte, attempts, trialsPerBit int, seed int64) Result {
	r := newRunner(p, key, seed)
	res := Result{ID: p.ID}

	// Calibration: the attacker tunes the template against known planted
	// bytes first.
	chainLen, _ := r.tune(p, 5)
	if chainLen == 0 {
		return res // handler never ran; no channel
	}
	cls := newClassifier(
		r.deltas(p, calZeroOff*8, chainLen, trialsPerBit+4),
		r.deltas(p, calOneOff*8, chainLen, trialsPerBit+4),
	)
	if !cls.ok {
		return res
	}
	res.Delta0 = float64(cls.char0)
	res.Delta1 = float64(cls.char1)
	res.Signal = float64(cls.signal())

	bitsCorrect := 0
	keysCorrect := 0
	for a := 0; a < attempts; a++ {
		exact := true
		for bit := 0; bit < KeyBytes*8; bit++ {
			votes := [2]int{}
			informative := 0
			for t := 0; t < trialsPerBit*4 && informative < trialsPerBit; t++ {
				v := cls.classify(r.trial(p, bit, chainLen))
				if v < 0 {
					continue
				}
				votes[v]++
				informative++
			}
			guess := byte(0)
			if votes[1] > votes[0] {
				guess = 1
			}
			truth := (r.key[bit/8] >> uint(bit%8)) & 1
			if guess == truth {
				bitsCorrect++
			} else {
				exact = false
			}
		}
		if exact {
			keysCorrect++
		}
	}
	total := attempts * KeyBytes * 8
	res.BitAccuracy = float64(bitsCorrect) / float64(total)
	res.KeyAccuracy = float64(keysCorrect) / float64(attempts)
	return res
}
