package attack

// classifier turns raw timing deltas into bit votes. Contention PoC timing
// is often multi-modal: misaligned trials (jitter pushed the probe out of
// the contention window) collapse onto a common baseline regardless of the
// secret, while aligned trials land on per-bit signature values. Instead of
// a mean threshold, the classifier compares each measurement against the
// empirical calibration distributions: it votes for the bit whose
// calibration set contains the value more often, falls back to
// nearest-neighbour distance for unseen values, and abstains on ties
// (baseline values common to both distributions).
type classifier struct {
	counts0, counts1 map[int64]int
	vals0, vals1     []int64
	// char0/char1 are the most characteristic values of each distribution
	// (largest count advantage over the other); their separation is the
	// reported signal.
	char0, char1 int64
	ok           bool
}

// newClassifier builds a classifier from calibration deltas for known 0 and
// known 1 bits. Negative deltas (no measurement) are ignored.
func newClassifier(d0s, d1s []int64) classifier {
	c := classifier{
		counts0: make(map[int64]int),
		counts1: make(map[int64]int),
	}
	for _, d := range d0s {
		if d >= 0 {
			c.counts0[d]++
			c.vals0 = append(c.vals0, d)
		}
	}
	for _, d := range d1s {
		if d >= 0 {
			c.counts1[d]++
			c.vals1 = append(c.vals1, d)
		}
	}
	if len(c.vals0) == 0 || len(c.vals1) == 0 {
		return c
	}
	c.ok = true
	best0, best1 := 0, 0
	for v, n := range c.counts0 {
		if adv := n - c.counts1[v]; adv > best0 {
			best0, c.char0 = adv, v
		}
	}
	for v, n := range c.counts1 {
		if adv := n - c.counts0[v]; adv > best1 {
			best1, c.char1 = adv, v
		}
	}
	if best0 == 0 || best1 == 0 {
		// The distributions are indistinguishable.
		c.char0, c.char1 = 0, 0
	}
	return c
}

// signal is the separation between the characteristic values in cycles —
// the observable secret-dependent time difference (Table 3's "Time
// Difference" column analogue).
func (c classifier) signal() int64 {
	return abs64(c.char1 - c.char0)
}

// separation is the total-variation distance between the calibration
// distributions, scaled by 1000 (0 = indistinguishable, 1000 = disjoint).
// The chain-length tuner maximizes it.
func (c classifier) separation() int64 {
	if !c.ok {
		return 0
	}
	seen := make(map[int64]bool)
	var tv float64
	for v := range c.counts0 {
		seen[v] = true
	}
	for v := range c.counts1 {
		seen[v] = true
	}
	for v := range seen {
		p0 := float64(c.counts0[v]) / float64(len(c.vals0))
		p1 := float64(c.counts1[v]) / float64(len(c.vals1))
		d := p0 - p1
		if d < 0 {
			d = -d
		}
		tv += d
	}
	return int64(tv * 500) // tv in [0,2]
}

// classify votes on one measurement: 0, 1, or -1 (abstain).
func (c classifier) classify(d int64) int {
	if d < 0 || !c.ok {
		return -1
	}
	n0, ok0 := c.counts0[d]
	n1, ok1 := c.counts1[d]
	switch {
	case ok0 && n0 > n1:
		return 0
	case ok1 && n1 > n0:
		return 1
	case ok0 && ok1:
		return -1 // baseline value common to both: uninformative
	}
	// Unseen value: nearest neighbour across the calibration sets.
	d0 := nearestDist(c.vals0, d)
	d1 := nearestDist(c.vals1, d)
	switch {
	case d0 < d1:
		return 0
	case d1 < d0:
		return 1
	}
	return -1
}

func nearestDist(vals []int64, d int64) int64 {
	best := int64(1) << 62
	for _, v := range vals {
		if dist := abs64(v - d); dist < best {
			best = dist
		}
	}
	return best
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
