package boom

import (
	"strings"
	"testing"

	"sonar/internal/trace"
)

func TestNetlistScaleMatchesPaper(t *testing.T) {
	s := New()
	a := trace.Analyze(s.Net)
	// Paper Figure 6: 31,484 naive MUXes -> 8,975 traced points on BOOM.
	if a.NaiveMuxCount < 25_000 || a.NaiveMuxCount > 50_000 {
		t.Errorf("naive MUX count = %d, want paper-scale (~31k)", a.NaiveMuxCount)
	}
	if got := len(a.Points); got < 7_000 || got > 13_000 {
		t.Errorf("traced points = %d, want ~9k", got)
	}
	red := 1 - float64(len(a.Points))/float64(a.NaiveMuxCount)
	if red < 0.6 || red > 0.85 {
		t.Errorf("tracing reduction = %.1f%%, paper reports 71.5%%", 100*red)
	}
}

func TestComponentsPresent(t *testing.T) {
	s := New()
	a := trace.Analyze(s.Net)
	dist := a.ByComponent()
	for _, comp := range []string{"frontend", "rob", "exe", "lsu", "tilelink"} {
		if dist[comp][0] == 0 {
			t.Errorf("component %s has no contention points", comp)
		}
	}
	// The channel-bearing arbitration points must exist by name.
	for _, sig := range []string{
		"tilelink.d_channel_data",       // S1-S4
		"lsu.dcache.mshr_req",           // S5
		"lsu.dcache.rlb.io_refill_data", // S6
		"lsu.dcache.wlb.io_evict_data",  // S7
		"exe.wb.resp_data",              // S8
		"exe.div.req_in",                // S9
	} {
		if _, ok := s.Net.Signal(sig); !ok {
			t.Errorf("channel-bearing signal %s missing", sig)
		}
	}
}

func TestDualSharesOneBus(t *testing.T) {
	s := NewDual()
	if len(s.Cores) != 2 {
		t.Fatalf("cores = %d", len(s.Cores))
	}
	// Both cores' request ports hang off the single tilelink module.
	found := 0
	for _, sig := range s.Net.Signals() {
		if strings.HasPrefix(sig.Name(), "tilelink.io_req_") && strings.HasSuffix(sig.Name(), "_valid") {
			found++
		}
	}
	if found != 6 { // 3 sources per core
		t.Errorf("bus request ports = %d, want 6", found)
	}
}

func TestLiteIsBehaviourallyEquivalentButSmaller(t *testing.T) {
	full := New()
	lite := NewLite()
	if lite.Net.NumMuxes() >= full.Net.NumMuxes()/10 {
		t.Errorf("lite netlist not small: %d vs %d muxes", lite.Net.NumMuxes(), full.Net.NumMuxes())
	}
	if full.Cores[0].Cfg != lite.Cores[0].Cfg {
		t.Error("lite core configuration differs from full")
	}
}

// Two independently elaborated SoCs must analyze to identical contention
// points (same IDs, same output signals): the parallel campaign engine
// merges triggered-point IDs across per-worker DUTs and relies on this.
func TestElaborationAnalysisDeterministic(t *testing.T) {
	a := trace.Analyze(NewLite().Net)
	b := trace.Analyze(NewLite().Net)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i].ID != b.Points[i].ID ||
			a.Points[i].Out.Name() != b.Points[i].Out.Name() ||
			a.Points[i].Component != b.Points[i].Component {
			t.Fatalf("point %d differs across elaborations: %s vs %s",
				i, a.Points[i].Out.Name(), b.Points[i].Out.Name())
		}
	}
}
