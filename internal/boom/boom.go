// Package boom builds the BOOM-like DUT: the larger of the paper's two
// out-of-order RISC-V cores (Table 1, first column). Its microarchitecture —
// TileLink D-channel, 2 MSHRs with pri/sec modes, read/write line buffers,
// a shared execution-unit response port, a pipelined multiplier plus a
// non-pipelined divider, and lazy (commit-time) exception handling —
// contains all twelve BOOM side channels of paper Table 3 (S1-S12).
//
// Beyond the behavioural model, the package elaborates the repetitive
// structural selection logic of a real BOOM-class RTL design (predictor
// tables, ROB write ports, register file, cache metadata arrays, ...) so
// that contention-point identification and filtering (paper Figures 6 and
// 7) operate at a realistic scale and distribution.
package boom

import (
	"sonar/internal/hdl/check"
	"sonar/internal/uarch"
)

// Arrays returns the structural array layout of the BOOM-like netlist. The
// points concentrate in the frontend, ROB, LSU, and bus, matching the
// distribution the paper reports in Figure 7a.
func Arrays() []uarch.ArraySpec {
	return []uarch.ArraySpec{
		// Frontend: fetch buffer (24 entries, fetch width 8), branch
		// predictors (uBTB + BTB + TAGE per Table 1), fetch target queue,
		// and ICache metadata/data arrays.
		{Component: "frontend", Name: "fetchbuf", Entries: 24, Fanin: 8, Width: 40, Role: uarch.RoleFetchBuf},
		{Component: "frontend", Name: "btb", Entries: 1024, Fanin: 3, Width: 40, Role: uarch.RoleBTB},
		{Component: "frontend", Name: "ubtb", Entries: 16, Fanin: 2, Width: 40},
		{Component: "frontend", Name: "tage", Entries: 2048, Fanin: 4, Width: 12},
		{Component: "frontend", Name: "ftq", Entries: 40, Fanin: 4, Width: 40},
		{Component: "frontend", Name: "icache_meta", Entries: 256, Fanin: 5, Width: 32},
		{Component: "frontend", Name: "icache_data", Entries: 256, Fanin: 3, Width: 64},
		{Component: "frontend", Name: "ras", Entries: 32, Fanin: 2, Width: 40},
		// ROB: 96 entries written by an 8-wide dispatch, writeback and flag
		// update ports.
		{Component: "rob", Name: "entries", Entries: 96, Fanin: 8, Width: 40, Role: uarch.RoleROB},
		{Component: "rob", Name: "wb", Entries: 96, Fanin: 5, Width: 8},
		{Component: "rob", Name: "flags", Entries: 96, Fanin: 3, Width: 4},
		// Execution complex: issue queue slots, 100/96 int/fp physical
		// registers, bypass network, scheduler entries.
		{Component: "exe", Name: "issueq", Entries: 40, Fanin: 8, Width: 32, Role: uarch.RoleIssueQ},
		{Component: "exe", Name: "regfile", Entries: 196, Fanin: 4, Width: 64, Role: uarch.RoleRegFile},
		{Component: "exe", Name: "bypass", Entries: 30, Fanin: 6, Width: 64},
		{Component: "exe", Name: "sched", Entries: 60, Fanin: 4, Width: 16},
		// LSU: 24/24 load/store queues, DCache metadata/data arrays, MSHR
		// metadata, store-to-load forwarding match ports.
		{Component: "lsu", Name: "ldq", Entries: 24, Fanin: 6, Width: 48},
		{Component: "lsu", Name: "stq", Entries: 24, Fanin: 6, Width: 48},
		{Component: "lsu", Name: "dcache_meta", Entries: 1024, Fanin: 5, Width: 32},
		{Component: "lsu", Name: "dcache_data", Entries: 512, Fanin: 3, Width: 64},
		{Component: "lsu", Name: "mshr_meta", Entries: 16, Fanin: 4, Width: 48},
		{Component: "lsu", Name: "fwd", Entries: 24, Fanin: 4, Width: 48},
		// TileLink / peripheral bus: crossbar ports, L2 metadata, sinks.
		{Component: "tilelink", Name: "xbar", Entries: 128, Fanin: 6, Width: 64},
		{Component: "tilelink", Name: "l2_meta", Entries: 1024, Fanin: 5, Width: 32},
		{Component: "tilelink", Name: "sinks", Entries: 64, Fanin: 4, Width: 64},
	}
}

// Filters returns the per-component volume of risk-filterable points:
// constant-request configuration MUXes and no-valid routing MUXes, the two
// classes the §5.2 filter drops (~26% of BOOM's traced points in Figure 7a).
func Filters() []uarch.FilterSpec {
	return []uarch.FilterSpec{
		{Component: "frontend", Const: 300, NoValid: 500, Fanin: 4},
		{Component: "lsu", Const: 200, NoValid: 400, Fanin: 4},
		{Component: "exe", Const: 150, NoValid: 200, Fanin: 4},
		{Component: "rob", Const: 80, NoValid: 100, Fanin: 4},
		{Component: "tilelink", Const: 70, NoValid: 300, Fanin: 4},
	}
}

// New builds a single-core BOOM-like SoC with the full structural netlist.
func New() *uarch.SoC {
	return uarch.NewSoC(uarch.BoomConfig(), 1, Arrays(), Filters())
}

// NewDual builds a dual-core BOOM-like SoC sharing the L2 and TileLink
// D-channel, for the dual-core testcase template (paper Figure 4b).
func NewDual() *uarch.SoC {
	return uarch.NewSoC(uarch.BoomConfig(), 2, Arrays(), Filters())
}

// NewLite builds a single-core BOOM-like SoC without the bulk structural
// arrays: same timing behaviour, far smaller netlist. Tests and attack PoCs
// that only need the behavioural side channels use it.
func NewLite() *uarch.SoC {
	return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil)
}

// NewDualLite is NewDual without the bulk structural arrays.
func NewDualLite() *uarch.SoC {
	return uarch.NewSoC(uarch.BoomConfig(), 2, nil, nil)
}

// Check elaborates the single- and dual-core SoCs and structurally
// verifies their netlists (package check, externally-driven profile: the
// model pokes wires from Go code, so driver-coverage findings are
// informational). A non-nil error means the elaboration itself is broken —
// combinational cycle, double driver, or dense-id violation.
func Check() error {
	for _, soc := range []*uarch.SoC{New(), NewDual()} {
		if err := check.Check(soc.Net, check.Options{ExternallyDriven: true}).Err(); err != nil {
			return err
		}
	}
	return nil
}
