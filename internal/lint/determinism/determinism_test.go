package determinism_test

import (
	"testing"

	"sonar/internal/lint/analysistest"
	"sonar/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"sonar/internal/fuzz",        // canonical: every banned construct flagged
		"sonar/internal/experiments", // out of scope: no diagnostics
	)
}
