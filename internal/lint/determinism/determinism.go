// Package determinism implements the sonar-vet analyzer that keeps
// wall-clock time, unseeded randomness, and unordered map iteration out of
// the packages that feed Sonar's canonical outputs.
//
// Campaign event streams, checkpoints, and stats folds are contractually
// byte-identical per (Seed, Workers, BatchSize) — the oracle every
// determinism and resume test pins. The compiler cannot see that contract;
// this analyzer enforces its three recurring failure modes at vet time:
//
//   - time.Now / time.Since / time.Until: wall-clock values must never
//     reach canonical output;
//   - top-level math/rand (and math/rand/v2) functions: draws from the
//     global, unseeded source; campaign randomness must come from
//     explicitly seeded *rand.Rand instances (per-worker RNGs);
//   - range over a map: iteration order varies run to run; sort the keys
//     first (or fold into an order-insensitive accumulator).
//
// Intentional nondeterminism — operator-facing elapsed-time displays,
// order-insensitive folds — is waived line by line (or function by
// function, via the doc comment) with //sonar:nondeterministic-ok <reason>;
// the reason is mandatory.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"sonar/internal/lint/analysis"
	"sonar/internal/lint/directive"
)

// Analyzer flags nondeterministic constructs in canonical-output packages.
var Analyzer = &analysis.Analyzer{
	Name: "sonardeterminism",
	Doc:  "flags wall-clock reads, unseeded randomness, and map iteration in packages that feed canonical output",
	Run:  run,
}

// okDirective is the escape-hatch directive name.
const okDirective = "nondeterministic-ok"

// canonicalPackages are the import paths (plus their subpackages) whose
// outputs are canonical: event streams, checkpoints, netlist elaboration,
// analysis results, and everything those fold over. Packages whose whole
// point is wall-clock measurement (experiments, baseline) and the operator
// CLIs are outside the contract.
var canonicalPackages = []string{
	"sonar/internal/boom",
	"sonar/internal/core",
	"sonar/internal/detect",
	"sonar/internal/firrtl",
	"sonar/internal/fleet",
	"sonar/internal/fuzz",
	"sonar/internal/hdl",
	"sonar/internal/isa",
	"sonar/internal/monitor",
	"sonar/internal/nutshell",
	"sonar/internal/obs",
	"sonar/internal/sim",
	"sonar/internal/trace",
	"sonar/internal/uarch",
}

// covered reports whether the package path is under the canonical set.
func covered(path string) bool {
	for _, p := range canonicalPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// bannedTimeFuncs are the wall-clock reads.
var bannedTimeFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// allowedRandFuncs are the top-level math/rand functions that construct
// explicitly seeded generators rather than drawing from the global source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !covered(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

// checkFile walks one file; a function whose doc comment carries the
// waiver is skipped wholesale.
func checkFile(pass *analysis.Pass, f *ast.File) {
	dirs := directive.ParseFile(pass.Fset, f)
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			if _, waived := directive.FuncDirective(fd, okDirective); waived {
				return false
			}
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, dirs, n)
		case *ast.RangeStmt:
			checkRange(pass, dirs, n)
		}
		return true
	})
}

// checkCall flags wall-clock and global-source randomness calls.
func checkCall(pass *analysis.Pass, dirs *directive.Map, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	switch {
	case bannedTimeFuncs[full]:
		if !dirs.Allows(call.Pos(), okDirective) {
			pass.Reportf(call.Pos(), "call to %s reads the wall clock in a canonical-output package; results must be byte-identical across runs (waive with //sonar:%s <reason>)", full, okDirective)
		}
	case (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") && isPackageLevel(fn) && !allowedRandFuncs[fn.Name()]:
		if !dirs.Allows(call.Pos(), okDirective) {
			pass.Reportf(call.Pos(), "call to %s draws from the global unseeded source; use an explicitly seeded *rand.Rand (waive with //sonar:%s <reason>)", full, okDirective)
		}
	}
}

// checkRange flags range statements over map-typed operands.
func checkRange(pass *analysis.Pass, dirs *directive.Map, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if dirs.Allows(rs.Pos(), okDirective) {
		return
	}
	pass.Reportf(rs.Pos(), "range over map has nondeterministic iteration order in a canonical-output package; iterate sorted keys (waive with //sonar:%s <reason>)", okDirective)
}

// calleeFunc resolves a call's target to its function object, or nil for
// builtins, type conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPackageLevel reports whether fn is a package-level function (no
// receiver).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
