// Package fuzz is a determinism fixture mimicking a canonical-output
// package: its import path puts it under the analyzer's scope.
package fuzz

import (
	"math/rand"
	"sort"
	"time"
)

// Banned exercises every construct the analyzer must flag.
func Banned(m map[int]int64) int64 {
	t := time.Now()   // want `call to time\.Now reads the wall clock`
	_ = time.Since(t) // want `call to time\.Since reads the wall clock`
	_ = time.Until(t) // want `call to time\.Until reads the wall clock`
	_ = rand.Intn(4)  // want `call to math/rand\.Intn draws from the global unseeded source`
	var sum int64
	for _, v := range m { // want `range over map has nondeterministic iteration order`
		sum += v
	}
	return sum
}

// Allowed exercises the constructs that must stay clean: seeded generator
// construction, sorted-key iteration, and non-map ranges.
func Allowed(m map[int]int64) int64 {
	rng := rand.New(rand.NewSource(1))
	_ = rng.Intn(4)
	keys := make([]int, 0, len(m))
	for k := range m { //sonar:nondeterministic-ok keys collected then sorted
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum int64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// LineWaiver checks the same-line and line-above escape hatches.
func LineWaiver() time.Time {
	//sonar:nondeterministic-ok operator-facing display only
	a := time.Now()
	b := time.Now() //sonar:nondeterministic-ok operator-facing display only
	_ = b
	return a
}

// FuncWaiver is exempt wholesale through its doc-comment directive.
//
//sonar:nondeterministic-ok wall-clock measurement is this helper's purpose
func FuncWaiver(m map[int]bool) time.Time {
	for range m {
	}
	return time.Now()
}
