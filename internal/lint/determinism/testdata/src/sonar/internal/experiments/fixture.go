// Package experiments is a negative fixture: its import path is outside
// the canonical-output set, so nothing here may be flagged.
package experiments

import (
	"math/rand"
	"time"
)

// Unscoped uses every banned construct; the analyzer must stay silent.
func Unscoped(m map[int]int64) int64 {
	start := time.Now()
	_ = time.Since(start)
	_ = rand.Intn(4)
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}
