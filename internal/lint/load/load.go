// Package load parses and type-checks this module's packages for the
// standalone sonar-vet driver, with no dependency on go/packages.
//
// Module-local packages (import paths under the module path from go.mod)
// are type-checked recursively from source; standard-library imports are
// resolved by the compiler-independent source importer, so loading works
// offline with an empty module cache. Cgo is disabled for the session: the
// pure-Go fallbacks of std packages (net, etc.) type-check identically for
// analysis purposes.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: syntax, types, and location.
type Package struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the directory holding the package's files.
	Dir string
	// Fset is the position set shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// TypesInfo is the resolution info for Files.
	TypesInfo *types.Info
	// TypeErrors holds any type-checking errors (loading is tolerant: an
	// analyzer pass over a broken package is skipped, not fatal).
	TypeErrors []error
}

// Loader loads packages of a single module rooted at a directory.
type Loader struct {
	// Root is the module root (the directory holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path; nil while in progress
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root, reading the
// module path from go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("load: no module line in %s/go.mod", root)
	}
	// The source importer consults go/build; with cgo off it selects the
	// pure-Go variants of std packages, which type-check offline.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared position set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the given patterns ("./...", "./dir", "dir") relative to
// the module root and returns the matched packages in sorted import-path
// order. Directories without non-test Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// expand turns patterns into a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(l.Root, strings.TrimPrefix(rest, "./"))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.Root, strings.TrimPrefix(pat, "./")))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a package directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized). It returns
// (nil, nil) if the directory holds no non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	p := &Package{ImportPath: path, Dir: dir, Fset: l.fset, Files: files, TypesInfo: NewInfo()}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Pkg, _ = conf.Check(path, l.fset, files, p.TypesInfo)
	l.pkgs[path] = p
	return p, nil
}

// NewInfo returns a types.Info with every resolution map the analyzers
// need allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// moduleImporter resolves module-local imports by recursive source loading
// and delegates everything else to the std source importer.
type moduleImporter Loader

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("load: no Go files in %s", dir)
		}
		if p.Pkg == nil {
			return nil, fmt.Errorf("load: package %s failed to type-check", path)
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}
