// Package exporteddoc implements the sonar-vet analyzer that enforces the
// repository's documentation floor, replacing the retired standalone
// cmd/sonar-doclint binary:
//
//   - every internal package must carry a godoc package comment starting
//     with "Package <name>";
//   - every main package (cmd/, examples/) must carry a package comment —
//     the command or example synopsis;
//   - within internal packages, every exported identifier — functions,
//     methods on exported receiver types, types, consts, vars, and struct
//     fields — must carry a doc comment. Unexported receivers are skipped
//     (their exported methods are usually interface plumbing); const/var
//     specs accept the declaration group's comment or a trailing line
//     comment;
//   - within cmd packages, every top-level declaration — functions,
//     methods, types, consts, and vars, exported or not, since nothing in
//     a main package is importable — must carry a doc comment. main and
//     init are exempt (the package comment is their documentation); the
//     struct-field floor stays internal-only.
//
// Where sonar-doclint covered exported identifiers only in internal/fuzz
// and internal/obs, this analyzer holds every internal package to the same
// floor and every command to the top-level-declaration floor. Test files
// are exempt.
package exporteddoc

import (
	"go/ast"
	"sort"
	"strings"

	"sonar/internal/lint/analysis"
)

// Analyzer enforces package and exported-identifier documentation.
var Analyzer = &analysis.Analyzer{
	Name: "sonarexporteddoc",
	Doc:  "enforces package comments and the exported-identifier documentation floor of internal packages",
	Run:  run,
}

// internalPkg reports whether the import path is under an internal/ tree.
func internalPkg(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// cmdPkg reports whether the import path is under a cmd/ tree.
func cmdPkg(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Split off test files; the floor applies to the shipped surface.
	var files []*ast.File
	allTest := true
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		allTest = false
		files = append(files, f)
	}
	if allTest {
		return nil, nil // external test packages and test variants carry no floor of their own
	}

	name := pass.Pkg.Name()
	internal := internalPkg(pass.Pkg.Path())
	cmd := cmdPkg(pass.Pkg.Path())
	if internal || name == "main" {
		checkPackageDoc(pass, files, name, internal)
	}
	if internal || cmd {
		for _, f := range files {
			checkFileIdentifiers(pass, f, cmd && !internal)
		}
	}
	return nil, nil
}

// checkPackageDoc requires a package comment on at least one file; strict
// (internal) packages additionally need the canonical "Package <name>"
// opening.
func checkPackageDoc(pass *analysis.Pass, files []*ast.File, name string, strict bool) {
	doc := ""
	for _, f := range files {
		if f.Doc != nil {
			if t := strings.TrimSpace(f.Doc.Text()); len(t) > len(doc) {
				doc = t
			}
		}
	}
	switch {
	case doc == "":
		// Anchor the diagnostic on the lexically first file for a stable
		// position.
		sorted := append([]*ast.File(nil), files...)
		sort.Slice(sorted, func(i, j int) bool {
			return pass.Fset.Position(sorted[i].Pos()).Filename < pass.Fset.Position(sorted[j].Pos()).Filename
		})
		pass.Reportf(sorted[0].Name.Pos(), "package %s has no package comment", name)
	case strict && !strings.HasPrefix(doc, "Package "+name):
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) == doc {
				pass.Reportf(f.Doc.Pos(), "package comment must start with %q", "Package "+name)
				return
			}
		}
	}
}

// checkFileIdentifiers applies the identifier documentation floor to one
// file: the exported-identifier floor for internal packages, or — with cmd
// set — the top-level-declaration floor for command packages (every
// declaration regardless of case, main and init exempt).
func checkFileIdentifiers(pass *analysis.Pass, f *ast.File, cmd bool) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				continue
			}
			if cmd {
				if d.Recv == nil && (d.Name.Name == "main" || d.Name.Name == "init") {
					continue
				}
				if d.Recv != nil {
					recv, _ := receiverName(d.Recv)
					pass.Reportf(d.Pos(), "method %s.%s has no doc comment", recv, d.Name.Name)
				} else {
					pass.Reportf(d.Pos(), "function %s has no doc comment", d.Name.Name)
				}
				continue
			}
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil {
				recv, exported := receiverName(d.Recv)
				if !exported {
					continue
				}
				pass.Reportf(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
			} else {
				pass.Reportf(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
			}
		case *ast.GenDecl:
			checkGenDecl(pass, d, cmd)
		}
	}
}

// checkGenDecl checks the types, consts, vars — and, for internal
// packages, exported struct fields — of one declaration group. With cmd
// set, every spec needs documentation regardless of case and the
// struct-field floor is waived.
func checkGenDecl(pass *analysis.Pass, d *ast.GenDecl, cmd bool) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !cmd && !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				if cmd {
					pass.Reportf(s.Pos(), "type %s has no doc comment", s.Name.Name)
				} else {
					pass.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			}
			if cmd {
				continue
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				for _, field := range st.Fields.List {
					if field.Doc != nil || field.Comment != nil {
						continue
					}
					for _, n := range field.Names {
						if n.IsExported() {
							pass.Reportf(field.Pos(), "exported field %s.%s has no doc comment", s.Name.Name, n.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			kind := "var"
			if d.Tok.String() == "const" {
				kind = "const"
			}
			for _, n := range s.Names {
				if cmd {
					pass.Reportf(s.Pos(), "%s %s has no doc comment", kind, n.Name)
				} else if n.IsExported() {
					pass.Reportf(s.Pos(), "exported %s %s has no doc comment", kind, n.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's type name and whether it is
// exported.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, id.IsExported()
}
