package exporteddoc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"sonar/internal/lint/analysis"
	"sonar/internal/lint/analysistest"
	"sonar/internal/lint/exporteddoc"
	"sonar/internal/lint/load"
)

func TestExportedDoc(t *testing.T) {
	analysistest.Run(t, "testdata", exporteddoc.Analyzer,
		"sonar/internal/docfixture", // functions, methods, types
		"sonar/internal/nopkgdoc",   // missing package comment
		"sonar/internal/wrongdoc",   // wrong package-comment opening
		"sonar/cmd/nodoccmd",        // main packages need a comment too
		"sonar/cmd/gapcmd",          // cmd packages carry the top-level-declaration floor
	)
}

// TestFieldAndValueSpecs covers the trailing-comment acceptance rule, which
// cannot ride through want-comment fixtures: a trailing // want comment on a
// field or value spec would itself count as its documentation.
func TestFieldAndValueSpecs(t *testing.T) {
	const src = `// Package fields is an inline fixture.
package fields

// Geared is documented.
type Geared struct {
	Teeth int
	Pitch float64 // documented by a trailing comment
	// Depth carries a doc comment.
	Depth int
	inner int
}

const Loose = 1

const Snug = 2 // documented by a trailing comment

// Tight is documented.
const Tight = 3
`
	diags := analyzeSrc(t, "sonar/internal/fields", src)
	wantSubstrings := []string{
		"exported field Geared.Teeth has no doc comment",
		"exported const Loose has no doc comment",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing diagnostic %q in %v", want, messages(diags))
		}
	}
	if len(diags) != len(wantSubstrings) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(wantSubstrings), messages(diags))
	}
}

// TestCmdValueSpecs covers the cmd-floor const/var rule, which cannot ride
// through want-comment fixtures for the same trailing-comment reason.
func TestCmdValueSpecs(t *testing.T) {
	const src = `// Command valcmd is an inline fixture.
package main

const retries = 2

var addr = ":0" // documented by a trailing comment

// seed is documented.
var seed = int64(1)

func main() {}
`
	diags := analyzeSrc(t, "sonar/cmd/valcmd", src)
	want := "const retries has no doc comment"
	if len(diags) != 1 || !strings.Contains(diags[0].Message, want) {
		t.Errorf("got %v, want exactly one diagnostic containing %q", messages(diags), want)
	}
}

// analyzeSrc runs the analyzer over one in-memory file.
func analyzeSrc(t *testing.T, importPath, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  exporteddoc.Analyzer,
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := exporteddoc.Analyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	return diags
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
