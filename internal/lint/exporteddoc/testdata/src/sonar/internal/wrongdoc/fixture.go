// want `package comment must start with "Package wrongdoc"`
package wrongdoc
