package nopkgdoc // want `package nopkgdoc has no package comment`
