// Package docfixture exercises the exported-identifier documentation floor.
package docfixture

// Documented is fine.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented has no doc comment`

// Widget is documented.
type Widget struct{}

// Turn is documented.
func (Widget) Turn() {}

func (Widget) Spin() {} // want `exported method Widget.Spin has no doc comment`

type gear struct{}

// Mesh is exported but hangs off an unexported receiver: skipped.
func (gear) Mesh() {}

type Sprocket int // want `exported type Sprocket has no doc comment`

// Grouped docs satisfy every spec in the group.
const (
	TeethMin = 4
	TeethMax = 64
)

// unexported identifiers carry no floor.
var internalCount int

func helper() {} // unexported: skipped

var _ = internalCount
var _ = helper
var _ = gear{}
