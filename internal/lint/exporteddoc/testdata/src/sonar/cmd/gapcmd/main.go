// Command gapcmd is the cmd-floor fixture: every top-level declaration
// needs a doc comment, exported or not; main and init are exempt.
package main

// limit is documented.
const limit = 3

// verbose is documented (the undocumented const/var case is inline in
// TestCmdValueSpecs — a trailing want-comment would count as doc).
var verbose = false

// report is documented.
type report struct {
	rows int // cmd packages carry no struct-field floor
}

type tally struct{} // want `type tally has no doc comment`

// String is documented.
func (tally) String() string { return "" }

func (report) lines() int { return 0 } // want `method report.lines has no doc comment`

func load(path string) error { return nil } // want `function load has no doc comment`

// run is documented.
func run() error { return load("") }

func init() { verbose = false }

func main() { _ = run() }
