// Package unitchecker drives sonar-vet's analyzers in the two modes the
// repository uses, mirroring golang.org/x/tools/go/analysis/unitchecker
// with the standard library only:
//
//   - vet-tool mode: invoked by `go vet -vettool=sonar-vet ./...`, the
//     driver speaks cmd/go's unit-checking protocol — answer -V=full with
//     a content-hashed version line (the build cache keys on it), describe
//     flags as JSON on -flags, and otherwise accept a single *.cfg file
//     naming one package's sources and the export data of its
//     dependencies, analyze that package, and write the (empty) facts file
//     cmd/go expects;
//   - standalone mode: `sonar-vet ./...` loads the module's packages from
//     source (package load) and analyzes them in one process, needing no
//     go command around it.
//
// Diagnostics go to stderr as file:line:col: message; the exit status is 0
// when clean, 2 when diagnostics were reported, 1 on driver errors.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sonar/internal/lint/analysis"
	"sonar/internal/lint/load"
)

// Main is the entry point shared by cmd/sonar-vet: it dispatches between
// the vet-tool protocol and standalone package loading, runs the analyzers,
// and exits with the driver status.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, firstLine(a.Doc))
	}
	version := flag.String("V", "", "print version information and exit (cmd/go protocol: -V=full)")
	describe := flag.Bool("flags", false, "print the analyzer flags as JSON and exit (cmd/go protocol)")
	flag.Parse()

	if *version != "" {
		printVersion(progname)
		return
	}
	if *describe {
		printFlags()
		return
	}

	// Honor explicit -<analyzer> selections; default to all.
	selected := analyzers
	if anySelected(enabled) {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], selected))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, selected))
}

// firstLine returns the summary line of an analyzer doc string.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}

// anySelected reports whether at least one analyzer flag was set.
func anySelected(enabled map[string]*bool) bool {
	for _, b := range enabled {
		if *b {
			return true
		}
	}
	return false
}

// printVersion answers -V=full in the format cmd/go's build cache keys on:
// a single line containing the program name and a content hash of the
// executable, so rebuilding the tool invalidates cached vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlags answers -flags: cmd/go parses this JSON to learn which flags
// it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{Name: f.Name, Bool: ok && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, err := json.Marshal(flags)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// config is the JSON unit-checking configuration cmd/go hands the tool,
// describing one package and the export data of its dependencies.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by a cfg file.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("cannot decode JSON config file %s: %v", cfgFile, err)
		return 1
	}

	// The facts file must exist for cmd/go to cache the result; Sonar's
	// analyzers exchange no facts, so it is empty.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Print(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			log.Print(err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data files cmd/go compiled.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Printf("typecheck %s: %v", cfg.ImportPath, err)
		return 1
	}

	diags := runAnalyzers(analyzers, fset, files, pkg, info)
	writeVetx()
	return printDiagnostics(fset, diags, "")
}

// runStandalone loads packages from source and analyzes them in-process.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	cwd, err := os.Getwd()
	if err != nil {
		log.Print(err)
		return 1
	}
	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			log.Printf("no go.mod found above %s", cwd)
			return 1
		}
		root = parent
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		log.Print(err)
		return 1
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			log.Printf("%s: type errors (analysis may be incomplete): %v", p.ImportPath, p.TypeErrors[0])
		}
		if p.Pkg == nil {
			continue
		}
		diags = append(diags, runAnalyzers(analyzers, p.Fset, p.Files, p.Pkg, p.TypesInfo)...)
	}
	return printDiagnostics(loader.Fset(), diags, cwd)
}

// runAnalyzers applies every analyzer to one package, collecting
// diagnostics.
func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			log.Printf("analyzer %s: %v", a.Name, err)
		}
	}
	return diags
}

// printDiagnostics writes findings to stderr in file:line:col order,
// relativizing paths against base when given, and returns the exit status.
func printDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic, base string) int {
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", name, pos.Line, pos.Column, d.Message)
	}
	return 2
}
