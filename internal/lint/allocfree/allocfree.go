// Package allocfree implements the sonar-vet analyzer that enforces the
// zero-allocation contract on functions annotated //sonar:alloc-free.
//
// The steady-state DUT.Execute path recycles every buffer it needs through
// two arenas; a single reintroduced per-iteration allocation shows up
// directly as GC time in campaign throughput. AllocsPerRun tests catch such
// regressions at test time; this analyzer catches the constructs that cause
// them at vet time, inside any function whose doc comment carries
// //sonar:alloc-free:
//
//   - make and new (unless the make sits under a capacity guard — an if
//     whose condition consults cap(...), the grow-on-cold-path idiom);
//   - append calls that may grow a fresh slice: allowed only when
//     re-slicing an existing buffer (append(buf[:0], ...)) or feeding the
//     result back into the appended slice (buf = append(buf, ...)), both
//     amortized-zero on a warm arena;
//   - composite literals that allocate: slice/map literals, and literals
//     with their address taken (&T{...}); plain value literals are stores,
//     not allocations, and stay legal;
//   - function literals (closure allocation) and fmt calls;
//   - interface boxing: passing, assigning, converting, or returning a
//     concrete value where an interface is expected.
//
// Constructs inside a panic(...) argument are exempt — a panicking hot path
// has already left the steady state. Anything else intentional (one-time
// lazy initialization, cold error paths) is waived per line with
// //sonar:alloc-ok <reason>.
//
// The check is intraprocedural: callees must themselves be annotated (or
// covered by AllocsPerRun tests) for the contract to compose.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"sonar/internal/lint/analysis"
	"sonar/internal/lint/directive"
)

// Analyzer enforces //sonar:alloc-free function contracts.
var Analyzer = &analysis.Analyzer{
	Name: "sonarallocfree",
	Doc:  "flags heap-allocating constructs inside functions annotated //sonar:alloc-free",
	Run:  run,
}

// Directive names used by the analyzer.
const (
	contractDirective = "alloc-free"
	okDirective       = "alloc-ok"
)

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		dirs := directive.ParseFile(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, annotated := directive.FuncDirective(fd, contractDirective); !annotated {
				continue
			}
			c := &checker{pass: pass, dirs: dirs, fn: fd}
			c.prepare()
			c.check()
		}
	}
	return nil, nil
}

// posRange is a half-open source region [from, to).
type posRange struct{ from, to token.Pos }

// contains reports whether pos falls inside any of the ranges.
func contains(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.from <= pos && pos < r.to {
			return true
		}
	}
	return false
}

// checker scans one annotated function body.
type checker struct {
	pass *analysis.Pass
	dirs *directive.Map
	fn   *ast.FuncDecl

	// assignOf maps a call appearing as an assignment RHS to that
	// assignment, for the buf = append(buf, ...) idiom.
	assignOf map[*ast.CallExpr]*ast.AssignStmt
	// guarded are if-bodies whose condition consults cap(...).
	guarded []posRange
	// panics are panic(...) argument regions (cold by definition).
	panics []posRange
	// handled marks composite literals already reported as address-taken.
	handled map[*ast.CompositeLit]bool
}

// prepare records assignment parents, capacity-guard regions, and panic
// regions in one pre-pass.
func (c *checker) prepare() {
	c.assignOf = make(map[*ast.CallExpr]*ast.AssignStmt)
	c.handled = make(map[*ast.CompositeLit]bool)
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					c.assignOf[call] = n
				}
			}
		case *ast.IfStmt:
			if condConsultsCap(n.Cond) {
				c.guarded = append(c.guarded, posRange{n.Body.Pos(), n.Body.End()})
			}
		case *ast.CallExpr:
			if isPanic(c.pass.TypesInfo, n) {
				c.panics = append(c.panics, posRange{n.Lparen, n.Rparen + 1})
			}
		}
		return true
	})
}

// report emits a finding unless the construct sits on a panic path or the
// line carries an alloc-ok waiver.
func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if contains(c.panics, pos) || c.dirs.Allows(pos, okDirective) {
		return
	}
	c.pass.Reportf(pos, format+" in //sonar:alloc-free function %s (waive with //sonar:alloc-ok <reason>)", append(args, c.fn.Name.Name)...)
}

// check runs the main pass over the function body.
func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.handled[cl] = true
					c.report(n.Pos(), "address-taken composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if !c.handled[n] {
				c.checkCompositeLit(n)
			}
		case *ast.FuncLit:
			c.report(n.Pos(), "function literal allocates a closure")
			return false // do not descend: the closure body runs off the hot path's books
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.ValueSpec:
			c.checkValueSpec(n)
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

// checkCall handles builtins (make/new/append), fmt calls, conversions to
// interfaces, and interface boxing at call boundaries.
func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	if name, ok := builtinName(info, call); ok {
		switch name {
		case "make":
			if !contains(c.guarded, call.Pos()) {
				c.report(call.Pos(), "make allocates outside a cap(...) growth guard")
			}
		case "new":
			c.report(call.Pos(), "new allocates")
		case "append":
			c.checkAppend(call)
		}
		return
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "call to fmt.%s allocates", fn.Name())
		return
	}
	// Type conversion to an interface boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0], tv.Type) {
			c.report(call.Pos(), "conversion boxes %s into interface %s", types.ExprString(call.Args[0]), tv.Type)
		}
		return
	}
	// Concrete argument passed where an interface parameter is expected.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && boxes(info, arg, pt) {
			c.report(arg.Pos(), "argument %s boxes into interface %s", types.ExprString(arg), pt)
		}
	}
}

// checkAppend allows the two amortized-zero idioms and flags the rest.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
		return // append(buf[:0], ...): recycles an existing buffer
	}
	if as, ok := c.assignOf[call]; ok {
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call && i < len(as.Lhs) &&
				types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				return // buf = append(buf, ...): amortized growth of a retained buffer
			}
		}
	}
	c.report(call.Pos(), "append may grow an unpreallocated slice")
}

// checkCompositeLit flags literals whose backing store is heap-allocated.
func (c *checker) checkCompositeLit(cl *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(cl.Pos(), "slice literal allocates its backing array")
	case *types.Map:
		c.report(cl.Pos(), "map literal allocates")
	}
}

// checkAssign flags interface boxing on assignment.
func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := c.pass.TypesInfo.TypeOf(as.Lhs[i])
		if lt != nil && isInterface(lt) && boxes(c.pass.TypesInfo, as.Rhs[i], lt) {
			c.report(as.Rhs[i].Pos(), "assignment boxes %s into interface %s", types.ExprString(as.Rhs[i]), lt)
		}
	}
}

// checkValueSpec flags var declarations that box into interface types.
func (c *checker) checkValueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	lt := c.pass.TypesInfo.TypeOf(vs.Type)
	if lt == nil || !isInterface(lt) {
		return
	}
	for _, v := range vs.Values {
		if boxes(c.pass.TypesInfo, v, lt) {
			c.report(v.Pos(), "declaration boxes %s into interface %s", types.ExprString(v), lt)
		}
	}
}

// checkReturn flags returns that box concrete values into interface
// results.
func (c *checker) checkReturn(rs *ast.ReturnStmt) {
	if c.fn.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range c.fn.Type.Results.List {
		t := c.pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(rs.Results) != len(resultTypes) {
		return // bare return or call spread; nothing boxed directly here
	}
	for i, r := range rs.Results {
		if resultTypes[i] != nil && isInterface(resultTypes[i]) && boxes(c.pass.TypesInfo, r, resultTypes[i]) {
			c.report(r.Pos(), "return boxes %s into interface %s", types.ExprString(r), resultTypes[i])
		}
	}
}

// boxes reports whether assigning expr to an interface target heap-boxes a
// concrete value: the expression's own type is neither an interface nor
// untyped nil.
func boxes(info *types.Info, expr ast.Expr, target types.Type) bool {
	_ = target
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// condConsultsCap reports whether an if condition mentions the cap builtin
// — the growth-guard idiom `if cap(buf) < need { buf = make(...) }`.
func condConsultsCap(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "cap" {
			found = true
		}
		return !found
	})
	return found
}

// builtinName resolves a call to a language builtin.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// isPanic reports whether the call is the panic builtin.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	name, ok := builtinName(info, call)
	return ok && name == "panic"
}

// calleeFunc resolves a call's target function object.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// callSignature returns the signature of a non-builtin call target.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}
