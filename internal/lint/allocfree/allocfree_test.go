package allocfree_test

import (
	"testing"

	"sonar/internal/lint/allocfree"
	"sonar/internal/lint/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "allocfixture")
}
