// Package allocfixture exercises the //sonar:alloc-free contract checker.
package allocfixture

import "fmt"

type point struct{ x, y int }

// Sink consumes a value through an interface parameter.
func Sink(v interface{}) { _ = v }

// Bad violates the contract through every construct the analyzer covers.
//
//sonar:alloc-free
func Bad(buf []byte, n int) interface{} {
	s := make([]byte, n) // want `make allocates outside a cap\(\.\.\.\) growth guard`
	p := new(int)        // want `new allocates`
	_ = p
	grown := append(s, 1) // want `append may grow an unpreallocated slice`
	_ = grown
	_ = fmt.Sprintf("%d", n) // want `call to fmt\.Sprintf allocates`
	lit := []int{1, 2}       // want `slice literal allocates its backing array`
	_ = lit
	mp := map[int]int{} // want `map literal allocates`
	_ = mp
	pt := &point{1, 2} // want `address-taken composite literal escapes to the heap`
	_ = pt
	f := func() {} // want `function literal allocates a closure`
	f()
	Sink(n)                   // want `argument n boxes into interface`
	var boxed interface{} = n // want `declaration boxes n into interface`
	boxed = buf               // want `assignment boxes buf into interface`
	_ = boxed
	return n // want `return boxes n into interface`
}

// Good uses only the amortized-zero idioms; nothing may be flagged.
//
//sonar:alloc-free
func Good(buf, src []byte, need int) []byte {
	if cap(buf) < need {
		buf = make([]byte, need) // growth guard: cold path
	}
	buf = append(buf[:0], src...)
	buf = append(buf, 0)
	var pt point
	pt = point{1, 2} // value literal: a store, not an allocation
	_ = pt
	if need < 0 {
		panic(fmt.Sprintf("bad need %d", need)) // panic argument: cold path
	}
	scratch := make([]byte, 8) //sonar:alloc-ok one-time scratch, waived for the test
	_ = scratch
	return buf
}

// Unannotated carries no contract; its allocations are not the analyzer's
// business.
func Unannotated() []int {
	return []int{1, 2, 3}
}
