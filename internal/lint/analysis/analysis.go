// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with a
// Run function over one type-checked package (a Pass), reporting
// Diagnostics.
//
// Sonar vendors no third-party modules, so the real x/tools framework is
// unavailable; this package keeps the same shape (Analyzer, Pass,
// Diagnostic, Reportf) so the repository's analyzers — and their tests —
// would port to the upstream framework by changing only import paths. The
// drivers live in package unitchecker (the go vet -vettool protocol and a
// standalone ./... walker) and the fixture harness in package analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, a documentation string, and
// a Run function applied to each package independently.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags. It must
	// be a valid identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the check to one package. The returned value is unused by
	// Sonar's drivers (the upstream framework threads it to dependent
	// analyzers) but kept for API fidelity.
	Run func(*Pass) (interface{}, error)
}

// Pass presents one type-checked package to an Analyzer's Run function and
// collects its diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position within the Pass's FileSet and a
// message. Message conventionally ends without a period.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Category optionally subdivides the analyzer's findings.
	Category string
	// Message is the human-readable finding text.
	Message string
}
