// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/; a fixture file marks
// each line that must produce a diagnostic with a trailing comment of the
// form
//
//	// want `regexp`              (or a double-quoted Go string)
//	// want `re1` `re2`           (several diagnostics on one line)
//
// Every reported diagnostic must be matched by a want pattern on its line,
// and every want pattern must match at least one diagnostic on its line;
// anything else fails the test. Fixture packages are type-checked with the
// same loader as the standalone driver, so standard-library imports work
// offline and fixture import paths can mimic real Sonar packages (the
// determinism analyzer scopes itself by import path).
package analysistest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sonar/internal/lint/analysis"
	"sonar/internal/lint/load"
)

// Run analyzes each fixture package under testdata/src and verifies the
// diagnostics against the // want expectations in its files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(importPath))
	fset := token.NewFileSet()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %s: %v", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture package %s has no Go files", importPath)
	}

	build.Default.CgoEnabled = false // std resolves offline via its pure-Go variants
	info := load.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("fixture package %s does not type-check: %v", importPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	check(t, fset, files, diags)
}

// expectation is one want pattern at a file line.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// check reconciles diagnostics with want expectations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation) // file -> line -> patterns
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		wants[name] = make(map[int][]*expectation)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// want ")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, pat := range splitPatterns(rest) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", name, line, pat, err)
					}
					wants[name][line] = append(wants[name][line], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		exps := wants[pos.Filename][pos.Line]
		matched := false
		for _, e := range exps {
			if e.rx.MatchString(d.Message) {
				e.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for name, byLine := range wants { //sonar:nondeterministic-ok test-failure enumeration order does not affect pass/fail
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matched pattern %q", name, line, e.rx)
				}
			}
		}
	}
}

// splitPatterns parses the quoted or backquoted patterns of a want clause.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quoted string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(pats, s)
			}
			quoted = s[1 : 1+end]
			s = strings.TrimSpace(s[end+2:])
		case '"':
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				return append(pats, s)
			}
			if uq, err := strconv.Unquote(s[:end+2]); err == nil {
				quoted = uq
			} else {
				quoted = rest[:end]
			}
			s = strings.TrimSpace(s[end+2:])
		default:
			return append(pats, s)
		}
		pats = append(pats, quoted)
	}
	return pats
}
