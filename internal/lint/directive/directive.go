// Package directive parses Sonar's //sonar: source annotations, the
// contract markers and escape hatches consumed by the sonar-vet analyzers
// (docs/STATIC_ANALYSIS.md):
//
//	//sonar:alloc-free                     function contract: no steady-state heap allocation
//	//sonar:alloc-ok <reason>              line escape hatch inside an alloc-free function
//	//sonar:nondeterministic-ok <reason>   line or function escape hatch for the determinism analyzer
//
// A line-level directive applies to constructs on its own line (trailing
// comment) or on the line immediately below (preceding comment line). A
// function-level directive lives in the function's doc comment and covers
// the whole body. Escape hatches should carry a reason; the analyzers flag
// bare ones so the "why" survives review.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment prefix introducing a Sonar directive.
const Prefix = "//sonar:"

// Directive is one parsed //sonar: annotation.
type Directive struct {
	// Name is the directive name ("alloc-free", "alloc-ok",
	// "nondeterministic-ok").
	Name string
	// Reason is the free text after the name, if any.
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// Map indexes the directives of one file by line number.
type Map struct {
	fset   *token.FileSet
	byLine map[int][]Directive
}

// ParseFile collects every //sonar: directive in the file.
func ParseFile(fset *token.FileSet, f *ast.File) *Map {
	m := &Map{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parse(c)
			if !ok {
				continue
			}
			m.byLine[fset.Position(c.Pos()).Line] = append(m.byLine[fset.Position(c.Pos()).Line], d)
		}
	}
	return m
}

// parse decodes one comment as a directive.
func parse(c *ast.Comment) (Directive, bool) {
	rest, ok := strings.CutPrefix(c.Text, Prefix)
	if !ok {
		return Directive{}, false
	}
	name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// Allows reports whether a directive with the given name covers the node
// position: on the same line, or alone on the line above.
func (m *Map) Allows(pos token.Pos, name string) bool {
	line := m.fset.Position(pos).Line
	for _, d := range m.byLine[line] {
		if d.Name == name {
			return true
		}
	}
	for _, d := range m.byLine[line-1] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// FuncDirective returns the named directive from a function's doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	if fn.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parse(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}
