package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe on a nil receiver (a disabled counter)
// and for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down. The zero value is ready
// to use; all methods are safe on a nil receiver and for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations <= uppers[i], plus an implicit +Inf bucket).
// All methods are safe on a nil receiver and for concurrent use.
type Histogram struct {
	uppers []float64
	counts []atomic.Int64 // len(uppers)+1; the last is the +Inf bucket
	count  atomic.Int64
	sum    Gauge
}

func newHistogram(uppers []float64) *Histogram {
	u := append([]float64(nil), uppers...)
	sort.Float64s(u)
	return &Histogram{uppers: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Metric kinds, matching Prometheus TYPE names.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric: either a single series or, when label is
// non-empty, a set of labeled child series created on demand.
type family struct {
	name, help, kind string
	label            string

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// At returns the child counter for the given label value, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op counter).
func (v *CounterVec) At(label string) *Counter {
	if v == nil {
		return nil
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.counters[label]
	if !ok {
		c = &Counter{}
		v.f.counters[label] = c
	}
	return c
}

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// At returns the child gauge for the given label value, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op gauge).
func (v *GaugeVec) At(label string) *Gauge {
	if v == nil {
		return nil
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g, ok := v.f.gauges[label]
	if !ok {
		g = &Gauge{}
		v.f.gauges[label] = g
	}
	return g
}

// Metrics is a registry of named metric families with deterministic
// Prometheus text exposition. Registration is get-or-create: asking twice
// for the same name returns the same metric; asking with a conflicting kind
// panics (a programming error, like redeclaring a variable).
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: make(map[string]*family)}
}

func (m *Metrics) register(name, help, kind, label string) *family {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.families[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q, was %s/%q",
				name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label}
	switch {
	case label != "" && kind == kindCounter:
		f.counters = make(map[string]*Counter)
	case label != "" && kind == kindGauge:
		f.gauges = make(map[string]*Gauge)
	case kind == kindCounter:
		f.counter = &Counter{}
	case kind == kindGauge:
		f.gauge = &Gauge{}
	}
	m.families[name] = f
	return f
}

// Counter registers (or retrieves) an unlabeled counter.
func (m *Metrics) Counter(name, help string) *Counter {
	return m.register(name, help, kindCounter, "").counter
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	return m.register(name, help, kindGauge, "").gauge
}

// Histogram registers (or retrieves) a histogram with the given bucket
// upper bounds (an implicit +Inf bucket is always added).
func (m *Metrics) Histogram(name, help string, uppers []float64) *Histogram {
	f := m.register(name, help, kindHistogram, "")
	m.mu.Lock()
	defer m.mu.Unlock()
	if f.histogram == nil {
		f.histogram = newHistogram(uppers)
	}
	return f.histogram
}

// CounterVec registers (or retrieves) a counter family with one label.
func (m *Metrics) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: m.register(name, help, kindCounter, label)}
}

// GaugeVec registers (or retrieves) a gauge family with one label.
func (m *Metrics) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: m.register(name, help, kindGauge, label)}
}

// ExpositionText renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families are sorted by name and labeled series by
// label value, so the output is deterministic for deterministic values.
func (m *Metrics) ExpositionText() string {
	m.mu.Lock()
	names := make([]string, 0, len(m.families))
	for name := range m.families { //sonar:nondeterministic-ok keys collected then sorted
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, m.families[name])
	}
	m.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		f.expose(&b)
	}
	return b.String()
}

func (f *family) expose(b *strings.Builder) {
	switch {
	case f.label != "" && f.kind == kindCounter:
		f.mu.Lock()
		for _, label := range sortedKeysC(f.counters) {
			fmt.Fprintf(b, "%s{%s=%q} %d\n", f.name, f.label, label, f.counters[label].Value())
		}
		f.mu.Unlock()
	case f.label != "" && f.kind == kindGauge:
		f.mu.Lock()
		for _, label := range sortedKeysG(f.gauges) {
			fmt.Fprintf(b, "%s{%s=%q} %s\n", f.name, f.label, label, formatFloat(f.gauges[label].Value()))
		}
		f.mu.Unlock()
	case f.kind == kindCounter:
		fmt.Fprintf(b, "%s %d\n", f.name, f.counter.Value())
	case f.kind == kindGauge:
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.gauge.Value()))
	case f.kind == kindHistogram:
		h := f.histogram
		cum := int64(0)
		for i, u := range h.uppers {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", f.name, formatFloat(u), cum)
		}
		cum += h.counts[len(h.uppers)].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
		fmt.Fprintf(b, "%s_sum %s\n", f.name, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count %d\n", f.name, h.Count())
	}
}

func sortedKeysC(m map[string]*Counter) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //sonar:nondeterministic-ok keys collected then sorted
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysG(m map[string]*Gauge) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //sonar:nondeterministic-ok keys collected then sorted
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving ExpositionText — a drop-in
// /metrics endpoint for a Prometheus scrape.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(m.ExpositionText()))
	})
}

// ParseExposition parses Prometheus text exposition into a map from series
// (metric name plus any label set, verbatim) to value. It validates the
// line grammar and is the round-trip check used by the observability tests.
func ParseExposition(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("line %d: no value separator: %q", ln+1, line)
		}
		series, val := line[:i], line[i+1:]
		if err := checkSeriesName(series); err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, val, err)
		}
		out[series] = v
	}
	return out, nil
}

func checkSeriesName(series string) error {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			return fmt.Errorf("unterminated label set in %q", series)
		}
		name = series[:i]
	}
	if name == "" {
		return fmt.Errorf("empty metric name in %q", series)
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("bad metric name %q", name)
		}
	}
	return nil
}
