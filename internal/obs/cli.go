package obs

import (
	"fmt"
	"io"
	"net/http"
	"os"
)

// CLIObserver builds the Observer behind the -metrics/-events/-progress
// flags shared by cmd/sonar and cmd/sonar-bench:
//
//   - metricsPath: Prometheus exposition text written by finish after the
//     campaign ("" = none, "-" = stdout);
//   - eventsPath: live JSONL event stream ("" = none);
//   - metricsAddr: optional address serving /metrics during the run;
//   - progress/progressEvery: live progress line (nil or <= 0 = none).
//
// When every output is disabled it returns a nil Observer (free on the
// campaign hot path) and a no-op finish. finish closes the sinks, then
// writes the metrics file; call it exactly once, after the campaign.
func CLIObserver(metricsPath, eventsPath, metricsAddr string, progress io.Writer, progressEvery int) (*Observer, func() error, error) {
	noop := func() error { return nil }
	var sinks []Sink
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, noop, fmt.Errorf("events sink: %w", err)
		}
		sinks = append(sinks, NewJSONLSink(f))
	}
	if progress != nil && progressEvery > 0 {
		sinks = append(sinks, NewProgressSink(progress, progressEvery))
	}
	if len(sinks) == 0 && metricsPath == "" && metricsAddr == "" {
		return nil, noop, nil
	}

	o := New(sinks...)
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", o.Metrics.Handler())
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "obs: metrics server: %v\n", err)
			}
		}()
	}
	finish := func() error {
		err := o.Close()
		if metricsPath != "" {
			text := []byte(o.Metrics.ExpositionText())
			var werr error
			if metricsPath == "-" {
				_, werr = os.Stdout.Write(text)
			} else {
				werr = os.WriteFile(metricsPath, text, 0o644)
			}
			if err == nil {
				err = werr
			}
		}
		return err
	}
	return o, finish, nil
}
