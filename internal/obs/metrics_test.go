package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	g := m.Gauge("g", "a gauge")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %v, want 1", got)
	}
	h := m.Histogram("h_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() != 5.55 {
		t.Errorf("histogram sum = %v, want 5.55", h.Sum())
	}
}

func TestRegistrationIsGetOrCreate(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("x_total", "")
	b := m.Counter("x_total", "")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	m.Gauge("x_total", "")
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var gv *GaugeVec
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.At("x").Inc()
	gv.At("x").Set(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
}

func TestExpositionTextIsValidAndComplete(t *testing.T) {
	m := NewMetrics()
	m.Counter("b_total", "counts b").Add(7)
	m.Gauge("a", "measures a").Set(2.5)
	v := m.GaugeVec("labeled", "per-thing", "thing")
	v.At("9").Set(3)
	v.At("10").Set(4)
	h := m.Histogram("lat_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	text := m.ExpositionText()
	series, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	want := map[string]float64{
		"b_total":                       7,
		"a":                             2.5,
		`labeled{thing="10"}`:           4,
		`labeled{thing="9"}`:            3,
		`lat_seconds_bucket{le="0.01"}`: 1,
		`lat_seconds_bucket{le="0.1"}`:  2,
		`lat_seconds_bucket{le="+Inf"}`: 3,
		"lat_seconds_count":             3,
	}
	for k, v := range want {
		if series[k] != v {
			t.Errorf("series %s = %v, want %v\n%s", k, series[k], v, text)
		}
	}
	// Families sorted by name, each with HELP and TYPE headers.
	if !strings.Contains(text, "# HELP a measures a\n# TYPE a gauge\n") {
		t.Errorf("missing HELP/TYPE header for a:\n%s", text)
	}
	if strings.Index(text, "# TYPE a gauge") > strings.Index(text, "# TYPE b_total counter") {
		t.Error("families not sorted by name")
	}
}

func TestExpositionDeterministic(t *testing.T) {
	mk := func() string {
		m := NewMetrics()
		v := m.CounterVec("v_total", "", "id")
		for _, id := range []string{"3", "1", "2"} {
			v.At(id).Inc()
		}
		m.Gauge("g", "").Set(1)
		return m.ExpositionText()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if _, err := ParseExposition(rec.Body.String()); err != nil {
		t.Errorf("served exposition does not parse: %v", err)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value",
		"1badname 3",
		"name notanumber",
		"name{unterminated 3",
	} {
		if _, err := ParseExposition(bad); err == nil {
			t.Errorf("ParseExposition(%q) accepted garbage", bad)
		}
	}
	if got, err := ParseExposition("# a comment\n\nok_name{l=\"x\"} 4.5\n"); err != nil || got[`ok_name{l="x"}`] != 4.5 {
		t.Errorf("valid line rejected: %v %v", got, err)
	}
}
