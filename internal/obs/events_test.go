package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: CampaignStart, Seq: 1, DUT: "boom", Iterations: 3, Workers: 2, BatchSize: 8, Seed: 7},
		{Kind: PointTriggered, Seq: 2, Iteration: 1, Point: 0, Interval: 0},
		{Kind: IterationDone, Seq: 3, Iteration: 1, NewPoints: 1, CumPoints: 1, Cycles: 120},
		{Kind: FindingDetected, Seq: 4, Iteration: 2, Findings: 1},
		{Kind: BatchMerged, Seq: 5, Batch: 1, MergedIterations: 2, CorpusSize: 1},
		{Kind: CampaignEnd, Seq: 6, Iterations: 3, CumPoints: 1, CumTimingDiffs: 1, Findings: 1, CorpusSize: 1, Cycles: 360},
	}
}

// The JSONL encoding must round-trip exactly: unmarshal every line, compare
// structs, re-marshal, compare bytes. Point/interval zeroes (point ID 0,
// simultaneous-arrival interval 0) are meaningful and must survive.
func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	in := sampleEvents()
	for _, e := range in {
		s.Emit(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("%d lines, want %d", len(lines), len(in))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if e != in[i] {
			t.Errorf("line %d round-trip mismatch:\n got %+v\nwant %+v", i, e, in[i])
		}
		re, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != line {
			t.Errorf("line %d re-marshal differs:\n got %s\nwant %s", i, re, line)
		}
	}
}

func TestMemorySinkBytesMatchesJSONL(t *testing.T) {
	mem := NewMemorySink()
	var buf bytes.Buffer
	jl := NewJSONLSink(&buf)
	for _, e := range sampleEvents() {
		mem.Emit(e)
		jl.Emit(e)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.Bytes(), buf.Bytes()) {
		t.Error("MemorySink.Bytes differs from the JSONL encoding")
	}
	if got := mem.Events(); len(got) != len(sampleEvents()) || got[0] != sampleEvents()[0] {
		t.Errorf("MemorySink.Events = %+v", got)
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	s := Tee(a, b)
	s.Emit(Event{Kind: CampaignStart, Seq: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Error("tee did not forward to all sinks")
	}
}

func TestProgressSinkRendersLines(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressSink(&buf, 1)
	p.Emit(Event{Kind: CampaignStart, DUT: "boom", Iterations: 2, Workers: 1})
	p.Emit(Event{Kind: IterationDone, Iteration: 1, CumPoints: 3})
	p.Emit(Event{Kind: CampaignEnd, Iterations: 2, CumPoints: 4, Findings: 1})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"campaign boom", "points=3", "points=4", "findings=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%q", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("progress output does not end the final line")
	}
}

func TestObserverNilIsFree(t *testing.T) {
	var o *Observer
	o.CampaignStart("boom", 10, 1, 0, 1)
	o.PointTriggered(1, 0, 0)
	o.FindingDetected(1, 1)
	o.IterationDone(1, 0, 0, 0, 0)
	o.TimingDiff()
	o.BatchMerged(1, 8, 0, time.Millisecond)
	o.CampaignEnd(10, 0, 0, 0, 0, 0)
	o.MutationOffered(true)
	o.WorkerBatch(0, 8, time.Millisecond)
	o.SetBestInterval(0, 3)
	o.DUTInfo("boom", 1, 2, 3)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestObserverSequencesEventsAndUpdatesMetrics(t *testing.T) {
	mem := NewMemorySink()
	o := New(mem)
	o.DUTInfo("boom", 100, 40, 30)
	o.CampaignStart("boom", 2, 1, 32, 1)
	o.PointTriggered(1, 5, 0)
	o.SetBestInterval(5, 0)
	o.IterationDone(1, 1, 1, 0, 100)
	o.TimingDiff()
	o.FindingDetected(2, 1)
	o.IterationDone(2, 0, 1, 1, 50)
	o.MutationOffered(true)
	o.MutationOffered(false)
	o.CampaignEnd(2, 1, 1, 1, 1, 150)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	evs := mem.Events()
	if len(evs) != 6 {
		t.Fatalf("%d events, want 6", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	if evs[0].Kind != CampaignStart || evs[len(evs)-1].Kind != CampaignEnd {
		t.Error("stream not bracketed by campaign start/end")
	}

	series, err := ParseExposition(o.Metrics.ExpositionText())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		MetricIterations:                   2,
		MetricTriggeredPoints:              1,
		MetricTimingDiffs:                  1,
		MetricFindings:                     1,
		MetricCorpusSize:                   1,
		MetricCycles:                       150,
		MetricMutationsOffered:             2,
		MetricMutationsAccepted:            1,
		MetricMutationAccept:               0.5,
		MetricBestInterval + `{point="5"}`: 0,
		MetricNaiveMuxes:                   100,
		MetricTracedPoints:                 40,
		MetricMonitoredPoints:              30,
		MetricDUTInfo + `{design="boom"}`:  1,
	}
	for k, v := range want {
		if series[k] != v {
			t.Errorf("%s = %v, want %v", k, series[k], v)
		}
	}
}
