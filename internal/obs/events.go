package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind names one campaign event type.
type Kind string

// The campaign event stream. Events are emitted by the campaign coordinator
// in canonical iteration order (see fuzz.Options.Observer), so a stream is
// byte-identical across runs for a fixed (Seed, Workers, BatchSize) — no
// event field carries wall-clock time; latencies live in metrics only.
const (
	// CampaignStart opens a campaign: DUT, Iterations, Workers, BatchSize,
	// Seed.
	CampaignStart Kind = "campaign_start"
	// IterationDone closes one iteration: Iteration, NewPoints, CumPoints,
	// CumTimingDiffs, Cycles (this iteration's simulated cycles).
	IterationDone Kind = "iteration_done"
	// PointTriggered records the first trigger of a contention point:
	// Iteration, Point, Interval (best distinct-request reqsIntvl observed
	// by the triggering testcase; -1 if only a same-path trigger).
	PointTriggered Kind = "point_triggered"
	// FindingDetected records a dual-differential finding: Iteration,
	// Findings (retained so far).
	FindingDetected Kind = "finding_detected"
	// BatchMerged closes one parallel merge round: Batch,
	// MergedIterations, CorpusSize.
	BatchMerged Kind = "batch_merged"
	// CampaignEnd closes a campaign: Iterations (executed), CumPoints,
	// CumTimingDiffs, Findings, CorpusSize, Cycles (campaign total).
	CampaignEnd Kind = "campaign_end"
	// WorkerFailed records one failed batch attempt (worker panic or wedged
	// iteration): Worker, Batch, Attempt (1-based), Reason. A shard
	// abandonment is reported as a final WorkerFailed with Attempt == 0 —
	// the abandonment is a disposition, not an attempt, so its marker can
	// never collide with a real attempt number. Emitted by the coordinator
	// after the merge barrier, in worker order, so the stream stays
	// deterministic for a fixed fault schedule.
	WorkerFailed Kind = "worker_failed"
	// BatchRetried records a batch that succeeded on a replacement worker
	// after one or more failures: Worker, Batch, Attempt (the succeeding
	// attempt, 1-based).
	BatchRetried Kind = "batch_retried"
)

// Event is one structured campaign event. Every kind uses the shared Kind
// and Seq header plus the subset of fields its constant documents; fields
// not listed for a kind are zero. Fields are never omitted from the JSON
// encoding, so a JSONL stream round-trips exactly.
type Event struct {
	Kind Kind `json:"kind"` // event type (the Kind constants)
	// Seq is the 1-based position in the stream (assigned by the Observer).
	Seq int `json:"seq"`
	// Iteration is the 1-based canonical iteration index.
	Iteration int `json:"iteration"`

	DUT        string `json:"dut"`        // DUT design name
	Iterations int    `json:"iterations"` // campaign budget / executed total
	Workers    int    `json:"workers"`    // effective worker count
	BatchSize  int    `json:"batch_size"` // effective per-worker batch size
	Seed       int64  `json:"seed"`       // campaign RNG seed

	Point    int   `json:"point"`    // contention point ID
	Interval int64 `json:"interval"` // best distinct-request reqsIntvl (-1 = same-path only)

	NewPoints      int   `json:"new_points"`       // points newly triggered this iteration
	CumPoints      int   `json:"cum_points"`       // cumulative distinct triggered points
	CumTimingDiffs int   `json:"cum_timing_diffs"` // cumulative timing-difference testcases
	Cycles         int64 `json:"cycles"`           // simulated cycles (per-iteration or total)

	Batch            int `json:"batch"`             // 1-based merge round
	MergedIterations int `json:"merged_iterations"` // iterations folded this round
	CorpusSize       int `json:"corpus_size"`       // merged corpus size
	Findings         int `json:"findings"`          // retained findings so far

	// Worker is the parallel worker index a fault event refers to.
	Worker int `json:"worker"`
	// Attempt is the 1-based batch attempt a fault event refers to; 0 on a
	// worker_failed event marks the shard-abandonment disposition (see the
	// WorkerFailed Kind).
	Attempt int `json:"attempt"`
	// Reason is the failure description of a worker_failed event. Reasons
	// carry no wall-clock content, preserving stream determinism under a
	// fixed fault schedule.
	Reason string `json:"reason"`
}

// appendJSONL appends the event's JSONL encoding (one JSON object plus a
// newline). encoding/json emits struct fields in declaration order, so the
// encoding is deterministic.
func (e Event) appendJSONL(dst []byte) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		// Event has no unmarshalable fields; keep the sink interface
		// error-free.
		panic(fmt.Sprintf("obs: marshal event: %v", err))
	}
	dst = append(dst, b...)
	return append(dst, '\n')
}

// Sink consumes a campaign event stream. Emit is called by a single
// goroutine (the campaign coordinator, serialized by the Observer); Close
// flushes and releases the sink and reports any deferred write error.
type Sink interface {
	Emit(e Event)
	Close() error
}

// JSONLSink streams events to a writer as JSON Lines. If the writer is an
// io.Closer, Close closes it. Write errors are sticky and reported by
// Close, so the hot path stays branch-light.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer
	buf []byte
	err error
}

// NewJSONLSink wraps w in a buffered JSON Lines event sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = e.appendJSONL(s.buf[:0])
	_, s.err = s.w.Write(s.buf)
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	if s.c != nil {
		if err := s.c.Close(); s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// MemorySink records events in memory — the sink campaign tests compare
// streams with. Unlike the other sinks it is safe for concurrent use.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Close implements Sink.
func (s *MemorySink) Close() error { return nil }

// Events returns a copy of the recorded stream.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Bytes returns the stream's JSONL encoding — the byte-identity form of
// the determinism contract.
func (s *MemorySink) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b []byte
	for _, e := range s.events {
		b = e.appendJSONL(b)
	}
	return b
}

// tee fans one stream out to several sinks.
type tee struct{ sinks []Sink }

// Tee returns a sink that forwards every event to all the given sinks and
// closes them all on Close (returning the first error).
func Tee(sinks ...Sink) Sink { return &tee{sinks: sinks} }

func (t *tee) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

func (t *tee) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// progressSink renders a live single-line progress report from the event
// stream — the human-facing counterpart of the JSONL sink. It writes
// carriage-return-terminated updates (suitable for a terminal's stderr) and
// a final newline-terminated summary at CampaignEnd. Wall-clock rates are
// computed locally and never enter the event stream.
type progressSink struct {
	w     io.Writer
	every int
	start time.Time
	total int
}

// NewProgressSink returns a sink printing a progress line to w after every
// `every` iterations (and at campaign boundaries). every <= 0 means 100.
func NewProgressSink(w io.Writer, every int) Sink {
	if every <= 0 {
		every = 100
	}
	return &progressSink{w: w, every: every}
}

func (p *progressSink) Emit(e Event) {
	switch e.Kind {
	case CampaignStart:
		p.start = time.Now() //sonar:nondeterministic-ok progress display timing, not part of the event stream
		p.total = e.Iterations
		fmt.Fprintf(p.w, "campaign %s: %d iterations, %d worker(s), batch %d, seed %d\n",
			e.DUT, e.Iterations, e.Workers, e.BatchSize, e.Seed)
	case IterationDone:
		if e.Iteration%p.every != 0 {
			return
		}
		fmt.Fprintf(p.w, "\r  %d/%d iters (%.0f/s)  points=%d  timing-diffs=%d   ",
			e.Iteration, p.total, p.rate(e.Iteration), e.CumPoints, e.CumTimingDiffs)
	case CampaignEnd:
		fmt.Fprintf(p.w, "\r  %d/%d iters (%.0f/s)  points=%d  timing-diffs=%d  findings=%d  corpus=%d\n",
			e.Iterations, p.total, p.rate(e.Iterations), e.CumPoints, e.CumTimingDiffs,
			e.Findings, e.CorpusSize)
	}
}

func (p *progressSink) rate(iters int) float64 {
	el := time.Since(p.start).Seconds() //sonar:nondeterministic-ok progress display timing, not part of the event stream
	if p.start.IsZero() || el <= 0 {
		return 0
	}
	return float64(iters) / el
}

func (p *progressSink) Close() error { return nil }
