// Package obs is Sonar's campaign observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, histograms with
// Prometheus text exposition) and a structured campaign event stream
// (CampaignStart .. CampaignEnd) with pluggable sinks — a JSONL file sink,
// an in-memory sink for tests, and a live progress renderer.
//
// The two halves meet in the Observer, the hook the fuzzing engines accept
// via fuzz.Options.Observer. Its design constraints, in order:
//
//  1. A nil Observer costs ~nothing: every method is safe and a no-op on a
//     nil receiver, so the hot path pays one predictable branch.
//  2. Determinism of the merged campaign is untouched: events are emitted
//     only by the campaign coordinator, in canonical iteration order, and
//     carry no wall-clock fields — a parallel campaign's event stream is
//     byte-identical across runs for a fixed (Seed, Workers, BatchSize).
//     Worker goroutines touch only atomic metrics (never the event stream).
//  3. Metrics are cheap: atomics on the hot path, locks only at labeled-
//     series creation and exposition time.
//
// See docs/OBSERVABILITY.md for the metric and event name reference.
package obs

import (
	"errors"
	"strconv"
	"time"
)

// Standard campaign metric names (the full reference, including label
// dimensions, is docs/OBSERVABILITY.md).
const (
	MetricIterations        = "sonar_iterations_total"
	MetricIterationsPerSec  = "sonar_iterations_per_second"
	MetricTriggeredPoints   = "sonar_triggered_points"
	MetricTimingDiffs       = "sonar_timing_diffs_total"
	MetricFindings          = "sonar_findings_total"
	MetricCorpusSize        = "sonar_corpus_size"
	MetricCycles            = "sonar_cycles_total"
	MetricMutationsOffered  = "sonar_mutations_offered_total"
	MetricMutationsAccepted = "sonar_mutations_accepted_total"
	MetricMutationAccept    = "sonar_mutation_accept_rate"
	MetricWorkerIterations  = "sonar_worker_iterations_total"
	MetricWorkerBusy        = "sonar_worker_busy_seconds_total"
	MetricBestInterval      = "sonar_point_best_interval"
	MetricMergeLatency      = "sonar_batch_merge_seconds"
	MetricNaiveMuxes        = "sonar_dut_naive_muxes"
	MetricTracedPoints      = "sonar_dut_traced_points"
	MetricMonitoredPoints   = "sonar_dut_monitored_points"
	MetricDUTInfo           = "sonar_dut_info"
	MetricSimSpilled        = "sonar_sim_spilled_nodes"
	MetricSimEliminated     = "sonar_sim_eliminated_nodes"
	MetricWorkerFailures    = "sonar_worker_failures_total"
	MetricBatchRetries      = "sonar_batch_retries_total"
	MetricCheckpoints       = "sonar_checkpoints_total"
	MetricCheckpointLatency = "sonar_checkpoint_seconds"
	MetricCheckpointBytes   = "sonar_checkpoint_bytes"
	MetricCheckpointIter    = "sonar_checkpoint_iteration"
	MetricFlowSurface       = "sonar_flow_surface_cascades"
	MetricFlowTainted       = "sonar_flow_tainted_points"
	MetricFlowTaintPairs    = "sonar_flow_taint_pair_points"
	MetricFlowFindings      = "sonar_flow_findings"
)

// Observer publishes campaign metrics and forwards campaign events to its
// sinks. Create one with New; a nil *Observer is a valid, free-of-charge
// null implementation of every method.
//
// Event-emitting methods (CampaignStart, PointTriggered, FindingDetected,
// IterationDone, BatchMerged, CampaignEnd) must be called from a single
// goroutine at a time — the campaign coordinator does. Metric-only methods
// (MutationOffered, WorkerBatch, SetBestInterval, DUTInfo) are safe from
// worker goroutines.
type Observer struct {
	// Metrics is the registry backing the campaign metrics; callers may
	// register additional metrics on it and serve it via Metrics.Handler.
	Metrics *Metrics

	sinks []Sink
	seq   int

	campaignStart time.Time
	itersAtStart  int64

	iterations  *Counter
	ips         *Gauge
	triggered   *Gauge
	timingDiffs *Counter
	findings    *Counter
	corpus      *Gauge
	cycles      *Counter
	mutOffered  *Counter
	mutAccepted *Counter
	mutRate     *Gauge
	workerIters *CounterVec
	workerBusy  *GaugeVec
	bestIntvl   *GaugeVec
	mergeLat    *Histogram
	naiveMuxes  *Gauge
	tracedPts   *Gauge
	monitored   *Gauge
	dutInfo     *GaugeVec
	workerFails *Counter
	retries     *Counter
	ckpts       *Counter
	ckptLat     *Histogram
	ckptBytes   *Gauge
	ckptIter    *Gauge
}

// New returns an Observer with the standard campaign metrics registered
// and the given event sinks attached.
func New(sinks ...Sink) *Observer {
	m := NewMetrics()
	return &Observer{
		Metrics:     m,
		sinks:       sinks,
		iterations:  m.Counter(MetricIterations, "Fuzzing iterations executed."),
		ips:         m.Gauge(MetricIterationsPerSec, "Fuzzing iteration throughput of the current campaign."),
		triggered:   m.Gauge(MetricTriggeredPoints, "Distinct contention points triggered."),
		timingDiffs: m.Counter(MetricTimingDiffs, "Testcases exposing a secret-dependent timing difference."),
		findings:    m.Counter(MetricFindings, "Retained dual-differential findings."),
		corpus:      m.Gauge(MetricCorpusSize, "Seeds in the (merged) corpus."),
		cycles:      m.Counter(MetricCycles, "Simulated cycles executed."),
		mutOffered:  m.Counter(MetricMutationsOffered, "Testcases offered to the corpus retention rule."),
		mutAccepted: m.Counter(MetricMutationsAccepted, "Testcases retained by the corpus (interval-improving)."),
		mutRate:     m.Gauge(MetricMutationAccept, "Fraction of offered testcases retained."),
		workerIters: m.CounterVec(MetricWorkerIterations, "Iterations executed per parallel worker.", "worker"),
		workerBusy:  m.GaugeVec(MetricWorkerBusy, "Batch-execution seconds per parallel worker.", "worker"),
		bestIntvl:   m.GaugeVec(MetricBestInterval, "Best (minimum) distinct-request reqsIntvl per contention point.", "point"),
		mergeLat: m.Histogram(MetricMergeLatency, "Coordinator batch merge latency.",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}),
		naiveMuxes:  m.Gauge(MetricNaiveMuxes, "2:1 MUX count before bottom-up tracing."),
		tracedPts:   m.Gauge(MetricTracedPoints, "Contention points after bottom-up tracing."),
		monitored:   m.Gauge(MetricMonitoredPoints, "Contention points surviving the risk filter."),
		dutInfo:     m.GaugeVec(MetricDUTInfo, "Constant 1, labeled with the DUT design name.", "design"),
		workerFails: m.Counter(MetricWorkerFailures, "Failed parallel batch attempts (panics, deadline aborts, abandonments)."),
		retries:     m.Counter(MetricBatchRetries, "Batches recovered on a replacement worker."),
		ckpts:       m.Counter(MetricCheckpoints, "Campaign checkpoints written."),
		ckptLat: m.Histogram(MetricCheckpointLatency, "Checkpoint serialization+write latency.",
			[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10}),
		ckptBytes: m.Gauge(MetricCheckpointBytes, "Size of the last checkpoint written."),
		ckptIter:  m.Gauge(MetricCheckpointIter, "Campaign iteration of the last checkpoint written."),
	}
}

// emit assigns the next sequence number and fans the event out. Callers
// are the coordinator-side event methods only.
func (o *Observer) emit(e Event) {
	o.seq++
	e.Seq = o.seq
	for _, s := range o.sinks {
		s.Emit(e)
	}
}

// CampaignStart opens a campaign. workers and batchSize are the effective
// (post-clamp) values.
func (o *Observer) CampaignStart(dut string, iterations, workers, batchSize int, seed int64) {
	if o == nil {
		return
	}
	o.campaignStart = time.Now() //sonar:nondeterministic-ok wall clock feeds the throughput gauge, never events
	o.itersAtStart = o.iterations.Value()
	o.emit(Event{
		Kind: CampaignStart, DUT: dut,
		Iterations: iterations, Workers: workers, BatchSize: batchSize, Seed: seed,
	})
}

// PointTriggered records the first trigger of a contention point. interval
// is the best distinct-request reqsIntvl the triggering testcase observed
// at the point, or -1 when only a same-path (persistent) trigger occurred.
func (o *Observer) PointTriggered(iteration, point int, interval int64) {
	if o == nil {
		return
	}
	o.emit(Event{Kind: PointTriggered, Iteration: iteration, Point: point, Interval: interval})
}

// FindingDetected records a retained dual-differential finding.
func (o *Observer) FindingDetected(iteration, findings int) {
	if o == nil {
		return
	}
	o.findings.Inc()
	o.emit(Event{Kind: FindingDetected, Iteration: iteration, Findings: findings})
}

// IterationDone closes one canonical iteration.
func (o *Observer) IterationDone(iteration, newPoints, cumPoints, cumTimingDiffs int, cycles int64) {
	if o == nil {
		return
	}
	o.iterations.Inc()
	o.triggered.Set(float64(cumPoints))
	o.cycles.Add(cycles)
	o.emit(Event{
		Kind: IterationDone, Iteration: iteration,
		NewPoints: newPoints, CumPoints: cumPoints, CumTimingDiffs: cumTimingDiffs,
		Cycles: cycles,
	})
}

// TimingDiff counts one secret-dependent timing difference (also the ones
// whose findings are dropped by Options.KeepFindings).
func (o *Observer) TimingDiff() {
	if o == nil {
		return
	}
	o.timingDiffs.Inc()
}

// BatchMerged closes one parallel merge round. The latency feeds the merge
// histogram only — events carry no wall-clock fields.
func (o *Observer) BatchMerged(batch, mergedIterations, corpusSize int, latency time.Duration) {
	if o == nil {
		return
	}
	o.corpus.Set(float64(corpusSize))
	o.mergeLat.Observe(latency.Seconds())
	o.updateRate()
	o.emit(Event{
		Kind: BatchMerged, Batch: batch,
		MergedIterations: mergedIterations, CorpusSize: corpusSize,
	})
}

// CampaignEnd closes a campaign with its final statistics.
func (o *Observer) CampaignEnd(iterations, cumPoints, cumTimingDiffs, findings, corpusSize int, cycles int64) {
	if o == nil {
		return
	}
	o.corpus.Set(float64(corpusSize))
	o.updateRate()
	o.emit(Event{
		Kind: CampaignEnd, Iterations: iterations,
		CumPoints: cumPoints, CumTimingDiffs: cumTimingDiffs,
		Findings: findings, CorpusSize: corpusSize, Cycles: cycles,
	})
}

// Seq returns the sequence number of the last emitted event — the value a
// campaign checkpoint stores so a resumed campaign's stream continues the
// original numbering.
func (o *Observer) Seq() int {
	if o == nil {
		return 0
	}
	return o.seq
}

// CampaignResumed rewinds the Observer to a checkpointed campaign position:
// the event sequence continues from seq and the cumulative metrics are
// seeded with the checkpointed totals. No event is emitted — a resumed
// campaign's stream byte-continues the interrupted one, so the
// concatenation of the streams before and after the checkpoint equals an
// uninterrupted run's stream.
func (o *Observer) CampaignResumed(seq, iterations, cumPoints, cumTimingDiffs, findings, corpusSize int, cycles int64) {
	if o == nil {
		return
	}
	o.seq = seq
	o.iterations.Add(int64(iterations))
	o.triggered.Set(float64(cumPoints))
	o.timingDiffs.Add(int64(cumTimingDiffs))
	o.findings.Add(int64(findings))
	o.corpus.Set(float64(corpusSize))
	o.cycles.Add(cycles)
	// Throughput counts only iterations executed by this process.
	o.campaignStart = time.Now() //sonar:nondeterministic-ok wall clock feeds the throughput gauge, never events
	o.itersAtStart = o.iterations.Value()
}

// WorkerFailed records one failed batch attempt. Emitted by the parallel
// coordinator in worker order after the merge barrier, so the event stream
// stays deterministic for a fixed fault schedule.
func (o *Observer) WorkerFailed(worker, batch, attempt int, reason string) {
	if o == nil {
		return
	}
	o.workerFails.Inc()
	o.emit(Event{Kind: WorkerFailed, Batch: batch, Worker: worker, Attempt: attempt, Reason: reason})
}

// BatchRetried records a batch recovered on a replacement worker after
// attempt-1 failures.
func (o *Observer) BatchRetried(worker, batch, attempt int) {
	if o == nil {
		return
	}
	o.retries.Inc()
	o.emit(Event{Kind: BatchRetried, Batch: batch, Worker: worker, Attempt: attempt})
}

// CheckpointSaved accounts one written campaign checkpoint. Metrics only:
// checkpoint cadence is an operational choice, and keeping it out of the
// event stream preserves stream byte-identity across different -checkpoint
// settings.
func (o *Observer) CheckpointSaved(iteration, size int, latency time.Duration) {
	if o == nil {
		return
	}
	o.ckpts.Inc()
	o.ckptLat.Observe(latency.Seconds())
	o.ckptBytes.Set(float64(size))
	o.ckptIter.Set(float64(iteration))
}

func (o *Observer) updateRate() {
	el := time.Since(o.campaignStart).Seconds() //sonar:nondeterministic-ok operator-facing rate gauge only
	if o.campaignStart.IsZero() || el <= 0 {
		return
	}
	o.ips.Set(float64(o.iterations.Value()-o.itersAtStart) / el)
}

// MutationOffered counts one corpus retention decision. Metrics only;
// safe from worker goroutines.
func (o *Observer) MutationOffered(accepted bool) {
	if o == nil {
		return
	}
	o.mutOffered.Inc()
	if accepted {
		o.mutAccepted.Inc()
	}
	o.mutRate.Set(float64(o.mutAccepted.Value()) / float64(o.mutOffered.Value()))
}

// MutationsOffered counts a batch of corpus retention decisions in one
// update — the batched form of MutationOffered the workers' hot loop uses:
// two atomic adds per batch instead of several per iteration. Metrics only;
// safe from worker goroutines.
func (o *Observer) MutationsOffered(offered, accepted int) {
	if o == nil || offered <= 0 {
		return
	}
	o.mutOffered.Add(int64(offered))
	o.mutAccepted.Add(int64(accepted))
	o.mutRate.Set(float64(o.mutAccepted.Value()) / float64(o.mutOffered.Value()))
}

// WorkerBatch accounts one drained batch to a worker's utilization
// metrics. Metrics only; safe from worker goroutines.
func (o *Observer) WorkerBatch(worker, iterations int, busy time.Duration) {
	if o == nil {
		return
	}
	w := strconv.Itoa(worker)
	o.workerIters.At(w).Add(int64(iterations))
	o.workerBusy.At(w).Add(busy.Seconds())
}

// SetBestInterval publishes an improved per-point best reqsIntvl. Metrics
// only; the coordinator calls it on improvement.
func (o *Observer) SetBestInterval(point int, interval int64) {
	if o == nil {
		return
	}
	o.bestIntvl.At(strconv.Itoa(point)).Set(float64(interval))
}

// DUTInfo publishes the static-analysis gauges for the device under test.
func (o *Observer) DUTInfo(design string, naiveMuxes, tracedPoints, monitoredPoints int) {
	if o == nil {
		return
	}
	o.dutInfo.At(design).Set(1)
	o.naiveMuxes.Set(float64(naiveMuxes))
	o.tracedPts.Set(float64(tracedPoints))
	o.monitored.Set(float64(monitoredPoints))
}

// SimCompileInfo publishes what the simulator's optimizing compile pipeline
// did to a netlist-backed DUT: how many surviving nodes still take the
// scalar-spill slow path, and how many nodes the destructive passes removed
// (eliminated + collapsed + fused). Metric-only; safe from worker
// goroutines. The gauges are registered lazily on first call, so behavioral
// campaigns — which never compile a simulator — leave them absent from the
// exposition rather than reporting a misleading zero.
func (o *Observer) SimCompileInfo(spilled, eliminated int) {
	if o == nil {
		return
	}
	o.Metrics.Gauge(MetricSimSpilled, "Simulator nodes on the scalar-spill slow path after compile.").Set(float64(spilled))
	o.Metrics.Gauge(MetricSimEliminated, "Simulator nodes removed by the optimizing compile pipeline.").Set(float64(eliminated))
}

// FlowInfo publishes the static information-flow audit gauges for the
// device under test (internal/hdl/flow): the contention-surface size, how
// many points any taint reaches, how many points both the secret and the
// attacker reach, and the audit's finding count by severity. Like
// SimCompileInfo, the gauges are registered lazily on first call so
// campaigns that never audit leave them absent rather than reporting a
// misleading zero.
func (o *Observer) FlowInfo(surface, tainted, taintPairs, infoFindings, errorFindings int) {
	if o == nil {
		return
	}
	o.Metrics.Gauge(MetricFlowSurface, "Contention-surface MUX cascades found by the flow audit.").Set(float64(surface))
	o.Metrics.Gauge(MetricFlowTainted, "Contention points reached by any taint label.").Set(float64(tainted))
	o.Metrics.Gauge(MetricFlowTaintPairs, "Contention points reached by both secret and attacker taint.").Set(float64(taintPairs))
	o.Metrics.GaugeVec(MetricFlowFindings, "Flow audit findings by severity.", "severity").At("info").Set(float64(infoFindings))
	o.Metrics.GaugeVec(MetricFlowFindings, "Flow audit findings by severity.", "severity").At("error").Set(float64(errorFindings))
}

// Close closes every attached sink, joining their errors. The Observer
// (and its metrics) stay readable afterwards.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	var errs []error
	for _, s := range o.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
