package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"sonar/internal/fuzz"
)

// Server exposes a Controller over HTTP+JSON. Every endpoint, schema, and
// error code is documented in docs/SERVICE.md; error bodies are
// {"error": "..."} with a matching status code.
type Server struct {
	ct  *Controller
	mux *http.ServeMux
}

// NewServer mounts the API routes for a controller.
func NewServer(ct *Controller) *Server {
	s := &Server{ct: ct, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", ct.Metrics().Handler())
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleCampaign)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/campaigns/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /api/v1/leases/acquire", s.handleAcquire)
	s.mux.HandleFunc("POST /api/v1/leases/{id}/renew", s.handleRenew)
	s.mux.HandleFunc("POST /api/v1/leases/{id}/result", s.handleReport)
	s.mux.HandleFunc("POST /api/v1/drain", s.handleDrain)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// writeErr maps a controller error to its status code.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, errNotFound):
		status = http.StatusNotFound
	case errors.Is(err, errGone), errors.Is(err, errConflict):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeJSON strictly decodes a request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: body: %v", errBadRequest, err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ct.Health())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := decodeJSON(r, &spec); err != nil {
		writeErr(w, err)
		return
	}
	st, err := s.ct.Submit(&spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ct.Campaigns())
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	st, err := s.ct.Campaign(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	b, err := s.ct.Events(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.ct.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	b, err := s.ct.Checkpoint(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// acquireRequest is the lease-acquire request body.
type acquireRequest struct {
	// Worker is the worker's self-assigned identifier, recorded on the
	// lease for operator visibility.
	Worker string `json:"worker"`
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	g, err := s.ct.Acquire(req.Worker)
	if err != nil {
		writeErr(w, err)
		return
	}
	if g == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// renewResponse is the lease-renew response body.
type renewResponse struct {
	// TTLMillis is the renewed lease's remaining time-to-live.
	TTLMillis int64 `json:"ttl_ms"`
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	ttl, err := s.ct.Renew(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, renewResponse{TTLMillis: ttl.Milliseconds()})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var res fuzz.LeaseResult
	if err := decodeJSON(r, &res); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.ct.Report(r.PathValue("id"), &res); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
}

// drainRequest is the drain request body.
type drainRequest struct {
	// Drain switches lease granting off (true) or back on (false).
	Drain bool `json:"drain"`
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req drainRequest
	if err := decodeJSON(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	s.ct.Drain(req.Drain)
	writeJSON(w, http.StatusOK, map[string]bool{"draining": req.Drain})
}
