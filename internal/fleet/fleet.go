// Package fleet implements the distributed campaign service: a controller
// that owns campaign and shard-lease state, an HTTP+JSON server exposing it
// (docs/SERVICE.md documents the API), a client, and the worker loop that
// executes leases against the fuzzing engine.
//
// The controller is the server half of the fuzz.LeaseCoordinator contract:
// it splits each fuzz campaign into shard leases, grants at most one lease
// per open shard per round, re-offers leases lost to worker churn (expiry,
// bounded by MaxRetries), and folds reported results at round barriers in
// canonical worker order. Because lease execution is deterministic and
// expiry/re-offer bookkeeping is metrics-only, a distributed campaign over
// a fixed (Seed, Workers, BatchSize) topology produces a byte-identical
// event stream and identical final Stats to a local fuzz.RunParallel — even
// when workers die mid-campaign, as long as no shard exhausts its retries.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sonar/internal/boom"
	"sonar/internal/firrtl"
	"sonar/internal/fuzz"
	"sonar/internal/hdl"
	"sonar/internal/hdl/flow"
	"sonar/internal/nutshell"
	"sonar/internal/obs"
	"sonar/internal/trace"
	"sonar/internal/uarch"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// errBadRequest maps to 400: malformed specs, unknown DUT names,
	// rejected lease results.
	errBadRequest = errors.New("bad request")
	// errNotFound maps to 404: unknown campaign or resource.
	errNotFound = errors.New("not found")
	// errGone maps to 409: a lease that expired or was already resolved —
	// the shard has moved on, the worker should discard its result.
	errGone = errors.New("lease gone")
	// errConflict maps to 409: a resource that exists but is not in the
	// right state (e.g. the result of a still-running campaign).
	errConflict = errors.New("conflict")
)

// Fleet metric names (exposed on the server's /metrics handler, alongside
// obs.MetricWorkerFailures which the fleet increments on every lease
// expiry).
const (
	MetricCampaigns        = "sonar_fleet_campaigns_total"
	MetricCampaignsRunning = "sonar_fleet_campaigns_running"
	MetricLeasesGranted    = "sonar_fleet_leases_granted_total"
	MetricLeasesCompleted  = "sonar_fleet_leases_completed_total"
	MetricLeasesExpired    = "sonar_fleet_leases_expired_total"
	MetricLeaseRenewals    = "sonar_fleet_lease_renewals_total"
	MetricStaleReports     = "sonar_fleet_stale_reports_total"
	MetricShardsAbandoned  = "sonar_fleet_shards_abandoned_total"
)

// Per-campaign gauge names (label: campaign ID).
const (
	MetricCampaignIterations = "sonar_campaign_iterations_done"
	MetricCampaignRound      = "sonar_campaign_round"
	MetricCampaignPoints     = "sonar_campaign_points"
	MetricCampaignFindings   = "sonar_campaign_findings"
	MetricCampaignCorpus     = "sonar_campaign_corpus_seeds"
	MetricCampaignDone       = "sonar_campaign_done"
)

// DefaultLeaseTTL is the lease time-to-live when Config.LeaseTTL is zero.
// docs/SERVICE.md's runbook explains how to tune it: it must comfortably
// exceed one batch's execution time, or healthy workers lose their leases.
const DefaultLeaseTTL = 30 * time.Second

// Builtins returns the built-in DUT registry shared by cmd/sonar-server and
// cmd/sonar-worker: the paper's two targets, plus boom's dual-core
// elaboration under its own name. Campaign submission resolves a dual-core
// spec (Options.DualCore) against the "-dual" variant, so workers always
// elaborate the exact design the server folds stats against.
func Builtins() map[string]func() *uarch.SoC {
	return map[string]func() *uarch.SoC{
		"boom":      boom.New,
		"boom-dual": boom.NewDual,
		"nutshell":  nutshell.New,
	}
}

// Config parameterizes a Controller.
type Config struct {
	// LeaseTTL is how long a granted lease stays valid without a renewal;
	// zero means DefaultLeaseTTL. Expired leases are re-offered to the next
	// worker that asks.
	LeaseTTL time.Duration
	// MaxRetries bounds lease re-offers per shard per round, with the same
	// convention as fuzz.Options.MaxRetries: zero means the engine default
	// (2), negative means no retries — the shard is abandoned after its
	// first expired lease. A shard that exhausts its retries is abandoned
	// and its remaining budget dropped, exactly like a local campaign's
	// fault disposition.
	MaxRetries int
	// DUTs overrides the built-in DUT registry (Builtins) — tests inject
	// cheap lite designs here. Workers must be configured with the same
	// registry.
	DUTs map[string]func() *uarch.SoC
}

// ttl returns the effective lease TTL.
func (cfg Config) ttl() time.Duration {
	if cfg.LeaseTTL <= 0 {
		return DefaultLeaseTTL
	}
	return cfg.LeaseTTL
}

// maxAttempts returns how many expired leases a shard tolerates per round
// before abandonment (first attempt + retries).
func (cfg Config) maxAttempts() int {
	switch {
	case cfg.MaxRetries == 0:
		return 3 // engine default: 2 retries after the first failure
	case cfg.MaxRetries < 0:
		return 1
	default:
		return cfg.MaxRetries + 1
	}
}

// Spec is a campaign submission: exactly one of DUT or FIRRTL must be set.
// A named DUT starts a fuzzing campaign. FIRRTL source with zero iterations
// starts an analysis-only campaign (§5 contention-point identification)
// that completes immediately; with Options.Iterations >= 1 it starts an
// executable netlist campaign — workers elaborate the design into a
// lane-parallel fuzz.LaneDUT and whole lane groups of testcase pairs run
// bit-parallel through the optimizing simulator pipeline.
type Spec struct {
	// DUT names a design in the server's registry ("boom", "nutshell", ...).
	DUT string `json:"dut,omitempty"`
	// FIRRTL is FIRRTL source text: analysis-only when Options.Iterations is
	// zero, a lane-parallel netlist fuzzing campaign otherwise.
	FIRRTL string `json:"firrtl,omitempty"`
	// Options is the campaign shape. The server normalizes Workers and
	// BatchSize to their effective values at submission; the determinism
	// contract is per effective (Seed, Workers, BatchSize).
	Options fuzz.Shape `json:"options"`
	// Lanes is the evaluator lane width suggested to workers (operational;
	// does not affect results). Zero lets each worker pick its own.
	Lanes int `json:"lanes,omitempty"`
}

// AnalysisResult is the outcome of an analysis-only campaign — the same
// numbers the sonar CLI's identification report prints.
type AnalysisResult struct {
	// Design is the circuit name from the FIRRTL source.
	Design string `json:"design"`
	// NaiveMuxes counts all 2:1 MUXes (the naive baseline of paper Fig. 6).
	NaiveMuxes int `json:"naive_muxes"`
	// TracedPoints counts the deduplicated contention points.
	TracedPoints int `json:"traced_points"`
	// MonitoredPoints counts the points surviving the §5.2 filter.
	MonitoredPoints int `json:"monitored_points"`
	// ByComponent maps component name to [traced, monitored] counts.
	ByComponent map[string][2]int `json:"by_component"`
	// Audit is the static information-flow audit summary of the design.
	Audit *AuditSummary `json:"audit,omitempty"`
}

// AuditSummary is the API's view of a design's information-flow audit
// (internal/hdl/flow), attached to every FIRRTL campaign at submission.
type AuditSummary struct {
	// SurfaceCascades is the number of arbitration MUX cascades in the
	// contention surface. Zero is rejected at submission: such a design has
	// nothing to monitor.
	SurfaceCascades int `json:"surface_cascades"`
	// TaintedPoints counts contention points reached by any taint label
	// under the heuristic source designation.
	TaintedPoints int `json:"tainted_points"`
	// TaintPairPoints counts points reached by both secret and attacker
	// taint — the statically channel-capable points.
	TaintPairPoints int `json:"taint_pair_points"`
	// TopPoints is the audit's placement rank order (monitorable point IDs,
	// highest risk first), truncated to the first auditTopPoints entries.
	TopPoints []int `json:"top_points,omitempty"`
	// InfoFindings counts the audit's Info-severity findings.
	InfoFindings int `json:"info_findings"`
	// ErrorFindings counts Error-severity findings; a submission with any
	// is rejected, so a stored summary always reports zero.
	ErrorFindings int `json:"error_findings"`
}

// auditTopPoints caps the rank order echoed in an AuditSummary.
const auditTopPoints = 16

// auditFIRRTL audits a parsed FIRRTL design for submission: campaigns get
// the summary attached, and designs the audit proves unmonitorable — an
// empty contention surface or a cross-check discrepancy — are rejected
// before any lease is opened.
func auditFIRRTL(n *hdl.Netlist, a *trace.Analysis) (*AuditSummary, error) {
	au := flow.Analyze(n, a, flow.Spec{})
	if len(au.Surface) == 0 {
		return nil, fmt.Errorf("%w: firrtl: design %s has an empty contention surface (no arbitration MUX cascades); nothing to monitor", errBadRequest, n.Name())
	}
	if err := au.Err(); err != nil {
		return nil, fmt.Errorf("%w: firrtl audit: %v", errBadRequest, err)
	}
	sum := &AuditSummary{
		SurfaceCascades: len(au.Surface),
		TaintedPoints:   au.TaintedPoints(),
		TaintPairPoints: au.TaintPairPoints(),
		TopPoints:       au.MonitorRankIDs(),
	}
	if len(sum.TopPoints) > auditTopPoints {
		sum.TopPoints = sum.TopPoints[:auditTopPoints]
	}
	for _, f := range au.Findings {
		if f.Severity == flow.Error {
			sum.ErrorFindings++
		} else {
			sum.InfoFindings++
		}
	}
	return sum, nil
}

// CampaignStatus is the API's view of one campaign.
type CampaignStatus struct {
	// ID is the campaign's deterministic identifier ("c1", "c2", ... in
	// submission order).
	ID string `json:"id"`
	// Kind is "fuzz" or "analysis".
	Kind string `json:"kind"`
	// State is "running" or "done".
	State string `json:"state"`
	// DUT is the design name: the registry name for fuzz campaigns, the
	// circuit name for analysis campaigns.
	DUT string `json:"dut"`
	// Shape is the effective campaign shape (fuzz campaigns only).
	Shape *fuzz.Shape `json:"shape,omitempty"`
	// Lanes echoes the spec's suggested evaluator lane width.
	Lanes int `json:"lanes,omitempty"`
	// Round is the number of completed merge rounds.
	Round int `json:"round,omitempty"`
	// Done is the campaign position in iterations (executed plus dropped),
	// as of the last round barrier.
	Done int `json:"done,omitempty"`
	// Points is the number of distinct contention points triggered so far.
	Points int `json:"points,omitempty"`
	// Findings is the number of verified side-channel findings so far.
	Findings int `json:"findings,omitempty"`
	// CorpusSize is the merged seed corpus size.
	CorpusSize int `json:"corpus_size,omitempty"`
	// GrantedLeases is the number of currently outstanding leases.
	GrantedLeases int `json:"granted_leases,omitempty"`
	// Audit is the information-flow audit summary (FIRRTL campaigns).
	Audit *AuditSummary `json:"audit,omitempty"`
}

// Result is a campaign's final result.
type Result struct {
	// Kind is "fuzz" or "analysis".
	Kind string `json:"kind"`
	// Stats is the fuzz campaign's canonical serialized statistics —
	// byte-identical to a local run's fuzz.Stats.Wire() for the same
	// topology.
	Stats *fuzz.StatsWire `json:"stats,omitempty"`
	// Analysis is the analysis-only campaign's report.
	Analysis *AnalysisResult `json:"analysis,omitempty"`
}

// LeaseGrant is the server's response to a successful lease acquisition:
// the work assignment plus everything the worker needs to execute it.
type LeaseGrant struct {
	// LeaseID is the deterministic lease identifier
	// "{campaign}-r{round}-s{shard}-a{attempt}".
	LeaseID string `json:"lease_id"`
	// Campaign is the campaign ID the lease belongs to.
	Campaign string `json:"campaign"`
	// DUT is the registry name of the design to elaborate — or, for FIRRTL
	// campaigns, the circuit name (informational; FIRRTL carries the design).
	DUT string `json:"dut"`
	// FIRRTL is the campaign's FIRRTL source for netlist campaigns; workers
	// elaborate it into a lane-parallel executor instead of consulting their
	// DUT registry.
	FIRRTL string `json:"firrtl,omitempty"`
	// Shape is the campaign shape to execute under.
	Shape fuzz.Shape `json:"shape"`
	// Lanes is the suggested evaluator lane width (0 = worker's choice).
	Lanes int `json:"lanes,omitempty"`
	// TTLMillis is the lease time-to-live; workers renew at a fraction of
	// it while executing.
	TTLMillis int64 `json:"ttl_ms"`
	// Lease is the shard-batch work assignment for fuzz.ExecuteLease.
	Lease fuzz.Lease `json:"lease"`
}

// Health is the healthz endpoint's body.
type Health struct {
	// Status is "ok".
	Status string `json:"status"`
	// Draining reports whether the controller has stopped granting leases.
	Draining bool `json:"draining"`
	// Campaigns is the total number of campaigns submitted.
	Campaigns int `json:"campaigns"`
	// OpenLeases is the number of currently outstanding leases.
	OpenLeases int `json:"open_leases"`
}

// campaign is the controller's per-campaign state.
type campaign struct {
	id       string
	kind     string // "fuzz" | "analysis"
	dutName  string // registry name (fuzz) or circuit name (analysis/FIRRTL)
	firrtl   string // FIRRTL source for netlist campaigns, forwarded in grants
	lanes    int
	lc       *fuzz.LeaseCoordinator // fuzz campaigns only
	sink     *obs.MemorySink        // backs the events download
	analysis *AnalysisResult        // analysis campaigns only
	audit    *AuditSummary          // FIRRTL campaigns: information-flow audit

	// Open-round churn bookkeeping, reset when the round advances.
	lastRound int
	granted   map[int]*lease   // shard → outstanding lease
	attempts  map[int]int      // shard → expired leases this round
	reasons   map[int][]string // shard → expiry reasons this round
}

// done reports whether the campaign has finished.
func (c *campaign) done() bool {
	return c.kind == "analysis" || c.lc.Finished()
}

// lease is one outstanding granted lease.
type lease struct {
	id      string
	camp    *campaign
	shard   int
	round   int
	attempt int
	expires time.Time
	worker  string
	payload *fuzz.Lease
}

// Controller owns all campaign and lease state behind the HTTP API. All
// methods are safe for concurrent use; a single mutex serializes access to
// the per-campaign LeaseCoordinators (which are not concurrency-safe).
type Controller struct {
	mu        sync.Mutex
	cfg       Config
	duts      map[string]func() *uarch.SoC
	factories map[string]func() *fuzz.DUT // shared-analysis DUT factories
	campaigns []*campaign
	byID      map[string]*campaign
	leases    map[string]*lease
	draining  bool
	now       func() time.Time

	metrics        *obs.Metrics
	campaignsTotal *obs.Counter
	running        *obs.Gauge
	granted        *obs.Counter
	completed      *obs.Counter
	expired        *obs.Counter
	renewals       *obs.Counter
	stale          *obs.Counter
	abandonedCnt   *obs.Counter
	workerFails    *obs.Counter
	gaugeIters     *obs.GaugeVec
	gaugeRound     *obs.GaugeVec
	gaugePoints    *obs.GaugeVec
	gaugeFindings  *obs.GaugeVec
	gaugeCorpus    *obs.GaugeVec
	gaugeDone      *obs.GaugeVec
}

// NewController builds an empty controller.
func NewController(cfg Config) *Controller {
	duts := cfg.DUTs
	if duts == nil {
		duts = Builtins()
	}
	m := obs.NewMetrics()
	return &Controller{
		cfg:       cfg,
		duts:      duts,
		factories: make(map[string]func() *fuzz.DUT),
		byID:      make(map[string]*campaign),
		leases:    make(map[string]*lease),
		now:       time.Now, //sonar:nondeterministic-ok lease TTL/expiry is wall-clock by design; campaign outputs never fold over it (tests inject a fake clock)
		metrics:   m,

		campaignsTotal: m.Counter(MetricCampaigns, "Campaigns submitted."),
		running:        m.Gauge(MetricCampaignsRunning, "Campaigns currently running."),
		granted:        m.Counter(MetricLeasesGranted, "Shard leases granted to workers."),
		completed:      m.Counter(MetricLeasesCompleted, "Shard leases completed by a worker report."),
		expired:        m.Counter(MetricLeasesExpired, "Shard leases expired without a report (worker churn)."),
		renewals:       m.Counter(MetricLeaseRenewals, "Lease renewals."),
		stale:          m.Counter(MetricStaleReports, "Reports for expired or already-resolved leases."),
		abandonedCnt:   m.Counter(MetricShardsAbandoned, "Shards abandoned after exhausting lease retries."),
		workerFails:    m.Counter(obs.MetricWorkerFailures, "Failed lease attempts (expiries and abandonments)."),

		gaugeIters:    m.GaugeVec(MetricCampaignIterations, "Campaign position in iterations.", "campaign"),
		gaugeRound:    m.GaugeVec(MetricCampaignRound, "Completed merge rounds.", "campaign"),
		gaugePoints:   m.GaugeVec(MetricCampaignPoints, "Distinct contention points triggered.", "campaign"),
		gaugeFindings: m.GaugeVec(MetricCampaignFindings, "Verified side-channel findings.", "campaign"),
		gaugeCorpus:   m.GaugeVec(MetricCampaignCorpus, "Merged seed corpus size.", "campaign"),
		gaugeDone:     m.GaugeVec(MetricCampaignDone, "1 once the campaign has finished.", "campaign"),
	}
}

// Metrics returns the controller's metric registry; the server mounts its
// Handler at /metrics.
func (ct *Controller) Metrics() *obs.Metrics { return ct.metrics }

// Submit validates a campaign spec and opens the campaign. FIRRTL specs run
// the contention-point analysis synchronously and complete immediately;
// named-DUT specs elaborate the design (once per name — the analysis is
// shared across campaigns and with nothing else to do the call can take a
// few seconds for the full cores) and open a lease coordinator.
func (ct *Controller) Submit(spec *Spec) (*CampaignStatus, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()

	if (spec.DUT == "") == (spec.FIRRTL == "") {
		return nil, fmt.Errorf("%w: spec must set exactly one of dut, firrtl", errBadRequest)
	}

	c := &campaign{
		id:       fmt.Sprintf("c%d", len(ct.campaigns)+1),
		lanes:    spec.Lanes,
		granted:  make(map[int]*lease),
		attempts: make(map[int]int),
		reasons:  make(map[int][]string),
	}

	switch {
	case spec.FIRRTL != "" && spec.Options.Iterations < 1:
		net, err := firrtl.ParseChecked(spec.FIRRTL)
		if err != nil {
			return nil, fmt.Errorf("%w: firrtl: %v", errBadRequest, err)
		}
		a := trace.Analyze(net)
		sum, err := auditFIRRTL(net, a)
		if err != nil {
			return nil, err
		}
		c.kind = "analysis"
		c.dutName = net.Name()
		c.audit = sum
		c.analysis = &AnalysisResult{
			Design:          net.Name(),
			NaiveMuxes:      a.NaiveMuxCount,
			TracedPoints:    len(a.Points),
			MonitoredPoints: len(a.Monitored()),
			ByComponent:     a.ByComponent(),
			Audit:           sum,
		}
	case spec.FIRRTL != "":
		// Executable netlist campaign: the source elaborates into a
		// lane-parallel executor here (for the coordinator's analysis and
		// stats folding) and again on every worker that gets a grant.
		src := spec.FIRRTL
		factory, err := fuzz.LaneDUTFactory(func() (*hdl.Netlist, error) {
			return firrtl.ParseChecked(src)
		}, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("%w: firrtl: %v", errBadRequest, err)
		}
		d := factory()
		an := d.ContentionAnalysis()
		sum, err := auditFIRRTL(an.Netlist, an)
		if err != nil {
			return nil, err
		}
		c.kind = "fuzz"
		c.dutName = an.Netlist.Name()
		c.audit = sum
		c.firrtl = src
		c.sink = obs.NewMemorySink()
		opt := spec.Options.Options()
		opt.Observer = obs.New(c.sink)
		c.lc = fuzz.NewLeaseCoordinator(d, opt)
	default:
		if spec.Options.Iterations < 1 {
			return nil, fmt.Errorf("%w: fuzz campaign needs iterations >= 1", errBadRequest)
		}
		name, err := ct.resolveDUT(spec)
		if err != nil {
			return nil, err
		}
		c.kind = "fuzz"
		c.dutName = name
		c.sink = obs.NewMemorySink()
		opt := spec.Options.Options()
		opt.Observer = obs.New(c.sink)
		c.lc = fuzz.NewLeaseCoordinator(ct.factoryLocked(name)(), opt)
	}

	ct.campaigns = append(ct.campaigns, c)
	ct.byID[c.id] = c
	ct.campaignsTotal.Inc()
	if !c.done() {
		ct.running.Add(1)
	}
	ct.updateGaugesLocked(c)
	return ct.statusLocked(c), nil
}

// resolveDUT maps a spec to the registry name workers will elaborate. A
// dual-core spec resolves to the "-dual" registry variant so the worker's
// SoC matches the shape.
func (ct *Controller) resolveDUT(spec *Spec) (string, error) {
	name := spec.DUT
	if spec.Options.DualCore {
		dual := name + "-dual"
		if _, ok := ct.duts[dual]; !ok {
			return "", fmt.Errorf("%w: no dual-core variant of DUT %q in the registry", errBadRequest, name)
		}
		name = dual
	}
	if _, ok := ct.duts[name]; !ok {
		return "", fmt.Errorf("%w: unknown DUT %q", errBadRequest, spec.DUT)
	}
	return name, nil
}

// factoryLocked returns the shared-analysis DUT factory for a registry name.
func (ct *Controller) factoryLocked(name string) func() *fuzz.DUT {
	f, ok := ct.factories[name]
	if !ok {
		f = fuzz.SharedAnalysisFactory(ct.duts[name])
		ct.factories[name] = f
	}
	return f
}

// Campaigns lists all campaigns in submission order.
func (ct *Controller) Campaigns() []*CampaignStatus {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	out := make([]*CampaignStatus, len(ct.campaigns))
	for i, c := range ct.campaigns {
		out[i] = ct.statusLocked(c)
	}
	return out
}

// Campaign returns one campaign's status.
func (ct *Controller) Campaign(id string) (*CampaignStatus, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	c, ok := ct.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: campaign %q", errNotFound, id)
	}
	return ct.statusLocked(c), nil
}

// Events returns a campaign's JSONL event stream so far (empty for
// analysis-only campaigns, which emit no events).
func (ct *Controller) Events(id string) ([]byte, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	c, ok := ct.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: campaign %q", errNotFound, id)
	}
	if c.sink == nil {
		return nil, nil
	}
	return c.sink.Bytes(), nil
}

// Result returns a campaign's final result; a still-running fuzz campaign
// is a conflict.
func (ct *Controller) Result(id string) (*Result, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	c, ok := ct.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: campaign %q", errNotFound, id)
	}
	if c.kind == "analysis" {
		return &Result{Kind: "analysis", Analysis: c.analysis}, nil
	}
	if !c.lc.Finished() {
		return nil, fmt.Errorf("%w: campaign %q is still running", errConflict, id)
	}
	w := c.lc.Stats().Wire()
	return &Result{Kind: "fuzz", Stats: &w}, nil
}

// Checkpoint returns a fuzz campaign's state as an encoded checkpoint file
// (the same format fuzz.Checkpoint.Save writes), captured at the last
// closed round barrier.
func (ct *Controller) Checkpoint(id string) ([]byte, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	c, ok := ct.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: campaign %q", errNotFound, id)
	}
	if c.kind != "fuzz" {
		return nil, fmt.Errorf("%w: campaign %q is analysis-only and has no checkpoint", errNotFound, id)
	}
	return c.lc.Snapshot(c.lc.Finished()).Encode()
}

// Acquire offers a lease to a worker: the first open, un-leased shard of
// the oldest running campaign. A nil grant (and nil error) means no work is
// available right now — the campaign set is drained, draining, or every
// open shard is already leased out.
func (ct *Controller) Acquire(worker string) (*LeaseGrant, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	if ct.draining {
		return nil, nil
	}
	for _, c := range ct.campaigns {
		if c.kind != "fuzz" || c.lc.Finished() {
			continue
		}
		for _, shard := range c.lc.OpenShards() {
			if _, leased := c.granted[shard]; leased {
				continue
			}
			payload, err := c.lc.Lease(shard)
			if err != nil {
				return nil, err
			}
			l := &lease{
				id:   fmt.Sprintf("%s-r%d-s%d-a%d", c.id, payload.Round, shard, c.attempts[shard]+1),
				camp: c, shard: shard, round: payload.Round,
				attempt: c.attempts[shard] + 1,
				expires: ct.now().Add(ct.cfg.ttl()),
				worker:  worker,
				payload: payload,
			}
			c.granted[shard] = l
			ct.leases[l.id] = l
			ct.granted.Inc()
			return &LeaseGrant{
				LeaseID:   l.id,
				Campaign:  c.id,
				DUT:       c.dutName,
				FIRRTL:    c.firrtl,
				Shape:     c.lc.Shape(),
				Lanes:     c.lanes,
				TTLMillis: ct.cfg.ttl().Milliseconds(),
				Lease:     *payload,
			}, nil
		}
	}
	return nil, nil
}

// Renew extends an outstanding lease's TTL.
func (ct *Controller) Renew(leaseID string) (time.Duration, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	l, ok := ct.leases[leaseID]
	if !ok {
		return 0, fmt.Errorf("%w: lease %q expired or already resolved", errGone, leaseID)
	}
	l.expires = ct.now().Add(ct.cfg.ttl())
	ct.renewals.Inc()
	return ct.cfg.ttl(), nil
}

// Report resolves an outstanding lease with its executed result. A result
// for an expired or already-resolved lease is gone (the shard was re-leased
// or the round moved on); a result the coordinator rejects is a bad
// request.
func (ct *Controller) Report(leaseID string, res *fuzz.LeaseResult) error {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	l, ok := ct.leases[leaseID]
	if !ok {
		ct.stale.Inc()
		return fmt.Errorf("%w: lease %q expired or already resolved", errGone, leaseID)
	}
	if res == nil || res.Shard != l.shard || res.Round != l.round {
		return fmt.Errorf("%w: result does not match lease %q (shard %d round %d)", errBadRequest, leaseID, l.shard, l.round)
	}
	if err := l.camp.lc.Report(res); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	delete(ct.leases, leaseID)
	delete(l.camp.granted, l.shard)
	ct.completed.Inc()
	ct.afterAdvanceLocked(l.camp)
	return nil
}

// Drain switches lease granting off (true) or back on (false). Outstanding
// leases can still be renewed and reported; Acquire returns no work while
// draining, so workers idle and the operator can stop them or the server.
func (ct *Controller) Drain(on bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.draining = on
}

// Health summarizes the controller for the healthz endpoint.
func (ct *Controller) Health() *Health {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.sweepLocked()
	return &Health{
		Status:     "ok",
		Draining:   ct.draining,
		Campaigns:  len(ct.campaigns),
		OpenLeases: len(ct.leases),
	}
}

// sweepLocked expires overdue leases and abandons shards that exhausted
// their retries. It runs at the top of every API call — the controller has
// no background clock, so expiry is processed lazily but before any state
// is read or changed. Expiry is metrics-only bookkeeping (no events) unless
// it tips a shard into abandonment, which emits the same worker_failed
// events a local campaign's fault disposition does — that is what keeps a
// churned-but-recovered campaign byte-identical to a fault-free local run.
func (ct *Controller) sweepLocked() {
	now := ct.now()
	var due []*lease
	for _, l := range ct.leases { //sonar:nondeterministic-ok expiry candidates are collected then sorted by lease id before any state change
		if !l.expires.After(now) {
			due = append(due, l)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].id < due[j].id })
	for _, l := range due {
		delete(ct.leases, l.id)
		delete(l.camp.granted, l.shard)
		c := l.camp
		c.attempts[l.shard]++
		c.reasons[l.shard] = append(c.reasons[l.shard],
			fmt.Sprintf("lease %s expired after %v", l.id, ct.cfg.ttl()))
		ct.expired.Inc()
		ct.workerFails.Inc()
		if c.attempts[l.shard] >= ct.cfg.maxAttempts() {
			// Retries exhausted: drop the shard. The coordinator emits one
			// worker_failed per expired lease plus the disposition at the
			// round barrier.
			if err := c.lc.Abandon(l.shard, c.reasons[l.shard]); err == nil {
				ct.abandonedCnt.Inc()
				ct.workerFails.Inc()
				ct.afterAdvanceLocked(c)
			}
		}
	}
}

// afterAdvanceLocked refreshes derived state after a coordinator mutation:
// round-scoped churn bookkeeping resets when the barrier closes, gauges
// re-publish, and a finished campaign leaves the running set.
func (ct *Controller) afterAdvanceLocked(c *campaign) {
	if r := c.lc.Round(); r != c.lastRound {
		c.lastRound = r
		c.attempts = make(map[int]int)
		c.reasons = make(map[int][]string)
	}
	ct.updateGaugesLocked(c)
	if c.lc.Finished() {
		ct.running.Add(-1)
	}
}

// updateGaugesLocked publishes a campaign's per-campaign gauges.
func (ct *Controller) updateGaugesLocked(c *campaign) {
	done := 0.0
	if c.done() {
		done = 1
	}
	ct.gaugeDone.At(c.id).Set(done)
	if c.kind != "fuzz" {
		return
	}
	st := c.lc.Stats()
	ct.gaugeIters.At(c.id).Set(float64(c.lc.Position()))
	ct.gaugeRound.At(c.id).Set(float64(c.lc.Round()))
	ct.gaugePoints.At(c.id).Set(float64(len(st.TriggeredPoints)))
	ct.gaugeFindings.At(c.id).Set(float64(len(st.Findings)))
	ct.gaugeCorpus.At(c.id).Set(float64(c.lc.CorpusLen()))
}

// statusLocked builds a campaign's API status.
func (ct *Controller) statusLocked(c *campaign) *CampaignStatus {
	s := &CampaignStatus{
		ID:    c.id,
		Kind:  c.kind,
		State: "running",
		DUT:   c.dutName,
		Lanes: c.lanes,
		Audit: c.audit,
	}
	if c.done() {
		s.State = "done"
	}
	if c.kind == "fuzz" {
		shape := c.lc.Shape()
		st := c.lc.Stats()
		s.Shape = &shape
		s.Round = c.lc.Round()
		s.Done = c.lc.Position()
		s.Points = len(st.TriggeredPoints)
		s.Findings = len(st.Findings)
		s.CorpusSize = c.lc.CorpusLen()
		s.GrantedLeases = len(c.granted)
	}
	return s
}
