package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"sonar/internal/fuzz"
)

// Client is a thin HTTP client for the campaign service API, used by
// cmd/sonar-worker and the service tests.
type Client struct {
	// BaseURL is the server's base URL, e.g. "http://127.0.0.1:8714".
	BaseURL string
	// HTTPClient is the underlying client; nil means http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for a server base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// httpClient returns the effective underlying HTTP client.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one API request. A non-nil out is filled from a JSON response
// body; error bodies become "<status>: <message>" errors.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleet: marshal %s %s body: %w", method, path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return apiError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// raw issues one GET and returns the raw response body (events, checkpoint
// downloads).
func (c *Client) raw(path string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// apiError converts an error response to a Go error carrying the status
// code and the server's message.
func apiError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Error != "" {
		msg = body.Error
	}
	return &APIError{Status: resp.StatusCode, Message: msg}
}

// APIError is an error response from the campaign service.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error message.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("fleet: server returned %d: %s", e.Status, e.Message)
}

// Health fetches the server's health summary.
func (c *Client) Health() (*Health, error) {
	var h Health
	if err := c.do("GET", "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Submit submits a campaign spec and returns the new campaign's status.
func (c *Client) Submit(spec *Spec) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do("POST", "/api/v1/campaigns", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Campaigns lists all campaigns.
func (c *Client) Campaigns() ([]CampaignStatus, error) {
	var out []CampaignStatus
	if err := c.do("GET", "/api/v1/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Campaign fetches one campaign's status.
func (c *Client) Campaign(id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do("GET", "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events downloads a campaign's JSONL event stream so far.
func (c *Client) Events(id string) ([]byte, error) {
	return c.raw("/api/v1/campaigns/" + id + "/events")
}

// Result fetches a finished campaign's result.
func (c *Client) Result(id string) (*Result, error) {
	var res Result
	if err := c.do("GET", "/api/v1/campaigns/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CheckpointFile downloads a fuzz campaign's encoded checkpoint file.
func (c *Client) CheckpointFile(id string) ([]byte, error) {
	return c.raw("/api/v1/campaigns/" + id + "/checkpoint")
}

// Acquire asks for a lease. A nil grant with a nil error means the server
// has no work to offer right now.
func (c *Client) Acquire(worker string) (*LeaseGrant, error) {
	req, err := json.Marshal(acquireRequest{Worker: worker})
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/api/v1/leases/acquire", "application/json", bytes.NewReader(req))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	if resp.StatusCode >= 400 {
		return nil, apiError(resp)
	}
	var g LeaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}

// Renew extends an outstanding lease's TTL.
func (c *Client) Renew(leaseID string) error {
	return c.do("POST", "/api/v1/leases/"+leaseID+"/renew", struct{}{}, nil)
}

// Report posts an executed lease's result.
func (c *Client) Report(leaseID string, res *fuzz.LeaseResult) error {
	return c.do("POST", "/api/v1/leases/"+leaseID+"/result", res, nil)
}

// Drain switches the server's lease granting off or back on.
func (c *Client) Drain(on bool) error {
	return c.do("POST", "/api/v1/drain", drainRequest{Drain: on}, nil)
}
