package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sonar/internal/firrtl"
	"sonar/internal/fuzz"
	"sonar/internal/hdl"
	"sonar/internal/obs"
	"sonar/internal/uarch"
)

// fig3 is the paper's Figure 3 LSU circuit — a valid FIRRTL input for
// analysis-only campaigns.
const fig3 = `
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input io_fwd_valid : UInt<1>
    input io_fwd_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    input sel_stq : UInt<1>
    output ldq_stq_idx : UInt<5>
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, mux(sel_stq, io_stq_bits_idx, io_fwd_bits_idx))
`

// liteSoC elaborates the single-core lite design the fuzz engine tests use;
// it is cheap enough to build per worker.
func liteSoC() *uarch.SoC { return uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil) }

// testRegistry is the DUT registry test servers and workers share.
func testRegistry() map[string]func() *uarch.SoC {
	return map[string]func() *uarch.SoC{"lite": liteSoC}
}

// testShape is the campaign shape used across the service tests: Sonar
// guidance, fixed seed, explicit (Workers, BatchSize) topology.
func testShape(iterations, workers, batch int) fuzz.Shape {
	return fuzz.Shape{
		Iterations: iterations, Seed: 1,
		Retention: true, Selection: true, DirectedMutation: true,
		SecretA: 0, SecretB: 1,
		Workers: workers, BatchSize: batch,
	}
}

// localRun executes the same campaign with the local parallel engine and
// returns its event stream and Stats — the reference every distributed run
// must match byte-for-byte.
func localRun(t *testing.T, shape fuzz.Shape) ([]byte, *fuzz.Stats) {
	t.Helper()
	sink := obs.NewMemorySink()
	opt := shape.Options()
	opt.Observer = obs.New(sink)
	st := fuzz.RunParallel(fuzz.SharedAnalysisFactory(liteSoC), opt)
	return sink.Bytes(), st
}

// newTestServer starts an in-process campaign server.
func newTestServer(t *testing.T, cfg Config) (*Client, *Controller) {
	t.Helper()
	if cfg.DUTs == nil {
		cfg.DUTs = testRegistry()
	}
	ct := NewController(cfg)
	ts := httptest.NewServer(NewServer(ct))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), ct
}

// driveCampaign executes every lease the server offers through the HTTP
// API until it stops offering work.
func driveCampaign(t *testing.T, client *Client) {
	t.Helper()
	factory := fuzz.SharedAnalysisFactory(liteSoC)
	for {
		g, err := client.Acquire("test-driver")
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		if g == nil {
			return
		}
		res, err := fuzz.ExecuteLease(factory, g.Shape, 1, &g.Lease)
		if err != nil {
			t.Fatalf("ExecuteLease(%s): %v", g.LeaseID, err)
		}
		if err := client.Report(g.LeaseID, res); err != nil {
			t.Fatalf("Report(%s): %v", g.LeaseID, err)
		}
	}
}

// fetchMetrics scrapes and parses the server's /metrics endpoint.
func fetchMetrics(t *testing.T, client *Client) map[string]float64 {
	t.Helper()
	text, err := client.raw("/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	m, err := obs.ParseExposition(string(text))
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return m
}

// The API round-trip: submit a campaign, drive its leases over HTTP,
// download result/events/checkpoint — and everything matches the local
// engine byte-for-byte.
func TestAPICampaignRoundTrip(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	shape := testShape(24, 2, 8)

	st, err := client.Submit(&Spec{DUT: "lite", Options: shape})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "c1" || st.Kind != "fuzz" || st.State != "running" {
		t.Fatalf("unexpected campaign status %+v", st)
	}
	if st.Shape == nil || st.Shape.Workers != 2 || st.Shape.BatchSize != 8 {
		t.Fatalf("unexpected effective shape %+v", st.Shape)
	}

	// Renewal works for an outstanding lease, 409s for an unknown one.
	g, err := client.Acquire("w0")
	if err != nil || g == nil {
		t.Fatalf("Acquire: grant=%v err=%v", g, err)
	}
	if g.LeaseID != "c1-r1-s0-a1" {
		t.Errorf("first lease ID = %q, want c1-r1-s0-a1", g.LeaseID)
	}
	if g.DUT != "lite" {
		t.Errorf("lease DUT = %q, want lite", g.DUT)
	}
	if err := client.Renew(g.LeaseID); err != nil {
		t.Errorf("Renew: %v", err)
	}
	if err := client.Renew("c9-r9-s9-a9"); err == nil {
		t.Error("renewing an unknown lease succeeded")
	}
	res, err := fuzz.ExecuteLease(fuzz.SharedAnalysisFactory(liteSoC), g.Shape, 1, &g.Lease)
	if err != nil {
		t.Fatalf("ExecuteLease: %v", err)
	}
	if err := client.Report(g.LeaseID, res); err != nil {
		t.Fatalf("Report: %v", err)
	}
	driveCampaign(t, client)

	st, err = client.Campaign("c1")
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if st.State != "done" || st.Done != 24 {
		t.Fatalf("campaign did not finish: %+v", st)
	}

	wantEvents, wantStats := localRun(t, shape)
	gotEvents, err := client.Events("c1")
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if !bytes.Equal(gotEvents, wantEvents) {
		t.Error("distributed event stream differs from local RunParallel stream")
	}
	result, err := client.Result("c1")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	gotWire, _ := json.Marshal(result.Stats)
	want := wantStats.Wire()
	wantWire, _ := json.Marshal(&want)
	if !bytes.Equal(gotWire, wantWire) {
		t.Errorf("distributed stats differ from local run:\n%s\nvs\n%s", gotWire, wantWire)
	}

	// The checkpoint download round-trips through the ordinary loader.
	ckpt, err := client.CheckpointFile("c1")
	if err != nil {
		t.Fatalf("CheckpointFile: %v", err)
	}
	path := filepath.Join(t.TempDir(), "c1.ckpt")
	if err := os.WriteFile(path, ckpt, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := fuzz.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if !cp.Complete || cp.DUT == "" {
		t.Errorf("downloaded checkpoint not complete: %+v", cp)
	}

	if _, err := client.Campaign("c42"); err == nil {
		t.Error("fetching an unknown campaign succeeded")
	}
}

// FIRRTL submissions run the §5 identification synchronously.
func TestAPIAnalysisCampaign(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	st, err := client.Submit(&Spec{FIRRTL: fig3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Kind != "analysis" || st.State != "done" {
		t.Fatalf("unexpected status %+v", st)
	}
	res, err := client.Result(st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	a := res.Analysis
	if a == nil || a.Design != "Lsu" || a.NaiveMuxes != 2 || a.TracedPoints != 1 {
		t.Errorf("unexpected analysis result %+v", a)
	}
	events, err := client.Events(st.ID)
	if err != nil || len(events) != 0 {
		t.Errorf("analysis campaign events = %q, %v; want empty", events, err)
	}
	if _, err := client.CheckpointFile(st.ID); err == nil {
		t.Error("analysis campaign served a checkpoint")
	}
}

// Malformed specs are rejected with 400 before touching any state.
func TestAPISubmitValidation(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	cases := []struct {
		name string
		spec Spec
	}{
		{"malformed firrtl", Spec{FIRRTL: "circuit C :\n  module C :\n    widget a : UInt<1>\n"}},
		{"empty spec", Spec{}},
		{"both dut and firrtl", Spec{DUT: "lite", FIRRTL: fig3}},
		{"unknown dut", Spec{DUT: "zen5", Options: testShape(8, 1, 8)}},
		{"no iterations", Spec{DUT: "lite"}},
		{"dual-core without variant", Spec{DUT: "lite", Options: func() fuzz.Shape {
			s := testShape(8, 1, 8)
			s.DualCore = true
			return s
		}()}},
	}
	for _, tc := range cases {
		_, err := client.Submit(&tc.spec)
		ae, ok := err.(*APIError)
		if !ok || ae.Status != 400 {
			t.Errorf("%s: got %v, want a 400 APIError", tc.name, err)
		}
	}
	if h, err := client.Health(); err != nil || h.Campaigns != 0 {
		t.Errorf("rejected submissions left state behind: %+v, %v", h, err)
	}
}

// An expired lease is re-offered with the next attempt number and the same
// payload; the stale report is rejected and counted.
func TestLeaseExpiryReoffer(t *testing.T) {
	client, _ := newTestServer(t, Config{LeaseTTL: 30 * time.Millisecond})
	if _, err := client.Submit(&Spec{DUT: "lite", Options: testShape(8, 1, 8)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	g1, err := client.Acquire("doomed")
	if err != nil || g1 == nil {
		t.Fatalf("Acquire: grant=%v err=%v", g1, err)
	}
	res, err := fuzz.ExecuteLease(fuzz.SharedAnalysisFactory(liteSoC), g1.Shape, 1, &g1.Lease)
	if err != nil {
		t.Fatalf("ExecuteLease: %v", err)
	}
	time.Sleep(60 * time.Millisecond) // let the lease expire

	g2, err := client.Acquire("healthy")
	if err != nil || g2 == nil {
		t.Fatalf("re-acquire after expiry: grant=%v err=%v", g2, err)
	}
	if g2.LeaseID != "c1-r1-s0-a2" {
		t.Errorf("re-offered lease ID = %q, want c1-r1-s0-a2", g2.LeaseID)
	}
	b1, _ := json.Marshal(g1.Lease)
	b2, _ := json.Marshal(g2.Lease)
	if !bytes.Equal(b1, b2) {
		t.Error("re-offered lease payload differs from the expired one")
	}

	// The dead worker's late report is rejected; the healthy one's lands.
	if err := client.Report(g1.LeaseID, res); err == nil {
		t.Error("report for an expired lease was accepted")
	}
	if err := client.Report(g2.LeaseID, res); err != nil {
		t.Fatalf("Report on re-offered lease: %v", err)
	}
	st, err := client.Campaign("c1")
	if err != nil || st.State != "done" {
		t.Fatalf("campaign did not complete after re-offer: %+v, %v", st, err)
	}

	m := fetchMetrics(t, client)
	for _, name := range []string{MetricLeasesExpired, MetricStaleReports, obs.MetricWorkerFailures} {
		if m[name] < 1 {
			t.Errorf("%s = %v, want >= 1", name, m[name])
		}
	}
	if m[MetricLeasesGranted] != 2 || m[MetricLeasesCompleted] != 1 {
		t.Errorf("granted/completed = %v/%v, want 2/1", m[MetricLeasesGranted], m[MetricLeasesCompleted])
	}
}

// A shard whose leases keep expiring is abandoned once retries are
// exhausted, and the campaign completes degraded — the distributed analog
// of the local fault-disposition path.
func TestLeaseRetriesExhaustedAbandonShard(t *testing.T) {
	client, ct := newTestServer(t, Config{LeaseTTL: 20 * time.Millisecond, MaxRetries: -1})
	if _, err := client.Submit(&Spec{DUT: "lite", Options: testShape(16, 2, 8)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Grab shard 0's lease and never report it; MaxRetries < 0 means the
	// first expiry abandons the shard.
	g, err := client.Acquire("doomed")
	if err != nil || g == nil {
		t.Fatalf("Acquire: grant=%v err=%v", g, err)
	}
	if g.Lease.Shard != 0 {
		t.Fatalf("first grant is shard %d, want 0", g.Lease.Shard)
	}
	time.Sleep(40 * time.Millisecond)
	driveCampaign(t, client) // sweeps, abandons shard 0, drains shard 1

	st, err := client.Campaign("c1")
	if err != nil || st.State != "done" {
		t.Fatalf("degraded campaign did not complete: %+v, %v", st, err)
	}
	result, err := client.Result("c1")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if got := result.Stats.PerIteration; len(got) != 8 {
		t.Errorf("degraded campaign executed %d iterations, want 8 (shard 0's 8 dropped)", len(got))
	}
	m := fetchMetrics(t, client)
	if m[MetricShardsAbandoned] != 1 {
		t.Errorf("%s = %v, want 1", MetricShardsAbandoned, m[MetricShardsAbandoned])
	}
	_ = ct
}

// The tentpole integration test: a server plus two in-process workers
// produce a byte-identical event stream and identical Stats to a local
// RunParallel of the same (Seed, Workers, BatchSize) topology — with and
// without a worker dying mid-campaign.
func TestServerWorkersMatchLocal(t *testing.T) {
	for _, kill := range []bool{false, true} {
		name := "healthy"
		if kill {
			name = "one-worker-killed"
		}
		t.Run(name, func(t *testing.T) {
			shape := testShape(60, 2, 8)
			cfg := Config{}
			if kill {
				cfg.LeaseTTL = 50 * time.Millisecond
			}
			client, _ := newTestServer(t, cfg)
			if _, err := client.Submit(&Spec{DUT: "lite", Options: shape}); err != nil {
				t.Fatalf("Submit: %v", err)
			}

			if kill {
				// Simulate a worker that acquires a lease and dies: the
				// lease is never reported and must expire and be re-offered
				// without perturbing the campaign.
				g, err := client.Acquire("killed-worker")
				if err != nil || g == nil {
					t.Fatalf("Acquire for doomed worker: grant=%v err=%v", g, err)
				}
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i := range errs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = RunWorker(ctx, client, WorkerOptions{
						ID:   fmt.Sprintf("w%d", i),
						Poll: 5 * time.Millisecond,
						DUTs: testRegistry(),
					})
				}(i)
			}

			deadline := time.Now().Add(60 * time.Second)
			for {
				st, err := client.Campaign("c1")
				if err != nil {
					t.Fatalf("Campaign: %v", err)
				}
				if st.State == "done" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("campaign did not complete; status %+v", st)
				}
				time.Sleep(10 * time.Millisecond)
			}
			cancel()
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}

			wantEvents, wantStats := localRun(t, shape)
			gotEvents, err := client.Events("c1")
			if err != nil {
				t.Fatalf("Events: %v", err)
			}
			if !bytes.Equal(gotEvents, wantEvents) {
				t.Error("distributed event stream differs from local RunParallel stream")
			}
			result, err := client.Result("c1")
			if err != nil {
				t.Fatalf("Result: %v", err)
			}
			gotWire, _ := json.Marshal(result.Stats)
			want := wantStats.Wire()
			wantWire, _ := json.Marshal(&want)
			if !bytes.Equal(gotWire, wantWire) {
				t.Error("distributed stats differ from local run")
			}

			m := fetchMetrics(t, client)
			if kill {
				if m[MetricLeasesExpired] < 1 || m[obs.MetricWorkerFailures] < 1 {
					t.Errorf("killed-worker run exposed expired=%v worker_failures=%v, want >= 1",
						m[MetricLeasesExpired], m[obs.MetricWorkerFailures])
				}
				if m[MetricShardsAbandoned] != 0 {
					t.Errorf("killed-worker run abandoned %v shards, want 0 (budget must survive churn)", m[MetricShardsAbandoned])
				}
			}
			if m[MetricCampaignDone+`{campaign="c1"}`] != 1 {
				t.Errorf("campaign done gauge = %v, want 1", m[MetricCampaignDone+`{campaign="c1"}`])
			}
		})
	}
}

// Draining stops lease grants without touching outstanding work.
func TestDrain(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	if _, err := client.Submit(&Spec{DUT: "lite", Options: testShape(8, 1, 8)}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := client.Drain(true); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if g, err := client.Acquire("w"); err != nil || g != nil {
		t.Fatalf("draining server offered work: grant=%v err=%v", g, err)
	}
	h, err := client.Health()
	if err != nil || !h.Draining {
		t.Fatalf("health = %+v, %v; want draining", h, err)
	}
	if err := client.Drain(false); err != nil {
		t.Fatalf("Drain(false): %v", err)
	}
	if g, err := client.Acquire("w"); err != nil || g == nil {
		t.Fatalf("un-drained server offered no work: grant=%v err=%v", g, err)
	}
}

// An executable FIRRTL submission (Iterations >= 1) runs as a lane-parallel
// netlist campaign: the controller elaborates the source, grants carry it so
// workers need no registry entry, and the distributed result matches a local
// RunParallelExec over the same design byte-for-byte — with workers running
// at different lane widths, since lease execution on the lane path is
// deterministic in the width.
func TestAPIFirrtlFuzzCampaign(t *testing.T) {
	client, _ := newTestServer(t, Config{})
	shape := testShape(40, 2, 8)

	st, err := client.Submit(&Spec{FIRRTL: fig3, Options: shape})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Kind != "fuzz" || st.State != "running" || st.DUT != "Lsu" {
		t.Fatalf("unexpected campaign status %+v", st)
	}

	// The first grant carries the FIRRTL design itself; workers elaborate it
	// rather than consulting their registry.
	g, err := client.Acquire("w-inspect")
	if err != nil || g == nil {
		t.Fatalf("Acquire: grant=%v err=%v", g, err)
	}
	if g.FIRRTL != fig3 || g.DUT != "Lsu" {
		t.Fatalf("grant lacks the FIRRTL payload: dut=%q firrtl=%d bytes", g.DUT, len(g.FIRRTL))
	}
	factory, err := fuzz.LaneDUTFactory(func() (*hdl.Netlist, error) {
		return firrtl.ParseChecked(g.FIRRTL)
	}, 0, 0)
	if err != nil {
		t.Fatalf("LaneDUTFactory: %v", err)
	}
	res, err := fuzz.ExecuteLeaseExec(factory, g.Shape, 64, &g.Lease)
	if err != nil {
		t.Fatalf("ExecuteLeaseExec: %v", err)
	}
	if err := client.Report(g.LeaseID, res); err != nil {
		t.Fatalf("Report: %v", err)
	}

	// Workers with an empty registry finish the campaign — the FIRRTL branch
	// never consults it — and their mixed lane widths must not perturb the
	// merged result.
	laneWidths := []int{1, 64}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(laneWidths))
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunWorker(ctx, client, WorkerOptions{
				ID:    fmt.Sprintf("fw%d", i),
				Poll:  5 * time.Millisecond,
				Lanes: laneWidths[i],
				DUTs:  map[string]func() *uarch.SoC{},
			})
		}(i)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err = client.Campaign("c1")
		if err != nil {
			t.Fatalf("Campaign: %v", err)
		}
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not complete; status %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	// The local lane-campaign reference over the same source.
	sink := obs.NewMemorySink()
	opt := shape.Options()
	opt.Observer = obs.New(sink)
	wantStats := fuzz.RunParallelExec(factory, opt)
	if len(wantStats.TriggeredPoints) == 0 {
		t.Fatal("reference netlist campaign triggered no contention points")
	}
	if st.Points != len(wantStats.TriggeredPoints) {
		t.Errorf("campaign status reports %d points, local run triggered %d", st.Points, len(wantStats.TriggeredPoints))
	}
	gotEvents, err := client.Events("c1")
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if !bytes.Equal(gotEvents, sink.Bytes()) {
		t.Error("distributed event stream differs from local RunParallelExec stream")
	}
	result, err := client.Result("c1")
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	gotWire, _ := json.Marshal(result.Stats)
	want := wantStats.Wire()
	wantWire, _ := json.Marshal(&want)
	if !bytes.Equal(gotWire, wantWire) {
		t.Errorf("distributed stats differ from local run:\n%s\nvs\n%s", gotWire, wantWire)
	}
}

// muxless is a structurally valid FIRRTL circuit with no arbitration at
// all: the flow audit proves its contention surface empty, so submission
// must be rejected with 400.
const muxless = `
circuit Pass :
  module Pass :
    input io_in : UInt<5>
    output io_out : UInt<5>
    io_out <= io_in
`

// FIRRTL submissions carry the information-flow audit summary, and designs
// whose contention surface is empty are rejected before any campaign state
// is created.
func TestAPIAuditSummaryAndEmptySurfaceRejection(t *testing.T) {
	client, _ := newTestServer(t, Config{})

	st, err := client.Submit(&Spec{FIRRTL: fig3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Audit == nil {
		t.Fatal("status carries no audit summary")
	}
	if st.Audit.SurfaceCascades != 1 || st.Audit.ErrorFindings != 0 {
		t.Errorf("unexpected audit summary %+v", st.Audit)
	}
	if st.Audit.TaintPairPoints == 0 {
		t.Errorf("fig3 has steerable selects and secret-width data, want taint pairs: %+v", st.Audit)
	}
	res, err := client.Result(st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if res.Analysis == nil || res.Analysis.Audit == nil {
		t.Fatal("analysis result carries no audit summary")
	}

	_, err = client.Submit(&Spec{FIRRTL: muxless})
	ae, ok := err.(*APIError)
	if !ok || ae.Status != 400 {
		t.Fatalf("empty-surface submission: got %v, want APIError 400", err)
	}

	shape := testShape(8, 1, 8)
	fst, err := client.Submit(&Spec{FIRRTL: fig3, Options: shape})
	if err != nil {
		t.Fatalf("Submit executable: %v", err)
	}
	if fst.Audit == nil || fst.Audit.SurfaceCascades != 1 {
		t.Fatalf("executable FIRRTL campaign carries no audit summary: %+v", fst.Audit)
	}
}
