package fleet

import (
	"context"
	"fmt"
	"time"

	"sonar/internal/firrtl"
	"sonar/internal/fuzz"
	"sonar/internal/hdl"
	"sonar/internal/uarch"
)

// WorkerOptions parameterizes a worker loop.
type WorkerOptions struct {
	// ID is the worker's self-assigned identifier, recorded on its leases.
	ID string
	// Poll is how long to sleep between acquire attempts when the server
	// has no work; zero means 500ms.
	Poll time.Duration
	// MaxLeases stops the worker after executing this many leases; zero
	// means run until the context is cancelled.
	MaxLeases int
	// Lanes overrides the server's suggested evaluator lane width
	// (operational; does not affect results). Zero uses the suggestion.
	Lanes int
	// DUTs is the worker's DUT registry; nil means Builtins. It must
	// resolve every name the server grants, i.e. server and workers must
	// agree on the registry.
	DUTs map[string]func() *uarch.SoC
}

// maxAcquireFailures is how many consecutive failed acquire calls a worker
// tolerates (server restarting, transient network) before giving up.
const maxAcquireFailures = 50

// RunWorker runs the lease-execution loop against a campaign server until
// the context is cancelled (returns nil), MaxLeases is reached, or an
// unrecoverable error occurs. It returns the number of leases executed.
//
// The loop is: acquire → elaborate the granted DUT (once per design name —
// the contention-point analysis is shared across leases) → execute the
// lease → report. While executing, a background goroutine renews the lease
// at a third of its TTL so slow batches survive; if a report still races an
// expiry the server answers 409, the result is discarded, and the re-offered
// lease re-executes deterministically elsewhere — campaign results are
// unaffected.
func RunWorker(ctx context.Context, client *Client, opt WorkerOptions) (int, error) {
	poll := opt.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	duts := opt.DUTs
	if duts == nil {
		duts = Builtins()
	}
	factories := make(map[string]func() fuzz.Executor)
	executed := 0
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return executed, nil
		}
		g, err := client.Acquire(opt.ID)
		if err != nil {
			failures++
			if failures >= maxAcquireFailures {
				return executed, fmt.Errorf("fleet: worker %s: acquire failed %d times in a row: %w", opt.ID, failures, err)
			}
			if !sleep(ctx, poll) {
				return executed, nil
			}
			continue
		}
		failures = 0
		if g == nil {
			if !sleep(ctx, poll) {
				return executed, nil
			}
			continue
		}

		// FIRRTL grants carry the design and elaborate into a lane-parallel
		// netlist executor, cached per campaign (two campaigns may submit
		// different sources under the same circuit name); named grants
		// resolve against the worker's registry, cached per design name.
		key := g.DUT
		if g.FIRRTL != "" {
			key = "firrtl/" + g.Campaign
		}
		f, ok := factories[key]
		if !ok {
			if g.FIRRTL != "" {
				src := g.FIRRTL
				lf, err := fuzz.LaneDUTFactory(func() (*hdl.Netlist, error) {
					return firrtl.ParseChecked(src)
				}, 0, 0)
				if err != nil {
					return executed, fmt.Errorf("fleet: worker %s: lease %s: firrtl: %w", opt.ID, g.LeaseID, err)
				}
				f = lf
			} else {
				mk, known := duts[g.DUT]
				if !known {
					return executed, fmt.Errorf("fleet: worker %s: server granted unknown DUT %q (registry mismatch)", opt.ID, g.DUT)
				}
				df := fuzz.SharedAnalysisFactory(mk)
				f = func() fuzz.Executor { return df() }
			}
			factories[key] = f
		}

		lanes := opt.Lanes
		if lanes == 0 {
			lanes = g.Lanes
		}
		stopRenew := renewLoop(client, g)
		res, err := fuzz.ExecuteLeaseExec(f, g.Shape, lanes, &g.Lease)
		stopRenew()
		if err != nil {
			// A lease the engine rejects (shape/corpus mismatch) cannot
			// succeed on retry either; let it expire and surface the error.
			return executed, fmt.Errorf("fleet: worker %s: lease %s: %w", opt.ID, g.LeaseID, err)
		}
		if err := client.Report(g.LeaseID, res); err != nil {
			// 409: the lease expired under us and was re-offered; the
			// result is simply discarded. Anything else is fatal.
			if ae, ok := err.(*APIError); !ok || ae.Status != 409 {
				return executed, fmt.Errorf("fleet: worker %s: report lease %s: %w", opt.ID, g.LeaseID, err)
			}
		}
		executed++
		if opt.MaxLeases > 0 && executed >= opt.MaxLeases {
			return executed, nil
		}
	}
}

// renewLoop renews a granted lease at a third of its TTL until the returned
// stop function is called. Renewal errors are ignored: a lost lease just
// means the eventual report is discarded.
func renewLoop(client *Client, g *LeaseGrant) func() {
	interval := time.Duration(g.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = client.Renew(g.LeaseID)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// sleep waits d or until the context is cancelled; it reports whether the
// full duration elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
