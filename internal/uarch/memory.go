package uarch

import "encoding/binary"

// Memory is a sparse flat byte-addressed memory with a privileged range.
// Loads from the privileged range by the (always user-mode) cores raise an
// access fault; the data is still returned to the pipeline, modelling the
// lazy-exception forwarding Meltdown-style attacks exploit (paper §7.3).
type Memory struct {
	pages     map[uint64][]byte // 4 KiB pages
	privBase  uint64
	privLimit uint64
}

const pageBytes = 4096

// NewMemory creates an empty memory with no privileged range.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// SetPrivRange marks [base, limit) as privileged.
func (m *Memory) SetPrivRange(base, limit uint64) {
	m.privBase, m.privLimit = base, limit
}

// Privileged reports whether an address lies in the privileged range.
func (m *Memory) Privileged(addr uint64) bool {
	return addr >= m.privBase && addr < m.privLimit
}

func (m *Memory) page(addr uint64, create bool) []byte {
	key := addr / pageBytes
	p, ok := m.pages[key]
	if !ok && create {
		p = make([]byte, pageBytes)
		m.pages[key] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 for untouched memory).
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%pageBytes]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr%pageBytes] = v
}

// Read reads n little-endian bytes as a uint64 (n <= 8). Accesses may span
// pages.
func (m *Memory) Read(addr uint64, n int) uint64 {
	var buf [8]byte
	for i := 0; i < n; i++ {
		buf[i] = m.LoadByte(addr + uint64(i))
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Write stores the low n bytes of v little-endian at addr.
func (m *Memory) Write(addr uint64, v uint64, n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i := 0; i < n; i++ {
		m.StoreByte(addr+uint64(i), buf[i])
	}
}

// WriteBytes copies a byte slice into memory.
func (m *Memory) WriteBytes(addr uint64, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint64(i), b)
	}
}

// Reset drops all contents but keeps the privileged range. Allocated pages
// are zeroed in place and kept resident, so re-running a similarly shaped
// program touches no new memory.
func (m *Memory) Reset() {
	for _, p := range m.pages { //sonar:nondeterministic-ok page zeroing is order-insensitive
		clear(p)
	}
}
