package uarch

import "sonar/internal/hdl"

// DChannel models the TileLink D-channel between the L1 caches and the L2:
// the response path data transfers are routed through. A cacheline read
// occupies the channel for ReadBeats cycles; a writeback occupies it for one
// cycle (paper §8.4.A). Overlapping requests serialize, which is the root of
// side channels S1-S4.
//
// The channel's arbiter is declared in the netlist as an n:1 MUX over the
// requesting sources, so Sonar's analyses identify it as a contention point
// and observe every request arrival at its true cycle (via the Pulser).
type DChannel struct {
	readBeats int
	freeAt    int64
	pulser    *Pulser
	// partitioned gives each requester its own virtual lane (the §8.6
	// resource-partitioning mitigation); laneFree tracks per-lane
	// occupancy instead of the shared freeAt.
	partitioned bool
	laneFree    []int64

	sourceNames []string
	reqValid    []*hdl.Signal
	reqAddr     []*hdl.Signal

	// Grants counts channel grants per source, for reports.
	Grants []int
	// Trace records every transfer (source, arrival, grant, completion)
	// for debugging and reports.
	Trace []Transfer
}

// Transfer is one recorded D-channel transaction.
type Transfer struct {
	Source      string // requesting port's source name
	At          int64  // request arrival
	Grant       int64  // transfer start
	Done        int64  // transfer completion
	IsWriteback bool   // writeback (put) rather than refill read
}

// NewDChannel elaborates the D-channel arbiter under mod with one request
// port per source name.
func NewDChannel(mod *hdl.Module, pulser *Pulser, readBeats int, sources []string) *DChannel {
	d := &DChannel{
		readBeats:   readBeats,
		pulser:      pulser,
		sourceNames: sources,
		Grants:      make([]int, len(sources)),
		laneFree:    make([]int64, len(sources)),
	}
	inputs := make([]*hdl.Signal, len(sources))
	for i, src := range sources {
		d.reqValid = append(d.reqValid, mod.Wire("io_req_"+src+"_valid", 1))
		addr := mod.Wire("io_req_"+src+"_bits_addr", 64)
		d.reqAddr = append(d.reqAddr, addr)
		inputs[i] = addr
	}
	if len(sources) >= 2 {
		sels := make([]*hdl.Signal, len(sources)-1)
		for i := range sels {
			sels[i] = mod.Wire("grant_"+sources[i], 1)
		}
		mod.MuxTree("d_channel_data", sels, inputs)
	}
	return d
}

// SetPartitioned switches the channel to per-requester virtual lanes.
func (d *DChannel) SetPartitioned(on bool) { d.partitioned = on }

// Reset clears channel occupancy between program runs.
func (d *DChannel) Reset() {
	d.freeAt = 0
	for i := range d.Grants {
		d.Grants[i] = 0
	}
	for i := range d.laneFree {
		d.laneFree[i] = 0
	}
	d.Trace = d.Trace[:0]
}

// RequestRead requests a cacheline read for source src arriving at cycle
// `at`. It returns the cycle the transfer completes (all beats delivered).
// The channel is occupied from the grant until then.
func (d *DChannel) RequestRead(src int, lineAddr uint64, at int64) int64 {
	grant := d.request(src, lineAddr, at)
	done := grant + int64(d.readBeats)
	d.release(src, done)
	d.Trace = append(d.Trace, Transfer{Source: d.sourceNames[src], At: at, Grant: grant, Done: done})
	return done
}

// RequestWrite requests a one-cycle writeback transfer for source src
// arriving at cycle `at`. It returns the cycle the transfer completes.
func (d *DChannel) RequestWrite(src int, lineAddr uint64, at int64) int64 {
	grant := d.request(src, lineAddr, at)
	done := grant + 1
	d.release(src, done)
	d.Trace = append(d.Trace, Transfer{Source: d.sourceNames[src], At: at, Grant: grant, Done: done, IsWriteback: true})
	return done
}

// request schedules the source's request pulse in the netlist for its
// arrival cycle and returns the grant cycle (first-come-first-served; a
// busy channel delays the grant).
func (d *DChannel) request(src int, lineAddr uint64, at int64) int64 {
	d.pulser.At(at, d.reqValid[src], d.reqAddr[src], lineAddr)
	d.Grants[src]++
	free := d.freeAt
	if d.partitioned {
		free = d.laneFree[src]
	}
	if at > free {
		return at
	}
	return free
}

// release records the end of a transfer on the shared channel or the
// source's lane.
func (d *DChannel) release(src int, done int64) {
	if d.partitioned {
		d.laneFree[src] = done
		return
	}
	d.freeAt = done
}

// BusyAt reports whether the channel is occupied at the given cycle.
func (d *DChannel) BusyAt(cycle int64) bool { return cycle < d.freeAt }

// FreeAt returns the cycle at which the channel becomes free.
func (d *DChannel) FreeAt() int64 { return d.freeAt }
