package uarch

import (
	"fmt"

	"sonar/internal/hdl"
	"sonar/internal/isa"
)

// ArrayRole says which pipeline activity drives a structural array.
type ArrayRole uint8

// Roles for ArraySpec.
const (
	// RoleNone elaborates the array but leaves it undriven: a monitorable
	// contention point that never triggers, part of the gap between
	// identified and triggered points (paper Figure 8).
	RoleNone ArrayRole = iota
	RoleROB
	RoleFetchBuf
	RoleIssueQ
	RoleRegFile
	RoleBTB
)

// ArraySpec describes one structural array to elaborate per core.
type ArraySpec struct {
	// Component is the module path segment (e.g. "rob", "frontend").
	Component string
	// Name is the array name within the component.
	Name string
	// Entries, Fanin, Width size the array.
	Entries, Fanin, Width int
	// Role connects the array to pipeline activity.
	Role ArrayRole
}

// FilterSpec describes per-component points that the §5.2 risk filter will
// drop: constant-request points and no-valid points.
type FilterSpec struct {
	Component string // component the counts belong to
	Const     int    // points dropped for constant request signals
	NoValid   int    // points dropped for having no valid request
	Fanin     int    // points dropped by the fan-in heuristic
}

// SoC is a one- or two-core system sharing memory, the L2, and the TileLink
// D-channel. It owns the netlist and the per-cycle run loop.
type SoC struct {
	Net    *hdl.Netlist // the elaborated netlist
	Pulser *Pulser      // contention pulser driving shared resources
	Mem    *Memory      // shared backing memory and L2 model
	Bus    *DChannel    // shared TileLink D-channel
	Cores  []*Core      // the cores, indexed by Core.ID

	cycle int64
}

// D-channel source indices per core: icache read, dcache read, dcache
// writeback.
func busSources(numCores int) []string {
	var s []string
	for i := 0; i < numCores; i++ {
		p := corePrefix(i)
		s = append(s, p+"icache_rd", p+"dcache_rd", p+"dcache_wb")
	}
	return s
}

func corePrefix(i int) string {
	if i == 0 {
		return ""
	}
	return fmt.Sprintf("c%d_", i)
}

// NewSoC elaborates a system with numCores cores of the given
// configuration plus the requested structural arrays and filterable banks.
func NewSoC(cfg Config, numCores int, arrays []ArraySpec, filters []FilterSpec) *SoC {
	net := hdl.NewNetlist(cfg.Name)
	s := &SoC{
		Net:    net,
		Pulser: NewPulser(),
		Mem:    NewMemory(),
	}
	s.Bus = NewDChannel(net.Module("tilelink"), s.Pulser, cfg.ReadBeats, busSources(numCores))
	s.Bus.SetPartitioned(cfg.PartitionedDChannel)

	for i := 0; i < numCores; i++ {
		p := corePrefix(i)
		icache := NewCache(net.Module(p+"frontend").Child("icache"), s.Pulser, CacheParams{
			Name: p + "icache", Sets: cfg.ICacheSets, Ways: cfg.ICacheWays,
			HitLatency: cfg.CacheHitLatency, L2Latency: cfg.L2Latency,
			Bus: s.Bus, ReadSrc: 3 * i, WBSrc: 3 * i, // icache lines are clean; reads only
			NumMSHRs: 0, SinglePort: cfg.ICacheSinglePort, Ports: 2, Banks: 32,
		})
		dcache := NewCache(net.Module(p+"lsu").Child("dcache"), s.Pulser, CacheParams{
			Name: p + "dcache", Sets: cfg.DCacheSets, Ways: cfg.DCacheWays,
			HitLatency: cfg.CacheHitLatency, L2Latency: cfg.L2Latency,
			Bus: s.Bus, ReadSrc: 3*i + 1, WBSrc: 3*i + 2,
			NumMSHRs: cfg.NumMSHRs, LineBuffers: cfg.LineBuffers, Ports: 2, Banks: 64,
		})
		exec := NewExecUnits(net.Module(p+"exe"), s.Pulser, &cfg)

		var bulk Bulk
		for _, a := range arrays {
			arr := NewBulkArray(net.Module(p+a.Component).Child(a.Name), s.Pulser, a.Entries, a.Fanin, a.Width)
			switch a.Role {
			case RoleROB:
				bulk.ROB = arr
			case RoleFetchBuf:
				bulk.FetchBuf = arr
			case RoleIssueQ:
				bulk.IssueQ = arr
			case RoleRegFile:
				bulk.RegFile = arr
			case RoleBTB:
				bulk.BTB = arr
			}
		}
		for _, f := range filters {
			mod := net.Module(p + f.Component).Child("cfg")
			if f.Const > 0 {
				NewConstBank(mod, f.Const, f.Fanin)
			}
			if f.NoValid > 0 {
				NewNoValidBank(net.Module(p+f.Component).Child("route"), f.NoValid, f.Fanin)
			}
		}

		core := NewCore(cfg, CoreParams{
			ID: i, Net: net, Pulser: s.Pulser, Mem: s.Mem, Bus: s.Bus,
			ICache: icache, DCache: dcache, Exec: exec, Bulk: bulk,
		})
		s.Cores = append(s.Cores, core)
	}
	return s
}

// Cycle returns the SoC clock.
func (s *SoC) Cycle() int64 { return s.cycle }

// Step advances the whole system one cycle: scheduled request pulses fire,
// every core steps, and the netlist clock advances.
func (s *SoC) Step() {
	s.Pulser.Drain(s.cycle)
	for _, c := range s.Cores {
		c.Step()
	}
	s.Net.Step()
	s.cycle++
}

// Halted reports whether every core has halted.
func (s *SoC) Halted() bool {
	for _, c := range s.Cores {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// Run steps until every core halts or the configuration cycle cap is hit.
// It returns the cycle count consumed.
func (s *SoC) Run() int64 {
	start := s.cycle
	max := s.Cores[0].Cfg.MaxCycles
	for !s.Halted() && s.cycle-start < max {
		s.Step()
	}
	return s.cycle - start
}

// RunProgram resets the system, loads the program on core 0, and runs to
// completion. Other cores idle (halted with empty programs). The returned
// log is private to this call: it stays valid across later RunProgram calls.
func (s *SoC) RunProgram(p *isa.Program) []CommitRecord {
	s.Reset()
	// Core.Reset retains the commit-log buffer; detach it so the returned
	// slice is not clobbered by the next run.
	s.Cores[0].CommitLog = nil
	s.Cores[0].LoadProgram(p)
	for _, c := range s.Cores[1:] {
		c.halted = true
	}
	s.Run()
	return s.Cores[0].CommitLog
}

// Reset returns every component to its post-elaboration state. Memory
// contents are dropped; the privileged range is kept. The netlist clock
// rewinds so runs are cycle-for-cycle reproducible.
func (s *SoC) Reset() {
	s.cycle = 0
	s.Pulser.Reset()
	s.Mem.Reset()
	s.Bus.Reset()
	for _, c := range s.Cores {
		c.Reset()
		c.ICache.Reset()
		c.DCache.Reset()
		c.Exec.Reset()
	}
	s.Net.SetCycle(0)
}
