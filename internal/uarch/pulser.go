package uarch

import "sonar/internal/hdl"

// pulse is one scheduled request-port activation: data is driven, then the
// valid signal is raised and lowered, producing a rising edge at exactly the
// scheduled cycle.
type pulse struct {
	valid *hdl.Signal
	data  *hdl.Signal // may be nil
	val   uint64
}

// Pulser schedules netlist request pulses for future cycles. The behavioural
// models compute multi-cycle transactions (cache misses, bus transfers)
// eagerly, but the monitor must observe each request at the cycle it
// actually arrives at its contention point; the Pulser bridges the two by
// replaying scheduled pulses when the simulation reaches their cycle.
type Pulser struct {
	pending map[int64][]pulse
	// free recycles drained pulse slices so steady-state scheduling
	// allocates nothing once the schedule shape has been seen.
	free [][]pulse
	// drained is the most recent cycle Drain ran for; pulses scheduled at
	// or before it fire immediately (the core is mid-cycle).
	drained int64
}

// NewPulser creates an empty scheduler.
func NewPulser() *Pulser {
	return &Pulser{pending: make(map[int64][]pulse), drained: -1}
}

// At schedules a request pulse (valid rising edge, with data driven first)
// for the given cycle. A pulse scheduled for the current or an already
// drained cycle fires immediately.
func (p *Pulser) At(cycle int64, valid, data *hdl.Signal, val uint64) {
	if cycle <= p.drained {
		fire(pulse{valid: valid, data: data, val: val})
		return
	}
	lst, ok := p.pending[cycle]
	if !ok && len(p.free) > 0 {
		lst = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
	}
	p.pending[cycle] = append(lst, pulse{valid: valid, data: data, val: val})
}

// Drain fires all pulses scheduled for cycles up to and including the given
// cycle. The runner calls it once per cycle before stepping the cores.
// Drained slices go onto the free list for reuse by At; firing a pulse never
// schedules another one (watch hooks do not call back into the Pulser), so
// recycling here is safe.
func (p *Pulser) Drain(cycle int64) {
	for c := p.drained + 1; c <= cycle; c++ {
		pulses, ok := p.pending[c]
		if !ok {
			continue
		}
		delete(p.pending, c)
		for _, pl := range pulses {
			fire(pl)
		}
		p.free = append(p.free, pulses[:0])
	}
	p.drained = cycle
}

func fire(pl pulse) {
	if pl.data != nil {
		pl.data.Set(pl.val)
	}
	pl.valid.Set(1)
	pl.valid.Set(0)
}

// Reset drops all scheduled pulses and rewinds the drain clock. The map and
// the dropped slices are kept for reuse.
func (p *Pulser) Reset() {
	for c, lst := range p.pending { //sonar:nondeterministic-ok buffer recycling; free-list order has no semantic effect
		p.free = append(p.free, lst[:0])
		delete(p.pending, c)
	}
	p.drained = -1
}

// PendingCycles returns the number of future cycles with scheduled pulses.
func (p *Pulser) PendingCycles() int { return len(p.pending) }
