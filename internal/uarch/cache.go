package uarch

import "sonar/internal/hdl"

// cacheLine is one way of one set.
type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	// fillReady is the cycle the line's data actually arrives; hits before
	// then wait for the in-flight refill (secondary-miss merging).
	fillReady int64
	lastUse   int64
}

// mshr is a miss-status holding register tracking one outstanding miss.
type mshr struct {
	set     int
	tag     uint64
	readyAt int64 // cycle the refill completes; busy while now < readyAt
}

func (m *mshr) busyAt(now int64) bool { return m.readyAt > now }

// lineBuffer is a single-ported staging buffer between the cache and the
// bus. Two same-cycle accesses serialize, delaying one by a cycle — side
// channels S6 (read) and S7 (write).
type lineBuffer struct {
	nextFree int64
	pulser   *Pulser
	valids   []*hdl.Signal
	bits     []*hdl.Signal
}

func newLineBuffer(mod *hdl.Module, pulser *Pulser, name string, ports int) *lineBuffer {
	lb := &lineBuffer{pulser: pulser}
	inputs := make([]*hdl.Signal, ports)
	for i := range inputs {
		lb.valids = append(lb.valids, mod.Wire(portName(name, i)+"_valid", 1))
		b := mod.Wire(portName(name, i)+"_bits_addr", 64)
		lb.bits = append(lb.bits, b)
		inputs[i] = b
	}
	if ports >= 2 {
		sels := make([]*hdl.Signal, ports-1)
		for i := range sels {
			sels[i] = mod.Wire(name+"_grant_"+digits(i), 1)
		}
		mod.MuxTree(name+"_data", sels, inputs)
	}
	return lb
}

// access requests the buffer at cycle `at` through the given port and
// returns the cycle the access is serviced.
func (lb *lineBuffer) access(port int, addr uint64, at int64) int64 {
	lb.pulser.At(at, lb.valids[port], lb.bits[port], addr)
	t := at
	if t < lb.nextFree {
		t = lb.nextFree
	}
	lb.nextFree = t + 1
	return t
}

func (lb *lineBuffer) reset() { lb.nextFree = 0 }

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	// Ready is the cycle the data is available (loads) or the access has
	// completed its cache effects (stores).
	Ready int64
	// Hit reports an L1 tag hit.
	Hit bool
	// BlockedByMSHR reports the S5 false-sharing path blocking: the miss
	// had to wait for an in-flight MSHR with the same set index but a
	// different tag, even though MSHRs were available.
	BlockedByMSHR bool
	// Evicted reports that the refill evicted a valid line.
	Evicted bool
	// EvictedDirty reports that the victim needed a writeback.
	EvictedDirty bool
	// EvictedAddr is the line address of the victim.
	EvictedAddr uint64
}

// Cache is an L1 cache (instruction or data) with MSHRs, optional line
// buffers, and an optional shared single port (NutShell ICache, S14). Tags
// update at access time; data arrival is tracked per line via fillReady, so
// a younger instruction's miss lets an older same-line access hit but not
// before the data actually arrives.
type Cache struct {
	name    string
	sets    int
	ways    int
	hitLat  int
	l2Lat   int
	lines   []cacheLine // sets*ways, row-major
	mshrs   []mshr
	bus     *DChannel
	readSrc int // D-channel source index for refill reads
	wbSrc   int // D-channel source index for writebacks
	pulser  *Pulser

	singlePort bool
	// portResv holds future cycles reserved by refill writes on the single
	// shared port; fetch reads landing on them are delayed (S14).
	portResv map[int64]bool

	readLB  *lineBuffer // nil unless Config.LineBuffers
	writeLB *lineBuffer

	// Netlist request ports: one per access port (0 = load/fetch,
	// 1 = store/refill-write).
	portValid []*hdl.Signal
	portAddr  []*hdl.Signal
	// Per-bank arbitration points between the pipe access port and the
	// refill-write port. A pipe access landing on the same bank in the
	// same cycle as a refill write is a strict-timing volatile contention —
	// the class of contention interval-guided fuzzing is built to reach.
	bankPipeValid, bankPipeAddr     []*hdl.Signal
	bankRefillValid, bankRefillAddr []*hdl.Signal
	// MSHR allocation point: pri vs sec requests.
	mshrPriValid, mshrPriAddr *hdl.Signal
	mshrSecValid, mshrSecAddr *hdl.Signal

	// Stats for reports.
	Hits, Misses, Writebacks, SecAttaches, FalseSharingBlocks int
}

// CacheParams configures NewCache.
type CacheParams struct {
	Name        string    // component name used for signal prefixes
	Sets, Ways  int       // geometry: number of sets and ways
	HitLatency  int       // cycles for a hit to return data
	L2Latency   int       // cycles for a miss to refill from L2
	Bus         *DChannel // shared D-channel misses and writebacks ride on
	ReadSrc     int       // D-channel source id for refill reads
	WBSrc       int       // D-channel source id for writebacks
	NumMSHRs    int       // miss-status holding registers (0 = blocking)
	LineBuffers bool      // elaborate line-fill buffer contention points
	SinglePort  bool      // single-ported data array (port contention)
	Ports       int       // number of access ports to elaborate (>= 2 for a point)
	Banks       int       // data-array banks (0 disables banked points)
}

// NewCache elaborates a cache under mod and returns its model.
func NewCache(mod *hdl.Module, pulser *Pulser, p CacheParams) *Cache {
	c := &Cache{
		name:       p.Name,
		sets:       p.Sets,
		ways:       p.Ways,
		hitLat:     p.HitLatency,
		l2Lat:      p.L2Latency,
		lines:      make([]cacheLine, p.Sets*p.Ways),
		mshrs:      make([]mshr, p.NumMSHRs),
		bus:        p.Bus,
		readSrc:    p.ReadSrc,
		wbSrc:      p.WBSrc,
		pulser:     pulser,
		singlePort: p.SinglePort,
		portResv:   make(map[int64]bool),
	}
	ports := p.Ports
	if ports < 2 {
		ports = 2
	}
	inputs := make([]*hdl.Signal, ports)
	for i := 0; i < ports; i++ {
		c.portValid = append(c.portValid, mod.Wire(portName("io_port", i)+"_valid", 1))
		a := mod.Wire(portName("io_port", i)+"_bits_addr", 64)
		c.portAddr = append(c.portAddr, a)
		inputs[i] = a
	}
	sels := make([]*hdl.Signal, ports-1)
	for i := range sels {
		sels[i] = mod.Wire("port_grant_"+digits(i), 1)
	}
	mod.MuxTree("array_access", sels, inputs)

	if p.NumMSHRs > 0 {
		c.mshrPriValid = mod.Wire("io_mshr_pri_valid", 1)
		c.mshrPriAddr = mod.Wire("io_mshr_pri_bits_addr", 64)
		c.mshrSecValid = mod.Wire("io_mshr_sec_valid", 1)
		c.mshrSecAddr = mod.Wire("io_mshr_sec_bits_addr", 64)
		sel := mod.Wire("mshr_mode_sel", 1)
		mod.Mux("mshr_req", sel, c.mshrPriAddr, c.mshrSecAddr)
	}
	if p.LineBuffers {
		lbPorts := p.NumMSHRs
		if lbPorts < 2 {
			lbPorts = 2
		}
		// One extra read-LB port serves pipeline reads of in-flight refill
		// data (hit-under-fill): those reads contend with refill writes,
		// the simultaneous-access scenario of side channel S6.
		c.readLB = newLineBuffer(mod.Child("rlb"), pulser, "io_refill", lbPorts+1)
		c.writeLB = newLineBuffer(mod.Child("wlb"), pulser, "io_evict", lbPorts)
	}
	for b := 0; b < p.Banks; b++ {
		bank := mod.Child("bank" + digits(b))
		pv := bank.Wire("io_pipe_valid", 1)
		pa := bank.Wire("io_pipe_bits_addr", 64)
		rv := bank.Wire("io_fill_valid", 1)
		ra := bank.Wire("io_fill_bits_addr", 64)
		sel := bank.Wire("gnt_pipe", 1)
		bank.MuxInto(bank.Wire("rdata", 64), sel, pa, ra)
		c.bankPipeValid = append(c.bankPipeValid, pv)
		c.bankPipeAddr = append(c.bankPipeAddr, pa)
		c.bankRefillValid = append(c.bankRefillValid, rv)
		c.bankRefillAddr = append(c.bankRefillAddr, ra)
	}
	return c
}

// bankOf maps an address to a data-array bank (line-granular interleaving,
// so pipe accesses and refill writes of the same line meet at one bank).
func (c *Cache) bankOf(addr uint64) int {
	return int(addr/LineBytes) % len(c.bankPipeValid)
}

// Reset invalidates all lines and MSHRs between program runs.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	clear(c.portResv)
	if c.readLB != nil {
		c.readLB.reset()
	}
	if c.writeLB != nil {
		c.writeLB.reset()
	}
	c.Hits, c.Misses, c.Writebacks, c.SecAttaches, c.FalseSharingBlocks = 0, 0, 0, 0, 0
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr / LineBytes }
func (c *Cache) setOf(addr uint64) int       { return int(c.lineAddr(addr)) % c.sets }
func (c *Cache) tagOf(addr uint64) uint64    { return c.lineAddr(addr) / uint64(c.sets) }

func (c *Cache) way(set, w int) *cacheLine { return &c.lines[set*c.ways+w] }

// Contains reports whether the line holding addr is present (for tests and
// attack PoCs that prime cache state).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.setOf(addr), c.tagOf(addr)
	for w := 0; w < c.ways; w++ {
		l := c.way(set, w)
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a cache access through the given port at cycle now.
// write marks the line dirty (stores; also store-conditional regardless of
// success — side channel S10).
func (c *Cache) Access(port int, addr uint64, write bool, now int64) AccessResult {
	c.pulser.At(now, c.portValid[port], c.portAddr[port], addr)
	if len(c.bankPipeValid) > 0 {
		b := c.bankOf(addr)
		c.pulser.At(now, c.bankPipeValid[b], c.bankPipeAddr[b], addr)
	}
	if c.singlePort {
		for c.portResv[now] {
			now++ // port occupied by a refill write this cycle (S14)
		}
	}
	set, tag := c.setOf(addr), c.tagOf(addr)
	for w := 0; w < c.ways; w++ {
		l := c.way(set, w)
		if l.valid && l.tag == tag {
			c.Hits++
			l.lastUse = now
			if write {
				l.dirty = true
			}
			ready := now + int64(c.hitLat)
			if l.fillReady > ready {
				ready = l.fillReady // wait for the in-flight refill
				if c.readLB != nil {
					// Hit-under-fill: the data is read from the read line
					// buffer, through its single port (S6).
					t := c.readLB.access(len(c.readLB.valids)-1, addr, l.fillReady-int64(c.hitLat))
					if t+int64(c.hitLat) > ready {
						ready = t + int64(c.hitLat)
					}
				}
			}
			return AccessResult{Ready: ready, Hit: true}
		}
	}
	return c.miss(addr, set, tag, write, now)
}

func (c *Cache) miss(addr uint64, set int, tag uint64, write bool, now int64) AccessResult {
	c.Misses++
	res := AccessResult{}
	start := now

	// MSHR handling (paper §8.4.B). A second miss to the same set first
	// attempts sec mode; reuse succeeds only when the tag also matches.
	if len(c.mshrs) > 0 {
		for i := range c.mshrs {
			m := &c.mshrs[i]
			if !m.busyAt(now) || m.set != set {
				continue
			}
			c.pulser.At(now, c.mshrSecValid, c.mshrSecAddr, addr)
			if m.tag == tag {
				// Should not happen: a tag match would have hit above via
				// fillReady. Kept for robustness.
				c.SecAttaches++
				return AccessResult{Ready: m.readyAt + int64(c.hitLat), Hit: false}
			}
			// Same set index, different tag: sec reuse fails and the new
			// request must wait for the in-flight MSHR even if others are
			// free — false sharing path blocking (S5).
			c.FalseSharingBlocks++
			res.BlockedByMSHR = true
			start = m.readyAt
			break
		}
		// Allocate in pri mode at start (possibly delayed further if all
		// MSHRs are busy then).
		mi := -1
		var earliest int64 = 1 << 62
		for i := range c.mshrs {
			if !c.mshrs[i].busyAt(start) {
				mi = i
				break
			}
			if c.mshrs[i].readyAt < earliest {
				earliest = c.mshrs[i].readyAt
			}
		}
		if mi == -1 {
			start = earliest
			for i := range c.mshrs {
				if !c.mshrs[i].busyAt(start) {
					mi = i
					break
				}
			}
		}
		c.pulser.At(start, c.mshrPriValid, c.mshrPriAddr, addr)
		done := c.refill(addr, set, tag, write, start, mi, &res)
		c.mshrs[mi] = mshr{set: set, tag: tag, readyAt: done}
		res.Ready = done
		return res
	}
	// No MSHRs (blocking cache): refill directly.
	res.Ready = c.refill(addr, set, tag, write, start, 0, &res)
	return res
}

// refill fetches the line over the D-channel, stages it through the read
// line buffer, evicts a victim (through the write line buffer and a
// writeback transfer if dirty), and installs the new line. It returns the
// cycle the data is available.
func (c *Cache) refill(addr uint64, set int, tag uint64, write bool, start int64, lbPort int, res *AccessResult) int64 {
	done := c.bus.RequestRead(c.readSrc, c.lineAddr(addr), start+int64(c.l2Lat))
	if c.readLB != nil {
		done = c.readLB.access(lbPort, addr, done) + 1
	}
	// Victim selection: invalid way, else LRU.
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.way(set, w).valid {
			victim = w
			break
		}
	}
	if victim == -1 {
		victim = 0
		for w := 1; w < c.ways; w++ {
			if c.way(set, w).lastUse < c.way(set, victim).lastUse {
				victim = w
			}
		}
		v := c.way(set, victim)
		res.Evicted = true
		res.EvictedAddr = (v.tag*uint64(c.sets) + uint64(set)) * LineBytes
		if v.dirty {
			res.EvictedDirty = true
			c.Writebacks++
			wbAt := done
			if c.writeLB != nil {
				wbAt = c.writeLB.access(lbPort, res.EvictedAddr, done) + 1
			}
			c.bus.RequestWrite(c.wbSrc, res.EvictedAddr/LineBytes, wbAt)
			// The dirty victim must drain into the write line buffer before
			// the refill data can be written into its way, so the evicting
			// access pays for the writeback (side channel S10).
			done = wbAt + 1
		}
	}
	if c.singlePort {
		// The refill write streams the line into the array, occupying the
		// shared port for several cycles (S14).
		for i := int64(0); i < 4; i++ {
			c.portResv[done+i] = true
		}
		c.pulser.At(done, c.portValid[len(c.portValid)-1], c.portAddr[len(c.portAddr)-1], addr)
	}
	if len(c.bankPipeValid) > 0 {
		b := c.bankOf(addr)
		c.pulser.At(done, c.bankRefillValid[b], c.bankRefillAddr[b], addr)
	}
	*c.way(set, victim) = cacheLine{tag: tag, valid: true, dirty: write, fillReady: done, lastUse: done}
	return done + int64(c.hitLat)
}

func portName(base string, i int) string { return base + "_" + digits(i) }

func digits(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
