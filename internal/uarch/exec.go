package uarch

import (
	"math/bits"

	"sonar/internal/hdl"
)

// divLatency computes the iterative divider latency for a dividend.
func divLatency(cfg *Config, dividend uint64) int64 {
	return int64(cfg.DivLatencyBase + cfg.DivLatencyPerBit*bits.Len64(dividend))
}

// ExecUnits models the integer execution complex: per-ALU single-cycle
// units, a multiplier (pipelined in BOOM, folded into the shared MDU in
// NutShell), an iterative non-pipelined divider, and the shared writeback
// response port (side channel S8: alu > imul > div priority).
type ExecUnits struct {
	cfg    *Config
	pulser *Pulser

	// divBusyUntil is the cycle the non-pipelined divider frees (S9, S13).
	divBusyUntil int64
	// mduBusyUntil is the cycle the shared multiply-divide unit frees
	// (NutShell S13).
	mduBusyUntil int64
	// mulInFlight counts multiplier pipeline occupancy per cycle.
	mulIssued map[int64]int

	// Netlist: divider entry point (two issue slots can race for it).
	divReqValid []*hdl.Signal
	divReqBits  []*hdl.Signal
	// MDU entry point (mul vs div requests).
	mduMulValid, mduMulBits *hdl.Signal
	mduDivValid, mduDivBits *hdl.Signal
	// Shared writeback response port requests (S8).
	wbAluValid, wbAluBits *hdl.Signal
	wbMulValid, wbMulBits *hdl.Signal
	wbDivValid, wbDivBits *hdl.Signal
	// wbTaken tracks response-port occupancy per cycle.
	wbTaken map[int64]bool
}

// NewExecUnits elaborates the execution complex under mod.
func NewExecUnits(mod *hdl.Module, pulser *Pulser, cfg *Config) *ExecUnits {
	e := &ExecUnits{
		cfg:       cfg,
		pulser:    pulser,
		mulIssued: make(map[int64]int),
		wbTaken:   make(map[int64]bool),
	}
	div := mod.Child("div")
	inputs := make([]*hdl.Signal, 2)
	for i := 0; i < 2; i++ {
		e.divReqValid = append(e.divReqValid, div.Wire(portName("io_req", i)+"_valid", 1))
		b := div.Wire(portName("io_req", i)+"_bits_op", 64)
		e.divReqBits = append(e.divReqBits, b)
		inputs[i] = b
	}
	sel := div.Wire("req_sel", 1)
	div.MuxInto(div.Wire("req_in", 64), sel, inputs[0], inputs[1])

	if !cfg.PipelinedMul {
		mdu := mod.Child("mdu")
		e.mduMulValid = mdu.Wire("io_mul_valid", 1)
		e.mduMulBits = mdu.Wire("io_mul_bits_op", 64)
		e.mduDivValid = mdu.Wire("io_div_valid", 1)
		e.mduDivBits = mdu.Wire("io_div_bits_op", 64)
		msel := mdu.Wire("op_sel", 1)
		mdu.MuxInto(mdu.Wire("op_in", 64), msel, e.mduMulBits, e.mduDivBits)
	}
	if cfg.SharedWBPort {
		wb := mod.Child("wb")
		e.wbAluValid = wb.Wire("io_alu_valid", 1)
		e.wbAluBits = wb.Wire("io_alu_bits_data", 64)
		e.wbMulValid = wb.Wire("io_imul_valid", 1)
		e.wbMulBits = wb.Wire("io_imul_bits_data", 64)
		e.wbDivValid = wb.Wire("io_div_valid", 1)
		e.wbDivBits = wb.Wire("io_div_bits_data", 64)
		s0 := wb.Wire("sel_alu", 1)
		s1 := wb.Wire("sel_imul", 1)
		wb.MuxTree("resp_data", []*hdl.Signal{s0, s1},
			[]*hdl.Signal{e.wbAluBits, e.wbMulBits, e.wbDivBits})
	}
	return e
}

// Reset clears unit occupancy between program runs. The occupancy maps are
// cleared in place so their buckets are reused across runs.
func (e *ExecUnits) Reset() {
	e.divBusyUntil = 0
	e.mduBusyUntil = 0
	clear(e.mulIssued)
	clear(e.wbTaken)
}

// wbClass identifies the requester class at the shared response port.
type wbClass int

const (
	wbALU wbClass = iota
	wbMul
	wbDiv
)

// respPort grants the shared writeback response port: the result computed
// at cycle done writes back at the first free cycle >= done. Requests are
// pulsed at done; priority between same-cycle requesters follows the order
// the issue logic resolves them (alu first — S8).
func (e *ExecUnits) respPort(class wbClass, result uint64, done int64) int64 {
	if !e.cfg.SharedWBPort {
		return done
	}
	switch class {
	case wbALU:
		e.pulser.At(done, e.wbAluValid, e.wbAluBits, result)
	case wbMul:
		e.pulser.At(done, e.wbMulValid, e.wbMulBits, result)
	case wbDiv:
		e.pulser.At(done, e.wbDivValid, e.wbDivBits, result)
	}
	t := done
	for e.wbTaken[t] {
		t++
	}
	e.wbTaken[t] = true
	return t
}

// IssueMul starts a multiply whose operands resolved at cycle now. It
// returns the writeback cycle.
func (e *ExecUnits) IssueMul(op uint64, now int64) int64 {
	if e.cfg.PipelinedMul {
		// One new multiply may enter the pipeline per cycle.
		t := now
		for e.mulIssued[t] > 0 {
			t++
		}
		e.mulIssued[t]++
		done := t + int64(e.cfg.MulLatency)
		return e.respPort(wbMul, op, done)
	}
	// Shared non-pipelined MDU (S13).
	e.pulser.At(now, e.mduMulValid, e.mduMulBits, op)
	start := now
	if start < e.mduBusyUntil {
		start = e.mduBusyUntil
	}
	done := start + int64(e.cfg.MulLatency)
	e.mduBusyUntil = done
	return done
}

// MulBusyAt reports whether the MDU is occupied at a cycle (always false
// for a pipelined multiplier).
func (e *ExecUnits) MulBusyAt(now int64) bool {
	return !e.cfg.PipelinedMul && now < e.mduBusyUntil
}

// DivBusyAt reports whether the divider (or MDU) is occupied at a cycle.
func (e *ExecUnits) DivBusyAt(now int64) bool {
	if e.cfg.PipelinedMul {
		return now < e.divBusyUntil
	}
	return now < e.mduBusyUntil
}

// IssueDiv starts a divide whose operands resolved at cycle now, pulsing
// the divider entry request for the given issue slot. It returns the
// writeback cycle. The divider is non-pipelined: a younger divide that
// enters first blocks an older one (S9).
func (e *ExecUnits) IssueDiv(slot int, dividend uint64, now int64) int64 {
	if slot > 1 {
		slot = 1
	}
	e.pulser.At(now, e.divReqValid[slot], e.divReqBits[slot], dividend)
	if !e.cfg.PipelinedMul {
		// NutShell: divide shares the MDU with multiply (S13).
		e.pulser.At(now, e.mduDivValid, e.mduDivBits, dividend)
		start := now
		if start < e.mduBusyUntil {
			start = e.mduBusyUntil
		}
		done := start + divLatency(e.cfg, dividend)
		e.mduBusyUntil = done
		return done
	}
	start := now
	if start < e.divBusyUntil {
		start = e.divBusyUntil
	}
	done := start + divLatency(e.cfg, dividend)
	e.divBusyUntil = done
	return e.respPort(wbDiv, dividend, done)
}

// ALUWriteback routes a single-cycle ALU result through the shared response
// port when the op executed on the port-sharing ALU (the last one).
func (e *ExecUnits) ALUWriteback(sharedALU bool, result uint64, done int64) int64 {
	if !sharedALU || !e.cfg.SharedWBPort {
		return done
	}
	return e.respPort(wbALU, result, done)
}
