package uarch

import "sonar/internal/hdl"

// BulkArray elaborates the repetitive structural selection logic real RTL is
// full of: per-entry write selects for the ROB, fetch buffer, issue queues,
// register file, and predictor tables. Each entry is an n:1 MUX tree over
// write ports with per-port valid/data request signals. These points give
// the netlist realistic contention-point counts and distribution (paper
// Figures 6 and 7); the core drives their valids from dispatch/writeback
// activity, producing the early cluster-triggered contentions the paper
// observes (§8.3.2 observation ① and ②).
type BulkArray struct {
	pulser *Pulser
	valids [][]*hdl.Signal // [entry][port]
	datas  [][]*hdl.Signal
}

// NewBulkArray elaborates `entries` points each selecting among `fanin`
// write ports of the given data width.
func NewBulkArray(mod *hdl.Module, pulser *Pulser, entries, fanin, width int) *BulkArray {
	b := &BulkArray{pulser: pulser}
	for e := 0; e < entries; e++ {
		ent := mod.Child("e" + digits(e))
		valids := make([]*hdl.Signal, fanin)
		datas := make([]*hdl.Signal, fanin)
		// The final tree input is the entry's hold path — the ubiquitous
		// `entry := mux(wen, wdata, entry)` RTL pattern. It carries no
		// validity indication, so per Algorithm 1 it is constantly valid;
		// any write-port arrival is therefore a zero-interval contention
		// (the paper's early-cluster observation, §8.3.2 ①).
		inputs := make([]*hdl.Signal, fanin+1)
		for p := 0; p < fanin; p++ {
			valids[p] = ent.Wire(portName("io_w", p)+"_valid", 1)
			datas[p] = ent.Wire(portName("io_w", p)+"_bits_data", width)
			inputs[p] = datas[p]
		}
		inputs[fanin] = ent.Wire("state_hold", width)
		sels := make([]*hdl.Signal, fanin)
		for i := range sels {
			sels[i] = ent.Wire("wsel_"+digits(i), 1)
		}
		ent.MuxTree("wdata", sels, inputs)
		b.valids = append(b.valids, valids)
		b.datas = append(b.datas, datas)
	}
	return b
}

// Entries returns the number of array entries.
func (b *BulkArray) Entries() int { return len(b.valids) }

// Touch schedules a write-request pulse on entry/port at the given cycle.
func (b *BulkArray) Touch(entry, port int, data uint64, at int64) {
	if len(b.valids) == 0 {
		return
	}
	entry %= len(b.valids)
	port %= len(b.valids[entry])
	b.pulser.At(at, b.valids[entry][port], b.datas[entry][port], data)
}

// NewConstBank elaborates n contention points whose requests are constants —
// configuration selects and tied-off datapaths. They are identified by
// bottom-up tracing but filtered out by the §5.2 risk filter (the paper
// measures ~31% of traced points fall in this class).
func NewConstBank(mod *hdl.Module, n, fanin int) {
	for i := 0; i < n; i++ {
		ent := mod.Child("k" + digits(i))
		inputs := make([]*hdl.Signal, fanin)
		for p := 0; p < fanin; p++ {
			inputs[p] = ent.Const("tie_"+digits(p), 8, uint64(p))
		}
		sels := make([]*hdl.Signal, fanin-1)
		for s := range sels {
			sels[s] = ent.Wire("cfg_sel_"+digits(s), 1)
		}
		ent.MuxTree("cfg_out", sels, inputs)
	}
}

// NewNoValidBank elaborates n contention points whose requests carry no
// validity indication at all: per Algorithm 1 they are constantly valid,
// reqsIntvl is the constant 0, and the §5.2 filter drops them.
func NewNoValidBank(mod *hdl.Module, n, fanin int) {
	for i := 0; i < n; i++ {
		ent := mod.Child("p" + digits(i))
		inputs := make([]*hdl.Signal, fanin)
		for p := 0; p < fanin; p++ {
			inputs[p] = ent.Wire("path_"+digits(p), 16)
		}
		sels := make([]*hdl.Signal, fanin-1)
		for s := range sels {
			sels[s] = ent.Wire("route_sel_"+digits(s), 1)
		}
		ent.MuxTree("route_out", sels, inputs)
	}
}
