package uarch

import (
	"sonar/internal/hdl"
	"sonar/internal/isa"
)

// WindowObserver is notified when the secret-dependent monitoring window
// opens and closes (paper §6.1). *monitor.Monitor satisfies it.
type WindowObserver interface {
	SetWindow(open bool)
}

// CommitRecord is one committed instruction with its commit cycle — the raw
// material of the commit-cycle-difference analysis (paper §7.1).
type CommitRecord struct {
	// Idx is the static program index (-1 for instructions outside the
	// loaded program, e.g. decode padding).
	Idx int
	// PC is the instruction address.
	PC uint64
	// Cycle is the commit cycle.
	Cycle int64
	// Instr is the committed instruction.
	Instr isa.Instr
	// Exception marks a faulting commit.
	Exception bool
}

// rob entry states.
const (
	stWaiting = iota
	stIssued
)

type robEntry struct {
	active    bool
	seq       int64
	idx       int
	pc        uint64
	ins       isa.Instr
	state     uint8
	result    uint64
	doneAt    int64 // result available at the end of this cycle
	exception bool
	// earlyFlushed marks a fault already handled by early detection
	// (NutShell): commit must not flush again.
	earlyFlushed bool
	secretDep    bool
}

type prodRef struct {
	pos int
	seq int64
}

type fetchGroup struct {
	instrs  []fetchedInstr
	availAt int64
}

type fetchedInstr struct {
	pc  uint64
	idx int
	ins isa.Instr
}

// Bulk bundles the structural arrays a core drives from pipeline activity.
// Any field may be nil.
type Bulk struct {
	ROB      *BulkArray // reorder buffer occupancy
	FetchBuf *BulkArray // fetch buffer occupancy
	IssueQ   *BulkArray // issue queue occupancy
	RegFile  *BulkArray // physical register file write ports
	BTB      *BulkArray // branch target buffer update ports
}

// Core is the cycle-accurate out-of-order core engine. It fetches through
// the L1 ICache, dispatches in order into the ROB, issues out of order to
// the execution units and the L1 DCache, and commits in order. Exceptions
// are detected at execute and handled lazily at commit (BOOM) or eagerly at
// detection (NutShell, Config.EarlyExceptionDetect), which controls the
// transient window Meltdown-style templates rely on (§7.3, §8.5).
type Core struct {
	Cfg    Config // elaboration-time configuration, immutable after NewCore
	ID     int    // core index within the SoC
	net    *hdl.Netlist
	pulser *Pulser
	mem    *Memory
	bus    *DChannel
	ICache *Cache     // private L1 instruction cache
	DCache *Cache     // private L1 data cache
	Exec   *ExecUnits // shared or private execution units
	bulk   Bulk

	prog        *isa.Program
	secretStart int
	secretEnd   int
	handlerAddr uint64

	cycle    int64
	pc       uint64
	regs     [32]uint64
	rob      []robEntry
	robHead  int
	robTail  int
	robCount int
	seqNext  int64
	lastProd [32]prodRef

	// fetchBuf is a head-indexed queue: entries [fbHead:] are live. Dispatch
	// consumes by advancing fbHead so the backing array keeps its capacity;
	// fetch compacts to [:0] whenever the queue drains.
	fetchBuf   []fetchedInstr
	fbHead     int
	pending    fetchGroup // in-flight fetch group, valid when hasPending
	hasPending bool

	// imgBuf is the scratch buffer LoadProgram renders program images into.
	imgBuf []byte

	redirectValid bool
	redirectPC    uint64
	redirectAt    int64

	ldqCount, stqCount int
	halted             bool
	secretInROB        int
	window             WindowObserver

	// CommitLog records every committed instruction in order.
	CommitLog []CommitRecord

	perf PerfCounters
}

// CoreParams bundles the shared SoC pieces a core plugs into.
type CoreParams struct {
	ID     int          // core index within the SoC
	Net    *hdl.Netlist // netlist the core's signals live in
	Pulser *Pulser      // contention pulser shared across cores
	Mem    *Memory      // backing memory model
	Bus    *DChannel    // shared TileLink D-channel
	ICache *Cache       // this core's L1 instruction cache
	DCache *Cache       // this core's L1 data cache
	Exec   *ExecUnits   // execution units (shared when SMT)
	Bulk   Bulk         // structural arrays driven by this core
}

// NewCore assembles a core from its parts.
func NewCore(cfg Config, p CoreParams) *Core {
	c := &Core{
		Cfg:    cfg,
		ID:     p.ID,
		net:    p.Net,
		pulser: p.Pulser,
		mem:    p.Mem,
		bus:    p.Bus,
		ICache: p.ICache,
		DCache: p.DCache,
		Exec:   p.Exec,
		bulk:   p.Bulk,
		rob:    make([]robEntry, cfg.ROBEntries),
	}
	c.clearProducers()
	return c
}

// SetWindowObserver attaches the monitoring-window sink.
func (c *Core) SetWindowObserver(w WindowObserver) { c.window = w }

// LoadProgram places the program image into memory and points fetch at it.
// The secret-dependent range is cleared; set it with SetSecretRange.
func (c *Core) LoadProgram(p *isa.Program) {
	c.prog = p
	c.imgBuf = p.AppendImage(c.imgBuf[:0])
	c.mem.WriteBytes(p.Base, c.imgBuf)
	c.pc = p.Base
	c.secretStart, c.secretEnd = -1, -1
}

// SetSecretRange marks program indices [start, end) as the secret-dependent
// region for monitoring-window purposes (paper §6.1).
func (c *Core) SetSecretRange(start, end int) {
	c.secretStart, c.secretEnd = start, end
}

// SetHandler sets the exception handler address (0 halts on exception).
func (c *Core) SetHandler(addr uint64) { c.handlerAddr = addr }

// SetReg writes an architectural register directly (test and PoC setup).
func (c *Core) SetReg(r uint8, v uint64) {
	if r != 0 {
		c.regs[r] = v
	}
}

// Reg reads an architectural register.
func (c *Core) Reg(r uint8) uint64 { return c.regs[r] }

// Cycle returns the core's current cycle.
func (c *Core) Cycle() int64 { return c.cycle }

// Halted reports whether the core has committed its terminating ECALL or
// exceeded the cycle cap.
func (c *Core) Halted() bool { return c.halted || c.cycle >= c.Cfg.MaxCycles }

// Reset returns the core to its post-elaboration state. Caches, execution
// units, and the bus are reset by the owning SoC, not here, because they
// may be shared.
//
// The commit log is truncated in place, retaining its capacity: a caller
// that wants to keep the previous run's records (or hand the core a private
// buffer) must swap CommitLog itself before the next run, as DUT.Execute
// and SoC.RunProgram do.
func (c *Core) Reset() {
	c.cycle = 0
	c.pc = 0
	c.regs = [32]uint64{}
	for i := range c.rob {
		c.rob[i] = robEntry{}
	}
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	c.seqNext = 0
	c.clearProducers()
	c.fetchBuf = c.fetchBuf[:0]
	c.fbHead = 0
	c.hasPending = false
	c.redirectValid = false
	c.ldqCount, c.stqCount = 0, 0
	c.halted = false
	c.secretInROB = 0
	c.CommitLog = c.CommitLog[:0]
	c.perf = PerfCounters{}
	c.prog = nil
	c.secretStart, c.secretEnd = -1, -1
	c.handlerAddr = 0
}

func (c *Core) clearProducers() {
	for i := range c.lastProd {
		c.lastProd[i] = prodRef{pos: -1}
	}
}

// Step advances the core by one cycle. The caller drains the shared Pulser
// and steps the netlist clock once per cycle across all cores.
func (c *Core) Step() {
	if c.halted {
		c.cycle++
		return
	}
	c.applyRedirect()
	c.commit()
	c.issue()
	c.dispatch()
	c.fetch()
	c.cycle++
}

func (c *Core) applyRedirect() {
	if c.redirectValid && c.cycle >= c.redirectAt {
		c.pc = c.redirectPC
		c.redirectValid = false
		c.fetchBuf = c.fetchBuf[:0]
		c.fbHead = 0
		c.hasPending = false
	}
}

// ---- commit ----

func (c *Core) commit() {
	for n := 0; n < c.Cfg.CoreWidth && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.state != stIssued || e.doneAt >= c.cycle {
			return
		}
		c.CommitLog = append(c.CommitLog, CommitRecord{
			Idx: e.idx, PC: e.pc, Cycle: c.cycle, Instr: e.ins, Exception: e.exception,
		})
		c.perf.Committed++
		if e.exception {
			c.perf.Exceptions++
		}
		if rd := e.ins.Writes(); rd != 0 && !e.exception {
			c.regs[rd] = e.result
			if c.bulk.RegFile != nil {
				c.bulk.RegFile.Touch(int(rd), n, e.result, c.cycle)
			}
		}
		halt := e.ins.Op == isa.ECALL
		exceptionFlush := e.exception && !e.earlyFlushed
		c.popHead(e)
		if exceptionFlush {
			c.flushAllAfterHead()
			c.redirectToHandler()
			return
		}
		if halt {
			c.halted = true
			return
		}
	}
}

func (c *Core) popHead(e *robEntry) {
	c.releaseEntry(e)
	e.active = false
	c.robHead = (c.robHead + 1) % len(c.rob)
	c.robCount--
}

// releaseEntry updates LSQ and window accounting for an entry leaving the
// ROB by commit or squash.
func (c *Core) releaseEntry(e *robEntry) {
	if e.ins.Op.IsLoad() {
		c.ldqCount--
	}
	if e.ins.Op.IsStore() {
		c.stqCount--
	}
	if e.secretDep {
		c.secretInROB--
		if c.secretInROB == 0 && c.window != nil {
			c.window.SetWindow(false)
		}
	}
}

func (c *Core) redirectToHandler() {
	if c.handlerAddr == 0 {
		c.halted = true
		return
	}
	c.redirectValid = true
	c.redirectPC = c.handlerAddr
	c.redirectAt = c.cycle + 2
}

// flushAllAfterHead squashes every entry remaining in the ROB (called after
// the faulting head has been popped).
func (c *Core) flushAllAfterHead() {
	for c.robCount > 0 {
		e := &c.rob[c.robHead]
		c.perf.Squashed++
		c.releaseEntry(e)
		e.active = false
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
	}
	c.robTail = c.robHead
	c.fetchBuf = c.fetchBuf[:0]
	c.fbHead = 0
	c.hasPending = false
	c.clearProducers()
}

// flushYoungerThan squashes all entries strictly younger than seq and
// rebuilds the producer table.
func (c *Core) flushYoungerThan(seq int64) {
	for c.robCount > 0 {
		tailPos := (c.robTail - 1 + len(c.rob)) % len(c.rob)
		e := &c.rob[tailPos]
		if e.seq <= seq {
			break
		}
		c.perf.Squashed++
		c.releaseEntry(e)
		e.active = false
		c.robTail = tailPos
		c.robCount--
	}
	c.fetchBuf = c.fetchBuf[:0]
	c.fbHead = 0
	c.hasPending = false
	c.rebuildProducers()
}

func (c *Core) rebuildProducers() {
	c.clearProducers()
	for i, pos := 0, c.robHead; i < c.robCount; i++ {
		e := &c.rob[pos]
		if rd := e.ins.Writes(); rd != 0 {
			c.lastProd[rd] = prodRef{pos: pos, seq: e.seq}
		}
		pos = (pos + 1) % len(c.rob)
	}
}

// ---- issue ----

// operand resolves a source register for the entry at ROB position
// consumerPos: ready reports whether the value is available this cycle.
func (c *Core) operand(r uint8, consumerPos int, consumerSeq int64) (val uint64, ready bool) {
	if r == 0 {
		return 0, true
	}
	ref := c.lastProd[r]
	if ref.pos >= 0 {
		p := &c.rob[ref.pos]
		if p.active && p.seq == ref.seq {
			if p.seq < consumerSeq {
				// The newest producer is older than the consumer: it is
				// the forwarding source.
				return producerValue(p, c.cycle)
			}
			// The newest producer is the consumer itself or younger (an
			// instruction reading a register it also writes): scan
			// backwards for the nearest older in-flight producer.
			for i, pos := 0, consumerPos; i < c.robCount; i++ {
				pos = (pos - 1 + len(c.rob)) % len(c.rob)
				e := &c.rob[pos]
				if !e.active || e.seq >= consumerSeq {
					continue
				}
				if e.ins.Writes() == r {
					return producerValue(e, c.cycle)
				}
				if pos == c.robHead {
					break
				}
			}
			// No older in-flight producer: the committed value stands.
		}
	}
	return c.regs[r], true
}

func producerValue(p *robEntry, cycle int64) (uint64, bool) {
	if p.state == stIssued && p.doneAt < cycle {
		return p.result, true
	}
	return 0, false
}

func (c *Core) issueWidth() int { return c.Cfg.NumALUs + 2 }

func (c *Core) issue() {
	issued := 0
	aluUsed := 0
	mulUsed := false
	divUsed := 0
	memUsed := false
	seenUnissuedStore := false
	seenUnissuedMem := false

	for i, pos := 0, c.robHead; i < c.robCount && issued < c.issueWidth(); i++ {
		epos := pos
		e := &c.rob[pos]
		pos = (pos + 1) % len(c.rob)
		if e.state != stWaiting {
			continue
		}
		blockedStore := e.ins.Op.IsLoad() && seenUnissuedStore
		blockedMem := e.ins.Op.IsStore() && seenUnissuedMem
		if e.ins.Op.IsStore() {
			seenUnissuedStore = true
		}
		if e.ins.Op.IsMem() {
			seenUnissuedMem = true
		}
		if blockedStore || blockedMem {
			continue
		}
		var rs1 uint64
		ok1 := true
		if e.ins.Op.HasRs1() {
			rs1, ok1 = c.operand(e.ins.Rs1, epos, e.seq)
		}
		var rs2 uint64
		ok2 := true
		if e.ins.Op.HasRs2() {
			rs2, ok2 = c.operand(e.ins.Rs2, epos, e.seq)
		}
		if !ok1 || !ok2 {
			continue
		}
		if c.tryIssue(e, rs1, rs2, &aluUsed, &mulUsed, &divUsed, &memUsed) {
			issued++
		}
	}
}

// tryIssue attempts to start execution of e with resolved operands; it
// reports whether a unit accepted the instruction this cycle.
func (c *Core) tryIssue(e *robEntry, rs1, rs2 uint64, aluUsed *int, mulUsed *bool, divUsed *int, memUsed *bool) bool {
	op := e.ins.Op
	switch {
	case op.IsALU():
		if *aluUsed >= c.Cfg.NumALUs {
			return false
		}
		shared := *aluUsed == c.Cfg.NumALUs-1 && c.Cfg.NumALUs > 1
		*aluUsed++
		c.perf.IssuedALU++
		e.result = isa.Compute(e.ins, rs1, rs2)
		e.doneAt = c.Exec.ALUWriteback(shared, e.result, c.cycle+1)
	case op.IsMul():
		if *mulUsed {
			return false
		}
		*mulUsed = true
		c.perf.IssuedMul++
		e.result = isa.Compute(e.ins, rs1, rs2)
		e.doneAt = c.Exec.IssueMul(e.result, c.cycle)
	case op.IsDiv():
		if *divUsed >= 2 {
			return false
		}
		c.perf.IssuedDiv++
		e.result = isa.Compute(e.ins, rs1, rs2)
		e.doneAt = c.Exec.IssueDiv(*divUsed, rs1, c.cycle)
		*divUsed++
	case op.IsMem():
		if *memUsed {
			return false
		}
		*memUsed = true
		c.perf.IssuedMem++
		c.issueMem(e, rs1, rs2)
	case op.IsBranch():
		e.result = 0
		e.doneAt = c.cycle + 1
		taken := (op == isa.BEQ && rs1 == rs2) || (op == isa.BNE && rs1 != rs2)
		if taken {
			e.state = stIssued
			c.perf.BranchFlushes++
			c.flushYoungerThan(e.seq)
			c.redirectValid = true
			c.redirectPC = e.pc + uint64(e.ins.Imm)
			c.redirectAt = e.doneAt + 1
			return true
		}
	case op.IsJump():
		e.result = e.pc + 4
		e.doneAt = c.cycle + 1
		e.state = stIssued
		c.perf.BranchFlushes++
		c.flushYoungerThan(e.seq)
		c.redirectValid = true
		c.redirectPC = e.pc + uint64(e.ins.Imm)
		c.redirectAt = e.doneAt + 1
		return true
	case op == isa.RDCYCLE:
		e.result = uint64(c.cycle)
		if g := c.Cfg.TimerGranularity; g > 1 {
			// Coarse-grained timer mitigation (§8.6): attackers only see
			// the cycle counter quantized to g-cycle steps.
			e.result = uint64(c.cycle / g * g)
		}
		e.doneAt = c.cycle + 1
	default: // FENCE, ECALL
		c.perf.IssuedOther++
		e.result = 0
		e.doneAt = c.cycle + 1
	}
	e.state = stIssued
	return true
}

// issueMem executes a load or store: address generation, privilege check,
// cache access, and (for faulting loads) transient data forwarding.
func (c *Core) issueMem(e *robEntry, rs1, rs2 uint64) {
	addr := rs1 + uint64(e.ins.Imm)
	bytes := e.ins.Op.MemBytes()
	isStore := e.ins.Op.IsStore()
	if isStore {
		c.mem.Write(addr, rs2, bytes)
		res := c.DCache.Access(1, addr, true, c.cycle)
		e.doneAt = res.Ready
		if e.ins.Op == isa.SCD {
			// Store-conditional writes and dirties the line regardless of
			// success (S10); report success.
			e.result = 0
		}
	} else {
		res := c.DCache.Access(0, addr, false, c.cycle)
		e.doneAt = res.Ready
		// Data is forwarded to dependents even on a fault — the transient
		// window (paper §7.3).
		e.result = c.mem.Read(addr, bytes)
		if c.mem.Privileged(addr) {
			e.exception = true
			if c.Cfg.EarlyExceptionDetect {
				// NutShell detects the fault early in the pipeline and
				// flushes before contention can establish (§8.5).
				e.earlyFlushed = true
				c.flushYoungerThan(e.seq)
				c.redirectToHandler()
			}
		}
	}
	e.state = stIssued
}

// ---- dispatch ----

func (c *Core) dispatch() {
	for n := 0; n < c.Cfg.CoreWidth; n++ {
		if c.fbHead >= len(c.fetchBuf) || c.robCount >= len(c.rob) {
			return
		}
		fi := c.fetchBuf[c.fbHead]
		if fi.ins.Op.IsLoad() && c.ldqCount >= c.Cfg.LDQEntries {
			return
		}
		if fi.ins.Op.IsStore() && c.stqCount >= c.Cfg.STQEntries {
			return
		}
		c.fbHead++
		pos := c.robTail
		e := &c.rob[pos]
		*e = robEntry{
			active: true,
			seq:    c.seqNext,
			idx:    fi.idx,
			pc:     fi.pc,
			ins:    fi.ins,
			state:  stWaiting,
		}
		c.seqNext++
		c.perf.Dispatched++
		c.robTail = (c.robTail + 1) % len(c.rob)
		c.robCount++
		if rd := fi.ins.Writes(); rd != 0 {
			c.lastProd[rd] = prodRef{pos: pos, seq: e.seq}
		}
		if fi.ins.Op.IsLoad() {
			c.ldqCount++
		}
		if fi.ins.Op.IsStore() {
			c.stqCount++
		}
		if fi.idx >= 0 && fi.idx >= c.secretStart && fi.idx < c.secretEnd {
			e.secretDep = true
			c.secretInROB++
			if c.secretInROB == 1 && c.window != nil {
				c.window.SetWindow(true)
			}
		}
		if c.bulk.ROB != nil {
			c.bulk.ROB.Touch(pos, n, fi.pc, c.cycle)
		}
		if c.bulk.IssueQ != nil {
			c.bulk.IssueQ.Touch(int(e.seq), n, uint64(fi.ins.Encode()), c.cycle)
		}
	}
}

// ---- fetch ----

func (c *Core) fetch() {
	// Compact the fetch queue once dispatch has drained it, so occupancy
	// indices below stay small and the backing array is reused from 0.
	if c.fbHead > 0 && c.fbHead == len(c.fetchBuf) {
		c.fetchBuf = c.fetchBuf[:0]
		c.fbHead = 0
	}
	// Drain a completed fetch group into the fetch buffer.
	if c.hasPending && c.pending.availAt <= c.cycle {
		for i, fi := range c.pending.instrs {
			if len(c.fetchBuf)-c.fbHead >= c.Cfg.FetchBufEntries {
				break
			}
			c.fetchBuf = append(c.fetchBuf, fi)
			if c.bulk.FetchBuf != nil {
				c.bulk.FetchBuf.Touch(len(c.fetchBuf)-1-c.fbHead, i%c.Cfg.FetchWidth, fi.pc, c.cycle)
			}
		}
		c.hasPending = false
	}
	if c.hasPending || c.redirectValid {
		c.perf.FetchStallCycles++
		return
	}
	if len(c.fetchBuf)-c.fbHead+c.Cfg.FetchWidth > c.Cfg.FetchBufEntries {
		return
	}
	instrs := c.pending.instrs[:0]
	pc := c.pc
	for i := 0; i < c.Cfg.FetchWidth; i++ {
		addr := pc + uint64(4*i)
		if i > 0 && addr%LineBytes == 0 {
			break // fetch groups do not cross cacheline boundaries
		}
		word := uint32(c.mem.Read(addr, 4))
		ins, ok := isa.DecodeWord(word)
		idx := -1
		if c.prog != nil {
			idx = c.prog.IndexOf(addr)
		}
		if !ok {
			// Undecodable memory terminates the program.
			instrs = append(instrs, fetchedInstr{pc: addr, idx: idx, ins: isa.Instr{Op: isa.ECALL}})
			break
		}
		instrs = append(instrs, fetchedInstr{pc: addr, idx: idx, ins: ins})
	}
	c.pending.instrs = instrs
	if len(instrs) == 0 {
		return
	}
	res := c.ICache.Access(0, c.pc, false, c.cycle)
	c.pending.availAt = res.Ready
	c.hasPending = true
	c.perf.FetchGroups++
	c.pc += uint64(4 * len(instrs))
	if c.bulk.BTB != nil {
		c.bulk.BTB.Touch(int(c.pc/4), 0, c.pc, c.cycle)
	}
}

// Netlist returns the netlist this core drives.
func (c *Core) Netlist() *hdl.Netlist { return c.net }
