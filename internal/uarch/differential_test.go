package uarch

import (
	"math/rand"
	"testing"

	"sonar/internal/isa"
)

// randomStraightLine generates an architecturally well-defined program:
// ALU/mul/div ops over x1..x12, loads and stores into a private data
// window, and occasional forward branches (whose targets stay inside the
// program). No backward branches, so it always terminates.
func randomStraightLine(rng *rand.Rand, n int) []isa.Instr {
	code := []isa.Instr{
		{Op: isa.LUI, Rd: 28, Imm: 0x40}, // data base 0x40000
	}
	for r := uint8(1); r <= 12; r++ {
		code = append(code, isa.I(isa.ADDI, r, 0, int64(rng.Intn(2048))))
	}
	reg := func() uint8 { return uint8(1 + rng.Intn(12)) }
	for len(code) < n {
		switch rng.Intn(12) {
		case 0:
			code = append(code, isa.R(isa.ADD, reg(), reg(), reg()))
		case 1:
			code = append(code, isa.R(isa.SUB, reg(), reg(), reg()))
		case 2:
			code = append(code, isa.R(isa.XOR, reg(), reg(), reg()))
		case 3:
			code = append(code, isa.R(isa.AND, reg(), reg(), reg()))
		case 4:
			code = append(code, isa.I(isa.ADDI, reg(), reg(), int64(rng.Intn(4096))-2048))
		case 5:
			code = append(code, isa.R(isa.MUL, reg(), reg(), reg()))
		case 6:
			code = append(code, isa.R(isa.DIV, reg(), reg(), reg()))
		case 7:
			code = append(code, isa.I(isa.SLLI, reg(), reg(), int64(rng.Intn(16))))
		case 8:
			code = append(code, isa.R(isa.SLTU, reg(), reg(), reg()))
		case 9:
			code = append(code, isa.Store(isa.SD, reg(), 28, int64(rng.Intn(64))*8))
		case 10:
			code = append(code, isa.Load(isa.LD, reg(), 28, int64(rng.Intn(64))*8))
		case 11:
			// Forward branch skipping 1-3 instructions; filler ALU ops are
			// appended right after so the target always exists.
			skip := 1 + rng.Intn(3)
			code = append(code, isa.Branch(isa.BNE, reg(), reg(), int64(4*(skip+1))))
			for k := 0; k < skip; k++ {
				code = append(code, isa.R(isa.ADD, reg(), reg(), reg()))
			}
		}
	}
	return append(code, isa.Instr{Op: isa.ECALL})
}

// The cycle-accurate out-of-order cores must be architecturally equivalent
// to the golden interpreter on random programs: same final registers, same
// final memory.
func TestDifferentialCoreVsInterp(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, cfg := range []Config{BoomConfig(), NutshellConfig()} {
		soc := NewSoC(cfg, 1, nil, nil)
		for trial := 0; trial < 30; trial++ {
			code := randomStraightLine(rng, 40+rng.Intn(80))
			prog := isa.NewProgram(0x1_0000, code...)

			soc.Reset()
			soc.Cores[0].LoadProgram(prog)
			soc.Run()
			if !soc.Cores[0].Halted() {
				t.Fatalf("%s trial %d: core did not halt", cfg.Name, trial)
			}

			ref := NewMemory()
			ref.WriteBytes(prog.Base, prog.Image())
			it := isa.NewInterp(ref, prog.Base)
			if _, err := it.Run(100000); err != nil {
				t.Fatalf("%s trial %d: interp: %v", cfg.Name, trial, err)
			}
			if !it.Halted {
				t.Fatalf("%s trial %d: interp did not halt", cfg.Name, trial)
			}

			for r := uint8(1); r <= 12; r++ {
				if got, want := soc.Cores[0].Reg(r), it.Regs[r]; got != want {
					t.Fatalf("%s trial %d: x%d = %#x, interp says %#x\n%s",
						cfg.Name, trial, r, got, want, prog.Listing())
				}
			}
			for off := uint64(0); off < 64*8; off += 8 {
				addr := uint64(0x40000) + off
				if got, want := soc.Mem.Read(addr, 8), ref.Read(addr, 8); got != want {
					t.Fatalf("%s trial %d: mem[%#x] = %#x, interp says %#x",
						cfg.Name, trial, addr, got, want)
				}
			}
		}
	}
}

// The interpreter itself retires rdcycle, jumps, and halts correctly.
func TestInterpBasics(t *testing.T) {
	mem := NewMemory()
	prog := isa.NewProgram(0x1000,
		isa.I(isa.ADDI, 1, 0, 7),
		isa.Instr{Op: isa.JAL, Rd: 2, Imm: 8}, // skip one
		isa.I(isa.ADDI, 1, 0, 99),             // skipped
		isa.Instr{Op: isa.RDCYCLE, Rd: 3},
		isa.Instr{Op: isa.ECALL},
	)
	mem.WriteBytes(prog.Base, prog.Image())
	it := isa.NewInterp(mem, prog.Base)
	n, err := it.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Halted || n != 4 {
		t.Fatalf("halted=%v retired=%d", it.Halted, n)
	}
	if it.Regs[1] != 7 {
		t.Errorf("x1 = %d, want 7 (skipped path committed)", it.Regs[1])
	}
	if it.Regs[2] != 0x1008 {
		t.Errorf("link = %#x", it.Regs[2])
	}
	if it.Regs[3] == 0 {
		t.Error("rdcycle returned 0 after retiring instructions")
	}
}

func TestInterpRejectsGarbage(t *testing.T) {
	mem := NewMemory()
	mem.Write(0x1000, 0x0000007f, 4) // unused opcode
	it := isa.NewInterp(mem, 0x1000)
	if err := it.Step(); err == nil {
		t.Error("undecodable word executed")
	}
}
