package uarch

import (
	"fmt"
	"strings"
)

// PerfCounters aggregates per-core pipeline activity over one program run —
// the observability a pre-silicon tool needs to explain where cycles went.
type PerfCounters struct {
	// Cycles is the run length in cycles.
	Cycles int64
	// FetchGroups counts instruction-fetch groups issued to the ICache.
	FetchGroups int64
	// FetchStallCycles counts cycles fetch waited on the ICache or a
	// pending redirect.
	FetchStallCycles int64
	// Dispatched counts instructions entering the ROB.
	Dispatched int64
	// Issued counts instructions accepted by execution units, by class.
	IssuedALU, IssuedMul, IssuedDiv, IssuedMem, IssuedOther int64
	// Committed counts architecturally retired instructions.
	Committed int64
	// Squashed counts instructions flushed before commit.
	Squashed int64
	// BranchFlushes counts taken-branch/jump pipeline redirects.
	BranchFlushes int64
	// Exceptions counts faulting commits.
	Exceptions int64
}

// IPC returns committed instructions per cycle.
func (p *PerfCounters) IPC() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.Committed) / float64(p.Cycles)
}

// String renders a compact counter report.
func (p *PerfCounters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d, committed %d (IPC %.2f), squashed %d\n",
		p.Cycles, p.Committed, p.IPC(), p.Squashed)
	fmt.Fprintf(&b, "fetch groups %d (stalled %d cycles), dispatched %d\n",
		p.FetchGroups, p.FetchStallCycles, p.Dispatched)
	fmt.Fprintf(&b, "issued: alu %d, mul %d, div %d, mem %d, other %d\n",
		p.IssuedALU, p.IssuedMul, p.IssuedDiv, p.IssuedMem, p.IssuedOther)
	fmt.Fprintf(&b, "branch flushes %d, exceptions %d\n", p.BranchFlushes, p.Exceptions)
	return b.String()
}

// Perf returns the core's counters for the current/most recent run.
func (c *Core) Perf() *PerfCounters {
	p := c.perf
	p.Cycles = c.cycle
	return &p
}
