// Package uarch provides the shared microarchitecture building blocks the
// BOOM-like and NutShell-like DUT models are assembled from: a flat memory,
// L1 caches with MSHRs and line buffers, a TileLink-style D-channel, the
// execution units, and the out-of-order core engine itself.
//
// The engine is a cycle-accurate behavioural model, not gate-level RTL. Its
// arbitration datapaths — the places where Sonar's contention side channels
// live — are declared as MUX structures in an hdl netlist and driven every
// cycle, so the tracing/filtering/instrumentation pipeline observes them
// exactly as it would observe FIRRTL-elaborated RTL (see DESIGN.md,
// "Substitutions").
package uarch

// Config parameterizes a core (paper Table 1).
type Config struct {
	// Name labels the core ("boom", "nutshell").
	Name string
	// FetchWidth is the number of instructions fetched per cycle.
	FetchWidth int
	// FetchBufEntries is the fetch buffer capacity.
	FetchBufEntries int
	// CoreWidth is the dispatch/commit width.
	CoreWidth int
	// ROBEntries is the reorder buffer capacity.
	ROBEntries int
	// LDQEntries and STQEntries bound in-flight loads and stores.
	LDQEntries int
	STQEntries int // store queue capacity
	// NumALUs is the number of single-cycle integer units.
	NumALUs int
	// PipelinedMul selects a dedicated pipelined multiplier (BOOM). When
	// false, multiply and divide share the non-pipelined MDU (NutShell,
	// side channel S13).
	PipelinedMul bool
	// MulLatency is the multiplier latency in cycles.
	MulLatency int
	// DivLatencyBase and DivLatencyPerBit give the iterative divider
	// latency: base + bits(dividend) cycles.
	DivLatencyBase   int
	DivLatencyPerBit int // divider cycles added per dividend bit
	// SharedWBPort enables the shared execution-unit response port between
	// the last ALU, the multiplier, and the divider, with ALU priority
	// (side channel S8).
	SharedWBPort bool

	// ICacheSets/Ways and DCacheSets/Ways size the L1 caches; lines are 64
	// bytes.
	ICacheSets int
	ICacheWays int // L1 ICache associativity
	DCacheSets int // L1 DCache set count
	DCacheWays int // L1 DCache associativity
	// CacheHitLatency is the L1 hit latency in cycles.
	CacheHitLatency int
	// NumMSHRs is the number of L1 DCache miss-status holding registers
	// (side channel S5 needs at least 2).
	NumMSHRs int
	// LineBuffers enables the single-ported read/write line buffers between
	// the L1 DCache and the bus (side channels S6/S7).
	LineBuffers bool
	// ICacheSinglePort makes the L1 ICache share one port between fetch
	// reads and refill writes (NutShell, side channel S14).
	ICacheSinglePort bool

	// L2Latency is the L2 access latency seen by an L1 miss before the
	// D-channel transfer starts.
	L2Latency int
	// ReadBeats is the number of cycles a cacheline read occupies the
	// TileLink D-channel; writebacks occupy it for one cycle (paper §8.4.A).
	ReadBeats int

	// EarlyExceptionDetect flushes the pipeline as soon as a fault is
	// detected at execute rather than at commit. NutShell behaves this way,
	// which is why its Meltdown-style PoCs achieve <2% accuracy (§8.5).
	EarlyExceptionDetect bool

	// TimerGranularity coarsens the cycle counter read by rdcycle to
	// multiples of this value (0 or 1 = precise). Restricting timer
	// precision is the paper's first mitigation (§8.6, Timewarp-style).
	TimerGranularity int64
	// PartitionedDChannel splits the TileLink D-channel into per-requester
	// virtual lanes, eliminating cross-requester contention — the
	// resource-partitioning mitigation of §8.6 (SecSMT-style). Same-lane
	// contention (e.g. DCache read vs DCache read) remains.
	PartitionedDChannel bool

	// MaxCycles caps a single program execution.
	MaxCycles int64
}

// BoomConfig returns the BOOM-like configuration of paper Table 1.
func BoomConfig() Config {
	return Config{
		Name:             "boom",
		FetchWidth:       8,
		FetchBufEntries:  24,
		CoreWidth:        2,
		ROBEntries:       96,
		LDQEntries:       24,
		STQEntries:       24,
		NumALUs:          3,
		PipelinedMul:     true,
		MulLatency:       3,
		DivLatencyBase:   8,
		DivLatencyPerBit: 1,
		SharedWBPort:     true,
		ICacheSets:       64,
		ICacheWays:       8,
		DCacheSets:       64,
		DCacheWays:       8,
		CacheHitLatency:  3,
		NumMSHRs:         2,
		LineBuffers:      true,
		L2Latency:        12,
		ReadBeats:        8,
		MaxCycles:        200_000,
	}
}

// NutshellConfig returns the NutShell-like configuration of paper Table 1.
func NutshellConfig() Config {
	return Config{
		Name:                 "nutshell",
		FetchWidth:           2,
		FetchBufEntries:      8,
		CoreWidth:            1,
		ROBEntries:           32,
		LDQEntries:           8,
		STQEntries:           8,
		NumALUs:              2,
		PipelinedMul:         false, // shared non-pipelined MDU (S13)
		MulLatency:           8,
		DivLatencyBase:       8,
		DivLatencyPerBit:     1,
		SharedWBPort:         false,
		ICacheSets:           64,
		ICacheWays:           8,
		DCacheSets:           64,
		DCacheWays:           8,
		CacheHitLatency:      2,
		NumMSHRs:             1,
		LineBuffers:          false,
		ICacheSinglePort:     true, // S14
		L2Latency:            10,
		ReadBeats:            8,
		EarlyExceptionDetect: true,
		MaxCycles:            200_000,
	}
}

// LineBytes is the cacheline size used throughout.
const LineBytes = 64
