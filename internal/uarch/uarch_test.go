package uarch

import (
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/isa"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 0xdeadbeefcafe, 8)
	if got := m.Read(0x1000, 8); got != 0xdeadbeefcafe {
		t.Errorf("Read = %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0xbeefcafe {
		t.Errorf("4-byte Read = %#x", got)
	}
	// Cross-page access.
	m.Write(0x1ffe, 0xaabb, 2)
	if got := m.Read(0x1ffe, 2); got != 0xaabb {
		t.Errorf("cross-page Read = %#x", got)
	}
	if m.Read(0x9000, 8) != 0 {
		t.Error("untouched memory not zero")
	}
	m.SetPrivRange(0x8000, 0x9000)
	if !m.Privileged(0x8000) || m.Privileged(0x7fff) || m.Privileged(0x9000) {
		t.Error("Privileged range wrong")
	}
	m.Reset()
	if m.Read(0x1000, 8) != 0 {
		t.Error("Reset did not clear contents")
	}
	if !m.Privileged(0x8000) {
		t.Error("Reset dropped the privileged range")
	}
}

func TestPulserScheduling(t *testing.T) {
	n := hdl.NewNetlist("t")
	v := n.Wire("v_valid", 1)
	d := n.Wire("v_bits", 8)
	var edges []int64
	v.Watch(func(_ *hdl.Signal, old, new uint64, cycle int64) {
		if old == 0 && new == 1 {
			edges = append(edges, cycle)
		}
	})
	p := NewPulser()
	p.Drain(0)
	p.At(0, v, d, 1) // current cycle: fires immediately
	p.At(3, v, d, 2) // future
	if len(edges) != 1 || edges[0] != 0 {
		t.Fatalf("immediate pulse edges = %v", edges)
	}
	for c := int64(1); c <= 3; c++ {
		n.Step()
		p.Drain(c)
	}
	if len(edges) != 2 || edges[1] != 3 {
		t.Fatalf("scheduled pulse edges = %v", edges)
	}
	if d.Value() != 2 {
		t.Errorf("data = %d, want 2", d.Value())
	}
	p.At(10, v, d, 3)
	p.Reset()
	if p.PendingCycles() != 0 {
		t.Error("Reset left pending pulses")
	}
}

func TestDChannelOccupancy(t *testing.T) {
	n := hdl.NewNetlist("t")
	p := NewPulser()
	p.Drain(0)
	d := NewDChannel(n.Module("tilelink"), p, 8, []string{"a", "b"})
	// A read at cycle 10 completes at 18 and occupies the channel.
	if done := d.RequestRead(0, 0x40, 10); done != 18 {
		t.Errorf("read done = %d, want 18", done)
	}
	if !d.BusyAt(17) || d.BusyAt(18) {
		t.Error("occupancy window wrong")
	}
	// A writeback arriving at 12 is delayed behind the read: grant 18,
	// done 19.
	if done := d.RequestWrite(1, 0x80, 12); done != 19 {
		t.Errorf("writeback done = %d, want 19", done)
	}
	// After the channel frees, a write takes one cycle.
	if done := d.RequestWrite(1, 0xc0, 30); done != 31 {
		t.Errorf("idle writeback done = %d, want 31", done)
	}
	if d.Grants[0] != 1 || d.Grants[1] != 2 {
		t.Errorf("Grants = %v", d.Grants)
	}
	d.Reset()
	if d.BusyAt(0) || d.Grants[0] != 0 {
		t.Error("Reset incomplete")
	}
}

func newTestCache(t *testing.T, mshrs int, lineBuffers bool) (*Cache, *DChannel) {
	t.Helper()
	n := hdl.NewNetlist("t")
	p := NewPulser()
	p.Drain(0)
	bus := NewDChannel(n.Module("tilelink"), p, 8, []string{"rd", "wb"})
	c := NewCache(n.Module("lsu").Child("dcache"), p, CacheParams{
		Name: "d", Sets: 4, Ways: 2, HitLatency: 2, L2Latency: 10,
		Bus: bus, ReadSrc: 0, WBSrc: 1, NumMSHRs: mshrs, LineBuffers: lineBuffers,
		Ports: 2,
	})
	return c, bus
}

func TestCacheHitAndMissLatency(t *testing.T) {
	c, _ := newTestCache(t, 2, false)
	// Cold miss at cycle 0: bus read arrives at 10 (L2 latency), grant 10,
	// done 18, ready 18+2=20.
	r := c.Access(0, 0x1000, false, 0)
	if r.Hit {
		t.Error("cold access hit")
	}
	if r.Ready != 20 {
		t.Errorf("miss ready = %d, want 20", r.Ready)
	}
	// Hit on the same line after the fill: hit latency 2.
	r2 := c.Access(0, 0x1008, false, 30)
	if !r2.Hit || r2.Ready != 32 {
		t.Errorf("hit = %v ready = %d, want hit at 32", r2.Hit, r2.Ready)
	}
	// A hit before the fill completes waits for the in-flight data.
	c.Reset()
	c.Access(0, 0x2000, false, 0)
	r3 := c.Access(0, 0x2008, false, 2)
	if !r3.Hit {
		t.Error("same-line access during refill should hit the allocated line")
	}
	if r3.Ready < 18 {
		t.Errorf("same-line access ready = %d, must wait for fill (>= 18)", r3.Ready)
	}
	// Counters were cleared by the mid-test Reset: one miss + one hit since.
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("Hits/Misses = %d/%d, want 1/1 after Reset", c.Hits, c.Misses)
	}
}

// S5: a miss to the same set with a different tag must wait for the
// in-flight MSHR even though another MSHR is free.
func TestMSHRFalseSharingBlocking(t *testing.T) {
	c, _ := newTestCache(t, 2, false)
	r0 := c.Access(0, 0x1000, false, 0) // set 0
	// 0x1000 line 0x40... setOf(0x1000): line=0x40, set=0x40%4=0. Same set,
	// different tag: line addr 0x1000 + 4 sets * 64 bytes = 0x1100.
	r1 := c.Access(0, 0x1100, false, 1)
	if !r1.BlockedByMSHR {
		t.Fatal("same-set different-tag miss not blocked")
	}
	if r1.Ready <= r0.Ready {
		t.Errorf("blocked miss ready %d must be after blocker %d", r1.Ready, r0.Ready)
	}
	if c.FalseSharingBlocks != 1 {
		t.Errorf("FalseSharingBlocks = %d", c.FalseSharingBlocks)
	}
	// A miss to a *different* set proceeds in parallel on the second MSHR
	// (only delayed by bus serialization, not by MSHR completion).
	c.Reset()
	ra := c.Access(0, 0x1000, false, 0) // set 0
	rb := c.Access(0, 0x1040, false, 1) // set 1
	if rb.BlockedByMSHR {
		t.Error("different-set miss wrongly blocked")
	}
	if rb.Ready >= ra.Ready+int64(10)+8 {
		t.Errorf("parallel miss ready = %d (blocker %d): appears serialized through MSHR", rb.Ready, ra.Ready)
	}
}

func TestCacheEvictionAndWriteback(t *testing.T) {
	c, bus := newTestCache(t, 2, false)
	// Fill both ways of set 0, dirtying the first.
	c.Access(1, 0x1000, true, 0)    // set 0, way 0, dirty
	c.Access(0, 0x1100, false, 100) // set 0, way 1
	// Third line in set 0 evicts the LRU (0x1000, dirty -> writeback).
	r := c.Access(0, 0x1200, false, 200)
	if !r.Evicted || !r.EvictedDirty {
		t.Fatalf("evicted=%v dirty=%v, want both", r.Evicted, r.EvictedDirty)
	}
	if r.EvictedAddr != 0x1000 {
		t.Errorf("EvictedAddr = %#x, want 0x1000", r.EvictedAddr)
	}
	if c.Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Writebacks)
	}
	if bus.Grants[1] != 1 {
		t.Errorf("writeback source grants = %d, want 1", bus.Grants[1])
	}
	if c.Contains(0x1000) {
		t.Error("evicted line still present")
	}
	if !c.Contains(0x1200) {
		t.Error("refilled line missing")
	}
}

// S6/S7: simultaneous line-buffer accesses serialize by one cycle.
func TestLineBufferContention(t *testing.T) {
	n := hdl.NewNetlist("t")
	p := NewPulser()
	p.Drain(0)
	lb := newLineBuffer(n.Module("lsu").Child("rlb"), p, "io_refill", 2)
	t0 := lb.access(0, 0x1000, 50)
	t1 := lb.access(1, 0x2000, 50)
	if t0 != 50 || t1 != 51 {
		t.Errorf("same-cycle accesses = %d,%d, want 50,51", t0, t1)
	}
	t2 := lb.access(0, 0x3000, 60)
	if t2 != 60 {
		t.Errorf("idle access = %d, want 60", t2)
	}
}

// ---- core-level tests ----

func testSoC(cfg Config) *SoC {
	return NewSoC(cfg, 1, nil, nil)
}

func runProgram(t *testing.T, s *SoC, code ...isa.Instr) []CommitRecord {
	t.Helper()
	code = append(code, isa.Instr{Op: isa.ECALL})
	log := s.RunProgram(isa.NewProgram(0x1000, code...))
	if !s.Cores[0].Halted() {
		t.Fatal("program did not halt")
	}
	return log
}

func TestCoreArithmetic(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.I(isa.ADDI, 1, 0, 6),
		isa.I(isa.ADDI, 2, 0, 7),
		isa.R(isa.MUL, 3, 1, 2),
		isa.R(isa.ADD, 4, 3, 1),
		isa.R(isa.SUB, 5, 4, 2),
		isa.R(isa.DIV, 6, 3, 2),
		isa.R(isa.XOR, 7, 1, 2),
	)
	c := s.Cores[0]
	want := map[uint8]uint64{3: 42, 4: 48, 5: 41, 6: 6, 7: 1}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("x%d = %d, want %d", r, got, v)
		}
	}
}

func TestCoreCommitOrderAndCycles(t *testing.T) {
	s := testSoC(BoomConfig())
	log := runProgram(t, s,
		isa.I(isa.ADDI, 1, 0, 1),
		isa.R(isa.DIV, 2, 1, 1),  // slow
		isa.I(isa.ADDI, 3, 0, 2), // fast, but must commit after the div
	)
	if len(log) != 4 { // 3 + ecall
		t.Fatalf("commit log has %d entries, want 4", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].Cycle < log[i-1].Cycle {
			t.Errorf("commit order violated: %v", log)
		}
	}
	if log[0].Idx != 0 || log[1].Idx != 1 || log[2].Idx != 2 {
		t.Errorf("commit indices = %d,%d,%d", log[0].Idx, log[1].Idx, log[2].Idx)
	}
	// The fast addi is delayed by the in-order commit behind the div.
	if log[2].Cycle != log[1].Cycle {
		// Committed同cycle or the cycle after is fine; just ensure it did
		// not commit before.
		if log[2].Cycle < log[1].Cycle {
			t.Error("younger instruction committed before older")
		}
	}
}

func TestCoreLoadStore(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.Instr{Op: isa.LUI, Rd: 1, Imm: 8}, // x1 = 0x8000
		isa.I(isa.ADDI, 2, 0, 1234),
		isa.Store(isa.SD, 2, 1, 0),
		isa.Load(isa.LD, 3, 1, 0),
		isa.Load(isa.LW, 4, 1, 0),
	)
	c := s.Cores[0]
	if c.Reg(3) != 1234 {
		t.Errorf("x3 = %d, want 1234", c.Reg(3))
	}
	if c.Reg(4) != 1234 {
		t.Errorf("x4 = %d, want 1234", c.Reg(4))
	}
}

func TestCoreBranchTaken(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.I(isa.ADDI, 1, 0, 5),
		isa.Branch(isa.BNE, 1, 0, 12), // skip the next two
		isa.I(isa.ADDI, 2, 0, 111),    // squashed
		isa.I(isa.ADDI, 3, 0, 222),    // squashed
		isa.I(isa.ADDI, 4, 0, 7),
	)
	c := s.Cores[0]
	if c.Reg(2) != 0 || c.Reg(3) != 0 {
		t.Errorf("squashed path committed: x2=%d x3=%d", c.Reg(2), c.Reg(3))
	}
	if c.Reg(4) != 7 {
		t.Errorf("branch target not executed: x4 = %d", c.Reg(4))
	}
}

func TestCoreBranchNotTaken(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.Branch(isa.BEQ, 1, 2, 12), // x1==x2==0: taken!
		isa.I(isa.ADDI, 5, 0, 1),
		isa.I(isa.ADDI, 6, 0, 1),
		isa.I(isa.ADDI, 7, 0, 9),
	)
	c := s.Cores[0]
	if c.Reg(5) != 0 || c.Reg(6) != 0 || c.Reg(7) != 9 {
		t.Errorf("x5=%d x6=%d x7=%d", c.Reg(5), c.Reg(6), c.Reg(7))
	}
	s2 := testSoC(BoomConfig())
	runProgram(t, s2,
		isa.I(isa.ADDI, 1, 0, 1),
		isa.Branch(isa.BEQ, 1, 0, 8), // not taken
		isa.I(isa.ADDI, 5, 0, 3),
	)
	if s2.Cores[0].Reg(5) != 3 {
		t.Errorf("fallthrough not executed: x5 = %d", s2.Cores[0].Reg(5))
	}
}

func TestCoreJAL(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.Instr{Op: isa.JAL, Rd: 1, Imm: 12}, // jump over two
		isa.I(isa.ADDI, 2, 0, 1),
		isa.I(isa.ADDI, 3, 0, 1),
		isa.I(isa.ADDI, 4, 0, 4),
	)
	c := s.Cores[0]
	if c.Reg(1) != 0x1004 {
		t.Errorf("link = %#x, want 0x1004", c.Reg(1))
	}
	if c.Reg(2) != 0 || c.Reg(3) != 0 || c.Reg(4) != 4 {
		t.Errorf("jump path wrong: x2=%d x3=%d x4=%d", c.Reg(2), c.Reg(3), c.Reg(4))
	}
}

func TestCoreRdcycleMonotonic(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.Instr{Op: isa.RDCYCLE, Rd: 1},
		isa.R(isa.DIV, 2, 1, 1),
		isa.R(isa.ADD, 3, 2, 0), // serialize behind the div
		isa.Instr{Op: isa.RDCYCLE, Rd: 4},
	)
	c := s.Cores[0]
	if c.Reg(4) <= c.Reg(1) {
		t.Errorf("rdcycle not monotonic: %d then %d", c.Reg(1), c.Reg(4))
	}
}

// Lazy exception handling (BOOM): the faulting load's dependents execute
// transiently; the flush happens at commit, and architectural state from
// the wrong path is discarded.
func TestCoreLazyExceptionTransientWindow(t *testing.T) {
	s := testSoC(BoomConfig())
	s.Mem.SetPrivRange(0x8000, 0x9000)
	prog := isa.NewProgram(0x1000,
		isa.Instr{Op: isa.LUI, Rd: 1, Imm: 8}, // x1 = 0x8000 (privileged)
		isa.Load(isa.LD, 2, 1, 0),             // faults
		isa.R(isa.ADD, 3, 2, 2),               // transient dependent
		isa.I(isa.ADDI, 4, 0, 99),             // transient
	)
	// Handler at 0x2000: set x5 and halt.
	handler := isa.NewProgram(0x2000,
		isa.I(isa.ADDI, 5, 0, 55),
		isa.Instr{Op: isa.ECALL},
	)
	s.Reset()
	s.Mem.Write(0x8000, 7, 8)
	s.Cores[0].LoadProgram(prog)
	s.Mem.WriteBytes(handler.Base, handler.Image())
	s.Cores[0].SetHandler(0x2000)
	s.Run()
	c := s.Cores[0]
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	if c.Reg(5) != 55 {
		t.Errorf("handler did not run: x5 = %d", c.Reg(5))
	}
	if c.Reg(3) != 0 || c.Reg(4) != 0 {
		t.Errorf("transient state committed: x3=%d x4=%d", c.Reg(3), c.Reg(4))
	}
	// The faulting commit must be recorded with the exception flag.
	var sawFault bool
	for _, r := range c.CommitLog {
		if r.Exception {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("no exception commit recorded")
	}
}

// Early exception detection (NutShell): the flush happens at execute, so
// the handler still runs but the transient window is (nearly) absent.
func TestCoreEarlyExceptionDetect(t *testing.T) {
	s := testSoC(NutshellConfig())
	s.Mem.SetPrivRange(0x8000, 0x9000)
	prog := isa.NewProgram(0x1000,
		isa.Instr{Op: isa.LUI, Rd: 1, Imm: 8},
		isa.Load(isa.LD, 2, 1, 0), // faults, early flush
		isa.R(isa.ADD, 3, 2, 2),
	)
	handler := isa.NewProgram(0x2000,
		isa.I(isa.ADDI, 5, 0, 55),
		isa.Instr{Op: isa.ECALL},
	)
	s.Reset()
	s.Cores[0].LoadProgram(prog)
	s.Mem.WriteBytes(handler.Base, handler.Image())
	s.Cores[0].SetHandler(0x2000)
	s.Run()
	c := s.Cores[0]
	if c.Reg(5) != 55 {
		t.Errorf("handler did not run: x5 = %d", c.Reg(5))
	}
	if c.Reg(3) != 0 {
		t.Errorf("transient state committed: x3=%d", c.Reg(3))
	}
}

// S9/S13 shape: a younger divide whose operands are ready first occupies
// the non-pipelined divider and delays an older divide.
func TestDivOccupancyContention(t *testing.T) {
	run := func(withYoungerDiv bool) int64 {
		s := testSoC(BoomConfig())
		code := []isa.Instr{
			isa.I(isa.ADDI, 1, 0, 1),
			isa.I(isa.ADDI, 3, 0, 5),
			isa.I(isa.ADDI, 8, 0, 58),
			isa.R(isa.SLL, 3, 3, 8), // x3: huge dividend, ready early
		}
		// A long dependency chain delays the older div's operand past the
		// point where the whole program has been fetched, so the younger
		// div (ready immediately after dispatch) enters the non-pipelined
		// divider first and occupies it across the older div's issue.
		code = append(code, isa.DepChain(1, 40)...)
		code = append(code, isa.R(isa.DIV, 2, 1, 1)) // older div, late operands
		if withYoungerDiv {
			code = append(code, isa.R(isa.DIV, 4, 3, 3)) // younger div
		} else {
			code = append(code, isa.R(isa.ADD, 4, 3, 3))
		}
		log := runProgram(t, s, code...)
		// Find the older div's commit cycle.
		for _, r := range log {
			if r.Instr.Op == isa.DIV && r.Instr.Rd == 2 {
				return r.Cycle
			}
		}
		t.Fatal("older div not committed")
		return 0
	}
	without := run(false)
	with := run(true)
	if with <= without {
		t.Errorf("younger div did not delay older: with=%d without=%d", with, without)
	}
}

func TestSoCResetReproducibility(t *testing.T) {
	s := testSoC(BoomConfig())
	prog := []isa.Instr{
		isa.I(isa.ADDI, 1, 0, 100),
		isa.R(isa.MUL, 2, 1, 1),
		isa.Load(isa.LD, 3, 1, 0),
		isa.R(isa.DIV, 4, 2, 1),
	}
	log1 := runProgram(t, s, prog...)
	log2 := runProgram(t, s, prog...)
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i].Cycle != log2[i].Cycle {
			t.Fatalf("run not reproducible at commit %d: %d vs %d", i, log1[i].Cycle, log2[i].Cycle)
		}
	}
}

func TestBulkArraysDriven(t *testing.T) {
	arrays := []ArraySpec{
		{Component: "rob", Name: "entries", Entries: 8, Fanin: 2, Width: 32, Role: RoleROB},
		{Component: "frontend", Name: "fb", Entries: 4, Fanin: 2, Width: 32, Role: RoleFetchBuf},
	}
	s := NewSoC(BoomConfig(), 1, arrays, nil)
	// Count rising edges on rob entry write valids.
	edges := 0
	for _, sig := range s.Net.Signals() {
		sig := sig
		if sig.Kind() == hdl.Wire && len(sig.Name()) > 4 && sig.Name()[:4] == "rob." {
			if l := sig.Local(); l == "io_w_0_valid" || l == "io_w_1_valid" {
				sig.Watch(func(_ *hdl.Signal, old, new uint64, _ int64) {
					if old == 0 && new == 1 {
						edges++
					}
				})
			}
		}
	}
	runProgram(t, s, isa.I(isa.ADDI, 1, 0, 1), isa.I(isa.ADDI, 2, 0, 2))
	if edges == 0 {
		t.Error("dispatch did not drive the ROB bulk array")
	}
}

func TestSoCDualCoreSharedBus(t *testing.T) {
	s := NewSoC(BoomConfig(), 2, nil, nil)
	s.Reset()
	// Both cores run load-heavy programs over the shared D-channel.
	p0 := isa.NewProgram(0x1000,
		isa.Instr{Op: isa.LUI, Rd: 1, Imm: 16},
		isa.Load(isa.LD, 2, 1, 0),
		isa.Load(isa.LD, 3, 1, 4096),
		isa.Instr{Op: isa.ECALL},
	)
	p1 := isa.NewProgram(0x3000,
		isa.Instr{Op: isa.LUI, Rd: 1, Imm: 32},
		isa.Load(isa.LD, 2, 1, 0),
		isa.Load(isa.LD, 3, 1, 4096),
		isa.Instr{Op: isa.ECALL},
	)
	s.Cores[0].LoadProgram(p0)
	s.Cores[1].LoadProgram(p1)
	s.Run()
	if !s.Cores[0].Halted() || !s.Cores[1].Halted() {
		t.Fatal("dual-core run did not halt")
	}
	// Both cores' icache+dcache miss traffic used the shared channel.
	c0 := s.Bus.Grants[0] + s.Bus.Grants[1] + s.Bus.Grants[2]
	c1 := s.Bus.Grants[3] + s.Bus.Grants[4] + s.Bus.Grants[5]
	if c0 == 0 || c1 == 0 {
		t.Errorf("bus grants per core = %d, %d: both must be non-zero", c0, c1)
	}
}

func TestConfigTables(t *testing.T) {
	b, n := BoomConfig(), NutshellConfig()
	if b.ROBEntries != 96 || b.FetchWidth != 8 || b.NumMSHRs != 2 {
		t.Errorf("BOOM config drifted from Table 1: %+v", b)
	}
	if n.ROBEntries != 32 || n.FetchWidth != 2 || !n.EarlyExceptionDetect {
		t.Errorf("NutShell config drifted from Table 1: %+v", n)
	}
	if b.PipelinedMul == false || n.PipelinedMul == true {
		t.Error("multiplier structure wrong (S13 needs shared MDU on NutShell only)")
	}
}

// Regression: an instruction that reads the register it also writes
// (x2 = x2 / x3) must forward from the older in-flight producer, not the
// committed register file.
func TestCoreReadModifyWriteForwarding(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.I(isa.ADDI, 2, 0, 100),
		isa.I(isa.ADDI, 3, 0, 5),
		isa.R(isa.DIV, 2, 2, 3),  // x2 = 100/5 = 20
		isa.R(isa.DIV, 2, 2, 3),  // x2 = 20/5 = 4
		isa.I(isa.ADDI, 2, 2, 1), // x2 = 5
	)
	if got := s.Cores[0].Reg(2); got != 5 {
		t.Errorf("x2 = %d, want 5", got)
	}
}

func TestPerfCounters(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.I(isa.ADDI, 1, 0, 5),
		isa.R(isa.MUL, 2, 1, 1),
		isa.R(isa.DIV, 3, 2, 1),
		isa.Load(isa.LD, 4, 1, 0),
		isa.Branch(isa.BNE, 1, 0, 8), // taken
		isa.I(isa.ADDI, 5, 0, 1),     // squashed
		isa.I(isa.ADDI, 6, 0, 2),
	)
	p := s.Cores[0].Perf()
	if p.Committed == 0 || p.Cycles == 0 {
		t.Fatalf("counters empty: %+v", p)
	}
	if p.IssuedMul != 1 || p.IssuedDiv != 1 || p.IssuedMem != 1 {
		t.Errorf("issue classes: mul=%d div=%d mem=%d", p.IssuedMul, p.IssuedDiv, p.IssuedMem)
	}
	if p.BranchFlushes != 1 {
		t.Errorf("BranchFlushes = %d, want 1", p.BranchFlushes)
	}
	if p.Squashed == 0 {
		t.Error("taken branch squashed nothing")
	}
	if p.Dispatched < p.Committed {
		t.Error("dispatched < committed")
	}
	if p.IPC() <= 0 || p.IPC() > float64(BoomConfig().CoreWidth) {
		t.Errorf("IPC = %.2f implausible", p.IPC())
	}
	if p.String() == "" {
		t.Error("empty report")
	}
	// Reset clears counters.
	s.Reset()
	if s.Cores[0].Perf().Committed != 0 {
		t.Error("Reset kept counters")
	}
}

// §8.6 mitigation: a coarse timer quantizes rdcycle results.
func TestTimerGranularityMitigation(t *testing.T) {
	cfg := BoomConfig()
	cfg.TimerGranularity = 64
	s := NewSoC(cfg, 1, nil, nil)
	runProgram(t, s,
		isa.Instr{Op: isa.RDCYCLE, Rd: 1},
		isa.R(isa.DIV, 2, 1, 1),
		isa.R(isa.ADD, 3, 2, 0),
		isa.Instr{Op: isa.RDCYCLE, Rd: 4},
	)
	c := s.Cores[0]
	if c.Reg(1)%64 != 0 || c.Reg(4)%64 != 0 {
		t.Errorf("rdcycle not quantized: %d, %d", c.Reg(1), c.Reg(4))
	}
}

// §8.6 mitigation: per-requester D-channel lanes remove cross-requester
// contention while preserving same-lane serialization.
func TestPartitionedDChannel(t *testing.T) {
	n := hdl.NewNetlist("t")
	p := NewPulser()
	p.Drain(0)
	d := NewDChannel(n.Module("tilelink"), p, 8, []string{"a", "b"})
	d.SetPartitioned(true)
	// Cross-requester: b is NOT delayed behind a's read.
	if done := d.RequestRead(0, 1, 10); done != 18 {
		t.Fatalf("read done = %d", done)
	}
	if done := d.RequestWrite(1, 2, 12); done != 13 {
		t.Errorf("partitioned writeback done = %d, want 13 (no cross-lane wait)", done)
	}
	// Same-lane: a second read on lane 0 still queues.
	if done := d.RequestRead(0, 3, 12); done != 26 {
		t.Errorf("same-lane read done = %d, want 26", done)
	}
	d.Reset()
	if done := d.RequestRead(0, 1, 0); done != 8 {
		t.Errorf("post-reset read done = %d, want 8", done)
	}
}

// S14 mechanism: the single-ported ICache delays fetch reads landing on a
// refill write's occupancy window.
func TestSinglePortICacheReservation(t *testing.T) {
	n := hdl.NewNetlist("t")
	p := NewPulser()
	p.Drain(0)
	bus := NewDChannel(n.Module("tilelink"), p, 8, []string{"rd", "wb"})
	c := NewCache(n.Module("frontend").Child("icache"), p, CacheParams{
		Name: "i", Sets: 4, Ways: 2, HitLatency: 1, L2Latency: 10,
		Bus: bus, ReadSrc: 0, WBSrc: 0, SinglePort: true, Ports: 2,
	})
	r := c.Access(0, 0x1000, false, 0) // miss; refill write reserves the port
	refillAt := r.Ready - 1            // fill completes at ready-hitLat
	// A fetch read landing exactly on the refill write is pushed out.
	r2 := c.Access(0, 0x2000, false, refillAt)
	bus2 := NewDChannel(n.Module("tilelink2"), p, 8, []string{"rd", "wb"})
	plain := NewCache(n.Module("frontend").Child("icache2"), p, CacheParams{
		Name: "i2", Sets: 4, Ways: 2, HitLatency: 1, L2Latency: 10,
		Bus: bus2, ReadSrc: 0, WBSrc: 0, SinglePort: false, Ports: 2,
	})
	plain.Access(0, 0x1000, false, 0)
	r2p := plain.Access(0, 0x2000, false, refillAt)
	if r2.Ready <= r2p.Ready {
		t.Errorf("single-port access ready %d, dual-port %d: no port contention",
			r2.Ready, r2p.Ready)
	}
}

// S6 mechanism: a hit on a line whose refill is in flight goes through the
// read line buffer's single port.
func TestHitUnderFillUsesReadLineBuffer(t *testing.T) {
	c, _ := newTestCache(t, 2, true)
	c.Access(0, 0x1000, false, 0)      // refill in flight
	r := c.Access(0, 0x1008, false, 2) // same line, under fill
	if !r.Hit {
		t.Fatal("under-fill access did not hit")
	}
	// A second under-fill access in the same cycle serializes behind the
	// first on the line buffer port.
	r2 := c.Access(1, 0x1010, true, 2)
	if r2.Ready <= r.Ready {
		t.Errorf("simultaneous under-fill accesses not serialized: %d vs %d", r2.Ready, r.Ready)
	}
}

func TestCoreShiftExtensions(t *testing.T) {
	s := testSoC(BoomConfig())
	runProgram(t, s,
		isa.I(isa.ADDI, 1, 0, -8), // x1 = -8 (sign-extended)
		isa.I(isa.SRAI, 2, 1, 1),  // -4
		isa.I(isa.SRLI, 3, 1, 60), // logical: 0xF
		isa.I(isa.SLLI, 4, 1, 2),  // -32
		isa.R(isa.SLTU, 5, 0, 1),  // 0 < huge-unsigned = 1
		isa.I(isa.ADDI, 6, 0, 2),
		isa.R(isa.SRA, 7, 1, 6), // -8 >> 2 = -2
	)
	c := s.Cores[0]
	if got := int64(c.Reg(2)); got != -4 {
		t.Errorf("srai = %d, want -4", got)
	}
	if c.Reg(3) != 0xF {
		t.Errorf("srli = %#x, want 0xF", c.Reg(3))
	}
	if got := int64(c.Reg(4)); got != -32 {
		t.Errorf("slli = %d, want -32", got)
	}
	if c.Reg(5) != 1 {
		t.Errorf("sltu = %d, want 1", c.Reg(5))
	}
	if got := int64(c.Reg(7)); got != -2 {
		t.Errorf("sra = %d, want -2", got)
	}
}
