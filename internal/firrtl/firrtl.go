// Package firrtl parses a FIRRTL-style text subset into hdl netlists and
// prints netlists back to that form.
//
// The Sonar paper performs its analyses on FIRRTL, the intermediate
// representation between Chisel and Verilog, because it "preserves rich
// structural details of the design". This package implements the slice of
// FIRRTL that those analyses consume:
//
//	circuit Top :
//	  module Top :
//	    input io_req_valid : UInt<1>
//	    input io_req_bits_addr : UInt<32>
//	    output ldq_stq_idx : UInt<5>
//	    wire w : UInt<5>
//	    reg r : UInt<5>
//	    node sel0 = or(a, b)
//	    ldq_stq_idx <= mux(sel0, w, mux(sel1, r, UInt<5>(0)))
//	    w <= io_req_bits_addr
//	    skip
//
// Supported statements: circuit/module headers, port/wire/reg declarations
// with UInt widths, node definitions, connects (<=), skip, and ";" comments.
// Expressions: identifiers, UInt literals, mux(sel, tval, fval) with
// arbitrary nesting, and generic primitive operations op(args...) which are
// recorded as fan-in ("sources") for validity tracing. Module instances are
// not supported; each module's signals live under its own name path.
package firrtl

import (
	"fmt"
	"strconv"
	"strings"

	"sonar/internal/hdl"
	"sonar/internal/hdl/check"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int    // 1-based source line of the error
	Msg  string // what went wrong
}

// Error formats the error with its line number.
func (e *ParseError) Error() string {
	return fmt.Sprintf("firrtl: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	net  *hdl.Netlist
	mod  *hdl.Module
	line int
	// tmp counters for anonymous wires/constants, per module
	nTmp   int
	nConst int
}

// ParseChecked parses FIRRTL-subset source text and then structurally
// verifies the resulting netlist under the strict profile (package check):
// combinational cycles, undriven consumed wires, double drivers, dangling
// selects, and dense-id violations all fail. A FIRRTL circuit is a closed
// design, so unlike the externally-poked model netlists there is no
// legitimate reason for a consumed wire to lack a driver.
func ParseChecked(src string) (*hdl.Netlist, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := check.Check(n, check.Options{}).Err(); err != nil {
		return nil, err
	}
	return n, nil
}

// Parse parses FIRRTL-subset source text into a netlist.
func Parse(src string) (*hdl.Netlist, error) {
	p := &parser{}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		p.line = i + 1
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.stmt(line); err != nil {
			return nil, err
		}
	}
	if p.net == nil {
		return nil, &ParseError{Line: 0, Msg: "no circuit declaration"}
	}
	return p.net, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) stmt(line string) error {
	switch {
	case strings.HasPrefix(line, "circuit "):
		name := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "circuit ")), ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return p.errf("circuit with no name")
		}
		if p.net != nil {
			return p.errf("multiple circuit declarations")
		}
		p.net = hdl.NewNetlist(name)
		return nil
	case strings.HasPrefix(line, "module "):
		if p.net == nil {
			return p.errf("module before circuit")
		}
		name := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "module ")), ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return p.errf("module with no name")
		}
		p.mod = p.net.Module(name)
		p.nTmp, p.nConst = 0, 0
		return nil
	case line == "skip":
		return nil
	}
	if p.mod == nil {
		return p.errf("statement outside module: %q", line)
	}
	for _, kw := range []string{"input", "output", "wire", "reg"} {
		if strings.HasPrefix(line, kw+" ") {
			return p.decl(kw, strings.TrimPrefix(line, kw+" "))
		}
	}
	if strings.HasPrefix(line, "node ") {
		rest := strings.TrimPrefix(line, "node ")
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return p.errf("node without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validIdent(name) {
			return p.errf("bad node name %q", name)
		}
		return p.defineNode(name, strings.TrimSpace(rest[eq+1:]))
	}
	if idx := strings.Index(line, "<="); idx >= 0 {
		lhs := strings.TrimSpace(line[:idx])
		rhs := strings.TrimSpace(line[idx+2:])
		return p.connect(lhs, rhs)
	}
	return p.errf("unrecognized statement %q", line)
}

// decl parses "name : UInt<W>" with an optional ", clock" tail for regs.
func (p *parser) decl(kw, rest string) error {
	if idx := strings.Index(rest, ","); idx >= 0 {
		rest = rest[:idx] // drop reg clock spec
	}
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return p.errf("%s declaration missing ':'", kw)
	}
	name := strings.TrimSpace(rest[:colon])
	if !validIdent(name) {
		return p.errf("bad %s name %q", kw, name)
	}
	width, err := p.parseType(strings.TrimSpace(rest[colon+1:]))
	if err != nil {
		return err
	}
	switch kw {
	case "input":
		p.mod.Input(name, width)
	case "output":
		p.mod.Output(name, width)
	case "wire":
		p.mod.Wire(name, width)
	case "reg":
		p.mod.Reg(name, width)
	}
	return nil
}

// parseType parses "UInt<W>" (also accepts "Clock" as width 1).
func (p *parser) parseType(s string) (int, error) {
	if s == "Clock" {
		return 1, nil
	}
	if !strings.HasPrefix(s, "UInt<") || !strings.HasSuffix(s, ">") {
		return 0, p.errf("unsupported type %q", s)
	}
	w, err := strconv.Atoi(s[len("UInt<") : len(s)-1])
	if err != nil || w < 1 || w > 64 {
		return 0, p.errf("bad width in %q", s)
	}
	return w, nil
}

func (p *parser) defineNode(name, expr string) error {
	sig, err := p.expr(expr, name)
	if err != nil {
		return err
	}
	// If expr already produced a signal with exactly this target name (a mux
	// lowered into it), we are done. Otherwise alias: create the node wire
	// and record the source.
	if sig.Local() == name {
		return nil
	}
	node := p.mod.Wire(name, sig.Width())
	node.AddSource(sig)
	return nil
}

func (p *parser) connect(lhs, rhs string) error {
	dst, ok := p.net.Signal(p.qualify(lhs))
	if !ok {
		return p.errf("connect to undeclared signal %q", lhs)
	}
	if strings.HasPrefix(rhs, "mux(") {
		_, err := p.parseMux(rhs, dst)
		return err
	}
	src, err := p.expr(rhs, "")
	if err != nil {
		return err
	}
	dst.AddSource(src)
	return nil
}

// expr evaluates an expression, returning the signal carrying its value.
// If into is non-empty and the expression is a mux, the mux output wire is
// created with that name.
func (p *parser) expr(s string, into string) (*hdl.Signal, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "mux("):
		var dst *hdl.Signal
		if into != "" {
			// Width is unknown until operands parse; create after.
			return p.parseMuxNamed(s, into)
		}
		return p.parseMux(s, dst)
	case strings.HasPrefix(s, "UInt<"):
		return p.literal(s)
	case strings.Contains(s, "("):
		return p.primop(s)
	default:
		if !validIdent(s) {
			return nil, p.errf("bad expression %q", s)
		}
		sig, ok := p.net.Signal(p.qualify(s))
		if !ok {
			return nil, p.errf("reference to undeclared signal %q", s)
		}
		return sig, nil
	}
}

// parseMuxNamed lowers a mux expression into a freshly created wire named
// name within the current module.
func (p *parser) parseMuxNamed(s, name string) (*hdl.Signal, error) {
	sel, tv, fv, err := p.muxArgs(s)
	if err != nil {
		return nil, err
	}
	w := tv.Width()
	if fv.Width() > w {
		w = fv.Width()
	}
	out := p.mod.Wire(name, w)
	p.mod.MuxInto(out, sel, tv, fv)
	return out, nil
}

// parseMux lowers a mux expression. If dst is non-nil the mux drives dst,
// otherwise a temporary wire is created.
func (p *parser) parseMux(s string, dst *hdl.Signal) (*hdl.Signal, error) {
	sel, tv, fv, err := p.muxArgs(s)
	if err != nil {
		return nil, err
	}
	if dst == nil {
		p.nTmp++
		w := tv.Width()
		if fv.Width() > w {
			w = fv.Width()
		}
		dst = p.mod.Wire(fmt.Sprintf("_t%d", p.nTmp), w)
	}
	p.mod.MuxInto(dst, sel, tv, fv)
	return dst, nil
}

func (p *parser) muxArgs(s string) (sel, tv, fv *hdl.Signal, err error) {
	args, err := splitArgs(s[len("mux("):])
	if err != nil {
		return nil, nil, nil, p.errf("mux: %v", err)
	}
	if len(args) != 3 {
		return nil, nil, nil, p.errf("mux expects 3 arguments, got %d", len(args))
	}
	if sel, err = p.expr(args[0], ""); err != nil {
		return nil, nil, nil, err
	}
	if tv, err = p.expr(args[1], ""); err != nil {
		return nil, nil, nil, err
	}
	if fv, err = p.expr(args[2], ""); err != nil {
		return nil, nil, nil, err
	}
	return sel, tv, fv, nil
}

// primop handles primitive operations op(a, b, ...): a Prim node is
// created with the signal operands and integer parameters (e.g.
// bits(x, 3, 0)), the output width inferred per operation, and fan-in
// recorded for validity tracing. The levelized simulator evaluates the
// node with real semantics.
func (p *parser) primop(s string) (*hdl.Signal, error) {
	open := strings.Index(s, "(")
	op := s[:open]
	if !validIdent(op) {
		return nil, p.errf("bad operation %q", op)
	}
	args, err := splitArgs(s[open+1:])
	if err != nil {
		return nil, p.errf("%s: %v", op, err)
	}
	var sigs []*hdl.Signal
	var intParams []int64
	for _, a := range args {
		if n, errNum := strconv.ParseInt(strings.TrimSpace(a), 0, 64); errNum == nil {
			intParams = append(intParams, n)
			continue
		}
		sig, err := p.expr(a, "")
		if err != nil {
			return nil, err
		}
		sigs = append(sigs, sig)
	}
	p.nTmp++
	out := p.mod.Wire(fmt.Sprintf("_t%d", p.nTmp), hdl.PrimResultWidth(op, sigs, intParams))
	p.net.Prim(out, op, sigs, intParams)
	return out, nil
}

// literal parses UInt<W>(V) into a fresh constant signal.
func (p *parser) literal(s string) (*hdl.Signal, error) {
	gt := strings.Index(s, ">")
	if gt < 0 || gt+1 >= len(s) || s[gt+1] != '(' || !strings.HasSuffix(s, ")") {
		return nil, p.errf("bad literal %q", s)
	}
	width, err := p.parseType(s[:gt+1])
	if err != nil {
		return nil, err
	}
	val, err := strconv.ParseUint(strings.TrimSpace(s[gt+2:len(s)-1]), 0, 64)
	if err != nil {
		return nil, p.errf("bad literal value in %q", s)
	}
	p.nConst++
	return p.mod.Const(fmt.Sprintf("_c%d", p.nConst), width, val), nil
}

func (p *parser) qualify(name string) string {
	return p.mod.Path() + "." + name
}

// splitArgs splits "a, mux(b, c, d), e)" — the contents of a call up to its
// closing paren — into top-level comma-separated arguments.
func splitArgs(s string) ([]string, error) {
	var args []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '<':
			depth++
		case '>':
			depth--
		case ')':
			if depth == 0 {
				if strings.TrimSpace(s[start:i]) != "" {
					args = append(args, strings.TrimSpace(s[start:i]))
				}
				if strings.TrimSpace(s[i+1:]) != "" {
					return nil, fmt.Errorf("trailing text after ')': %q", s[i+1:])
				}
				return args, nil
			}
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return nil, fmt.Errorf("missing ')'")
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
