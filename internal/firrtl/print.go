package firrtl

import (
	"fmt"
	"sort"
	"strings"

	"sonar/internal/hdl"
)

// Print renders a netlist in the FIRRTL-style text form accepted by Parse.
//
// Hierarchical module paths are flattened into module names by replacing
// "." with "_" (the subset has no instance statements). Signals whose local
// names collide after flattening keep their full dotted name mangled the
// same way, so Print(Parse(x)) round-trips for single-level designs.
func Print(n *hdl.Netlist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s :\n", n.Name())

	type modInfo struct {
		path    string
		signals []*hdl.Signal
		muxes   []*hdl.Mux
		prims   []*hdl.Prim
	}
	mods := make(map[string]*modInfo)
	var order []string
	getMod := func(path string) *modInfo {
		if m, ok := mods[path]; ok {
			return m
		}
		m := &modInfo{path: path}
		mods[path] = m
		order = append(order, path)
		return m
	}
	for _, s := range n.Signals() {
		getMod(s.ModulePath()).signals = append(getMod(s.ModulePath()).signals, s)
	}
	for _, m := range n.Muxes() {
		getMod(m.ModulePath()).muxes = append(getMod(m.ModulePath()).muxes, m)
	}
	for _, p := range n.Prims() {
		mi := getMod(p.Out.ModulePath())
		mi.prims = append(mi.prims, p)
	}
	sort.Strings(order)

	for _, path := range order {
		mi := mods[path]
		name := flatten(path)
		if name == "" {
			name = n.Name()
		}
		fmt.Fprintf(&b, "  module %s :\n", name)
		muxOuts := make(map[*hdl.Signal]bool)
		for _, mx := range mi.muxes {
			muxOuts[mx.Out] = true
		}
		primOutSet := make(map[*hdl.Signal]bool)
		for _, pr := range mi.prims {
			primOutSet[pr.Out] = true
		}
		for _, s := range mi.signals {
			if primOutSet[s] && s.Kind() == hdl.Wire {
				continue // declared by its node statement below
			}
			switch s.Kind() {
			case hdl.Const:
				continue // constants are printed inline at use sites
			case hdl.Input:
				fmt.Fprintf(&b, "    input %s : UInt<%d>\n", s.Local(), s.Width())
			case hdl.Output:
				fmt.Fprintf(&b, "    output %s : UInt<%d>\n", s.Local(), s.Width())
			case hdl.Reg:
				fmt.Fprintf(&b, "    reg %s : UInt<%d>\n", s.Local(), s.Width())
			default:
				fmt.Fprintf(&b, "    wire %s : UInt<%d>\n", s.Local(), s.Width())
			}
		}
		for _, pr := range mi.prims {
			args := make([]string, 0, len(pr.Args)+len(pr.IntParams))
			for _, a := range pr.Args {
				args = append(args, ref(a))
			}
			for _, ip := range pr.IntParams {
				args = append(args, fmt.Sprint(ip))
			}
			fmt.Fprintf(&b, "    node %s = %s(%s)\n", pr.Out.Local(), pr.Op, strings.Join(args, ", "))
		}
		for _, mx := range mi.muxes {
			fmt.Fprintf(&b, "    %s <= mux(%s, %s, %s)\n",
				ref(mx.Out), ref(mx.Sel), ref(mx.TVal), ref(mx.FVal))
		}
		// Emit plain source connections for non-mux/prim-driven signals so
		// the fan-in used by validity tracing survives a round trip.
		for _, s := range mi.signals {
			if muxOuts[s] || primOutSet[s] || s.Kind() == hdl.Const {
				continue
			}
			for _, src := range s.Sources() {
				fmt.Fprintf(&b, "    %s <= %s\n", ref(s), ref(src))
			}
		}
	}
	return b.String()
}

func ref(s *hdl.Signal) string {
	if s.IsConst() {
		return fmt.Sprintf("UInt<%d>(%d)", s.Width(), s.Value())
	}
	return s.Local()
}

func flatten(path string) string {
	return strings.ReplaceAll(path, ".", "_")
}
