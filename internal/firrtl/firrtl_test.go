package firrtl

import (
	"strings"
	"testing"

	"sonar/internal/hdl"
)

// Figure 3 of the paper: the ldq_stq_idx contention point in BOOM's LSU,
// an n:1 selection implemented as cascaded 2:1 MUXes.
const fig3 = `
circuit Lsu :
  module Lsu :
    input io_ldq_valid : UInt<1>
    input io_ldq_bits_idx : UInt<5>
    input io_stq_valid : UInt<1>
    input io_stq_bits_idx : UInt<5>
    input io_fwd_valid : UInt<1>
    input io_fwd_bits_idx : UInt<5>
    input sel_ldq : UInt<1>
    input sel_stq : UInt<1>
    output ldq_stq_idx : UInt<5>
    ldq_stq_idx <= mux(sel_ldq, io_ldq_bits_idx, mux(sel_stq, io_stq_bits_idx, io_fwd_bits_idx))
`

func TestParseFigure3(t *testing.T) {
	n, err := Parse(fig3)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "Lsu" {
		t.Errorf("circuit name = %q, want Lsu", n.Name())
	}
	if n.NumMuxes() != 2 {
		t.Fatalf("NumMuxes = %d, want 2 (one cascade)", n.NumMuxes())
	}
	out := n.MustSignal("Lsu.ldq_stq_idx")
	root, ok := n.Driver(out)
	if !ok {
		t.Fatal("ldq_stq_idx not driven by a mux")
	}
	if root.Sel.Local() != "sel_ldq" {
		t.Errorf("root select = %q, want sel_ldq", root.Sel.Local())
	}
	inner, ok := n.Driver(root.FVal)
	if !ok {
		t.Fatal("root FVal not driven by the inner mux")
	}
	if inner.TVal.Local() != "io_stq_bits_idx" {
		t.Errorf("inner TVal = %q, want io_stq_bits_idx", inner.TVal.Local())
	}
}

func TestParseDeclarations(t *testing.T) {
	src := `
circuit C :
  module C :
    input a : UInt<8>
    output o : UInt<8>
    wire w : UInt<4>
    reg r : UInt<16>, clock
    skip
    o <= a
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		kind  hdl.Kind
		width int
	}{
		{"C.a", hdl.Input, 8},
		{"C.o", hdl.Output, 8},
		{"C.w", hdl.Wire, 4},
		{"C.r", hdl.Reg, 16},
	}
	for _, c := range cases {
		s, ok := n.Signal(c.name)
		if !ok {
			t.Errorf("signal %s missing", c.name)
			continue
		}
		if s.Kind() != c.kind || s.Width() != c.width {
			t.Errorf("%s: kind=%v width=%d, want kind=%v width=%d",
				c.name, s.Kind(), s.Width(), c.kind, c.width)
		}
	}
	o := n.MustSignal("C.o")
	if len(o.Sources()) != 1 || o.Sources()[0].Local() != "a" {
		t.Errorf("o sources = %v, want [a]", o.Sources())
	}
}

func TestParseNodeWithPrimop(t *testing.T) {
	src := `
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    node x = or(a, b)
    node y = bits(x, 3, 0)
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	x := n.MustSignal("C.x")
	// x aliases a temporary carrying the or(); fan-in must reach a and b.
	seen := collectLeafSources(x)
	if !seen["C.a"] || !seen["C.b"] {
		t.Errorf("x fan-in = %v, want to include a and b", seen)
	}
	y := n.MustSignal("C.y")
	if len(collectLeafSources(y)) == 0 {
		t.Error("y has no traced fan-in")
	}
}

func collectLeafSources(s *hdl.Signal) map[string]bool {
	seen := make(map[string]bool)
	var walk func(*hdl.Signal)
	walk = func(sig *hdl.Signal) {
		for _, src := range sig.Sources() {
			if len(src.Sources()) == 0 {
				seen[src.Name()] = true
			} else {
				walk(src)
			}
		}
	}
	walk(s)
	return seen
}

func TestParseLiteralsAndComments(t *testing.T) {
	src := `
circuit C : ; the circuit
  module C :
    input sel : UInt<1> ; select
    output o : UInt<8>
    o <= mux(sel, UInt<8>(200), UInt<8>(3))
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	o := n.MustSignal("C.o")
	mx, ok := n.Driver(o)
	if !ok {
		t.Fatal("o not mux-driven")
	}
	if !mx.TVal.IsConst() || mx.TVal.Value() != 200 {
		t.Errorf("TVal = %v (%d), want const 200", mx.TVal.IsConst(), mx.TVal.Value())
	}
	if !mx.FVal.IsConst() || mx.FVal.Value() != 3 {
		t.Errorf("FVal = %v (%d), want const 3", mx.FVal.IsConst(), mx.FVal.Value())
	}
}

func TestParseMultipleModules(t *testing.T) {
	src := `
circuit Top :
  module Top :
    input a : UInt<1>
  module Sub :
    input a : UInt<1>
    output o : UInt<1>
    o <= a
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Signal("Top.a"); !ok {
		t.Error("Top.a missing")
	}
	if _, ok := n.Signal("Sub.a"); !ok {
		t.Error("Sub.a missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no circuit", "module M :\n"},
		{"module before circuit", "module M :\n  input a : UInt<1>\n"},
		{"stmt outside module", "circuit C :\n  input a : UInt<1>\n"},
		{"bad width", "circuit C :\n  module C :\n    input a : UInt<0>\n"},
		{"huge width", "circuit C :\n  module C :\n    input a : UInt<99>\n"},
		{"undeclared ref", "circuit C :\n  module C :\n    output o : UInt<1>\n    o <= ghost\n"},
		{"mux arity", "circuit C :\n  module C :\n    input a : UInt<1>\n    output o : UInt<1>\n    o <= mux(a, a)\n"},
		{"unclosed paren", "circuit C :\n  module C :\n    input a : UInt<1>\n    node x = or(a\n"},
		{"garbage", "circuit C :\n  module C :\n    widget a : UInt<1>\n"},
		{"empty source", ""},
		{"missing colon decl", "circuit C :\n  module C :\n    input a UInt<1>\n"},
		{"node without eq", "circuit C :\n  module C :\n    node x or(a)\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("circuit C :\n  module C :\n    widget a : UInt<1>\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("error text %q lacks line info", pe.Error())
	}
}

func TestPrintRoundTrip(t *testing.T) {
	n1, err := Parse(fig3)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(n1)
	n2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing printed form: %v\n%s", err, text)
	}
	if n2.NumMuxes() != n1.NumMuxes() {
		t.Errorf("round trip mux count = %d, want %d", n2.NumMuxes(), n1.NumMuxes())
	}
	out := n2.MustSignal("Lsu.ldq_stq_idx")
	if _, ok := n2.Driver(out); !ok {
		t.Error("round trip lost the mux driver of ldq_stq_idx")
	}
}

func TestPrintInlinesConstants(t *testing.T) {
	n := hdl.NewNetlist("K")
	m := n.Module("K")
	sel := m.Input("sel", 1)
	a := m.Const("ka", 8, 7)
	b := m.Const("kb", 8, 9)
	out := m.Output("o", 8)
	m.MuxInto(out, sel, a, b)
	text := Print(n)
	if !strings.Contains(text, "mux(sel, UInt<8>(7), UInt<8>(9))") {
		t.Errorf("constants not inlined:\n%s", text)
	}
	if strings.Contains(text, "wire ka") || strings.Contains(text, "const") {
		t.Errorf("constants should not be declared:\n%s", text)
	}
}

func TestParseNestedMuxTemporariesAreCascadable(t *testing.T) {
	src := `
circuit C :
  module C :
    input s0 : UInt<1>
    input s1 : UInt<1>
    input s2 : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    input c : UInt<8>
    input d : UInt<8>
    output o : UInt<8>
    o <= mux(s0, a, mux(s1, b, mux(s2, c, d)))
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumMuxes() != 3 {
		t.Fatalf("NumMuxes = %d, want 3", n.NumMuxes())
	}
	// Exactly one mux output (the root driving o) is not consumed by
	// another mux.
	roots := 0
	for _, mx := range n.Muxes() {
		if !n.IsMuxDataInput(mx.Out) {
			roots++
			if mx.Out.Local() != "o" {
				t.Errorf("root out = %q, want o", mx.Out.Local())
			}
		}
	}
	if roots != 1 {
		t.Errorf("roots = %d, want 1", roots)
	}
}

func TestPrintRoundTripWithPrims(t *testing.T) {
	src := `
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    input sel : UInt<1>
    output o : UInt<9>
    node sum = add(a, b)
    node nib = bits(a, 3, 0)
    o <= mux(sel, sum, nib)
`
	n1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(n1)
	n2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(n2.Prims()) != len(n1.Prims()) {
		t.Fatalf("prims %d != %d:\n%s", len(n2.Prims()), len(n1.Prims()), text)
	}
	// Semantics must survive: integer params included.
	foundBits := false
	for _, p := range n2.Prims() {
		if p.Op == "bits" {
			foundBits = true
			if len(p.IntParams) != 2 || p.IntParams[0] != 3 || p.IntParams[1] != 0 {
				t.Errorf("bits params lost: %v", p.IntParams)
			}
		}
	}
	if !foundBits {
		t.Error("bits prim lost in round trip")
	}
}
