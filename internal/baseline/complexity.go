package baseline

import (
	"fmt"
	"time"

	"sonar/internal/hdl"
	"sonar/internal/trace"
)

// ComplexityPoint is one measurement of instrumentation-analysis cost at a
// given module size.
type ComplexityPoint struct {
	// Statements is the number of FIRRTL-level statements (MUXes) in the
	// module.
	Statements int
	// SonarNs is the wall time of Sonar's linear contention-state
	// identification over the module.
	SonarNs int64
	// SpecDoctorNs is the wall time of the SpecDoctor-style quadratic
	// per-module dependency pass over the same module.
	SpecDoctorNs int64
}

// buildChainModule elaborates a module of n MUX statements shaped like real
// datapath code: a mix of independent selects with valid-carrying requests.
func buildChainModule(n int) *hdl.Netlist {
	net := hdl.NewNetlist("M")
	mod := net.Module("m")
	for i := 0; i < n; i++ {
		tag := fmt.Sprintf("_%d", i)
		sel := mod.Wire("sel"+tag, 1)
		a := mod.Wire("io_a"+tag+"_bits", 16)
		mod.Wire("io_a"+tag+"_valid", 1)
		b := mod.Wire("io_b"+tag+"_bits", 16)
		mod.Wire("io_b"+tag+"_valid", 1)
		mod.Mux("out"+tag, sel, a, b)
	}
	return net
}

// specDoctorPass emulates SpecDoctor's per-module instrumentation: for each
// statement it scans every other statement in the module for dependencies
// (the O(n²) behaviour the paper reports makes it "impractical for
// large-scale designs", §8.3.4). It returns a checksum so the work cannot
// be optimized away.
func specDoctorPass(net *hdl.Netlist) int {
	muxes := net.Muxes()
	deps := 0
	for _, m := range muxes {
		for _, other := range muxes {
			if m == other {
				continue
			}
			if other.Out == m.TVal || other.Out == m.FVal || other.Out == m.Sel ||
				m.Out == other.TVal || m.Out == other.FVal || m.Out == other.Sel {
				deps++
			}
		}
	}
	return deps
}

// MeasureComplexity measures both instrumentation passes across module
// sizes. Sonar's bottom-up tracing touches each MUX a bounded number of
// times (linear); the SpecDoctor-style pass is quadratic.
func MeasureComplexity(sizes []int) []ComplexityPoint {
	out := make([]ComplexityPoint, 0, len(sizes))
	for _, n := range sizes {
		net := buildChainModule(n)
		t0 := time.Now()
		trace.Analyze(net)
		sonarNs := time.Since(t0).Nanoseconds()
		t1 := time.Now()
		specDoctorPass(net)
		specNs := time.Since(t1).Nanoseconds()
		out = append(out, ComplexityPoint{Statements: n, SonarNs: sonarNs, SpecDoctorNs: specNs})
	}
	return out
}
