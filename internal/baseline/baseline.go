// Package baseline implements the comparators Sonar is evaluated against:
// plain random testing (Figure 8), a SpecDoctor-style coverage-guided
// fuzzer (Figure 11), and the two instrumentation cost models behind the
// paper's O(n) vs O(n²) scalability argument (§8.3.4).
package baseline

import (
	"math/rand"

	"sonar/internal/detect"
	"sonar/internal/fuzz"
)

// RunSpecDoctor runs a SpecDoctor-style campaign: testcases are retained
// when they reach new coverage (newly triggered contention points stand in
// for SpecDoctor's transient-path coverage), and mutation is random — there
// is no contention-state feedback and no directed mutation. The paper finds
// Sonar triggers 2.13x more new contention points under equal iterations.
func RunSpecDoctor(d *fuzz.DUT, iterations int, seed int64) *fuzz.Stats {
	rng := rand.New(rand.NewSource(seed))
	var corpus []*fuzz.Seed
	st := &fuzz.Stats{TriggeredPoints: make(map[int]bool)}

	for it := 1; it <= iterations; it++ {
		var tc *fuzz.Testcase
		if len(corpus) > 0 && rng.Float64() < 0.7 {
			tc = fuzz.MutateRandom(corpus[rng.Intn(len(corpus))], rng)
		} else {
			tc = fuzz.Generate(rng, false)
		}
		exA := d.Execute(tc, 0)
		exB := d.Execute(tc, 1)
		st.ExecutedCycles += exA.Cycles + exB.Cycles

		newPts := 0
		for _, ex := range []*fuzz.Execution{exA, exB} {
			for _, id := range ex.Snap.Triggered() {
				if !st.TriggeredPoints[id] {
					st.TriggeredPoints[id] = true
					newPts++
				}
			}
		}
		// Coverage feedback: retain on new coverage only.
		if newPts > 0 {
			corpus = append(corpus, &fuzz.Seed{TC: tc})
		}
		cum := 0
		if len(st.PerIteration) > 0 {
			cum = st.PerIteration[len(st.PerIteration)-1].CumTimingDiffs
		}
		if f := detect.Analyze(exA.Log, exB.Log, exA.Snap, exB.Snap); f != nil {
			cum++
		}
		st.PerIteration = append(st.PerIteration, fuzz.IterStats{
			Iteration:      it,
			NewPoints:      newPts,
			CumPoints:      len(st.TriggeredPoints),
			CumTimingDiffs: cum,
		})
	}
	st.CorpusSize = len(corpus)
	return st
}
