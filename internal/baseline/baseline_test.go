package baseline

import (
	"testing"

	"sonar/internal/fuzz"
	"sonar/internal/uarch"
)

func TestSpecDoctorCampaignRuns(t *testing.T) {
	d := fuzz.NewDUT(uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil))
	st := RunSpecDoctor(d, 10, 1)
	if len(st.PerIteration) != 10 {
		t.Fatalf("iterations = %d", len(st.PerIteration))
	}
	last := 0
	for _, it := range st.PerIteration {
		if it.CumPoints < last {
			t.Fatal("cumulative coverage decreased")
		}
		last = it.CumPoints
	}
	if last == 0 {
		t.Error("SpecDoctor baseline triggered nothing")
	}
}

func TestSpecDoctorReproducible(t *testing.T) {
	a := RunSpecDoctor(fuzz.NewDUT(uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil)), 6, 3)
	b := RunSpecDoctor(fuzz.NewDUT(uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil)), 6, 3)
	for i := range a.PerIteration {
		if a.PerIteration[i] != b.PerIteration[i] {
			t.Fatalf("iteration %d differs", i)
		}
	}
}

func TestMeasureComplexityShape(t *testing.T) {
	// The quadratic pass must blow up much faster than the linear one: at
	// 8x the statements, SpecDoctor-style cost grows ~64x while Sonar's
	// grows ~8x. Wall-clock measurements are noisy under load, so take the
	// best of three attempts before failing.
	for attempt := 0; attempt < 3; attempt++ {
		pts := MeasureComplexity([]int{500, 4000})
		if len(pts) != 2 {
			t.Fatal("missing points")
		}
		sonarGrowth := float64(pts[1].SonarNs) / float64(pts[0].SonarNs+1)
		specGrowth := float64(pts[1].SpecDoctorNs) / float64(pts[0].SpecDoctorNs+1)
		if specGrowth > sonarGrowth {
			return
		}
		if attempt == 2 {
			t.Errorf("SpecDoctor growth %.1fx not worse than Sonar %.1fx", specGrowth, sonarGrowth)
		}
	}
}

func TestSpecDoctorPassCountsDependencies(t *testing.T) {
	net := buildChainModule(10)
	if got := specDoctorPass(net); got != 0 {
		// Independent selects share no wires: zero dependencies.
		t.Errorf("deps = %d, want 0", got)
	}
}
