package sim

import (
	"strings"
	"testing"

	"sonar/internal/firrtl"
	"sonar/internal/hdl"
)

func mustParse(t *testing.T, src string) *hdl.Netlist {
	t.Helper()
	n, err := firrtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEvalCascadedMux(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input s0 : UInt<1>
    input s1 : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    input c : UInt<8>
    output o : UInt<8>
    o <= mux(s0, a, mux(s1, b, c))
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(s.Poke("C.a", 10))
	must(s.Poke("C.b", 20))
	must(s.Poke("C.c", 30))
	s.Eval()
	if v, _ := s.Peek("C.o"); v != 30 {
		t.Errorf("no selects: o = %d, want 30", v)
	}
	must(s.Poke("C.s1", 1))
	s.Eval()
	if v, _ := s.Peek("C.o"); v != 20 {
		t.Errorf("s1: o = %d, want 20", v)
	}
	must(s.Poke("C.s0", 1))
	s.Eval()
	if v, _ := s.Peek("C.o"); v != 10 {
		t.Errorf("s0 priority: o = %d, want 10", v)
	}
}

func TestBufferIsORofSources(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input a : UInt<1>
    input b : UInt<1>
    wire v : UInt<1>
    v <= a
    v <= b
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, _ := s.Peek("C.v"); v != 0 {
		t.Errorf("0|0 = %d", v)
	}
	if err := s.Poke("C.b", 1); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, _ := s.Peek("C.v"); v != 1 {
		t.Errorf("0|1 = %d", v)
	}
}

func TestRegisterLatchesAtTick(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input d : UInt<8>
    reg r : UInt<8>
    r <= d
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.d", 42); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, _ := s.Peek("C.r"); v != 0 {
		t.Errorf("register transparent before Tick: r = %d", v)
	}
	s.Tick()
	if v, _ := s.Peek("C.r"); v != 42 {
		t.Errorf("after Tick: r = %d, want 42", v)
	}
	if n.Cycle() != 1 {
		t.Errorf("cycle = %d, want 1", n.Cycle())
	}
}

func TestRegisterPipelineDelay(t *testing.T) {
	// Two back-to-back registers: a value takes two ticks to traverse.
	n := mustParse(t, `
circuit C :
  module C :
    input d : UInt<8>
    reg r1 : UInt<8>
    reg r2 : UInt<8>
    r1 <= d
    r2 <= r1
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.d", 7); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	v1, _ := s.Peek("C.r1")
	v2, _ := s.Peek("C.r2")
	if v1 != 7 || v2 != 0 {
		t.Errorf("after 1 tick: r1=%d r2=%d, want 7 0", v1, v2)
	}
	s.Tick()
	if v, _ := s.Peek("C.r2"); v != 7 {
		t.Errorf("after 2 ticks: r2 = %d, want 7", v)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := hdl.NewNetlist("C")
	m := n.Module("C")
	sel := m.Input("sel", 1)
	a := m.Wire("a", 8)
	b := m.Wire("b", 8)
	m.MuxInto(a, sel, b, b)
	m.MuxInto(b, sel, a, a)
	if _, err := New(n); err == nil {
		t.Fatal("combinational cycle not detected")
	} else if !strings.Contains(err.Error(), "combinational cycle") {
		t.Errorf("error = %v", err)
	}
}

func TestCycleThroughRegisterIsLegal(t *testing.T) {
	// A counter-ish feedback loop through a register must be accepted.
	n := mustParse(t, `
circuit C :
  module C :
    input en : UInt<1>
    input nxt : UInt<8>
    reg r : UInt<8>
    r <= mux(en, nxt, r)
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.nxt", 5); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if v, _ := s.Peek("C.r"); v != 0 {
		t.Errorf("hold: r = %d, want 0", v)
	}
	if err := s.Poke("C.en", 1); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if v, _ := s.Peek("C.r"); v != 5 {
		t.Errorf("load: r = %d, want 5", v)
	}
}

func TestPokePeekErrors(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input sel : UInt<1>
    output o : UInt<8>
    o <= mux(sel, UInt<8>(1), UInt<8>(2))
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.ghost", 1); err == nil {
		t.Error("poke of missing signal succeeded")
	}
	if _, err := s.Peek("C.ghost"); err == nil {
		t.Error("peek of missing signal succeeded")
	}
	if err := s.Poke("C._c1", 5); err == nil {
		t.Error("poke of constant succeeded")
	}
}

func TestRunAdvancesClock(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input d : UInt<1>
    reg r : UInt<1>
    r <= d
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if n.Cycle() != 10 {
		t.Errorf("cycle = %d, want 10", n.Cycle())
	}
}

// Primitive operations parsed from FIRRTL evaluate with real semantics: a
// small comparator circuit computes eq/add/bits through the simulator.
func TestPrimopSemanticsEndToEnd(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input a : UInt<8>
    input b : UInt<8>
    node sum = add(a, b)
    node sameNibble = eq(bits(a, 3, 0), bits(b, 3, 0))
    output o : UInt<9>
    output m : UInt<1>
    o <= sum
    m <= sameNibble
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.a", 0x25); err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.b", 0x35); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, _ := s.Peek("C.o"); v != 0x5A {
		t.Errorf("add = %#x, want 0x5a", v)
	}
	if v, _ := s.Peek("C.m"); v != 1 {
		t.Errorf("nibble eq = %d, want 1", v)
	}
	if err := s.Poke("C.b", 0x36); err != nil {
		t.Fatal(err)
	}
	s.Eval()
	if v, _ := s.Peek("C.m"); v != 0 {
		t.Errorf("nibble eq = %d, want 0", v)
	}
}

// A registered accumulator built from primops: r <= add(r, one) counts up.
func TestPrimopAccumulator(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input en : UInt<1>
    reg r : UInt<8>
    node next = add(r, UInt<8>(1))
    r <= mux(en, next, r)
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.en", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if v, _ := s.Peek("C.r"); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
	if err := s.Poke("C.en", 0); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if v, _ := s.Peek("C.r"); v != 5 {
		t.Errorf("counter moved while disabled: %d", v)
	}
}
