// Package sim is a cycle-accurate levelized simulator for pure hdl netlists,
// standing in for Verilator in the Sonar pipeline.
//
// It evaluates MUX-and-buffer datapaths: every 2:1 MUX computes
// out = sel ? tval : fval, and every wire with declared sources but no MUX
// driver acts as a reduction buffer (the OR of its sources — the composition
// rule validity signals follow, paper Algorithm 1 line 7). Registers latch
// their combinational input at the clock edge, so MUX- or buffer-driven
// registers behave as flip-flops, not transparent latches.
//
// The cycle-accurate processor models in packages boom and nutshell do not
// use this evaluator for their full behaviour; they drive their declared
// netlist signals directly. The evaluator exists so standalone circuits —
// FIRRTL snippets in tests, the Figure 3 example, instrumentation
// self-checks — can be simulated without a processor around them.
package sim

import (
	"fmt"

	"sonar/internal/hdl"
)

// node is a combinational element: a mux, a primitive operation, or a
// buffer wire.
type node struct {
	mux  *hdl.Mux    // non-nil for mux nodes
	prim *hdl.Prim   // non-nil for primitive-operation nodes
	buf  *hdl.Signal // non-nil for buffer nodes (OR of sources)
}

func (n node) out() *hdl.Signal {
	switch {
	case n.mux != nil:
		return n.mux.Out
	case n.prim != nil:
		return n.prim.Out
	}
	return n.buf
}

func (n node) inputs() []*hdl.Signal {
	switch {
	case n.mux != nil:
		return []*hdl.Signal{n.mux.Sel, n.mux.TVal, n.mux.FVal}
	case n.prim != nil:
		return n.prim.Args
	}
	return n.buf.Sources()
}

// Simulator evaluates a netlist cycle by cycle.
type Simulator struct {
	net   *hdl.Netlist
	order []node                 // topological combinational order
	next  map[*hdl.Signal]uint64 // register next-values computed this cycle
	regs  []*hdl.Signal          // registers with combinational drivers
}

// New builds a simulator for the netlist. It returns an error if the
// combinational logic contains a cycle that does not pass through a
// register.
func New(n *hdl.Netlist) (*Simulator, error) {
	s := &Simulator{net: n, next: make(map[*hdl.Signal]uint64)}

	var nodes []node
	producer := make(map[*hdl.Signal]int) // signal -> index into nodes
	for _, m := range n.Muxes() {
		producer[m.Out] = len(nodes)
		nodes = append(nodes, node{mux: m})
	}
	for _, p := range n.Prims() {
		producer[p.Out] = len(nodes)
		nodes = append(nodes, node{prim: p})
	}
	for _, sig := range n.Signals() {
		if _, isMux := n.Driver(sig); isMux {
			continue
		}
		if _, isPrim := n.PrimDriver(sig); isPrim {
			continue
		}
		if len(sig.Sources()) == 0 || sig.IsConst() {
			continue
		}
		producer[sig] = len(nodes)
		nodes = append(nodes, node{buf: sig})
	}

	// Kahn topological sort. Edges run producer(input) -> node, except
	// through registers: a register output is stable during combinational
	// evaluation, so it breaks the dependency.
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	for i, nd := range nodes {
		for _, in := range nd.inputs() {
			if in.Kind() == hdl.Reg {
				continue
			}
			if p, ok := producer[in]; ok {
				succ[p] = append(succ[p], i)
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		s.order = append(s.order, nodes[i])
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(s.order) != len(nodes) {
		for i, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("sim: combinational cycle through %s", nodes[i].out().Name())
			}
		}
	}
	for _, sig := range n.Signals() {
		if sig.Kind() != hdl.Reg {
			continue
		}
		if _, ok := producer[sig]; ok {
			s.regs = append(s.regs, sig)
		}
	}
	return s, nil
}

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *hdl.Netlist { return s.net }

// Eval settles all combinational logic for the current cycle. Values
// destined for registers are staged and only latched by Tick.
func (s *Simulator) Eval() {
	for _, nd := range s.order {
		out := nd.out()
		var v uint64
		switch {
		case nd.mux != nil:
			if s.in(nd.mux.Sel) != 0 {
				v = s.in(nd.mux.TVal)
			} else {
				v = s.in(nd.mux.FVal)
			}
		case nd.prim != nil:
			v = nd.prim.Compute()
		default:
			for _, src := range nd.buf.Sources() {
				v |= s.in(src)
			}
		}
		if out.Kind() == hdl.Reg {
			s.next[out] = v & out.Mask()
		} else {
			out.Set(v)
		}
	}
}

// in reads a combinational input value, honouring staged register values
// only for non-register sources (registers present their latched value).
func (s *Simulator) in(sig *hdl.Signal) uint64 {
	return sig.Value()
}

// Tick settles combinational logic, latches registers, and advances the
// clock one cycle.
func (s *Simulator) Tick() {
	s.Eval()
	for _, r := range s.regs {
		if v, ok := s.next[r]; ok {
			r.Set(v)
		}
	}
	s.net.Step()
}

// Run executes n clock cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

// Poke sets a signal by name.
func (s *Simulator) Poke(name string, v uint64) error {
	sig, ok := s.net.Signal(name)
	if !ok {
		return fmt.Errorf("sim: poke: no signal %q", name)
	}
	if sig.IsConst() {
		return fmt.Errorf("sim: poke: %q is a constant", name)
	}
	sig.Set(v)
	return nil
}

// Peek reads a signal by name.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig, ok := s.net.Signal(name)
	if !ok {
		return 0, fmt.Errorf("sim: peek: no signal %q", name)
	}
	return sig.Value(), nil
}
