// Package sim is a cycle-accurate levelized simulator for pure hdl netlists,
// standing in for Verilator in the Sonar pipeline.
//
// It evaluates MUX-and-buffer datapaths: every 2:1 MUX computes
// out = sel ? tval : fval, and every wire with declared sources but no MUX
// driver acts as a reduction buffer (the OR of its sources — the composition
// rule validity signals follow, paper Algorithm 1 line 7). Registers latch
// their combinational input at the clock edge, so MUX- or buffer-driven
// registers behave as flip-flops, not transparent latches.
//
// The cycle-accurate processor models in packages boom and nutshell do not
// use this evaluator for their full behaviour; they drive their declared
// netlist signals directly. The evaluator exists so standalone circuits —
// FIRRTL snippets in tests, the Figure 3 example, instrumentation
// self-checks — can be simulated without a processor around them.
package sim

import (
	"fmt"

	"sonar/internal/hdl"
)

// node is a combinational element under construction: a mux, a primitive
// operation, or a buffer wire. New compiles nodes into cnodes once the
// evaluation order is known.
type node struct {
	mux  *hdl.Mux    // non-nil for mux nodes
	prim *hdl.Prim   // non-nil for primitive-operation nodes
	buf  *hdl.Signal // non-nil for buffer nodes (OR of sources)
}

func (n node) out() *hdl.Signal {
	switch {
	case n.mux != nil:
		return n.mux.Out
	case n.prim != nil:
		return n.prim.Out
	}
	return n.buf
}

func (n node) inputs() []*hdl.Signal {
	switch {
	case n.mux != nil:
		return []*hdl.Signal{n.mux.Sel, n.mux.TVal, n.mux.FVal}
	case n.prim != nil:
		return n.prim.Args
	}
	return n.buf.Sources()
}

// cnode kinds (the optimizer-only kinds nkCopy/nkConst/nkChain are declared
// in optimize.go).
const (
	nkMux uint8 = iota
	nkPrim
	nkBuf
)

// cnode is a compiled combinational element. Input operands are precomputed
// dense signal ids into the netlist value plane, so Eval reads flat slices
// instead of chasing pointers or hashing map keys.
type cnode struct {
	kind     uint8
	regSlot  int32       // index into next/regs if out is a register, else -1
	out      *hdl.Signal // driven signal (Set dispatches watchers)
	sel      int32       // mux: select id; copy: source id
	tval     int32       // mux: true-value id
	fval     int32       // mux: false-value id; chain: fallback id
	prim     *hdl.Prim   // prim: computed via Prim.Compute
	bufIDs   []int32     // buf: source ids, OR-reduced
	constVal uint64      // const: the folded value
	chain    []int32     // chain: interleaved (sel, tval) ids, priority order
}

// Simulator evaluates a netlist cycle by cycle.
type Simulator struct {
	net   *hdl.Netlist
	order []cnode       // topological combinational order, compiled
	next  []uint64      // staged register next-values, indexed by reg slot
	regs  []*hdl.Signal // registers with combinational drivers, by reg slot
	init  []uint64      // construction-time value plane, for Reset
	stats CompileStats
}

// levelize collects the combinational elements of the netlist (muxes, prims,
// buffer wires) and returns them in topological evaluation order, plus the
// set of registers that have a combinational driver (in signal creation
// order). It returns an error if the combinational logic contains a cycle
// that does not pass through a register. Both the scalar and the lane
// compiler consume this order.
func levelize(n *hdl.Netlist) (sorted []node, drivenRegs []*hdl.Signal, err error) {
	var nodes []node
	producer := make(map[*hdl.Signal]int) // signal -> index into nodes
	for _, m := range n.Muxes() {
		producer[m.Out] = len(nodes)
		nodes = append(nodes, node{mux: m})
	}
	for _, p := range n.Prims() {
		producer[p.Out] = len(nodes)
		nodes = append(nodes, node{prim: p})
	}
	for _, sig := range n.Signals() {
		if _, isMux := n.Driver(sig); isMux {
			continue
		}
		if _, isPrim := n.PrimDriver(sig); isPrim {
			continue
		}
		if len(sig.Sources()) == 0 || sig.IsConst() {
			continue
		}
		producer[sig] = len(nodes)
		nodes = append(nodes, node{buf: sig})
	}

	// Kahn topological sort. Edges run producer(input) -> node, except
	// through registers: a register output is stable during combinational
	// evaluation, so it breaks the dependency.
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	for i, nd := range nodes {
		for _, in := range nd.inputs() {
			if in.Kind() == hdl.Reg {
				continue
			}
			if p, ok := producer[in]; ok {
				succ[p] = append(succ[p], i)
				indeg[i]++
			}
		}
	}
	queue := make([]int, 0, len(nodes))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	sorted = make([]node, 0, len(nodes))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		sorted = append(sorted, nodes[i])
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(sorted) != len(nodes) {
		for i, d := range indeg {
			if d > 0 {
				return nil, nil, fmt.Errorf("sim: combinational cycle through %s", nodes[i].out().Name())
			}
		}
	}

	for _, sig := range n.Signals() {
		if sig.Kind() != hdl.Reg {
			continue
		}
		if _, ok := producer[sig]; ok {
			drivenRegs = append(drivenRegs, sig)
		}
	}
	return sorted, drivenRegs, nil
}

// New builds a simulator for the netlist with every signal kept (only the
// value-preserving constant-folding optimization runs). It returns an error
// if the combinational logic contains a cycle that does not pass through a
// register.
func New(n *hdl.Netlist) (*Simulator, error) {
	return NewOpt(n, CompileOptions{})
}

// NewOpt builds a simulator through the optimizing compile pipeline
// (docs/SIMULATOR.md "Optimizer passes"): constant folding always; with an
// explicit opts.Keep set also dead-node elimination, buffer-chain collapse,
// and mux-tree fusion. It returns an error if the combinational logic
// contains a cycle that does not pass through a register.
func NewOpt(n *hdl.Netlist, opts CompileOptions) (*Simulator, error) {
	sorted, drivenRegs, err := levelize(n)
	if err != nil {
		return nil, err
	}
	ons, stats := optimize(sorted, opts)
	s := &Simulator{net: n, regs: drivenRegs, stats: stats}

	// Compile: precompute input ids and register staging slots so the per-
	// cycle Eval loop touches only flat slices.
	regSlot := make(map[*hdl.Signal]int32, len(drivenRegs))
	for i, sig := range drivenRegs {
		regSlot[sig] = int32(i)
	}
	s.next = make([]uint64, len(s.regs))
	s.order = make([]cnode, len(ons))
	for i := range ons {
		nd := &ons[i]
		c := cnode{regSlot: -1, out: nd.out}
		if slot, ok := regSlot[c.out]; ok {
			c.regSlot = slot
		}
		switch nd.kind {
		case nkMux:
			c.kind = nkMux
			c.sel = int32(nd.sel.ID())
			c.tval = int32(nd.tval.ID())
			c.fval = int32(nd.fval.ID())
		case nkPrim:
			c.kind = nkPrim
			c.prim = nd.prim
		case nkBuf:
			c.kind = nkBuf
			c.bufIDs = make([]int32, len(nd.srcs))
			for k, src := range nd.srcs {
				c.bufIDs[k] = int32(src.ID())
			}
		case nkCopy:
			c.kind = nkCopy
			c.sel = int32(nd.sel.ID())
		case nkConst:
			c.kind = nkConst
			c.constVal = nd.constVal
		case nkChain:
			c.kind = nkChain
			c.fval = int32(nd.fval.ID())
			c.chain = make([]int32, len(nd.chain))
			for k, sig := range nd.chain {
				c.chain[k] = int32(sig.ID())
			}
		}
		s.order[i] = c
	}
	s.init = append([]uint64(nil), n.Values()...)
	return s, nil
}

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *hdl.Netlist { return s.net }

// Stats returns what the compile pipeline did to the netlist.
func (s *Simulator) Stats() CompileStats { return s.stats }

// Reset restores every signal to its construction-time value and rewinds the
// netlist clock to cycle 0, so one simulator instance executes back-to-back
// runs from identical state. The restore writes the value plane directly,
// bypassing watch hooks — observers that mirror signal state (monitor.New)
// must re-baseline afterwards, which monitor's Reset does by recounting.
func (s *Simulator) Reset() {
	copy(s.net.Values(), s.init)
	for i := range s.next {
		s.next[i] = 0
	}
	s.net.SetCycle(0)
}

// Eval settles all combinational logic for the current cycle. Values
// destined for registers are staged in the next slice and only latched by
// Tick.
//
// Inputs are read straight from the netlist's dense value plane. Register
// reads always see the latched value — not the value staged this cycle —
// because staged values live in next until Tick copies them back through
// Signal.Set.
//
//sonar:alloc-free
func (s *Simulator) Eval() {
	vals := s.net.Values()
	for i := range s.order {
		nd := &s.order[i]
		var v uint64
		switch nd.kind {
		case nkMux:
			if vals[nd.sel] != 0 {
				v = vals[nd.tval]
			} else {
				v = vals[nd.fval]
			}
		case nkPrim:
			v = nd.prim.Compute()
		case nkBuf:
			for _, id := range nd.bufIDs {
				v |= vals[id]
			}
		case nkCopy:
			v = vals[nd.sel]
		case nkConst:
			v = nd.constVal
		default: // nkChain: priority order, entry 0 strongest
			v = vals[nd.fval]
			for k := len(nd.chain) - 2; k >= 0; k -= 2 {
				if vals[nd.chain[k]] != 0 {
					v = vals[nd.chain[k+1]]
				}
			}
		}
		if nd.regSlot >= 0 {
			s.next[nd.regSlot] = v & nd.out.Mask()
		} else {
			nd.out.Set(v)
		}
	}
}

// Tick settles combinational logic, latches registers, and advances the
// clock one cycle. Every register in regs is driven by exactly one node that
// Eval executes, so every next slot is freshly staged each cycle.
func (s *Simulator) Tick() {
	s.Eval()
	for i, r := range s.regs {
		r.Set(s.next[i])
	}
	s.net.Step()
}

// Run executes n clock cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Tick()
	}
}

// Poke sets a signal by name.
func (s *Simulator) Poke(name string, v uint64) error {
	sig, ok := s.net.Signal(name)
	if !ok {
		return fmt.Errorf("sim: poke: no signal %q", name)
	}
	if sig.IsConst() {
		return fmt.Errorf("sim: poke: %q is a constant", name)
	}
	sig.Set(v)
	return nil
}

// Peek reads a signal by name.
func (s *Simulator) Peek(name string) (uint64, error) {
	sig, ok := s.net.Signal(name)
	if !ok {
		return 0, fmt.Errorf("sim: peek: no signal %q", name)
	}
	return sig.Value(), nil
}
