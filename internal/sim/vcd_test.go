package sim

import (
	"strings"
	"testing"

	"sonar/internal/hdl"
)

func TestVCDDump(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input en : UInt<1>
    reg r : UInt<8>
    node next = add(r, UInt<8>(1))
    r <= mux(en, next, r)
`)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	en, _ := n.Signal("C.en")
	reg, _ := n.Signal("C.r")
	v := NewVCD(&buf, n, []*hdl.Signal{en, reg})
	if err := s.Poke("C.en", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if err := v.Close(n.Cycle()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module C $end",
		"$var wire 1", "$var wire 8", "$enddefinitions",
		"$dumpvars", "#0", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The counter must show increasing binary values.
	for _, want := range []string{"b1 ", "b10 ", "b11 "} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing counter value %q:\n%s", want, out)
		}
	}
}

func TestVCDAllSignalsAndIDs(t *testing.T) {
	n := mustParse(t, `
circuit C :
  module C :
    input a : UInt<1>
    input b : UInt<4>
    output o : UInt<4>
    o <= mux(a, b, UInt<4>(0))
`)
	var buf strings.Builder
	v := NewVCD(&buf, n, nil) // all signals
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.b", 9); err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("C.a", 1); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := v.Close(n.Cycle()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "b1001 ") {
		t.Errorf("mux output change missing:\n%s", out)
	}
	// Constants are excluded from the dump.
	if strings.Contains(out, "_c1") {
		t.Errorf("constant dumped:\n%s", out)
	}
}

func TestVCDIdentifiers(t *testing.T) {
	if vcdID(0) != "!" {
		t.Errorf("vcdID(0) = %q", vcdID(0))
	}
	if vcdID(93) != "~" {
		t.Errorf("vcdID(93) = %q", vcdID(93))
	}
	if got := vcdID(94); len(got) != 2 {
		t.Errorf("vcdID(94) = %q, want 2 chars", got)
	}
	// IDs must be unique over a large range.
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}
