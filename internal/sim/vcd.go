package sim

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sonar/internal/hdl"
)

// VCD streams value changes of selected netlist signals as a standard
// Value Change Dump, viewable in GTKWave and friends. It works for both
// the levelized simulator and the behavioural processor models: changes
// are captured through hdl watch hooks, so any code path that drives the
// netlist shows up in the waveform.
type VCD struct {
	w         io.Writer
	ids       map[*hdl.Signal]string
	lastCycle int64
	headered  bool
	err       error
}

// NewVCD attaches a VCD dumper for the given signals (all netlist signals
// if nil). The header is written immediately; value changes follow as the
// signals change. Call Close to flush the final timestamp.
func NewVCD(w io.Writer, net *hdl.Netlist, signals []*hdl.Signal) *VCD {
	if signals == nil {
		signals = net.Signals()
	}
	v := &VCD{w: w, ids: make(map[*hdl.Signal]string, len(signals)), lastCycle: -1}
	v.header(net, signals)
	for _, s := range signals {
		if s.IsConst() {
			continue
		}
		s.Watch(func(sig *hdl.Signal, _, new uint64, cycle int64) {
			v.change(sig, new, cycle)
		})
	}
	return v
}

// vcdID encodes an index as a VCD identifier (printable ASCII 33..126).
func vcdID(i int) string {
	var b []byte
	for {
		b = append(b, byte(33+i%94))
		i /= 94
		if i == 0 {
			break
		}
	}
	return string(b)
}

func (v *VCD) header(net *hdl.Netlist, signals []*hdl.Signal) {
	fmt.Fprintf(v.w, "$version sonar %s $end\n$timescale 1ns $end\n", net.Name())
	// Group by module path.
	byMod := map[string][]*hdl.Signal{}
	var paths []string
	for _, s := range signals {
		p := s.ModulePath()
		if _, ok := byMod[p]; !ok {
			paths = append(paths, p)
		}
		byMod[p] = append(byMod[p], s)
	}
	sort.Strings(paths)
	idx := 0
	for _, p := range paths {
		scope := strings.ReplaceAll(p, ".", "_")
		if scope == "" {
			scope = net.Name()
		}
		fmt.Fprintf(v.w, "$scope module %s $end\n", scope)
		for _, s := range byMod[p] {
			if s.IsConst() {
				continue
			}
			id := vcdID(idx)
			idx++
			v.ids[s] = id
			fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", s.Width(), id, s.Local())
		}
		fmt.Fprintf(v.w, "$upscope $end\n")
	}
	fmt.Fprintf(v.w, "$enddefinitions $end\n$dumpvars\n")
	for _, s := range signals {
		if id, ok := v.ids[s]; ok {
			v.emit(s.Width(), s.Value(), id)
		}
	}
	fmt.Fprintf(v.w, "$end\n")
	v.headered = true
}

func (v *VCD) change(s *hdl.Signal, val uint64, cycle int64) {
	if v.err != nil {
		return
	}
	id, ok := v.ids[s]
	if !ok {
		return
	}
	if cycle != v.lastCycle {
		if _, err := fmt.Fprintf(v.w, "#%d\n", cycle); err != nil {
			v.err = err
			return
		}
		v.lastCycle = cycle
	}
	v.emit(s.Width(), val, id)
}

func (v *VCD) emit(width int, val uint64, id string) {
	if v.err != nil {
		return
	}
	var err error
	if width == 1 {
		_, err = fmt.Fprintf(v.w, "%d%s\n", val&1, id)
	} else {
		_, err = fmt.Fprintf(v.w, "b%s %s\n", strconv.FormatUint(val, 2), id)
	}
	if err != nil {
		v.err = err
	}
}

// Close writes the final timestamp and returns any accumulated write error.
// The watch hooks stay attached; use the owning netlist's ClearWatchers per
// signal to detach.
func (v *VCD) Close(finalCycle int64) error {
	if v.err == nil && finalCycle > v.lastCycle {
		_, v.err = fmt.Fprintf(v.w, "#%d\n", finalCycle)
	}
	return v.err
}
