package sim

import (
	"fmt"
	"math/bits"

	"sonar/internal/hdl"
)

// laneRef locates one operand in the bit-sliced plane: the word offset of
// its bit 0 and its width in bits (= words).
type laneRef struct {
	off int32
	w   int32
}

// lnode is a compiled combinational element of the lane evaluator, the
// bit-sliced analog of cnode. Mux and buffer nodes evaluate all hdl.Lanes
// testcases per word operation; prim nodes are classified at compile time as
// scalar spills (kind nkPrim) and evaluate lane by lane through
// hdl.Prim.Compute on the scalar plane.
type lnode struct {
	kind     uint8
	regSlot  int32 // index into regs if out is a register, else -1
	out      *hdl.Signal
	outRef   laneRef
	sel      laneRef   // mux: select operand; copy: source operand
	tval     laneRef   // mux: true-value operand
	fval     laneRef   // mux: false-value operand; chain: fallback operand
	prim     *hdl.Prim // prim: computed per lane via Prim.Compute
	bufs     []laneRef // buf: source operands, OR-reduced per word
	constVal uint64    // const: the folded value, broadcast to all lanes
	chain    []laneRef // chain: interleaved (sel, tval) refs, priority order
}

// lreg is one register with a combinational driver: where its latched words
// live in the plane and where its staged next-words live in the staging
// buffer.
type lreg struct {
	sig     *hdl.Signal
	planeEl laneRef
	nextOff int32
}

// LaneSimulator evaluates a netlist for hdl.Lanes independent testcases at
// once over a bit-sliced hdl.LanePlane. Lane L of every word is testcase L's
// value, so a 2:1 mux settles for all 64 lanes with three word operations
// per output bit: (selMask & tval) | (^selMask & fval), where selMask is the
// lane-wise "select non-zero" mask. Buffers OR-reduce per word; registers
// latch per lane at Tick. Prim nodes cannot be bit-sliced and take a scalar
// spill path (classified once at compile time): each lane's operands are
// gathered onto the netlist's scalar value plane, Prim.Compute runs, and the
// result is scattered back — so during and after lane evaluation the scalar
// plane of spilled signals is scratch, not state. LoadScalar/StoreLane on
// the plane convert between the two worlds.
//
// Per-lane value changes are observable through WatchLanes hooks, the lane
// analog of Signal.Watch; scalar watch hooks never fire during lane
// evaluation because the scalar plane is bypassed.
type LaneSimulator struct {
	net     *hdl.Netlist
	plane   *hdl.LanePlane
	order   []lnode
	next    []uint64 // staged register next-words, by lreg.nextOff
	regs    []lreg
	watch   [][]hdl.LaneWatchFunc // lane watch hooks by signal id
	bits    []uint64              // "any lane watcher?" bitset by signal id
	cycle   int64
	spilled int
	init    []uint64 // construction-time plane words, for Reset
	stats   CompileStats

	// Fixed scratch buffers sized for the maximum signal width, so Eval and
	// Tick stay allocation-free.
	outBuf   [64]uint64 // new out words of the node being evaluated
	oldBuf   [64]uint64 // previous out words, for watcher dispatch
	laneVals [hdl.Lanes]uint64
}

// NewLanes builds a lane simulator for the netlist with every signal kept
// (only the value-preserving constant-folding optimization runs): the same
// levelized evaluation order as New, compiled against a fresh hdl.LanePlane
// seeded from the netlist's current scalar values (all lanes start
// identical). It returns an error if the combinational logic contains a
// cycle that does not pass through a register.
func NewLanes(n *hdl.Netlist) (*LaneSimulator, error) {
	return NewLanesOpt(n, CompileOptions{})
}

// NewLanesOpt builds a lane simulator through the optimizing compile
// pipeline — the same passes, over the same intermediate nodes, as NewOpt,
// so the scalar and lane evaluators of one netlist always agree on what was
// folded, eliminated, collapsed, and fused.
func NewLanesOpt(n *hdl.Netlist, opts CompileOptions) (*LaneSimulator, error) {
	sorted, drivenRegs, err := levelize(n)
	if err != nil {
		return nil, err
	}
	ons, stats := optimize(sorted, opts)
	plane := hdl.NewLanePlane(n)
	ls := &LaneSimulator{
		net:   n,
		plane: plane,
		watch: make([][]hdl.LaneWatchFunc, n.NumSignals()),
		bits:  make([]uint64, (n.NumSignals()+63)/64),
	}

	ref := func(s *hdl.Signal) laneRef {
		return laneRef{off: int32(plane.Offset(s)), w: int32(s.Width())}
	}

	regSlot := make(map[*hdl.Signal]int32, len(drivenRegs))
	nextWords := int32(0)
	for i, sig := range drivenRegs {
		regSlot[sig] = int32(i)
		ls.regs = append(ls.regs, lreg{sig: sig, planeEl: ref(sig), nextOff: nextWords})
		nextWords += int32(sig.Width())
	}
	ls.next = make([]uint64, nextWords)

	ls.order = make([]lnode, len(ons))
	for i := range ons {
		nd := &ons[i]
		c := lnode{regSlot: -1, out: nd.out, outRef: ref(nd.out)}
		if slot, ok := regSlot[c.out]; ok {
			c.regSlot = slot
		}
		switch nd.kind {
		case nkMux:
			c.kind = nkMux
			c.sel = ref(nd.sel)
			c.tval = ref(nd.tval)
			c.fval = ref(nd.fval)
		case nkPrim:
			c.kind = nkPrim
			c.prim = nd.prim
			ls.spilled++
		case nkBuf:
			c.kind = nkBuf
			c.bufs = make([]laneRef, len(nd.srcs))
			for k, src := range nd.srcs {
				c.bufs[k] = ref(src)
			}
		case nkCopy:
			c.kind = nkCopy
			c.sel = ref(nd.sel)
		case nkConst:
			c.kind = nkConst
			c.constVal = nd.constVal
		case nkChain:
			c.kind = nkChain
			c.fval = ref(nd.fval)
			c.chain = make([]laneRef, len(nd.chain))
			for k, sig := range nd.chain {
				c.chain[k] = ref(sig)
			}
		}
		ls.order[i] = c
	}
	ls.stats = stats
	ls.init = append([]uint64(nil), plane.Words()...)
	return ls, nil
}

// Netlist returns the simulated netlist.
func (ls *LaneSimulator) Netlist() *hdl.Netlist { return ls.net }

// Plane returns the bit-sliced value plane the simulator evaluates over.
func (ls *LaneSimulator) Plane() *hdl.LanePlane { return ls.plane }

// Cycle returns the current lane simulation cycle. The lane clock is
// independent of the netlist's scalar clock (Netlist.Cycle), which stays
// untouched during lane evaluation.
func (ls *LaneSimulator) Cycle() int64 { return ls.cycle }

// SpilledNodes returns how many compiled nodes take the scalar spill path
// (prim nodes). Zero means the whole design bit-slices.
func (ls *LaneSimulator) SpilledNodes() int { return ls.spilled }

// Stats returns what the compile pipeline did to the netlist.
func (ls *LaneSimulator) Stats() CompileStats { return ls.stats }

// Reset restores every lane of every signal to its construction-time value
// and rewinds the lane clock to cycle 0, so one lane simulator executes
// back-to-back runs from identical state. The restore writes the plane words
// directly, bypassing lane watch hooks — observers that mirror plane state
// (monitor.NewLaneBank) must re-baseline afterwards, which the bank's Reset
// does by recounting.
func (ls *LaneSimulator) Reset() {
	copy(ls.plane.Words(), ls.init)
	for i := range ls.next {
		ls.next[i] = 0
	}
	ls.cycle = 0
}

// WatchLanes registers fn to be called whenever the signal's value changes
// in any lane during Eval or Tick. For one evaluation changing several
// lanes, fn fires once per changed lane in ascending lane order, after the
// plane already holds the new words.
func (ls *LaneSimulator) WatchLanes(s *hdl.Signal, fn hdl.LaneWatchFunc) {
	id := s.ID()
	ls.watch[id] = append(ls.watch[id], fn)
	ls.bits[uint(id)>>6] |= 1 << (uint(id) & 63)
}

// watched reports whether the signal has at least one lane watch hook.
func (ls *LaneSimulator) watched(s *hdl.Signal) bool {
	id := uint(s.ID())
	return ls.bits[id>>6]&(1<<(id&63)) != 0
}

// gather assembles lane's value from w bit words.
func gather(words []uint64, w int32, lane int) uint64 {
	var v uint64
	for b := int32(0); b < w; b++ {
		v |= (words[b] >> uint(lane) & 1) << uint(b)
	}
	return v
}

// dispatch fires the signal's lane watch hooks for every lane whose value
// differs between oldW and newW, in ascending lane order.
//
//sonar:alloc-free
func (ls *LaneSimulator) dispatch(s *hdl.Signal, oldW, newW []uint64, w int32) {
	var changed uint64
	for b := int32(0); b < w; b++ {
		changed |= oldW[b] ^ newW[b]
	}
	if changed == 0 {
		return
	}
	hooks := ls.watch[s.ID()]
	cyc := ls.cycle
	for m := changed; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		oldV := gather(oldW, w, lane)
		newV := gather(newW, w, lane)
		for _, fn := range hooks {
			fn(s, lane, oldV, newV, cyc)
		}
	}
}

// commit writes the freshly computed out words (ls.outBuf[:w]) of a
// combinational node into the plane, dispatching lane watch hooks on change.
//
//sonar:alloc-free
func (ls *LaneSimulator) commit(nd *lnode, W []uint64) {
	w := nd.outRef.w
	out := W[nd.outRef.off : nd.outRef.off+w]
	if !ls.watched(nd.out) {
		copy(out, ls.outBuf[:w])
		return
	}
	copy(ls.oldBuf[:w], out)
	copy(out, ls.outBuf[:w])
	ls.dispatch(nd.out, ls.oldBuf[:w], out, w)
}

// Eval settles all combinational logic for the current cycle across all
// lanes. Values destined for registers are staged and only latched by Tick,
// so register reads always see latched values, exactly as in the scalar
// evaluator.
//
//sonar:alloc-free
func (ls *LaneSimulator) Eval() {
	W := ls.plane.Words()
	vals := ls.net.Values()
	for i := range ls.order {
		nd := &ls.order[i]
		w := nd.outRef.w
		switch nd.kind {
		case nkMux:
			// selMask bit L = "lane L's select is non-zero".
			var selMask uint64
			for b := int32(0); b < nd.sel.w; b++ {
				selMask |= W[nd.sel.off+b]
			}
			for b := int32(0); b < w; b++ {
				var t, f uint64
				if b < nd.tval.w {
					t = W[nd.tval.off+b]
				}
				if b < nd.fval.w {
					f = W[nd.fval.off+b]
				}
				ls.outBuf[b] = selMask&t | ^selMask&f
			}
		case nkPrim:
			// Scalar spill: run each lane through Prim.Compute on the scalar
			// plane. The spilled args' scalar values are scratch afterwards.
			for lane := 0; lane < hdl.Lanes; lane++ {
				for _, a := range nd.prim.Args {
					if a.IsConst() {
						continue
					}
					vals[a.ID()] = gather(W[ls.plane.Offset(a):], int32(a.Width()), lane)
				}
				ls.laneVals[lane] = nd.prim.Compute()
			}
			for b := int32(0); b < w; b++ {
				var word uint64
				for lane := 0; lane < hdl.Lanes; lane++ {
					word |= (ls.laneVals[lane] >> uint(b) & 1) << uint(lane)
				}
				ls.outBuf[b] = word
			}
		case nkBuf:
			for b := int32(0); b < w; b++ {
				var acc uint64
				for _, src := range nd.bufs {
					if b < src.w {
						acc |= W[src.off+b]
					}
				}
				ls.outBuf[b] = acc
			}
		case nkCopy:
			for b := int32(0); b < w; b++ {
				var x uint64
				if b < nd.sel.w {
					x = W[nd.sel.off+b]
				}
				ls.outBuf[b] = x
			}
		case nkConst:
			// Bit b of the folded value broadcast to all lanes of word b.
			for b := int32(0); b < w; b++ {
				if nd.constVal>>uint(b)&1 != 0 {
					ls.outBuf[b] = ^uint64(0)
				} else {
					ls.outBuf[b] = 0
				}
			}
		default: // nkChain: fallback first, then entries from weakest to strongest
			for b := int32(0); b < w; b++ {
				var x uint64
				if b < nd.fval.w {
					x = W[nd.fval.off+b]
				}
				ls.outBuf[b] = x
			}
			for k := len(nd.chain) - 2; k >= 0; k -= 2 {
				sel := nd.chain[k]
				var selMask uint64
				for b := int32(0); b < sel.w; b++ {
					selMask |= W[sel.off+b]
				}
				t := nd.chain[k+1]
				for b := int32(0); b < w; b++ {
					var tw uint64
					if b < t.w {
						tw = W[t.off+b]
					}
					ls.outBuf[b] = selMask&tw | ^selMask&ls.outBuf[b]
				}
			}
		}
		if nd.regSlot >= 0 {
			r := &ls.regs[nd.regSlot]
			copy(ls.next[r.nextOff:r.nextOff+w], ls.outBuf[:w])
		} else {
			ls.commit(nd, W)
		}
	}
}

// Tick settles combinational logic, latches registers per lane (firing lane
// watch hooks at the pre-increment cycle, matching the scalar Tick), and
// advances the lane clock one cycle.
//
//sonar:alloc-free
func (ls *LaneSimulator) Tick() {
	ls.Eval()
	W := ls.plane.Words()
	for i := range ls.regs {
		r := &ls.regs[i]
		w := r.planeEl.w
		cur := W[r.planeEl.off : r.planeEl.off+w]
		staged := ls.next[r.nextOff : r.nextOff+w]
		if !ls.watched(r.sig) {
			copy(cur, staged)
			continue
		}
		copy(ls.oldBuf[:w], cur)
		copy(cur, staged)
		ls.dispatch(r.sig, ls.oldBuf[:w], cur, w)
	}
	ls.cycle++
}

// Run executes n clock cycles.
func (ls *LaneSimulator) Run(n int) {
	for i := 0; i < n; i++ {
		ls.Tick()
	}
}

// SetLane sets one lane of a signal, dispatching the signal's lane watch
// hooks if that lane's value changed — the lane analog of hdl.Signal.Set.
// Stimulus drivers must poke through this method rather than LanePlane.Set
// (which is a silent store): on designs whose monitored signals are ports,
// observers mirroring plane state (monitor.NewLaneBank) would otherwise miss
// input transitions that the scalar path's Signal.Set reports.
//
//sonar:alloc-free
func (ls *LaneSimulator) SetLane(s *hdl.Signal, lane int, v uint64) {
	v &= s.Mask()
	old := ls.plane.Get(s, lane)
	if v == old {
		return
	}
	ls.plane.Set(s, lane, v)
	if ls.watched(s) {
		cyc := ls.cycle
		for _, fn := range ls.watch[s.ID()] {
			fn(s, lane, old, v, cyc)
		}
	}
}

// PokeLane sets a signal by name in one lane.
func (ls *LaneSimulator) PokeLane(name string, lane int, v uint64) error {
	sig, err := ls.pokeTarget(name, lane)
	if err != nil {
		return err
	}
	ls.plane.Set(sig, lane, v)
	return nil
}

// PokeAll sets a signal by name in every lane.
func (ls *LaneSimulator) PokeAll(name string, v uint64) error {
	sig, err := ls.pokeTarget(name, 0)
	if err != nil {
		return err
	}
	ls.plane.Broadcast(sig, v)
	return nil
}

// PeekLane reads a signal by name in one lane.
func (ls *LaneSimulator) PeekLane(name string, lane int) (uint64, error) {
	if lane < 0 || lane >= hdl.Lanes {
		return 0, fmt.Errorf("sim: peek: lane %d out of range", lane)
	}
	sig, ok := ls.net.Signal(name)
	if !ok {
		return 0, fmt.Errorf("sim: peek: no signal %q", name)
	}
	return ls.plane.Get(sig, lane), nil
}

func (ls *LaneSimulator) pokeTarget(name string, lane int) (*hdl.Signal, error) {
	if lane < 0 || lane >= hdl.Lanes {
		return nil, fmt.Errorf("sim: poke: lane %d out of range", lane)
	}
	sig, ok := ls.net.Signal(name)
	if !ok {
		return nil, fmt.Errorf("sim: poke: no signal %q", name)
	}
	if sig.IsConst() {
		return nil, fmt.Errorf("sim: poke: %q is a constant", name)
	}
	return sig, nil
}
