package sim

import (
	"fmt"
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
	"sonar/internal/trace"
)

// keepForMonitor returns the signals a contention monitor reads: every
// monitored point's request data and valid signals — the keep set LaneDUT
// compiles with.
func keepForMonitor(an *trace.Analysis) []*hdl.Signal {
	var keep []*hdl.Signal
	for _, p := range an.Monitored() {
		for i := range p.Requests {
			keep = append(keep, p.Requests[i].Data)
			keep = append(keep, p.Requests[i].Valids...)
		}
	}
	return keep
}

func genInputsOf(n *hdl.Netlist) []*hdl.Signal {
	var inputs []*hdl.Signal
	for _, s := range n.Signals() {
		if s.Kind() == hdl.Input {
			inputs = append(inputs, s)
		}
	}
	return inputs
}

// TestOptimizedVsReference is the optimizer's differential harness: for a
// range of generated (check-verified) netlists, an optimized simulator
// compiled with the monitor keep set must agree with the unoptimized
// reference on every kept signal, every cycle, under identical stimulus —
// while actually exercising the destructive passes.
func TestOptimizedVsReference(t *testing.T) {
	const cycles = 64
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := gen.Config{Seed: seed, Nodes: 60, Regs: 6, Arbiters: 3, PrimShare: 0.2}
			refNet, err := gen.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			optNet, err := gen.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New(refNet)
			if err != nil {
				t.Fatal(err)
			}
			keep := keepForMonitor(trace.Analyze(optNet))
			if len(keep) == 0 {
				t.Fatal("no monitored points; keep set empty")
			}
			opt, err := NewOpt(optNet, CompileOptions{Keep: keep})
			if err != nil {
				t.Fatal(err)
			}
			stats := opt.Stats()
			if stats.Eliminated == 0 {
				t.Errorf("seed %d: optimizer eliminated nothing; destructive passes unexercised", seed)
			}
			if stats.Nodes+stats.Eliminated+stats.Fused+stats.Collapsed != len(ref.order) {
				t.Errorf("node accounting: %d alive + %d eliminated + %d fused + %d collapsed != %d reference nodes",
					stats.Nodes, stats.Eliminated, stats.Fused, stats.Collapsed, len(ref.order))
			}

			refIns, optIns := genInputsOf(refNet), genInputsOf(optNet)
			for cyc := 0; cyc < cycles; cyc++ {
				for k := range refIns {
					v := testVal(seed, cyc, 0, k)
					refIns[k].Set(v & refIns[k].Mask())
					optIns[k].Set(v & optIns[k].Mask())
				}
				ref.Tick()
				opt.Tick()
				for _, s := range keep {
					want := refNet.SignalByID(s.ID()).Value()
					if got := s.Value(); got != want {
						t.Fatalf("cycle %d: kept signal %s = %#x, reference %#x", cyc, s.Name(), got, want)
					}
				}
			}
		})
	}
}

// TestOptimizedLanesVsOptimizedScalar extends the lane/scalar differential
// to optimized compiles: a 64-lane optimized simulator must match 64
// independent optimized scalar runs on every kept signal, every cycle.
func TestOptimizedLanesVsOptimizedScalar(t *testing.T) {
	const cycles = 24
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := gen.Config{Seed: seed, Nodes: 48, Regs: 5, Arbiters: 2, PrimShare: 0.25}
			laneNet, err := gen.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			laneKeep := keepForMonitor(trace.Analyze(laneNet))
			ls, err := NewLanesOpt(laneNet, CompileOptions{Keep: laneKeep})
			if err != nil {
				t.Fatal(err)
			}
			laneIns := genInputsOf(laneNet)

			var refs [hdl.Lanes]*Simulator
			var refKeep [hdl.Lanes][]*hdl.Signal
			var refIns [hdl.Lanes][]*hdl.Signal
			for lane := 0; lane < hdl.Lanes; lane++ {
				n, err := gen.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				refKeep[lane] = keepForMonitor(trace.Analyze(n))
				refs[lane], err = NewOpt(n, CompileOptions{Keep: refKeep[lane]})
				if err != nil {
					t.Fatal(err)
				}
				refIns[lane] = genInputsOf(n)
			}

			for cyc := 0; cyc < cycles; cyc++ {
				for lane := 0; lane < hdl.Lanes; lane++ {
					for k, in := range refIns[lane] {
						v := testVal(seed, cyc, lane, k) & in.Mask()
						in.Set(v)
						ls.Plane().Set(laneIns[k], lane, v)
					}
				}
				ls.Tick()
				for lane := 0; lane < hdl.Lanes; lane++ {
					refs[lane].Tick()
					for k, s := range laneKeep {
						want := refKeep[lane][k].Value()
						if got := ls.Plane().Get(s, lane); got != want {
							t.Fatalf("cycle %d lane %d: kept signal %s = %#x, scalar optimized reference %#x",
								cyc, lane, s.Name(), got, want)
						}
					}
				}
			}
		})
	}
}

// TestResetReproducesRun pins the Reset contract on both evaluators: after a
// run and a Reset, re-running the same stimulus must reproduce the same kept
// values — the property LaneDUT's per-execution Reset depends on.
func TestResetReproducesRun(t *testing.T) {
	const cycles = 32
	cfg := gen.Config{Seed: 3, Nodes: 48, Regs: 5, Arbiters: 2, PrimShare: 0.2}

	n, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keep := keepForMonitor(trace.Analyze(n))
	s, err := NewOpt(n, CompileOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	ins := genInputsOf(n)
	run := func() []uint64 {
		var vals []uint64
		for cyc := 0; cyc < cycles; cyc++ {
			for k, in := range ins {
				in.Set(testVal(7, cyc, 0, k) & in.Mask())
			}
			s.Tick()
			for _, sig := range keep {
				vals = append(vals, sig.Value())
			}
		}
		return vals
	}
	first := run()
	s.Reset()
	if got := n.Cycle(); got != 0 {
		t.Fatalf("netlist cycle after Reset = %d, want 0", got)
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("scalar value trace diverged at index %d after Reset: %#x vs %#x", i, first[i], second[i])
		}
	}

	ln, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	laneKeep := keepForMonitor(trace.Analyze(ln))
	ls, err := NewLanesOpt(ln, CompileOptions{Keep: laneKeep})
	if err != nil {
		t.Fatal(err)
	}
	laneIns := genInputsOf(ln)
	laneRun := func() []uint64 {
		var vals []uint64
		for cyc := 0; cyc < cycles; cyc++ {
			for lane := 0; lane < hdl.Lanes; lane += 17 {
				for k, in := range laneIns {
					ls.Plane().Set(in, lane, testVal(9, cyc, lane, k)&in.Mask())
				}
			}
			ls.Tick()
			for _, sig := range laneKeep {
				for lane := 0; lane < hdl.Lanes; lane += 17 {
					vals = append(vals, ls.Plane().Get(sig, lane))
				}
			}
		}
		return vals
	}
	lfirst := laneRun()
	ls.Reset()
	if got := ls.Cycle(); got != 0 {
		t.Fatalf("lane cycle after Reset = %d, want 0", got)
	}
	lsecond := laneRun()
	for i := range lfirst {
		if lfirst[i] != lsecond[i] {
			t.Fatalf("lane value trace diverged at index %d after Reset: %#x vs %#x", i, lfirst[i], lsecond[i])
		}
	}
}

// TestMuxTreeFusion pins that the arbiter MuxTree shape actually fuses: a
// generated design with arbiters, compiled with only the monitor keep set,
// must report fused interior muxes, and the chain evaluation must stay
// differentially correct (TestOptimizedVsReference covers correctness; this
// pins that the pass fires at all, so a regression cannot silently disable
// it).
func TestMuxTreeFusion(t *testing.T) {
	cfg := gen.Config{Seed: 11, Nodes: 96, Regs: 8, Arbiters: 4, Fanin: 5, PrimShare: -1}
	n, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keep := keepForMonitor(trace.Analyze(n))
	s, err := NewOpt(n, CompileOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().Fused == 0 {
		t.Fatalf("no interior muxes fused on an arbiter design; stats = %+v", s.Stats())
	}
	if s.Stats().Spilled != 0 {
		t.Fatalf("PrimShare -1 design reports %d spilled nodes", s.Stats().Spilled)
	}
}
