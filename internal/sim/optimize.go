package sim

import "sonar/internal/hdl"

// CompileOptions steers the optimizing compile pipeline shared by NewOpt and
// NewLanesOpt (docs/SIMULATOR.md "Optimizer passes").
type CompileOptions struct {
	// Keep lists the signals the caller will read, poke, or watch after
	// construction — monitored points' valid and data signals, probe taps,
	// peeked outputs. The destructive passes (dead-node elimination,
	// buffer-chain collapse, mux-tree fusion) preserve the cycle-by-cycle
	// values of kept signals, register state, and netlist inputs, but may
	// stop computing anything else: an eliminated signal's value is never
	// written again, so watchers installed on it never fire.
	//
	// A nil Keep keeps every signal: only the value-preserving constant-
	// folding pass runs, and the simulator behaves exactly like the
	// unoptimized compile (New / NewLanes).
	Keep []*hdl.Signal
}

// CompileStats reports what the compile pipeline did to a netlist — the
// counts the sonar_sim_* gauges publish (internal/obs).
type CompileStats struct {
	// Nodes is the number of compiled combinational nodes that survive.
	Nodes int
	// Eliminated is the number of dead/unwatched nodes removed outright.
	Eliminated int
	// Folded is the number of nodes reduced by constant folding (const-sel
	// muxes, same-input muxes, all-const buffers).
	Folded int
	// Collapsed is the number of single-use buffers spliced into their
	// consuming buffer's source list.
	Collapsed int
	// Fused is the number of interior muxes absorbed into priority-chain
	// superinstructions (one fused chain evaluates N muxes in one node).
	Fused int
	// Spilled is the number of surviving primitive-operation nodes — the
	// nodes the lane evaluator must run through the scalar spill path.
	Spilled int
}

// onode is an optimizer node: the intermediate representation between
// levelize's topological order and the compiled cnode/lnode records. The
// optimizer rewrites kinds and operands in place and marks nodes dead;
// surviving nodes keep their original topological positions, which stays a
// valid evaluation order because every pass only ever makes a node depend on
// (transitive) operands of its original operands.
type onode struct {
	kind uint8
	out  *hdl.Signal
	// sel/tval/fval are the mux operands. nkCopy reuses sel as its source;
	// nkChain reuses fval as the chain's fallback.
	sel, tval, fval *hdl.Signal
	prim            *hdl.Prim
	srcs            []*hdl.Signal // buf sources
	constVal        uint64        // nkConst: the folded value, pre-masked
	// chain is the fused priority chain, interleaved (sel, tval) pairs in
	// priority order: entry 0 wins over entry 1, all entries win over the
	// fallback — the FVal-nested shape hdl.MuxTree emits.
	chain []*hdl.Signal
	dead  bool
}

// Additional compiled node kinds produced only by the optimizer (the base
// kinds nkMux/nkPrim/nkBuf are declared in sim.go).
const (
	nkCopy  uint8 = 3 + iota // out = src (a mux folded to one side)
	nkConst                  // out = constVal
	nkChain                  // out = priority chain over (sel, tval) pairs
)

func (nd *onode) eachInput(f func(*hdl.Signal)) {
	switch nd.kind {
	case nkMux:
		f(nd.sel)
		f(nd.tval)
		f(nd.fval)
	case nkPrim:
		for _, a := range nd.prim.Args {
			f(a)
		}
	case nkBuf:
		for _, s := range nd.srcs {
			f(s)
		}
	case nkCopy:
		f(nd.sel)
	case nkChain:
		for _, s := range nd.chain {
			f(s)
		}
		f(nd.fval)
	}
}

// optimize runs the compile pipeline over levelize's sorted node list and
// returns the surviving optimizer nodes (original topological order) plus
// the pipeline's stats. With opts.Keep == nil only the value-preserving
// constant-folding pass runs; with an explicit keep set the destructive
// passes follow: dead-node elimination, buffer-chain collapse, and mux-tree
// fusion (docs/SIMULATOR.md documents what each pass may and may not
// change).
func optimize(sorted []node, opts CompileOptions) ([]onode, CompileStats) {
	var stats CompileStats
	ons := make([]onode, len(sorted))
	for i, nd := range sorted {
		o := onode{out: nd.out()}
		switch {
		case nd.mux != nil:
			o.kind = nkMux
			o.sel, o.tval, o.fval = nd.mux.Sel, nd.mux.TVal, nd.mux.FVal
		case nd.prim != nil:
			o.kind = nkPrim
			o.prim = nd.prim
		default:
			o.kind = nkBuf
			o.srcs = nd.buf.Sources()
		}
		ons[i] = o
	}

	foldConstants(ons, &stats)
	if opts.Keep != nil {
		keep := make(map[*hdl.Signal]bool, len(opts.Keep))
		for _, s := range opts.Keep {
			keep[s] = true
		}
		eliminateDead(ons, keep, &stats)
		collapseBuffers(ons, keep, &stats)
		fuseMuxChains(ons, keep, &stats)
	}

	alive := ons[:0]
	for i := range ons {
		if !ons[i].dead {
			alive = append(alive, ons[i])
		}
	}
	stats.Nodes = len(alive)
	for i := range alive {
		if alive[i].kind == nkPrim {
			stats.Spilled++
		}
	}
	return alive, stats
}

// foldConstants is the value-preserving pass: muxes whose select is a
// compile-time constant become copies of the chosen input (or constants, if
// that input is itself constant), muxes whose branches are the same signal
// become copies, and buffers whose sources are all constant become
// constants. Folded constants propagate through combinational outputs —
// never through registers, whose latched value lags their driver by a cycle
// and starts at the construction-time value. A folded node still writes its
// output every Eval, so the fold is watcher-identical: the same value
// sequence reaches the same hooks, which is why this pass is safe even in
// keep-everything mode.
func foldConstants(ons []onode, stats *CompileStats) {
	constOf := make(map[*hdl.Signal]uint64)
	valOf := func(s *hdl.Signal) (uint64, bool) {
		if s.IsConst() {
			return s.Value(), true
		}
		v, ok := constOf[s]
		return v, ok
	}
	for i := range ons {
		nd := &ons[i]
		switch nd.kind {
		case nkMux:
			if sv, ok := valOf(nd.sel); ok {
				src := nd.fval
				if sv != 0 {
					src = nd.tval
				}
				if cv, ok := valOf(src); ok {
					nd.kind, nd.constVal = nkConst, cv&nd.out.Mask()
				} else {
					nd.kind, nd.sel = nkCopy, src
				}
				stats.Folded++
			} else if nd.tval == nd.fval {
				if cv, ok := valOf(nd.tval); ok {
					nd.kind, nd.constVal = nkConst, cv&nd.out.Mask()
				} else {
					nd.kind, nd.sel = nkCopy, nd.tval
				}
				stats.Folded++
			}
		case nkBuf:
			all := true
			var v uint64
			for _, s := range nd.srcs {
				cv, ok := valOf(s)
				if !ok {
					all = false
					break
				}
				v |= cv
			}
			if all {
				nd.kind, nd.constVal = nkConst, v&nd.out.Mask()
				stats.Folded++
			}
		case nkCopy:
			if cv, ok := valOf(nd.sel); ok {
				nd.kind, nd.constVal = nkConst, cv&nd.out.Mask()
				stats.Folded++
			}
		}
		if nd.kind == nkConst && nd.out.Kind() != hdl.Reg {
			constOf[nd.out] = nd.constVal
		}
	}
}

// eliminateDead removes every node outside the live closure of the keep set.
// The closure walks backward from the kept signals' producers and from every
// register-driving node — register state always keeps evolving, so resumed
// or long-running campaigns never diverge — following combinational operand
// edges (register operands terminate a walk: their drivers are roots
// already).
func eliminateDead(ons []onode, keep map[*hdl.Signal]bool, stats *CompileStats) {
	producer := make(map[*hdl.Signal]int, len(ons))
	for i := range ons {
		producer[ons[i].out] = i
	}
	live := make([]bool, len(ons))
	var stack []int
	mark := func(s *hdl.Signal) {
		if p, ok := producer[s]; ok && !live[p] {
			live[p] = true
			stack = append(stack, p)
		}
	}
	for s := range keep { //sonar:nondeterministic-ok marking order cannot change the live set (a monotone fixpoint), and surviving nodes keep their original topological positions
		mark(s)
	}
	for i := range ons {
		if ons[i].out.Kind() == hdl.Reg && !live[i] {
			live[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ons[i].eachInput(func(in *hdl.Signal) {
			if in.Kind() != hdl.Reg {
				mark(in)
			}
		})
	}
	for i := range ons {
		if !live[i] {
			ons[i].dead = true
			stats.Eliminated++
		}
	}
}

// useCounts returns how often each signal appears as an operand of a live
// node.
func useCounts(ons []onode) map[*hdl.Signal]int {
	uses := make(map[*hdl.Signal]int)
	for i := range ons {
		if ons[i].dead {
			continue
		}
		ons[i].eachInput(func(in *hdl.Signal) { uses[in]++ })
	}
	return uses
}

// collapseBuffers splices single-use interior buffers into their consuming
// buffer's source list: a validity tree OR(a, OR(b, c)) flattens to
// OR(a, b, c), one node instead of two. Only unkept, non-register buffers
// whose output mask cannot truncate any source (out at least as wide as
// every source) are spliced — the OR of the sources is then bit-identical
// at the consumer. Consumers are processed in topological order, so a chain
// of buffers collapses fully into its final consumer in one pass.
func collapseBuffers(ons []onode, keep map[*hdl.Signal]bool, stats *CompileStats) {
	producer := make(map[*hdl.Signal]int, len(ons))
	for i := range ons {
		if !ons[i].dead {
			producer[ons[i].out] = i
		}
	}
	uses := useCounts(ons)
	splicable := func(s *hdl.Signal) (int, bool) {
		p, ok := producer[s]
		if !ok {
			return 0, false
		}
		b := &ons[p]
		if b.dead || b.kind != nkBuf || keep[s] || s.Kind() == hdl.Reg || uses[s] != 1 {
			return 0, false
		}
		for _, src := range b.srcs {
			if src.Width() > s.Width() {
				return 0, false
			}
		}
		return p, true
	}
	for i := range ons {
		c := &ons[i]
		if c.dead || c.kind != nkBuf {
			continue
		}
		var merged []*hdl.Signal
		changed := false
		for _, src := range c.srcs {
			if p, ok := splicable(src); ok {
				merged = append(merged, ons[p].srcs...)
				ons[p].dead = true
				stats.Collapsed++
				changed = true
				continue
			}
			merged = append(merged, src)
		}
		if changed {
			c.srcs = merged
		}
	}
}

// fuseMuxChains fuses FVal-nested mux chains — the shape hdl.MuxTree emits
// for arbiter grants, g = v0 ? d0 : (v1 ? d1 : (... : fb)) — into one
// nkChain superinstruction. An interior mux is absorbed when it is unkept,
// not a register, and its output's only use is as the false input of the
// mux above it; absorption stops at the first interior whose output mask
// could truncate a value flowing through it (every data/fallback value must
// fit in every interior width above its entry point, so the fused
// root-masked evaluation is bit-identical). Each root walks its whole chain
// downward, so one pass suffices for maximal chains.
func fuseMuxChains(ons []onode, keep map[*hdl.Signal]bool, stats *CompileStats) {
	producer := make(map[*hdl.Signal]int, len(ons))
	for i := range ons {
		if !ons[i].dead {
			producer[ons[i].out] = i
		}
	}
	uses := useCounts(ons)
	// fvalOf[s] = index of the live mux whose false input is s.
	fvalOf := make(map[*hdl.Signal]int)
	for i := range ons {
		if !ons[i].dead && ons[i].kind == nkMux {
			fvalOf[ons[i].fval] = i
		}
	}
	absorbable := func(i int) bool {
		nd := &ons[i]
		if nd.dead || nd.kind != nkMux || keep[nd.out] || nd.out.Kind() == hdl.Reg || uses[nd.out] != 1 {
			return false
		}
		_, ok := fvalOf[nd.out]
		return ok
	}
	for i := range ons {
		root := &ons[i]
		if root.dead || root.kind != nkMux || absorbable(i) {
			continue // absorbed into the root above it instead
		}
		chain := []*hdl.Signal{root.sel, root.tval}
		fallback := root.fval
		minW := root.out.Width()
		for {
			j, ok := producer[fallback]
			if !ok || !absorbable(j) {
				break
			}
			m := &ons[j]
			w := minW
			if m.out.Width() < w {
				w = m.out.Width()
			}
			// Absorbing m drops m's own output mask (and keeps only the
			// root's), so everything that can flow out of m — its data input
			// and its fallback — must fit every interior width above it.
			if m.tval.Width() > w || m.fval.Width() > w {
				break
			}
			minW = w
			chain = append(chain, m.sel, m.tval)
			fallback = m.fval
			m.dead = true
			stats.Fused++
		}
		if len(chain) == 2 {
			continue // nothing absorbed
		}
		root.kind = nkChain
		root.chain = chain
		root.fval = fallback
	}
}
