package sim

import (
	"fmt"
	"testing"

	"sonar/internal/hdl"
	"sonar/internal/hdl/gen"
)

// testVal derives a deterministic pseudo-random stimulus value from the test
// coordinates (splitmix-style), so the lane and scalar sides of a
// differential run agree on inputs without sharing an RNG.
func testVal(seed int64, cycle, lane, input int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(cycle)<<32 ^ uint64(lane)<<16 ^ uint64(input)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// simEvent is one watch-hook firing, keyed by dense signal id so events from
// independently elaborated netlists compare directly.
type simEvent struct {
	id       int
	old, new uint64
	cycle    int64
}

// TestLaneVsScalar is the lane evaluator's differential harness: for a range
// of generated (check-verified) netlists it runs one 64-lane simulation
// against 64 independent scalar simulations with per-lane stimulus, and
// after every cycle requires every signal in every lane to match the scalar
// reference — and every lane watch-hook sequence to match the scalar
// watcher sequence of that lane's reference run.
func TestLaneVsScalar(t *testing.T) {
	const cycles = 24
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := gen.Config{Seed: seed, Nodes: 40, Regs: 5, Arbiters: 2, PrimShare: 0.3}
			laneNet, err := gen.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ls, err := NewLanes(laneNet)
			if err != nil {
				t.Fatal(err)
			}
			if ls.SpilledNodes() == 0 {
				t.Fatalf("seed %d generated no prim nodes; spill path unexercised", seed)
			}

			var inputs []*hdl.Signal
			for _, s := range laneNet.Signals() {
				if s.Kind() == hdl.Input {
					inputs = append(inputs, s)
				}
			}

			var laneEvents [hdl.Lanes][]simEvent
			for _, s := range laneNet.Signals() {
				if s.Kind() != hdl.Wire && s.Kind() != hdl.Reg {
					continue
				}
				ls.WatchLanes(s, func(sig *hdl.Signal, lane int, old, new uint64, cycle int64) {
					laneEvents[lane] = append(laneEvents[lane], simEvent{sig.ID(), old, new, cycle})
				})
			}

			var scalars [hdl.Lanes]*Simulator
			var scalarEvents [hdl.Lanes][]simEvent
			for lane := range scalars {
				net, err := gen.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				scalars[lane], err = New(net)
				if err != nil {
					t.Fatal(err)
				}
				l := lane
				for _, s := range net.Signals() {
					if s.Kind() != hdl.Wire && s.Kind() != hdl.Reg {
						continue
					}
					s.Watch(func(sig *hdl.Signal, old, new uint64, cycle int64) {
						scalarEvents[l] = append(scalarEvents[l], simEvent{sig.ID(), old, new, cycle})
					})
				}
			}

			for c := 0; c < cycles; c++ {
				for lane := 0; lane < hdl.Lanes; lane++ {
					ref := scalars[lane].Netlist()
					for ii, in := range inputs {
						v := testVal(seed, c, lane, ii)
						ls.Plane().Set(in, lane, v)
						ref.SignalByID(in.ID()).Set(v)
					}
				}
				ls.Tick()
				for lane := range scalars {
					scalars[lane].Tick()
				}
				for lane := 0; lane < hdl.Lanes; lane++ {
					ref := scalars[lane].Netlist()
					for _, s := range laneNet.Signals() {
						want := ref.SignalByID(s.ID()).Value()
						got := ls.Plane().Get(s, lane)
						if got != want {
							t.Fatalf("cycle %d lane %d signal %s: lane=%#x scalar=%#x",
								c, lane, s.Name(), got, want)
						}
					}
				}
			}

			for lane := 0; lane < hdl.Lanes; lane++ {
				le, se := laneEvents[lane], scalarEvents[lane]
				if len(le) != len(se) {
					t.Fatalf("lane %d: %d lane events vs %d scalar events", lane, len(le), len(se))
				}
				for i := range le {
					if le[i] != se[i] {
						t.Fatalf("lane %d event %d: lane %+v scalar %+v", lane, i, le[i], se[i])
					}
				}
				if len(le) == 0 {
					t.Fatalf("lane %d observed no events; stimulus too weak", lane)
				}
			}
		})
	}
}

// TestLaneMuxTruth checks the sliced mux equation on a hand-built circuit
// with divergent lane stimulus.
func TestLaneMuxTruth(t *testing.T) {
	n := hdl.NewNetlist("lanemux")
	m := n.Module("top")
	sel := m.Input("sel", 1)
	a := m.Input("a", 8)
	b := m.Input("b", 8)
	m.Mux("out", sel, a, b)
	ls, err := NewLanes(n)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < hdl.Lanes; lane++ {
		ls.Plane().Set(sel, lane, uint64(lane)&1)
		ls.Plane().Set(a, lane, uint64(lane))
		ls.Plane().Set(b, lane, uint64(255-lane))
	}
	ls.Eval()
	for lane := 0; lane < hdl.Lanes; lane++ {
		want := uint64(255 - lane)
		if lane&1 == 1 {
			want = uint64(lane)
		}
		got, err := ls.PeekLane("top.out", lane)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("lane %d: out=%d want %d", lane, got, want)
		}
	}
}

// TestLaneRegisterLatch checks per-lane register latching: registers update
// only at Tick and only in lanes whose enable is set.
func TestLaneRegisterLatch(t *testing.T) {
	n := hdl.NewNetlist("lanereg")
	m := n.Module("top")
	en := m.Input("en", 1)
	a := m.Input("a", 8)
	r := m.Reg("r", 8)
	m.MuxInto(r, en, a, r)
	ls, err := NewLanes(n)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < hdl.Lanes; lane++ {
		ls.Plane().Set(en, lane, uint64(lane)&1)
		ls.Plane().Set(a, lane, uint64(lane))
	}
	ls.Eval() // combinational settle must not move the register
	for lane := 0; lane < hdl.Lanes; lane++ {
		if got := ls.Plane().Get(r, lane); got != 0 {
			t.Fatalf("lane %d: register moved on Eval: %d", lane, got)
		}
	}
	ls.Tick()
	for lane := 0; lane < hdl.Lanes; lane++ {
		want := uint64(0)
		if lane&1 == 1 {
			want = uint64(lane)
		}
		if got := ls.Plane().Get(r, lane); got != want {
			t.Fatalf("lane %d: r=%d want %d", lane, got, want)
		}
	}
	if ls.Cycle() != 1 {
		t.Fatalf("cycle = %d after one Tick", ls.Cycle())
	}
}

// TestLaneStoreLaneDemux checks that demuxing a lane back through the scalar
// plane reproduces that lane's state exactly, firing scalar watch hooks.
func TestLaneStoreLaneDemux(t *testing.T) {
	cfg := gen.Config{Seed: 11, Arbiters: 1}
	laneNet, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLanes(laneNet)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []*hdl.Signal
	for _, s := range laneNet.Signals() {
		if s.Kind() == hdl.Input {
			inputs = append(inputs, s)
		}
	}
	for c := 0; c < 8; c++ {
		for lane := 0; lane < hdl.Lanes; lane++ {
			for ii, in := range inputs {
				ls.Plane().Set(in, lane, testVal(cfg.Seed, c, lane, ii))
			}
		}
		ls.Tick()
	}
	for _, lane := range []int{0, 17, 63} {
		ls.Plane().StoreLane(lane)
		for _, s := range laneNet.Signals() {
			if got, want := s.Value(), ls.Plane().Get(s, lane); got != want {
				t.Fatalf("lane %d signal %s: scalar=%#x plane=%#x", lane, s.Name(), got, want)
			}
		}
	}
}
