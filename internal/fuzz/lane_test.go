package fuzz

import (
	"bytes"
	"fmt"
	"testing"
)

// TestLaneMatrix is the lane-demux half of the determinism contract, run by
// CI as a lanes × workers matrix under -race: for a fixed (Seed, Workers,
// BatchSize), the campaign event stream must be byte-identical at every
// Lanes setting — lane grouping moves evaluation work, never bytes.
func TestLaneMatrix(t *testing.T) {
	stream := func(lanes, workers int) []byte {
		opt := SonarOptions(48)
		opt.Workers = workers
		opt.BatchSize = 6
		opt.Lanes = lanes
		opt, mem := observedOptions(opt)
		RunParallel(liteFactory, opt)
		return mem.Bytes()
	}
	baseline := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		baseline[workers] = stream(1, workers)
		if len(baseline[workers]) == 0 {
			t.Fatalf("workers=%d: no events emitted", workers)
		}
	}
	for _, lanes := range []int{1, 64} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(t *testing.T) {
				if !bytes.Equal(stream(lanes, workers), baseline[workers]) {
					t.Errorf("lanes=%d event stream differs from lanes=1 at workers=%d",
						lanes, workers)
				}
			})
		}
	}
}

// TestLaneStatsIdentical extends the contract to the serial engine and to
// Stats: lane widths (including awkward ones that do not divide the batch
// size) must not change any campaign result.
func TestLaneStatsIdentical(t *testing.T) {
	base := SonarOptions(30)
	want := Run(liteFactory(), base)
	for _, lanes := range []int{0, 1, 7, 64, 1000} {
		opt := base
		opt.Lanes = lanes
		statsEqual(t, want, Run(liteFactory(), opt))
	}

	pbase := SonarOptions(33)
	pbase.Workers = 3
	pbase.BatchSize = 5 // batch not a multiple of any lane width below
	pwant := RunParallel(liteFactory, pbase)
	for _, lanes := range []int{7, 64} {
		opt := pbase
		opt.Lanes = lanes
		statsEqual(t, pwant, RunParallel(liteFactory, opt))
	}
}

// TestNormalizeLanes pins the clamp: 0 and negatives mean scalar, anything
// past the plane word width saturates at hdl.Lanes.
func TestNormalizeLanes(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {64, 64}, {65, 64}, {1 << 20, 64},
	} {
		if got := normalizeLanes(Options{Lanes: c.in}); got != c.want {
			t.Errorf("normalizeLanes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
