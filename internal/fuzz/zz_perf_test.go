package fuzz

import (
	"testing"
	"time"

	"sonar/internal/boom"
)

func TestPerfCampaign(t *testing.T) {
	d := NewDUT(boom.New())
	// Identify strict points (no const-valid peer, at least 2 valid reqs).
	strict := make(map[int]bool)
	for _, p := range d.Analysis.Monitored() {
		nv := 0
		for i := range p.Requests {
			if p.Requests[i].HasValid() {
				nv++
			}
		}
		if nv == len(p.Requests) && nv >= 2 {
			strict[p.ID] = true
		}
	}
	t.Logf("strict monitorable points: %d", len(strict))
	for _, mode := range []string{"sonar", "random"} {
		opt := SonarOptions(400)
		if mode == "random" {
			opt = RandomOptions(400)
		}
		t1 := time.Now()
		st := Run(d, opt)
		ns := 0
		for id := range st.TriggeredPoints {
			if strict[id] {
				ns++
			}
		}
		last := st.PerIteration[len(st.PerIteration)-1]
		t.Logf("%s: %v triggered=%d strictTriggered=%d timingdiffs=%d corpus=%d",
			mode, time.Since(t1).Round(time.Millisecond), last.CumPoints, ns, last.CumTimingDiffs, st.CorpusSize)
	}
}
