package fuzz

import "math/rand"

// countedSource wraps a campaign RNG source with a draw counter, giving the
// durable campaign engine a serializable RNG position: a checkpoint stores
// the number of draws each worker has made, and resume reconstructs the
// exact generator state by replaying that many draws from the seed. The
// wrapper delegates Int63 and Uint64 unchanged (both advance the underlying
// generator by exactly one step), so a counted RNG produces the same draw
// sequence as rand.New(rand.NewSource(seed)) — attaching the counter never
// perturbs a campaign.
type countedSource struct {
	src rand.Source64
	n   uint64
}

// newCountedSource returns a counted source for the given seed,
// fast-forwarded to the given cursor (number of draws already consumed).
func newCountedSource(seed int64, cursor uint64) *countedSource {
	// rand.NewSource's concrete type implements Source64; the assertion is
	// pinned by TestCountedSourceMatchesPlainSource.
	s := &countedSource{src: rand.NewSource(seed).(rand.Source64)}
	for i := uint64(0); i < cursor; i++ {
		s.src.Uint64()
	}
	s.n = cursor
	return s
}

// Int63 implements rand.Source.
func (s *countedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *countedSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the cursor with the state.
func (s *countedSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// cursor returns the number of draws consumed so far — the value a
// checkpoint stores and newCountedSource replays.
func (s *countedSource) cursor() uint64 { return s.n }
