package fuzz

import (
	"math/rand"

	"sonar/internal/isa"
)

// MutateDirected applies the interval-guided directed mutation (paper
// §6.2.1): insert or remove instructions at the head of the dependency
// chain, in the seed's current direction. Inserting delays the parsing time
// of all downstream chain-dependent instructions; removing advances it —
// the monotonic knob the adaptive strategy relies on.
func MutateDirected(seed *Seed, rng *rand.Rand) *Testcase {
	tc := seed.TC.Clone()
	k := 1 + rng.Intn(3)
	if rng.Intn(4) == 0 {
		// Occasionally move the whole window by editing the head chain.
		if seed.Dir >= 0 {
			tc.HeadChain = append(tc.HeadChain, isa.DepChain(RegChain, k)...)
		} else if len(tc.HeadChain) > k {
			tc.HeadChain = tc.HeadChain[:len(tc.HeadChain)-k]
		} else {
			tc.HeadChain = tc.HeadChain[:0]
		}
	} else {
		// The primary knob: the probe's cycle-granular delay, which moves
		// its request timing without disturbing program layout.
		tc.ProbeDelay += seed.Dir * k
		if tc.ProbeDelay < 0 {
			tc.ProbeDelay = 0
		}
		if tc.ProbeDelay > 61 {
			tc.ProbeDelay = 61
		}
	}
	// A light random touch keeps exploration alive without disrupting the
	// critical structure; similarity enhancement gets its own draw because
	// persistent contention depends on it (§6.2.2).
	if rng.Intn(2) == 0 {
		enhanceSimilarity(tc, rng)
	}
	if rng.Intn(4) == 0 {
		mutateRandomRegion(tc, rng)
	}
	return tc
}

// MutateRandom applies unguided mutation: random region edits only, the
// behaviour of a fuzzer without the directed strategy (Figure 10 ablation).
func MutateRandom(seed *Seed, rng *rand.Rand) *Testcase {
	tc := seed.TC.Clone()
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		mutateRandomRegion(tc, rng)
	}
	return tc
}

// mutateRandomRegion applies one structure-agnostic random edit:
// replace/insert/delete a filler, retarget a memory offset, or change the
// probe class. Data-similarity enhancement is deliberately NOT among these:
// it is part of Sonar's directed mutation design (§6.2.2), not of the
// random-mutation baselines.
func mutateRandomRegion(tc *Testcase, rng *rand.Rand) {
	region := &tc.Epilogue
	if rng.Intn(2) == 0 && len(tc.Prologue) > 0 {
		region = &tc.Prologue
	}
	switch rng.Intn(6) {
	case 0: // replace a filler
		if len(*region) > 0 {
			(*region)[rng.Intn(len(*region))] = randomFiller(rng)
		}
	case 1: // insert a filler
		*region = append(*region, randomFiller(rng))
	case 2: // delete a filler
		if len(*region) > 1 {
			i := rng.Intn(len(*region))
			*region = append((*region)[:i], (*region)[i+1:]...)
		}
	case 3: // retarget a memory access (base register and offset)
		idxs := memOpIndices(*region)
		if len(idxs) > 0 {
			i := idxs[rng.Intn(len(idxs))]
			(*region)[i].Imm = int64(rng.Intn(64)-32) * 64
			(*region)[i].Rs1 = fillerBases[rng.Intn(len(fillerBases))]
		}
	case 4: // change the probe class
		tc.Probe = SecretPattern(rng.Intn(int(numPatterns)))
	default: // re-roll one secret-dependent pattern, so lineages do not
		// fixate on secret operations with weak timing signals
		if len(tc.Patterns) > 0 {
			tc.Patterns[rng.Intn(len(tc.Patterns))] = SecretPattern(rng.Intn(int(numPatterns)))
		}
	}
}

// enhanceSimilarity aligns two memory requests onto the same cacheline —
// the data-similarity condition for persistent contention (§6.2.2). It
// aligns either two random fillers, or the probe with a filler (in either
// direction), so the chain-timed probe can revisit a line whose first
// access has fixed timing.
func enhanceSimilarity(tc *Testcase, rng *rand.Rand) {
	all := append(append([]isa.Instr(nil), tc.Prologue...), tc.Epilogue...)
	idxs := memOpIndices(all)
	switch rng.Intn(6) {
	case 0: // probe adopts a filler's line (base register and offset)
		if len(idxs) > 0 {
			src := all[idxs[rng.Intn(len(idxs))]]
			tc.ProbeOffset = src.Imm
			tc.ProbeBase = src.Rs1
		}
	case 1: // a filler adopts the probe's line
		if len(idxs) > 0 {
			setRegionAccess(tc, idxs[rng.Intn(len(idxs))], tc.ProbeBase, tc.ProbeOffset)
		}
	case 2, 4, 5: // probe and an epilogue filler jointly move to a fresh line:
		// the pair explores a storage unit the lineage has not visited
		// (keeps persistent-contention discovery from stalling on the
		// ancestors' few lines).
		line := int64(rng.Intn(64)-32) * 64
		base := fillerBases[rng.Intn(len(fillerBases))]
		tc.ProbeOffset = line
		tc.ProbeBase = base
		if eIdxs := memOpIndices(tc.Epilogue); len(eIdxs) > 0 {
			i := eIdxs[rng.Intn(len(eIdxs))]
			tc.Epilogue[i].Imm = line
			tc.Epilogue[i].Rs1 = base
		} else {
			tc.Epilogue = append(tc.Epilogue, isa.Load(isa.LD, 4, base, line))
		}
	default: // filler-to-filler alignment
		if len(idxs) < 2 {
			return
		}
		a := idxs[rng.Intn(len(idxs))]
		b := idxs[rng.Intn(len(idxs))]
		if a == b {
			return
		}
		setRegionAccess(tc, b, all[a].Rs1, all[a].Imm)
	}
}

// setRegionAccess rewrites a memory op's base register and offset in the
// region owning the concatenated index (prologue then epilogue).
func setRegionAccess(tc *Testcase, idx int, base uint8, imm int64) {
	if idx < len(tc.Prologue) {
		tc.Prologue[idx].Rs1 = base
		tc.Prologue[idx].Imm = imm
	} else {
		tc.Epilogue[idx-len(tc.Prologue)].Rs1 = base
		tc.Epilogue[idx-len(tc.Prologue)].Imm = imm
	}
}

func memOpIndices(region []isa.Instr) []int {
	var idxs []int
	for i, ins := range region {
		if ins.Op.IsMem() {
			idxs = append(idxs, i)
		}
	}
	return idxs
}
