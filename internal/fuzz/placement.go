// This file orders monitor placement by the static information-flow audit
// (internal/hdl/flow): highest-risk contention points get their monitors
// first. Placement is pure ordering — the instrumented point *set* is still
// exactly trace.Analysis.Monitored(), and every campaign output that could
// observe order (Snapshot.Triggered, detect.StateCompare, the interval
// maps) is ID-keyed or ID-sorted — so campaign event streams, checkpoints,
// and stats stay byte-identical to the pre-audit ordering.

package fuzz

import (
	"sync"

	"sonar/internal/hdl/flow"
	"sonar/internal/trace"
)

// auditRanks caches each shared analysis' monitorable rank order, keyed by
// the pre-rebind *trace.Analysis pointer the campaign passes around: every
// worker of a campaign shares one analysis, so the flow audit runs once per
// campaign, not once per worker. Rank entries are point IDs, which are
// stable across independently elaborated instances (trace.Analysis.Rebind),
// so one cached slice serves every rebound copy.
var auditRanks sync.Map // *trace.Analysis -> []int

// disableAuditPlacement reverts monitors to the pre-audit ascending-ID
// placement. Test hook: the byte-identity test pins rank-ordered campaigns
// against this baseline.
var disableAuditPlacement bool

// monitorPlacement returns the audit-ranked point list for a monitor over
// the (possibly rebound) analysis a. key is the campaign's shared analysis
// identity; rank IDs computed once under it are replayed onto a's points.
func monitorPlacement(key, a *trace.Analysis) []*trace.Point {
	if disableAuditPlacement {
		return nil
	}
	v, ok := auditRanks.Load(key)
	if !ok {
		au := flow.Analyze(a.Netlist, a, flow.Spec{})
		// LoadOrStore keeps the winner stable if two workers race here;
		// both computed the same IDs (the audit is deterministic), so
		// either result is the same bytes.
		v, _ = auditRanks.LoadOrStore(key, au.MonitorRankIDs())
	}
	ids := v.([]int)
	pts := make([]*trace.Point, len(ids))
	for i, id := range ids {
		pts[i] = a.Points[id]
	}
	return pts
}
