package fuzz

import "sonar/internal/trace"

// Executor is the execution substrate a campaign fuzzes: anything that can
// double-execute testcases and expose the contention-point analysis its
// snapshots refer to. The behavioral DUT models (package boom/nutshell via
// *DUT) and the netlist-backed LaneDUT both satisfy it, so every campaign
// engine — serial batches, RunParallel shards, shard leases — runs unchanged
// over either substrate.
//
// Contract: Execute returns an Execution whose buffers may live in recycled
// arenas; a result must stay valid across at least one subsequent Execute on
// the same executor (the dual-secret A/B pattern), exactly like DUT.Execute.
// ContentionAnalysis must return the same analysis (same point IDs) for
// every executor instance of one campaign, so stats fold identically across
// workers and fault-recovery replacements.
type Executor interface {
	// Execute runs one testcase under one secret value.
	Execute(tc *Testcase, secret uint64) *Execution
	// ContentionAnalysis returns the §5 contention-point identification the
	// executor's snapshots are indexed by.
	ContentionAnalysis() *trace.Analysis
}

// ExecPair is one iteration's dual execution: the same testcase run under
// SecretA and SecretB.
type ExecPair struct {
	// A and B are the executions under Options.SecretA and SecretB.
	A, B *Execution
}

// GroupExecutor is an Executor that executes whole lane groups of testcases
// at once — the netlist substrate's bit-parallel path (sim.LaneSimulator +
// monitor.LaneBank evaluate one testcase per bit of every plane word).
//
// The campaign engine drives a GroupExecutor through a fixed three-phase
// batch loop (prepare all, execute all, feed back all, each in ascending
// lane order) whose RNG draw order depends only on GroupWidth — never on
// Options.Lanes. Lanes is passed through as the chunk argument and may only
// change how the group is internally sliced across execution passes; the
// per-pair Executions must be a pure function of (testcase, secret), so
// campaign results stay byte-identical at every lane width (the
// TestLaneMatrix contract, extended to netlist DUTs by
// TestNetlistLaneMatrix).
type GroupExecutor interface {
	Executor
	// GroupWidth is the fixed number of testcase pairs one group holds.
	// Widths <= 1 opt out of grouped execution (the behavioral scalar path).
	GroupWidth() int
	// ExecuteGroup double-executes tcs (len(tcs) <= GroupWidth) under both
	// secrets, appending one ExecPair per testcase to dst in testcase order.
	// chunk is the effective Options.Lanes value: how many lanes (two per
	// pair) the executor may evaluate bit-parallel per pass; chunk <= 1
	// requests the scalar reference path. All returned Executions must stay
	// valid until the next ExecuteGroup or Execute call.
	ExecuteGroup(tcs []*Testcase, secretA, secretB uint64, chunk int, dst []ExecPair) []ExecPair
}

// ContentionAnalysis implements Executor; the behavioral DUT's analysis is
// computed (or rebound) at construction.
func (d *DUT) ContentionAnalysis() *trace.Analysis { return d.Analysis }
