package fuzz

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"sonar/internal/detect"
)

// Checkpoint file format (docs/CAMPAIGNS.md has the operator-facing
// reference): a single header line
//
//	#sonar-checkpoint v1 crc32=xxxxxxxx
//
// followed by one JSON object (the Checkpoint struct). The CRC32 (IEEE) of
// the JSON payload is stored in the header, so truncated or bit-flipped
// checkpoints are rejected at load time, and the version gates format
// evolution. Files are written atomically: serialize to a temp file in the
// destination directory, fsync, then rename over the target — a crash
// mid-write leaves the previous checkpoint intact.
const (
	checkpointMagic   = "#sonar-checkpoint"
	checkpointVersion = 1
	// defaultCheckpointEvery is the iteration period between periodic
	// checkpoints when Options.CheckpointEvery is zero.
	defaultCheckpointEvery = 500
)

// Shape is the campaign-defining subset of Options — the fields that make
// two campaigns the same campaign. Resume refuses a checkpoint whose shape
// differs from the offered Options; operational fields (checkpoint paths,
// timeouts, retry policy, Observer, FaultHook) are not part of the shape
// and may change across a pause/resume boundary.
type Shape struct {
	Iterations       int    `json:"iterations"`        // Options.Iterations
	Seed             int64  `json:"seed"`              // Options.Seed
	Retention        bool   `json:"retention"`         // Options.Retention
	Selection        bool   `json:"selection"`         // Options.Selection
	DirectedMutation bool   `json:"directed_mutation"` // Options.DirectedMutation
	DualCore         bool   `json:"dual_core"`         // Options.DualCore
	SecretA          uint64 `json:"secret_a"`          // Options.SecretA
	SecretB          uint64 `json:"secret_b"`          // Options.SecretB
	KeepFindings     int    `json:"keep_findings"`     // Options.KeepFindings
	RandomDirection  bool   `json:"random_direction"`  // Options.RandomDirection
	// Workers and BatchSize are the effective (post-clamp) values; the
	// parallel determinism contract is per (Seed, Workers, BatchSize).
	Workers   int `json:"workers"`
	BatchSize int `json:"batch_size"` // effective batch, like Workers
}

// shapeOf extracts a campaign's shape from its Options.
func shapeOf(opt Options) Shape {
	workers, batch := normalizeParallel(opt)
	return Shape{
		Iterations: opt.Iterations, Seed: opt.Seed,
		Retention: opt.Retention, Selection: opt.Selection,
		DirectedMutation: opt.DirectedMutation, DualCore: opt.DualCore,
		SecretA: opt.SecretA, SecretB: opt.SecretB,
		KeepFindings: opt.KeepFindings, RandomDirection: opt.RandomDirection,
		Workers: workers, BatchSize: batch,
	}
}

// pointIntvl is one per-point best-interval entry. Checkpoints store
// interval maps as point-sorted slices so the serialized form is
// byte-deterministic (Go map iteration order is randomized).
type pointIntvl struct {
	Point int   `json:"point"`
	Intvl int64 `json:"intvl"`
}

// sortIntvls converts an interval map to its canonical checkpoint form.
func sortIntvls(m map[int]int64) []pointIntvl {
	out := make([]pointIntvl, 0, len(m))
	for id, v := range m { //sonar:nondeterministic-ok keys collected then sorted
		out = append(out, pointIntvl{Point: id, Intvl: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// unsortIntvls rebuilds the interval map of a checkpointed slice.
func unsortIntvls(s []pointIntvl) map[int]int64 {
	m := make(map[int]int64, len(s))
	for _, pi := range s {
		m[pi.Point] = pi.Intvl
	}
	return m
}

// checkpointSeed is one retained corpus seed in checkpoint form: the
// testcase in its Marshal (annotated assembly) encoding plus the feedback
// that earned its place.
type checkpointSeed struct {
	TC     string       `json:"tc"`
	Intvls []pointIntvl `json:"intvls"`
	Dir    int          `json:"dir"`
	Target int          `json:"target"`
}

// checkpointCorpus is the global corpus in checkpoint form: the retained
// seeds in retention order and the per-point global best intervals.
type checkpointCorpus struct {
	Seeds []checkpointSeed `json:"seeds"`
	Best  []pointIntvl     `json:"best"`
}

// checkpointStats is Stats in checkpoint form: map fields become sorted
// slices and finding seeds are stored in their Marshal encoding.
type checkpointStats struct {
	PerIteration         []IterStats       `json:"per_iteration"`
	Findings             []*detect.Finding `json:"findings"`
	FindingSeeds         []string          `json:"finding_seeds"`
	Triggered            []int             `json:"triggered"`
	SingleValidTriggered int               `json:"single_valid_triggered"`
	EarlyTriggered       int               `json:"early_triggered"`
	EarlyBreakdown       [][2]int          `json:"early_breakdown"`
	CorpusSize           int               `json:"corpus_size"`
	ExecutedCycles       int64             `json:"executed_cycles"`
	// Best is the accumulator's per-point best-interval view (the one
	// backing the best-interval gauges); tracked only when an Observer is
	// attached, and re-seeded on resume so gauge continuity survives the
	// restart.
	Best []pointIntvl `json:"best"`
}

// Checkpoint is a self-describing snapshot of a parallel campaign at a
// merge barrier: everything Resume needs to continue the campaign
// bit-identically — corpus, statistics, per-shard iteration budgets and RNG
// cursors, and the event-stream position. Produced by campaigns with
// Options.Checkpoint set and by LoadCheckpoint.
type Checkpoint struct {
	// Version is the checkpoint format version (checkpointVersion).
	Version int `json:"version"`
	// DUT is the netlist name of the device under test (informational; the
	// resuming process supplies its own DUT constructor).
	DUT string `json:"dut"`
	// Shape identifies the campaign; Resume validates it.
	Shape Shape `json:"shape"`
	// Done is the campaign position in iterations: executed iterations
	// plus any dropped by abandoned shards. Done + sum(Rem) always equals
	// Shape.Iterations.
	Done int `json:"done"`
	// Round is the number of completed merge rounds.
	Round int `json:"round"`
	// Rem is the remaining iteration budget per shard (0 for drained or
	// abandoned shards).
	Rem []int `json:"rem"`
	// Cursors is the RNG draw count per shard; resume replays each shard's
	// generator to its cursor.
	Cursors []uint64 `json:"cursors"`
	// EventSeq is the sequence number of the last emitted event, so a
	// resumed campaign's event stream continues the original numbering.
	EventSeq int `json:"event_seq"`
	// Complete marks the final checkpoint of a finished campaign; resuming
	// a complete checkpoint returns its Stats without executing anything.
	Complete bool `json:"complete"`
	// Stats is the accumulated campaign statistics.
	Stats checkpointStats `json:"stats"`
	// Corpus is the merged global corpus.
	Corpus checkpointCorpus `json:"corpus"`
}

// snapshot captures the coordinator's position as a Checkpoint. Called only
// at merge barriers, where workers are quiescent and their corpora equal
// global.Snapshot().
func (c *coordinator) snapshot(complete bool) *Checkpoint {
	cp := &Checkpoint{
		Version:  checkpointVersion,
		DUT:      c.dut,
		Shape:    shapeOf(c.opt),
		Done:     c.opt.Iterations - c.left,
		Round:    c.round,
		Rem:      append([]int(nil), c.rem...),
		Cursors:  make([]uint64, c.workers),
		EventSeq: c.opt.Observer.Seq(),
		Complete: complete,
	}
	for i, w := range c.ws {
		if w != nil && w.src != nil {
			cp.Cursors[i] = w.src.cursor()
		}
	}
	st := c.acc.st
	cp.Stats = checkpointStats{
		PerIteration:         append([]IterStats(nil), st.PerIteration...),
		Findings:             append([]*detect.Finding(nil), st.Findings...),
		FindingSeeds:         make([]string, len(st.FindingSeeds)),
		SingleValidTriggered: st.SingleValidTriggered,
		EarlyTriggered:       st.EarlyTriggered,
		EarlyBreakdown:       append([][2]int(nil), st.EarlyBreakdown...),
		CorpusSize:           c.global.Len(),
		ExecutedCycles:       st.ExecutedCycles,
	}
	for i, tc := range st.FindingSeeds {
		cp.Stats.FindingSeeds[i] = tc.Marshal()
	}
	cp.Stats.Triggered = make([]int, 0, len(st.TriggeredPoints))
	for id := range st.TriggeredPoints { //sonar:nondeterministic-ok keys collected then sorted
		cp.Stats.Triggered = append(cp.Stats.Triggered, id)
	}
	sort.Ints(cp.Stats.Triggered)
	if c.acc.best != nil {
		cp.Stats.Best = sortIntvls(c.acc.best)
	}
	cp.Corpus.Seeds = make([]checkpointSeed, len(c.global.seeds))
	for i, s := range c.global.seeds {
		cp.Corpus.Seeds[i] = checkpointSeed{
			TC: s.TC.Marshal(), Intvls: sortIntvls(s.Intvls),
			Dir: s.Dir, Target: s.Target,
		}
	}
	cp.Corpus.Best = sortIntvls(c.global.best)
	return cp
}

// stats rebuilds the Stats (and the accumulator's best-interval view) of a
// checkpoint.
func (cp *Checkpoint) stats() (*Stats, []pointIntvl, error) {
	s := &cp.Stats
	st := &Stats{
		PerIteration:         append([]IterStats(nil), s.PerIteration...),
		Findings:             append([]*detect.Finding(nil), s.Findings...),
		TriggeredPoints:      make(map[int]bool, len(s.Triggered)),
		SingleValidTriggered: s.SingleValidTriggered,
		EarlyTriggered:       s.EarlyTriggered,
		EarlyBreakdown:       append([][2]int(nil), s.EarlyBreakdown...),
		CorpusSize:           s.CorpusSize,
		ExecutedCycles:       s.ExecutedCycles,
	}
	for _, id := range s.Triggered {
		st.TriggeredPoints[id] = true
	}
	st.FindingSeeds = make([]*Testcase, len(s.FindingSeeds))
	for i, src := range s.FindingSeeds {
		tc, err := Unmarshal(src)
		if err != nil {
			return nil, nil, fmt.Errorf("fuzz: checkpoint finding seed %d: %w", i, err)
		}
		st.FindingSeeds[i] = tc
	}
	return st, s.Best, nil
}

// corpus rebuilds the global corpus of a checkpoint.
func (cp *Checkpoint) corpus() (*Corpus, error) {
	c := NewCorpus()
	c.seeds = make([]*Seed, len(cp.Corpus.Seeds))
	for i, cs := range cp.Corpus.Seeds {
		tc, err := Unmarshal(cs.TC)
		if err != nil {
			return nil, fmt.Errorf("fuzz: checkpoint corpus seed %d: %w", i, err)
		}
		c.seeds[i] = &Seed{
			TC: tc, Intvls: unsortIntvls(cs.Intvls),
			Dir: cs.Dir, Target: cs.Target,
		}
	}
	c.best = unsortIntvls(cp.Corpus.Best)
	return c, nil
}

// CampaignOptions returns the Options that re-create the checkpointed
// campaign's shape. Callers layer their operational choices (Checkpoint
// path, Observer, timeouts) on top before passing the result to Resume.
func (cp *Checkpoint) CampaignOptions() Options {
	s := cp.Shape
	return Options{
		Iterations: s.Iterations, Seed: s.Seed,
		Retention: s.Retention, Selection: s.Selection,
		DirectedMutation: s.DirectedMutation, DualCore: s.DualCore,
		SecretA: s.SecretA, SecretB: s.SecretB,
		KeepFindings: s.KeepFindings, RandomDirection: s.RandomDirection,
		Workers: s.Workers, BatchSize: s.BatchSize,
	}
}

// validate sanity-checks a checkpoint's structural invariants. Load-time
// corruption is caught by the header CRC; validate guards against
// semantically impossible payloads (hand-edited files, version skew).
func (cp *Checkpoint) validate() error {
	if cp == nil {
		return fmt.Errorf("fuzz: nil checkpoint")
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("fuzz: unsupported checkpoint version %d (want %d)", cp.Version, checkpointVersion)
	}
	if len(cp.Rem) != cp.Shape.Workers || len(cp.Cursors) != cp.Shape.Workers {
		return fmt.Errorf("fuzz: checkpoint has %d shard budgets / %d cursors for %d workers",
			len(cp.Rem), len(cp.Cursors), cp.Shape.Workers)
	}
	rem := 0
	for i, r := range cp.Rem {
		if r < 0 {
			return fmt.Errorf("fuzz: checkpoint shard %d has negative budget %d", i, r)
		}
		rem += r
	}
	if cp.Done < 0 || cp.Done+rem != cp.Shape.Iterations {
		return fmt.Errorf("fuzz: checkpoint position %d+%d does not cover %d iterations",
			cp.Done, rem, cp.Shape.Iterations)
	}
	if len(cp.Stats.FindingSeeds) != len(cp.Stats.Findings) {
		return fmt.Errorf("fuzz: checkpoint has %d finding seeds for %d findings",
			len(cp.Stats.FindingSeeds), len(cp.Stats.Findings))
	}
	if cp.Complete && rem != 0 {
		return fmt.Errorf("fuzz: complete checkpoint with %d iterations remaining", rem)
	}
	return nil
}

// Save writes the checkpoint atomically (temp file + fsync + rename) and
// returns the file size in bytes. The previous checkpoint at path survives
// any failure.
func (cp *Checkpoint) Save(path string) (int, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return 0, fmt.Errorf("fuzz: marshal checkpoint: %w", err)
	}
	header := fmt.Sprintf("%s v%d crc32=%08x\n", checkpointMagic, cp.Version, crc32.ChecksumIEEE(payload))

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".sonar-checkpoint-*")
	if err != nil {
		return 0, fmt.Errorf("fuzz: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) (int, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if _, err := f.WriteString(header); err != nil {
		return cleanup(fmt.Errorf("fuzz: write checkpoint: %w", err))
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(fmt.Errorf("fuzz: write checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("fuzz: sync checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("fuzz: close checkpoint: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("fuzz: chmod checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("fuzz: publish checkpoint: %w", err)
	}
	return len(header) + len(payload), nil
}

// LoadCheckpoint reads and verifies a checkpoint file: header magic and
// version, payload CRC32 (rejecting truncated or corrupted files), JSON
// decoding, and the structural invariants of validate.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: read checkpoint: %w", err)
	}
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("fuzz: %s: not a checkpoint (missing header line)", path)
	}
	header, payload := string(data[:nl]), data[nl+1:]
	var version int
	var sum uint32
	if n, err := fmt.Sscanf(header, checkpointMagic+" v%d crc32=%08x", &version, &sum); err != nil || n != 2 {
		return nil, fmt.Errorf("fuzz: %s: not a checkpoint (bad header %q)", path, header)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("fuzz: %s: unsupported checkpoint version %d (want %d)", path, version, checkpointVersion)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("fuzz: %s: checkpoint corrupt or truncated (crc32 %08x, header says %08x)", path, got, sum)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(payload, cp); err != nil {
		return nil, fmt.Errorf("fuzz: %s: decode checkpoint: %w", path, err)
	}
	if err := cp.validate(); err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return cp, nil
}
