package fuzz

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"sonar/internal/detect"
)

// Checkpoint file format (docs/CAMPAIGNS.md has the operator-facing
// reference): a single header line
//
//	#sonar-checkpoint v1 crc32=xxxxxxxx
//
// followed by one JSON object (the Checkpoint struct). The CRC32 (IEEE) of
// the JSON payload is stored in the header, so truncated or bit-flipped
// checkpoints are rejected at load time, and the version gates format
// evolution. Files are written atomically: serialize to a temp file in the
// destination directory, fsync, then rename over the target — a crash
// mid-write leaves the previous checkpoint intact.
const (
	checkpointMagic   = "#sonar-checkpoint"
	checkpointVersion = 1
	// defaultCheckpointEvery is the iteration period between periodic
	// checkpoints when Options.CheckpointEvery is zero.
	defaultCheckpointEvery = 500
)

// Shape is the campaign-defining subset of Options — the fields that make
// two campaigns the same campaign. Resume refuses a checkpoint whose shape
// differs from the offered Options; operational fields (checkpoint paths,
// timeouts, retry policy, Observer, FaultHook) are not part of the shape
// and may change across a pause/resume boundary.
type Shape struct {
	Iterations       int    `json:"iterations"`        // Options.Iterations
	Seed             int64  `json:"seed"`              // Options.Seed
	Retention        bool   `json:"retention"`         // Options.Retention
	Selection        bool   `json:"selection"`         // Options.Selection
	DirectedMutation bool   `json:"directed_mutation"` // Options.DirectedMutation
	DualCore         bool   `json:"dual_core"`         // Options.DualCore
	SecretA          uint64 `json:"secret_a"`          // Options.SecretA
	SecretB          uint64 `json:"secret_b"`          // Options.SecretB
	KeepFindings     int    `json:"keep_findings"`     // Options.KeepFindings
	RandomDirection  bool   `json:"random_direction"`  // Options.RandomDirection
	// Workers and BatchSize are the effective (post-clamp) values; the
	// parallel determinism contract is per (Seed, Workers, BatchSize).
	Workers   int `json:"workers"`
	BatchSize int `json:"batch_size"` // effective batch, like Workers
}

// shapeOf extracts a campaign's shape from its Options.
func shapeOf(opt Options) Shape {
	workers, batch := normalizeParallel(opt)
	return Shape{
		Iterations: opt.Iterations, Seed: opt.Seed,
		Retention: opt.Retention, Selection: opt.Selection,
		DirectedMutation: opt.DirectedMutation, DualCore: opt.DualCore,
		SecretA: opt.SecretA, SecretB: opt.SecretB,
		KeepFindings: opt.KeepFindings, RandomDirection: opt.RandomDirection,
		Workers: workers, BatchSize: batch,
	}
}

// Options returns the Options that re-create the shape's campaign. Callers
// layer their operational choices (Checkpoint path, Observer, timeouts,
// Lanes) on top; the returned Workers and BatchSize are the shape's
// effective values, which normalizeParallel maps to themselves.
func (s Shape) Options() Options {
	return Options{
		Iterations: s.Iterations, Seed: s.Seed,
		Retention: s.Retention, Selection: s.Selection,
		DirectedMutation: s.DirectedMutation, DualCore: s.DualCore,
		SecretA: s.SecretA, SecretB: s.SecretB,
		KeepFindings: s.KeepFindings, RandomDirection: s.RandomDirection,
		Workers: s.Workers, BatchSize: s.BatchSize,
	}
}

// PointIntvl is one per-point best-interval entry. Checkpoints and the
// campaign-service wire formats store interval maps as point-sorted slices
// so the serialized form is byte-deterministic (Go map iteration order is
// randomized).
type PointIntvl struct {
	// Point is the contention point ID.
	Point int `json:"point"`
	// Intvl is the best (minimum) distinct-request interval observed.
	Intvl int64 `json:"intvl"`
}

// sortIntvls converts an interval map to its canonical checkpoint form.
func sortIntvls(m map[int]int64) []PointIntvl {
	out := make([]PointIntvl, 0, len(m))
	for id, v := range m { //sonar:nondeterministic-ok keys collected then sorted
		out = append(out, PointIntvl{Point: id, Intvl: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// unsortIntvls rebuilds the interval map of a checkpointed slice.
func unsortIntvls(s []PointIntvl) map[int]int64 {
	m := make(map[int]int64, len(s))
	for _, pi := range s {
		m[pi.Point] = pi.Intvl
	}
	return m
}

// SeedWire is one retained corpus seed in serialized form: the testcase in
// its Marshal (annotated assembly) encoding plus the feedback that earned
// its place. Checkpoints and shard-lease payloads share this encoding.
type SeedWire struct {
	// TC is the testcase in Testcase.Marshal form.
	TC string `json:"tc"`
	// Intvls is the seed's per-point best-interval feedback, point-sorted.
	Intvls []PointIntvl `json:"intvls"`
	// Dir is the adaptive mutation direction (+1 grow, -1 shrink).
	Dir int `json:"dir"`
	// Target is the contention point the seed was last mutated towards.
	Target int `json:"target"`
}

// wireSeed converts a retained seed to its wire form.
func wireSeed(s *Seed) SeedWire {
	return SeedWire{TC: s.TC.Marshal(), Intvls: sortIntvls(s.Intvls), Dir: s.Dir, Target: s.Target}
}

// seed rebuilds the in-memory seed of a wire entry.
func (sw *SeedWire) seed() (*Seed, error) {
	tc, err := Unmarshal(sw.TC)
	if err != nil {
		return nil, err
	}
	return &Seed{TC: tc, Intvls: unsortIntvls(sw.Intvls), Dir: sw.Dir, Target: sw.Target}, nil
}

// CorpusWire is the global corpus in serialized form: the retained seeds in
// retention order and the per-point global best intervals. It appears in
// checkpoints and in shard-lease payloads (every lease carries the merged
// corpus the batch must run against).
type CorpusWire struct {
	// Seeds are the retained seeds in retention order.
	Seeds []SeedWire `json:"seeds"`
	// Best is the per-point global best interval, point-sorted.
	Best []PointIntvl `json:"best"`
}

// newCorpusWire converts a corpus to its wire form.
func newCorpusWire(c *Corpus) CorpusWire {
	cw := CorpusWire{Seeds: make([]SeedWire, len(c.seeds)), Best: sortIntvls(c.best)}
	for i, s := range c.seeds {
		cw.Seeds[i] = wireSeed(s)
	}
	return cw
}

// corpus rebuilds the in-memory corpus of a wire entry.
func (cw *CorpusWire) corpus() (*Corpus, error) {
	c := NewCorpus()
	c.seeds = make([]*Seed, len(cw.Seeds))
	for i := range cw.Seeds {
		s, err := cw.Seeds[i].seed()
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus seed %d: %w", i, err)
		}
		c.seeds[i] = s
	}
	c.best = unsortIntvls(cw.Best)
	return c, nil
}

// StatsWire is Stats in serialized form: map fields become sorted slices
// and finding seeds are stored in their Marshal encoding. Checkpoints embed
// it, and the campaign service serves it as a finished campaign's result.
type StatsWire struct {
	// PerIteration is the campaign's canonical per-iteration progress series.
	PerIteration []IterStats `json:"per_iteration"`
	// Findings are the retained dual-differential findings.
	Findings []*detect.Finding `json:"findings"`
	// FindingSeeds are the finding testcases in Testcase.Marshal form,
	// parallel to Findings.
	FindingSeeds []string `json:"finding_seeds"`
	// Triggered is the sorted set of triggered contention point IDs.
	Triggered []int `json:"triggered"`
	// SingleValidTriggered mirrors Stats.SingleValidTriggered.
	SingleValidTriggered int `json:"single_valid_triggered"`
	// EarlyTriggered mirrors Stats.EarlyTriggered.
	EarlyTriggered int `json:"early_triggered"`
	// EarlyBreakdown mirrors Stats.EarlyBreakdown.
	EarlyBreakdown [][2]int `json:"early_breakdown"`
	// CorpusSize is the merged corpus size at the capture point.
	CorpusSize int `json:"corpus_size"`
	// ExecutedCycles is the total simulated cycle count.
	ExecutedCycles int64 `json:"executed_cycles"`
	// Best is the accumulator's per-point best-interval view (the one
	// backing the best-interval gauges); tracked only when an Observer is
	// attached, and re-seeded on resume so gauge continuity survives the
	// restart.
	Best []PointIntvl `json:"best"`
}

// Wire returns the canonical serialized form of the statistics — the same
// encoding checkpoints embed, minus the observer-only Best view. Because
// every map is sorted and testcases use their Marshal encoding, equal
// campaigns produce byte-equal encodings; the campaign service's result
// endpoint relies on this to compare distributed and local runs.
func (st *Stats) Wire() StatsWire {
	s := StatsWire{
		PerIteration:         append([]IterStats(nil), st.PerIteration...),
		Findings:             append([]*detect.Finding(nil), st.Findings...),
		FindingSeeds:         make([]string, len(st.FindingSeeds)),
		SingleValidTriggered: st.SingleValidTriggered,
		EarlyTriggered:       st.EarlyTriggered,
		EarlyBreakdown:       append([][2]int(nil), st.EarlyBreakdown...),
		CorpusSize:           st.CorpusSize,
		ExecutedCycles:       st.ExecutedCycles,
	}
	for i, tc := range st.FindingSeeds {
		s.FindingSeeds[i] = tc.Marshal()
	}
	s.Triggered = make([]int, 0, len(st.TriggeredPoints))
	for id := range st.TriggeredPoints { //sonar:nondeterministic-ok keys collected then sorted
		s.Triggered = append(s.Triggered, id)
	}
	sort.Ints(s.Triggered)
	return s
}

// Checkpoint is a self-describing snapshot of a parallel campaign at a
// merge barrier: everything Resume needs to continue the campaign
// bit-identically — corpus, statistics, per-shard iteration budgets and RNG
// cursors, and the event-stream position. Produced by campaigns with
// Options.Checkpoint set, by LoadCheckpoint, and by the shard-lease
// coordinator's Snapshot (docs/SERVICE.md).
type Checkpoint struct {
	// Version is the checkpoint format version (checkpointVersion).
	Version int `json:"version"`
	// DUT is the netlist name of the device under test (informational; the
	// resuming process supplies its own DUT constructor).
	DUT string `json:"dut"`
	// Shape identifies the campaign; Resume validates it.
	Shape Shape `json:"shape"`
	// Done is the campaign position in iterations: executed iterations
	// plus any dropped by abandoned shards. Done + sum(Rem) always equals
	// Shape.Iterations.
	Done int `json:"done"`
	// Round is the number of completed merge rounds.
	Round int `json:"round"`
	// Rem is the remaining iteration budget per shard (0 for drained or
	// abandoned shards).
	Rem []int `json:"rem"`
	// Cursors is the RNG draw count per shard; resume replays each shard's
	// generator to its cursor.
	Cursors []uint64 `json:"cursors"`
	// EventSeq is the sequence number of the last emitted event, so a
	// resumed campaign's event stream continues the original numbering.
	EventSeq int `json:"event_seq"`
	// Complete marks the final checkpoint of a finished campaign; resuming
	// a complete checkpoint returns its Stats without executing anything.
	Complete bool `json:"complete"`
	// Stats is the accumulated campaign statistics.
	Stats StatsWire `json:"stats"`
	// Corpus is the merged global corpus.
	Corpus CorpusWire `json:"corpus"`
}

// buildCheckpoint assembles a Checkpoint from a campaign position at a
// merge barrier — the shared serialization path of the in-process
// coordinator and the shard-lease coordinator.
func buildCheckpoint(dut string, opt Options, left, round int, rem []int, cursors []uint64, complete bool, acc *statsAccum, global *Corpus) *Checkpoint {
	cp := &Checkpoint{
		Version:  checkpointVersion,
		DUT:      dut,
		Shape:    shapeOf(opt),
		Done:     opt.Iterations - left,
		Round:    round,
		Rem:      append([]int(nil), rem...),
		Cursors:  append([]uint64(nil), cursors...),
		EventSeq: opt.Observer.Seq(),
		Complete: complete,
	}
	cp.Stats = acc.st.Wire()
	cp.Stats.CorpusSize = global.Len()
	if acc.best != nil {
		cp.Stats.Best = sortIntvls(acc.best)
	}
	cp.Corpus = newCorpusWire(global)
	return cp
}

// snapshot captures the coordinator's position as a Checkpoint. Called only
// at merge barriers, where workers are quiescent and their corpora equal
// global.Snapshot().
func (c *coordinator) snapshot(complete bool) *Checkpoint {
	cursors := make([]uint64, c.workers)
	for i, w := range c.ws {
		if w != nil && w.src != nil {
			cursors[i] = w.src.cursor()
		}
	}
	return buildCheckpoint(c.dut, c.opt, c.left, c.round, c.rem, cursors, complete, c.acc, c.global)
}

// stats rebuilds the Stats (and the accumulator's best-interval view) of a
// checkpoint.
func (cp *Checkpoint) stats() (*Stats, []PointIntvl, error) {
	s := &cp.Stats
	st := &Stats{
		PerIteration:         append([]IterStats(nil), s.PerIteration...),
		Findings:             append([]*detect.Finding(nil), s.Findings...),
		TriggeredPoints:      make(map[int]bool, len(s.Triggered)),
		SingleValidTriggered: s.SingleValidTriggered,
		EarlyTriggered:       s.EarlyTriggered,
		EarlyBreakdown:       append([][2]int(nil), s.EarlyBreakdown...),
		CorpusSize:           s.CorpusSize,
		ExecutedCycles:       s.ExecutedCycles,
	}
	for _, id := range s.Triggered {
		st.TriggeredPoints[id] = true
	}
	st.FindingSeeds = make([]*Testcase, len(s.FindingSeeds))
	for i, src := range s.FindingSeeds {
		tc, err := Unmarshal(src)
		if err != nil {
			return nil, nil, fmt.Errorf("fuzz: checkpoint finding seed %d: %w", i, err)
		}
		st.FindingSeeds[i] = tc
	}
	return st, s.Best, nil
}

// corpus rebuilds the global corpus of a checkpoint.
func (cp *Checkpoint) corpus() (*Corpus, error) {
	c, err := cp.Corpus.corpus()
	if err != nil {
		return nil, fmt.Errorf("fuzz: checkpoint %w", err)
	}
	return c, nil
}

// CampaignOptions returns the Options that re-create the checkpointed
// campaign's shape. Callers layer their operational choices (Checkpoint
// path, Observer, timeouts) on top before passing the result to Resume.
func (cp *Checkpoint) CampaignOptions() Options {
	return cp.Shape.Options()
}

// validate sanity-checks a checkpoint's structural invariants. Load-time
// corruption is caught by the header CRC; validate guards against
// semantically impossible payloads (hand-edited files, version skew).
func (cp *Checkpoint) validate() error {
	if cp == nil {
		return fmt.Errorf("fuzz: nil checkpoint")
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("fuzz: unsupported checkpoint version %d (want %d)", cp.Version, checkpointVersion)
	}
	if len(cp.Rem) != cp.Shape.Workers || len(cp.Cursors) != cp.Shape.Workers {
		return fmt.Errorf("fuzz: checkpoint has %d shard budgets / %d cursors for %d workers",
			len(cp.Rem), len(cp.Cursors), cp.Shape.Workers)
	}
	rem := 0
	for i, r := range cp.Rem {
		if r < 0 {
			return fmt.Errorf("fuzz: checkpoint shard %d has negative budget %d", i, r)
		}
		rem += r
	}
	if cp.Done < 0 || cp.Done+rem != cp.Shape.Iterations {
		return fmt.Errorf("fuzz: checkpoint position %d+%d does not cover %d iterations",
			cp.Done, rem, cp.Shape.Iterations)
	}
	if len(cp.Stats.FindingSeeds) != len(cp.Stats.Findings) {
		return fmt.Errorf("fuzz: checkpoint has %d finding seeds for %d findings",
			len(cp.Stats.FindingSeeds), len(cp.Stats.Findings))
	}
	if cp.Complete && rem != 0 {
		return fmt.Errorf("fuzz: complete checkpoint with %d iterations remaining", rem)
	}
	return nil
}

// Encode returns the checkpoint's file encoding: the CRC-carrying header
// line followed by the JSON payload — exactly the bytes Save writes, so a
// stream served by the campaign service's checkpoint endpoint can be saved
// to a file and passed to LoadCheckpoint unchanged.
func (cp *Checkpoint) Encode() ([]byte, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return nil, fmt.Errorf("fuzz: marshal checkpoint: %w", err)
	}
	header := fmt.Sprintf("%s v%d crc32=%08x\n", checkpointMagic, cp.Version, crc32.ChecksumIEEE(payload))
	return append([]byte(header), payload...), nil
}

// Save writes the checkpoint atomically (temp file + fsync + rename) and
// returns the file size in bytes. The previous checkpoint at path survives
// any failure.
func (cp *Checkpoint) Save(path string) (int, error) {
	payload, err := json.Marshal(cp)
	if err != nil {
		return 0, fmt.Errorf("fuzz: marshal checkpoint: %w", err)
	}
	header := fmt.Sprintf("%s v%d crc32=%08x\n", checkpointMagic, cp.Version, crc32.ChecksumIEEE(payload))

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".sonar-checkpoint-*")
	if err != nil {
		return 0, fmt.Errorf("fuzz: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) (int, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if _, err := f.WriteString(header); err != nil {
		return cleanup(fmt.Errorf("fuzz: write checkpoint: %w", err))
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(fmt.Errorf("fuzz: write checkpoint: %w", err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("fuzz: sync checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("fuzz: close checkpoint: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("fuzz: chmod checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("fuzz: publish checkpoint: %w", err)
	}
	return len(header) + len(payload), nil
}

// LoadCheckpoint reads and verifies a checkpoint file: header magic and
// version, payload CRC32 (rejecting truncated or corrupted files), JSON
// decoding, and the structural invariants of validate.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: read checkpoint: %w", err)
	}
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("fuzz: %s: not a checkpoint (missing header line)", path)
	}
	header, payload := string(data[:nl]), data[nl+1:]
	var version int
	var sum uint32
	if n, err := fmt.Sscanf(header, checkpointMagic+" v%d crc32=%08x", &version, &sum); err != nil || n != 2 {
		return nil, fmt.Errorf("fuzz: %s: not a checkpoint (bad header %q)", path, header)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("fuzz: %s: unsupported checkpoint version %d (want %d)", path, version, checkpointVersion)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("fuzz: %s: checkpoint corrupt or truncated (crc32 %08x, header says %08x)", path, got, sum)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(payload, cp); err != nil {
		return nil, fmt.Errorf("fuzz: %s: decode checkpoint: %w", path, err)
	}
	if err := cp.validate(); err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return cp, nil
}
