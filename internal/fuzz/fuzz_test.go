package fuzz

import (
	"math/rand"
	"testing"

	"sonar/internal/monitor"
	"sonar/internal/uarch"
)

func liteDUT() *DUT {
	return NewDUT(uarch.NewSoC(uarch.BoomConfig(), 1, nil, nil))
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), false)
	b := Generate(rand.New(rand.NewSource(7)), false)
	pa, sa, ea := a.Build()
	pb, sb, eb := b.Build()
	if sa != sb || ea != eb || pa.Len() != pb.Len() {
		t.Fatal("same seed produced different testcases")
	}
	for i := range pa.Code {
		if pa.Code[i] != pb.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestBuildSecretRange(t *testing.T) {
	tc := Generate(rand.New(rand.NewSource(3)), false)
	prog, start, end := tc.Build()
	if start <= 0 || end <= start || end > prog.Len() {
		t.Fatalf("secret range [%d,%d) of %d instructions", start, end, prog.Len())
	}
	// The region must start with the secret load.
	first := prog.Code[start]
	if !first.Op.IsLoad() || first.Rd != RegSecret || first.Rs1 != RegSecretBase {
		t.Errorf("secret region starts with %s, want ld x%d, 0(x%d)", first, RegSecret, RegSecretBase)
	}
	// Program must terminate with ecall.
	if prog.Code[prog.Len()-1].Op.String() != "ecall" {
		t.Error("program does not end with ecall")
	}
}

func TestExecuteRunsAndSnapshots(t *testing.T) {
	d := liteDUT()
	tc := Generate(rand.New(rand.NewSource(5)), false)
	ex := d.Execute(tc, 0)
	if len(ex.Log) == 0 {
		t.Fatal("no commits")
	}
	if ex.Snap == nil || len(ex.Snap.Points) != d.Mon.NumPoints() {
		t.Fatal("snapshot missing or wrong size")
	}
	if ex.Cycles <= 0 || ex.Cycles >= uarch.BoomConfig().MaxCycles {
		t.Fatalf("cycles = %d", ex.Cycles)
	}
	// Determinism: same testcase + same secret => identical timings.
	ex2 := d.Execute(tc, 0)
	if len(ex2.Log) != len(ex.Log) {
		t.Fatal("re-execution changed commit count")
	}
	for i := range ex.Log {
		if ex.Log[i].Cycle != ex2.Log[i].Cycle {
			t.Fatalf("re-execution drifted at commit %d", i)
		}
	}
}

// The secret-dependent divide pattern must expose a timing difference
// between secrets — the core mechanism every campaign relies on.
func TestSecretDivExposesTimingDifference(t *testing.T) {
	d := liteDUT()
	tc := &Testcase{
		HeadChain: nil,
		Patterns:  []SecretPattern{PatternDiv},
		Probe:     PatternDiv,
	}
	exA := d.Execute(tc, 0)
	exB := d.Execute(tc, 1)
	diff := false
	n := len(exA.Log)
	if len(exB.Log) < n {
		n = len(exB.Log)
	}
	for i := 0; i < n; i++ {
		if exA.Log[i].Cycle != exB.Log[i].Cycle {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("secret-dependent divide produced identical timing under both secrets")
	}
}

func TestMonitoringWindowOpensDuringSecretRegion(t *testing.T) {
	d := liteDUT()
	tc := Generate(rand.New(rand.NewSource(11)), false)
	ex := d.Execute(tc, 1)
	// With the window restricted to the secret region, at least some
	// points must still record events (the secret ops issue requests).
	events := 0
	for i := range ex.Snap.Points {
		events += ex.Snap.Points[i].EventCount
	}
	if events == 0 {
		t.Error("no contention-state events inside the monitoring window")
	}
}

func TestCorpusRetentionRule(t *testing.T) {
	c := NewCorpus()
	tc := &Testcase{}
	if s := c.Offer(tc, map[int]int64{1: 10}, +1, -1); s == nil {
		t.Fatal("first observation not retained")
	}
	if s := c.Offer(tc, map[int]int64{1: 10}, +1, -1); s != nil {
		t.Error("equal interval retained")
	}
	if s := c.Offer(tc, map[int]int64{1: 12}, +1, -1); s != nil {
		t.Error("worse interval retained")
	}
	if s := c.Offer(tc, map[int]int64{1: 4}, +1, -1); s == nil {
		t.Error("improved interval not retained")
	}
	if s := c.Offer(tc, map[int]int64{2: 100}, +1, -1); s == nil {
		t.Error("new point not retained")
	}
	if c.Len() != 3 {
		t.Errorf("corpus size = %d, want 3", c.Len())
	}
	if c.Best(1) != 4 {
		t.Errorf("Best(1) = %d, want 4", c.Best(1))
	}
	if c.Best(99) != monitor.NoInterval {
		t.Error("Best of unknown point should be NoInterval")
	}
}

func TestCorpusSelectionPrioritizesSmallestNonzero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCorpus()
	c.Offer(&Testcase{}, map[int]int64{1: 0, 2: 9, 3: 3}, +1, -1)
	c.Offer(&Testcase{}, map[int]int64{2: 7}, +1, -1)
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		seed, target := c.Select(rng, true)
		if seed == nil {
			t.Fatal("no seed selected")
		}
		// Point 1 is already triggered (interval 0) and must never be
		// targeted; selection among the rest is rank-weighted.
		if target == 1 {
			t.Fatal("selected an already-triggered point")
		}
		counts[target]++
	}
	// Point 3 (interval 3) must be preferred over point 2 (interval 7/9).
	if counts[3] <= counts[2] {
		t.Errorf("rank weighting broken: counts = %v", counts)
	}
	// Unprioritized selection must still return something valid.
	seed, _ := c.Select(rng, false)
	if seed == nil {
		t.Fatal("unprioritized selection returned nil")
	}
}

func TestMutateDirectedMovesTimingMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// The probe's effective delay is the head-chain length (2 cycles per
	// link) plus the cycle-granular ProbeDelay; Dir=+1 mutations must
	// increase it, Dir=-1 must decrease it (until clamped at zero).
	delayOf := func(tc *Testcase) int { return 2*len(tc.HeadChain) + tc.ProbeDelay }
	base := Generate(rng, false)
	base.ProbeDelay = 25
	for _, dir := range []int{+1, -1} {
		seed := &Seed{TC: base, Dir: dir}
		for i := 0; i < 30; i++ {
			m := MutateDirected(seed, rng)
			if dir > 0 && delayOf(m) <= delayOf(base) {
				t.Fatalf("Dir=+1 delay %d -> %d, want growth", delayOf(base), delayOf(m))
			}
			if dir < 0 && delayOf(m) >= delayOf(base) {
				t.Fatalf("Dir=-1 delay %d -> %d, want shrinkage", delayOf(base), delayOf(m))
			}
		}
	}
	// Mutation must not alias the parent's slices.
	grown := MutateDirected(&Seed{TC: base, Dir: +1}, rng)
	if len(base.HeadChain) > 0 && len(grown.HeadChain) > 0 {
		old := base.HeadChain[0]
		grown.HeadChain[0] = randomFiller(rng)
		if base.HeadChain[0] != old {
			t.Error("mutation aliased parent testcase")
		}
	}
	// ProbeDelay clamps at [0, 61].
	low := base.Clone()
	low.ProbeDelay = 0
	for i := 0; i < 20; i++ {
		if m := MutateDirected(&Seed{TC: low, Dir: -1}, rng); m.ProbeDelay < 0 {
			t.Fatal("ProbeDelay went negative")
		}
	}
}

func TestMutateRandomPreservesTemplateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := Generate(rng, false)
	seed := &Seed{TC: base}
	for i := 0; i < 50; i++ {
		m := MutateRandom(seed, rng)
		_, start, end := m.Build()
		if start <= 0 || end <= start {
			t.Fatalf("mutation %d broke the secret region", i)
		}
	}
}

func TestCampaignSmoke(t *testing.T) {
	d := liteDUT()
	opt := SonarOptions(15)
	st := Run(d, opt)
	if len(st.PerIteration) != 15 {
		t.Fatalf("iterations recorded = %d", len(st.PerIteration))
	}
	last := 0
	for _, it := range st.PerIteration {
		if it.CumPoints < last {
			t.Fatal("cumulative triggered points decreased")
		}
		last = it.CumPoints
	}
	if st.PerIteration[14].CumPoints == 0 {
		t.Error("no contention triggered in 15 iterations")
	}
	if st.ExecutedCycles == 0 {
		t.Error("no cycles recorded")
	}
}

func TestCampaignRandomBaselineRetainsNothing(t *testing.T) {
	d := liteDUT()
	st := Run(d, RandomOptions(5))
	if st.CorpusSize != 0 {
		t.Errorf("random baseline corpus size = %d, want 0", st.CorpusSize)
	}
}

func TestCampaignReproducible(t *testing.T) {
	a := Run(liteDUT(), SonarOptions(8))
	b := Run(liteDUT(), SonarOptions(8))
	for i := range a.PerIteration {
		if a.PerIteration[i] != b.PerIteration[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a.PerIteration[i], b.PerIteration[i])
		}
	}
}

func TestCampaignDualCore(t *testing.T) {
	d := NewDUT(uarch.NewSoC(uarch.BoomConfig(), 2, nil, nil))
	opt := SonarOptions(6)
	opt.DualCore = true
	st := Run(d, opt)
	if len(st.PerIteration) != 6 {
		t.Fatal("dual-core campaign did not complete")
	}
	if st.PerIteration[5].CumPoints == 0 {
		t.Error("dual-core campaign triggered nothing")
	}
}
