package fuzz

import (
	"fmt"
	"strconv"
	"strings"

	"sonar/internal/isa"
)

// Marshal renders a testcase as an annotated assembly listing: template
// metadata in header comments, then each region under a section marker.
// The format round-trips through Unmarshal, so interesting seeds can be
// exported from a campaign, stored, edited, and replayed.
func (tc *Testcase) Marshal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# sonar testcase\n")
	fmt.Fprintf(&b, "# probe: %d\n", tc.Probe)
	fmt.Fprintf(&b, "# probe-offset: %d\n", tc.ProbeOffset)
	fmt.Fprintf(&b, "# probe-delay: %d\n", tc.ProbeDelay)
	fmt.Fprintf(&b, "# probe-base: %d\n", tc.ProbeBase)
	patterns := make([]string, len(tc.Patterns))
	for i, p := range tc.Patterns {
		patterns[i] = strconv.Itoa(int(p))
	}
	fmt.Fprintf(&b, "# patterns: %s\n", strings.Join(patterns, " "))
	section := func(name string, code []isa.Instr) {
		fmt.Fprintf(&b, ".%s\n", name)
		for _, ins := range code {
			fmt.Fprintf(&b, "  %s\n", ins)
		}
	}
	section("chain", tc.HeadChain)
	section("prologue", tc.Prologue)
	section("epilogue", tc.Epilogue)
	section("attacker", tc.Attacker)
	return b.String()
}

// Unmarshal parses the Marshal format back into a testcase.
func Unmarshal(src string) (*Testcase, error) {
	tc := &Testcase{}
	section := ""
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if err := tc.header(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		case strings.HasPrefix(line, "."):
			section = line[1:]
			switch section {
			case "chain", "prologue", "epilogue", "attacker":
			default:
				return nil, fmt.Errorf("line %d: unknown section %q", ln+1, section)
			}
		default:
			ins, err := isa.Assemble(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			switch section {
			case "chain":
				tc.HeadChain = append(tc.HeadChain, ins)
			case "prologue":
				tc.Prologue = append(tc.Prologue, ins)
			case "epilogue":
				tc.Epilogue = append(tc.Epilogue, ins)
			case "attacker":
				tc.Attacker = append(tc.Attacker, ins)
			default:
				return nil, fmt.Errorf("line %d: instruction outside a section", ln+1)
			}
		}
	}
	return tc, nil
}

// header parses one "# key: value" metadata comment; unknown keys are
// ignored so the format can grow.
func (tc *Testcase) header(line string) error {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	key, value, found := strings.Cut(body, ":")
	if !found {
		return nil // plain comment
	}
	key = strings.TrimSpace(key)
	value = strings.TrimSpace(value)
	atoi := func() (int, error) {
		v, err := strconv.Atoi(value)
		if err != nil {
			return 0, fmt.Errorf("bad %s value %q", key, value)
		}
		return v, nil
	}
	switch key {
	case "probe":
		v, err := atoi()
		if err != nil {
			return err
		}
		if v < 0 || v >= int(numPatterns) {
			return fmt.Errorf("probe pattern %d out of range", v)
		}
		tc.Probe = SecretPattern(v)
	case "probe-offset":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("bad probe-offset %q", value)
		}
		tc.ProbeOffset = v
	case "probe-delay":
		v, err := atoi()
		if err != nil {
			return err
		}
		tc.ProbeDelay = v
	case "probe-base":
		v, err := atoi()
		if err != nil || v < 0 || v > 31 {
			return fmt.Errorf("bad probe-base %q", value)
		}
		tc.ProbeBase = uint8(v)
	case "patterns":
		tc.Patterns = nil
		for _, f := range strings.Fields(value) {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 || v >= int(numPatterns) {
				return fmt.Errorf("bad pattern %q", f)
			}
			tc.Patterns = append(tc.Patterns, SecretPattern(v))
		}
	}
	return nil
}
