package fuzz

import (
	"math/rand"
	"testing"

	"sonar/internal/boom"
	"sonar/internal/fuzz/faultinject"
	"sonar/internal/isa"
	"sonar/internal/trace"
)

// Steady-state Execute on a warm DUT must not touch the heap: every buffer
// it needs (programs, commit logs, snapshot, pulser lists, the Execution
// itself) lives in the two recycled arenas. This pins the perf contract the
// campaign engines rely on — regressions here show up directly as GC time in
// campaign throughput.
func TestExecuteSteadyStateAllocFree(t *testing.T) {
	d := NewDUT(boom.NewLite())
	tc := Generate(rand.New(rand.NewSource(7)), false)
	// Warm both arenas under both secrets so every recycled buffer reaches
	// its steady-state capacity.
	for i := 0; i < 4; i++ {
		d.Execute(tc, uint64(i%2))
	}
	secret := uint64(0)
	allocs := testing.AllocsPerRun(20, func() {
		secret ^= 1
		d.Execute(tc, secret)
	})
	if allocs != 0 {
		t.Errorf("steady-state Execute allocates %.1f objects/run, want 0", allocs)
	}
}

// Rebuilding a testcase into a retained Program must reuse the code buffer.
func TestBuildIntoReuseAllocFree(t *testing.T) {
	tc := Generate(rand.New(rand.NewSource(7)), true)
	var prog, att isa.Program
	tc.BuildInto(&prog)
	tc.BuildAttackerInto(&att)
	allocs := testing.AllocsPerRun(20, func() {
		tc.BuildInto(&prog)
		tc.BuildAttackerInto(&att)
	})
	if allocs != 0 {
		t.Errorf("BuildInto/BuildAttackerInto allocate %.1f objects/run, want 0", allocs)
	}
}

// A parallel campaign built on SharedAnalysisFactory runs trace.Analyze
// exactly once, no matter how many workers it starts — including the
// replacement workers spawned by fault recovery, which used to re-analyze
// the whole netlist before picking up the retried batch.
func TestReplacementWorkersShareAnalysis(t *testing.T) {
	opt := faultOptions(2)
	sched := faultinject.NewSchedule(
		faultinject.Fault{Worker: 0, Round: 1, Iter: 1, Mode: faultinject.ModePanic},
	)
	opt.FaultHook = sched
	before := trace.AnalyzeCalls()
	st := RunParallel(SharedAnalysisFactory(boom.NewLite), opt)
	if got := len(st.PerIteration); got != 24 {
		t.Fatalf("campaign executed %d iterations, want 24", got)
	}
	if fired := sched.Fired(); fired != 1 {
		t.Fatalf("fired %d faults, want 1", fired)
	}
	if got := trace.AnalyzeCalls() - before; got != 1 {
		t.Errorf("campaign with a replacement worker ran trace.Analyze %d times, want 1", got)
	}
}
