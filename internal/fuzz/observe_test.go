package fuzz

import (
	"bytes"
	"encoding/json"
	"testing"

	"sonar/internal/obs"
)

// observedOptions returns opt with a fresh Observer and its in-memory sink.
func observedOptions(opt Options) (Options, *obs.MemorySink) {
	mem := obs.NewMemorySink()
	opt.Observer = obs.New(mem)
	return opt, mem
}

// The observability half of the determinism contract: a parallel campaign's
// merged event stream is byte-identical across two runs for a fixed
// (Seed, Workers, BatchSize).
func TestParallelEventStreamByteIdentical(t *testing.T) {
	run := func() []byte {
		opt := SonarOptions(40)
		opt.Workers = 4
		opt.BatchSize = 5
		opt, mem := observedOptions(opt)
		RunParallel(liteFactory, opt)
		return mem.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(a, b) {
		t.Error("parallel event streams differ between identical runs")
	}
}

// stripBatchMerged drops the coordinator-only batch_merged events and
// renumbers the remainder — the projection of a parallel stream onto the
// serial engine's event vocabulary.
func stripBatchMerged(events []obs.Event) []byte {
	var b []byte
	seq := 0
	for _, e := range events {
		if e.Kind == obs.BatchMerged {
			continue
		}
		seq++
		e.Seq = seq
		enc, err := json.Marshal(e)
		if err != nil {
			panic(err)
		}
		b = append(append(b, enc...), '\n')
	}
	return b
}

// The "Workers<=1 reproduces serial" contract extends to the event stream:
// serial Run and RunParallel(Workers=1) emit byte-identical streams once the
// parallel engine's batch_merged bookkeeping is projected away. In
// particular both report the same effective batch size in campaign_start
// (serial Run used to emit batch=0 while Workers=1 emitted the normalized
// default — the header itself broke the contract).
func TestSerialEventStreamMatchesWorkers1(t *testing.T) {
	base := SonarOptions(30)

	sopt, smem := observedOptions(base)
	Run(liteFactory(), sopt)

	popt := base
	popt.Workers = 1
	popt, pmem := observedOptions(popt)
	RunParallel(liteFactory, popt)

	serial, parallel := stripBatchMerged(smem.Events()), stripBatchMerged(pmem.Events())
	if len(serial) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(serial, parallel) {
		t.Error("serial and Workers=1 event streams differ")
	}
	start := smem.Events()[0]
	if start.Kind != obs.CampaignStart || start.Workers != 1 || start.BatchSize == 0 {
		t.Errorf("serial campaign_start reports workers=%d batch=%d, want the normalized effective values",
			start.Workers, start.BatchSize)
	}
}

// The determinism contract at full width: a Workers=8 campaign — enough
// rounds for the fold pipeline to run workers ahead of the barrier — yields
// byte-equal event streams and identical Stats across two runs. CI runs
// this under -race, exercising the ahead-of-barrier path for data races.
func TestParallelWorkers8Deterministic(t *testing.T) {
	run := func() (*Stats, []byte) {
		opt := SonarOptions(96)
		opt.Workers = 8
		opt.BatchSize = 3 // 4 rounds per shard: the pipeline stays primed
		opt, mem := observedOptions(opt)
		st := RunParallel(liteFactory, opt)
		return st, mem.Bytes()
	}
	stA, evA := run()
	stB, evB := run()
	statsEqual(t, stA, stB)
	if len(evA) == 0 {
		t.Fatal("no events emitted")
	}
	if !bytes.Equal(evA, evB) {
		t.Error("Workers=8 event streams differ between identical runs")
	}
}

// Attaching an Observer must not perturb the campaign: identical Stats with
// and without one, for both engines.
func TestObserverDoesNotPerturbCampaign(t *testing.T) {
	opt := SonarOptions(25)
	plain := Run(liteFactory(), opt)
	wopt, _ := observedOptions(opt)
	statsEqual(t, plain, Run(liteFactory(), wopt))

	opt.Workers = 3
	opt.BatchSize = 4
	pplain := RunParallel(liteFactory, opt)
	popt, _ := observedOptions(opt)
	statsEqual(t, pplain, RunParallel(liteFactory, popt))
}

// The PerIteration series contract: both engines record exactly
// Options.Iterations entries, 1-based and contiguous, also at awkward
// worker/batch splits (see Stats.PerIteration).
func TestPerIterationLengthMatchesIterations(t *testing.T) {
	cases := []struct{ iters, workers, batch int }{
		{13, 0, 0},
		{1, 1, 1},
		{13, 4, 3},
		{7, 8, 2},
		{16, 3, 5},
	}
	for _, c := range cases {
		opt := SonarOptions(c.iters)
		opt.Workers = c.workers
		opt.BatchSize = c.batch
		var st *Stats
		if c.workers == 0 {
			st = Run(liteFactory(), opt)
		} else {
			st = RunParallel(liteFactory, opt)
		}
		if len(st.PerIteration) != c.iters {
			t.Errorf("%+v: len(PerIteration) = %d, want %d", c, len(st.PerIteration), c.iters)
			continue
		}
		for i, it := range st.PerIteration {
			if it.Iteration != i+1 {
				t.Errorf("%+v: entry %d has Iteration %d", c, i, it.Iteration)
				break
			}
		}
	}
}

// The event stream must mirror the campaign's Stats: one IterationDone per
// iteration carrying the same cumulative series, one PointTriggered per
// distinct triggered point, and a CampaignEnd matching the final totals.
func TestEventStreamConsistentWithStats(t *testing.T) {
	for _, workers := range []int{0, 3} {
		opt := SonarOptions(30)
		opt.Workers = workers
		opt.BatchSize = 4
		opt, mem := observedOptions(opt)
		var st *Stats
		if workers == 0 {
			st = Run(liteFactory(), opt)
		} else {
			st = RunParallel(liteFactory, opt)
		}

		var iters, points int
		var end obs.Event
		for _, e := range mem.Events() {
			switch e.Kind {
			case obs.IterationDone:
				got := IterStats{
					Iteration:      e.Iteration,
					NewPoints:      e.NewPoints,
					CumPoints:      e.CumPoints,
					CumTimingDiffs: e.CumTimingDiffs,
				}
				if got != st.PerIteration[iters] {
					t.Fatalf("workers=%d: IterationDone %+v does not match PerIteration %+v",
						workers, got, st.PerIteration[iters])
				}
				iters++
			case obs.PointTriggered:
				if !st.TriggeredPoints[e.Point] {
					t.Errorf("workers=%d: PointTriggered for untriggered point %d", workers, e.Point)
				}
				points++
			case obs.CampaignEnd:
				end = e
			}
		}
		last := st.PerIteration[len(st.PerIteration)-1]
		if iters != opt.Iterations {
			t.Errorf("workers=%d: %d IterationDone events, want %d", workers, iters, opt.Iterations)
		}
		if points != last.CumPoints {
			t.Errorf("workers=%d: %d PointTriggered events, want %d", workers, points, last.CumPoints)
		}
		if end.Kind != obs.CampaignEnd ||
			end.CumPoints != last.CumPoints ||
			end.CumTimingDiffs != last.CumTimingDiffs ||
			end.CorpusSize != st.CorpusSize ||
			end.Cycles != st.ExecutedCycles {
			t.Errorf("workers=%d: CampaignEnd %+v does not match Stats (points=%d diffs=%d corpus=%d cycles=%d)",
				workers, end, last.CumPoints, last.CumTimingDiffs, st.CorpusSize, st.ExecutedCycles)
		}
	}
}

// Campaign metrics must agree with the returned Stats.
func TestCampaignMetricsMatchStats(t *testing.T) {
	opt := SonarOptions(20)
	opt.Workers = 2
	opt.BatchSize = 4
	opt, _ = observedOptions(opt)
	st := RunParallel(liteFactory, opt)

	series, err := obs.ParseExposition(opt.Observer.Metrics.ExpositionText())
	if err != nil {
		t.Fatal(err)
	}
	last := st.PerIteration[len(st.PerIteration)-1]
	for name, want := range map[string]float64{
		obs.MetricIterations:      float64(opt.Iterations),
		obs.MetricTriggeredPoints: float64(last.CumPoints),
		obs.MetricTimingDiffs:     float64(last.CumTimingDiffs),
		obs.MetricCorpusSize:      float64(st.CorpusSize),
		obs.MetricCycles:          float64(st.ExecutedCycles),
	} {
		if series[name] != want {
			t.Errorf("%s = %v, want %v", name, series[name], want)
		}
	}
	// Both workers must have reported utilization.
	for _, w := range []string{"0", "1"} {
		if series[obs.MetricWorkerIterations+`{worker="`+w+`"}`] != 10 {
			t.Errorf("worker %s iterations = %v, want 10",
				w, series[obs.MetricWorkerIterations+`{worker="`+w+`"}`])
		}
	}
}
