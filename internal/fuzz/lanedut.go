// Lane-parallel netlist campaign substrate: LaneDUT executes whole lane
// groups of testcase pairs bit-parallel on a generated or FIRRTL-ingested
// netlist (sim.LaneSimulator + monitor.LaneBank), behind the same Executor
// seam the behavioral DUT models use. This is the piece that turns the
// 64-testcases-per-word evaluator into end-to-end fuzzing throughput
// (docs/PERFORMANCE.md): a campaign over a LaneDUT runs up to GroupWidth
// testcase pairs per simulator pass instead of one.

package fuzz

import (
	"fmt"

	"sonar/internal/hdl"
	"sonar/internal/isa"
	"sonar/internal/monitor"
	"sonar/internal/obs"
	"sonar/internal/sim"
	"sonar/internal/trace"
)

// Default per-execution schedule of a LaneDUT: how many netlist cycles one
// testcase execution simulates and how often the testcase-derived stimulus
// is re-poked onto the input signals.
const (
	DefaultLaneCycles = 512
	DefaultLaneHold   = 8
)

// LaneDUT is a netlist-backed campaign executor. It holds two independent
// elaborations of the same design: a scalar simulator + monitor for the
// reference path (Options.Lanes <= 1, and the Executor.Execute method), and
// a lane simulator + lane bank for the bit-parallel path. Two instances are
// required because the lane evaluator's prim spill scribbles over the scalar
// value plane of spilled signals — the scalar side must never share a
// netlist with the lane side.
//
// Execution semantics: every execution resets the simulator and monitor,
// opens the observation window for the whole run, and drives each input
// with a stimulus derived from (testcase, secret, cycle, input index) —
// re-poked every hold cycles — for a fixed budget of cycles. The stimulus
// never depends on the lane index, so a pair's per-lane trajectory is a
// pure function of (testcase, secret) and the lane and scalar paths produce
// byte-identical monitor snapshots (TestNetlistLaneMatrix pins the
// campaign-level consequence).
//
// A LaneDUT produces no commit logs (Execution.Log stays nil): netlist
// campaigns exercise contention coverage, intervals, and corpus feedback;
// dual-differential commit-log findings remain a behavioral-DUT feature.
type LaneDUT struct {
	analysis *trace.Analysis // lane-side binding; ContentionAnalysis result
	scalar   *sim.Simulator
	smon     *monitor.Monitor
	lanes    *sim.LaneSimulator
	bank     *monitor.LaneBank
	sIns     []*hdl.Signal // scalar-side inputs, creation order
	lIns     []*hdl.Signal // lane-side inputs, creation order
	cycles   int
	hold     int

	// Group arenas, indexed by lane (pair i occupies lanes 2i and 2i+1):
	// every Execution an ExecuteGroup returns stays valid until the next
	// group, per the GroupExecutor contract.
	execs [hdl.Lanes]Execution
	snaps [hdl.Lanes]monitor.Snapshot
	// Single-Execute arenas, alternating like DUT.Execute's so an A/B pair
	// of direct Execute calls stays valid together.
	sExecs [2]Execution
	sSnaps [2]monitor.Snapshot
	sIdx   int
}

// monitorKeep returns the signals a contention monitor reads — every
// monitored point's request data and valid signals — which is exactly the
// keep set the optimizing compile pipeline needs to preserve monitor
// behavior while eliminating everything unobserved.
func monitorKeep(an *trace.Analysis) []*hdl.Signal {
	var keep []*hdl.Signal
	for _, p := range an.Monitored() {
		for i := range p.Requests {
			keep = append(keep, p.Requests[i].Data)
			keep = append(keep, p.Requests[i].Valids...)
		}
	}
	return keep
}

// NewLaneDUT builds a netlist-backed executor. elab must be a deterministic
// elaborator (gen designs, checked FIRRTL parses): it is called twice, once
// per simulator instance, and both elaborations must be identical. shared
// is the campaign's shared contention analysis, rebound to each instance by
// dense signal id; nil runs the analysis on the first elaboration.
// cycles/hold <= 0 select DefaultLaneCycles/DefaultLaneHold.
func NewLaneDUT(elab func() (*hdl.Netlist, error), shared *trace.Analysis, cycles, hold int) (*LaneDUT, error) {
	if cycles <= 0 {
		cycles = DefaultLaneCycles
	}
	if hold <= 0 {
		hold = DefaultLaneHold
	}
	scalarNet, err := elab()
	if err != nil {
		return nil, fmt.Errorf("fuzz: lane DUT scalar elaboration: %w", err)
	}
	laneNet, err := elab()
	if err != nil {
		return nil, fmt.Errorf("fuzz: lane DUT lane elaboration: %w", err)
	}
	if shared == nil {
		shared = trace.Analyze(scalarNet)
	}
	sAn := shared
	if sAn.Netlist != scalarNet {
		sAn = shared.Rebind(scalarNet)
	}
	lAn := shared.Rebind(laneNet)

	scalar, err := sim.NewOpt(scalarNet, sim.CompileOptions{Keep: monitorKeep(sAn)})
	if err != nil {
		return nil, fmt.Errorf("fuzz: lane DUT scalar compile: %w", err)
	}
	lanes, err := sim.NewLanesOpt(laneNet, sim.CompileOptions{Keep: monitorKeep(lAn)})
	if err != nil {
		return nil, fmt.Errorf("fuzz: lane DUT lane compile: %w", err)
	}
	d := &LaneDUT{
		analysis: lAn,
		scalar:   scalar,
		smon:     monitor.New(sAn, monitor.Config{Placement: monitorPlacement(shared, sAn)}),
		lanes:    lanes,
		bank:     monitor.NewLaneBank(lAn, monitor.Config{Placement: monitorPlacement(shared, lAn)}, lanes),
		cycles:   cycles,
		hold:     hold,
	}
	for _, s := range scalarNet.Signals() {
		if s.Kind() == hdl.Input {
			d.sIns = append(d.sIns, s)
		}
	}
	for _, s := range laneNet.Signals() {
		if s.Kind() == hdl.Input {
			d.lIns = append(d.lIns, s)
		}
	}
	return d, nil
}

// LaneDUTFactory wraps a deterministic elaborator into an Executor factory
// for the parallel and lease engines: the contention analysis runs once, on
// a probe elaboration, and every built instance rebinds it — the netlist
// analog of SharedAnalysisFactory. The probe elaboration also surfaces
// elaboration errors eagerly; a later elaboration failure inside a worker
// panics and is recovered by the engine's worker-fault path.
func LaneDUTFactory(elab func() (*hdl.Netlist, error), cycles, hold int) (func() Executor, error) {
	probe, err := elab()
	if err != nil {
		return nil, err
	}
	shared := trace.Analyze(probe)
	return func() Executor {
		d, err := NewLaneDUT(elab, shared, cycles, hold)
		if err != nil {
			panic(fmt.Sprintf("fuzz: lane DUT build: %v", err))
		}
		return d
	}, nil
}

// ContentionAnalysis implements Executor.
func (d *LaneDUT) ContentionAnalysis() *trace.Analysis { return d.analysis }

// observeCompile publishes the simulator compile gauges
// (sonar_sim_spilled_nodes, sonar_sim_eliminated_nodes; docs/SERVICE.md)
// when the campaign's executor is netlist-backed. Behavioral DUTs don't
// implement CompileStats, so their campaigns leave the gauges unpublished.
func observeCompile(o *obs.Observer, d Executor) {
	c, ok := d.(interface{ CompileStats() sim.CompileStats })
	if !ok {
		return
	}
	cs := c.CompileStats()
	o.SimCompileInfo(cs.Spilled, cs.Eliminated+cs.Collapsed+cs.Fused)
}

// CompileStats returns what the optimizing compile pipeline did to the lane
// side of the design — the counts the sim observability gauges publish.
func (d *LaneDUT) CompileStats() sim.CompileStats { return d.lanes.Stats() }

// GroupWidth implements GroupExecutor: one group is hdl.Lanes/2 testcase
// pairs (each pair occupies two lanes, A in lane 2i, B in lane 2i+1).
func (d *LaneDUT) GroupWidth() int { return hdl.Lanes / 2 }

// Execute implements Executor: the scalar reference path for one testcase
// under one secret.
//
//sonar:alloc-free
func (d *LaneDUT) Execute(tc *Testcase, secret uint64) *Execution {
	idx := d.sIdx
	d.sIdx ^= 1
	snap := &d.sSnaps[idx]
	d.runScalar(tc, secret, snap)
	e := &d.sExecs[idx]
	*e = Execution{Snap: snap, Cycles: int64(d.cycles)}
	return e
}

// ExecuteGroup implements GroupExecutor. chunk <= 1 runs every pair through
// the scalar reference simulator; chunk >= 2 packs chunk/2 pairs per lane
// pass and evaluates them bit-parallel. Both paths write the same group
// arenas and produce byte-identical snapshots per pair.
func (d *LaneDUT) ExecuteGroup(tcs []*Testcase, secretA, secretB uint64, chunk int, dst []ExecPair) []ExecPair {
	if len(tcs) > d.GroupWidth() {
		panic(fmt.Sprintf("fuzz: lane group of %d pairs exceeds width %d", len(tcs), d.GroupWidth()))
	}
	if chunk <= 1 {
		for i, tc := range tcs {
			a, b := &d.snaps[2*i], &d.snaps[2*i+1]
			d.runScalar(tc, secretA, a)
			d.runScalar(tc, secretB, b)
			d.execs[2*i] = Execution{Snap: a, Cycles: int64(d.cycles)}
			d.execs[2*i+1] = Execution{Snap: b, Cycles: int64(d.cycles)}
		}
	} else {
		pairsPerPass := chunk / 2
		for base := 0; base < len(tcs); base += pairsPerPass {
			end := base + pairsPerPass
			if end > len(tcs) {
				end = len(tcs)
			}
			d.runLanePass(tcs[base:end], base, secretA, secretB)
		}
	}
	for i := range tcs {
		dst = append(dst, ExecPair{A: &d.execs[2*i], B: &d.execs[2*i+1]})
	}
	return dst
}

// runScalar executes one (testcase, secret) on the scalar reference
// simulator and snapshots the monitor into snap.
//
//sonar:alloc-free
func (d *LaneDUT) runScalar(tc *Testcase, secret uint64, snap *monitor.Snapshot) {
	d.scalar.Reset()
	d.smon.Reset()
	d.smon.SetWindow(true)
	dig := tcDigest(tc, secret)
	for cyc := 0; cyc < d.cycles; cyc++ {
		if cyc%d.hold == 0 {
			for k, in := range d.sIns {
				in.Set(stimVal(dig, cyc, k))
			}
		}
		d.scalar.Tick()
	}
	d.smon.SnapshotInto(snap)
}

// runLanePass executes one lane pass: pair s of tcs occupies lanes 2s
// (secretA) and 2s+1 (secretB). base is the pairs' offset within the group,
// for arena placement. Lanes beyond the pass's pairs are never poked or
// snapshot — they evolve from reset state, harmlessly.
//
//sonar:alloc-free
func (d *LaneDUT) runLanePass(tcs []*Testcase, base int, secretA, secretB uint64) {
	d.lanes.Reset()
	d.bank.Reset()
	d.bank.SetWindowAll(true)
	var digA, digB [hdl.Lanes / 2]uint64
	for s, tc := range tcs {
		digA[s] = tcDigest(tc, secretA)
		digB[s] = tcDigest(tc, secretB)
	}
	for cyc := 0; cyc < d.cycles; cyc++ {
		if cyc%d.hold == 0 {
			for k, in := range d.lIns {
				for s := range tcs {
					d.lanes.SetLane(in, 2*s, stimVal(digA[s], cyc, k))
					d.lanes.SetLane(in, 2*s+1, stimVal(digB[s], cyc, k))
				}
			}
		}
		d.lanes.Tick()
	}
	for s := range tcs {
		i := base + s
		a, b := &d.snaps[2*i], &d.snaps[2*i+1]
		d.bank.SnapshotLaneInto(2*s, a)
		d.bank.SnapshotLaneInto(2*s+1, b)
		d.execs[2*i] = Execution{Snap: a, Cycles: int64(d.cycles)}
		d.execs[2*i+1] = Execution{Snap: b, Cycles: int64(d.cycles)}
	}
}

// tcDigest folds a testcase and its secret into one 64-bit stimulus seed.
// Every field that distinguishes testcases feeds the fold, so mutations —
// chain edits, probe offsets, pattern swaps, attacker programs — all reach
// the netlist as different input trajectories.
//
//sonar:alloc-free
func tcDigest(tc *Testcase, secret uint64) uint64 {
	h := uint64(1469598103934665603) ^ secret*0x9e3779b97f4a7c15
	h = foldInstrs(h, tc.HeadChain)
	h = foldInstrs(h, tc.Prologue)
	for _, p := range tc.Patterns {
		h = fold(h, uint64(p)+1)
	}
	h = foldInstrs(h, tc.Epilogue)
	h = fold(h, uint64(tc.Probe)+0x51)
	h = fold(h, uint64(tc.ProbeOffset))
	h = fold(h, uint64(tc.ProbeBase)<<32|uint64(uint32(tc.ProbeDelay)))
	h = foldInstrs(h, tc.Attacker)
	return mix64(h)
}

//sonar:alloc-free
func foldInstrs(h uint64, ins []isa.Instr) uint64 {
	h = fold(h, uint64(len(ins))+0xa5)
	for i := range ins {
		in := &ins[i]
		h = fold(h, uint64(in.Op)|uint64(in.Rd)<<8|uint64(in.Rs1)<<16|uint64(in.Rs2)<<24)
		h = fold(h, uint64(in.Imm))
	}
	return h
}

// fold is one FNV-1a step.
func fold(h, v uint64) uint64 { return (h ^ v) * 1099511628211 }

// mix64 is a splitmix64-style finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stimVal derives the input stimulus for (testcase digest, cycle, input
// index). It is independent of the lane index by construction.
//
//sonar:alloc-free
func stimVal(dig uint64, cyc, input int) uint64 {
	return mix64(dig ^ uint64(cyc)*0x9e3779b97f4a7c15 ^ uint64(input)<<48)
}
