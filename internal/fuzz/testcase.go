package fuzz

import (
	"math/rand"

	"sonar/internal/isa"
)

// SecretPattern selects what the secret-dependent region does with the
// loaded secret — each pattern exercises a different class of shared
// resource.
type SecretPattern uint8

// Secret-dependent operation patterns.
const (
	// PatternLoad issues a load whose cacheline depends on the secret
	// (cache, MSHR, line-buffer, and D-channel contention).
	PatternLoad SecretPattern = iota
	// PatternDiv issues a divide whose latency depends on the secret
	// (divider/MDU occupancy contention).
	PatternDiv
	// PatternMul issues a multiply on the secret (multiplier and shared
	// writeback port contention).
	PatternMul
	// PatternStore issues a store whose cacheline depends on the secret.
	PatternStore
	numPatterns
)

// Testcase is the paper's testcase template (Figure 4): random instruction
// regions surrounding a secret-dependent region, with a dependency chain at
// the head whose length the directed mutation adjusts to shift request
// timing (§6.2.1).
type Testcase struct {
	// HeadChain is the dependency chain (on RegChain) whose length controls
	// the operand-resolution time of the probe instructions.
	HeadChain []isa.Instr
	// Prologue is the random instruction region before the secret load.
	Prologue []isa.Instr
	// Patterns are the secret-dependent operations (after the secret load).
	Patterns []SecretPattern
	// Epilogue is the random instruction region after the secret-dependent
	// region; its timing is observed.
	Epilogue []isa.Instr
	// Probe is the chain-dependent contending operation placed in the
	// epilogue; its class mirrors one of the secret patterns so the two
	// can collide at a contention point.
	Probe SecretPattern
	// ProbeOffset is the data-window offset the load/store probe targets.
	// It is independent of the chain value, so directed mutation shifts
	// the probe's *timing* without disturbing *which* resource it touches
	// (the "critical structure" the paper's mutation must not disrupt).
	ProbeOffset int64
	// ProbeBase is the base register the load/store probe addresses from
	// (one of the preloaded data-window bases), extending reach beyond the
	// 12-bit immediate without disturbing program layout.
	ProbeBase uint8
	// ProbeDelay sets the probe's operand-resolution delay through an
	// iterative divide of latency ~10+ProbeDelay cycles. Unlike chain
	// edits it leaves the program layout (and hence instruction-fetch
	// alignment) untouched, giving the adaptive directed mutation the
	// monotonic, cycle-granular knob §6.2.1 assumes.
	ProbeDelay int
	// Attacker, when non-empty, is the dual-core attacker's loop body
	// (Figure 4b).
	Attacker []isa.Instr
}

// Clone returns a deep copy for mutation.
func (tc *Testcase) Clone() *Testcase {
	c := &Testcase{Probe: tc.Probe, ProbeOffset: tc.ProbeOffset, ProbeDelay: tc.ProbeDelay, ProbeBase: tc.ProbeBase}
	c.HeadChain = append([]isa.Instr(nil), tc.HeadChain...)
	c.Prologue = append([]isa.Instr(nil), tc.Prologue...)
	c.Patterns = append([]SecretPattern(nil), tc.Patterns...)
	c.Epilogue = append([]isa.Instr(nil), tc.Epilogue...)
	c.Attacker = append([]isa.Instr(nil), tc.Attacker...)
	return c
}

// fillerBases are the preloaded data-window base registers. They are
// spaced 0x1000 (64 lines) apart so that, combined with the ±32-line
// 12-bit immediates, filler and probe accesses cover a 256-line window.
var fillerBases = []uint8{RegDataBase, 20, 21, 22}

// appendSetup appends the fixed register-initialization preamble to code.
func appendSetup(code []isa.Instr) []isa.Instr {
	code = append(code,
		isa.Instr{Op: isa.LUI, Rd: RegDataBase, Imm: int64(DataBase >> 12)},
		isa.Instr{Op: isa.LUI, Rd: 20, Imm: int64((DataBase + 0x1000) >> 12)},
		isa.Instr{Op: isa.LUI, Rd: 21, Imm: int64((DataBase + 0x2000) >> 12)},
		isa.Instr{Op: isa.LUI, Rd: 22, Imm: int64((DataBase + 0x3000) >> 12)},
		isa.Instr{Op: isa.LUI, Rd: RegSecretBase, Imm: int64(SecretAddr >> 12)},
		isa.I(isa.ADDI, RegChain, 0, 1),
	)
	for r := uint8(1); r <= 8; r++ {
		code = append(code, isa.I(isa.ADDI, r, 0, int64(r)*3+1))
	}
	return code
}

// appendSecretOps expands the secret-dependent patterns into instructions,
// appending to code. The secret value sits in RegSecret.
func appendSecretOps(code []isa.Instr, patterns []SecretPattern) []isa.Instr {
	ins := code
	for _, p := range patterns {
		switch p {
		case PatternLoad:
			// Address = DataBase + 0x740 + secret*64: secret 0/1 selects
			// different cachelines.
			ins = append(ins,
				isa.I(isa.ADDI, RegProbe2, 0, 6),
				isa.R(isa.SLL, RegTmp, RegSecret, RegProbe2),
				isa.R(isa.ADD, RegTmp, RegTmp, RegDataBase),
				isa.Load(isa.LD, RegTmp, RegTmp, 0x740),
			)
		case PatternDiv:
			// Dividend = secret << 58: secret 1 gives a ~59-bit dividend
			// and a long occupancy; secret 0 divides 0 and finishes fast.
			ins = append(ins,
				isa.I(isa.ADDI, RegProbe2, 0, 58),
				isa.R(isa.SLL, RegTmp, RegSecret, RegProbe2),
				isa.R(isa.DIV, RegTmp, RegTmp, RegSecretBase),
			)
		case PatternMul:
			ins = append(ins,
				isa.R(isa.MUL, RegTmp, RegSecret, RegSecretBase),
				isa.R(isa.MUL, RegTmp, RegTmp, RegSecret),
			)
		case PatternStore:
			ins = append(ins,
				isa.I(isa.ADDI, RegProbe2, 0, 6),
				isa.R(isa.SLL, RegTmp, RegSecret, RegProbe2),
				isa.R(isa.ADD, RegTmp, RegTmp, RegDataBase),
				isa.Store(isa.SD, RegSecret, RegTmp, 0x7c0),
			)
		}
	}
	return ins
}

// appendProbeTimer appends the probe's delay source: a divide whose dividend
// is 3<<ProbeDelay (latency ~10+delay), folded to zero in RegProbe0. The
// delay also composes with the head chain (the dividend shift amount is
// offset by the chain value's readiness).
func appendProbeTimer(code []isa.Instr, delay int) []isa.Instr {
	if delay > 61 {
		delay = 61
	}
	if delay < 0 {
		delay = 0
	}
	return append(code,
		isa.R(isa.XOR, RegProbe0, RegChain, RegChain), // 0, chain-timed
		isa.I(isa.ADDI, RegProbe0, RegProbe0, 3),
		isa.I(isa.ADDI, RegProbe2, 0, int64(delay)),
		isa.R(isa.SLL, RegProbe0, RegProbe0, RegProbe2),
		isa.R(isa.DIV, RegProbe0, RegProbe0, RegProbe0), // 1, after ~10+delay
		isa.I(isa.ADDI, RegProbe0, RegProbe0, -1),       // 0, delay-timed
	)
}

// appendProbeOps expands the probe: an operation of the probe class whose
// issue time tracks the head chain plus the cycle-granular ProbeDelay, while
// the resource it touches stays fixed.
func appendProbeOps(code []isa.Instr, p SecretPattern, probeOffset int64, probeDelay int, probeBase uint8) []isa.Instr {
	valid := false
	for _, b := range fillerBases {
		if probeBase == b {
			valid = true
		}
	}
	if !valid {
		probeBase = RegDataBase
	}
	ops := appendProbeTimer(code, probeDelay)
	switch p {
	case PatternDiv:
		return append(ops,
			isa.I(isa.ADDI, RegProbe2, 0, 40),
			isa.I(isa.ADDI, RegProbe1, RegProbe0, 3),
			isa.R(isa.SLL, RegProbe1, RegProbe1, RegProbe2),
			isa.R(isa.DIV, RegProbe1, RegProbe1, RegChain),
		)
	case PatternMul:
		return append(ops,
			isa.I(isa.ADDI, RegProbe1, RegProbe0, 3),
			isa.R(isa.MUL, RegProbe1, RegProbe1, RegProbe1),
		)
	case PatternStore:
		return append(ops,
			isa.R(isa.ADD, RegProbe0, RegProbe0, RegDataBase),
			isa.Store(isa.SD, RegChain, RegProbe0, probeOffset),
		)
	default: // PatternLoad
		return append(ops,
			isa.R(isa.ADD, RegProbe0, RegProbe0, RegDataBase),
			isa.Load(isa.LD, RegProbe0, RegProbe0, probeOffset),
		)
	}
}

// Build assembles the full victim program and returns it along with the
// static index range [start, end) of the secret-dependent region.
func (tc *Testcase) Build() (prog *isa.Program, secretStart, secretEnd int) {
	prog = &isa.Program{}
	secretStart, secretEnd = tc.BuildInto(prog)
	return prog, secretStart, secretEnd
}

// BuildInto assembles the full victim program into prog, reusing prog's
// instruction buffer, and returns the static index range [start, end) of the
// secret-dependent region. Repeated builds into the same program allocate
// nothing once the buffer has grown to the largest testcase seen.
//
//sonar:alloc-free
func (tc *Testcase) BuildInto(prog *isa.Program) (secretStart, secretEnd int) {
	code := appendSetup(prog.Code[:0])
	code = append(code, tc.HeadChain...)
	code = append(code, tc.Prologue...)
	secretStart = len(code)
	code = append(code, isa.Load(isa.LD, RegSecret, RegSecretBase, 0)) // load secret
	code = appendSecretOps(code, tc.Patterns)
	secretEnd = len(code)
	code = appendProbeOps(code, tc.Probe, tc.ProbeOffset, tc.ProbeDelay, tc.ProbeBase)
	code = append(code, tc.Epilogue...)
	code = append(code, isa.Instr{Op: isa.ECALL})
	prog.Base = CodeBase
	prog.Code = code
	return secretStart, secretEnd
}

// BuildAttacker assembles the dual-core attacker program: setup, the loop
// body repeated, and a halt.
func (tc *Testcase) BuildAttacker() *isa.Program {
	prog := &isa.Program{}
	tc.BuildAttackerInto(prog)
	return prog
}

// BuildAttackerInto assembles the dual-core attacker program into prog,
// reusing prog's instruction buffer.
//
//sonar:alloc-free
func (tc *Testcase) BuildAttackerInto(prog *isa.Program) {
	code := append(prog.Code[:0],
		isa.Instr{Op: isa.LUI, Rd: RegDataBase, Imm: int64(AttackerDataBase >> 12)},
		isa.I(isa.ADDI, RegChain, 0, 1),
	)
	for i := 0; i < 12; i++ {
		code = append(code, tc.Attacker...)
	}
	code = append(code, isa.Instr{Op: isa.ECALL})
	prog.Base = AttackerCodeBase
	prog.Code = code
}

// fillerRegs are the registers random filler instructions may use.
var fillerRegs = []uint8{1, 2, 3, 4, 5, 6, 7, 8}

// randomFiller generates one random filler instruction: ALU ops, multiplies,
// divides, and loads/stores within the data window.
func randomFiller(rng *rand.Rand) isa.Instr {
	rd := fillerRegs[rng.Intn(len(fillerRegs))]
	rs1 := fillerRegs[rng.Intn(len(fillerRegs))]
	rs2 := fillerRegs[rng.Intn(len(fillerRegs))]
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR}
		return isa.R(ops[rng.Intn(len(ops))], rd, rs1, rs2)
	case 4, 5:
		return isa.I(isa.ADDI, rd, rs1, int64(rng.Intn(256)))
	case 6:
		return isa.R(isa.MUL, rd, rs1, rs2)
	case 7:
		return isa.R(isa.DIV, rd, rs1, rs2)
	case 8:
		base := fillerBases[rng.Intn(len(fillerBases))]
		return isa.Load(isa.LD, rd, base, int64(rng.Intn(64)-32)*64)
	default:
		base := fillerBases[rng.Intn(len(fillerBases))]
		return isa.Store(isa.SD, rs2, base, int64(rng.Intn(64)-32)*64)
	}
}

// Generate creates a fresh random testcase following the template.
func Generate(rng *rand.Rand, dualCore bool) *Testcase {
	tc := &Testcase{
		HeadChain:   isa.DepChain(RegChain, 2+rng.Intn(24)),
		Probe:       SecretPattern(rng.Intn(int(numPatterns))),
		ProbeOffset: int64(rng.Intn(64)-32) * 64,
		ProbeBase:   fillerBases[rng.Intn(len(fillerBases))],
		ProbeDelay:  rng.Intn(50),
	}
	nPatterns := 1 + rng.Intn(2)
	for i := 0; i < nPatterns; i++ {
		tc.Patterns = append(tc.Patterns, SecretPattern(rng.Intn(int(numPatterns))))
	}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		tc.Prologue = append(tc.Prologue, randomFiller(rng))
	}
	for i, n := 0, 2+rng.Intn(8); i < n; i++ {
		tc.Epilogue = append(tc.Epilogue, randomFiller(rng))
	}
	if dualCore {
		// Attacker loop body: loads sweeping cachelines to keep the shared
		// D-channel busy, mirroring the victim's data window usage.
		for i := 0; i < 4; i++ {
			tc.Attacker = append(tc.Attacker,
				isa.Load(isa.LD, fillerRegs[i%len(fillerRegs)], RegDataBase, int64(i)*64))
		}
		tc.Attacker = append(tc.Attacker, isa.I(isa.ADDI, RegChain, RegChain, 1))
	}
	return tc
}
