package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"sonar/internal/fuzz/faultinject"
	"sonar/internal/obs"
)

// faultOptions returns a small parallel campaign configuration with fast
// retry backoff, suitable for fault-injection tests.
func faultOptions(workers int) Options {
	opt := SonarOptions(24)
	opt.Workers = workers
	opt.BatchSize = 4
	opt.RetryBackoff = time.Millisecond
	return opt
}

// stripFaultEvents drops worker_failed/batch_retried events and re-numbers
// the remainder, yielding the stream a fault-free run would have produced
// if recovery is exact.
func stripFaultEvents(events []obs.Event) []byte {
	var b []byte
	seq := 0
	for _, e := range events {
		if e.Kind == obs.WorkerFailed || e.Kind == obs.BatchRetried {
			continue
		}
		seq++
		e.Seq = seq
		enc, err := json.Marshal(e)
		if err != nil {
			panic(err)
		}
		b = append(append(b, enc...), '\n')
	}
	return b
}

func countFaultEvents(events []obs.Event) (fails, retries int) {
	for _, e := range events {
		switch e.Kind {
		case obs.WorkerFailed:
			fails++
		case obs.BatchRetried:
			retries++
		}
	}
	return fails, retries
}

// TestFaultMatrix is the CI fault-injection matrix (run per-cell under
// -race by the workflow): for every worker count and fault mode, an
// injected transient fault must never deadlock or fail the campaign — the
// batch is retried on a replacement worker, worker_failed/batch_retried
// events are emitted, and the final Stats and (fault-event-stripped) event
// stream match the fault-free run exactly.
func TestFaultMatrix(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, mode := range []faultinject.Mode{faultinject.ModePanic, faultinject.ModeStall} {
			t.Run(fmt.Sprintf("workers=%d/mode=%s", workers, mode), func(t *testing.T) {
				base := faultOptions(workers)
				bopt, bmem := observedOptions(base)
				want := RunParallel(liteFactory, bopt)

				sched := faultinject.NewSchedule(
					faultinject.Fault{Worker: 0, Round: 1, Iter: 1, Mode: mode},
					faultinject.Fault{Worker: workers - 1, Round: 2, Iter: 0, Mode: mode},
				)
				defer sched.Release() // drain stalled goroutines at test end
				fopt := base
				fopt.FaultHook = sched
				if mode == faultinject.ModeStall {
					// Stalls are only recoverable through the deadline.
					fopt.IterTimeout = 10 * time.Millisecond
				}
				fopt, fmem := observedOptions(fopt)
				got := RunParallel(liteFactory, fopt)

				statsEqual(t, want, got)
				if fired := sched.Fired(); fired != 2 {
					t.Errorf("fired %d faults, want 2", fired)
				}
				fails, retries := countFaultEvents(fmem.Events())
				if fails != 2 || retries != 2 {
					t.Errorf("got %d worker_failed / %d batch_retried events, want 2/2", fails, retries)
				}
				if !bytes.Equal(stripFaultEvents(fmem.Events()), stripFaultEvents(bmem.Events())) {
					t.Error("faulted campaign's event stream (fault events stripped) differs from fault-free run")
				}
			})
		}
	}
}

// A permanently failing shard (the fault re-arms on every retry) must be
// abandoned after MaxRetries replacement workers: the campaign completes on
// the remaining shards with the abandoned budget dropped, and the
// abandonment is reported as a worker_failed event.
func TestPermanentFaultAbandonsShard(t *testing.T) {
	opt := faultOptions(2)
	opt.MaxRetries = 1
	sched := faultinject.NewSchedule(
		faultinject.Fault{Worker: 1, Round: 2, Iter: 0, Mode: faultinject.ModePanic, Repeat: true},
	)
	opt.FaultHook = sched
	opt, mem := observedOptions(opt)
	st := RunParallel(liteFactory, opt)

	// Shards own 12 iterations each; worker 1 completes round 1 (4 iters)
	// and is abandoned in round 2, dropping its remaining 8.
	if got := len(st.PerIteration); got != 16 {
		t.Fatalf("degraded campaign executed %d iterations, want 16", got)
	}
	if fired := sched.Fired(); fired != 2 {
		t.Errorf("fired %d faults, want 2 (initial attempt + 1 retry)", fired)
	}
	fails, retries := countFaultEvents(mem.Events())
	if fails != 3 { // two failed attempts + the abandonment notice
		t.Errorf("got %d worker_failed events, want 3", fails)
	}
	if retries != 0 {
		t.Errorf("got %d batch_retried events for an abandoned shard, want 0", retries)
	}
	abandoned := false
	wantAttempt := 1
	for _, e := range mem.Events() {
		if e.Kind != obs.WorkerFailed {
			continue
		}
		if strings.Contains(e.Reason, "abandoned") {
			abandoned = true
			if e.Worker != 1 {
				t.Errorf("abandonment reported for worker %d, want 1", e.Worker)
			}
			// The abandonment is a disposition, not an attempt: it carries
			// the distinct Attempt=0 marker so it can never duplicate a
			// failed attempt's number.
			if e.Attempt != 0 {
				t.Errorf("abandonment event has attempt %d, want 0", e.Attempt)
			}
		} else {
			// Real failed attempts are numbered 1..N in order.
			if e.Attempt != wantAttempt {
				t.Errorf("failed attempt numbered %d, want %d", e.Attempt, wantAttempt)
			}
			wantAttempt++
		}
	}
	if !abandoned {
		t.Error("no abandonment worker_failed event emitted")
	}
	// The surviving shard's results must be untouched: its per-iteration
	// series is internally consistent and the campaign ended cleanly.
	last := mem.Events()[len(mem.Events())-1]
	if last.Kind != obs.CampaignEnd {
		t.Errorf("degraded campaign ended with %q, want campaign_end", last.Kind)
	}
	if last.Iterations != 16 {
		t.Errorf("campaign_end reports %d iterations, want 16", last.Iterations)
	}
}

// MaxRetries < 0 disables retries entirely: the first fault abandons the
// shard.
func TestNegativeMaxRetriesDisablesRetry(t *testing.T) {
	opt := faultOptions(2)
	opt.MaxRetries = -1
	sched := faultinject.NewSchedule(
		faultinject.Fault{Worker: 0, Round: 1, Iter: 0, Mode: faultinject.ModePanic},
	)
	opt.FaultHook = sched
	st := RunParallel(liteFactory, opt)
	if got := len(st.PerIteration); got != 12 {
		t.Fatalf("executed %d iterations, want 12 (worker 0's full shard dropped)", got)
	}
	if fired := sched.Fired(); fired != 1 {
		t.Errorf("fired %d faults, want 1", fired)
	}
}

// Fault recovery must compose with checkpoint/resume: a campaign that
// suffers a transient panic, pauses, and resumes still matches the
// fault-free uninterrupted run.
func TestFaultRecoveryComposesWithResume(t *testing.T) {
	base := faultOptions(2)
	full := RunParallel(liteFactory, base)

	popt := base
	sched := faultinject.NewSchedule(
		faultinject.Fault{Worker: 0, Round: 1, Iter: 2, Mode: faultinject.ModePanic},
	)
	popt.FaultHook = sched
	_, cp := pausedCampaign(t, popt, 2)
	if fired := sched.Fired(); fired != 1 {
		t.Fatalf("fired %d faults before the pause, want 1", fired)
	}
	resumed, err := Resume(liteFactory, cp.CampaignOptions(), cp)
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, full, resumed)
}
