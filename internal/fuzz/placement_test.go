package fuzz

import (
	"bytes"
	"testing"

	"sonar/internal/hdl/gen"
	"sonar/internal/trace"
)

// TestAuditPlacementByteIdentity pins the placement acceptance criterion:
// ordering monitors by the flow audit's rank must leave every campaign
// output byte-identical to the pre-audit ascending-ID placement — and the
// test first proves the permutation is non-trivial on the campaign's
// design, so the identity is earned, not vacuous.
func TestAuditPlacementByteIdentity(t *testing.T) {
	n, err := gen.New(netTestCfg)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(n)
	ranked := monitorPlacement(a, a)
	asc := a.Monitored()
	if len(ranked) != len(asc) {
		t.Fatalf("rank order has %d points, Monitored has %d", len(ranked), len(asc))
	}
	nontrivial := false
	for i := range ranked {
		if ranked[i] != asc[i] {
			nontrivial = true
			break
		}
	}
	if !nontrivial {
		t.Fatal("audit rank equals ascending-ID order on the test design; the identity below would be vacuous")
	}

	type result struct {
		stats  *Stats
		stream []byte
	}
	run := func(baseline bool) result {
		disableAuditPlacement = baseline
		defer func() { disableAuditPlacement = false }()
		opt := SonarOptions(24)
		opt.Workers = 2
		opt.BatchSize = 5
		opt, mem := observedOptions(opt)
		stats := RunParallelExec(netExecFactory(t), opt)
		return result{stats: stats, stream: mem.Bytes()}
	}
	pre := run(true)
	post := run(false)
	if len(pre.stream) == 0 {
		t.Fatal("no events emitted")
	}
	statsEqual(t, pre.stats, post.stats)
	if !bytes.Equal(pre.stream, post.stream) {
		t.Error("audit-ranked placement moved campaign event stream bytes")
	}
}
