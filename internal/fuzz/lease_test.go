package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sonar/internal/obs"
)

// execLease round-trips the lease and its result through their JSON wire
// encodings before and after execution, so every lease-coordinator test
// also exercises exactly what travels over the campaign service's HTTP API.
func execLease(t *testing.T, shape Shape, lanes int, l *Lease) *LeaseResult {
	t.Helper()
	lb, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("marshal lease: %v", err)
	}
	var wire Lease
	if err := json.Unmarshal(lb, &wire); err != nil {
		t.Fatalf("unmarshal lease: %v", err)
	}
	res, err := ExecuteLease(liteFactory, shape, lanes, &wire)
	if err != nil {
		t.Fatalf("ExecuteLease(shard %d, round %d): %v", l.Shard, l.Round, err)
	}
	rb, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal lease result: %v", err)
	}
	var back LeaseResult
	if err := json.Unmarshal(rb, &back); err != nil {
		t.Fatalf("unmarshal lease result: %v", err)
	}
	return &back
}

// driveLeases runs a lease coordinator to completion in-process: every open
// shard of every round gets its lease executed and reported back.
func driveLeases(t *testing.T, lc *LeaseCoordinator) {
	t.Helper()
	shape := lc.Shape()
	for !lc.Finished() {
		open := lc.OpenShards()
		if len(open) == 0 {
			t.Fatal("coordinator not finished but no open shards")
		}
		for _, shard := range open {
			l, err := lc.Lease(shard)
			if err != nil {
				t.Fatalf("Lease(%d): %v", shard, err)
			}
			if err := lc.Report(execLease(t, shape, 1, l)); err != nil {
				t.Fatalf("Report(shard %d): %v", shard, err)
			}
		}
	}
}

// statsWireEqual compares two campaigns' full serialized statistics,
// findings content included (statsEqual only compares finding counts).
func statsWireEqual(t *testing.T, a, b *Stats) {
	t.Helper()
	aw, err := json.Marshal(a.Wire())
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	bw, err := json.Marshal(b.Wire())
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	if !bytes.Equal(aw, bw) {
		t.Fatalf("serialized stats differ:\n%s\nvs\n%s", aw, bw)
	}
}

// The distributed determinism contract at the engine layer: a campaign
// driven entirely through shard leases — every lease and result crossing a
// JSON wire boundary — produces a byte-identical event stream and identical
// Stats to the local parallel coordinator for the same (Seed, Workers,
// BatchSize).
func TestLeaseCoordinatorMatchesRunParallel(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opt := SonarOptions(60)
			opt.Workers = workers
			opt.BatchSize = 8

			localSink := obs.NewMemorySink()
			localOpt := opt
			localOpt.Observer = obs.New(localSink)
			localStats := RunParallel(liteFactory, localOpt)

			leaseSink := obs.NewMemorySink()
			leaseOpt := opt
			leaseOpt.Observer = obs.New(leaseSink)
			lc := NewLeaseCoordinator(liteFactory(), leaseOpt)
			driveLeases(t, lc)

			if !bytes.Equal(localSink.Bytes(), leaseSink.Bytes()) {
				t.Error("lease-driven event stream differs from local RunParallel stream")
			}
			statsEqual(t, localStats, lc.Stats())
			statsWireEqual(t, localStats, lc.Stats())
		})
	}
}

// Re-executing the same lease must return byte-equal results — the
// property that lets the service re-offer a lease lost to worker churn
// without perturbing the campaign.
func TestLeaseReexecutionDeterministic(t *testing.T) {
	opt := SonarOptions(40)
	opt.Workers = 2
	opt.BatchSize = 8
	opt.Observer = obs.New()
	lc := NewLeaseCoordinator(liteFactory(), opt)

	// Advance one round so the lease carries a non-trivial corpus + cursor.
	driveRounds(t, lc, 1)

	l, err := lc.Lease(0)
	if err != nil {
		t.Fatalf("Lease(0): %v", err)
	}
	a := execLease(t, lc.Shape(), 1, l)
	b := execLease(t, lc.Shape(), 1, l)
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Fatal("re-executing the same lease produced different results")
	}
	// A different lane width is operational: same result bytes.
	c := execLease(t, lc.Shape(), 64, l)
	cb, _ := json.Marshal(c)
	if !bytes.Equal(ab, cb) {
		t.Fatal("lease result depends on the executor's lane width")
	}
}

// driveRounds advances the coordinator through n round barriers.
func driveRounds(t *testing.T, lc *LeaseCoordinator, n int) {
	t.Helper()
	target := lc.Round() + n
	for lc.Round() < target && !lc.Finished() {
		for _, shard := range lc.OpenShards() {
			l, err := lc.Lease(shard)
			if err != nil {
				t.Fatalf("Lease(%d): %v", shard, err)
			}
			if err := lc.Report(execLease(t, lc.Shape(), 1, l)); err != nil {
				t.Fatalf("Report(shard %d): %v", shard, err)
			}
		}
	}
}

// Stale and malformed reports must be rejected without touching campaign
// state.
func TestLeaseReportValidation(t *testing.T) {
	opt := SonarOptions(40)
	opt.Workers = 2
	opt.BatchSize = 8
	opt.Observer = obs.New()
	lc := NewLeaseCoordinator(liteFactory(), opt)

	l, err := lc.Lease(0)
	if err != nil {
		t.Fatalf("Lease(0): %v", err)
	}
	res := execLease(t, lc.Shape(), 1, l)

	stale := *res
	stale.Round = 99
	if err := lc.Report(&stale); err == nil {
		t.Error("report for a wrong round was accepted")
	}
	short := *res
	short.Outcomes = short.Outcomes[:len(short.Outcomes)-1]
	if err := lc.Report(&short); err == nil {
		t.Error("report with a short batch was accepted")
	}
	garbled := *res
	garbled.Outcomes = append([]OutcomeWire(nil), res.Outcomes...)
	garbled.Outcomes[0].TC = "not a testcase"
	if err := lc.Report(&garbled); err == nil {
		t.Error("report with a garbled testcase was accepted")
	}
	if err := lc.Report(res); err != nil {
		t.Fatalf("valid report rejected after invalid ones: %v", err)
	}
	if err := lc.Report(res); err == nil {
		t.Error("duplicate report was accepted")
	}
}

// Abandoning a shard drops its budget and completes the campaign degraded,
// with the same worker_failed attempt/disposition events a local campaign
// emits when a shard exhausts its retries.
func TestLeaseAbandonmentDropsBudget(t *testing.T) {
	sink := obs.NewMemorySink()
	opt := SonarOptions(40)
	opt.Workers = 2
	opt.BatchSize = 8
	opt.Observer = obs.New(sink)
	lc := NewLeaseCoordinator(liteFactory(), opt)

	reasons := []string{"lease c1-r1-s1-a1 expired after 30ms", "lease c1-r1-s1-a2 expired after 30ms"}
	if err := lc.Abandon(1, reasons); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	driveLeases(t, lc)

	if got, want := len(lc.Stats().PerIteration), 20; got != want {
		t.Errorf("degraded campaign executed %d iterations, want %d (shard 1's 20 dropped)", got, want)
	}
	var attempts, dispositions int
	for _, e := range sink.Events() {
		if e.Kind != obs.WorkerFailed {
			continue
		}
		if e.Worker != 1 {
			t.Errorf("worker_failed for worker %d, want 1", e.Worker)
		}
		if e.Attempt == 0 {
			dispositions++
			if !strings.Contains(e.Reason, "shard abandoned after 2 failed attempts; 20 iterations dropped") {
				t.Errorf("unexpected abandonment reason %q", e.Reason)
			}
		} else {
			attempts++
		}
	}
	if attempts != 2 || dispositions != 1 {
		t.Errorf("got %d failed-attempt events and %d dispositions, want 2 and 1", attempts, dispositions)
	}
}

// A lease campaign snapshots into the ordinary Checkpoint shape and resumes
// bit-identically: the concatenation of the streams before and after the
// snapshot equals the uninterrupted campaign's stream, and the final Stats
// match.
func TestLeaseCoordinatorSnapshotResume(t *testing.T) {
	opt := SonarOptions(60)
	opt.Workers = 3
	opt.BatchSize = 8

	unbrokenSink := obs.NewMemorySink()
	unbrokenOpt := opt
	unbrokenOpt.Observer = obs.New(unbrokenSink)
	unbroken := NewLeaseCoordinator(liteFactory(), unbrokenOpt)
	driveLeases(t, unbroken)

	// Interrupted: two rounds, snapshot, resume in a "new process" (fresh
	// coordinator, fresh observer), drive to completion.
	firstSink := obs.NewMemorySink()
	firstOpt := opt
	firstOpt.Observer = obs.New(firstSink)
	first := NewLeaseCoordinator(liteFactory(), firstOpt)
	driveRounds(t, first, 2)
	cp := first.Snapshot(false)

	// The snapshot survives its file round-trip like any checkpoint.
	path := t.TempDir() + "/lease.ckpt"
	if _, err := cp.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}

	secondSink := obs.NewMemorySink()
	secondOpt := loaded.CampaignOptions()
	secondOpt.Observer = obs.New(secondSink)
	second, err := ResumeLeaseCoordinator(liteFactory(), secondOpt, loaded)
	if err != nil {
		t.Fatalf("ResumeLeaseCoordinator: %v", err)
	}
	driveLeases(t, second)

	joined := append(firstSink.Bytes(), secondSink.Bytes()...)
	if !bytes.Equal(joined, unbrokenSink.Bytes()) {
		t.Error("snapshot/resume stream concatenation differs from the uninterrupted stream")
	}
	statsEqual(t, unbroken.Stats(), second.Stats())
	statsWireEqual(t, unbroken.Stats(), second.Stats())
}
