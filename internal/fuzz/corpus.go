package fuzz

import (
	"math/rand"
	"sort"

	"sonar/internal/monitor"
)

// Seed is a retained testcase with the feedback that earned its place.
type Seed struct {
	// TC is the retained testcase itself.
	TC *Testcase
	// Intvls is the per-point minimum distinct-request interval observed
	// when this seed executed.
	Intvls map[int]int64
	// Dir is the adaptive mutation direction: +1 grows the head chain,
	// -1 shrinks it (paper §6.2.1, interval-guided directed mutation).
	Dir int
	// Target is the contention point this seed was last mutated towards.
	Target int
}

// Corpus is the seed corpus with Sonar's retention and selection policies.
type Corpus struct {
	seeds []*Seed
	// best tracks the global minimum interval per contention point.
	best map[int]int64
	// version counts mutations (accepted offers). The parallel coordinator
	// compares versions across a merge round to decide whether workers need
	// fresh views of the merged corpus at all — unchanged rounds skip
	// distribution entirely.
	version uint64
	// frozen marks storage shared with copy-on-write views (see view): the
	// next mutation must thaw (privately copy) the seed list and best map
	// first. Behaviour is otherwise identical to an unfrozen corpus.
	frozen bool
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{best: make(map[int]int64)}
}

// Len returns the number of retained seeds.
func (c *Corpus) Len() int { return len(c.seeds) }

// Snapshot returns an independent copy of the corpus. The copy shares the
// retained Seed values (immutable after creation) but owns its seed list
// and best-interval map, so parallel workers can extend private snapshots
// of a merged global corpus without synchronization.
func (c *Corpus) Snapshot() *Corpus {
	cp := &Corpus{
		seeds:   append([]*Seed(nil), c.seeds...),
		best:    make(map[int]int64, len(c.best)),
		version: c.version,
	}
	for id, v := range c.best { //sonar:nondeterministic-ok map-to-map copy is order-insensitive
		cp.best[id] = v
	}
	return cp
}

// view freezes the corpus and returns a shallow copy-on-write alias sharing
// its seed list and best-interval map. Views are how the parallel
// coordinator distributes a merged corpus: O(1) per worker per round instead
// of the old per-worker deep Snapshot, with the copy deferred to the first
// mutation (thaw) on whichever side mutates first. Frozen storage is only
// ever read, so lingering views — including those held by abandoned retry
// goroutines — stay safe without synchronization.
func (c *Corpus) view() *Corpus {
	c.frozen = true
	return &Corpus{seeds: c.seeds, best: c.best, version: c.version, frozen: true}
}

// thaw gives a frozen corpus private storage before its first mutation.
func (c *Corpus) thaw() {
	if !c.frozen {
		return
	}
	c.seeds = append([]*Seed(nil), c.seeds...)
	best := make(map[int]int64, len(c.best))
	for id, v := range c.best { //sonar:nondeterministic-ok map-to-map copy is order-insensitive
		best[id] = v
	}
	c.best = best
	c.frozen = false
}

// Best returns the global minimum interval recorded for a point, or
// monitor.NoInterval.
func (c *Corpus) Best(point int) int64 {
	if v, ok := c.best[point]; ok {
		return v
	}
	return monitor.NoInterval
}

// Offer applies the retention rule: the testcase joins the corpus if it
// reduced the minimum reqsIntvl at any contention point below the global
// best (paper §6.2.1 ①). It returns the created seed, or nil if not
// retained. The common rejecting path is read-only, so offering against a
// frozen view costs nothing; the first accepted offer thaws.
func (c *Corpus) Offer(tc *Testcase, intvls map[int]int64, dir int, target int) *Seed {
	improved := false
	for id, v := range intvls { //sonar:nondeterministic-ok read-only improvement probe; min-fold is order-insensitive
		if old, ok := c.best[id]; !ok || v < old {
			improved = true
			break
		}
	}
	if !improved {
		return nil
	}
	c.thaw()
	for id, v := range intvls { //sonar:nondeterministic-ok min-fold is order-insensitive
		if old, ok := c.best[id]; !ok || v < old {
			c.best[id] = v
		}
	}
	c.version++
	s := &Seed{TC: tc, Intvls: intvls, Dir: dir, Target: target}
	c.seeds = append(c.seeds, s)
	return s
}

// Select picks a seed and a target contention point for the next mutation.
// With prioritize set, it targets the point with the smallest non-zero best
// interval — the point closest to (but not yet at) triggering — and picks
// uniformly among seeds achieving that best (§6.2.1 ②). Without it, the
// seed is uniform random and the target is any point the seed observed.
func (c *Corpus) Select(rng *rand.Rand, prioritize bool) (*Seed, int) {
	if len(c.seeds) == 0 {
		return nil, -1
	}
	if !prioritize {
		s := c.seeds[rng.Intn(len(c.seeds))]
		return s, anyPoint(rng, s.Intvls)
	}
	// Rank points by interval; points with smaller non-zero best intervals
	// are "more likely to be selected as targets" (§6.2.1) — rank-weighted
	// sampling rather than a deterministic argmin, so the campaign does not
	// tunnel forever on a point whose interval cannot reach zero.
	type cand struct {
		id int
		v  int64
	}
	var cands []cand
	for id, v := range c.best { //sonar:nondeterministic-ok candidates collected then sorted
		if v == 0 {
			continue // already triggered; approaching it halts (paper §6.1)
		}
		cands = append(cands, cand{id, v})
	}
	if len(cands) == 0 {
		s := c.seeds[rng.Intn(len(c.seeds))]
		return s, anyPoint(rng, s.Intvls)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v < cands[j].v
		}
		return cands[i].id < cands[j].id
	})
	// Geometric rank weighting: each rank is taken with probability 2/3,
	// so rank 0 is twice as likely as rank 1, capped at the first 16 ranks.
	r := 0
	for r < len(cands)-1 && r < 15 && rng.Intn(3) == 0 {
		r++
	}
	target := cands[r].id
	bestV := cands[r].v
	// Among seeds achieving the best interval at the target, pick randomly.
	var candidates []*Seed
	for _, s := range c.seeds {
		if v, ok := s.Intvls[target]; ok && v == bestV {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		candidates = c.seeds
	}
	return candidates[rng.Intn(len(candidates))], target
}

func anyPoint(rng *rand.Rand, intvls map[int]int64) int {
	if len(intvls) == 0 {
		return -1
	}
	// Index sorted keys rather than Go's randomized map order, so equal
	// seeds give equal campaigns (the determinism contract of Run and
	// RunParallel).
	ids := make([]int, 0, len(intvls))
	for id := range intvls { //sonar:nondeterministic-ok keys collected then sorted
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}
