package fuzz

import (
	"math/rand"
	"testing"

	"sonar/internal/isa"
	"sonar/internal/monitor"
)

// Property: the corpus best-interval map is the running minimum of every
// offered interval, regardless of retention decisions.
func TestQuickCorpusBestIsRunningMin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		c := NewCorpus()
		ref := map[int]int64{}
		for i := 0; i < 50; i++ {
			m := map[int]int64{}
			for k, kn := 0, 1+rng.Intn(4); k < kn; k++ {
				m[rng.Intn(6)] = int64(rng.Intn(40))
			}
			for id, v := range m {
				if old, ok := ref[id]; !ok || v < old {
					ref[id] = v
				}
			}
			c.Offer(&Testcase{}, m, +1, -1)
		}
		for id, want := range ref {
			if got := c.Best(id); got != want {
				t.Fatalf("trial %d: Best(%d) = %d, want %d", trial, id, got, want)
			}
		}
		for id := 0; id < 6; id++ {
			if _, ok := ref[id]; !ok && c.Best(id) != monitor.NoInterval {
				t.Fatalf("trial %d: Best(%d) invented a value", trial, id)
			}
		}
	}
}

// Property: selection never targets a triggered (zero-interval) point while
// a non-zero point exists, and always returns a retained seed.
func TestQuickSelectionSkipsTriggered(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		c := NewCorpus()
		zeros := map[int]bool{}
		nonzero := 0
		for i := 0; i < 20; i++ {
			id := rng.Intn(10)
			v := int64(rng.Intn(5))
			if v == 0 {
				zeros[id] = true
			} else {
				nonzero++
			}
			c.Offer(&Testcase{}, map[int]int64{id: v}, +1, -1)
		}
		if c.Len() == 0 {
			continue
		}
		seed, target := c.Select(rng, true)
		if seed == nil {
			t.Fatal("nil seed from non-empty corpus")
		}
		if target >= 0 && c.Best(target) == 0 && nonzero > 0 {
			// Only allowed if every point with a non-zero history has
			// since been driven to zero.
			allZero := true
			for id := 0; id < 10; id++ {
				if b := c.Best(id); b != monitor.NoInterval && b != 0 {
					allZero = false
				}
			}
			if !allZero {
				t.Fatalf("trial %d: targeted triggered point %d", trial, target)
			}
		}
	}
}

// Property: every generated or mutated testcase builds into a program whose
// instructions all encode/decode, with a well-formed secret region.
func TestQuickTestcasesAlwaysWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tc := Generate(rng, true)
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0:
			tc = Generate(rng, i%2 == 0)
		case 1:
			tc = MutateDirected(&Seed{TC: tc, Dir: 1 - 2*rng.Intn(2)}, rng)
		case 2:
			tc = MutateRandom(&Seed{TC: tc}, rng)
		}
		prog, s, e := tc.Build()
		if s <= 0 || e <= s || e > prog.Len() {
			t.Fatalf("iter %d: secret range [%d,%d) of %d", i, s, e, prog.Len())
		}
		for j, ins := range prog.Code {
			back, err := isa.Decode(ins.Encode())
			if err != nil || back != ins {
				t.Fatalf("iter %d instr %d (%s): encode/decode broken (%v)", i, j, ins, err)
			}
		}
		if tc.ProbeDelay < 0 || tc.ProbeDelay > 61 {
			t.Fatalf("iter %d: ProbeDelay %d out of range", i, tc.ProbeDelay)
		}
	}
}
