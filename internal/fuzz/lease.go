package fuzz

import (
	"fmt"

	"sonar/internal/detect"
)

// Shard leases are the distributed-campaign entry points of the fuzzing
// engine (docs/SERVICE.md): a coordinating server owns the campaign state a
// local coordinator would hold — per-shard budgets and RNG cursors, the
// merged corpus, the stats accumulator — and hands out one batch of one
// shard at a time as a Lease. Any process can execute a lease with
// ExecuteLease (a pure function of the lease and the campaign shape) and
// report a LeaseResult back; the LeaseCoordinator folds reports at round
// barriers in canonical worker order, reusing the exact merge and fold code
// paths of RunParallel. A distributed campaign over a fixed (Seed, Workers,
// BatchSize) therefore produces the same final Stats and a byte-identical
// event stream to a local run — TestLeaseCoordinatorMatchesRunParallel pins
// this, and the service integration tests extend it across HTTP.

// Lease is one shard-batch work assignment: everything a worker needs —
// beyond the campaign shape, which the service hands out alongside — to
// execute the batch exactly as a local shard worker would have.
type Lease struct {
	// Shard is the worker index the batch belongs to (0-based); it fixes
	// the RNG stream (Seed+Shard) like a local worker index does.
	Shard int `json:"shard"`
	// Round is the 1-based merge round the batch belongs to.
	Round int `json:"round"`
	// N is the number of iterations to execute.
	N int `json:"n"`
	// Cursor is the shard's pre-batch RNG draw count; the executor replays
	// the shard generator to it, exactly like a replacement worker after a
	// local fault.
	Cursor uint64 `json:"cursor"`
	// Corpus is the merged global corpus as of the previous round barrier.
	Corpus CorpusWire `json:"corpus"`
}

// OutcomeWire is one iteration outcome in serialized form — the unit a
// LeaseResult carries back to the coordinator.
type OutcomeWire struct {
	// TC is the executed testcase in Testcase.Marshal form.
	TC string `json:"tc"`
	// Triggered is the contention points triggered by the double execution,
	// in execution order (the fold deduplicates against the global set).
	Triggered []int `json:"triggered,omitempty"`
	// Finding is the dual-differential finding, if any.
	Finding *detect.Finding `json:"finding,omitempty"`
	// Cycles is the double execution's total simulated cycle count.
	Cycles int64 `json:"cycles"`
	// Intvls is the merged per-point best distinct-request interval of the
	// double execution, point-sorted.
	Intvls []PointIntvl `json:"intvls,omitempty"`
}

// wireOutcome converts one outcome to its wire form.
func wireOutcome(o *outcome) OutcomeWire {
	return OutcomeWire{
		TC:        o.tc.Marshal(),
		Triggered: o.triggered,
		Finding:   o.finding,
		Cycles:    o.cycles,
		Intvls:    sortIntvls(o.intvls),
	}
}

// outcome rebuilds the in-memory outcome of a wire entry.
func (ow *OutcomeWire) outcome() (outcome, error) {
	tc, err := Unmarshal(ow.TC)
	if err != nil {
		return outcome{}, err
	}
	return outcome{
		tc:        tc,
		triggered: ow.Triggered,
		finding:   ow.Finding,
		cycles:    ow.Cycles,
		intvls:    unsortIntvls(ow.Intvls),
	}, nil
}

// LeaseResult is a worker's report for one executed lease: the batch's
// outcomes in execution order, the seeds the batch retained (in retention
// order), and the shard's post-batch RNG cursor. Its JSON encoding is
// deterministic (testcases in Marshal form, interval maps point-sorted), so
// re-executing the same lease produces byte-equal results — the property
// that makes lease re-offers after worker churn safe.
type LeaseResult struct {
	// Shard echoes the lease's shard index.
	Shard int `json:"shard"`
	// Round echoes the lease's merge round.
	Round int `json:"round"`
	// Cursor is the shard's post-batch RNG draw count.
	Cursor uint64 `json:"cursor"`
	// Outcomes are the batch's iteration outcomes in execution order.
	Outcomes []OutcomeWire `json:"outcomes"`
	// Seeds are the corpus seeds the batch retained, in retention order.
	Seeds []SeedWire `json:"seeds"`
}

// ExecuteLease runs one shard-batch lease to completion and returns its
// result. It is a pure function of (shape, lanes, lease): it builds a fresh
// shard worker with the lease's RNG cursor replayed and the lease's corpus
// installed — exactly the state a local replacement worker re-derives after
// a fault — and drains the batch through the same runBatch path local
// workers use. Executing the same lease twice returns equal results, so a
// lease lost to worker churn can simply be re-offered.
//
// lanes is the evaluator batch width (Options.Lanes), an operational knob
// that may differ per worker without changing any result.
func ExecuteLease(newDUT func() *DUT, shape Shape, lanes int, l *Lease) (*LeaseResult, error) {
	return ExecuteLeaseExec(func() Executor { return newDUT() }, shape, lanes, l)
}

// ExecuteLeaseExec is ExecuteLease over any Executor factory — the entry
// point netlist-backed lease workers use. A GroupExecutor lease drains
// through the grouped batch loop, whose RNG order is lane-width independent,
// so re-executions at any Lanes setting still return byte-equal results.
func ExecuteLeaseExec(newExec func() Executor, shape Shape, lanes int, l *Lease) (*LeaseResult, error) {
	if l.Shard < 0 || l.Shard >= shape.Workers {
		return nil, fmt.Errorf("fuzz: lease shard %d out of range (campaign has %d workers)", l.Shard, shape.Workers)
	}
	if l.N < 1 || l.N > shape.BatchSize {
		return nil, fmt.Errorf("fuzz: lease batch of %d iterations outside [1, %d]", l.N, shape.BatchSize)
	}
	corpus, err := l.Corpus.corpus()
	if err != nil {
		return nil, fmt.Errorf("fuzz: lease corpus: %w", err)
	}
	opt := shape.Options()
	opt.Lanes = lanes
	w := newShardWorker(l.Shard, newExec(), opt, l.Cursor)
	w.corpus = corpus
	w.forceIntvls = true
	outs := w.runBatch(nil, l.N, l.Round)

	res := &LeaseResult{
		Shard:    l.Shard,
		Round:    l.Round,
		Cursor:   w.src.cursor(),
		Outcomes: make([]OutcomeWire, len(outs)),
	}
	for i := range outs {
		res.Outcomes[i] = wireOutcome(&outs[i])
	}
	for _, s := range w.takeNewSeeds() {
		res.Seeds = append(res.Seeds, wireSeed(s))
	}
	return res, nil
}

// leaseReport is one shard's decoded report for the open round.
type leaseReport struct {
	outs   []outcome
	seeds  []*Seed
	cursor uint64
}

// LeaseCoordinator is the server half of a distributed campaign: it owns
// the state RunParallel's coordinator would hold and advances it one
// reported lease at a time. Each merge round, every shard with remaining
// budget is open for exactly one lease; once every open shard has either
// reported (Report) or been abandoned (Abandon), the round closes — budget
// accounting and corpus merging in canonical worker order, then the stats
// fold and event emission in exactly RunParallel's fold order. Fixed (Seed,
// Workers, BatchSize) topology therefore yields a byte-identical event
// stream and identical Stats to a local run.
//
// The coordinator is not safe for concurrent use; callers (the campaign
// service's controller) serialize access.
type LeaseCoordinator struct {
	opt     Options
	dut     string // netlist name, for checkpoints and campaign_start
	workers int
	batch   int
	rem     []int    // remaining iterations per shard
	cursors []uint64 // RNG draw count per shard, as of the last barrier
	left    int      // total remaining iterations
	round   int      // merge rounds completed

	acc    *statsAccum
	global *Corpus

	// Open-round state, reset at each barrier.
	reported  []*leaseReport // per shard; non-nil = reported this round
	abandoned [][]string     // per shard; non-nil = abandoned this round, with its failure reasons
	finished  bool
}

// NewLeaseCoordinator opens a distributed campaign: it splits opt's
// iteration budget into static shards exactly like RunParallel and emits
// the campaign_start event through opt.Observer. d is the server's own
// executor instance (a behavioral *DUT or a netlist LaneDUT) — it backs the
// stats fold (point analysis) and is never executed; workers bring their
// own.
func NewLeaseCoordinator(d Executor, opt Options) *LeaseCoordinator {
	workers, batch := normalizeParallel(opt)
	rem := make([]int, workers)
	for i := range rem {
		rem[i] = opt.Iterations / workers
		if i < opt.Iterations%workers {
			rem[i]++
		}
	}
	an := d.ContentionAnalysis()
	lc := &LeaseCoordinator{
		opt: opt, dut: an.Netlist.Name(),
		workers: workers, batch: batch,
		rem: rem, cursors: make([]uint64, workers), left: opt.Iterations,
		acc: newStatsAccum(an, opt), global: NewCorpus(),
		reported:  make([]*leaseReport, workers),
		abandoned: make([][]string, workers),
	}
	observeCompile(opt.Observer, d)
	opt.Observer.CampaignStart(lc.dut, opt.Iterations, workers, batch, opt.Seed)
	if lc.left == 0 {
		lc.finish()
	}
	return lc
}

// ResumeLeaseCoordinator reopens a distributed campaign from a checkpoint
// (the lease-granular analog of Resume). opt must describe the same
// campaign shape as the checkpoint; the resumed coordinator's remaining
// rounds — Stats and event stream included — are identical to the
// uninterrupted campaign's.
func ResumeLeaseCoordinator(d Executor, opt Options, cp *Checkpoint) (*LeaseCoordinator, error) {
	if err := cp.validate(); err != nil {
		return nil, err
	}
	if got, want := shapeOf(opt), cp.Shape; got != want {
		return nil, fmt.Errorf("fuzz: resume shape mismatch: options %+v vs checkpoint %+v", got, want)
	}
	st, best, err := cp.stats()
	if err != nil {
		return nil, err
	}
	global, err := cp.corpus()
	if err != nil {
		return nil, err
	}
	workers, batch := normalizeParallel(opt)
	observeCompile(opt.Observer, d)
	acc := newStatsAccum(d.ContentionAnalysis(), opt)
	acc.st = st
	if acc.best != nil {
		for _, pi := range best {
			acc.best[pi.Point] = pi.Intvl
		}
	}
	var lastIter IterStats
	if n := len(st.PerIteration); n > 0 {
		lastIter = st.PerIteration[n-1]
	}
	opt.Observer.CampaignResumed(cp.EventSeq, len(st.PerIteration),
		lastIter.CumPoints, lastIter.CumTimingDiffs, len(st.Findings),
		global.Len(), st.ExecutedCycles)

	lc := &LeaseCoordinator{
		opt: opt, dut: cp.DUT,
		workers: workers, batch: batch,
		rem:     append([]int(nil), cp.Rem...),
		cursors: append([]uint64(nil), cp.Cursors...),
		left:    sum(cp.Rem), round: cp.Round,
		acc: acc, global: global,
		reported:  make([]*leaseReport, workers),
		abandoned: make([][]string, workers),
	}
	if cp.Complete {
		lc.acc.st.CorpusSize = lc.global.Len()
		lc.finished = true // campaign_end was already emitted by the original run
	} else if lc.left == 0 {
		lc.finish()
	}
	return lc, nil
}

// Shape returns the campaign's shape (effective workers and batch size
// included) — what lease executors pass to ExecuteLease.
func (lc *LeaseCoordinator) Shape() Shape { return shapeOf(lc.opt) }

// DUT returns the netlist name of the device under test.
func (lc *LeaseCoordinator) DUT() string { return lc.dut }

// Finished reports whether the campaign has drained (or dropped) its whole
// iteration budget and emitted campaign_end.
func (lc *LeaseCoordinator) Finished() bool { return lc.finished }

// Round returns the number of completed merge rounds.
func (lc *LeaseCoordinator) Round() int { return lc.round }

// Position returns the campaign position in iterations: executed plus
// dropped by abandoned shards, as of the last round barrier.
func (lc *LeaseCoordinator) Position() int { return lc.opt.Iterations - lc.left }

// Stats returns the accumulated campaign statistics as of the last round
// barrier. The result is final once Finished reports true; before that it
// is a live view that later rounds extend.
func (lc *LeaseCoordinator) Stats() *Stats { return lc.acc.st }

// CorpusLen returns the merged global corpus size as of the last round
// barrier (Stats.CorpusSize is only set at campaign end).
func (lc *LeaseCoordinator) CorpusLen() int { return lc.global.Len() }

// OpenShards returns the shards of the current round that still need a
// lease executed: remaining budget, not yet reported, not abandoned. An
// empty result means the campaign is finished (the round barrier closes as
// the last open shard resolves).
func (lc *LeaseCoordinator) OpenShards() []int {
	var open []int
	for i := 0; i < lc.workers; i++ {
		if lc.openShard(i) {
			open = append(open, i)
		}
	}
	return open
}

func (lc *LeaseCoordinator) openShard(i int) bool {
	return !lc.finished && lc.rem[i] > 0 && lc.reported[i] == nil && lc.abandoned[i] == nil
}

// Lease builds the work assignment for an open shard of the current round.
// The same lease may be built (and executed) any number of times — results
// are deterministic — which is how the service re-offers leases lost to
// worker churn.
func (lc *LeaseCoordinator) Lease(shard int) (*Lease, error) {
	if shard < 0 || shard >= lc.workers {
		return nil, fmt.Errorf("fuzz: shard %d out of range (campaign has %d workers)", shard, lc.workers)
	}
	if !lc.openShard(shard) {
		return nil, fmt.Errorf("fuzz: shard %d has no open lease this round", shard)
	}
	n := lc.rem[shard]
	if n > lc.batch {
		n = lc.batch
	}
	return &Lease{
		Shard:  shard,
		Round:  lc.round + 1,
		N:      n,
		Cursor: lc.cursors[shard],
		Corpus: newCorpusWire(lc.global),
	}, nil
}

// Report folds one executed lease's result in. The result must belong to an
// open shard of the current round and carry exactly the leased batch size;
// a malformed or stale result is rejected without touching campaign state.
// When the last open shard of the round resolves, the round barrier closes:
// seeds merge into the global corpus in canonical worker order, outcomes
// fold into Stats, and the round's events are emitted.
func (lc *LeaseCoordinator) Report(res *LeaseResult) error {
	if res == nil {
		return fmt.Errorf("fuzz: nil lease result")
	}
	if res.Shard < 0 || res.Shard >= lc.workers {
		return fmt.Errorf("fuzz: lease result for shard %d out of range (campaign has %d workers)", res.Shard, lc.workers)
	}
	if res.Round != lc.round+1 {
		return fmt.Errorf("fuzz: lease result for round %d, campaign is at round %d", res.Round, lc.round+1)
	}
	if !lc.openShard(res.Shard) {
		return fmt.Errorf("fuzz: shard %d has no open lease this round", res.Shard)
	}
	want := lc.rem[res.Shard]
	if want > lc.batch {
		want = lc.batch
	}
	if len(res.Outcomes) != want {
		return fmt.Errorf("fuzz: lease result carries %d outcomes, lease was for %d", len(res.Outcomes), want)
	}
	rep := &leaseReport{cursor: res.Cursor, outs: make([]outcome, len(res.Outcomes))}
	for i := range res.Outcomes {
		o, err := res.Outcomes[i].outcome()
		if err != nil {
			return fmt.Errorf("fuzz: lease result outcome %d: %w", i, err)
		}
		rep.outs[i] = o
	}
	for i := range res.Seeds {
		s, err := res.Seeds[i].seed()
		if err != nil {
			return fmt.Errorf("fuzz: lease result seed %d: %w", i, err)
		}
		rep.seeds = append(rep.seeds, s)
	}
	lc.reported[res.Shard] = rep
	lc.maybeCloseRound()
	return nil
}

// Abandon drops an open shard from the current round after its lease
// repeatedly failed: the shard's remaining budget is removed from the
// campaign at the round barrier, and the barrier's fold emits one
// worker_failed event per reason (the failed attempts, in order) followed
// by the abandonment disposition — the same degraded-but-deterministic
// completion a local campaign reaches when a shard exhausts its retries.
func (lc *LeaseCoordinator) Abandon(shard int, reasons []string) error {
	if shard < 0 || shard >= lc.workers {
		return fmt.Errorf("fuzz: shard %d out of range (campaign has %d workers)", shard, lc.workers)
	}
	if !lc.openShard(shard) {
		return fmt.Errorf("fuzz: shard %d has no open lease this round", shard)
	}
	if len(reasons) == 0 {
		return fmt.Errorf("fuzz: abandoning shard %d without failure reasons", shard)
	}
	lc.abandoned[shard] = reasons
	lc.maybeCloseRound()
	return nil
}

// maybeCloseRound closes the round barrier once no shard is still open.
func (lc *LeaseCoordinator) maybeCloseRound() {
	for i := 0; i < lc.workers; i++ {
		if lc.openShard(i) {
			return
		}
	}
	lc.closeRound()
}

// closeRound is the merge barrier: budget accounting, cursor advances, and
// seed re-offers in canonical worker order (runRound's barrier phase), then
// fault events, the per-shard stats fold, and batch_merged in exactly the
// order coordinator.fold uses — so the emitted stream matches a local run's
// byte-for-byte.
func (lc *LeaseCoordinator) closeRound() {
	lc.round++
	merged := 0
	dropped := make([]int, lc.workers)
	for i := 0; i < lc.workers; i++ {
		if lc.abandoned[i] != nil {
			dropped[i] = lc.rem[i]
			lc.left -= lc.rem[i]
			lc.rem[i] = 0
			continue
		}
		rep := lc.reported[i]
		if rep == nil {
			continue // shard had no budget this round
		}
		n := len(rep.outs)
		lc.rem[i] -= n
		lc.left -= n
		merged += n
		lc.cursors[i] = rep.cursor
		for _, s := range rep.seeds {
			lc.global.Offer(s.TC, s.Intvls, s.Dir, s.Target)
		}
	}
	for i := 0; i < lc.workers; i++ {
		reasons := lc.abandoned[i]
		for a, reason := range reasons {
			lc.opt.Observer.WorkerFailed(i, lc.round, a+1, reason)
		}
		if reasons != nil {
			lc.opt.Observer.WorkerFailed(i, lc.round, abandonAttempt,
				fmt.Sprintf("shard abandoned after %d failed attempts; %d iterations dropped", len(reasons), dropped[i]))
		}
	}
	for i := 0; i < lc.workers; i++ {
		if rep := lc.reported[i]; rep != nil {
			lc.acc.applyAll(rep.outs)
		}
	}
	lc.opt.Observer.BatchMerged(lc.round, merged, lc.global.Len(), 0)

	for i := range lc.reported {
		lc.reported[i] = nil
		lc.abandoned[i] = nil
	}
	if lc.left == 0 {
		lc.finish()
	}
}

// finish finalizes the campaign: corpus size lands in Stats and
// campaign_end is emitted, exactly like a local run's completion.
func (lc *LeaseCoordinator) finish() {
	lc.acc.st.CorpusSize = lc.global.Len()
	lc.acc.finish()
	lc.finished = true
}

// Snapshot captures the campaign as a Checkpoint at the last closed round
// barrier. Reports received for the still-open round are not included —
// resuming the snapshot re-opens that round, and its leases simply
// re-execute (deterministically) — so a snapshot may be taken at any time.
func (lc *LeaseCoordinator) Snapshot(complete bool) *Checkpoint {
	return buildCheckpoint(lc.dut, lc.opt, lc.left, lc.round, lc.rem, lc.cursors, complete, lc.acc, lc.global)
}
