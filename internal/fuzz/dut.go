// Package fuzz implements Sonar's microarchitectural-state-guided fuzzing
// (paper §6): the secret-dependent testcase template, seed retention and
// selection driven by the reqsIntvl feedback, and the adaptive directed
// mutation strategy that shifts request timing by growing or shrinking the
// dependency chain at the head of a testcase.
package fuzz

import (
	"sonar/internal/isa"
	"sonar/internal/monitor"
	"sonar/internal/trace"
	"sonar/internal/uarch"
)

// Memory layout shared by all testcases.
const (
	// CodeBase is where the victim program is placed.
	CodeBase uint64 = 0x1_0000
	// HandlerBase is where exception handlers are placed.
	HandlerBase uint64 = 0x2_0000
	// AttackerCodeBase is where the dual-core attacker program is placed.
	AttackerCodeBase uint64 = 0x3_0000
	// DataBase is the start of the victim data window.
	DataBase uint64 = 0x4_0000
	// AttackerDataBase is the start of the attacker data window.
	AttackerDataBase uint64 = 0x6_0000
	// SecretAddr holds the secret value during fuzzing (unprivileged).
	SecretAddr uint64 = 0x8_0000
	// PrivBase..PrivLimit is the privileged range used by Meltdown-style
	// exploitability analysis (package attack).
	PrivBase  uint64 = 0x10_0000
	PrivLimit uint64 = 0x10_1000
)

// Reserved registers (never touched by random fillers).
const (
	// RegChain carries the head dependency chain value.
	RegChain = 9
	// RegProbe0..2 are scratch registers for probe address computation.
	RegProbe0 = 10
	RegProbe1 = 11
	RegProbe2 = 12
	// RegDataBase holds DataBase.
	RegDataBase = 28
	// RegSecretBase holds SecretAddr.
	RegSecretBase = 29
	// RegSecret receives the loaded secret value.
	RegSecret = 30
	// RegTmp is scratch for secret-dependent ops.
	RegTmp = 31
)

// DUT bundles an elaborated SoC with its contention-point analysis and
// instrumentation, ready to execute testcases.
type DUT struct {
	SoC      *uarch.SoC       // the elaborated device
	Analysis *trace.Analysis  // §5 contention-point identification results
	Mon      *monitor.Monitor // reqsIntvl/state monitor over Analysis' points
	// WindowAlwaysOpen disables the secret-dependent monitoring window:
	// states are collected over the whole execution (the §6.1 ablation).
	WindowAlwaysOpen bool
}

// NewDUT analyzes and instruments a SoC. Similarity matching for persistent
// contention uses cacheline granularity.
func NewDUT(soc *uarch.SoC) *DUT {
	a := trace.Analyze(soc.Net)
	m := monitor.New(a, monitor.Config{SimilarityMask: ^uint64(uarch.LineBytes - 1)})
	d := &DUT{SoC: soc, Analysis: a, Mon: m}
	for _, c := range soc.Cores {
		c.SetWindowObserver(&windowGate{d})
	}
	soc.Mem.SetPrivRange(PrivBase, PrivLimit)
	return d
}

// windowGate forwards the cores' window transitions to the monitor unless
// the whole-run ablation pins the window open.
type windowGate struct{ d *DUT }

// SetWindow implements uarch.WindowObserver.
func (g *windowGate) SetWindow(open bool) {
	if g.d.WindowAlwaysOpen {
		g.d.Mon.SetWindow(true)
		return
	}
	g.d.Mon.SetWindow(open)
}

// Execution is the observable outcome of one testcase run under one secret.
type Execution struct {
	// Log is the victim core's commit log.
	Log []uarch.CommitRecord
	// AttackerLog is the second core's commit log (dual-core scenario).
	AttackerLog []uarch.CommitRecord
	// Snap is the contention-state snapshot within the monitoring window.
	Snap *monitor.Snapshot
	// Cycles is the total cycle count of the run.
	Cycles int64
}

// Execute resets the DUT, installs the secret, and runs the testcase to
// completion under the given secret value.
func (d *DUT) Execute(tc *Testcase, secret uint64) *Execution {
	d.SoC.Reset()
	d.Mon.Reset()
	if d.WindowAlwaysOpen {
		d.Mon.SetWindow(true)
	}
	d.SoC.Mem.Write(SecretAddr, secret, 8)

	prog, sStart, sEnd := tc.Build()
	victim := d.SoC.Cores[0]
	victim.LoadProgram(prog)
	victim.SetSecretRange(sStart, sEnd)

	if len(d.SoC.Cores) > 1 {
		if len(tc.Attacker) > 0 {
			att := tc.BuildAttacker()
			d.SoC.Cores[1].LoadProgram(att)
		} else {
			d.haltOthers()
		}
	}
	cycles := d.SoC.Run()
	ex := &Execution{
		Log:    victim.CommitLog,
		Snap:   d.Mon.Snapshot(),
		Cycles: cycles,
	}
	if len(d.SoC.Cores) > 1 && len(tc.Attacker) > 0 {
		ex.AttackerLog = d.SoC.Cores[1].CommitLog
	}
	return ex
}

func (d *DUT) haltOthers() {
	for _, c := range d.SoC.Cores[1:] {
		// An empty program at an undecodable address halts immediately.
		c.LoadProgram(isa.NewProgram(0xF_0000, isa.Instr{Op: isa.ECALL}))
	}
}
